package mictrend_test

import (
	"fmt"

	mictrend "mictrend"
)

// ExampleGenerateCorpus shows corpus generation: deterministic in the seed,
// with ground-truth structural events alongside the linkless records.
func ExampleGenerateCorpus() {
	corpus, truth, err := mictrend.GenerateCorpus(mictrend.GeneratorConfig{
		Seed:            1,
		Months:          12,
		RecordsPerMonth: 200,
		BulkDiseases:    3,
		BulkMedicines:   3,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("months:", corpus.T())
	fmt.Println("has ground-truth events:", len(truth.Changes) > 0)
	// Output:
	// months: 12
	// has ground-truth events: true
}

// ExampleDetectChangePointExact runs the paper's Algorithm 1 on a series
// with an obvious slope shift. (Algorithm 2, DetectChangePointBinary, is
// ~7× cheaper but can mislocate the break by a few months — the paper's
// Table VI reports location RMSE between 3.9 and 7.2 months.)
func ExampleDetectChangePointExact() {
	series := make([]float64, 40)
	for i := range series {
		series[i] = 10
		if i >= 24 {
			series[i] += 2 * float64(i-23)
		}
	}
	res, err := mictrend.DetectChangePointExact(series, false)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("detected:", res.Detected())
	fmt.Println("change point:", res.ChangePoint)
	// Output:
	// detected: true
	// change point: 24
}

// ExampleFitStructuralModel decomposes a seasonal series into components.
func ExampleFitStructuralModel() {
	series := make([]float64, 48)
	for i := range series {
		series[i] = 100
		if i%12 == 0 {
			series[i] += 40 // yearly spike
		}
	}
	fit, err := mictrend.FitStructuralModel(series, mictrend.StructuralConfig{
		Seasonal:    true,
		ChangePoint: mictrend.NoChangePoint,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	d, err := fit.Decompose()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("components cover the series:", len(d.Level) == len(series))
	fmt.Println("seasonal component present:", d.Seasonal[24] != 0)
	// Output:
	// components cover the series: true
	// seasonal component present: true
}
