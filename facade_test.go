package mictrend

import (
	"bytes"
	"context"
	"errors"
	"os"
	"reflect"
	"testing"
)

// TestPublicAPIEndToEnd drives the whole pipeline through the public facade
// only — the path a downstream user takes.
func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end facade test is heavy")
	}
	corpus, truth, err := GenerateCorpus(GeneratorConfig{
		Seed:            21,
		Months:          30,
		RecordsPerMonth: 500,
		BulkDiseases:    5,
		BulkMedicines:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if corpus.T() != 30 || len(truth.Changes) == 0 {
		t.Fatal("generation incomplete")
	}

	// Serialization round trip.
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, corpus); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRecords() != corpus.NumRecords() {
		t.Fatal("round trip lost records")
	}

	// Medication model + reproduction.
	models, err := FitMedicationModels(corpus, EMOptions{MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	series, err := ReproduceSeries(corpus, models)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Pairs) == 0 {
		t.Fatal("no reproduced series")
	}

	// Pipeline with the binary search.
	opts := DefaultAnalysisOptions()
	opts.Seasonal = false
	opts.MinSeriesTotal = 300
	opts.Method = MethodBinary
	analysis, err := AnalyzeTrends(corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	detected := DetectedChangePoints(analysis.Medicines)
	if len(detected) == 0 {
		t.Fatal("nothing detected end to end")
	}
	causes := ClassifyChanges(analysis, 2)
	if len(causes) == 0 {
		t.Fatal("no classifications")
	}

	// Emerging-trend projection.
	emerging, err := EmergingTrends(analysis.Prescriptions, false, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range emerging {
		if e.SlopePerMonth <= 0 {
			t.Fatal("non-positive slope reported as emerging")
		}
	}
}

func TestPublicAPIStructuralModel(t *testing.T) {
	// A deterministic slope-shift series through the facade.
	y := make([]float64, 40)
	for i := range y {
		y[i] = 10
		if i >= 25 {
			y[i] += float64(i - 24)
		}
	}
	res, err := DetectChangePointExact(y, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected() {
		t.Fatal("obvious break missed")
	}
	fit, err := FitStructuralModel(y, StructuralConfig{ChangePoint: res.ChangePoint})
	if err != nil {
		t.Fatal(err)
	}
	d, err := fit.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Level) != len(y) {
		t.Fatal("decomposition length mismatch")
	}
	multi, err := DetectChangePoints(y, MultiChangePointOptions{MaxChanges: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Interventions) == 0 {
		t.Fatal("multi search missed the break")
	}
}

func TestPublicAPIConstants(t *testing.T) {
	if NoChangePoint != -1 {
		t.Fatal("NoChangePoint drifted")
	}
	if SmallHospital.String() != "small" || LargeHospital.String() != "large" {
		t.Fatal("class aliases broken")
	}
	if CauseMedicine.String() != "medicine-derived" {
		t.Fatal("cause aliases broken")
	}
}

// TestPublicAPISurveillance drives hierarchical surveillance through the
// facade only: build the hierarchy from the generator catalog, surveil the
// corpus, and drill into the flagged substitution.
func TestPublicAPISurveillance(t *testing.T) {
	if testing.Short() {
		t.Skip("surveillance facade test is heavy")
	}
	corpus, truth, err := GenerateCorpus(GeneratorConfig{
		Seed:            21,
		Months:          30,
		RecordsPerMonth: 800,
		BulkDiseases:    5,
		BulkMedicines:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := truth.Catalog
	h := NewClassHierarchy(corpus, c.MedicineClasses(), c.ClassGroupCodes(), c.DiseaseGroups())
	opts := DefaultAnalysisOptions()
	opts.Method = MethodBinary
	opts.Seasonal = false
	opts.MinSeriesTotal = 100
	surv, err := Surveil(context.Background(), corpus, SurveilOptions{Hierarchy: h, Pipeline: opts})
	if err != nil {
		t.Fatal(err)
	}
	if len(surv.Nodes) == 0 || surv.AggregateFits == 0 {
		t.Fatal("surveillance ran nothing")
	}
	for _, node := range surv.Detected() {
		if node.Key.Kind != KindMedicineClass && node.Key.Kind != KindMedicineGroup && node.Key.Kind != KindDiseaseGroup {
			t.Fatalf("detected node %s has a leaf kind", node.Key)
		}
		if len(node.Attribution) == 0 {
			t.Fatalf("detected node %s lacks attribution", node.Key)
		}
	}
	// The typed key round-trips through its stringly form.
	k := SeriesKey{Kind: KindMedicineClass, Node: "B01"}
	back, err := ParseSeriesKey(k.String())
	if err != nil || back != k {
		t.Fatalf("ParseSeriesKey(%q) = %v, %v", k.String(), back, err)
	}
	// The planted offsetting substitution surfaces.
	declinerID, ok := corpus.Medicines.Lookup("M-APLT")
	if !ok {
		t.Fatal("scenario medicine missing")
	}
	found := false
	for _, op := range surv.Offsets {
		if op.Decliner == (SeriesKey{Kind: KindMedicine, Medicine: MedicineID(declinerID)}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted substitution not flagged: %+v", surv.Offsets)
	}
	var report bytes.Buffer
	if err := surv.WriteReport(&report, corpus); err != nil {
		t.Fatal(err)
	}
	if report.Len() == 0 {
		t.Fatal("empty surveillance report")
	}
	if StageSurveil.String() != "surveil" {
		t.Fatal("surveil stage name drifted")
	}
}

// TestPublicAPIServing drives the crash-safe serving surface through the
// facade only: a durable checkpoint store resuming a batch analysis, and a
// serving core folding months into immutable epoch snapshots.
func TestPublicAPIServing(t *testing.T) {
	corpus, _, err := GenerateCorpus(GeneratorConfig{
		Seed:            7,
		Months:          2,
		RecordsPerMonth: 120,
		BulkDiseases:    4,
		BulkMedicines:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultAnalysisOptions()
	opts.Seasonal = false
	opts.Method = MethodBinary
	opts.MinSeriesTotal = 20

	// Resumable batch analysis: the second run over the same corpus reloads
	// every committed month from the store and must be byte-identical.
	dir := t.TempDir()
	store, _, err := OpenCheckpointStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts.Checkpoint = store
	first, err := AnalyzeTrendsContext(context.Background(), corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	store2, report, err := OpenCheckpointStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Months) != corpus.T() {
		t.Fatalf("recovered %d checkpointed months, want %d", len(report.Months), corpus.T())
	}
	opts.Checkpoint = store2
	second, err := AnalyzeTrendsContext(context.Background(), corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("checkpoint-resumed analysis differs from the original")
	}
	if err := store2.Close(); err != nil {
		t.Fatal(err)
	}

	// The hash guarding a MonthCheckpoint is deterministic and nonzero.
	if h := HashCheckpointMonth(corpus.Months[0], opts.EM); h == 0 ||
		h != HashCheckpointMonth(corpus.Months[0], opts.EM) {
		t.Fatal("HashCheckpointMonth is not a stable fingerprint")
	}

	// Serving core: fold one month, read it back from the epoch snapshot.
	serveOpts := opts
	serveOpts.Checkpoint = nil
	core, _, err := NewServingCore(ServingOptions{Dir: t.TempDir(), Trend: serveOpts})
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()

	month := NewDataset()
	for _, code := range corpus.Diseases.Codes() {
		month.Diseases.Intern(code)
	}
	for _, code := range corpus.Medicines.Codes() {
		month.Medicines.Intern(code)
	}
	month.Hospitals = append(month.Hospitals, corpus.Hospitals...)
	src := corpus.Months[0]
	clone := &Monthly{Month: 0, Records: make([]Record, len(src.Records))}
	for i := range src.Records {
		clone.Records[i] = src.Records[i].Clone()
	}
	month.Months = append(month.Months, clone)

	if _, _, err := core.Ingest(context.Background(), month, 0); err != nil {
		t.Fatal(err)
	}
	var epoch *ServingEpoch = core.Epoch()
	if epoch == nil || epoch.Months != 1 {
		t.Fatalf("epoch after one ingest: %+v", epoch)
	}
	// Replaying a committed month is idempotent; skipping ahead conflicts.
	if _, _, err := core.Ingest(context.Background(), month, 0); err != nil {
		t.Fatalf("idempotent replay: %v", err)
	}
	if _, _, err := core.Ingest(context.Background(), month, 5); !errors.Is(err, ErrServeMonthConflict) {
		t.Fatalf("gap ingest = %v, want ErrServeMonthConflict", err)
	}
	if err := core.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPIDataPlane exercises the storage facade: format parsing and
// sniffing, columnar file round trips, streaming writes, auto-format stream
// reads, and the parallel series reproduction.
func TestPublicAPIDataPlane(t *testing.T) {
	corpus, _, err := GenerateCorpus(GeneratorConfig{Seed: 31, Months: 8, RecordsPerMonth: 300})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	colPath := dir + "/corpus.micc"
	if _, err := WriteCorpusFileAs(colPath, CorpusFormatAuto, corpus, CorpusStorageOptions{}); err != nil {
		t.Fatal(err)
	}
	if f, err := SniffCorpusFile(colPath); err != nil || f != CorpusFormatColumnar {
		t.Fatalf("sniff = %v, %v; want columnar", f, err)
	}
	cf, err := OpenColumnarCorpus(colPath)
	if err != nil {
		t.Fatal(err)
	}
	if cf.Months() != corpus.T() {
		t.Fatalf("columnar months = %d, want %d", cf.Months(), corpus.T())
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}
	back, _, f, err := ReadCorpusFileAs(colPath, CorpusFormatAuto, CorpusStorageOptions{})
	if err != nil || f != CorpusFormatColumnar {
		t.Fatalf("read back: %v (format %v)", err, f)
	}
	if !reflect.DeepEqual(corpus, back) {
		t.Fatal("columnar round trip changed the dataset")
	}

	// Streamed write, month by month, then an auto-format stream read.
	streamPath := dir + "/stream.micc"
	sw, _, err := NewCorpusStreamWriter(streamPath, CorpusFormatAuto, NewCorpusStreamMeta(corpus), CorpusStorageOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range corpus.Months {
		if err := sw.WriteMonth(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	streamed, _, f, err := ReadCorpusAuto(bytes.NewReader(raw), CorpusStorageOptions{})
	if err != nil || f != CorpusFormatColumnar {
		t.Fatalf("auto read: %v (format %v)", err, f)
	}
	if !reflect.DeepEqual(corpus, streamed) {
		t.Fatal("streamed columnar write changed the dataset")
	}

	// Parallel reproduction matches serial bit for bit.
	models, err := FitMedicationModels(corpus, EMOptions{MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := ReproduceSeries(corpus, models)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ReproduceSeriesParallel(corpus, models, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel reproduction differs from serial")
	}
}
