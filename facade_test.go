package mictrend

import (
	"bytes"
	"testing"
)

// TestPublicAPIEndToEnd drives the whole pipeline through the public facade
// only — the path a downstream user takes.
func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end facade test is heavy")
	}
	corpus, truth, err := GenerateCorpus(GeneratorConfig{
		Seed:            21,
		Months:          30,
		RecordsPerMonth: 500,
		BulkDiseases:    5,
		BulkMedicines:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if corpus.T() != 30 || len(truth.Changes) == 0 {
		t.Fatal("generation incomplete")
	}

	// Serialization round trip.
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, corpus); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRecords() != corpus.NumRecords() {
		t.Fatal("round trip lost records")
	}

	// Medication model + reproduction.
	models, err := FitMedicationModels(corpus, EMOptions{MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	series, err := ReproduceSeries(corpus, models)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Pairs) == 0 {
		t.Fatal("no reproduced series")
	}

	// Pipeline with the binary search.
	opts := DefaultAnalysisOptions()
	opts.Seasonal = false
	opts.MinSeriesTotal = 300
	opts.Method = MethodBinary
	analysis, err := AnalyzeTrends(corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	detected := DetectedChangePoints(analysis.Medicines)
	if len(detected) == 0 {
		t.Fatal("nothing detected end to end")
	}
	causes := ClassifyChanges(analysis, 2)
	if len(causes) == 0 {
		t.Fatal("no classifications")
	}

	// Emerging-trend projection.
	emerging, err := EmergingTrends(analysis.Prescriptions, false, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range emerging {
		if e.SlopePerMonth <= 0 {
			t.Fatal("non-positive slope reported as emerging")
		}
	}
}

func TestPublicAPIStructuralModel(t *testing.T) {
	// A deterministic slope-shift series through the facade.
	y := make([]float64, 40)
	for i := range y {
		y[i] = 10
		if i >= 25 {
			y[i] += float64(i - 24)
		}
	}
	res, err := DetectChangePointExact(y, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected() {
		t.Fatal("obvious break missed")
	}
	fit, err := FitStructuralModel(y, StructuralConfig{ChangePoint: res.ChangePoint})
	if err != nil {
		t.Fatal(err)
	}
	d, err := fit.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Level) != len(y) {
		t.Fatal("decomposition length mismatch")
	}
	multi, err := DetectChangePoints(y, MultiChangePointOptions{MaxChanges: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Interventions) == 0 {
		t.Fatal("multi search missed the break")
	}
}

func TestPublicAPIConstants(t *testing.T) {
	if NoChangePoint != -1 {
		t.Fatal("NoChangePoint drifted")
	}
	if SmallHospital.String() != "small" || LargeHospital.String() != "large" {
		t.Fatal("class aliases broken")
	}
	if CauseMedicine.String() != "medicine-derived" {
		t.Fatal("cause aliases broken")
	}
}
