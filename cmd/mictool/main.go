// Command mictool is the data-plane utility for MIC corpora.
//
//	mictool convert -in corpus.jsonl.gz -out corpus.micc [-format auto|jsonl|columnar] [-progress]
//	mictool info -in corpus.micc
//
// convert transcodes between the JSONL and MICC1 columnar formats. A
// columnar source streams month by month — the corpus never materializes in
// RAM — while a JSONL source is read fully first (its record lines may
// arrive in any month order) and then streamed out. info prints a file's
// header metadata plus per-month record counts and vocabulary sizes
// (distinct diseases and medicines) in sorted month order; a columnar
// source decodes one month block at a time, so only one month is ever
// resident.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"time"

	"mictrend/internal/mic"
	"mictrend/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mictool: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "convert":
		os.Exit(runConvert(os.Args[2:]))
	case "info":
		os.Exit(runInfo(os.Args[2:]))
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mictool convert -in SRC -out DST [-format auto|jsonl|columnar] [-workers N] [-level N] [-progress]
  mictool info -in FILE`)
}

func runConvert(args []string) int {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	var (
		in       = fs.String("in", "", "source corpus (.jsonl, .jsonl.gz, or .micc); format sniffed by magic bytes")
		out      = fs.String("out", "", "destination path")
		format   = fs.String("format", "auto", "destination format: auto (by extension), jsonl, or columnar")
		workers  = fs.Int("workers", 0, "columnar block compression workers (0 = GOMAXPROCS); output bytes identical for every value")
		level    = fs.Int("level", 0, "columnar flate level (0 = default)")
		progress = fs.Bool("progress", false, "log per-month progress events")
	)
	fs.Parse(args)
	if *in == "" || *out == "" {
		fs.Usage()
		return 2
	}
	outFormat, err := mic.ParseFormat(*format)
	if err != nil {
		log.Print(err)
		return 2
	}
	var observer obs.Observer
	if *progress {
		observer = func(e obs.Event) { log.Print(e) }
	}
	if err := convert(*in, *out, outFormat, mic.StorageOptions{Workers: *workers, Level: *level}, observer); err != nil {
		log.Print(err)
		os.Remove(*out)
		return 1
	}
	return 0
}

// convert transcodes in → out. The observer (nil = silent) receives a
// "convert" stage with one per-month event, so long transcodes are
// observable with the same event vocabulary as the analysis pipeline.
func convert(in, out string, outFormat mic.Format, opts mic.StorageOptions, observer obs.Observer) error {
	observer = obs.Guard(observer, func(r any) { log.Printf("warning: progress observer panicked: %v", r) })
	srcFormat, err := mic.SniffFile(in)
	if err != nil {
		return err
	}
	start := time.Now()
	emit := func(e obs.Event) {
		if observer != nil {
			observer(e)
		}
	}

	var months int
	var writeMonths func(sw mic.StreamWriter) error
	var meta mic.StreamMeta
	switch srcFormat {
	case mic.FormatColumnar:
		// Month-at-a-time: only one decoded month is alive at any moment.
		cf, err := mic.OpenColumnarFile(in)
		if err != nil {
			return err
		}
		defer cf.Close()
		meta = cf.Meta()
		months = cf.Months()
		writeMonths = func(sw mic.StreamWriter) error {
			for t := 0; t < cf.Months(); t++ {
				m, err := cf.ReadMonth(t)
				if err != nil {
					return err
				}
				if err := sw.WriteMonth(m); err != nil {
					return err
				}
				emit(obs.Event{Kind: obs.MonthFitted, Stage: "convert", Month: t, Done: t + 1, Total: months})
			}
			return nil
		}
	default:
		// JSONL record lines may arrive in any month order, so the source is
		// read fully before the months stream out.
		ds, stats, _, err := mic.ReadDatasetFile(in, srcFormat, opts)
		if err != nil {
			return err
		}
		if stats.SkippedLines > 0 {
			log.Printf("warning: skipped %d malformed corpus line(s); first: %v", stats.SkippedLines, stats.FirstError)
		}
		meta = mic.NewStreamMeta(ds)
		months = len(ds.Months)
		writeMonths = func(sw mic.StreamWriter) error {
			for t, m := range ds.Months {
				if err := sw.WriteMonth(m); err != nil {
					return err
				}
				emit(obs.Event{Kind: obs.MonthFitted, Stage: "convert", Month: t, Done: t + 1, Total: months})
			}
			return nil
		}
	}

	emit(obs.Event{Kind: obs.StageStart, Stage: "convert", Month: -1, Total: months})
	sw, wroteFormat, err := mic.NewStreamFileWriter(out, outFormat, meta, opts)
	if err != nil {
		return err
	}
	if err := writeMonths(sw); err != nil {
		sw.Close()
		return err
	}
	if err := sw.Close(); err != nil {
		return err
	}
	emit(obs.Event{Kind: obs.StageEnd, Stage: "convert", Month: -1, Total: months, Done: months, Duration: time.Since(start)})
	srcInfo, _ := os.Stat(in)
	dstInfo, err := os.Stat(out)
	if err != nil {
		return err
	}
	if srcInfo != nil {
		fmt.Printf("%s (%s, %d bytes) -> %s (%s, %d bytes)\n",
			in, srcFormat, srcInfo.Size(), out, wroteFormat, dstInfo.Size())
	}
	return nil
}

func runInfo(args []string) int {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "corpus file to describe")
	fs.Parse(args)
	if *in == "" {
		fs.Usage()
		return 2
	}
	if err := info(os.Stdout, *in); err != nil {
		log.Print(err)
		return 1
	}
	return 0
}

func info(w io.Writer, path string) error {
	format, err := mic.SniffFile(path)
	if err != nil {
		return err
	}
	switch format {
	case mic.FormatColumnar:
		cf, err := mic.OpenColumnarFile(path)
		if err != nil {
			return err
		}
		defer cf.Close()
		meta := cf.Meta()
		total := 0
		for t := 0; t < cf.Months(); t++ {
			total += cf.MonthRecords(t)
		}
		fmt.Fprintf(w, "%s: columnar (MICC1), %d months, %d records, %d diseases, %d medicines, %d hospitals\n",
			path, meta.Months, total, len(meta.Diseases), len(meta.Medicines), len(meta.Hospitals))
		// Blocks are physically in month order; decode one at a time for the
		// per-month vocabulary so only one month is ever resident.
		for t := 0; t < cf.Months(); t++ {
			m, err := cf.ReadMonth(t)
			if err != nil {
				return err
			}
			printMonthInfo(w, m)
		}
	default:
		ds, stats, _, err := mic.ReadDatasetFile(path, format, mic.StorageOptions{})
		if err != nil {
			return err
		}
		if stats.SkippedLines > 0 {
			log.Printf("warning: skipped %d malformed corpus line(s)", stats.SkippedLines)
		}
		fmt.Fprintf(w, "%s: jsonl, %d months, %d records, %d diseases, %d medicines, %d hospitals\n",
			path, ds.T(), ds.NumRecords(), ds.Diseases.Len(), ds.Medicines.Len(), len(ds.Hospitals))
		// JSONL record lines may arrive in any month order, so sort the
		// decoded months by index before reporting.
		months := make([]*mic.Monthly, len(ds.Months))
		copy(months, ds.Months)
		sort.Slice(months, func(a, b int) bool { return months[a].Month < months[b].Month })
		for _, m := range months {
			printMonthInfo(w, m)
		}
	}
	return nil
}

// printMonthInfo reports one month's record count and vocabulary sizes: the
// number of distinct disease and medicine codes appearing in its records.
func printMonthInfo(w io.Writer, m *mic.Monthly) {
	diseases := make(map[mic.DiseaseID]struct{})
	medicines := make(map[mic.MedicineID]struct{})
	for i := range m.Records {
		r := &m.Records[i]
		for _, dc := range r.Diseases {
			diseases[dc.Disease] = struct{}{}
		}
		for _, id := range r.Medicines {
			medicines[id] = struct{}{}
		}
	}
	fmt.Fprintf(w, "  month %2d: %d records, %d diseases, %d medicines\n",
		m.Month, len(m.Records), len(diseases), len(medicines))
}
