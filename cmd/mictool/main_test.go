package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mictrend/internal/mic"
	"mictrend/internal/micgen"
)

// TestConvertRoundTrip drives the convert pipeline through both directions
// and checks the JSONL → columnar → JSONL cycle is byte-identical.
func TestConvertRoundTrip(t *testing.T) {
	ds, _, err := micgen.Generate(micgen.Config{Seed: 3, Months: 6, RecordsPerMonth: 200})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "src.jsonl")
	col := filepath.Join(dir, "mid.micc")
	back := filepath.Join(dir, "back.jsonl")
	if _, err := mic.WriteDatasetFile(src, mic.FormatJSONL, ds, mic.StorageOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := convert(src, col, mic.FormatAuto, mic.StorageOptions{}, nil); err != nil {
		t.Fatalf("jsonl -> columnar: %v", err)
	}
	if f, err := mic.SniffFile(col); err != nil || f != mic.FormatColumnar {
		t.Fatalf("converted file sniffs as %v, %v", f, err)
	}
	if err := convert(col, back, mic.FormatJSONL, mic.StorageOptions{}, nil); err != nil {
		t.Fatalf("columnar -> jsonl: %v", err)
	}
	a, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("JSONL round-trip through columnar differs: %d vs %d bytes", len(a), len(b))
	}
}

// TestInfoPerMonthVocabulary pins the info report: per-month record counts
// AND vocabulary sizes (distinct diseases/medicines), in sorted month order,
// with identical per-month lines from the JSONL and columnar backends.
func TestInfoPerMonthVocabulary(t *testing.T) {
	ds, _, err := micgen.Generate(micgen.Config{Seed: 5, Months: 4, RecordsPerMonth: 150})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "src.jsonl")
	col := filepath.Join(dir, "src.micc")
	if _, err := mic.WriteDatasetFile(src, mic.FormatJSONL, ds, mic.StorageOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := convert(src, col, mic.FormatColumnar, mic.StorageOptions{}, nil); err != nil {
		t.Fatal(err)
	}

	monthLines := func(path string) []string {
		var buf bytes.Buffer
		if err := info(&buf, path); err != nil {
			t.Fatalf("info %s: %v", path, err)
		}
		var lines []string
		for _, l := range strings.Split(buf.String(), "\n") {
			if strings.HasPrefix(l, "  month") {
				lines = append(lines, l)
			}
		}
		return lines
	}

	jl := monthLines(src)
	cl := monthLines(col)
	if len(jl) != 4 {
		t.Fatalf("jsonl info printed %d month lines, want 4:\n%v", len(jl), jl)
	}
	if !reflect.DeepEqual(jl, cl) {
		t.Fatalf("per-month lines differ between backends:\njsonl:    %v\ncolumnar: %v", jl, cl)
	}
	for i, l := range jl {
		if !strings.Contains(l, fmt.Sprintf("month %2d:", i)) {
			t.Errorf("month line %d out of sorted order: %q", i, l)
		}
		if !strings.Contains(l, "records,") || !strings.Contains(l, "diseases,") || !strings.Contains(l, "medicines") {
			t.Errorf("month line missing vocabulary sizes: %q", l)
		}
	}

	// Cross-check one month's counts against the dataset itself.
	var want0 string
	{
		var buf bytes.Buffer
		printMonthInfo(&buf, ds.Months[0])
		want0 = strings.TrimRight(buf.String(), "\n")
	}
	if jl[0] != want0 {
		t.Errorf("month 0 line = %q, want %q", jl[0], want0)
	}
}

func TestConvertRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "junk")
	if err := os.WriteFile(src, []byte("not a corpus at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.micc")
	if err := convert(src, out, mic.FormatAuto, mic.StorageOptions{}, nil); err == nil {
		t.Fatal("convert accepted garbage input")
	}
}
