package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mictrend/internal/mic"
	"mictrend/internal/micgen"
)

// TestConvertRoundTrip drives the convert pipeline through both directions
// and checks the JSONL → columnar → JSONL cycle is byte-identical.
func TestConvertRoundTrip(t *testing.T) {
	ds, _, err := micgen.Generate(micgen.Config{Seed: 3, Months: 6, RecordsPerMonth: 200})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "src.jsonl")
	col := filepath.Join(dir, "mid.micc")
	back := filepath.Join(dir, "back.jsonl")
	if _, err := mic.WriteDatasetFile(src, mic.FormatJSONL, ds, mic.StorageOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := convert(src, col, mic.FormatAuto, mic.StorageOptions{}, nil); err != nil {
		t.Fatalf("jsonl -> columnar: %v", err)
	}
	if f, err := mic.SniffFile(col); err != nil || f != mic.FormatColumnar {
		t.Fatalf("converted file sniffs as %v, %v", f, err)
	}
	if err := convert(col, back, mic.FormatJSONL, mic.StorageOptions{}, nil); err != nil {
		t.Fatalf("columnar -> jsonl: %v", err)
	}
	a, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("JSONL round-trip through columnar differs: %d vs %d bytes", len(a), len(b))
	}
}

func TestConvertRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "junk")
	if err := os.WriteFile(src, []byte("not a corpus at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.micc")
	if err := convert(src, out, mic.FormatAuto, mic.StorageOptions{}, nil); err == nil {
		t.Fatal("convert accepted garbage input")
	}
}
