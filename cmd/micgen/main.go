// Command micgen generates a synthetic Medical Insurance Claim corpus with
// the structural phenomena of the paper's Mie-prefecture dataset (seasonal
// epidemics, new-medicine releases, generic substitution, indication
// expansions, hospital-class prescribing gaps) and writes it as JSONL
// (gzip-compressed when the path ends in .gz).
//
// Usage:
//
//	micgen -out corpus.jsonl.gz [-seed 7] [-months 43] [-records 2000]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mictrend/internal/mic"
	"mictrend/internal/micgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("micgen: ")
	var (
		out      = flag.String("out", "", "output path (.jsonl or .jsonl.gz); required")
		seed     = flag.Uint64("seed", 7, "generator seed")
		months   = flag.Int("months", 43, "number of months")
		records  = flag.Int("records", 2000, "target records per month")
		diseases = flag.Int("bulk-diseases", 60, "procedurally generated diseases beyond the scenario catalog")
		meds     = flag.Int("bulk-medicines", 80, "procedurally generated medicines beyond the scenario catalog")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	ds, truth, err := micgen.Generate(micgen.Config{
		Seed:            *seed,
		Months:          *months,
		RecordsPerMonth: *records,
		BulkDiseases:    *diseases,
		BulkMedicines:   *meds,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := mic.WriteFile(*out, ds); err != nil {
		log.Fatal(err)
	}
	summary, err := ds.Summarize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	fmt.Printf("months: %d, records/month: %.0f, diseases/month: %.0f, medicines/month: %.0f\n",
		summary.Months, summary.AvgRecordsPerMonth, summary.AvgDiseasesPerMonth, summary.AvgMedsPerMonth)
	fmt.Printf("avg diseases/record: %.2f, avg medicines/record: %.2f, hospitals: %d\n",
		summary.AvgDiseasesPerRec, summary.AvgMedsPerRec, summary.Hospitals)
	fmt.Printf("injected structural events: %d\n", len(truth.Changes))
	for _, c := range truth.Changes {
		target := c.Medicine
		if c.Disease != "" {
			if target != "" {
				target += " for " + c.Disease
			} else {
				target = c.Disease
			}
		}
		fmt.Printf("  month %2d: %-20s %s\n", c.Month, c.Kind, target)
	}
}
