// Command micgen generates a synthetic Medical Insurance Claim corpus with
// the structural phenomena of the paper's Mie-prefecture dataset (seasonal
// epidemics, new-medicine releases, generic substitution, indication
// expansions, hospital-class prescribing gaps) and streams it month-at-a-time
// into the selected storage backend — JSONL (gzip-compressed when the path
// ends in .gz) or the MICC1 columnar format — so a population-scale corpus
// never materializes in RAM.
//
// Usage:
//
//	micgen -out corpus.micc [-format auto|jsonl|columnar] [-seed 7] [-months 43] [-records 2000]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mictrend/internal/mic"
	"mictrend/internal/micgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("micgen: ")
	var (
		out      = flag.String("out", "", "output path (.jsonl, .jsonl.gz, or .micc); required")
		format   = flag.String("format", "auto", "output format: auto (by extension), jsonl, or columnar")
		seed     = flag.Uint64("seed", 7, "generator seed")
		months   = flag.Int("months", 43, "number of months")
		records  = flag.Int("records", 2000, "target records per month")
		diseases = flag.Int("bulk-diseases", 60, "procedurally generated diseases beyond the scenario catalog")
		meds     = flag.Int("bulk-medicines", 80, "procedurally generated medicines beyond the scenario catalog")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := mic.ParseFormat(*format)
	if err != nil {
		log.Fatal(err)
	}

	gen, err := micgen.NewGenerator(micgen.Config{
		Seed:            *seed,
		Months:          *months,
		RecordsPerMonth: *records,
		BulkDiseases:    *diseases,
		BulkMedicines:   *meds,
	})
	if err != nil {
		log.Fatal(err)
	}
	sw, wrote, err := mic.NewStreamFileWriter(*out, f, gen.Meta(), mic.StorageOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Stream months straight into the writer, folding the summary
	// incrementally so memory stays flat at one month.
	var totRecords, totDiseaseMentions, totMedMentions int
	for m := gen.NextMonth(); m != nil; m = gen.NextMonth() {
		totRecords += len(m.Records)
		for i := range m.Records {
			totDiseaseMentions += len(m.Records[i].Diseases)
			totMedMentions += len(m.Records[i].Medicines)
		}
		if err := sw.WriteMonth(m); err != nil {
			log.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		log.Fatal(err)
	}
	truth := gen.Truth()

	meta := gen.Meta()
	fmt.Printf("wrote %s (%s)\n", *out, wrote)
	fmt.Printf("months: %d, records/month: %.0f, avg diseases/record: %.2f, avg medicines/record: %.2f, hospitals: %d\n",
		meta.Months, float64(totRecords)/float64(max(1, meta.Months)),
		float64(totDiseaseMentions)/float64(max(1, totRecords)),
		float64(totMedMentions)/float64(max(1, totRecords)), len(meta.Hospitals))
	fmt.Printf("injected structural events: %d\n", len(truth.Changes))
	for _, c := range truth.Changes {
		target := c.Medicine
		if c.Disease != "" {
			if target != "" {
				target += " for " + c.Disease
			} else {
				target = c.Disease
			}
		}
		fmt.Printf("  month %2d: %-20s %s\n", c.Month, c.Kind, target)
	}
}
