// Command experiments regenerates every table and figure of the paper's
// evaluation section on a synthetic corpus with ground truth, printing
// paper-shaped ASCII output.
//
// Usage:
//
//	experiments [-scale small|default] [-only table3,fig9] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"mictrend/internal/experiments"
)

// renderer is the shape every experiment result shares.
type renderer interface {
	Render(w io.Writer)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		scale     = flag.String("scale", "small", "corpus scale: small or default")
		only      = flag.String("only", "", "comma-separated subset: table2..table6, fig2, fig3, fig5..fig9, extensions, surveillance, linkrecovery")
		seed      = flag.Uint64("seed", 0, "override the corpus seed (0 = keep the scale's default)")
		months    = flag.Int("months", 0, "override the number of months")
		records   = flag.Int("records", 0, "override records per month")
		maxSeries = flag.Int("max-series", 0, "override the per-kind series cap of the Table IV–VI sweeps")
	)
	flag.Parse()

	var cfg experiments.Config
	switch *scale {
	case "small":
		cfg = experiments.SmallConfig()
	case "default":
		cfg = experiments.DefaultConfig()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *months > 0 {
		cfg.Months = *months
	}
	if *records > 0 {
		cfg.RecordsPerMonth = *records
	}
	if *maxSeries > 0 {
		cfg.MaxSeriesPerKind = *maxSeries
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	start := time.Now()
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d months × %d records/month (seed %d), generated in %v\n\n",
		cfg.Months, cfg.RecordsPerMonth, cfg.Seed, time.Since(start).Round(time.Millisecond))

	runs := []struct {
		id  string
		run func() (renderer, error)
	}{
		{"table2", func() (renderer, error) { return experiments.RunTableII(env, 10) }},
		{"table3", func() (renderer, error) { return experiments.RunTableIII(env) }},
		{"table4", func() (renderer, error) { return experiments.RunTableIV(env) }},
		{"table5", func() (renderer, error) { return experiments.RunTableV(env) }},
		{"table6", func() (renderer, error) { return experiments.RunTableVI(env) }},
		{"fig2", func() (renderer, error) { return experiments.RunFigure2(env) }},
		{"fig3", func() (renderer, error) { return experiments.RunFigure3(env) }},
		{"fig5", func() (renderer, error) { return experiments.RunFigure5(env) }},
		{"fig6", func() (renderer, error) { return experiments.RunFigure6(env) }},
		{"fig7", func() (renderer, error) { return experiments.RunFigure7(env) }},
		{"fig8", func() (renderer, error) { return experiments.RunFigure8(env) }},
		{"fig9", func() (renderer, error) { return experiments.RunFigure9(env) }},
		{"extensions", func() (renderer, error) { return experiments.RunExtensions(env) }},
		{"surveillance", func() (renderer, error) { return experiments.RunSurveillance(env) }},
		{"linkrecovery", func() (renderer, error) { return experiments.RunLinkRecovery(env, cfg.MinSeriesTotal) }},
	}
	for _, r := range runs {
		if !want(r.id) {
			continue
		}
		stepStart := time.Now()
		res, err := r.run()
		if err != nil {
			log.Fatalf("%s: %v", r.id, err)
		}
		fmt.Printf("=== %s (%v) ===\n", r.id, time.Since(stepStart).Round(time.Millisecond))
		res.Render(os.Stdout)
		fmt.Println()
	}
}
