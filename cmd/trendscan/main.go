// Command trendscan runs the paper's full two-stage pipeline over a MIC
// corpus: fit the latent-variable medication model per month, reproduce the
// disease/medicine/prescription time series, detect trend change points with
// the AIC-driven search, and classify each prescription-level change as
// disease-, medicine-, or prescription-derived.
//
// Usage:
//
//	trendscan -in corpus.jsonl.gz [-method binary] [-top 20]
//	trendscan -generate [-months 36] [-records 1000]   (self-contained demo)
//	trendscan -generate -hierarchy                     (hierarchical surveillance drill-down)
//	trendscan -generate -out run/                      (consolidated artifact directory)
//
// Observability:
//
//	trendscan -generate -out run/                    (report, manifest, metrics, explain, …, one directory)
//	trendscan -generate -progress                    (log progress events)
//	trendscan -generate -pprof localhost:6060        (serve net/http/pprof during the run)
//	trendscan -generate -prom localhost:9100         (serve Prometheus text metrics at /metrics)
//	trendscan -generate -checkpoint ckpt/            (persist per-month fits; reruns reuse them)
//
// -out DIR consolidates every run artifact under one directory with a
// manifest.json naming what was written where: report.txt (the same report
// that goes to stdout), metrics.json, trace.json, series.csv, explain/
// provenance, and — with -hierarchy — surveillance.txt and
// surveillance.json. The older single-artifact flags (-explain, -metrics,
// -trace, -csv) still work and override the corresponding path inside -out,
// but are deprecated in favor of the one-directory layout.
//
// -hierarchy rolls the reproduced series up the medicine-class/disease-group
// hierarchy, scans the small aggregate set, drills each detected break down
// to the child series driving it, and flags offsetting substitution pairs.
// Generated corpora (-generate) take the hierarchy from the micgen catalog;
// real corpora supply code-level maps via -hierarchy-file.
//
// Every exit path — success, interrupt, analysis error, post-analysis I/O
// failure, -max-failures breach — flushes the same artifacts (partial trace,
// metrics, explain provenance, out-directory manifest, checkpoint store)
// before the process exits, and exit codes are consistent: 0 success,
// 1 error, 2 usage, 130 interrupt.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mictrend/internal/mic"
	"mictrend/internal/micgen"
	"mictrend/internal/obs"
	"mictrend/internal/serve"
	"mictrend/internal/trend"
)

// version stamps the explain manifest so archived artifacts identify the
// binary that produced them.
const version = "trendscan/0.7"

// Exit codes, shared by every path through run.
const (
	exitOK        = 0
	exitError     = 1
	exitUsage     = 2
	exitInterrupt = 130 // conventional SIGINT status
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trendscan: ")
	os.Exit(run())
}

// outManifest is the top-level manifest of a consolidated -out directory:
// the run manifest plus surveillance totals and a map naming each artifact
// that was actually written.
type outManifest struct {
	trend.Manifest
	SurveilNodes      int               `json:"surveil_nodes,omitempty"`
	SurveilDetections int               `json:"surveil_detections,omitempty"`
	SurveilOffsets    int               `json:"surveil_offset_pairs,omitempty"`
	StageTimings      []stageTiming     `json:"stage_timings,omitempty"`
	Artifacts         map[string]string `json:"artifacts"`
}

// flusher funnels every exit path through one artifact flush: whatever the
// run accumulated — span trace, metrics JSON, explain provenance, the
// surveillance tree, the -out manifest — is written exactly once, and the
// checkpoint store is closed, no matter which branch ends the process.
// log.Fatal is banned in run() for this reason: it would exit around the
// flush.
type flusher struct {
	tracer      *obs.Tracer
	tracePath   string
	metricsPath string
	metrics     *obs.Registry
	explainDir  string
	manifest    func(*trend.Analysis, bool) trend.Manifest
	store       *serve.Store
	outDir      string
	artifacts   map[string]string // manifest key → path, recorded as written
	report      *os.File          // report.txt tee inside -out
	surv        *trend.Surveillance
	done        bool
}

// flush writes all pending artifacts. Safe to call more than once; only the
// first call writes.
func (fl *flusher) flush(analysis *trend.Analysis, interrupted bool) {
	if fl.done {
		return
	}
	fl.done = true
	if fl.tracer != nil {
		if err := writeTrace(fl.tracePath, fl.tracer); err != nil {
			log.Printf("warning: %v", err)
		} else {
			fmt.Printf("wrote trace (%d spans) to %s\n", fl.tracer.Len(), fl.tracePath)
			fl.record("trace", fl.tracePath)
		}
	}
	if fl.metricsPath != "" {
		if err := writeMetrics(fl.metricsPath, fl.metrics); err != nil {
			log.Printf("warning: %v", err)
		} else {
			fl.record("metrics", fl.metricsPath)
		}
	}
	if fl.explainDir != "" && analysis != nil {
		man := fl.manifest(analysis, interrupted)
		if err := trend.WriteExplain(fl.explainDir, analysis, man); err != nil {
			log.Printf("warning: %v", err)
		} else {
			fmt.Printf("wrote explain artifacts (%d series) to %s\n", len(analysis.SeriesProvenance), fl.explainDir)
			fl.record("explain", fl.explainDir)
		}
	}
	if fl.outDir != "" && analysis != nil {
		man := outManifest{
			Manifest:     fl.manifest(analysis, interrupted),
			StageTimings: stageTimings(fl.metrics),
			Artifacts:    fl.artifacts,
		}
		if fl.surv != nil {
			man.SurveilNodes = len(fl.surv.Nodes)
			man.SurveilDetections = len(fl.surv.Detected())
			man.SurveilOffsets = len(fl.surv.Offsets)
		}
		path := filepath.Join(fl.outDir, "manifest.json")
		if err := writeJSONFile(path, man); err != nil {
			log.Printf("warning: %v", err)
		} else {
			fmt.Printf("wrote artifact manifest to %s\n", path)
		}
	}
	if fl.report != nil {
		if err := fl.report.Close(); err != nil {
			log.Printf("warning: closing report: %v", err)
		}
	}
	if fl.store != nil {
		// Every flush path is an orderly close — even an interrupted run
		// leaves only fully committed months behind — so the next open
		// reports a clean shutdown rather than a crash recovery.
		if err := fl.store.MarkCleanShutdown(int64(len(fl.store.Months()))); err != nil {
			log.Printf("warning: marking checkpoint store clean: %v", err)
		}
		if err := fl.store.Close(); err != nil {
			log.Printf("warning: closing checkpoint store: %v", err)
		}
	}
}

// record notes a written artifact for the -out manifest.
func (fl *flusher) record(name, path string) {
	if fl.artifacts != nil {
		fl.artifacts[name] = path
	}
}

// fail flushes and logs the error; run returns its result as the exit code.
func (fl *flusher) fail(analysis *trend.Analysis, err error) int {
	fl.flush(analysis, false)
	log.Print(err)
	return exitError
}

func run() int {
	var (
		in            = flag.String("in", "", "input corpus (.jsonl, .jsonl.gz, or .micc)")
		format        = flag.String("format", "auto", "input format: auto (sniff magic bytes), jsonl, or columnar")
		generate      = flag.Bool("generate", false, "generate a synthetic corpus instead of reading one")
		months        = flag.Int("months", 36, "months when generating")
		records       = flag.Int("records", 1000, "records/month when generating")
		seed          = flag.Uint64("seed", 7, "seed when generating")
		method        = flag.String("method", "binary", "change point search: exact or binary")
		seasonal      = flag.Bool("seasonal", true, "include the 12-month seasonal component")
		minTotal      = flag.Float64("min-total", 10, "minimum total frequency for a series to be analyzed")
		top           = flag.Int("top", 20, "number of strongest changes to print per kind")
		workers       = flag.Int("workers", 0, "worker pool size for model fitting and change point detection (0 = GOMAXPROCS)")
		shards        = flag.Int("shards", 0, "partition the series universe by disease into this many detection shards (0/1 = single dispatcher; results identical for every value)")
		scanWorkers   = flag.Int("scan-workers", 0, "max workers one exact change point scan may claim from the shared -workers budget (0 = auto: soak up idle workers, 1 = serial scans)")
		emerging      = flag.Int("emerging", 0, "also project the detected upward prescription trends this many months ahead")
		hierarchy     = flag.Bool("hierarchy", false, "roll series up the class hierarchy, scan the aggregates, and emit a drill-down surveillance report (hierarchy from the catalog under -generate, else from -hierarchy-file)")
		hierarchyFile = flag.String("hierarchy-file", "", "JSON code-level hierarchy for -in corpora: {\"medicine_class\":{code:class}, \"class_group\":{class:group}, \"disease_group\":{code:group}}")
		outDir        = flag.String("out", "", "write every run artifact (report.txt, manifest.json, metrics.json, trace.json, series.csv, explain/, surveillance.*) under this directory")
		csvPath       = flag.String("csv", "", "write the reproduced prescription series to this CSV file (deprecated: prefer -out DIR, which writes DIR/series.csv)")
		strict        = flag.Bool("strict", false, "abort on the first malformed corpus line instead of skipping it")
		maxFailures   = flag.Int("max-failures", -1, "exit nonzero when more than this many series/months fail (-1 = never)")
		progress      = flag.Bool("progress", false, "log pipeline progress events (stages, fitted months, finished series)")
		metricsPath   = flag.String("metrics", "", "write the run's metrics registry as JSON to this file, \"-\" = stdout (deprecated: prefer -out DIR, which writes DIR/metrics.json)")
		pprofAddr     = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the run's duration")
		tracePath     = flag.String("trace", "", "write the run's spans as Chrome Trace Event JSON to this file (deprecated: prefer -out DIR, which writes DIR/trace.json)")
		explainDir    = flag.String("explain", "", "write decision-provenance artifacts under this directory (deprecated: prefer -out DIR, which writes DIR/explain)")
		promAddr      = flag.String("prom", "", "serve Prometheus text metrics on this address at /metrics (the -pprof mux serves it too)")
		ckptDir       = flag.String("checkpoint", "", "durable per-month checkpoint directory: fits are persisted there and reused on reruns over the same corpus")
	)
	flag.Parse()

	if *hierarchy && !*generate && *hierarchyFile == "" {
		log.Print("-hierarchy needs a hierarchy source: -generate (catalog) or -hierarchy-file")
		return exitUsage
	}

	// -out consolidates the artifact layout; the older single-artifact flags
	// override their path inside it.
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Print(err)
			return exitError
		}
		if *explainDir == "" {
			*explainDir = filepath.Join(*outDir, "explain")
		}
		if *metricsPath == "" {
			*metricsPath = filepath.Join(*outDir, "metrics.json")
		}
		if *tracePath == "" {
			*tracePath = filepath.Join(*outDir, "trace.json")
		}
		if *csvPath == "" {
			*csvPath = filepath.Join(*outDir, "series.csv")
		}
	}

	// DefaultServeMux carries the pprof handlers (blank import), the expvar
	// page at /debug/vars (expvar is linked in through the obs registry
	// bridge), and the Prometheus exposition at /metrics — every debug
	// listener serves all three.
	metrics := obs.NewRegistry()
	metrics.PublishExpvar("mictrend")
	http.Handle("/metrics", metrics.PrometheusHandler("mictrend"))
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("warning: pprof server: %v", err)
			}
		}()
	}
	if *promAddr != "" && *promAddr != *pprofAddr {
		go func() {
			log.Printf("prometheus metrics on http://%s/metrics", *promAddr)
			if err := http.ListenAndServe(*promAddr, nil); err != nil {
				log.Printf("warning: prometheus server: %v", err)
			}
		}()
	}

	// Interrupt cancels the analysis; a partial report is still printed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var ds *mic.Dataset
	var truth *micgen.Truth
	var err error
	switch {
	case *generate:
		ds, truth, err = micgen.Generate(micgen.Config{Seed: *seed, Months: *months, RecordsPerMonth: *records})
	case *in != "":
		f, ferr := mic.ParseFormat(*format)
		if ferr != nil {
			log.Print(ferr)
			return exitUsage
		}
		var stats mic.ReadStats
		ds, stats, _, err = mic.ReadDatasetFile(*in, f, mic.StorageOptions{Read: mic.ReadOptions{Strict: *strict}})
		if stats.SkippedLines > 0 {
			log.Printf("warning: skipped %d malformed corpus line(s); first: %v (use -strict to fail fast)",
				stats.SkippedLines, stats.FirstError)
		}
	default:
		flag.Usage()
		return exitUsage
	}
	if err != nil {
		log.Print(err)
		return exitError
	}

	opts := trend.DefaultOptions()
	opts.Seasonal = *seasonal
	opts.MinSeriesTotal = *minTotal
	opts.Workers = *workers
	opts.ScanWorkers = *scanWorkers
	opts.Shards = *shards
	switch *method {
	case "exact":
		opts.Method = trend.MethodExact
	case "binary":
		opts.Method = trend.MethodBinary
	default:
		log.Printf("unknown method %q (want exact or binary)", *method)
		return exitUsage
	}
	opts.Metrics = metrics
	if *progress {
		opts.Observer = func(e obs.Event) { log.Print(e) }
	}
	fl := &flusher{metricsPath: *metricsPath, metrics: metrics, explainDir: *explainDir, outDir: *outDir}
	if *outDir != "" {
		fl.artifacts = make(map[string]string)
	}
	defer fl.flush(nil, false) // backstop for panics and early returns
	if *tracePath != "" {
		fl.tracer = obs.NewTracer()
		fl.tracePath = *tracePath
		opts.Trace = fl.tracer.Observe
	}
	opts.Explain = *explainDir != ""
	fl.manifest = func(analysis *trend.Analysis, interrupted bool) trend.Manifest {
		man := trend.BuildManifest(opts, analysis)
		man.Version = version
		man.Records = ds.NumRecords()
		man.Interrupted = interrupted
		if *generate {
			man.Seed = *seed
		}
		return man
	}
	if *ckptDir != "" {
		store, report, err := serve.Open(*ckptDir, metrics)
		if err != nil {
			log.Print(err)
			return exitError
		}
		fl.store = store
		opts.Checkpoint = store
		if report.Recovered() {
			log.Printf("checkpoint store %s: %s", *ckptDir, report)
		}
	}

	// The human-readable report goes to stdout and, under -out, is tee'd
	// into report.txt so the artifact directory is self-contained.
	var rep io.Writer = os.Stdout
	if *outDir != "" {
		path := filepath.Join(*outDir, "report.txt")
		rf, err := os.Create(path)
		if err != nil {
			return fl.fail(nil, err)
		}
		fl.report = rf
		fl.record("report", path)
		rep = io.MultiWriter(os.Stdout, rf)
	}

	fmt.Fprintf(rep, "analyzing %d months, %d records, %s search…\n", ds.T(), ds.NumRecords(), opts.Method)
	analysis, err := trend.Analyze(ctx, ds, opts)
	interrupted := false
	switch {
	case errors.Is(err, context.Canceled):
		if analysis == nil {
			fl.flush(nil, true)
			log.Print("interrupted before any results were available")
			return exitInterrupt
		}
		log.Print("warning: interrupted — reporting partial results")
		interrupted = true
	case err != nil:
		return fl.fail(analysis, err)
	}
	causes := trend.ClassifyChanges(analysis, 2)

	if *csvPath != "" {
		if err := writeCSV(*csvPath, analysis, ds); err != nil {
			return fl.fail(analysis, err)
		}
		fmt.Printf("wrote reproduced series to %s\n", *csvPath)
		fl.record("series_csv", *csvPath)
	}

	printKind := func(name string, dets []trend.Detection, describe func(trend.Detection) string) {
		detected := trend.DetectedChangePoints(dets)
		fmt.Fprintf(rep, "\n%s series: %d analyzed, %d with change points\n", name, len(dets), len(detected))
		n := *top
		if n > len(detected) {
			n = len(detected)
		}
		for _, d := range detected[:n] {
			improvement := d.Result.NoChangeAIC - d.Result.AIC
			fmt.Fprintf(rep, "  month %2d (ΔAIC %6.2f)  %s\n", d.Result.ChangePoint, improvement, describe(d))
		}
	}
	printKind("disease", analysis.Diseases, func(d trend.Detection) string {
		return ds.Diseases.Code(int32(d.Disease))
	})
	printKind("medicine", analysis.Medicines, func(d trend.Detection) string {
		return ds.Medicines.Code(int32(d.Medicine))
	})
	printKind("prescription", analysis.Prescriptions, func(d trend.Detection) string {
		cause := causes[mic.Pair{Disease: d.Disease, Medicine: d.Medicine}]
		return fmt.Sprintf("%s ← %s [%s]",
			ds.Medicines.Code(int32(d.Medicine)), ds.Diseases.Code(int32(d.Disease)), cause)
	})

	fmt.Fprintf(rep, "\ntotal model fits: %d\n", analysis.TotalFits)
	printStageSummary(rep, metrics)
	counts := map[trend.Cause]int{}
	for _, c := range causes {
		counts[c]++
	}
	fmt.Fprintf(rep, "prescription change causes: %d disease-derived, %d medicine-derived, %d prescription-derived, %d unchanged\n",
		counts[trend.CauseDisease], counts[trend.CauseMedicine], counts[trend.CausePrescription], counts[trend.CauseNone])

	if *emerging > 0 {
		list, err := trend.EmergingTrends(analysis.Prescriptions, *seasonal, *emerging)
		if err != nil {
			log.Printf("warning: some emerging-trend projections failed: %v", err)
		}
		fmt.Fprintf(rep, "\nemerging prescriptions (projected %d months ahead):\n", *emerging)
		n := *top
		if n > len(list) {
			n = len(list)
		}
		for _, e := range list[:n] {
			fmt.Fprintf(rep, "  %s ← %s: broke at month %d, +%.2f/month, now %.1f, projected %+.1f\n",
				ds.Medicines.Code(int32(e.Medicine)), ds.Diseases.Code(int32(e.Disease)),
				e.ChangePoint, e.SlopePerMonth, e.LastValue, e.ProjectedGrowth)
		}
	}

	if *hierarchy && !interrupted {
		code, serr := runSurveillance(ctx, rep, fl, ds, truth, *hierarchyFile, opts, analysis, *outDir)
		if code != exitOK {
			return code
		}
		if errors.Is(serr, context.Canceled) {
			log.Print("warning: interrupted — the surveillance report above is partial")
			interrupted = true
		}
	}

	if n := len(analysis.Failures); n > 0 {
		fmt.Fprintf(rep, "\n%d series/month(s) failed and were skipped:\n", n)
		const maxShown = 10
		for i, f := range analysis.Failures {
			if i == maxShown {
				fmt.Fprintf(rep, "  … and %d more\n", n-maxShown)
				break
			}
			fmt.Fprintf(rep, "  %s\n", f)
		}
		if *maxFailures >= 0 && n > *maxFailures {
			return fl.fail(analysis, fmt.Errorf("%d failures exceed -max-failures=%d", n, *maxFailures))
		}
	}
	fl.flush(analysis, interrupted)
	if interrupted {
		return exitInterrupt // the report above is partial
	}
	return exitOK
}

// runSurveillance rolls the analysis up the hierarchy, drills detected
// aggregate breaks down, and renders the report to rep (and, under -out, to
// surveillance.txt plus the surveillance.json tree). Returns exitOK and
// Surveil's error (nil, or context.Canceled for a partial tree) on success
// paths; any other exit code means run should return it.
func runSurveillance(ctx context.Context, rep io.Writer, fl *flusher, ds *mic.Dataset, truth *micgen.Truth,
	hierarchyFile string, opts trend.Options, analysis *trend.Analysis, outDir string) (int, error) {
	h, err := loadHierarchy(ds, truth, hierarchyFile)
	if err != nil {
		return fl.fail(analysis, err), nil
	}
	surv, serr := trend.Surveil(ctx, ds, trend.SurveilOptions{
		Hierarchy: h,
		Pipeline:  opts,
		Analysis:  analysis, // reuse the fitted models and reproduced series
	})
	if surv == nil {
		return fl.fail(analysis, serr), nil
	}
	if serr != nil && !errors.Is(serr, context.Canceled) {
		log.Printf("warning: surveillance degraded: %v", serr)
	}
	fl.surv = surv
	var buf bytes.Buffer
	if err := surv.WriteReport(&buf, ds); err != nil {
		return fl.fail(analysis, err), nil
	}
	fmt.Fprintln(rep)
	if _, err := rep.Write(buf.Bytes()); err != nil {
		return fl.fail(analysis, err), nil
	}
	if outDir != "" {
		txt := filepath.Join(outDir, "surveillance.txt")
		if err := os.WriteFile(txt, buf.Bytes(), 0o644); err != nil {
			return fl.fail(analysis, err), nil
		}
		fl.record("surveillance_report", txt)
		js := filepath.Join(outDir, "surveillance.json")
		if err := writeJSONFile(js, surv); err != nil {
			return fl.fail(analysis, err), nil
		}
		fl.record("surveillance", js)
	}
	return exitOK, serr
}

// loadHierarchy resolves the surveillance hierarchy: catalog-derived for
// generated corpora, code-level JSON maps (-hierarchy-file) for real ones.
func loadHierarchy(ds *mic.Dataset, truth *micgen.Truth, path string) (trend.Hierarchy, error) {
	if path != "" {
		raw, err := os.ReadFile(path)
		if err != nil {
			return trend.Hierarchy{}, err
		}
		var hf struct {
			MedicineClass map[string]string `json:"medicine_class"`
			ClassGroup    map[string]string `json:"class_group"`
			DiseaseGroup  map[string]string `json:"disease_group"`
		}
		if err := json.Unmarshal(raw, &hf); err != nil {
			return trend.Hierarchy{}, fmt.Errorf("parsing hierarchy file %s: %w", path, err)
		}
		return trend.HierarchyFromCodes(ds, hf.MedicineClass, hf.ClassGroup, hf.DiseaseGroup), nil
	}
	if truth == nil || truth.Catalog == nil {
		return trend.Hierarchy{}, errors.New("-hierarchy needs -generate (catalog hierarchy) or -hierarchy-file")
	}
	c := truth.Catalog
	return trend.HierarchyFromCodes(ds, c.MedicineClasses(), c.ClassGroups, c.DiseaseGroups()), nil
}

// writeCSV dumps the reproduced prescription series for external plotting.
func writeCSV(path string, analysis *trend.Analysis, ds *mic.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := analysis.Series.WriteCSV(f, ds.Diseases, ds.Medicines); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// stageTiming is one row of the per-stage wall-clock breakdown, shared by
// the -progress console table and the -out manifest's stage_timings section.
type stageTiming struct {
	Stage   string  `json:"stage"`
	Seconds float64 `json:"seconds"`
	Percent float64 `json:"percent"`
}

// stageTimings collects the registry's "time/stage/*" timers in pipeline
// order (model → reproduce → detect → surveil, then anything new lexically),
// with each stage's share of the total. Empty when no stage ran.
func stageTimings(metrics *obs.Registry) []stageTiming {
	snap := metrics.Snapshot()
	const prefix = "time/stage/"
	var names []string
	var total time.Duration
	for name := range snap.Timings {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
			total += time.Duration(snap.Timings[name].TotalNS)
		}
	}
	if len(names) == 0 || total <= 0 {
		return nil
	}
	order := map[string]int{"model": 0, "reproduce": 1, "detect": 2, "surveil": 3, "surveil-drill": 4}
	sort.Slice(names, func(a, b int) bool {
		sa, sb := strings.TrimPrefix(names[a], prefix), strings.TrimPrefix(names[b], prefix)
		oa, oka := order[sa]
		ob, okb := order[sb]
		if oka && okb {
			return oa < ob
		}
		if oka != okb {
			return oka
		}
		return sa < sb
	})
	rows := make([]stageTiming, 0, len(names))
	for _, name := range names {
		d := time.Duration(snap.Timings[name].TotalNS)
		rows = append(rows, stageTiming{
			Stage:   strings.TrimPrefix(name, prefix),
			Seconds: d.Seconds(),
			Percent: 100 * float64(d) / float64(total),
		})
	}
	return rows
}

// printStageSummary renders the per-stage wall-clock table from the
// registry's "time/stage/*" timers, in pipeline order.
func printStageSummary(w io.Writer, metrics *obs.Registry) {
	rows := stageTimings(metrics)
	if len(rows) == 0 {
		return
	}
	var total time.Duration
	for _, r := range rows {
		total += time.Duration(r.Seconds * float64(time.Second))
	}
	fmt.Fprintf(w, "\nstage wall-clock:\n")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-13s %12s  %5.1f%%\n",
			r.Stage, time.Duration(r.Seconds*float64(time.Second)).Round(time.Millisecond), r.Percent)
	}
	fmt.Fprintf(w, "  %-13s %12s\n", "total", total.Round(time.Millisecond))
}

// writeTrace dumps the collected spans as Chrome Trace Event JSON.
func writeTrace(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics dumps the registry snapshot as indented JSON ("-" = stdout).
func writeMetrics(path string, metrics *obs.Registry) error {
	snap := metrics.Snapshot()
	if path == "-" {
		return snap.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeJSONFile writes v as indented JSON.
func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
