package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"mictrend/internal/trend"
)

// TestOutDirArtifactLayout builds the real binary and runs it with
// -generate -hierarchy -out: the consolidated artifact directory must hold
// the report, surveillance report and tree, metrics, explain provenance,
// series CSV, and a manifest whose artifact map names each written file.
func TestOutDirArtifactLayout(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the trendscan binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "trendscan")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	outDir := filepath.Join(tmp, "run")
	cmd := exec.Command(bin,
		"-generate", "-months", "24", "-records", "300", "-seed", "11",
		"-seasonal=false", "-min-total", "50",
		"-hierarchy", "-out", outDir)
	stdout, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			t.Fatalf("trendscan exited %d:\n%s\n%s", ee.ExitCode(), stdout, ee.Stderr)
		}
		t.Fatal(err)
	}
	if !strings.Contains(string(stdout), "hierarchical surveillance:") {
		t.Fatalf("stdout is missing the surveillance drill-down report:\n%s", stdout)
	}

	// Every artifact of the consolidated layout exists.
	for _, name := range []string{
		"manifest.json", "report.txt", "surveillance.txt", "surveillance.json",
		"metrics.json", "trace.json", "series.csv",
		filepath.Join("explain", "manifest.json"),
	} {
		if _, err := os.Stat(filepath.Join(outDir, name)); err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
		}
	}

	// report.txt is the tee of stdout up to the artifact-flush lines.
	report, err := os.ReadFile(filepath.Join(outDir, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"analyzing 24 months", "stage wall-clock:", "hierarchical surveillance:"} {
		if !strings.Contains(string(report), want) {
			t.Errorf("report.txt is missing %q", want)
		}
	}

	// The manifest names the run and every written artifact.
	raw, err := os.ReadFile(filepath.Join(outDir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var man outManifest
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatalf("manifest.json: %v", err)
	}
	if man.Version != version {
		t.Errorf("manifest version = %q, want %q", man.Version, version)
	}
	if man.Months != 24 || man.Seed != 11 {
		t.Errorf("manifest months/seed = %d/%d, want 24/11", man.Months, man.Seed)
	}
	if man.SurveilNodes == 0 {
		t.Error("manifest reports zero surveillance nodes")
	}
	for _, key := range []string{"report", "metrics", "trace", "explain", "series_csv", "surveillance_report", "surveillance"} {
		path, ok := man.Artifacts[key]
		if !ok {
			t.Errorf("manifest artifact map is missing %q", key)
			continue
		}
		if _, err := os.Stat(path); err != nil {
			t.Errorf("manifest artifact %q points at a missing path: %v", key, err)
		}
	}

	// The manifest carries the same per-stage wall-clock table -progress
	// prints: at least the model and detect stages, percentages summing to
	// ~100, every duration positive.
	if len(man.StageTimings) < 2 {
		t.Fatalf("manifest stage_timings = %+v, want at least model and detect", man.StageTimings)
	}
	stages := map[string]bool{}
	var pct float64
	for _, row := range man.StageTimings {
		stages[row.Stage] = true
		if row.Seconds <= 0 {
			t.Errorf("stage %q has non-positive wall-clock %v", row.Stage, row.Seconds)
		}
		pct += row.Percent
	}
	for _, want := range []string{"model", "detect"} {
		if !stages[want] {
			t.Errorf("manifest stage_timings is missing stage %q: %+v", want, man.StageTimings)
		}
	}
	if pct < 99.5 || pct > 100.5 {
		t.Errorf("stage_timings percentages sum to %v, want ~100", pct)
	}

	// surveillance.json round-trips into the facade's Surveillance tree.
	raw, err = os.ReadFile(filepath.Join(outDir, "surveillance.json"))
	if err != nil {
		t.Fatal(err)
	}
	var surv trend.Surveillance
	if err := json.Unmarshal(raw, &surv); err != nil {
		t.Fatalf("surveillance.json: %v", err)
	}
	if len(surv.Nodes) != man.SurveilNodes {
		t.Errorf("surveillance.json has %d nodes, manifest says %d", len(surv.Nodes), man.SurveilNodes)
	}

	// Deprecated alias: -metrics overrides the path inside -out.
	outDir2 := filepath.Join(tmp, "run2")
	alias := filepath.Join(tmp, "aliased-metrics.json")
	cmd = exec.Command(bin,
		"-generate", "-months", "12", "-records", "200", "-seasonal=false",
		"-out", outDir2, "-metrics", alias)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("aliased run failed: %v\n%s", err, out)
	}
	if _, err := os.Stat(alias); err != nil {
		t.Errorf("-metrics alias was not honored: %v", err)
	}
	if _, err := os.Stat(filepath.Join(outDir2, "metrics.json")); err == nil {
		t.Error("-out wrote metrics.json despite the -metrics override")
	}
}

// TestHierarchyNeedsSource pins the usage error: -hierarchy without
// -generate or -hierarchy-file exits 2 before doing any work.
func TestHierarchyNeedsSource(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the trendscan binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "trendscan")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-in", filepath.Join(tmp, "nope.jsonl"), "-hierarchy")
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error, got %v", err)
	}
	if code := ee.ExitCode(); code != exitUsage {
		t.Fatalf("exit code = %d, want %d", code, exitUsage)
	}
}
