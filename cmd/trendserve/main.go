// Command trendserve runs the crash-safe incremental trend analysis service:
// months of MIC records are POSTed in one at a time, each fold re-runs the
// checkpointed pipeline (reusing every committed month's fitted model from
// the durable store), and queries always see the last complete Analysis.
//
// Usage:
//
//	trendserve -dir /var/lib/trendserve [-addr :8080]
//
// Ingest a month (the body is a one-month corpus in the JSONL codec):
//
//	curl -X POST --data-binary @month0.jsonl 'localhost:8080/v1/ingest?month=0'
//
// Query:
//
//	curl localhost:8080/v1/epoch
//	curl 'localhost:8080/v1/detections?detected=true'
//	curl 'localhost:8080/v1/series?key=prescription:3/7'
//	curl localhost:8080/v1/failures
//	curl localhost:8080/v1/recovery
//	curl localhost:8080/metrics
//
// Kill -9 the process at any moment and restart it: the store recovers the
// committed months (truncating any torn write-ahead-log tail), re-runs the
// analysis without refitting a single committed month, and /readyz goes
// green with byte-identical query results. SIGTERM instead drains: queued
// ingests finish folding, a clean-shutdown marker lands in the WAL, and the
// process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mictrend/internal/obs"
	"mictrend/internal/serve"
	"mictrend/internal/trend"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trendserve: ")
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		dir         = flag.String("dir", "", "checkpoint directory (required; created if missing)")
		queue       = flag.Int("queue", 8, "ingest queue depth; requests beyond it are shed with 429")
		workers     = flag.Int("workers", 0, "pipeline worker pool (0 = GOMAXPROCS)")
		method      = flag.String("method", "binary", "change point search: exact or binary")
		seasonal    = flag.Bool("seasonal", true, "include the 12-month seasonal component")
		minTotal    = flag.Float64("min-total", 10, "minimum total frequency for a series to be analyzed")
		retries     = flag.Int("retries", 3, "attempts per fold before a transient failure becomes terminal")
		timeout     = flag.Duration("request-timeout", 0, "server-side deadline applied to ingest requests without their own (0 = none)")
		drainWindow = flag.Duration("drain", time.Minute, "maximum time to drain in-flight folds on SIGTERM")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	opts := trend.DefaultOptions()
	opts.Seasonal = *seasonal
	opts.MinSeriesTotal = *minTotal
	opts.Workers = *workers
	switch *method {
	case "exact":
		opts.Method = trend.MethodExact
	case "binary":
		opts.Method = trend.MethodBinary
	default:
		log.Fatalf("unknown method %q (want exact or binary)", *method)
	}

	metrics := obs.NewRegistry()
	metrics.PublishExpvar("mictrend")
	retry := serve.DefaultRetryPolicy()
	retry.Attempts = *retries

	core, report, err := serve.NewCore(serve.CoreOptions{
		Dir:        *dir,
		Trend:      opts,
		QueueDepth: *queue,
		Retry:      retry,
		Metrics:    metrics,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("store %s: %s", *dir, report)
	for _, d := range report.Dropped {
		log.Printf("warning: dropped month %d: %s", d.Month, d.Reason)
	}

	handler := serve.NewHandler(core, serve.HandlerOptions{})
	if *timeout > 0 {
		handler = withDeadline(handler, *timeout)
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	// SIGTERM/SIGINT triggers the graceful path: stop accepting connections,
	// let in-flight requests finish, drain the fold queue, flush the final
	// checkpoint state, exit 0. A second signal aborts immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Listen before serving so the resolved address is known even with
	// ":0" (ephemeral port) — scripts and the CI smoke parse this line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		core.Close()
		log.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", ln.Addr())
		errCh <- srv.Serve(ln)
	}()

	select {
	case err := <-errCh:
		core.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default handling: a second signal kills hard
	log.Print("shutting down: draining in-flight folds…")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWindow)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("warning: http shutdown: %v", err)
	}
	if err := core.Close(); err != nil {
		log.Fatalf("drain failed: %v", err)
	}
	log.Print("drained cleanly")
}

// withDeadline bounds every request — and therefore the fold each ingest
// waits on — by a server-side deadline when the client set none.
func withDeadline(next http.Handler, d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := r.Context().Deadline(); !ok {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(w, r)
	})
}
