// Command trendserve runs the crash-safe incremental trend analysis service:
// months of MIC records are POSTed in one at a time, each fold re-runs the
// checkpointed pipeline (reusing every committed month's fitted model from
// the durable store), and queries always see the last complete Analysis.
//
// Usage:
//
//	trendserve -dir /var/lib/trendserve [-addr :8080]
//
// Ingest a month (the body is a one-month corpus in the JSONL codec):
//
//	curl -X POST --data-binary @month0.jsonl 'localhost:8080/v1/ingest?month=0'
//
// Query:
//
//	curl localhost:8080/v1/epoch
//	curl 'localhost:8080/v1/detections?detected=true'
//	curl 'localhost:8080/v1/series?key=prescription:3/7'
//	curl localhost:8080/v1/failures
//	curl localhost:8080/v1/recovery
//	curl localhost:8080/v1/status
//	curl localhost:8080/metrics
//
// Observability: every request gets a correlated id (X-Request-Id accepted or
// generated) stamped on the access log and echoed on the response; /metrics
// carries per-route RED series; /v1/status reports epoch age, queue depth,
// the last fold's cost, and each ingested month's lineage state. -log json
// switches the structured log to one JSON object per line; -trace FILE
// flushes a Chrome Trace (Perfetto-loadable) of every month's
// queue→fold→checkpoint→WAL→publish lineage on shutdown; -pprof ADDR serves
// net/http/pprof (plus expvar) on a separate ops listener.
//
// Kill -9 the process at any moment and restart it: the store recovers the
// committed months (truncating any torn write-ahead-log tail), re-runs the
// analysis without refitting a single committed month, and /readyz goes
// green with byte-identical query results. SIGTERM instead drains: queued
// ingests finish folding, a clean-shutdown marker lands in the WAL, and the
// process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "net/http/pprof" // registers /debug/pprof on the DefaultServeMux the -pprof listener serves

	"mictrend/internal/obs"
	"mictrend/internal/serve"
	"mictrend/internal/trend"
)

func main() {
	os.Exit(run())
}

// run is main behind an exit code, so deferred cleanup (trace flush, core
// drain) executes on every path — os.Exit in main would skip it.
func run() int {
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		dir         = flag.String("dir", "", "checkpoint directory (required; created if missing)")
		queue       = flag.Int("queue", 8, "ingest queue depth; requests beyond it are shed with 429")
		workers     = flag.Int("workers", 0, "pipeline worker pool (0 = GOMAXPROCS)")
		method      = flag.String("method", "binary", "change point search: exact or binary")
		seasonal    = flag.Bool("seasonal", true, "include the 12-month seasonal component")
		minTotal    = flag.Float64("min-total", 10, "minimum total frequency for a series to be analyzed")
		retries     = flag.Int("retries", 3, "attempts per fold before a transient failure becomes terminal")
		timeout     = flag.Duration("request-timeout", 0, "server-side deadline applied to ingest requests without their own (0 = none)")
		drainWindow = flag.Duration("drain", time.Minute, "maximum time to drain in-flight folds on SIGTERM")
		logFormat   = flag.String("log", "text", "structured log format: text or json")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		traceOut    = flag.String("trace", "", "write a Chrome Trace of ingest→epoch lineage to this file on shutdown")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof (and expvar) on this address (e.g. localhost:6060); off by default")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		return 2
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "trendserve: bad -log-level %q: %v\n", *logLevel, err)
		return 2
	}
	var logger *obs.Logger
	switch *logFormat {
	case "text":
		logger = obs.NewTextLogger(os.Stderr, level)
	case "json":
		logger = obs.NewJSONLogger(os.Stderr, level)
	default:
		fmt.Fprintf(os.Stderr, "trendserve: unknown -log %q (want text or json)\n", *logFormat)
		return 2
	}

	opts := trend.DefaultOptions()
	opts.Seasonal = *seasonal
	opts.MinSeriesTotal = *minTotal
	opts.Workers = *workers
	switch *method {
	case "exact":
		opts.Method = trend.MethodExact
	case "binary":
		opts.Method = trend.MethodBinary
	default:
		logger.Error("unknown method (want exact or binary)", slog.String("method", *method))
		return 2
	}

	metrics := obs.NewRegistry()
	metrics.PublishExpvar("mictrend")
	retry := serve.DefaultRetryPolicy()
	retry.Attempts = *retries

	var tracer *obs.Tracer
	var spanSink obs.SpanObserver
	if *traceOut != "" {
		tracer = obs.NewTracer()
		spanSink = tracer.Observe
	}

	core, report, err := serve.NewCore(serve.CoreOptions{
		Dir:        *dir,
		Trend:      opts,
		QueueDepth: *queue,
		Retry:      retry,
		Metrics:    metrics,
		Log:        logger,
		Trace:      spanSink,
	})
	if err != nil {
		logger.Error("opening store", slog.String("err", err.Error()))
		return 1
	}
	logger.Info("store opened", slog.String("dir", *dir), slog.String("recovery", report.String()))
	for _, d := range report.Dropped {
		logger.Warn("dropped month", slog.Int("month", d.Month), slog.String("reason", d.Reason))
	}

	if *pprofAddr != "" {
		// DefaultServeMux carries the pprof handlers (blank import) and the
		// expvar bridge; serving it on its own listener keeps the ops surface
		// off the API port.
		go func() {
			logger.Info("pprof listening", slog.String("addr", *pprofAddr))
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Warn("pprof server", slog.String("err", err.Error()))
			}
		}()
	}

	var handler http.Handler = serve.NewHandler(core, serve.HandlerOptions{})
	if *timeout > 0 {
		handler = withDeadline(handler, *timeout)
	}
	handler = serve.Instrument(handler, serve.InstrumentOptions{Metrics: metrics, Log: logger})
	srv := &http.Server{Addr: *addr, Handler: handler}

	// SIGTERM/SIGINT triggers the graceful path: stop accepting connections,
	// let in-flight requests finish, drain the fold queue, flush the final
	// checkpoint state, exit 0. A second signal aborts immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Listen before serving so the resolved address is known even with
	// ":0" (ephemeral port) — scripts and the CI smoke parse the addr field
	// of this record.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		core.Close()
		logger.Error("listen", slog.String("err", err.Error()))
		return 1
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", slog.String("addr", ln.Addr().String()))
		errCh <- srv.Serve(ln)
	}()

	exit := 0
	select {
	case err := <-errCh:
		core.Close()
		logger.Error("serve", slog.String("err", err.Error()))
		exit = 1
	case <-ctx.Done():
		stop() // restore default handling: a second signal kills hard
		logger.Info("shutting down: draining in-flight folds")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWindow)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Warn("http shutdown", slog.String("err", err.Error()))
		}
		if err := core.Close(); err != nil {
			logger.Error("drain failed", slog.String("err", err.Error()))
			exit = 1
		} else {
			logger.Info("drained cleanly")
		}
	}
	flushTrace(tracer, *traceOut, logger)
	return exit
}

// flushTrace writes the collected lineage spans as Chrome Trace JSON. A nil
// tracer (no -trace flag) is a no-op.
func flushTrace(tracer *obs.Tracer, path string, logger *obs.Logger) {
	if tracer == nil {
		return
	}
	f, err := os.Create(path)
	if err == nil {
		err = tracer.WriteTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		logger.Warn("writing trace", slog.String("path", path), slog.String("err", err.Error()))
		return
	}
	logger.Info("trace written", slog.String("path", path), slog.Int("spans", tracer.Len()))
}

// withDeadline bounds every request — and therefore the fold each ingest
// waits on — by a server-side deadline when the client set none.
func withDeadline(next http.Handler, d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := r.Context().Deadline(); !ok {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(w, r)
	})
}
