package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"mictrend/internal/mic"
	"mictrend/internal/micgen"
)

// TestCrashRecoverySmoke is the end-to-end kill-and-recover drill run in CI:
// build the real binary, ingest two months over HTTP, SIGKILL the process at
// a committed point, restart it on the same directory, and require /readyz
// plus byte-identical /v1/detections. A final SIGTERM pins the graceful
// drain path (exit 0, clean-shutdown marker honored on the next open).
func TestCrashRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the trendserve binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "trendserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	src, _, err := micgen.Generate(micgen.Config{
		Seed:            7,
		Months:          2,
		RecordsPerMonth: 120,
		BulkDiseases:    4,
		BulkMedicines:   4,
	})
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(tmp, "store")

	// First life: ingest both months, capture the served results.
	srv1 := startServer(t, bin, dir)
	for i := range src.Months {
		postMonth(t, srv1.base, src, i)
	}
	if n := epochMonths(t, srv1.base); n != 2 {
		t.Fatalf("epoch before kill serves %d months, want 2", n)
	}
	checkStatus(t, srv1.base)
	preDetections := queryResults(t, srv1.base)

	// Crash: no drain, no shutdown marker — exactly what a power cut leaves.
	if err := srv1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	srv1.cmd.Wait()

	// Second life: recover from the directory alone.
	srv2 := startServer(t, bin, dir)
	waitReadyz(t, srv2.base)
	if cleanShutdown(t, srv2.base) {
		t.Fatal("recovery after SIGKILL claims a clean shutdown")
	}
	if n := epochMonths(t, srv2.base); n != 2 {
		t.Fatalf("epoch after recovery serves %d months, want 2", n)
	}
	postDetections := queryResults(t, srv2.base)
	if !bytes.Equal(preDetections, postDetections) {
		t.Fatalf("results diverged across the crash:\npre:  %s\npost: %s",
			preDetections, postDetections)
	}

	// Graceful exit: SIGTERM drains and the process leaves with code 0.
	if err := srv2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := srv2.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM drain exited nonzero: %v", err)
	}

	// Third life: the drained store must report the clean-shutdown marker.
	srv3 := startServer(t, bin, dir)
	waitReadyz(t, srv3.base)
	if !cleanShutdown(t, srv3.base) {
		t.Fatal("recovery after SIGTERM drain is not clean")
	}
	srv3.cmd.Process.Kill()
	srv3.cmd.Wait()
}

type server struct {
	cmd  *exec.Cmd
	base string
}

// queryResults collects the served analysis content that must be identical
// across a crash: the detections and failures payloads, stripped of the
// epoch sequence number (which legitimately restarts with the process).
func queryResults(t *testing.T, base string) []byte {
	t.Helper()
	var out bytes.Buffer
	for _, path := range []string{"/v1/detections", "/v1/failures"} {
		var body struct {
			Detections json.RawMessage `json:"detections"`
			Failures   json.RawMessage `json:"failures"`
		}
		if err := json.Unmarshal(mustGet(t, base+path), &body); err != nil {
			t.Fatal(err)
		}
		out.Write(body.Detections)
		out.Write(body.Failures)
	}
	return out.Bytes()
}

func epochMonths(t *testing.T, base string) int {
	t.Helper()
	var e struct {
		Months int `json:"months"`
	}
	if err := json.Unmarshal(mustGet(t, base+"/v1/epoch"), &e); err != nil {
		t.Fatal(err)
	}
	return e.Months
}

// checkStatus smokes /v1/status after both months folded: ready, correct
// month count, every ingested month's lineage published, and each request
// carrying a correlated id back on the response.
func checkStatus(t *testing.T, base string) {
	t.Helper()
	resp, err := http.Get(base + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); id == "" {
		t.Fatal("/v1/status response lacks an X-Request-Id")
	}
	var st struct {
		Ready   bool `json:"ready"`
		Months  int  `json:"months"`
		Lineage []struct {
			Month int    `json:"month"`
			State string `json:"state"`
		} `json:"lineage"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Ready || st.Months != 2 || len(st.Lineage) != 2 {
		t.Fatalf("status = %+v", st)
	}
	for _, m := range st.Lineage {
		if m.State != "published" {
			t.Fatalf("month %d lineage state = %q, want published", m.Month, m.State)
		}
	}
}

func cleanShutdown(t *testing.T, base string) bool {
	t.Helper()
	var r struct {
		CleanShutdown bool `json:"clean_shutdown"`
	}
	if err := json.Unmarshal(mustGet(t, base+"/v1/recovery"), &r); err != nil {
		t.Fatal(err)
	}
	return r.CleanShutdown
}

// startServer launches the binary on an ephemeral port and parses the
// resolved address from its "listening on" log line.
func startServer(t *testing.T, bin, dir string) *server {
	t.Helper()
	cmd := exec.Command(bin,
		"-dir", dir,
		"-addr", "127.0.0.1:0",
		"-seasonal=false",
		"-min-total", "20",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			// The startup record is slog text: `... msg=listening addr=HOST:PORT`.
			line := sc.Text()
			if !strings.Contains(line, "msg=listening ") {
				continue
			}
			if i := strings.Index(line, "addr="); i >= 0 {
				addr := line[i+len("addr="):]
				if j := strings.IndexByte(addr, ' '); j >= 0 {
					addr = addr[:j]
				}
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &server{cmd: cmd, base: "http://" + addr}
	case <-time.After(30 * time.Second):
		t.Fatal("server never logged its listen address")
		return nil
	}
}

// postMonth sends month i of src as a standalone one-month ingest body.
func postMonth(t *testing.T, base string, src *mic.Dataset, i int) {
	t.Helper()
	out := mic.NewDataset()
	for _, code := range src.Diseases.Codes() {
		out.Diseases.Intern(code)
	}
	for _, code := range src.Medicines.Codes() {
		out.Medicines.Intern(code)
	}
	out.Hospitals = append(out.Hospitals, src.Hospitals...)
	m := src.Months[i]
	clone := &mic.Monthly{Month: 0, Records: make([]mic.Record, len(m.Records))}
	for j := range m.Records {
		clone.Records[j] = m.Records[j].Clone()
	}
	out.Months = append(out.Months, clone)

	var buf bytes.Buffer
	if err := mic.Write(&buf, out); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(fmt.Sprintf("%s/v1/ingest?month=%d", base, i), "application/jsonl", &buf)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest month %d: %d %s", i, resp.StatusCode, body)
	}
}

func waitReadyz(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("/readyz never went green")
}

func mustGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return body
}
