// Package mictrend is the public API of the prescription trend analysis
// library, a from-scratch Go implementation of "A Prescription Trend
// Analysis using Medical Insurance Claim Big Data" (ICDE 2019).
//
// The package re-exports the stable surface of the internal implementation:
//
//   - the MIC data model (Dataset, Record, vocabularies, JSONL codec),
//   - the synthetic corpus generator with ground truth,
//   - the latent-variable medication model (EM) with baselines and
//     time-series reproduction,
//   - the structural state space model with AIC change point search
//     (exact, binary, and greedy multi-change-point),
//   - the end-to-end trend analysis pipeline with change-cause
//     classification plus the geographic-spread and hospital-gap
//     applications,
//   - hierarchical surveillance (Surveil): roll series up an ATC-like class
//     hierarchy, detect change points on the aggregates, attribute each
//     break down to the members driving it, and flag offsetting
//     substitution pairs, and
//   - the observability layer: progress events, metrics, and failure
//     inspection for long pipeline runs.
//
// # Quick start
//
// The API is options-first: each entry point takes a context and one options
// struct whose zero value (or Default* constructor) is the paper's setup.
//
//	corpus, truth, _ := mictrend.GenerateCorpus(mictrend.GeneratorConfig{Months: 36, RecordsPerMonth: 1000})
//
//	opts := mictrend.DefaultAnalysisOptions()
//	opts.Method = mictrend.MethodExact // Algorithm 1; MethodBinary for the O(log T) search
//	analysis, err := mictrend.AnalyzeTrendsContext(ctx, corpus, opts)
//	if err != nil {
//		// Cancellation: analysis still holds everything completed so far.
//	}
//	for _, det := range mictrend.DetectedChangePoints(analysis.Prescriptions) {
//		// inspect det.Result.ChangePoint …
//	}
//	_ = truth
//
// The pipeline degrades instead of aborting: a month whose EM fit fails
// falls back to the cooccurrence model, and a series whose search fails
// loses only its own detection. Inspect what was skipped or downgraded:
//
//	for _, f := range analysis.Failures {
//		fmt.Println(f) // e.g. "detect prescription:3/7: … (after 4 starts)"
//	}
//
// # Observability
//
// Long runs report progress through an Observer and collect counters,
// histograms, and stage timers in a Metrics registry, both wired through
// AnalysisOptions:
//
//	metrics := mictrend.NewMetrics()
//	opts.Observer = func(e mictrend.Event) { log.Println(e) }
//	opts.Metrics = metrics
//	analysis, _ = mictrend.AnalyzeTrendsContext(ctx, corpus, opts)
//	_ = metrics.Snapshot().WriteJSON(os.Stdout)
//
// Event delivery is serialized, panic-isolated (a panicking Observer is
// muted and recorded as a StageObserver failure), and deterministic in
// order; the snapshot's counter/gauge/histogram sections are identical for
// any worker configuration. The registry also exposes its snapshot in
// Prometheus text format (Metrics.PrometheusHandler, Snapshot's
// WritePrometheus) and over expvar (Metrics.PublishExpvar).
//
// Deeper inspection is options-first too: a Tracer collects timed spans of
// every stage, month fit, series detection, and scan shard as a
// Perfetto-loadable Chrome trace, and Explain records why each change point
// was (or was not) selected:
//
//	tracer := mictrend.NewTracer()
//	opts.Trace = tracer.Observe
//	opts.Explain = true
//	analysis, _ = mictrend.AnalyzeTrendsContext(ctx, corpus, opts)
//	_ = tracer.WriteTrace(traceFile)                       // chrome://tracing
//	_ = mictrend.WriteExplain("explain", analysis,         // JSON artifacts
//		mictrend.BuildExplainManifest(opts, analysis))
//
// # Single-series change point detection
//
// Outside the pipeline, DetectChangePoint searches one series with the same
// options-first shape:
//
//	res, err := mictrend.DetectChangePoint(ctx, series, mictrend.DetectOptions{
//		Method:   mictrend.SearchExactParallel,
//		Seasonal: true,
//	})
package mictrend

import (
	"context"
	"io"
	"log/slog"
	"net/http"

	"mictrend/internal/apps"
	"mictrend/internal/changepoint"
	"mictrend/internal/medmodel"
	"mictrend/internal/mic"
	"mictrend/internal/micgen"
	"mictrend/internal/obs"
	"mictrend/internal/serve"
	"mictrend/internal/ssm"
	"mictrend/internal/trend"
)

// --- observability ---

// Observability types.
type (
	// Event is one structured pipeline progress event.
	Event = obs.Event
	// EventKind identifies a progress event (stage start/end, month fitted,
	// series done).
	EventKind = obs.EventKind
	// Observer receives progress events; wire one through
	// AnalysisOptions.Observer or DetectOptions.Observer. Deliveries are
	// serialized, panic-isolated, and arrive in serial-equivalent order for
	// any worker count.
	Observer = obs.Observer
	// Metrics is a registry of named counters, gauges, histograms, and
	// timers; wire one through AnalysisOptions.Metrics.
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a Metrics registry. Its
	// counter/gauge/histogram sections are deterministic for a given input
	// regardless of worker counts; Deterministic() strips the wall-clock
	// timings.
	MetricsSnapshot = obs.Snapshot
	// CounterVec is a counter family labeled by a fixed label-name list;
	// create one with Metrics.CounterVec.
	CounterVec = obs.CounterVec
	// GaugeVec is a labeled gauge family; create one with Metrics.GaugeVec.
	GaugeVec = obs.GaugeVec
	// HistogramVec is a labeled histogram family sharing one bucket layout;
	// create one with Metrics.HistogramVec.
	HistogramVec = obs.HistogramVec
	// Logger is the structured, leveled log handle the serving plane writes
	// through; the nil logger is silent and allocation-free.
	Logger = obs.Logger
	// ScanStats accumulates optimizer-level accounting (likelihood
	// evaluations, multi-start restarts, failures) across the fits of a
	// change point search; wire one through DetectOptions.Stats.
	ScanStats = ssm.FitStats
)

// Span tracing and decision provenance types.
type (
	// SpanEvent is one timed, categorized span of pipeline work.
	SpanEvent = obs.SpanEvent
	// SpanObserver receives spans; wire one through AnalysisOptions.Trace or
	// DetectOptions.Trace (usually a Tracer's Observe method). Span content
	// is deterministic for a given input; only timestamps vary.
	SpanObserver = obs.SpanObserver
	// Tracer collects spans and serializes them as Chrome Trace Event JSON
	// (WriteTrace), loadable in Perfetto or chrome://tracing.
	Tracer = obs.Tracer
	// ScanProvenance is one change point search's full decision record: the
	// AIC ladder over every evaluated candidate (with warm/cold/refit or
	// bisection-probe paths), the bisection trail for the binary search, and
	// the selected model's parameters.
	ScanProvenance = changepoint.Provenance
	// CandidateEval is one rung of a ScanProvenance AIC ladder.
	CandidateEval = changepoint.CandidateEval
	// BinaryStep is one bisection interval of the binary search's trail.
	BinaryStep = changepoint.BinaryStep
	// MonthProvenance records one month's EM convergence (per-iteration
	// log-likelihoods, fallback events) when AnalysisOptions.Explain is set.
	MonthProvenance = trend.MonthProvenance
	// SeriesProvenance records one series' detection decision — its
	// ScanProvenance or its failure link — when AnalysisOptions.Explain is
	// set.
	SeriesProvenance = trend.SeriesProvenance
	// ExplainManifest summarizes a run for the WriteExplain artifacts.
	ExplainManifest = trend.Manifest
)

// Trace lanes: the tid each span family renders under in a trace viewer.
const (
	LaneStage  = obs.LaneStage
	LaneEM     = obs.LaneEM
	LaneDetect = obs.LaneDetect
	LaneScan   = obs.LaneScan
	LaneSSM    = obs.LaneSSM
	LaneServe  = obs.LaneServe
)

// NewTracer returns an empty span collector; pass its Observe method as
// AnalysisOptions.Trace and serialize with WriteTrace after the run.
func NewTracer() *Tracer { return obs.NewTracer() }

// GuardSpans wraps a span observer with panic isolation: the first panic
// mutes the observer for good (onPanic, if non-nil, is told). The pipeline
// already guards AnalysisOptions.Trace; use this when invoking an untrusted
// observer directly.
func GuardSpans(cb SpanObserver, onPanic func(r any)) SpanObserver {
	return obs.GuardSpans(cb, onPanic)
}

// BuildExplainManifest derives a run's manifest from its options and
// analysis; fill Version/Seed/Records/Interrupted before WriteExplain.
func BuildExplainManifest(opts AnalysisOptions, a *Analysis) ExplainManifest {
	return trend.BuildManifest(opts, a)
}

// WriteExplain writes a run's decision-provenance artifacts (manifest.json,
// months.json, series/<key>.json) under dir. Run the analysis with
// AnalysisOptions.Explain set first.
func WriteExplain(dir string, a *Analysis, man ExplainManifest) error {
	return trend.WriteExplain(dir, a, man)
}

// Progress event kinds.
const (
	// EventStageStart opens a pipeline stage ("model", "reproduce",
	// "detect", "scan").
	EventStageStart = obs.StageStart
	// EventStageEnd closes a stage, carrying its wall-clock duration.
	EventStageEnd = obs.StageEnd
	// EventMonthFitted reports one month's medication model fit.
	EventMonthFitted = obs.MonthFitted
	// EventSeriesDone reports one series' change point search.
	EventSeriesDone = obs.SeriesDone
)

// NewMetrics returns an empty metrics registry to pass as
// AnalysisOptions.Metrics. A nil registry (the default) costs nothing.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewTextLogger returns a Logger writing logfmt-style text records at or
// above level to w; wire it through ServingOptions.Log.
func NewTextLogger(w io.Writer, level slog.Level) *Logger {
	return obs.NewTextLogger(w, level)
}

// NewJSONLogger returns a Logger writing one JSON object per record at or
// above level to w.
func NewJSONLogger(w io.Writer, level slog.Level) *Logger {
	return obs.NewJSONLogger(w, level)
}

// --- MIC data model ---

// Core claim data types.
type (
	// Dataset is a multi-month MIC corpus.
	Dataset = mic.Dataset
	// Monthly is one month's record collection.
	Monthly = mic.Monthly
	// Record is a single claim: bags of diseases and medicines, no links.
	Record = mic.Record
	// DiseaseCount is one disease bag entry.
	DiseaseCount = mic.DiseaseCount
	// Hospital is per-institution metadata.
	Hospital = mic.Hospital
	// HospitalClass groups hospitals by bed count.
	HospitalClass = mic.HospitalClass
	// DiseaseID identifies a disease within a dataset vocabulary.
	DiseaseID = mic.DiseaseID
	// MedicineID identifies a medicine within a dataset vocabulary.
	MedicineID = mic.MedicineID
	// Pair identifies a disease–medicine pair.
	Pair = mic.Pair
)

// Hospital size classes (paper §VII-C).
const (
	SmallHospital  = mic.SmallHospital
	MediumHospital = mic.MediumHospital
	LargeHospital  = mic.LargeHospital
)

// NewDataset returns an empty dataset with fresh vocabularies.
func NewDataset() *Dataset { return mic.NewDataset() }

// Codec resilience types.
type (
	// CorpusReadOptions controls lenient vs. strict decoding of malformed
	// corpus lines.
	CorpusReadOptions = mic.ReadOptions
	// CorpusReadStats reports how many malformed lines a lenient read
	// skipped.
	CorpusReadStats = mic.ReadStats
)

// ReadCorpus reads a dataset written by WriteCorpus, skipping malformed
// record lines; use ReadCorpusStats to observe or forbid skips.
func ReadCorpus(r io.Reader) (*Dataset, error) { return mic.Read(r) }

// ReadCorpusStats reads a dataset with explicit lenient/strict handling of
// malformed record lines, reporting what was skipped.
func ReadCorpusStats(r io.Reader, opts CorpusReadOptions) (*Dataset, CorpusReadStats, error) {
	return mic.ReadWithStats(r, opts)
}

// WriteCorpus serializes a dataset as JSONL.
func WriteCorpus(w io.Writer, d *Dataset) error { return mic.Write(w, d) }

// ReadCorpusFile reads a dataset from a file, transparently decompressing
// ".gz" paths and skipping malformed record lines.
func ReadCorpusFile(path string) (*Dataset, error) { return mic.ReadFile(path) }

// ReadCorpusFileStats is ReadCorpusStats for files.
func ReadCorpusFileStats(path string, opts CorpusReadOptions) (*Dataset, CorpusReadStats, error) {
	return mic.ReadFileWithStats(path, opts)
}

// WriteCorpusFile writes a dataset to a file, gzip-compressing ".gz" paths.
func WriteCorpusFile(path string, d *Dataset) error { return mic.WriteFile(path, d) }

// --- columnar data plane ---

// Storage-backend types. The data plane has two interchangeable codecs —
// line-oriented JSONL and the MICC1 binary columnar format (see DESIGN.md) —
// behind one Storage interface; every reader sniffs the format from magic
// bytes, so callers rarely name a format explicitly.
type (
	// CorpusFormat identifies a corpus serialization (auto, JSONL, columnar).
	CorpusFormat = mic.Format
	// CorpusStorageOptions bundles codec tuning: lenient/strict JSONL reads,
	// columnar worker counts, and the columnar flate level.
	CorpusStorageOptions = mic.StorageOptions
	// CorpusStorage is one serialization backend (JSONL or columnar).
	CorpusStorage = mic.Storage
	// CorpusStreamMeta is the up-front dataset description a streaming
	// writer needs before months arrive (vocabularies, hospitals, months).
	CorpusStreamMeta = mic.StreamMeta
	// CorpusStreamWriter receives months in order and finalizes on Close,
	// so corpora of any size can be written without materializing them.
	CorpusStreamWriter = mic.StreamWriter
	// ColumnarWriterOptions tunes the MICC1 writer (block compression
	// workers, flate level). Output bytes are identical for every Workers
	// value.
	ColumnarWriterOptions = mic.ColumnarWriterOptions
	// ColumnarReadOptions tunes the MICC1 reader (decode workers, strict
	// vocabulary validation).
	ColumnarReadOptions = mic.ColumnarReadOptions
	// ColumnarCorpus is an open MICC1 file whose months decode
	// independently on demand.
	ColumnarCorpus = mic.ColumnarFile
)

// Corpus formats.
const (
	CorpusFormatAuto     = mic.FormatAuto
	CorpusFormatJSONL    = mic.FormatJSONL
	CorpusFormatColumnar = mic.FormatColumnar
)

// ParseCorpusFormat parses "auto", "jsonl", or "columnar".
func ParseCorpusFormat(s string) (CorpusFormat, error) { return mic.ParseFormat(s) }

// SniffCorpusFile detects a corpus file's format from its magic bytes.
func SniffCorpusFile(path string) (CorpusFormat, error) { return mic.SniffFile(path) }

// ReadCorpusAuto reads a corpus from a stream in whatever format it is in —
// MICC1 columnar, JSONL, or gzipped JSONL — reporting the detected format.
func ReadCorpusAuto(r io.Reader, opts CorpusStorageOptions) (*Dataset, CorpusReadStats, CorpusFormat, error) {
	return mic.ReadAuto(r, opts)
}

// ReadCorpusFileAs reads a corpus file as the given format (CorpusFormatAuto
// sniffs magic bytes), reporting the format actually decoded.
func ReadCorpusFileAs(path string, format CorpusFormat, opts CorpusStorageOptions) (*Dataset, CorpusReadStats, CorpusFormat, error) {
	return mic.ReadDatasetFile(path, format, opts)
}

// WriteCorpusFileAs writes a corpus file in the given format
// (CorpusFormatAuto picks by extension: ".micc" columnar, else JSONL with
// gzip for ".gz"), reporting the format written.
func WriteCorpusFileAs(path string, format CorpusFormat, d *Dataset, opts CorpusStorageOptions) (CorpusFormat, error) {
	return mic.WriteDatasetFile(path, format, d, opts)
}

// NewCorpusStreamWriter opens a month-at-a-time corpus writer at path in
// the given format; months passed to WriteMonth are persisted incrementally
// so the corpus never needs to fit in memory.
func NewCorpusStreamWriter(path string, format CorpusFormat, meta CorpusStreamMeta, opts CorpusStorageOptions) (CorpusStreamWriter, CorpusFormat, error) {
	return mic.NewStreamFileWriter(path, format, meta, opts)
}

// NewCorpusStreamMeta derives streaming metadata from an in-memory dataset.
func NewCorpusStreamMeta(d *Dataset) CorpusStreamMeta { return mic.NewStreamMeta(d) }

// OpenColumnarCorpus opens a MICC1 file for random-access month decoding
// without loading any record data.
func OpenColumnarCorpus(path string) (*ColumnarCorpus, error) { return mic.OpenColumnarFile(path) }

// ReadColumnarCorpusFile decodes an entire MICC1 file, fanning blocks out
// across a bounded worker pool; the result is identical for every worker
// count.
func ReadColumnarCorpusFile(path string, opts ColumnarReadOptions) (*Dataset, error) {
	return mic.ReadColumnarFile(path, opts)
}

// WriteColumnarCorpusFile encodes a dataset as a MICC1 file.
func WriteColumnarCorpusFile(path string, d *Dataset, opts ColumnarWriterOptions) error {
	return mic.WriteColumnarFile(path, d, opts)
}

// --- synthetic corpus generation ---

// Generator types.
type (
	// GeneratorConfig parameterizes synthetic corpus generation.
	GeneratorConfig = micgen.Config
	// Truth carries the generator's ground truth (true links, relevance,
	// injected structural events).
	Truth = micgen.Truth
	// TrueChange is one injected structural event.
	TrueChange = micgen.TrueChange
	// Catalog is the synthetic disease/medicine/city world description.
	Catalog = micgen.Catalog
)

// GenerateCorpus builds a synthetic MIC corpus plus its ground truth;
// deterministic in the config.
func GenerateCorpus(cfg GeneratorConfig) (*Dataset, *Truth, error) {
	return micgen.Generate(cfg)
}

// --- medication model (the paper's core contribution) ---

// Medication model types.
type (
	// MedicationModel is the fitted latent-variable model for one month.
	MedicationModel = medmodel.Model
	// EMOptions tunes the EM loop.
	EMOptions = medmodel.FitOptions
	// SeriesSet holds reproduced disease/medicine/prescription time series.
	SeriesSet = medmodel.SeriesSet
	// Cooccurrence is the paper's main baseline (Eq. 10).
	Cooccurrence = medmodel.Cooccurrence
	// Unigram is the paper's weaker baseline.
	Unigram = medmodel.Unigram
)

// FitMedicationModel fits the latent-variable model to one month by EM.
func FitMedicationModel(month *Monthly, vocabMedicines int, opts EMOptions) (*MedicationModel, error) {
	return medmodel.Fit(month, vocabMedicines, opts)
}

// MonthFitError describes one month whose EM fit failed or panicked.
type MonthFitError = medmodel.MonthError

// FitMedicationModels fits one model per month, failing fast on the first
// month that cannot be fitted. Use FitMedicationModelsContext for
// skip-and-report semantics and cancellation. Set EMOptions.PriorWeight to
// chain a Dirichlet prior across months (the smoothed variant).
func FitMedicationModels(d *Dataset, opts EMOptions) ([]*MedicationModel, error) {
	models, fails, err := FitMedicationModelsContext(context.Background(), d, opts)
	if err != nil {
		return nil, err
	}
	if len(fails) > 0 {
		return nil, fails[0].Err
	}
	return models, nil
}

// FitMedicationModelsContext fits one model per month under ctx. Months that
// fail (or panic) leave a nil model and a MonthFitError; the error return is
// reserved for cancellation, alongside the partial results.
func FitMedicationModelsContext(ctx context.Context, d *Dataset, opts EMOptions) ([]*MedicationModel, []MonthFitError, error) {
	return medmodel.FitAll(ctx, d, opts)
}

// FitMedicationModelsSmoothed chains a Dirichlet prior across months (the
// paper's §IX Dynamic Topic Model direction).
//
// Deprecated: set EMOptions.PriorWeight and call FitMedicationModels (or
// FitMedicationModelsContext for per-month degradation and cancellation).
func FitMedicationModelsSmoothed(d *Dataset, opts EMOptions, priorWeight float64) ([]*MedicationModel, error) {
	opts.PriorWeight = priorWeight
	return FitMedicationModels(d, opts)
}

// ReproduceSeries applies fitted models to their months and accumulates the
// prescription time series of the paper's Eqs. 7–8.
func ReproduceSeries(d *Dataset, models []*MedicationModel) (*SeriesSet, error) {
	return medmodel.Reproduce(d, models)
}

// ReproduceSeriesParallel is ReproduceSeries fanned out over workers
// month-wise (0 = GOMAXPROCS). The result is bit-identical to the serial
// reproduction for every worker count: each month accumulates locally in
// record order and the merge is pure placement.
func ReproduceSeriesParallel(d *Dataset, models []*MedicationModel, workers int) (*SeriesSet, error) {
	return medmodel.ReproduceParallel(d, models, workers)
}

// --- structural model and change point search ---

// Structural model types.
type (
	// StructuralConfig selects the state space model variant.
	StructuralConfig = ssm.Config
	// StructuralFit is a maximum-likelihood-fitted structural model.
	StructuralFit = ssm.Fit
	// Decomposition splits a fitted series into level/seasonal/
	// intervention/irregular components.
	Decomposition = ssm.Decomposition
	// Intervention is one structural change regressor.
	Intervention = ssm.Intervention
	// ChangePointResult is the outcome of a change point search.
	ChangePointResult = changepoint.Result
	// MultiChangePointResult is the outcome of the greedy multi-break
	// search.
	MultiChangePointResult = changepoint.MultiResult
	// MultiChangePointOptions configures the greedy multi-break search.
	MultiChangePointOptions = changepoint.MultiOptions
)

// NoChangePoint marks the absence of an intervention (t_CP = ∞).
const NoChangePoint = ssm.NoChangePoint

// FitStructuralModel fits the Eq. 9 model to a monthly series.
func FitStructuralModel(series []float64, cfg StructuralConfig) (*StructuralFit, error) {
	return ssm.FitConfig(series, cfg)
}

// DetectOptions configures DetectChangePoint: the search method, the model
// variant, worker count, and optional observability (DetectOptions.Stats,
// DetectOptions.Observer). The zero value runs the serial exact scan of a
// non-seasonal model.
type DetectOptions = changepoint.DetectOptions

// SearchMethod selects DetectChangePoint's algorithm.
type SearchMethod = changepoint.SearchMethod

// Change point search methods for DetectOptions.Method.
const (
	// SearchExact is the serial Algorithm 1 (O(T) fits).
	SearchExact = changepoint.SearchExact
	// SearchBinary is the approximate Algorithm 2 (O(log T) fits).
	SearchBinary = changepoint.SearchBinary
	// SearchExactParallel is Algorithm 1 on the candidate-sharded,
	// warm-started scan; it selects the same change point as SearchExact for
	// any worker count.
	SearchExactParallel = changepoint.SearchExactParallel
	// SearchExactPrefix is Algorithm 1 on the prefix-checkpointed evaluator:
	// shared-parameter AIC ladders scored by checkpoint resumes screen the
	// candidates down to a handful of real fits. Selection is byte-identical
	// to SearchExact for any worker count; the pipeline's exact method uses
	// it by default.
	SearchExactPrefix = changepoint.SearchExactPrefix
)

// DetectChangePoint runs the selected change point search on one series. It
// consolidates the deprecated DetectChangePointExact/Binary/ExactParallel
// entry points behind one options struct, producing byte-identical results
// to each; cancellation surfaces as ctx's error within one in-flight model
// fit.
func DetectChangePoint(ctx context.Context, series []float64, opts DetectOptions) (ChangePointResult, error) {
	return changepoint.Detect(ctx, series, opts)
}

// DetectChangePointExact runs the paper's Algorithm 1 (O(T) fits).
//
// Deprecated: use DetectChangePoint with DetectOptions{Method: SearchExact}.
func DetectChangePointExact(series []float64, seasonal bool) (ChangePointResult, error) {
	return DetectChangePoint(context.Background(), series, DetectOptions{Method: SearchExact, Seasonal: seasonal})
}

// DetectChangePointBinary runs the paper's Algorithm 2 (O(log T) fits).
//
// Deprecated: use DetectChangePoint with DetectOptions{Method: SearchBinary}.
func DetectChangePointBinary(series []float64, seasonal bool) (ChangePointResult, error) {
	return DetectChangePoint(context.Background(), series, DetectOptions{Method: SearchBinary, Seasonal: seasonal})
}

// DetectChangePointExactParallel runs Algorithm 1 with the candidate-sharded,
// warm-started parallel scan: workers (0 = GOMAXPROCS) shard the candidate
// months, each seeding its fits from the previous candidate's optimum. The
// selected change point matches the serial exact scan; see
// changepoint.ParallelOptions for the exact determinism contract.
//
// Deprecated: use DetectChangePoint with DetectOptions{Method:
// SearchExactParallel, Workers: workers}.
func DetectChangePointExactParallel(series []float64, seasonal bool, workers int) (ChangePointResult, error) {
	return DetectChangePoint(context.Background(), series, DetectOptions{
		Method: SearchExactParallel, Seasonal: seasonal, Workers: workers,
	})
}

// DetectChangePoints runs the greedy multiple-change-point search (§IX
// extension).
func DetectChangePoints(series []float64, opts MultiChangePointOptions) (MultiChangePointResult, error) {
	return changepoint.DetectMultiple(series, opts)
}

// --- end-to-end pipeline and applications ---

// Pipeline types.
type (
	// AnalysisOptions configures the pipeline.
	AnalysisOptions = trend.Options
	// Analysis is the full pipeline output.
	Analysis = trend.Analysis
	// Detection is one series' change point search outcome.
	Detection = trend.Detection
	// Cause categorizes a prescription trend change.
	Cause = trend.Cause
	// Emerging is a detected upward trend with its projection.
	Emerging = trend.Emerging
	// AnalysisFailure records one series or month the pipeline degraded
	// around instead of aborting.
	AnalysisFailure = trend.Failure
	// FailureStage identifies the pipeline stage a failure occurred in.
	FailureStage = trend.FailureStage
	// DiseaseShare is one row of a medicine's disease ranking.
	DiseaseShare = apps.DiseaseShare
	// CityCounts maps city → medicine → estimated prescription count.
	CityCounts = apps.CityCounts
)

// Change causes (paper §III-B taxonomy).
const (
	CauseNone         = trend.CauseNone
	CauseDisease      = trend.CauseDisease
	CauseMedicine     = trend.CauseMedicine
	CausePrescription = trend.CausePrescription
)

// Change point search methods for AnalysisOptions.Method. These are the
// same constants as the Search* values; the pipeline runs MethodExact (and
// MethodExactParallel) on the warm-started parallel scan under its worker
// budget.
const (
	// MethodExact is the paper's Algorithm 1.
	MethodExact = trend.MethodExact
	// MethodBinary is the paper's Algorithm 2.
	MethodBinary = trend.MethodBinary
	// MethodExactParallel requests the parallel scan explicitly; within the
	// pipeline it behaves exactly like MethodExact.
	MethodExactParallel = trend.MethodExactParallel
)

// Series kinds.
const (
	KindDisease      = trend.KindDisease
	KindMedicine     = trend.KindMedicine
	KindPrescription = trend.KindPrescription
)

// Pipeline failure stages.
const (
	StageModel    = trend.StageModel
	StageValidate = trend.StageValidate
	StageDetect   = trend.StageDetect
	StageObserver = trend.StageObserver
)

// DefaultAnalysisOptions mirrors the paper's setup (seasonal model, exact
// search, §VI filters).
func DefaultAnalysisOptions() AnalysisOptions { return trend.DefaultOptions() }

// AnalyzeTrends runs the full two-stage pipeline. Per-series and per-month
// problems do not abort the run; they are recorded in Analysis.Failures.
func AnalyzeTrends(d *Dataset, opts AnalysisOptions) (*Analysis, error) {
	return AnalyzeTrendsContext(context.Background(), d, opts)
}

// AnalyzeTrendsContext is AnalyzeTrends under a context: cancellation stops
// the scan within one in-flight model fit and returns the partial analysis
// together with ctx's error.
func AnalyzeTrendsContext(ctx context.Context, d *Dataset, opts AnalysisOptions) (*Analysis, error) {
	return trend.Analyze(ctx, d, opts)
}

// ClassifyChanges attributes each detected prescription change to its cause.
func ClassifyChanges(a *Analysis, toleranceMonths int) map[Pair]Cause {
	return trend.ClassifyChanges(a, toleranceMonths)
}

// DetectedChangePoints filters detections to those with a change point,
// strongest first.
func DetectedChangePoints(dets []Detection) []Detection {
	return trend.DetectedChangePoints(dets)
}

// EmergingTrends projects detected upward trends forward (§IX "early signs"
// question).
func EmergingTrends(dets []Detection, seasonal bool, horizonMonths int) ([]Emerging, error) {
	return trend.EmergingTrends(dets, seasonal, horizonMonths)
}

// --- hierarchical surveillance ---

// Hierarchical surveillance types: detect high, attribute down. Surveil
// rolls the reproduced series up an ATC-like class hierarchy, scans the much
// smaller aggregate set for change points, attributes each aggregate break
// to the member series driving it, and flags offsetting substitution pairs
// that no aggregate-level scan can see.
type (
	// SeriesKey is the typed identity of one analyzed series — leaf
	// (disease, medicine, prescription pair) or aggregate (class, class
	// group, disease group). Its String form is the pipeline's stable
	// stringly key ("prescription:3/7", "class:B01").
	SeriesKey = trend.SeriesKey
	// SeriesKind identifies a series key's level.
	SeriesKind = trend.SeriesKind
	// ClassHierarchy maps leaf vocabulary ids into the class tree.
	ClassHierarchy = trend.Hierarchy
	// SurveilOptions configures Surveil: the hierarchy, the shared pipeline
	// options, attribution windows, and offset thresholds.
	SurveilOptions = trend.SurveilOptions
	// Surveillance is Surveil's output tree: aggregate nodes with their
	// scans and attributions, offset pairs, failures, and fit accounting.
	Surveillance = trend.Surveillance
	// SurveilNode is one aggregate series of the hierarchy.
	SurveilNode = trend.SurveilNode
	// SurveilAttribution is one child's contribution to a detected
	// aggregate break.
	SurveilAttribution = trend.Attribution
	// SurveilOffsetPair is a flagged offsetting substitution: a member's
	// decline absorbed by a sibling's rise, invisible at aggregate level.
	SurveilOffsetPair = trend.OffsetPair
	// AggregateEventTruth is a generator ground-truth event lifted to the
	// class level, for validating surveillance accuracy.
	AggregateEventTruth = micgen.AggregateEvent
	// OffsetPairTruth is a generator-planted offsetting substitution.
	OffsetPairTruth = micgen.OffsetTruth
)

// Aggregate series kinds (the leaf kinds are above).
const (
	KindMedicineClass = trend.KindMedicineClass
	KindMedicineGroup = trend.KindMedicineGroup
	KindDiseaseGroup  = trend.KindDiseaseGroup
)

// StageSurveil marks failures of the aggregate and drill-down surveillance
// scans.
const StageSurveil = trend.StageSurveil

// ParseSeriesKey parses a stringly series key ("medicine:9",
// "prescription:3/11", "class-group:B") back into its typed form.
func ParseSeriesKey(s string) (SeriesKey, error) { return trend.ParseSeriesKey(s) }

// NewClassHierarchy resolves a code-keyed hierarchy (such as the generator
// catalog's MedicineClasses/ClassGroupCodes/DiseaseGroups maps) against a
// dataset's vocabularies.
func NewClassHierarchy(d *Dataset, medicineClass, classGroup, diseaseGroup map[string]string) ClassHierarchy {
	return trend.HierarchyFromCodes(d, medicineClass, classGroup, diseaseGroup)
}

// Surveil runs hierarchical surveillance over a corpus: model and reproduce
// the series (or reuse SurveilOptions.Analysis), roll them up the hierarchy,
// scan the aggregates, attribute detected breaks down to members, and flag
// offsetting substitutions. It shares AnalyzeTrendsContext's contracts:
// options-first, deterministic for any Workers/Shards split, degrading
// per-node on failure, observable through the same Observer/Metrics/Trace
// hooks, and cancellable with partial results.
func Surveil(ctx context.Context, d *Dataset, opts SurveilOptions) (*Surveillance, error) {
	return trend.Surveil(ctx, d, opts)
}

// --- crash-safe incremental serving ---

// Serving and checkpointing types.
type (
	// Checkpointer persists per-month model-stage state so an interrupted or
	// incremental analysis resumes without refitting committed months; wire
	// one through AnalysisOptions.Checkpoint. CheckpointStore is the durable
	// implementation.
	Checkpointer = trend.Checkpointer
	// MonthCheckpoint is one month's persisted model-stage state: the fitted
	// model or its recorded degradation, guarded by a data hash.
	MonthCheckpoint = trend.MonthCheckpoint
	// CheckpointStore is the durable on-disk Checkpointer: each month commits
	// via write-tmp-fsync-rename plus a CRC-framed manifest WAL, and recovery
	// rolls a crashed store back to its last consistent prefix.
	CheckpointStore = serve.Store
	// RecoveryReport is the structured account of what opening a
	// CheckpointStore found, repaired, and discarded.
	RecoveryReport = serve.RecoveryReport
	// ServingCore is the crash-safe incremental serving engine: ingested
	// months fold through the checkpointed pipeline one at a time, and every
	// completed Analysis publishes as an immutable Epoch snapshot.
	ServingCore = serve.Core
	// ServingOptions configures NewServingCore.
	ServingOptions = serve.CoreOptions
	// ServingEpoch is one immutable published snapshot: readers always see
	// the last complete Analysis, never a partially folded month.
	ServingEpoch = serve.Epoch
	// ServeRetryPolicy is the bounded, jittered exponential backoff schedule
	// applied to transiently failed folds.
	ServeRetryPolicy = serve.RetryPolicy
	// ServingStatus is the /v1/status payload: readiness, epoch age, queue
	// pressure, last-fold cost, per-month lineage, and the recovery report.
	ServingStatus = serve.Status
	// MonthLineage is one ingested month's progress through the serving
	// plane's durable pipeline (queued → folding → checkpointed →
	// wal-committed → published, or failed).
	MonthLineage = serve.MonthLineage
	// InstrumentOptions configures the Instrument HTTP middleware.
	InstrumentOptions = serve.InstrumentOptions
)

// RequestIDHeader is the header Instrument reads and echoes for request
// correlation.
const RequestIDHeader = serve.RequestIDHeader

// Serving sentinel errors, mapped onto HTTP semantics by the serving handler
// (429, 503, 409).
var (
	ErrServeOverloaded    = serve.ErrOverloaded
	ErrServeClosing       = serve.ErrClosing
	ErrServeMonthConflict = serve.ErrMonthConflict
)

// OpenCheckpointStore opens (creating or crash-recovering) a durable
// checkpoint directory; assign the store to AnalysisOptions.Checkpoint to
// make repeated analyses over the same corpus resume instead of refit. The
// report says what recovery restored or discarded. metrics may be nil.
func OpenCheckpointStore(dir string, metrics *Metrics) (*CheckpointStore, *RecoveryReport, error) {
	return serve.Open(dir, metrics)
}

// NewServingCore opens the store under opts.Dir, recovers the committed
// corpus, and starts the fold loop; ServingCore.Ready flips once the first
// epoch publishes. Close drains gracefully.
func NewServingCore(opts ServingOptions) (*ServingCore, *RecoveryReport, error) {
	return serve.NewCore(opts)
}

// Instrument wraps an HTTP handler with the serving plane's RED metrics,
// request-id correlation, and structured access logging. With neither a
// metrics registry nor a logger configured it returns next unchanged.
func Instrument(next http.Handler, opts InstrumentOptions) http.Handler {
	return serve.Instrument(next, opts)
}

// ServeRequestID returns the correlated request id Instrument stashed in the
// request context ("" outside an instrumented handler).
func ServeRequestID(ctx context.Context) string {
	return serve.RequestID(ctx)
}

// HashCheckpointMonth fingerprints one filtered month plus the fit options
// that shape its model — the guard MonthCheckpoint.DataHash carries.
func HashCheckpointMonth(month *Monthly, em EMOptions) uint64 {
	return trend.HashMonth(month, em)
}

// TopDiseasesForMedicine ranks the diseases a medicine is prescribed for
// (paper Table II).
func TopDiseasesForMedicine(d *Dataset, med MedicineID, k int, opts EMOptions) ([]DiseaseShare, error) {
	return apps.TopDiseasesForMedicine(d, med, k, opts)
}

// PrescriptionGapByClass runs the Table II ranking per hospital size class.
func PrescriptionGapByClass(d *Dataset, med MedicineID, k int, opts EMOptions) (map[HospitalClass][]DiseaseShare, error) {
	return apps.PrescriptionGapByClass(d, med, k, opts)
}

// PairCountsByCity estimates per-city prescription counts of medicines for a
// disease at one month (paper Fig. 8).
func PairCountsByCity(d *Dataset, disease DiseaseID, meds []MedicineID, month int, opts EMOptions) (CityCounts, error) {
	return apps.PairCountsByCity(d, disease, meds, month, opts)
}
