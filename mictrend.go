// Package mictrend is the public API of the prescription trend analysis
// library, a from-scratch Go implementation of "A Prescription Trend
// Analysis using Medical Insurance Claim Big Data" (ICDE 2019).
//
// The package re-exports the stable surface of the internal implementation:
//
//   - the MIC data model (Dataset, Record, vocabularies, JSONL codec),
//   - the synthetic corpus generator with ground truth,
//   - the latent-variable medication model (EM) with baselines and
//     time-series reproduction,
//   - the structural state space model with AIC change point search
//     (exact, binary, and greedy multi-change-point), and
//   - the end-to-end trend analysis pipeline with change-cause
//     classification plus the geographic-spread and hospital-gap
//     applications.
//
// Quick start:
//
//	corpus, truth, _ := mictrend.GenerateCorpus(mictrend.GeneratorConfig{Months: 36, RecordsPerMonth: 1000})
//	analysis, _ := mictrend.AnalyzeTrends(corpus, mictrend.DefaultAnalysisOptions())
//	for _, det := range mictrend.DetectedChangePoints(analysis.Prescriptions) {
//		// inspect det.Result.ChangePoint …
//	}
//	_ = truth
package mictrend

import (
	"context"
	"io"

	"mictrend/internal/apps"
	"mictrend/internal/changepoint"
	"mictrend/internal/medmodel"
	"mictrend/internal/mic"
	"mictrend/internal/micgen"
	"mictrend/internal/ssm"
	"mictrend/internal/trend"
)

// --- MIC data model ---

// Core claim data types.
type (
	// Dataset is a multi-month MIC corpus.
	Dataset = mic.Dataset
	// Monthly is one month's record collection.
	Monthly = mic.Monthly
	// Record is a single claim: bags of diseases and medicines, no links.
	Record = mic.Record
	// DiseaseCount is one disease bag entry.
	DiseaseCount = mic.DiseaseCount
	// Hospital is per-institution metadata.
	Hospital = mic.Hospital
	// HospitalClass groups hospitals by bed count.
	HospitalClass = mic.HospitalClass
	// DiseaseID identifies a disease within a dataset vocabulary.
	DiseaseID = mic.DiseaseID
	// MedicineID identifies a medicine within a dataset vocabulary.
	MedicineID = mic.MedicineID
	// Pair identifies a disease–medicine pair.
	Pair = mic.Pair
)

// Hospital size classes (paper §VII-C).
const (
	SmallHospital  = mic.SmallHospital
	MediumHospital = mic.MediumHospital
	LargeHospital  = mic.LargeHospital
)

// NewDataset returns an empty dataset with fresh vocabularies.
func NewDataset() *Dataset { return mic.NewDataset() }

// Codec resilience types.
type (
	// CorpusReadOptions controls lenient vs. strict decoding of malformed
	// corpus lines.
	CorpusReadOptions = mic.ReadOptions
	// CorpusReadStats reports how many malformed lines a lenient read
	// skipped.
	CorpusReadStats = mic.ReadStats
)

// ReadCorpus reads a dataset written by WriteCorpus, skipping malformed
// record lines; use ReadCorpusStats to observe or forbid skips.
func ReadCorpus(r io.Reader) (*Dataset, error) { return mic.Read(r) }

// ReadCorpusStats reads a dataset with explicit lenient/strict handling of
// malformed record lines, reporting what was skipped.
func ReadCorpusStats(r io.Reader, opts CorpusReadOptions) (*Dataset, CorpusReadStats, error) {
	return mic.ReadWithStats(r, opts)
}

// WriteCorpus serializes a dataset as JSONL.
func WriteCorpus(w io.Writer, d *Dataset) error { return mic.Write(w, d) }

// ReadCorpusFile reads a dataset from a file, transparently decompressing
// ".gz" paths and skipping malformed record lines.
func ReadCorpusFile(path string) (*Dataset, error) { return mic.ReadFile(path) }

// ReadCorpusFileStats is ReadCorpusStats for files.
func ReadCorpusFileStats(path string, opts CorpusReadOptions) (*Dataset, CorpusReadStats, error) {
	return mic.ReadFileWithStats(path, opts)
}

// WriteCorpusFile writes a dataset to a file, gzip-compressing ".gz" paths.
func WriteCorpusFile(path string, d *Dataset) error { return mic.WriteFile(path, d) }

// --- synthetic corpus generation ---

// Generator types.
type (
	// GeneratorConfig parameterizes synthetic corpus generation.
	GeneratorConfig = micgen.Config
	// Truth carries the generator's ground truth (true links, relevance,
	// injected structural events).
	Truth = micgen.Truth
	// TrueChange is one injected structural event.
	TrueChange = micgen.TrueChange
	// Catalog is the synthetic disease/medicine/city world description.
	Catalog = micgen.Catalog
)

// GenerateCorpus builds a synthetic MIC corpus plus its ground truth;
// deterministic in the config.
func GenerateCorpus(cfg GeneratorConfig) (*Dataset, *Truth, error) {
	return micgen.Generate(cfg)
}

// --- medication model (the paper's core contribution) ---

// Medication model types.
type (
	// MedicationModel is the fitted latent-variable model for one month.
	MedicationModel = medmodel.Model
	// EMOptions tunes the EM loop.
	EMOptions = medmodel.FitOptions
	// SeriesSet holds reproduced disease/medicine/prescription time series.
	SeriesSet = medmodel.SeriesSet
	// Cooccurrence is the paper's main baseline (Eq. 10).
	Cooccurrence = medmodel.Cooccurrence
	// Unigram is the paper's weaker baseline.
	Unigram = medmodel.Unigram
)

// FitMedicationModel fits the latent-variable model to one month by EM.
func FitMedicationModel(month *Monthly, vocabMedicines int, opts EMOptions) (*MedicationModel, error) {
	return medmodel.Fit(month, vocabMedicines, opts)
}

// MonthFitError describes one month whose EM fit failed or panicked.
type MonthFitError = medmodel.MonthError

// FitMedicationModels fits one model per month, failing fast on the first
// month that cannot be fitted. Use FitMedicationModelsContext for
// skip-and-report semantics and cancellation.
func FitMedicationModels(d *Dataset, opts EMOptions) ([]*MedicationModel, error) {
	models, fails, err := medmodel.FitAll(context.Background(), d, opts)
	if err != nil {
		return nil, err
	}
	if len(fails) > 0 {
		return nil, fails[0].Err
	}
	return models, nil
}

// FitMedicationModelsContext fits one model per month under ctx. Months that
// fail (or panic) leave a nil model and a MonthFitError; the error return is
// reserved for cancellation, alongside the partial results.
func FitMedicationModelsContext(ctx context.Context, d *Dataset, opts EMOptions) ([]*MedicationModel, []MonthFitError, error) {
	return medmodel.FitAll(ctx, d, opts)
}

// FitMedicationModelsSmoothed chains a Dirichlet prior across months (the
// paper's §IX Dynamic Topic Model direction).
func FitMedicationModelsSmoothed(d *Dataset, opts EMOptions, priorWeight float64) ([]*MedicationModel, error) {
	models, err := medmodel.FitAllSmoothed(context.Background(), d, opts, priorWeight)
	if err != nil {
		return nil, err
	}
	return models, nil
}

// ReproduceSeries applies fitted models to their months and accumulates the
// prescription time series of the paper's Eqs. 7–8.
func ReproduceSeries(d *Dataset, models []*MedicationModel) (*SeriesSet, error) {
	return medmodel.Reproduce(d, models)
}

// --- structural model and change point search ---

// Structural model types.
type (
	// StructuralConfig selects the state space model variant.
	StructuralConfig = ssm.Config
	// StructuralFit is a maximum-likelihood-fitted structural model.
	StructuralFit = ssm.Fit
	// Decomposition splits a fitted series into level/seasonal/
	// intervention/irregular components.
	Decomposition = ssm.Decomposition
	// Intervention is one structural change regressor.
	Intervention = ssm.Intervention
	// ChangePointResult is the outcome of a change point search.
	ChangePointResult = changepoint.Result
	// MultiChangePointResult is the outcome of the greedy multi-break
	// search.
	MultiChangePointResult = changepoint.MultiResult
	// MultiChangePointOptions configures the greedy multi-break search.
	MultiChangePointOptions = changepoint.MultiOptions
)

// NoChangePoint marks the absence of an intervention (t_CP = ∞).
const NoChangePoint = ssm.NoChangePoint

// FitStructuralModel fits the Eq. 9 model to a monthly series.
func FitStructuralModel(series []float64, cfg StructuralConfig) (*StructuralFit, error) {
	return ssm.FitConfig(series, cfg)
}

// DetectChangePointExact runs the paper's Algorithm 1 (O(T) fits).
func DetectChangePointExact(series []float64, seasonal bool) (ChangePointResult, error) {
	return changepoint.DetectExact(series, seasonal)
}

// DetectChangePointBinary runs the paper's Algorithm 2 (O(log T) fits).
func DetectChangePointBinary(series []float64, seasonal bool) (ChangePointResult, error) {
	return changepoint.DetectBinary(series, seasonal)
}

// DetectChangePointExactParallel runs Algorithm 1 with the candidate-sharded,
// warm-started parallel scan: workers (0 = GOMAXPROCS) shard the candidate
// months, each seeding its fits from the previous candidate's optimum. The
// selected change point matches the serial exact scan; see
// changepoint.ParallelOptions for the exact determinism contract.
func DetectChangePointExactParallel(series []float64, seasonal bool, workers int) (ChangePointResult, error) {
	return changepoint.DetectExactParallel(series, seasonal, changepoint.ParallelOptions{Workers: workers, WarmStart: true})
}

// DetectChangePoints runs the greedy multiple-change-point search (§IX
// extension).
func DetectChangePoints(series []float64, opts MultiChangePointOptions) (MultiChangePointResult, error) {
	return changepoint.DetectMultiple(series, opts)
}

// --- end-to-end pipeline and applications ---

// Pipeline types.
type (
	// AnalysisOptions configures the pipeline.
	AnalysisOptions = trend.Options
	// Analysis is the full pipeline output.
	Analysis = trend.Analysis
	// Detection is one series' change point search outcome.
	Detection = trend.Detection
	// Cause categorizes a prescription trend change.
	Cause = trend.Cause
	// Emerging is a detected upward trend with its projection.
	Emerging = trend.Emerging
	// AnalysisFailure records one series or month the pipeline degraded
	// around instead of aborting.
	AnalysisFailure = trend.Failure
	// FailureStage identifies the pipeline stage a failure occurred in.
	FailureStage = trend.FailureStage
	// DiseaseShare is one row of a medicine's disease ranking.
	DiseaseShare = apps.DiseaseShare
	// CityCounts maps city → medicine → estimated prescription count.
	CityCounts = apps.CityCounts
)

// Change causes (paper §III-B taxonomy).
const (
	CauseNone         = trend.CauseNone
	CauseDisease      = trend.CauseDisease
	CauseMedicine     = trend.CauseMedicine
	CausePrescription = trend.CausePrescription
)

// Change point search methods.
const (
	// MethodExact is the paper's Algorithm 1.
	MethodExact = trend.MethodExact
	// MethodBinary is the paper's Algorithm 2.
	MethodBinary = trend.MethodBinary
)

// Series kinds.
const (
	KindDisease      = trend.KindDisease
	KindMedicine     = trend.KindMedicine
	KindPrescription = trend.KindPrescription
)

// Pipeline failure stages.
const (
	StageModel    = trend.StageModel
	StageValidate = trend.StageValidate
	StageDetect   = trend.StageDetect
)

// DefaultAnalysisOptions mirrors the paper's setup (seasonal model, exact
// search, §VI filters).
func DefaultAnalysisOptions() AnalysisOptions { return trend.DefaultOptions() }

// AnalyzeTrends runs the full two-stage pipeline. Per-series and per-month
// problems do not abort the run; they are recorded in Analysis.Failures.
func AnalyzeTrends(d *Dataset, opts AnalysisOptions) (*Analysis, error) {
	return trend.Analyze(context.Background(), d, opts)
}

// AnalyzeTrendsContext is AnalyzeTrends under a context: cancellation stops
// the scan within one in-flight model fit and returns the partial analysis
// together with ctx's error.
func AnalyzeTrendsContext(ctx context.Context, d *Dataset, opts AnalysisOptions) (*Analysis, error) {
	return trend.Analyze(ctx, d, opts)
}

// ClassifyChanges attributes each detected prescription change to its cause.
func ClassifyChanges(a *Analysis, toleranceMonths int) map[Pair]Cause {
	return trend.ClassifyChanges(a, toleranceMonths)
}

// DetectedChangePoints filters detections to those with a change point,
// strongest first.
func DetectedChangePoints(dets []Detection) []Detection {
	return trend.DetectedChangePoints(dets)
}

// EmergingTrends projects detected upward trends forward (§IX "early signs"
// question).
func EmergingTrends(dets []Detection, seasonal bool, horizonMonths int) ([]Emerging, error) {
	return trend.EmergingTrends(dets, seasonal, horizonMonths)
}

// TopDiseasesForMedicine ranks the diseases a medicine is prescribed for
// (paper Table II).
func TopDiseasesForMedicine(d *Dataset, med MedicineID, k int, opts EMOptions) ([]DiseaseShare, error) {
	return apps.TopDiseasesForMedicine(d, med, k, opts)
}

// PrescriptionGapByClass runs the Table II ranking per hospital size class.
func PrescriptionGapByClass(d *Dataset, med MedicineID, k int, opts EMOptions) (map[HospitalClass][]DiseaseShare, error) {
	return apps.PrescriptionGapByClass(d, med, k, opts)
}

// PairCountsByCity estimates per-city prescription counts of medicines for a
// disease at one month (paper Fig. 8).
func PairCountsByCity(d *Dataset, disease DiseaseID, meds []MedicineID, month int, opts EMOptions) (CityCounts, error) {
	return apps.PairCountsByCity(d, disease, meds, month, opts)
}
