//go:build race

package mictrend

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
