package mictrend

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPublicAPITracingAndExplain drives the observability surface through
// the public facade only: span tracing to Chrome Trace JSON, decision
// provenance to explain artifacts, and the Prometheus exposition bridge.
func TestPublicAPITracingAndExplain(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end facade test is heavy")
	}
	corpus, _, err := GenerateCorpus(GeneratorConfig{
		Seed:            21,
		Months:          24,
		RecordsPerMonth: 400,
		BulkDiseases:    5,
		BulkMedicines:   6,
	})
	if err != nil {
		t.Fatal(err)
	}

	tracer := NewTracer()
	metrics := NewMetrics()
	opts := DefaultAnalysisOptions()
	opts.Seasonal = false
	opts.Method = MethodBinary
	opts.MinSeriesTotal = 300
	opts.Trace = tracer.Observe
	opts.Explain = true
	opts.Metrics = metrics
	analysis, err := AnalyzeTrends(corpus, opts)
	if err != nil {
		t.Fatal(err)
	}

	// The trace holds stage/month/series spans and serializes as valid
	// Trace Event JSON.
	if tracer.Len() == 0 {
		t.Fatal("no spans collected")
	}
	var buf bytes.Buffer
	if err := tracer.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			names[e.Name] = true
		}
	}
	for _, want := range []string{"stage/model", "stage/detect", "em/month", "detect/series"} {
		if !names[want] {
			t.Fatalf("trace lacks %q spans (have %v)", want, names)
		}
	}

	// Provenance covers the run and exports through the facade.
	if len(analysis.MonthProvenance) != corpus.T() || len(analysis.SeriesProvenance) == 0 {
		t.Fatalf("provenance: %d months, %d series", len(analysis.MonthProvenance), len(analysis.SeriesProvenance))
	}
	man := BuildExplainManifest(opts, analysis)
	man.Version = "facade-test"
	dir := t.TempDir()
	if err := WriteExplain(dir, analysis, man); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "series"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(analysis.SeriesProvenance) {
		t.Fatalf("%d series artifacts, want %d", len(entries), len(analysis.SeriesProvenance))
	}

	// The metrics registry exposes the run in Prometheus text format.
	var prom bytes.Buffer
	if err := metrics.Snapshot().WritePrometheus(&prom, "mictrend"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE mictrend_em_months_fitted_total counter",
		"mictrend_scan_series_total",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("prometheus exposition lacks %q", want)
		}
	}

	// A panicking span sink is muted, not fatal: GuardSpans through the
	// facade.
	panics := 0
	guarded := GuardSpans(func(SpanEvent) { panic("boom") }, func(any) { panics++ })
	guarded(SpanEvent{})
	guarded(SpanEvent{})
	if panics != 1 {
		t.Fatalf("guard recorded %d panics, want 1", panics)
	}
}
