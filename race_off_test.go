//go:build !race

package mictrend

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count assertions skip under -race, where runtime bookkeeping
// makes testing.AllocsPerRun unrepresentative of production builds.
const raceEnabled = false
