module mictrend

go 1.22
