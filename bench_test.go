// Package mictrend benchmarks regenerate every table and figure of the
// paper's evaluation section (via the internal/experiments harness) and
// exercise the numerical kernels. One benchmark per table and figure; run
// with:
//
//	go test -bench=. -benchmem
//
// The first iteration of each macro benchmark builds its shared environment
// lazily, so wall-clock per op reflects the experiment itself.
package mictrend

import (
	"bytes"
	"context"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"mictrend/internal/changepoint"
	"mictrend/internal/experiments"
	"mictrend/internal/kalman"
	"mictrend/internal/medmodel"
	"mictrend/internal/mic"
	"mictrend/internal/micgen"
	"mictrend/internal/obs"
	"mictrend/internal/serve"
	"mictrend/internal/ssm"
	"mictrend/internal/trend"
)

// benchConfig is a trimmed experiment configuration so the full table/figure
// suite completes in minutes.
func benchConfig() experiments.Config {
	cfg := experiments.SmallConfig()
	cfg.RecordsPerMonth = 500
	cfg.MaxSeriesPerKind = 8
	cfg.TopKDiseases = 10
	return cfg
}

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error
)

func sharedBenchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = experiments.NewEnv(benchConfig())
		if benchEnvErr != nil {
			return
		}
		// Warm the lazily fitted models so benchmarks measure the
		// experiment, not shared setup.
		_, _, benchEnvErr = benchEnv.Series()
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

// BenchmarkTableII reproduces Table II: per-hospital-class antibiotic
// prescription rankings.
func BenchmarkTableII(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTableII(env, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIII reproduces Table III: perplexity and relevance of the
// three medication models.
func BenchmarkTableIII(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTableIII(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIV reproduces Table IV: the AIC ablation (LL, LL+S, LL+I,
// LL+S+I, ARIMA) over sampled series.
func BenchmarkTableIV(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTableIV(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableV reproduces Table V: exact vs approximate search cost.
func BenchmarkTableV(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTableV(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableVI reproduces Table VI: exact/approximate change point
// consistency.
func BenchmarkTableVI(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTableVI(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 reproduces Fig. 2: cooccurrence vs proposed prediction
// for hypertension.
func BenchmarkFigure2(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure2(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 reproduces Fig. 3: seasonality, release, and indication
// expansion series.
func BenchmarkFigure3(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure3(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 reproduces Fig. 5: the AIC-vs-change-point valley.
func BenchmarkFigure5(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure5(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6 reproduces Fig. 6: the four disease/medicine case-study
// decompositions.
func BenchmarkFigure6(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure6(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7 reproduces Fig. 7: the prescription-level case studies.
func BenchmarkFigure7(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure7(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8 reproduces Fig. 8: geographical generic spread snapshots.
func BenchmarkFigure8(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure8(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9 reproduces Fig. 9: SSM vs ARIMA forecasting.
func BenchmarkFigure9(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure9(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensions runs the §IX future-work ablations (multiple change
// points, temporally smoothed EM).
func BenchmarkExtensions(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunExtensions(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinkRecovery evaluates both models' reproductions against the
// generator's true links — the ground-truth check the paper could not run.
func BenchmarkLinkRecovery(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunLinkRecovery(env, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- kernel micro-benchmarks (ablation of the design choices) ---

// BenchmarkGenerateCorpus measures synthetic corpus generation throughput.
func BenchmarkGenerateCorpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := micgen.Generate(micgen.Config{
			Seed: uint64(i + 1), Months: 12, RecordsPerMonth: 500,
			BulkDiseases: 8, BulkMedicines: 10,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKalmanLogLik measures one likelihood evaluation of the seasonal
// structural model on a 43-month series — the unit the Nelder-Mead objective
// pays hundreds of times per fit. The workspace sub-benchmark is the
// allocation-free workspace kernel (0 allocs/op once its buffers exist); the
// filter sub-benchmark runs the same model through the full Filter, the path
// the likelihood search used before the workspace kernel existed; the steady
// sub-benchmark runs a long non-seasonal model with the steady-state switch
// enabled, reporting the step at which the covariance recursion converged
// and the precomputed-gain fast path took over.
func BenchmarkKalmanLogLik(b *testing.B) {
	y := syntheticBreakSeries(43, 20)
	fit, err := ssm.FitConfig(y, ssm.Config{Seasonal: true, ChangePoint: 20})
	if err != nil {
		b.Fatal(err)
	}
	m, scaled := fit.Model, fit.Scaled

	b.Run("workspace", func(b *testing.B) {
		ws := kalman.NewWorkspace()
		if _, err := m.LogLikFilter(scaled, ws); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.LogLikFilter(scaled, ws); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("filter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.Filter(scaled); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("steady", func(b *testing.B) {
		long := syntheticBreakSeries(120, 200) // no break inside the horizon
		sfit, err := ssm.FitConfig(long, ssm.Config{Seasonal: false, ChangePoint: ssm.NoChangePoint})
		if err != nil {
			b.Fatal(err)
		}
		sm, sscaled := sfit.Model, sfit.Scaled
		ws := kalman.NewWorkspace()
		opts := kalman.LogLikOptions{SteadyTol: ssm.DefaultSteadyTol}
		res, err := sm.LogLikFilterOpts(sscaled, ws, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.SteadySteps == 0 {
			b.Fatal("steady-state path never engaged")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sm.LogLikFilterOpts(sscaled, ws, opts); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(sscaled)-res.SteadySteps), "entry_step")
	})
}

// BenchmarkExactScan measures Algorithm 1 with the seasonal model on a
// 43-month series: the full exact change point scan whose per-candidate
// fits dominate the paper's Table V cost model.
func BenchmarkExactScan(b *testing.B) {
	y := syntheticBreakSeries(43, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := changepoint.DetectExact(y, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBinaryScan measures Algorithm 2 with the seasonal model on the
// same 43-month series as BenchmarkExactScan — the paper's Table V cost
// comparison at benchmark level (O(log T) memoized fits vs O(T)).
func BenchmarkBinaryScan(b *testing.B) {
	y := syntheticBreakSeries(43, 20)
	b.ReportAllocs()
	b.ResetTimer()
	var fits int
	for i := 0; i < b.N; i++ {
		res, err := changepoint.DetectBinary(y, true)
		if err != nil {
			b.Fatal(err)
		}
		fits = res.Fits
	}
	b.ReportMetric(float64(fits), "fits")
}

// BenchmarkExactScanWarm measures the warm-started exact scan at one worker:
// the pure warm-start saving over BenchmarkExactScan, with no goroutine
// parallelism in play.
func BenchmarkExactScanWarm(b *testing.B) {
	y := syntheticBreakSeries(43, 20)
	b.ReportAllocs()
	b.ResetTimer()
	var fits int
	for i := 0; i < b.N; i++ {
		res, err := changepoint.DetectExactParallel(y, true, changepoint.ParallelOptions{
			Workers: 1, WarmStart: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		fits = res.Fits
	}
	b.ReportMetric(float64(fits), "fits")
}

// BenchmarkExactScanParallel measures the candidate-sharded warm scan at 8
// workers on the BenchmarkExactScan series — warm starts and goroutine
// parallelism compounding (the latter only on multi-core hardware).
func BenchmarkExactScanParallel(b *testing.B) {
	y := syntheticBreakSeries(43, 20)
	b.ReportAllocs()
	b.ResetTimer()
	var fits int
	for i := 0; i < b.N; i++ {
		res, err := changepoint.DetectExactParallel(y, true, changepoint.ParallelOptions{
			Workers: 8, WarmStart: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		fits = res.Fits
	}
	b.ReportMetric(float64(fits), "fits")
}

// BenchmarkExactScanPrefix measures the prefix-checkpointed exact scan at one
// worker on the BenchmarkExactScan series: shared-parameter AIC ladders
// scored by checkpoint resumes screen the candidate set down to a handful of
// contender fits, with selection byte-identical to BenchmarkExactScan's. The
// fits metric is the scan's whole fit budget per series.
func BenchmarkExactScanPrefix(b *testing.B) {
	y := syntheticBreakSeries(43, 20)
	b.ReportAllocs()
	b.ResetTimer()
	var fits int
	for i := 0; i < b.N; i++ {
		res, err := changepoint.DetectExactPrefix(y, true, changepoint.PrefixOptions{
			Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		fits = res.Fits
	}
	b.ReportMetric(float64(fits), "fits")
}

// BenchmarkSurveil measures hierarchical surveillance end to end on the
// standard scenario corpus: model and reproduce stages, class/group
// roll-up, the aggregate change point scans, drill-down attribution, and
// offset-pair detection. The aggregate set stays ~20 nodes however many
// leaf series the corpus holds — the cost contrast against the flat detect
// stage is the point (see EXPERIMENTS.md).
func BenchmarkSurveil(b *testing.B) {
	ds, truth, err := micgen.Generate(micgen.Config{
		Seed: 42, Months: 30, RecordsPerMonth: 800, BulkDiseases: 6, BulkMedicines: 6,
	})
	if err != nil {
		b.Fatal(err)
	}
	c := truth.Catalog
	h := NewClassHierarchy(ds, c.MedicineClasses(), c.ClassGroupCodes(), c.DiseaseGroups())
	opts := DefaultAnalysisOptions()
	opts.Seasonal = false
	opts.MinSeriesTotal = 100
	b.ReportAllocs()
	b.ResetTimer()
	var fits, nodes int
	for i := 0; i < b.N; i++ {
		surv, err := Surveil(context.Background(), ds, SurveilOptions{Hierarchy: h, Pipeline: opts})
		if err != nil {
			b.Fatal(err)
		}
		fits = surv.AggregateFits + surv.DrillFits
		nodes = len(surv.Nodes)
	}
	b.ReportMetric(float64(fits), "fits")
	b.ReportMetric(float64(nodes), "nodes")
}

// BenchmarkEMFit measures one month's medication model EM fit.
func BenchmarkEMFit(b *testing.B) {
	ds, _, err := micgen.Generate(micgen.Config{
		Seed: 1, Months: 1, RecordsPerMonth: 1000, BulkDiseases: 8, BulkMedicines: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := medmodel.Fit(ds.Months[0], ds.Medicines.Len(), medmodel.FitOptions{MaxIter: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSSMFitSeasonal measures one maximum-likelihood fit of the full
// structural model on a 43-month series, the unit cost C_KF·optimizer of
// §V-B.
func BenchmarkSSMFitSeasonal(b *testing.B) {
	y := syntheticBreakSeries(43, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ssm.FitConfig(y, ssm.Config{Seasonal: true, ChangePoint: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectExact measures Algorithm 1 on one series (O(T) fits).
func BenchmarkDetectExact(b *testing.B) {
	y := syntheticBreakSeries(43, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := changepoint.DetectExact(y, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectBinary measures Algorithm 2 on the same series (O(log T)
// fits) — the paper's headline efficiency result.
func BenchmarkDetectBinary(b *testing.B) {
	y := syntheticBreakSeries(43, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := changepoint.DetectBinary(y, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectMultiple measures the §IX greedy multiple-change-point
// search on a two-break series.
func BenchmarkDetectMultiple(b *testing.B) {
	y := syntheticBreakSeries(43, 20)
	// Add a second, later break.
	for t := 32; t < len(y); t++ {
		y[t] += 2 * float64(t-31)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := changepoint.DetectMultiple(y, changepoint.MultiOptions{MaxChanges: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEMFitSmoothed measures the MAP-EM variant against BenchmarkEMFit:
// the cost of chaining the temporal prior.
func BenchmarkEMFitSmoothed(b *testing.B) {
	ds, _, err := micgen.Generate(micgen.Config{
		Seed: 1, Months: 2, RecordsPerMonth: 1000, BulkDiseases: 8, BulkMedicines: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	prior, err := medmodel.Fit(ds.Months[0], ds.Medicines.Len(), medmodel.FitOptions{MaxIter: 20})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := medmodel.FitSmoothed(ds.Months[1], ds.Medicines.Len(), medmodel.FitOptions{MaxIter: 20}, prior, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReproduce measures time-series reproduction (Eq. 7) over a small
// corpus.
func BenchmarkReproduce(b *testing.B) {
	ds, _, err := micgen.Generate(micgen.Config{
		Seed: 2, Months: 12, RecordsPerMonth: 500, BulkDiseases: 8, BulkMedicines: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	models, fails, err := medmodel.FitAll(context.Background(), ds, medmodel.FitOptions{MaxIter: 10})
	if err != nil {
		b.Fatal(err)
	}
	if len(fails) > 0 {
		b.Fatal(fails[0].Err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := medmodel.Reproduce(ds, models); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecRoundTrip measures dataset serialization + parsing.
func BenchmarkCodecRoundTrip(b *testing.B) {
	ds, _, err := micgen.Generate(micgen.Config{
		Seed: 3, Months: 6, RecordsPerMonth: 500, BulkDiseases: 8, BulkMedicines: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := mic.Write(&buf, ds); err != nil {
			b.Fatal(err)
		}
		if _, err := mic.Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// syntheticBreakSeries builds a deterministic series with a slope shift.
func syntheticBreakSeries(n, cp int) []float64 {
	rng := rand.New(rand.NewPCG(11, 13))
	y := make([]float64, n)
	level := 20.0
	for t := range y {
		level += rng.NormFloat64() * 0.2
		y[t] = level + 1.5*ssm.InterventionRegressor(cp, t) + rng.NormFloat64()
	}
	return y
}

// BenchmarkObsNil measures the disabled observability fast path: the nil
// metric handles instrumented code holds when no Registry is configured.
// This is the per-event cost every hot loop pays when observability is off —
// it must stay at 0 allocs/op (asserted by the CI benchmark smoke).
func BenchmarkObsNil(b *testing.B) {
	var r *obs.Registry
	c := r.Counter("bench")
	g := r.Gauge("bench")
	h := r.Histogram("bench", 1, 5, 20)
	tm := r.Timer("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(2)
		c.Inc()
		g.Set(int64(i))
		h.Observe(float64(i % 7))
		tm.Observe(0)
	}
}

// BenchmarkObsNilTrace measures the disabled span-tracing fast path: the nil
// *Tracer traced code holds when no trace sink is configured. Like
// BenchmarkObsNil it must stay at 0 allocs/op (asserted by the CI benchmark
// smoke).
func BenchmarkObsNilTrace(b *testing.B) {
	var tr *obs.Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Observe(obs.SpanEvent{Name: "bench", Month: i})
		_ = tr.Len()
	}
}

// BenchmarkObsNilLog measures the disabled structured-logging fast path: the
// nil *Logger instrumented code holds when no log sink is configured. Bare
// (attr-free) calls must stay at 0 allocs/op (asserted by the CI benchmark
// smoke); attr-carrying calls on allocation-sensitive paths guard with
// Enabled() instead, because building a non-empty variadic attr list costs at
// the call site whether or not the receiver is nil.
func BenchmarkObsNilLog(b *testing.B) {
	var l *obs.Logger
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Debug("bench")
		l.Info("bench")
		l.Warn("bench")
		l.Error("bench")
		if l.Enabled() {
			b.Fatal("nil logger reported enabled")
		}
	}
}

// BenchmarkHTTPOverhead measures the serving middleware's per-request cost
// against a bare handler: request-id generation and echo, route
// normalization, the labeled request counter and latency histogram, and the
// in-flight gauge. Access logging is off, as in a metrics-only deployment;
// baselines live in BENCH_obs.json.
func BenchmarkHTTPOverhead(b *testing.B) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	run := func(b *testing.B, h http.Handler) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/epoch", nil))
		}
	}
	b.Run("bare", func(b *testing.B) { run(b, handler) })
	b.Run("instrumented", func(b *testing.B) {
		run(b, serve.Instrument(handler, serve.InstrumentOptions{Metrics: obs.NewRegistry()}))
	})
}

// benchAnalyzeCorpus is the shared small corpus for the pipeline-overhead
// benchmarks below.
func benchAnalyzeCorpus(b *testing.B) *mic.Dataset {
	b.Helper()
	ds, _, err := micgen.Generate(micgen.Config{
		Seed: 5, Months: 18, RecordsPerMonth: 400, BulkDiseases: 5, BulkMedicines: 6,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func benchAnalyzeOptions() trend.Options {
	opts := trend.DefaultOptions()
	opts.Method = trend.MethodBinary
	opts.Seasonal = false
	opts.MinSeriesTotal = 300
	return opts
}

// BenchmarkAnalyze is the untraced pipeline baseline for
// BenchmarkAnalyzeTraced: same corpus and options, no observability
// configured.
func BenchmarkAnalyze(b *testing.B) {
	ds := benchAnalyzeCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trend.Analyze(context.Background(), ds, benchAnalyzeOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeTraced runs the same pipeline with a live Tracer and
// Explain collection, pinning the full observability overhead (span
// collection, provenance ladders, convergence traces) against
// BenchmarkAnalyze. Baselines live in BENCH_obs.json.
func BenchmarkAnalyzeTraced(b *testing.B) {
	ds := benchAnalyzeCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tracer := obs.NewTracer()
		opts := benchAnalyzeOptions()
		opts.Trace = tracer.Observe
		opts.Explain = true
		a, err := trend.Analyze(context.Background(), ds, opts)
		if err != nil {
			b.Fatal(err)
		}
		if tracer.Len() == 0 || len(a.SeriesProvenance) == 0 {
			b.Fatal("traced run collected nothing")
		}
	}
}
