package mictrend

// Allocation guards for the observability layer. The obs package's contract
// is that disabled instrumentation is free: nil metric handles no-op without
// allocating, the Kalman workspace kernel stays allocation-free with stats
// threading present in the tree, and enabling FitStats collection adds only
// a constant handful of allocations per fit (never per likelihood
// evaluation). These tests pin those properties so a future instrumentation
// change cannot silently put allocations on the hot path.

import (
	"testing"

	"mictrend/internal/changepoint"
	"mictrend/internal/kalman"
	"mictrend/internal/medmodel"
	"mictrend/internal/micgen"
	"mictrend/internal/obs"
	"mictrend/internal/ssm"
)

// TestInstrumentationAllocFree pins the zero-cost-when-disabled contract.
func TestInstrumentationAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not representative under -race")
	}

	// Nil metric handles — what instrumented code holds when no Registry is
	// configured — must not allocate.
	var r *obs.Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", 1, 2)
	tm := r.Timer("x")
	if n := testing.AllocsPerRun(100, func() {
		c.Add(3)
		c.Inc()
		g.Set(7)
		h.Observe(1.5)
		tm.Observe(0)
		_ = c.Value()
		_ = g.Value()
	}); n != 0 {
		t.Errorf("nil metric handles allocate %.0f/op, want 0", n)
	}

	// Nil labeled-vector handles — what the HTTP middleware resolves when no
	// Registry is configured — must be equally free: With on a nil vector
	// returns a nil child without allocating, and the nil child discards.
	cv := r.CounterVec("x", "route")
	gv := r.GaugeVec("x", "route")
	hv := r.HistogramVec("x", nil, "route")
	if n := testing.AllocsPerRun(100, func() {
		cv.With("a").Inc()
		gv.With("a").Add(1)
		hv.With("a").Observe(2)
	}); n != 0 {
		t.Errorf("nil labeled vectors allocate %.0f/op, want 0", n)
	}

	// The nil *Logger — what the serving plane holds when no log sink is
	// configured — must no-op bare calls without allocating. Attr-bearing
	// calls pay for their variadic list at the call site regardless of the
	// receiver, which is why hot paths guard them with Enabled().
	var lg *obs.Logger
	if n := testing.AllocsPerRun(100, func() {
		lg.Debug("x")
		lg.Info("x")
		lg.Warn("x")
		lg.Error("x")
		if lg.Enabled() {
			t.Fatal("nil logger must report disabled")
		}
	}); n != 0 {
		t.Errorf("nil logger bare calls allocate %.0f/op, want 0", n)
	}

	// Nil span sinks — what traced code holds when no Tracer is configured —
	// must be equally free: a nil *Tracer no-ops and guarding a nil observer
	// returns nil (so hot loops keep a single pointer check).
	var tr *obs.Tracer
	if n := testing.AllocsPerRun(100, func() {
		tr.Observe(obs.SpanEvent{Name: "x"})
		_ = tr.Len()
		if obs.GuardSpans(nil, nil) != nil {
			t.Fatal("GuardSpans(nil) must stay nil")
		}
	}); n != 0 {
		t.Errorf("nil span sinks allocate %.0f/op, want 0", n)
	}

	// The Kalman workspace kernel — the unit the likelihood search pays
	// hundreds of times per fit — must stay allocation-free in steady state.
	y := syntheticBreakSeries(43, 20)
	fit, err := ssm.FitConfig(y, ssm.Config{Seasonal: true, ChangePoint: 20})
	if err != nil {
		t.Fatal(err)
	}
	m, scaled := fit.Model, fit.Scaled
	ws := kalman.NewWorkspace()
	if _, err := m.LogLikFilter(scaled, ws); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(20, func() {
		if _, err := m.LogLikFilter(scaled, ws); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("LogLikFilter with workspace allocates %.0f/op, want 0", n)
	}

	// The steady-state fast path must be equally free: once the covariance
	// recursion converges (a long non-seasonal no-intervention model), the
	// precomputed-gain steps may not allocate either.
	long := syntheticBreakSeries(120, 200) // break beyond the horizon: a plain random walk
	sfit, err := ssm.FitConfig(long, ssm.Config{Seasonal: false, ChangePoint: ssm.NoChangePoint})
	if err != nil {
		t.Fatal(err)
	}
	sm, sscaled := sfit.Model, sfit.Scaled
	sws := kalman.NewWorkspace()
	res, err := sm.LogLikFilterOpts(sscaled, sws, kalman.LogLikOptions{SteadyTol: ssm.DefaultSteadyTol})
	if err != nil {
		t.Fatal(err)
	}
	if res.SteadySteps == 0 {
		t.Fatal("steady-state path never engaged on the long non-seasonal model")
	}
	if n := testing.AllocsPerRun(20, func() {
		if _, err := sm.LogLikFilterOpts(sscaled, sws, kalman.LogLikOptions{SteadyTol: ssm.DefaultSteadyTol}); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("steady-state LogLikFilterOpts allocates %.0f/op, want 0", n)
	}

	// Enabling FitStats must cost at most a constant few allocations per
	// whole fit (the deferred flush), never per likelihood evaluation.
	base := testing.AllocsPerRun(10, func() {
		if _, _, err := ssm.AICAtOptions(y, true, 20, nil, ssm.FitOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	var stats ssm.FitStats
	withStats := testing.AllocsPerRun(10, func() {
		if _, _, err := ssm.AICAtOptions(y, true, 20, nil, ssm.FitOptions{Stats: &stats}); err != nil {
			t.Fatal(err)
		}
	})
	if overhead := withStats - base; overhead > 8 {
		t.Errorf("FitStats collection adds %.0f allocs per fit (base %.0f), want <= 8", overhead, base)
	}
}

// TestAllocGuardRails pins absolute allocation budgets for the two
// benchmark-smoke workloads, so instrumentation regressions show up in plain
// `go test` without running the benchmark suite. Budgets are the measured
// baselines plus ~5% headroom.
func TestAllocGuardRails(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not representative under -race")
	}
	if testing.Short() {
		t.Skip("skipping multi-second allocation audit in -short mode")
	}

	// One EM fit of a dense synthetic month (the BenchmarkEMFit workload).
	ds, _, err := micgen.Generate(micgen.Config{Seed: 1, Months: 1, RecordsPerMonth: 1000, BulkDiseases: 8, BulkMedicines: 10})
	if err != nil {
		t.Fatal(err)
	}
	emAllocs := testing.AllocsPerRun(3, func() {
		if _, err := medmodel.Fit(ds.Months[0], ds.Medicines.Len(), medmodel.FitOptions{MaxIter: 20}); err != nil {
			t.Fatal(err)
		}
	})
	if emAllocs > 600 { // measured baseline: 534
		t.Errorf("medmodel.Fit: %.0f allocs, budget 600", emAllocs)
	}

	// One warm-started exact change point scan (the BenchmarkExactScanParallel
	// workload), serial and sharded.
	y := syntheticBreakSeries(43, 20)
	scan := func(workers int) float64 {
		return testing.AllocsPerRun(1, func() {
			if _, err := changepoint.DetectExactParallel(y, true, changepoint.ParallelOptions{Workers: workers, WarmStart: true}); err != nil {
				t.Fatal(err)
			}
		})
	}
	if n := scan(1); n > 24000 { // measured baseline: 22878
		t.Errorf("warm exact scan (serial): %.0f allocs, budget 24000", n)
	}
	if n := scan(8); n > 24500 { // measured baseline: 23195
		t.Errorf("warm exact scan (8 workers): %.0f allocs, budget 24500", n)
	}

	// One prefix-checkpointed exact scan of the same series. The scan fits an
	// order of magnitude fewer models, and its checkpoint resumes reuse the
	// scanner's buffers, so its allocation budget sits far below the warm
	// scan's.
	prefixAllocs := testing.AllocsPerRun(1, func() {
		if _, err := changepoint.DetectExactPrefix(y, true, changepoint.PrefixOptions{Workers: 1}); err != nil {
			t.Fatal(err)
		}
	})
	if prefixAllocs > 12000 { // measured baseline: 5872
		t.Errorf("prefix exact scan: %.0f allocs, budget 12000", prefixAllocs)
	}
}
