// Geospread: the paper's §VII-B application — watch generic medicines spread
// city by city after their release, with an authorized generic adopting
// fastest and one resistant area staying on the original.
package main

import (
	"fmt"
	"log"
	"sort"

	"mictrend/internal/apps"
	"mictrend/internal/medmodel"
	"mictrend/internal/mic"
	"mictrend/internal/micgen"
)

func main() {
	log.SetFlags(0)

	ds, truth, err := micgen.Generate(micgen.Config{
		Seed:            9,
		Months:          36,
		RecordsPerMonth: 1200,
		BulkDiseases:    5,
		BulkMedicines:   5,
	})
	if err != nil {
		log.Fatal(err)
	}

	strokeID, _ := ds.Diseases.Lookup(micgen.DiseaseStroke)
	codes := []string{
		micgen.MedicineAntiplOrig,
		micgen.MedicineGeneric1,
		micgen.MedicineGeneric2,
		micgen.MedicineGeneric3,
	}
	meds := make([]mic.MedicineID, len(codes))
	for i, c := range codes {
		id, ok := ds.Medicines.Lookup(c)
		if !ok {
			log.Fatalf("missing medicine %s", c)
		}
		meds[i] = mic.MedicineID(id)
	}

	em := medmodel.FitOptions{MaxIter: 15}
	for _, snap := range []struct {
		month int
		label string
	}{
		{micgen.GenericReleaseMonth - 1, "one month before generic release"},
		{micgen.GenericReleaseMonth + 1, "one month after"},
		{micgen.GenericReleaseMonth + 12, "one year after"},
	} {
		counts, err := apps.PairCountsByCity(ds, mic.DiseaseID(strokeID), meds, snap.month, em)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (month %d):\n", snap.label, snap.month)
		cities := make([]string, 0, len(counts))
		for c := range counts {
			cities = append(cities, c)
		}
		sort.Strings(cities)
		fmt.Printf("  %-12s %10s %10s %10s %10s %8s\n", "city", "original", "generic1", "generic2", "authorized", "gen %")
		for _, city := range cities {
			c := counts[city]
			total := c[meds[0]] + c[meds[1]] + c[meds[2]] + c[meds[3]]
			genShare := 0.0
			if total > 0 {
				genShare = 100 * (c[meds[1]] + c[meds[2]] + c[meds[3]]) / total
			}
			fmt.Printf("  %-12s %10.1f %10.1f %10.1f %10.1f %7.1f%%\n",
				city, c[meds[0]], c[meds[1]], c[meds[2]], c[meds[3]], genShare)
		}
		fmt.Println()
	}
	// The catalog marks the resistant area; confirm it lags.
	for _, city := range truth.Catalog.Cities {
		if city.GenericResistance < 0.3 {
			fmt.Printf("note: %q is configured to resist generics (resistance %.2f, lag %d months) — compare its share above\n",
				city.Name, city.GenericResistance, city.GenericLag)
		}
	}
}
