// Forecast: the paper's §VIII-B2 experiment in miniature — train the
// structural state space model and the ARIMA baseline on the first part of
// an influenza series, forecast the rest, and compare.
package main

import (
	"context"
	"fmt"
	"log"

	"mictrend/internal/arima"
	"mictrend/internal/changepoint"
	"mictrend/internal/medmodel"
	"mictrend/internal/mic"
	"mictrend/internal/micgen"
	"mictrend/internal/ssm"
	"mictrend/internal/stat"
)

func main() {
	log.SetFlags(0)

	ds, _, err := micgen.Generate(micgen.Config{
		Seed:            3,
		Months:          42,
		RecordsPerMonth: 900,
		BulkDiseases:    5,
		BulkMedicines:   5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Reproduce the influenza disease series with the medication model.
	models, fails, err := medmodel.FitAll(context.Background(), ds, medmodel.FitOptions{MaxIter: 15})
	if err != nil {
		log.Fatal(err)
	}
	if len(fails) > 0 {
		log.Fatal(fails[0].Err)
	}
	series, err := medmodel.Reproduce(ds, models)
	if err != nil {
		log.Fatal(err)
	}
	fluID, _ := ds.Diseases.Lookup(micgen.DiseaseInfluenza)
	y := series.Disease(mic.DiseaseID(fluID))
	if y == nil {
		log.Fatal("influenza series missing")
	}

	const horizon = 12
	train, test := y[:len(y)-horizon], y[len(y)-horizon:]

	// Structural model: change point search, then fit and forecast. The
	// seasonal component carries the winter peak into the future.
	det, err := changepoint.DetectExact(train, true)
	if err != nil {
		log.Fatal(err)
	}
	fit, err := ssm.FitConfig(train, ssm.Config{Seasonal: true, ChangePoint: det.ChangePoint})
	if err != nil {
		log.Fatal(err)
	}
	ssmFC, ssmSE, err := fit.Forecast(horizon)
	if err != nil {
		log.Fatal(err)
	}

	// ARIMA baseline with AIC-selected orders.
	ar, err := arima.Select(train, arima.SelectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	arFC, err := ar.Forecast(horizon)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trained on %d months; forecasting %d (selected %v as the baseline)\n\n", len(train), horizon, ar.Order)
	fmt.Printf("%5s %10s %12s %12s\n", "month", "actual", "SSM (±se)", "ARIMA")
	for i := range test {
		fmt.Printf("%5d %10.1f %7.1f ±%4.1f %12.1f\n",
			len(train)+i, test[i], ssmFC[i], ssmSE[i], arFC[i])
	}
	fmt.Printf("\nRMSE: SSM = %.2f, ARIMA = %.2f\n", stat.RMSE(test, ssmFC), stat.RMSE(test, arFC))
	fmt.Println("the seasonal component lets the SSM anticipate the winter influenza peak; ARIMA flattens it.")
}
