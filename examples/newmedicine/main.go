// Newmedicine: run the full two-stage pipeline and check the detected trend
// changes against the generator's injected events — new medicine releases,
// price cuts, and indication expansions (the paper's §VII-A application).
package main

import (
	"context"
	"fmt"
	"log"

	"mictrend/internal/micgen"
	"mictrend/internal/trend"
)

func main() {
	log.SetFlags(0)

	ds, truth, err := micgen.Generate(micgen.Config{
		Seed:            5,
		Months:          36,
		RecordsPerMonth: 1000,
		BulkDiseases:    6,
		BulkMedicines:   8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ground truth: %d injected structural events\n", len(truth.Changes))
	for _, c := range truth.Changes {
		fmt.Printf("  month %2d: %-22s %s %s\n", c.Month, c.Kind, c.Medicine, c.Disease)
	}

	opts := trend.DefaultOptions()
	opts.Method = trend.MethodBinary
	opts.Seasonal = false // fast demo; the experiments use the full model
	opts.MinSeriesTotal = 100
	analysis, err := trend.Analyze(context.Background(), ds, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ndetected medicine-series change points (%d model fits total):\n", analysis.TotalFits)
	hits := 0
	for _, det := range trend.DetectedChangePoints(analysis.Medicines) {
		code := ds.Medicines.Code(int32(det.Medicine))
		verdict := "no matching truth event"
		for _, c := range truth.ChangesFor(code) {
			d := c.Month - det.Result.ChangePoint
			if d >= -3 && d <= 3 {
				verdict = fmt.Sprintf("matches %s at month %d", c.Kind, c.Month)
				hits++
				break
			}
		}
		fmt.Printf("  %-10s month %2d (ΔAIC %5.1f) — %s\n",
			code, det.Result.ChangePoint, det.Result.NoChangeAIC-det.Result.AIC, verdict)
	}

	causes := trend.ClassifyChanges(analysis, 2)
	counts := map[trend.Cause]int{}
	for _, c := range causes {
		counts[c]++
	}
	fmt.Printf("\nprescription-level causes: %d disease, %d medicine, %d prescription-derived, %d stable\n",
		counts[trend.CauseDisease], counts[trend.CauseMedicine], counts[trend.CausePrescription], counts[trend.CauseNone])
}
