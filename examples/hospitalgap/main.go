// Hospitalgap: the paper's §VII-C application — compare what diseases the
// antibiotic is prescribed for at small clinics versus large hospitals,
// exposing viral-cold antibiotic misuse concentrated at small hospitals
// (the paper's Table II).
package main

import (
	"fmt"
	"log"

	"mictrend/internal/apps"
	"mictrend/internal/medmodel"
	"mictrend/internal/mic"
	"mictrend/internal/micgen"
)

func main() {
	log.SetFlags(0)

	ds, truth, err := micgen.Generate(micgen.Config{
		Seed:            11,
		Months:          12,
		RecordsPerMonth: 2500,
		BulkDiseases:    5,
		BulkMedicines:   5,
	})
	if err != nil {
		log.Fatal(err)
	}
	abxID, ok := ds.Medicines.Lookup(micgen.MedicineAntibiotic)
	if !ok {
		log.Fatal("antibiotic missing from corpus")
	}

	gap, err := apps.PrescriptionGapByClass(ds, mic.MedicineID(abxID), 10, medmodel.FitOptions{MaxIter: 15})
	if err != nil {
		log.Fatal(err)
	}
	for class := mic.SmallHospital; class <= mic.LargeHospital; class++ {
		fmt.Printf("top diseases treated with the antibiotic at %s hospitals:\n", class)
		var viral float64
		for _, share := range gap[class] {
			code := ds.Diseases.Code(int32(share.Disease))
			name := code
			marker := ""
			if d, okD := truth.Catalog.DiseaseByCode(code); okD {
				name = d.Name
				if d.Viral {
					marker = "  <- viral: antibiotic inappropriate"
					viral += share.Ratio
				}
			}
			fmt.Printf("  %-42s %6.2f%%%s\n", name, share.Ratio, marker)
		}
		fmt.Printf("  total share on virus-caused diseases: %.2f%%\n\n", viral)
	}
	fmt.Println("the paper's finding reproduced: the viral share shrinks as hospital size grows.")
}
