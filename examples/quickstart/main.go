// Quickstart: generate a small synthetic MIC corpus, fit the paper's
// latent-variable medication model to one month, and look at what it
// recovers — the disease→medicine links the raw claims data hides.
package main

import (
	"fmt"
	"log"
	"sort"

	"mictrend/internal/medmodel"
	"mictrend/internal/mic"
	"mictrend/internal/micgen"
)

func main() {
	log.SetFlags(0)

	// 1. Generate a corpus. Every record holds a bag of diseases and a bag
	//    of medicines — which medicine treats which disease is not recorded,
	//    exactly like real Medical Insurance Claims.
	ds, _, err := micgen.Generate(micgen.Config{
		Seed:            1,
		Months:          12,
		RecordsPerMonth: 800,
		BulkDiseases:    10,
		BulkMedicines:   12,
	})
	if err != nil {
		log.Fatal(err)
	}
	summary, _ := ds.Summarize()
	fmt.Printf("corpus: %d months, %.0f records/month, %.1f diseases and %.1f medicines per record\n\n",
		summary.Months, summary.AvgRecordsPerMonth, summary.AvgDiseasesPerRec, summary.AvgMedsPerRec)

	// 2. Fit the medication model to one month (EM over Eqs. 5-6; θ and η
	//    are closed-form).
	month := ds.Months[6]
	model, err := medmodel.Fit(month, ds.Medicines.Len(), medmodel.FitOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted month %d in %d EM iterations (log-likelihood %.1f)\n\n",
		month.Month, model.Iterations, model.LogLik)

	// 3. Inspect φ for influenza: the learned medicine distribution should
	//    concentrate on the antiviral even though influenza shares records
	//    with many other diseases and medicines.
	fluID, _ := ds.Diseases.Lookup(micgen.DiseaseInfluenza)
	row := model.PhiRow(mic.DiseaseID(fluID))
	type entry struct {
		code string
		p    float64
	}
	var entries []entry
	for med, p := range row {
		entries = append(entries, entry{ds.Medicines.Code(int32(med)), p})
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].p > entries[b].p })
	fmt.Println("medicines the model prescribes for influenza (φ_d):")
	for i, e := range entries {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-10s %.3f\n", e.code, e.p)
	}

	// 4. Compare with the cooccurrence baseline on the same disease: the
	//    baseline leaks probability onto frequent unrelated medicines.
	cooc, err := medmodel.FitCooccurrence(month, ds.Medicines.Len())
	if err != nil {
		log.Fatal(err)
	}
	coocRow := cooc.PhiRow(mic.DiseaseID(fluID))
	entries = entries[:0]
	for med, p := range coocRow {
		entries = append(entries, entry{ds.Medicines.Code(int32(med)), p})
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].p > entries[b].p })
	fmt.Println("\nsame distribution under the cooccurrence baseline:")
	for i, e := range entries {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-10s %.3f\n", e.code, e.p)
	}
}
