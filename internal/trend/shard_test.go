package trend

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"mictrend/internal/mic"
	"mictrend/internal/micgen"
)

// TestAnalyzeWorkersShardsInvariance is the pipeline's scale-out contract:
// the full analysis — detections, failures, series, fit counts — is
// byte-identical for every Workers/Shards split, and identical whether the
// corpus arrived through the JSONL or the columnar storage backend.
func TestAnalyzeWorkersShardsInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline invariance sweep is heavy")
	}
	ds, _, err := micgen.Generate(micgen.Config{
		Seed: 5, Months: 16, RecordsPerMonth: 500, BulkDiseases: 6, BulkMedicines: 6,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip the corpus through the columnar backend: the analysis below
	// runs over the decoded copy, proving the data plane feeds the pipeline
	// the same bytes.
	var col bytes.Buffer
	if err := mic.WriteColumnar(&col, ds, mic.ColumnarWriterOptions{}); err != nil {
		t.Fatal(err)
	}
	fromCol, err := mic.ReadColumnar(bytes.NewReader(col.Bytes()), int64(col.Len()), mic.ColumnarReadOptions{})
	if err != nil {
		t.Fatal(err)
	}

	base := func() Options {
		opts := DefaultOptions()
		opts.Method = MethodBinary // keep the sweep fast
		opts.Seasonal = false
		opts.MinSeriesTotal = 100
		opts.Workers = 1
		opts.Shards = 1
		return opts
	}
	ref, err := Analyze(context.Background(), ds, base())
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		workers, shards int
		data            *mic.Dataset
	}{
		{workers: 4, shards: 1, data: ds},
		{workers: 4, shards: 3, data: ds},
		{workers: 2, shards: 7, data: ds},
		{workers: 8, shards: 4, data: fromCol}, // columnar-decoded corpus
	} {
		opts := base()
		opts.Workers = tc.workers
		opts.Shards = tc.shards
		got, err := Analyze(context.Background(), tc.data, opts)
		if err != nil {
			t.Fatalf("workers=%d shards=%d: %v", tc.workers, tc.shards, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d shards=%d: analysis differs from serial reference", tc.workers, tc.shards)
		}
	}
}

func TestShardJobs(t *testing.T) {
	jobs := []Detection{
		{Kind: KindDisease, Disease: 0},
		{Kind: KindDisease, Disease: 1},
		{Kind: KindMedicine, Medicine: 2},
		{Kind: KindPrescription, Disease: 1, Medicine: 0},
		{Kind: KindPrescription, Disease: 3, Medicine: 2},
	}
	single := shardJobs(jobs, 1)
	if len(single) != 1 || !reflect.DeepEqual(single[0], []int{0, 1, 2, 3, 4}) {
		t.Fatalf("shards=1: %v", single)
	}
	lists := shardJobs(jobs, 2)
	if len(lists) != 2 {
		t.Fatalf("shards=2: %d lists", len(lists))
	}
	// Disease 1's series and its pair land in the same shard; every index
	// appears exactly once.
	if !reflect.DeepEqual(lists[0], []int{0, 2}) || !reflect.DeepEqual(lists[1], []int{1, 3, 4}) {
		t.Fatalf("shards=2: %v", lists)
	}
}
