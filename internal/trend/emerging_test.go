package trend

import (
	"math/rand/v2"
	"testing"

	"mictrend/internal/changepoint"
	"mictrend/internal/ssm"
)

// breakDetection builds a Detection over a synthetic series with a detected
// slope shift.
func breakDetection(t *testing.T, n, cp int, slope float64, seed uint64) Detection {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 1234))
	y := make([]float64, n)
	level := 30.0
	for i := range y {
		level += rng.NormFloat64() * 0.1
		y[i] = level + slope*ssm.InterventionRegressor(cp, i) + rng.NormFloat64()*0.5
	}
	res, err := changepoint.DetectExact(y, false)
	if err != nil {
		t.Fatal(err)
	}
	return Detection{Kind: KindPrescription, Disease: 1, Medicine: 2, Series: y, Result: res}
}

func TestEmergingTrendsProjectsGrowth(t *testing.T) {
	det := breakDetection(t, 40, 25, 1.5, 1)
	if !det.Result.Detected() {
		t.Skip("detector missed the break on this seed")
	}
	emerging, err := EmergingTrends([]Detection{det}, false, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(emerging) != 1 {
		t.Fatalf("emerging = %d, want 1", len(emerging))
	}
	e := emerging[0]
	if e.SlopePerMonth < 0.8 || e.SlopePerMonth > 2.5 {
		t.Fatalf("slope = %v, want ≈1.5", e.SlopePerMonth)
	}
	if e.ProjectedGrowth <= 0 {
		t.Fatalf("projected growth = %v, want positive", e.ProjectedGrowth)
	}
	if len(e.Forecast) != 6 {
		t.Fatalf("forecast length = %d", len(e.Forecast))
	}
	// Growth over 6 months should be roughly 6×slope.
	if e.ProjectedGrowth < 3*e.SlopePerMonth || e.ProjectedGrowth > 10*e.SlopePerMonth {
		t.Fatalf("growth %v inconsistent with slope %v", e.ProjectedGrowth, e.SlopePerMonth)
	}
}

func TestEmergingTrendsSkipsDeclines(t *testing.T) {
	det := breakDetection(t, 40, 25, -1.5, 2)
	emerging, err := EmergingTrends([]Detection{det}, false, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(emerging) != 0 {
		t.Fatalf("declining series reported as emerging: %+v", emerging)
	}
}

func TestEmergingTrendsSkipsStable(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	y := make([]float64, 40)
	for i := range y {
		y[i] = 20 + rng.NormFloat64()*0.5
	}
	res, err := changepoint.DetectExact(y, false)
	if err != nil {
		t.Fatal(err)
	}
	det := Detection{Series: y, Result: res}
	emerging, err := EmergingTrends([]Detection{det}, false, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Either no detection, or a detection with negligible slope — in both
	// cases nothing big should be projected.
	for _, e := range emerging {
		if e.ProjectedGrowth > 5 {
			t.Fatalf("stable series projected growth %v", e.ProjectedGrowth)
		}
	}
}

func TestEmergingTrendsSortsByGrowth(t *testing.T) {
	weak := breakDetection(t, 40, 25, 0.8, 5)
	strong := breakDetection(t, 40, 25, 2.5, 6)
	emerging, err := EmergingTrends([]Detection{weak, strong}, false, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(emerging) < 2 {
		t.Skipf("only %d detections survived", len(emerging))
	}
	if emerging[0].ProjectedGrowth < emerging[1].ProjectedGrowth {
		t.Fatal("not sorted by projected growth")
	}
}

func TestEmergingTrendsZeroHorizon(t *testing.T) {
	det := breakDetection(t, 40, 25, 1.5, 7)
	emerging, err := EmergingTrends([]Detection{det}, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(emerging) != 0 {
		t.Fatal("zero horizon should produce nothing")
	}
}
