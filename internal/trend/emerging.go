package trend

import (
	"fmt"
	"sort"

	"mictrend/internal/mic"
	"mictrend/internal/ssm"
)

// The paper's §IX asks: "Can we predict the future growth of a prescription
// from its initial behavior?" — noting that detected structural breaks show
// early signs before the prevalence. EmergingTrends answers it with the
// machinery already in place: for every detection with an upward slope
// shift, refit the structural model at the detected change point and project
// the series forward; rank by projected growth.

// Emerging is one detected upward trend with its projection.
type Emerging struct {
	Kind     SeriesKind
	Disease  mic.DiseaseID
	Medicine mic.MedicineID
	// ChangePoint is the detected break month.
	ChangePoint int
	// SlopePerMonth is the fitted λ in data units: the monthly growth the
	// break added.
	SlopePerMonth float64
	// LastValue is the final observed value.
	LastValue float64
	// Forecast holds the projected values for the requested horizon.
	Forecast []float64
	// ProjectedGrowth = Forecast[h−1] − LastValue.
	ProjectedGrowth float64
}

// EmergingTrends refits every detection that found a change point with a
// positive slope coefficient and projects it horizon months ahead, returning
// the list sorted by projected growth (largest first). Detections without a
// change point or with a non-positive slope are skipped — declines and
// stable series are not "emerging". A series whose refit or forecast fails
// is skipped too (the pipeline already produced its detection); the error
// return reports the first such failure alongside the surviving
// projections, so callers can degrade it to a warning.
func EmergingTrends(dets []Detection, seasonal bool, horizon int) ([]Emerging, error) {
	var out []Emerging
	var firstErr error
	keepErr := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	for _, det := range dets {
		if !det.Result.Detected() || horizon <= 0 {
			continue
		}
		fit, err := ssm.FitConfig(det.Series, ssm.Config{
			Seasonal:    seasonal,
			ChangePoint: det.Result.ChangePoint,
		})
		if err != nil {
			keepErr(fmt.Errorf("trend: projecting %s: %w", seriesKey(det), err))
			continue
		}
		slope := fit.Lambda * fit.Scale
		if slope <= 0 {
			continue
		}
		mean, _, err := fit.Forecast(horizon)
		if err != nil {
			keepErr(fmt.Errorf("trend: projecting %s: %w", seriesKey(det), err))
			continue
		}
		e := Emerging{
			Kind:          det.Kind,
			Disease:       det.Disease,
			Medicine:      det.Medicine,
			ChangePoint:   det.Result.ChangePoint,
			SlopePerMonth: slope,
			LastValue:     det.Series[len(det.Series)-1],
			Forecast:      mean,
		}
		e.ProjectedGrowth = mean[horizon-1] - e.LastValue
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool {
		return out[a].ProjectedGrowth > out[b].ProjectedGrowth
	})
	return out, firstErr
}
