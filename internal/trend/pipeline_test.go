package trend

import (
	"context"
	"testing"

	"mictrend/internal/mic"
	"mictrend/internal/micgen"
	"mictrend/internal/ssm"
)

// genSmall produces a compact corpus with known structural events.
func genSmall(t *testing.T) (*mic.Dataset, *micgen.Truth) {
	t.Helper()
	ds, truth, err := micgen.Generate(micgen.Config{
		Seed:            42,
		Months:          30,
		RecordsPerMonth: 1200,
		BulkDiseases:    6,
		BulkMedicines:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds, truth
}

func TestAnalyzeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is heavy")
	}
	ds, _ := genSmall(t)
	opts := DefaultOptions()
	opts.Method = MethodBinary // keep runtime modest
	opts.Seasonal = false
	opts.MinSeriesTotal = 200 // focus on substantial series
	analysis, err := Analyze(context.Background(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(analysis.Models) != ds.T() {
		t.Fatalf("models = %d, want %d", len(analysis.Models), ds.T())
	}
	if len(analysis.Diseases) == 0 || len(analysis.Medicines) == 0 || len(analysis.Prescriptions) == 0 {
		t.Fatalf("detections: %d/%d/%d", len(analysis.Diseases), len(analysis.Medicines), len(analysis.Prescriptions))
	}
	if analysis.TotalFits == 0 {
		t.Fatal("no fits counted")
	}
	// Every detection must carry its series and a coherent result.
	for _, det := range analysis.Prescriptions {
		if len(det.Series) != ds.T() {
			t.Fatal("detection series has wrong length")
		}
		if det.Result.Detected() && (det.Result.ChangePoint < 0 || det.Result.ChangePoint >= ds.T()) {
			t.Fatalf("change point %d out of range", det.Result.ChangePoint)
		}
	}
}

func TestAnalyzeFindsNewMedicineRelease(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is heavy")
	}
	ds, _ := genSmall(t)
	opts := DefaultOptions()
	opts.Method = MethodExact
	opts.Seasonal = false
	opts.MinSeriesTotal = 100
	analysis, err := Analyze(context.Background(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The new osteoporosis medicine's series must show a change point near
	// its release month (paper Fig. 6c).
	id, ok := ds.Medicines.Lookup(micgen.MedicineNewOsteo)
	if !ok {
		t.Fatal("scenario medicine missing")
	}
	var found *Detection
	for i := range analysis.Medicines {
		if analysis.Medicines[i].Medicine == mic.MedicineID(id) {
			found = &analysis.Medicines[i]
			break
		}
	}
	if found == nil {
		t.Fatal("new medicine series not analyzed (filtered out?)")
	}
	if !found.Result.Detected() {
		t.Fatal("release not detected")
	}
	cp := found.Result.ChangePoint
	if cp < micgen.NewOsteoReleaseMonth-3 || cp > micgen.NewOsteoReleaseMonth+4 {
		t.Fatalf("release detected at %d, want ≈%d", cp, micgen.NewOsteoReleaseMonth)
	}

	// The new bronchodilator's pair series for one of its target diseases
	// must break near its release too (paper Fig. 3b).
	bronchID, _ := ds.Medicines.Lookup(micgen.MedicineNewBronch)
	copdID, _ := ds.Diseases.Lookup(micgen.DiseaseCOPD)
	var pairDet *Detection
	for i := range analysis.Prescriptions {
		p := &analysis.Prescriptions[i]
		if p.Medicine == mic.MedicineID(bronchID) && p.Disease == mic.DiseaseID(copdID) {
			pairDet = p
			break
		}
	}
	if pairDet == nil {
		t.Fatal("bronchodilator pair series not analyzed")
	}
	if !pairDet.Result.Detected() {
		t.Fatal("pair-level release not detected")
	}
	if cp := pairDet.Result.ChangePoint; cp < micgen.NewBronchReleaseMonth-3 || cp > micgen.NewBronchReleaseMonth+4 {
		t.Fatalf("pair release detected at %d, want ≈%d", cp, micgen.NewBronchReleaseMonth)
	}
}

func TestClassifyChanges(t *testing.T) {
	// Build a synthetic analysis: pair (1, 2) breaks at month 10; medicine 2
	// breaks at 11 → medicine-derived. Pair (3, 4) breaks at 20 with no
	// matching marginal → prescription-derived. Pair (5, 6) has no break.
	mkRes := func(cp int) Detection {
		d := Detection{}
		d.Result.ChangePoint = cp
		return d
	}
	a := &Analysis{}
	med := mkRes(11)
	med.Kind = KindMedicine
	med.Medicine = 2
	a.Medicines = []Detection{med}
	dis := mkRes(ssm.NoChangePoint)
	dis.Kind = KindDisease
	dis.Disease = 1
	a.Diseases = []Detection{dis}

	p1 := mkRes(10)
	p1.Kind = KindPrescription
	p1.Disease, p1.Medicine = 1, 2
	p2 := mkRes(20)
	p2.Kind = KindPrescription
	p2.Disease, p2.Medicine = 3, 4
	p3 := mkRes(ssm.NoChangePoint)
	p3.Kind = KindPrescription
	p3.Disease, p3.Medicine = 5, 6
	a.Prescriptions = []Detection{p1, p2, p3}

	causes := ClassifyChanges(a, 2)
	if got := causes[mic.Pair{Disease: 1, Medicine: 2}]; got != CauseMedicine {
		t.Fatalf("pair(1,2) cause = %v, want medicine-derived", got)
	}
	if got := causes[mic.Pair{Disease: 3, Medicine: 4}]; got != CausePrescription {
		t.Fatalf("pair(3,4) cause = %v, want prescription-derived", got)
	}
	if got := causes[mic.Pair{Disease: 5, Medicine: 6}]; got != CauseNone {
		t.Fatalf("pair(5,6) cause = %v, want none", got)
	}
}

func TestClassifyDiseaseWinsTies(t *testing.T) {
	a := &Analysis{}
	dis := Detection{Kind: KindDisease, Disease: 1}
	dis.Result.ChangePoint = 10
	med := Detection{Kind: KindMedicine, Medicine: 2}
	med.Result.ChangePoint = 10
	p := Detection{Kind: KindPrescription, Disease: 1, Medicine: 2}
	p.Result.ChangePoint = 10
	a.Diseases = []Detection{dis}
	a.Medicines = []Detection{med}
	a.Prescriptions = []Detection{p}
	causes := ClassifyChanges(a, 2)
	if got := causes[mic.Pair{Disease: 1, Medicine: 2}]; got != CauseDisease {
		t.Fatalf("cause = %v, want disease-derived", got)
	}
}

func TestDetectedChangePointsSorted(t *testing.T) {
	weak := Detection{}
	weak.Result.ChangePoint = 5
	weak.Result.AIC = 95
	weak.Result.NoChangeAIC = 100
	strong := Detection{}
	strong.Result.ChangePoint = 8
	strong.Result.AIC = 50
	strong.Result.NoChangeAIC = 100
	none := Detection{}
	none.Result.ChangePoint = ssm.NoChangePoint
	out := DetectedChangePoints([]Detection{weak, none, strong})
	if len(out) != 2 {
		t.Fatalf("detected = %d, want 2", len(out))
	}
	if out[0].Result.ChangePoint != 8 {
		t.Fatal("strongest detection should sort first")
	}
}

func TestMethodAndKindStrings(t *testing.T) {
	if MethodExact.String() != "exact" || MethodBinary.String() != "binary" {
		t.Fatal("method names wrong")
	}
	if KindDisease.String() != "disease" || KindMedicine.String() != "medicine" || KindPrescription.String() != "prescription" {
		t.Fatal("kind names wrong")
	}
	if CauseDisease.String() != "disease-derived" || CauseNone.String() != "none" {
		t.Fatal("cause names wrong")
	}
}

func TestAnalyzeExactAndBinaryAgreeOnDetections(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is heavy")
	}
	ds, _ := genSmall(t)
	base := DefaultOptions()
	base.Seasonal = false
	base.MinSeriesTotal = 400
	exactOpts := base
	exactOpts.Method = MethodExact
	binOpts := base
	binOpts.Method = MethodBinary
	exact, err := Analyze(context.Background(), ds, exactOpts)
	if err != nil {
		t.Fatal(err)
	}
	binary, err := Analyze(context.Background(), ds, binOpts)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Table VI property at pipeline level: binary detects a
	// subset (no false positives w.r.t. exact).
	exactDetected := map[mic.Pair]bool{}
	for _, d := range exact.Prescriptions {
		if d.Result.Detected() {
			exactDetected[mic.Pair{Disease: d.Disease, Medicine: d.Medicine}] = true
		}
	}
	falsePos := 0
	for _, d := range binary.Prescriptions {
		if d.Result.Detected() && !exactDetected[mic.Pair{Disease: d.Disease, Medicine: d.Medicine}] {
			falsePos++
		}
	}
	if falsePos > 0 {
		t.Fatalf("binary produced %d detections exact rejected", falsePos)
	}
	if binary.TotalFits >= exact.TotalFits {
		t.Fatalf("binary fits %d should be below exact %d", binary.TotalFits, exact.TotalFits)
	}
}
