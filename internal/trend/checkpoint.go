package trend

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"mictrend/internal/faultpoint"
	"mictrend/internal/medmodel"
	"mictrend/internal/mic"
	"mictrend/internal/obs"
)

// MonthCheckpoint is the per-month model-stage state the pipeline persists
// through a Checkpointer and restores on a later run: the fitted medication
// model of one (filtered) month, or the recorded degradation when the fit
// failed. A checkpoint carries the DataHash of the month it was fitted on so
// a store pointed at different data (or different fit options) is detected
// and ignored rather than trusted.
type MonthCheckpoint struct {
	// Month is the 0-based month index within the analyzed dataset.
	Month int
	// DataHash fingerprints the filtered month's records and the fit options
	// that shaped the model (see HashMonth). Analyze ignores a loaded
	// checkpoint whose hash does not match the current data.
	DataHash uint64
	// Model is the fitted model; nil when the month's fit degraded, in which
	// case Failure records why and the fallback model is rebuilt
	// deterministically from the month's records at load time.
	Model *medmodel.Model
	// Failure is the StageModel failure of a degraded month (nil for a
	// successful fit).
	Failure *Failure
}

// Checkpointer persists per-month model-stage state so an interrupted
// analysis — or an incremental serving run folding months in one at a time —
// resumes without refitting the months already committed. Implementations
// must make SaveMonth durable before returning (the serving store's
// write-tmp-fsync-rename plus WAL protocol): Analyze treats a returned
// checkpoint as truth and will not refit that month.
//
// Analyze calls LoadMonth once per month at the start of the model stage and
// SaveMonth once per freshly fitted month after the stage completes. Both are
// called from a single goroutine; implementations need not be
// goroutine-safe for the pipeline's sake (the serving store locks anyway,
// because it is also read concurrently by recovery inspection).
type Checkpointer interface {
	// LoadMonth returns the saved checkpoint for month. ok is false when the
	// month has no checkpoint; a non-nil error means the store is damaged for
	// this month (the pipeline refits rather than aborting).
	LoadMonth(month int) (cp MonthCheckpoint, ok bool, err error)
	// SaveMonth durably persists one month's state. An error aborts the
	// analysis: a caller that asked for durable checkpoints must not proceed
	// on a store that cannot commit.
	SaveMonth(cp MonthCheckpoint) error
}

// HashMonth fingerprints one filtered month plus the fit options that shape
// its model: the FNV-1a hash covers every record's hospital, patient,
// disease bag, and medicine bag in order, and the EM knobs (MaxIter, Tol,
// PriorWeight) whose change would produce a different model. The medicine
// vocabulary size is deliberately excluded — it grows as later months intern
// new codes and does not affect the fitted Φ — so an incremental store stays
// valid as the corpus grows.
func HashMonth(month *mic.Monthly, em medmodel.FitOptions) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	em = em.WithDefaults()
	put(uint64(month.Month))
	put(uint64(em.MaxIter))
	put(math.Float64bits(em.Tol))
	put(math.Float64bits(em.PriorWeight))
	put(uint64(len(month.Records)))
	for i := range month.Records {
		r := &month.Records[i]
		put(uint64(uint32(r.Hospital)))
		put(uint64(uint32(r.Patient)))
		put(uint64(len(r.Diseases)))
		for _, dc := range r.Diseases {
			put(uint64(uint32(dc.Disease)))
			put(uint64(dc.Count))
		}
		put(uint64(len(r.Medicines)))
		for _, m := range r.Medicines {
			put(uint64(uint32(m)))
		}
	}
	return h.Sum64()
}

// fitModels runs the model stage: medmodel.FitAll when no Checkpointer is
// configured, and the checkpoint-aware variant otherwise, which loads every
// month whose saved state matches the current data, fits only the rest, and
// commits each fresh fit back to the store. The returned models and failures
// are byte-identical to a run that fitted every month from scratch (fits are
// deterministic, and the store round-trips float bits exactly).
func fitModels(ctx context.Context, d *mic.Dataset, opts Options, ins *pipelineInstruments) ([]*medmodel.Model, []medmodel.MonthError, error) {
	ckpt := opts.Checkpoint
	if ckpt == nil {
		return medmodel.FitAll(ctx, d, opts.EM)
	}

	models := make([]*medmodel.Model, d.T())
	var fails []medmodel.MonthError
	loaded := make([]bool, d.T())
	hashes := make([]uint64, d.T())
	reloaded := 0
	for i, month := range d.Months {
		hashes[i] = HashMonth(month, opts.EM)
		if err := faultpoint.Inject("trend/ckpt-load", monthDetail(i)); err != nil {
			continue // damaged entry: refit this month
		}
		cp, ok, err := ckpt.LoadMonth(i)
		if err != nil || !ok || cp.DataHash != hashes[i] {
			continue
		}
		loaded[i] = true
		reloaded++
		if cp.Model != nil {
			models[i] = cp.Model
			continue
		}
		ferr := errors.New("checkpointed model-stage failure")
		if cp.Failure != nil && cp.Failure.Err != "" {
			ferr = errors.New(cp.Failure.Err)
		}
		me := medmodel.MonthError{Month: i, Err: ferr}
		if cp.Failure != nil {
			me.Panicked = cp.Failure.Panicked
		}
		fails = append(fails, me)
	}
	// The smoothed chain (PriorWeight > 0) fits months serially, each prior
	// centered at the previous posterior: a month's model is only reusable
	// when every month before it was reused too. Clamp the loaded set to its
	// contiguous prefix so the chain below re-derives everything after the
	// first hole.
	if opts.EM.PriorWeight > 0 {
		prefix := 0
		for prefix < len(loaded) && loaded[prefix] {
			prefix++
		}
		for i := prefix; i < len(loaded); i++ {
			if loaded[i] {
				loaded[i] = false
				reloaded--
				models[i] = nil
			}
		}
		fails = filterMonthErrors(fails, prefix)
	}
	if ins != nil && reloaded > 0 {
		ins.metrics.Counter("trend/ckpt_months_reused").Add(int64(reloaded))
	}

	var needIdx []int
	for i := range loaded {
		if !loaded[i] {
			needIdx = append(needIdx, i)
		}
	}
	if len(needIdx) > 0 {
		sub := &mic.Dataset{Diseases: d.Diseases, Medicines: d.Medicines, Hospitals: d.Hospitals}
		for _, i := range needIdx {
			sub.Months = append(sub.Months, d.Months[i])
		}
		em := opts.EM
		if em.PriorWeight > 0 {
			// Seed the resumed chain with the last reused posterior (the
			// months before needIdx[0] all loaded, by the prefix clamp above).
			for i := needIdx[0] - 1; i >= 0; i-- {
				if models[i] != nil {
					em.InitialPrior = models[i]
					break
				}
			}
		}
		// Progress events and spans from the sub-batch carry positions within
		// the batch; remap them to real month indices so a resumed run's
		// stream reads like the original's (minus the reused months).
		if inner := em.Observer; inner != nil {
			em.Observer = func(e obs.Event) {
				if e.Kind == obs.MonthFitted && e.Month >= 0 && e.Month < len(needIdx) {
					e.Month = needIdx[e.Month]
					e.Total = d.T()
				}
				inner(e)
			}
		}
		if inner := em.Trace; inner != nil {
			em.Trace = func(sp obs.SpanEvent) {
				if sp.Month >= 0 && sp.Month < len(needIdx) {
					sp.Month = needIdx[sp.Month]
				}
				inner(sp)
			}
		}
		fitted, ffails, ferr := medmodel.FitAll(ctx, sub, em)
		failedAt := make(map[int]medmodel.MonthError, len(ffails))
		for _, mf := range ffails {
			mf.Month = needIdx[mf.Month]
			failedAt[mf.Month] = mf
			fails = append(fails, mf)
		}
		for j, i := range needIdx {
			models[i] = fitted[j]
		}
		if ferr != nil {
			// Cancelled: nothing fitted after the cut is trustworthy, and the
			// caller is abandoning the run — skip the save pass.
			return models, sortMonthErrors(fails), ferr
		}
		for _, i := range needIdx {
			cp := MonthCheckpoint{Month: i, DataHash: hashes[i], Model: models[i]}
			if mf, ok := failedAt[i]; ok {
				cp.Model = nil
				cp.Failure = &Failure{
					Stage: StageModel, Month: i, Err: mf.Err.Error(), Panicked: mf.Panicked,
				}
			}
			if err := faultpoint.Inject("trend/ckpt-save", monthDetail(i)); err != nil {
				return models, sortMonthErrors(fails), fmt.Errorf("trend: checkpointing month %d: %w", i, err)
			}
			if err := ckpt.SaveMonth(cp); err != nil {
				return models, sortMonthErrors(fails), fmt.Errorf("trend: checkpointing month %d: %w", i, err)
			}
		}
	}
	return models, sortMonthErrors(fails), nil
}

// filterMonthErrors drops loaded-checkpoint failures at or past the smoothed
// chain's reuse prefix (those months are being refitted).
func filterMonthErrors(fails []medmodel.MonthError, prefix int) []medmodel.MonthError {
	out := fails[:0]
	for _, mf := range fails {
		if mf.Month < prefix {
			out = append(out, mf)
		}
	}
	return out
}

// sortMonthErrors orders month failures ascending, matching FitAll's
// contract after checkpoint-loaded and freshly fitted failures interleave.
func sortMonthErrors(fails []medmodel.MonthError) []medmodel.MonthError {
	sort.Slice(fails, func(a, b int) bool { return fails[a].Month < fails[b].Month })
	return fails
}

func monthDetail(i int) string { return fmt.Sprintf("month-%d", i) }
