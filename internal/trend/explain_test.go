package trend

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mictrend/internal/changepoint"
	"mictrend/internal/faultpoint"
	"mictrend/internal/obs"
)

// TestAnalyzeExplainProvenance pins the Explain contract: provenance covers
// every month and every considered series, mirrors the published results,
// and collecting it changes nothing.
func TestAnalyzeExplainProvenance(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is heavy")
	}
	env := faultCorpus(t)
	faultpoint.Reset()
	plain, err := Analyze(context.Background(), env.dataset(), env.opts)
	if err != nil {
		t.Fatal(err)
	}
	opts := env.opts
	opts.Explain = true
	explained, err := Analyze(context.Background(), env.dataset(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(detectionsByKey(plain), detectionsByKey(explained)) {
		t.Fatal("collecting provenance changed the detections")
	}
	if plain.MonthProvenance != nil || plain.SeriesProvenance != nil {
		t.Fatal("provenance allocated without Explain")
	}

	if len(explained.MonthProvenance) != env.dataset().T() {
		t.Fatalf("month provenance covers %d months, want %d", len(explained.MonthProvenance), env.dataset().T())
	}
	for i, mp := range explained.MonthProvenance {
		if mp.Month != i || mp.Fallback || mp.Err != "" {
			t.Fatalf("month %d provenance = %+v", i, mp)
		}
		if len(mp.LogLikTrace) != mp.Iterations {
			t.Fatalf("month %d convergence trace has %d entries, want %d iterations", i, len(mp.LogLikTrace), mp.Iterations)
		}
		if mp.LogLikTrace[len(mp.LogLikTrace)-1] != mp.LogLik {
			t.Fatalf("month %d trace does not end at its final log-likelihood", i)
		}
	}

	dets := detectionsByKey(explained)
	if len(explained.SeriesProvenance) != len(dets) {
		t.Fatalf("series provenance covers %d series, want %d", len(explained.SeriesProvenance), len(dets))
	}
	for _, sp := range explained.SeriesProvenance {
		det, ok := dets[sp.Key]
		if !ok {
			t.Fatalf("provenance for unknown series %s", sp.Key)
		}
		if sp.Failure != "" || sp.FailureStage != "" {
			t.Fatalf("clean run recorded series failure: %+v", sp)
		}
		scan := sp.Scan
		if scan == nil || scan.Method != changepoint.SearchBinary.String() {
			t.Fatalf("series %s scan provenance = %+v", sp.Key, scan)
		}
		if scan.ChangePoint != det.Result.ChangePoint || scan.AIC != det.Result.AIC {
			t.Fatalf("series %s provenance outcome differs from its detection", sp.Key)
		}
		if len(scan.Candidates) == 0 || len(scan.Candidates) != scan.Fits {
			t.Fatalf("series %s ladder has %d rungs, want %d fits", sp.Key, len(scan.Candidates), scan.Fits)
		}
		if len(scan.Params) == 0 {
			t.Fatalf("series %s provenance lacks selected model params", sp.Key)
		}
	}
}

// TestExplainLinksFailures injects a detection failure and checks the
// degraded series' provenance cross-links the Failures entry.
func TestExplainLinksFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is heavy")
	}
	env := faultCorpus(t)
	faultpoint.Reset()
	clean, err := Analyze(context.Background(), env.dataset(), env.opts)
	if err != nil {
		t.Fatal(err)
	}
	victim := pickVictim(clean)
	defer faultpoint.Reset()
	faultpoint.Enable("trend/detect", faultpoint.Spec{
		Match: func(detail string) bool { return detail == victim },
	})
	opts := env.opts
	opts.Explain = true
	faulty, err := Analyze(context.Background(), env.dataset(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var hit *SeriesProvenance
	for i := range faulty.SeriesProvenance {
		if faulty.SeriesProvenance[i].Key == victim {
			hit = &faulty.SeriesProvenance[i]
		}
	}
	if hit == nil {
		t.Fatalf("no provenance entry for degraded series %s", victim)
	}
	if hit.FailureStage != StageDetect.String() || hit.Failure == "" {
		t.Fatalf("degraded provenance = %+v, want detect-stage failure link", hit)
	}
	if len(faulty.Failures) != 1 || faulty.Failures[0].Err != hit.Failure {
		t.Fatalf("provenance failure %q does not match Failures %+v", hit.Failure, faulty.Failures)
	}
}

// TestAnalyzeTraceSpans pins the pipeline span contract: stage spans bracket
// every stage, month and series spans arrive in serial order with
// worker-invariant content, degraded series carry their failure stage, and
// the collected trace serializes to valid Trace Event JSON.
func TestAnalyzeTraceSpans(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is heavy")
	}
	env := faultCorpus(t)
	faultpoint.Reset()
	clean, err := Analyze(context.Background(), env.dataset(), env.opts)
	if err != nil {
		t.Fatal(err)
	}
	victim := pickVictim(clean)
	defer faultpoint.Reset()
	faultpoint.Enable("trend/detect", faultpoint.Spec{
		Match: func(detail string) bool { return detail == victim },
	})

	// signature drops the timing fields, keeping only deterministic content.
	type signature struct {
		Cat, Name, Series, Detail, Err string
		TID                            int64
		Month                          int
	}
	var want []signature
	for _, workers := range []int{1, 4} {
		tracer := obs.NewTracer()
		opts := env.opts
		opts.Workers = workers
		opts.Trace = tracer.Observe
		a, err := Analyze(context.Background(), env.dataset(), opts)
		if err != nil {
			t.Fatal(err)
		}
		spans := tracer.Spans()
		var got []signature
		counts := map[string]int{}
		for _, sp := range spans {
			got = append(got, signature{sp.Cat, sp.Name, sp.Series, sp.Detail, sp.Err, sp.TID, sp.Month})
			counts[sp.Name]++
		}
		if counts["stage/model"] != 1 || counts["stage/reproduce"] != 1 || counts["stage/detect"] != 1 {
			t.Fatalf("workers %d: stage spans = %v", workers, counts)
		}
		if counts["em/month"] != env.dataset().T() {
			t.Fatalf("workers %d: %d em/month spans, want %d", workers, counts["em/month"], env.dataset().T())
		}
		series := len(detectionsByKey(a)) + 1 // every job incl. the degraded one
		if counts["detect/series"] != series {
			t.Fatalf("workers %d: %d detect/series spans, want %d", workers, counts["detect/series"], series)
		}
		degraded := 0
		for _, sp := range spans {
			if sp.Name != "detect/series" {
				continue
			}
			if sp.Series == victim {
				degraded++
				if sp.Err == "" || sp.Detail != "stage="+StageDetect.String() {
					t.Fatalf("workers %d: degraded span = %+v, want failure stage", workers, sp)
				}
			} else if !strings.HasPrefix(sp.Detail, "cp=") {
				t.Fatalf("workers %d: series span detail = %q", workers, sp.Detail)
			}
		}
		if degraded != 1 {
			t.Fatalf("workers %d: %d degraded spans, want 1", workers, degraded)
		}
		if want == nil {
			want = got
		} else if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers %d: span content differs from workers 1", workers)
		}

		var buf bytes.Buffer
		if err := tracer.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("workers %d: trace is not valid JSON: %v", workers, err)
		}
		if len(doc.TraceEvents) <= len(spans) {
			t.Fatalf("workers %d: %d trace events for %d spans, want spans plus metadata", workers, len(doc.TraceEvents), len(spans))
		}
	}
}

// TestWriteExplain round-trips the provenance artifacts through disk.
func TestWriteExplain(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is heavy")
	}
	env := faultCorpus(t)
	faultpoint.Reset()
	opts := env.opts
	opts.Explain = true
	a, err := Analyze(context.Background(), env.dataset(), opts)
	if err != nil {
		t.Fatal(err)
	}
	man := BuildManifest(opts, a)
	man.Version = "test"
	man.Seed = 11
	dir := t.TempDir()
	if err := WriteExplain(dir, a, man); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var gotMan Manifest
	if err := json.Unmarshal(raw, &gotMan); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotMan, man) {
		t.Fatalf("manifest round-trip: got %+v, want %+v", gotMan, man)
	}
	if gotMan.Months != env.dataset().T() || gotMan.Series != len(a.SeriesProvenance) || gotMan.Method != "binary" {
		t.Fatalf("manifest content wrong: %+v", gotMan)
	}

	raw, err = os.ReadFile(filepath.Join(dir, "months.json"))
	if err != nil {
		t.Fatal(err)
	}
	var months []MonthProvenance
	if err := json.Unmarshal(raw, &months); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(months, a.MonthProvenance) {
		t.Fatal("months.json does not round-trip MonthProvenance")
	}

	entries, err := os.ReadDir(filepath.Join(dir, "series"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(a.SeriesProvenance) {
		t.Fatalf("%d series artifacts, want %d", len(entries), len(a.SeriesProvenance))
	}
	for _, e := range entries {
		if strings.ContainsAny(e.Name(), ":/") {
			t.Fatalf("artifact name %q not sanitized", e.Name())
		}
	}
	sp := a.SeriesProvenance[0]
	raw, err = os.ReadFile(filepath.Join(dir, "series", sanitizeKey(sp.Key)+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var gotSP SeriesProvenance
	if err := json.Unmarshal(raw, &gotSP); err != nil {
		t.Fatal(err)
	}
	if gotSP.Key != sp.Key || gotSP.Scan == nil || gotSP.Scan.ChangePoint != sp.Scan.ChangePoint {
		t.Fatalf("series artifact round-trip: %+v", gotSP)
	}
}
