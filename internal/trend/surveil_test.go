package trend

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"mictrend/internal/faultpoint"
	"mictrend/internal/mic"
	"mictrend/internal/micgen"
	"mictrend/internal/obs"
)

// surveilEnv generates the standard scenario corpus and resolves the
// catalog's ground-truth hierarchy against its vocabularies.
func surveilEnv(t *testing.T) (*mic.Dataset, *micgen.Truth, Hierarchy) {
	t.Helper()
	ds, truth, err := micgen.Generate(micgen.Config{
		Seed:            42,
		Months:          30,
		RecordsPerMonth: 1200,
		BulkDiseases:    6,
		BulkMedicines:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := truth.Catalog
	h := HierarchyFromCodes(ds, c.MedicineClasses(), c.ClassGroupCodes(), c.DiseaseGroups())
	return ds, truth, h
}

func surveilOpts(h Hierarchy) SurveilOptions {
	popts := DefaultOptions()
	popts.Method = MethodExact
	popts.Seasonal = false
	popts.MinSeriesTotal = 100
	return SurveilOptions{Hierarchy: h, Pipeline: popts}
}

func medKey(t *testing.T, ds *mic.Dataset, code string) SeriesKey {
	t.Helper()
	id, ok := ds.Medicines.Lookup(code)
	if !ok {
		t.Fatalf("medicine %s missing from vocabulary", code)
	}
	return SeriesKey{Kind: KindMedicine, Medicine: mic.MedicineID(id)}
}

func disKey(t *testing.T, ds *mic.Dataset, code string) SeriesKey {
	t.Helper()
	id, ok := ds.Diseases.Lookup(code)
	if !ok {
		t.Fatalf("disease %s missing from vocabulary", code)
	}
	return SeriesKey{Kind: KindDisease, Disease: mic.DiseaseID(id)}
}

// TestSurveilDetectsPlantedAggregateEvents is the tentpole acceptance test:
// hierarchical surveillance must recall ≥ 90% of the generator's planted
// aggregate-level events, and attribute single-driver events to the right
// member medicine at top-1.
func TestSurveilDetectsPlantedAggregateEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is heavy")
	}
	ds, truth, h := surveilEnv(t)
	surv, err := Surveil(context.Background(), ds, surveilOpts(h))
	if err != nil {
		t.Fatal(err)
	}
	// On this small corpus (1200 records/month) the estimation noise floor
	// sits near a 15% relative shift, so the truth filter asks for 20%.
	events := truth.AggregateEvents(0, -1, 0.2)
	if len(events) == 0 {
		t.Fatal("generator planted no visible aggregate events")
	}
	near := func(cp, month int) bool { return cp >= month-4 && cp <= month+4 }
	hits := 0
	for _, ev := range events {
		node := surv.Node(SeriesKey{Kind: KindMedicineClass, Node: ev.Class})
		if node == nil {
			t.Errorf("class %s has no surveillance node", ev.Class)
			continue
		}
		// An event counts as detected when the class is flagged and the
		// event's month surfaces either as the aggregate break itself or as
		// a member change point in the drill-down attribution (a class with
		// two planted events reports the stronger one at aggregate level;
		// the drill-down recovers the other).
		hit := false
		if node.Result.Detected() {
			hit = near(node.Result.ChangePoint, ev.Month)
			for _, a := range node.Attribution {
				hit = hit || (a.ChildChangePoint >= 0 && near(a.ChildChangePoint, ev.Month))
			}
		}
		if hit {
			hits++
		} else {
			t.Logf("missed aggregate event: class %s month %d drivers %v (cp=%d)", ev.Class, ev.Month, ev.Drivers, node.Result.ChangePoint)
		}
	}
	if hits*10 < len(events)*9 {
		t.Fatalf("aggregate recall %d/%d, want ≥ 90%%", hits, len(events))
	}

	// Single-driver events whose month the aggregate break itself matched
	// must attribute to the driver at top-1.
	for _, ev := range events {
		if len(ev.Drivers) != 1 {
			continue
		}
		node := surv.Node(SeriesKey{Kind: KindMedicineClass, Node: ev.Class})
		if node == nil || !node.Result.Detected() || !near(node.Result.ChangePoint, ev.Month) {
			continue
		}
		if len(node.Attribution) == 0 {
			t.Errorf("class %s detected but has no attribution", ev.Class)
			continue
		}
		want := medKey(t, ds, ev.Drivers[0])
		if got := node.Attribution[0].Child; got != want {
			t.Errorf("class %s top-1 attribution = %s, want %s (%s)", ev.Class, got, want, ev.Drivers[0])
		}
	}

	// Shares of a detected node's full attribution are coherent: the top
	// entry dominates and every entry carries the break-relative delta.
	for _, node := range surv.Detected() {
		if len(node.Attribution) == 0 {
			t.Fatalf("detected node %s has no attribution", node.Key)
		}
		for i := 1; i < len(node.Attribution); i++ {
			a, b := node.Attribution[i-1], node.Attribution[i]
			if absf(a.Delta) < absf(b.Delta) {
				t.Fatalf("node %s attribution not ranked: |%f| < |%f|", node.Key, a.Delta, b.Delta)
			}
		}
	}
}

// TestSurveilFlagsPlantedOffsetPair pins the offsetting-substitution
// detector on the generator's planted pair: the original anti-platelet's
// post-generic decline must be flagged inside class B01 with a generic as
// the absorbing riser — an event invisible at the aggregate level.
func TestSurveilFlagsPlantedOffsetPair(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is heavy")
	}
	ds, truth, h := surveilEnv(t)
	surv, err := Surveil(context.Background(), ds, surveilOpts(h))
	if err != nil {
		t.Fatal(err)
	}
	otruth := truth.OffsetPairs()
	var planted *micgen.OffsetTruth
	for i := range otruth {
		if otruth[i].Class == micgen.ClassAntiplatelet && otruth[i].Decliner == micgen.MedicineAntiplOrig {
			planted = &otruth[i]
		}
	}
	if planted == nil {
		t.Fatal("generator lost the planted substitution pair")
	}
	nodeKey := SeriesKey{Kind: KindMedicineClass, Node: micgen.ClassAntiplatelet}
	declinerKey := medKey(t, ds, micgen.MedicineAntiplOrig)
	var found *OffsetPair
	for i := range surv.Offsets {
		if surv.Offsets[i].Node == nodeKey && surv.Offsets[i].Decliner == declinerKey {
			found = &surv.Offsets[i]
		}
	}
	if found == nil {
		t.Fatalf("planted offset pair not flagged; offsets = %+v", surv.Offsets)
	}
	risers := map[SeriesKey]bool{}
	for _, code := range planted.Risers {
		risers[medKey(t, ds, code)] = true
	}
	if !risers[found.Riser] {
		t.Fatalf("offset riser = %s, want one of the planted generics", found.Riser)
	}
	if found.Month < planted.Month-2 || found.Month > planted.Month+8 {
		t.Fatalf("offset month = %d, want near release month %d", found.Month, planted.Month)
	}
	if found.DeclineDelta >= 0 || found.RiseDelta <= 0 {
		t.Fatalf("offset deltas have wrong signs: %+v", *found)
	}
	if absf(found.NetDelta) > maxf(-found.DeclineDelta, found.RiseDelta) {
		t.Fatalf("net move %f exceeds gross moves, not an offset", found.NetDelta)
	}
}

// TestSurveilFlagsDiagShiftOffset checks the disease-group level: the
// diagnostics shift moves dehydration diagnoses to oral-feeding difficulty
// within the nutrition group.
func TestSurveilFlagsDiagShiftOffset(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is heavy")
	}
	ds, _, h := surveilEnv(t)
	surv, err := Surveil(context.Background(), ds, surveilOpts(h))
	if err != nil {
		t.Fatal(err)
	}
	nodeKey := SeriesKey{Kind: KindDiseaseGroup, Node: micgen.GroupNutrition}
	declinerKey := disKey(t, ds, micgen.DiseaseDehydration)
	for _, op := range surv.Offsets {
		if op.Node == nodeKey && op.Decliner == declinerKey {
			if want := disKey(t, ds, micgen.DiseaseOralFeeding); op.Riser != want {
				t.Fatalf("diag-shift riser = %s, want %s", op.Riser, want)
			}
			return
		}
	}
	t.Fatalf("diagnostics-shift offset not flagged in group %s; offsets = %+v", micgen.GroupNutrition, surv.Offsets)
}

// surveilJSON marshals the worker-independent part of a surveillance tree.
func surveilJSON(t *testing.T, s *Surveillance) []byte {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSurveilWorkersShardsInvariance is the determinism acceptance test: the
// surveillance tree must be byte-identical for every Workers/ScanWorkers
// split, and for Analysis-reuse across Shards splits.
func TestSurveilWorkersShardsInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is heavy")
	}
	ds, _, h := surveilEnv(t)
	base := surveilOpts(h)

	var want []byte
	for _, workers := range []int{1, 3, 7} {
		opts := base
		opts.Pipeline.Workers = workers
		opts.Pipeline.ScanWorkers = workers%2 + 1
		surv, err := Surveil(context.Background(), ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := surveilJSON(t, surv)
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("surveillance differs at workers=%d", workers)
		}
	}

	// Reusing a full Analyze (under any shard split) must yield the same
	// tree: the leaf change points it cross-links are exactly what the
	// standalone drill-down computes, so only DrillFits — the count of NEW
	// fits the reuse saved — may differ. Normalize it before comparing.
	normalize := func(s *Surveillance) []byte {
		c := *s
		c.DrillFits = 0
		return surveilJSON(t, &c)
	}
	var wantNorm []byte
	{
		opts := base
		surv, err := Surveil(context.Background(), ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		wantNorm = normalize(surv)
	}
	var prevReuse []byte
	for _, shards := range []int{1, 3} {
		opts := base
		opts.Pipeline.Shards = shards
		analysis, err := Analyze(context.Background(), ds, opts.Pipeline)
		if err != nil {
			t.Fatal(err)
		}
		opts.Analysis = analysis
		surv, err := Surveil(context.Background(), ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := normalize(surv); !bytes.Equal(got, wantNorm) {
			t.Fatalf("surveillance with reused analysis (shards=%d) differs from standalone", shards)
		}
		got := surveilJSON(t, surv)
		if prevReuse == nil {
			prevReuse = got
		} else if !bytes.Equal(got, prevReuse) {
			t.Fatalf("reused surveillance differs across shard splits")
		}
	}
}

// TestSurveilFaultInjectionDegradesOneNode: an injected aggregate-scan
// failure must degrade only its node, recorded under StageSurveil.
func TestSurveilFaultInjectionDegradesOneNode(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is heavy")
	}
	ds, _, h := surveilEnv(t)
	faultpoint.Reset()
	defer faultpoint.Reset()
	victim := SeriesKey{Kind: KindMedicineClass, Node: micgen.ClassAntiplatelet}
	faultpoint.Enable("trend/surveil", faultpoint.Spec{
		Match: func(detail string) bool { return detail == victim.String() },
	})
	surv, err := Surveil(context.Background(), ds, surveilOpts(h))
	if err != nil {
		t.Fatalf("injected fault aborted Surveil: %v", err)
	}
	if len(surv.Failures) != 1 {
		t.Fatalf("failures = %+v, want exactly the injected one", surv.Failures)
	}
	f := surv.Failures[0]
	if f.Stage != StageSurveil || f.Key() != victim {
		t.Fatalf("failure = %+v, want StageSurveil on %s", f, victim)
	}
	node := surv.Node(victim)
	if node == nil || node.Result.Detected() {
		t.Fatal("failed node should keep a zero result")
	}
	healthy := 0
	for i := range surv.Nodes {
		if surv.Nodes[i].Result.Detected() {
			healthy++
		}
	}
	if healthy == 0 {
		t.Fatal("fault leaked beyond its node: nothing else detected")
	}
}

// TestSurveilObserverContract: the surveil stages emit StageStart/StageEnd
// and per-node SeriesDone events in node order, and metrics land under
// surveil/*.
func TestSurveilObserverContract(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is heavy")
	}
	ds, _, h := surveilEnv(t)
	var events []obs.Event
	reg := obs.NewRegistry()
	opts := surveilOpts(h)
	opts.Pipeline.Observer = func(e obs.Event) { events = append(events, e) }
	opts.Pipeline.Metrics = reg
	surv, err := Surveil(context.Background(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	var nodeOrder []string
	for i := range surv.Nodes {
		nodeOrder = append(nodeOrder, surv.Nodes[i].Key.String())
	}
	var seen []string
	started := false
	for _, e := range events {
		switch {
		case e.Kind == obs.StageStart && e.Stage == "surveil":
			started = true
			if e.Total != len(surv.Nodes) {
				t.Fatalf("surveil stage total = %d, want %d", e.Total, len(surv.Nodes))
			}
		case e.Kind == obs.SeriesDone && e.Stage == "surveil":
			seen = append(seen, e.Series)
		}
	}
	if !started {
		t.Fatal("no surveil StageStart event")
	}
	if strings.Join(seen, ",") != strings.Join(nodeOrder, ",") {
		t.Fatalf("surveil SeriesDone order = %v, want node order %v", seen, nodeOrder)
	}
	if reg.Counter("surveil/nodes").Value() != int64(len(surv.Nodes)) {
		t.Fatal("surveil/nodes counter wrong")
	}
	if reg.Counter("surveil/total_fits").Value() != int64(surv.AggregateFits+surv.DrillFits) {
		t.Fatal("surveil/total_fits counter wrong")
	}
}

// TestSurveilReportMentionsDrivers smoke-tests the drill-down report.
func TestSurveilReportMentionsDrivers(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is heavy")
	}
	ds, _, h := surveilEnv(t)
	surv, err := Surveil(context.Background(), ds, surveilOpts(h))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := surv.WriteReport(&buf, ds); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "hierarchical surveillance:") {
		t.Fatal("report missing header")
	}
	if !strings.Contains(out, micgen.MedicineAntiplOrig) {
		t.Fatalf("report does not mention the planted decliner:\n%s", out)
	}
}

// TestHierarchyFromCodesDropsUnknown: codes absent from the vocabulary must
// not invent hierarchy entries.
func TestHierarchyFromCodesDropsUnknown(t *testing.T) {
	ds, _, err := micgen.Generate(micgen.Config{Seed: 7, Months: 4, RecordsPerMonth: 100})
	if err != nil {
		t.Fatal(err)
	}
	h := HierarchyFromCodes(ds,
		map[string]string{"NO-SUCH-MED": "X01", micgen.MedicineAntiplOrig: "B01"},
		map[string]string{"B01": "B"},
		map[string]string{"NO-SUCH-DIS": "X"})
	if len(h.DiseaseGroup) != 0 {
		t.Fatalf("unknown disease codes leaked: %v", h.DiseaseGroup)
	}
	id, ok := ds.Medicines.Lookup(micgen.MedicineAntiplOrig)
	if !ok {
		t.Fatal("scenario medicine missing")
	}
	if h.MedicineClass[mic.MedicineID(id)] != "B01" {
		t.Fatal("known medicine not mapped")
	}
	if h.Empty() {
		t.Fatal("hierarchy should not be empty")
	}
}

// TestSeriesKeyRoundTrip pins the typed key's rendering to the legacy
// stringly format and its parser to an exact inverse.
func TestSeriesKeyRoundTrip(t *testing.T) {
	keys := []SeriesKey{
		{Kind: KindDisease, Disease: 7},
		{Kind: KindMedicine, Medicine: 9},
		{Kind: KindPrescription, Disease: 3, Medicine: 11},
		{Kind: KindMedicineClass, Node: "B01"},
		{Kind: KindMedicineGroup, Node: "B"},
		{Kind: KindDiseaseGroup, Node: "NUTR"},
	}
	want := []string{"disease:7", "medicine:9", "prescription:3/11", "class:B01", "class-group:B", "disease-group:NUTR"}
	for i, k := range keys {
		if k.String() != want[i] {
			t.Fatalf("key %d renders %q, want %q", i, k.String(), want[i])
		}
		back, err := ParseSeriesKey(k.String())
		if err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Fatalf("round trip %q → %+v, want %+v", k.String(), back, k)
		}
	}
	if _, err := ParseSeriesKey("nonsense"); err == nil {
		t.Fatal("junk key should not parse")
	}
	// The legacy shim must agree with the typed rendering.
	det := Detection{Kind: KindPrescription, Disease: 3, Medicine: 11}
	if seriesKey(det) != det.Key().String() {
		t.Fatal("seriesKey shim diverged from typed key")
	}
}
