package trend

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"mictrend/internal/faultpoint"
	"mictrend/internal/medmodel"
	"mictrend/internal/mic"
	"mictrend/internal/micgen"
	"mictrend/internal/obs"
)

// memCheckpointer is an in-memory Checkpointer for pipeline-level tests; the
// durable implementation lives in internal/serve.
type memCheckpointer struct {
	months map[int]MonthCheckpoint
	saves  int
	loads  int
	failAt int // month whose SaveMonth fails terminally (-1 = never)
}

func newMemCheckpointer() *memCheckpointer {
	return &memCheckpointer{months: make(map[int]MonthCheckpoint), failAt: -1}
}

func (m *memCheckpointer) LoadMonth(month int) (MonthCheckpoint, bool, error) {
	m.loads++
	cp, ok := m.months[month]
	return cp, ok, nil
}

func (m *memCheckpointer) SaveMonth(cp MonthCheckpoint) error {
	if cp.Month == m.failAt {
		return errors.New("store cannot commit")
	}
	m.saves++
	m.months[cp.Month] = cp
	return nil
}

func genTiny(t *testing.T) *mic.Dataset {
	t.Helper()
	ds, _, err := micgen.Generate(micgen.Config{
		Seed:            11,
		Months:          8,
		RecordsPerMonth: 200,
		BulkDiseases:    4,
		BulkMedicines:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func ckptOptions() Options {
	opts := DefaultOptions()
	opts.Method = MethodBinary
	opts.Seasonal = false
	opts.MinSeriesTotal = 100
	opts.Workers = 2
	return opts
}

// TestCheckpointResumeByteIdentical is the core resumability contract: a run
// that reloads every month from a checkpointer produces an Analysis deeply
// equal to the uncheckpointed run, fitting zero months itself.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	ds := genTiny(t)
	opts := ckptOptions()

	plain, err := Analyze(context.Background(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := newMemCheckpointer()
	opts.Checkpoint = ckpt
	first, err := Analyze(context.Background(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.saves != ds.T() {
		t.Fatalf("first run saved %d months, want %d", ckpt.saves, ds.T())
	}
	if !reflect.DeepEqual(plain, first) {
		t.Fatal("checkpointed run differs from plain run")
	}

	metrics := obs.NewRegistry()
	opts.Metrics = metrics
	second, err := Analyze(context.Background(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.saves != ds.T() {
		t.Fatalf("resumed run saved %d more months, want 0", ckpt.saves-ds.T())
	}
	if got := metrics.Counter("trend/ckpt_months_reused").Value(); got != int64(ds.T()) {
		t.Fatalf("reused %d months, want %d", got, ds.T())
	}
	second.MonthProvenance = first.MonthProvenance // Metrics wiring aside, results must match
	if !reflect.DeepEqual(first, second) {
		t.Fatal("resumed run differs from first run")
	}
}

// TestCheckpointPartialResume drops some saved months and verifies only the
// holes are refitted, with identical results.
func TestCheckpointPartialResume(t *testing.T) {
	ds := genTiny(t)
	opts := ckptOptions()

	ckpt := newMemCheckpointer()
	opts.Checkpoint = ckpt
	first, err := Analyze(context.Background(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	delete(ckpt.months, 2)
	delete(ckpt.months, 5)
	ckpt.saves = 0
	metrics := obs.NewRegistry()
	opts.Metrics = metrics
	second, err := Analyze(context.Background(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.saves != 2 {
		t.Fatalf("refitted %d months, want 2", ckpt.saves)
	}
	if got := metrics.Counter("trend/ckpt_months_reused").Value(); got != int64(ds.T()-2) {
		t.Fatalf("reused %d months, want %d", got, ds.T()-2)
	}
	if !reflect.DeepEqual(first.Models, second.Models) {
		t.Fatal("models differ after partial resume")
	}
	if !reflect.DeepEqual(first.Prescriptions, second.Prescriptions) {
		t.Fatal("detections differ after partial resume")
	}
}

// TestCheckpointStaleHashIgnored: a store built under different fit options
// must be ignored, not trusted.
func TestCheckpointStaleHashIgnored(t *testing.T) {
	ds := genTiny(t)
	opts := ckptOptions()
	ckpt := newMemCheckpointer()
	opts.Checkpoint = ckpt
	if _, err := Analyze(context.Background(), ds, opts); err != nil {
		t.Fatal(err)
	}

	opts.EM.MaxIter = 3 // different fit options → different DataHash
	metrics := obs.NewRegistry()
	opts.Metrics = metrics
	ckpt.saves = 0
	if _, err := Analyze(context.Background(), ds, opts); err != nil {
		t.Fatal(err)
	}
	if got := metrics.Counter("trend/ckpt_months_reused").Value(); got != 0 {
		t.Fatalf("reused %d stale months, want 0", got)
	}
	if ckpt.saves != ds.T() {
		t.Fatalf("re-saved %d months, want %d", ckpt.saves, ds.T())
	}
}

// TestCheckpointSmoothedChainPrefix: with a cross-month prior chain, a hole
// invalidates everything after it, and the resumed chain (seeded with the
// last reused posterior) still reproduces the uncheckpointed fit exactly.
func TestCheckpointSmoothedChainPrefix(t *testing.T) {
	ds := genTiny(t)
	opts := ckptOptions()
	opts.EM.PriorWeight = 50

	plain, err := Analyze(context.Background(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := newMemCheckpointer()
	opts.Checkpoint = ckpt
	if _, err := Analyze(context.Background(), ds, opts); err != nil {
		t.Fatal(err)
	}
	// Hole at month 3: months 3..7 must all refit (serial prior chain), and
	// only 0..2 are reusable.
	delete(ckpt.months, 3)
	ckpt.saves = 0
	metrics := obs.NewRegistry()
	opts.Metrics = metrics
	resumed, err := Analyze(context.Background(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := metrics.Counter("trend/ckpt_months_reused").Value(); got != 3 {
		t.Fatalf("reused %d months, want 3 (prefix before the hole)", got)
	}
	if ckpt.saves != ds.T()-3 {
		t.Fatalf("refitted %d months, want %d", ckpt.saves, ds.T()-3)
	}
	if !reflect.DeepEqual(plain.Models, resumed.Models) {
		t.Fatal("smoothed chain resume diverged from the uncheckpointed fit")
	}
}

// TestCheckpointSaveFailureAborts: durable means durable — a SaveMonth error
// aborts the analysis instead of serving unpersisted results.
func TestCheckpointSaveFailureAborts(t *testing.T) {
	ds := genTiny(t)
	opts := ckptOptions()
	ckpt := newMemCheckpointer()
	ckpt.failAt = 4
	opts.Checkpoint = ckpt
	if _, err := Analyze(context.Background(), ds, opts); err == nil {
		t.Fatal("expected a checkpoint commit failure to abort the analysis")
	}
}

// TestCheckpointLoadFaultRefits: an injected load fault makes the pipeline
// refit the month rather than abort, and results stay identical.
func TestCheckpointLoadFaultRefits(t *testing.T) {
	ds := genTiny(t)
	opts := ckptOptions()
	ckpt := newMemCheckpointer()
	opts.Checkpoint = ckpt
	first, err := Analyze(context.Background(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}

	faultpoint.Enable("trend/ckpt-load", faultpoint.Spec{
		Match: func(detail string) bool { return detail == "month-1" },
	})
	defer faultpoint.Reset()
	metrics := obs.NewRegistry()
	opts.Metrics = metrics
	second, err := Analyze(context.Background(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := metrics.Counter("trend/ckpt_months_reused").Value(); got != int64(ds.T()-1) {
		t.Fatalf("reused %d months, want %d", got, ds.T()-1)
	}
	if !reflect.DeepEqual(first.Models, second.Models) {
		t.Fatal("models differ after a load fault refit")
	}
}

// TestHashMonthSensitivity: the fingerprint must move with the data and the
// fit options, and stay put for identical inputs.
func TestHashMonthSensitivity(t *testing.T) {
	ds := genTiny(t)
	var em, em2 medmodel.FitOptions
	base := HashMonth(ds.Months[0], em)
	if HashMonth(ds.Months[0], em) != base {
		t.Fatal("hash not deterministic")
	}
	em2.MaxIter = em.WithDefaults().MaxIter + 1
	if HashMonth(ds.Months[0], em2) == base {
		t.Fatal("hash ignores MaxIter")
	}
	if HashMonth(ds.Months[1], em) == base {
		t.Fatal("hash ignores records")
	}
	clone := &mic.Monthly{Month: ds.Months[0].Month}
	for _, r := range ds.Months[0].Records {
		clone.Records = append(clone.Records, r.Clone())
	}
	if HashMonth(clone, em) != base {
		t.Fatal("hash differs for cloned identical records")
	}
	clone.Records[0].Medicines = append(clone.Records[0].Medicines, 0)
	if HashMonth(clone, em) == base {
		t.Fatal("hash ignores a medicine bag change")
	}
}
