package trend

import "context"

// workerBudget is the pipeline's shared two-level worker pool: a bounded set
// of tokens sized by Options.Workers. Level one admits series — the
// dispatcher blocks in acquire until a token frees, so at most Workers
// series are in flight. Level two lets an admitted series opportunistically
// claim idle tokens (tryAcquire) to parallelize its own change point scan:
// when the batch is wide every token is busy admitting series and scans run
// serially, exactly like a flat pool; when the series count is small or the
// batch tail drains, the idle tokens migrate into intra-series scan
// parallelism instead of idling cores.
type workerBudget struct {
	tokens chan struct{}
}

func newWorkerBudget(n int) *workerBudget {
	b := &workerBudget{tokens: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		b.tokens <- struct{}{}
	}
	return b
}

// acquire blocks until a token is free or ctx is done, returning ctx's
// error in the latter case.
func (b *workerBudget) acquire(ctx context.Context) error {
	select {
	case <-b.tokens:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// tryAcquire claims up to max tokens without blocking and returns how many
// it got (0 when none are idle or max ≤ 0).
func (b *workerBudget) tryAcquire(max int) int {
	got := 0
	for got < max {
		select {
		case <-b.tokens:
			got++
		default:
			return got
		}
	}
	return got
}

// release returns n tokens to the pool.
func (b *workerBudget) release(n int) {
	for i := 0; i < n; i++ {
		b.tokens <- struct{}{}
	}
}
