package trend

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"mictrend/internal/faultpoint"
	"mictrend/internal/mic"
	"mictrend/internal/micgen"
)

// faultCorpus is a corpus small enough for fast exact scans but with enough
// series to exercise the pool.
func faultCorpus(t *testing.T) *faultEnv {
	t.Helper()
	ds, _, err := micgen.Generate(micgen.Config{
		Seed:            11,
		Months:          24,
		RecordsPerMonth: 400,
		BulkDiseases:    4,
		BulkMedicines:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Method = MethodBinary
	opts.Seasonal = false
	opts.MinSeriesTotal = 200
	return &faultEnv{ds: ds, opts: opts}
}

type faultEnv struct {
	ds   *mic.Dataset
	opts Options
}

func (e *faultEnv) dataset() *mic.Dataset { return e.ds }

// detectionsByKey indexes every detection of an analysis by its series key.
func detectionsByKey(a *Analysis) map[string]Detection {
	out := make(map[string]Detection)
	for _, group := range [][]Detection{a.Diseases, a.Medicines, a.Prescriptions} {
		for _, det := range group {
			out[seriesKey(det)] = det
		}
	}
	return out
}

// pickVictim returns the key of a mid-list series to sabotage.
func pickVictim(a *Analysis) string {
	if len(a.Medicines) > 0 {
		return seriesKey(a.Medicines[len(a.Medicines)/2])
	}
	if len(a.Prescriptions) > 0 {
		return seriesKey(a.Prescriptions[0])
	}
	return seriesKey(a.Diseases[0])
}

// TestInjectedFailureDegradesOneSeries is the acceptance-criteria test: an
// injected fit failure in one series must not abort Analyze — the run
// completes, the failed series appears in Failures, and every other
// detection is byte-identical to the fault-free run.
func TestInjectedFailureDegradesOneSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is heavy")
	}
	env := faultCorpus(t)
	faultpoint.Reset()
	clean, err := Analyze(context.Background(), env.dataset(), env.opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Failures) != 0 {
		t.Fatalf("fault-free run recorded failures: %v", clean.Failures)
	}
	victim := pickVictim(clean)

	for _, tc := range []struct {
		name     string
		spec     faultpoint.Spec
		panicked bool
	}{
		{name: "error", spec: faultpoint.Spec{}, panicked: false},
		{name: "panic", spec: faultpoint.Spec{Panic: true}, panicked: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			faultpoint.Reset()
			defer faultpoint.Reset()
			spec := tc.spec
			spec.Match = func(detail string) bool { return detail == victim }
			faultpoint.Enable("trend/detect", spec)
			faulty, err := Analyze(context.Background(), env.dataset(), env.opts)
			if err != nil {
				t.Fatalf("injected fault aborted Analyze: %v", err)
			}
			if len(faulty.Failures) != 1 {
				t.Fatalf("failures = %v, want exactly the injected one", faulty.Failures)
			}
			f := faulty.Failures[0]
			if f.Stage != StageDetect || f.Panicked != tc.panicked {
				t.Fatalf("failure = %+v, want StageDetect with Panicked=%v", f, tc.panicked)
			}
			if got := seriesKey(Detection{Kind: f.Kind, Disease: f.Disease, Medicine: f.Medicine}); got != victim {
				t.Fatalf("failed series = %s, want %s", got, victim)
			}

			cleanDets := detectionsByKey(clean)
			faultyDets := detectionsByKey(faulty)
			if _, ok := faultyDets[victim]; ok {
				t.Fatal("failed series still has a detection")
			}
			if len(faultyDets) != len(cleanDets)-1 {
				t.Fatalf("faulty run has %d detections, want %d", len(faultyDets), len(cleanDets)-1)
			}
			for key, det := range faultyDets {
				if !reflect.DeepEqual(det, cleanDets[key]) {
					t.Fatalf("detection %s differs from fault-free run", key)
				}
			}
		})
	}
}

// TestPrefixResumePanicDegradesOneSeries pins the checkpoint-resume blast
// radius: a panic inside one prefix-ladder resume of the exact scan degrades
// only the series being scanned — the run completes, exactly that series is
// recorded as a StageDetect panic, and every other detection is
// byte-identical to the fault-free run.
func TestPrefixResumePanicDegradesOneSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is heavy")
	}
	env := faultCorpus(t)
	env.opts.Method = MethodExact
	env.opts.Workers = 1
	faultpoint.Reset()
	clean, err := Analyze(context.Background(), env.dataset(), env.opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Failures) != 0 {
		t.Fatalf("fault-free run recorded failures: %v", clean.Failures)
	}

	faultpoint.Reset()
	defer faultpoint.Reset()
	// The site's detail is the candidate month, not the series key, so a
	// one-shot budget picks the victim: the first series to run a ladder
	// (deterministic under Workers=1).
	faultpoint.Enable("changepoint/prefix-resume", faultpoint.Spec{Panic: true, Count: 1})
	faulty, err := Analyze(context.Background(), env.dataset(), env.opts)
	if err != nil {
		t.Fatalf("injected resume panic aborted Analyze: %v", err)
	}
	if len(faulty.Failures) != 1 {
		t.Fatalf("failures = %v, want exactly the injected one", faulty.Failures)
	}
	f := faulty.Failures[0]
	if f.Stage != StageDetect || !f.Panicked {
		t.Fatalf("failure = %+v, want a StageDetect panic", f)
	}
	victim := seriesKey(Detection{Kind: f.Kind, Disease: f.Disease, Medicine: f.Medicine})

	cleanDets := detectionsByKey(clean)
	faultyDets := detectionsByKey(faulty)
	if _, ok := faultyDets[victim]; ok {
		t.Fatal("panicked series still has a detection")
	}
	if len(faultyDets) != len(cleanDets)-1 {
		t.Fatalf("faulty run has %d detections, want %d", len(faultyDets), len(cleanDets)-1)
	}
	for key, det := range faultyDets {
		if !reflect.DeepEqual(det, cleanDets[key]) {
			t.Fatalf("detection %s differs from fault-free run", key)
		}
	}
}

// TestAnalyzeDegradesOnEMMonthFailure injects an EM failure into one month
// and checks Analyze substitutes the fallback model and completes.
func TestAnalyzeDegradesOnEMMonthFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is heavy")
	}
	env := faultCorpus(t)
	faultpoint.Reset()
	defer faultpoint.Reset()
	faultpoint.Enable("medmodel/fit-month", faultpoint.Spec{
		Match: func(detail string) bool { return detail == "3" },
	})
	analysis, err := Analyze(context.Background(), env.dataset(), env.opts)
	if err != nil {
		t.Fatalf("EM month failure aborted Analyze: %v", err)
	}
	var monthFails []Failure
	for _, f := range analysis.Failures {
		if f.Stage == StageModel {
			monthFails = append(monthFails, f)
		}
	}
	if len(monthFails) != 1 || monthFails[0].Month != 3 {
		t.Fatalf("model failures = %v, want one at month 3", monthFails)
	}
	if analysis.Models[3] == nil {
		t.Fatal("failed month was not degraded to a fallback model")
	}
	if len(analysis.Prescriptions) == 0 {
		t.Fatal("degraded run produced no detections")
	}
}

// TestCancelMidScanReturnsPartialResults cancels the context after a fixed
// number of series starts and checks Analyze returns promptly with the
// detections completed before the cancel, without leaking goroutines.
func TestCancelMidScanReturnsPartialResults(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is heavy")
	}
	env := faultCorpus(t)
	env.opts.Workers = 1 // deterministic: series complete one at a time
	faultpoint.Reset()
	defer faultpoint.Reset()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const completeBefore = 4
	hits := 0
	faultpoint.Enable("trend/detect", faultpoint.Spec{
		// Never fires (Match returns false); used purely to observe hits and
		// cancel after the first few series completed.
		Match: func(string) bool {
			hits++
			if hits == completeBefore+1 {
				cancel()
			}
			return false
		},
	})

	before := runtime.NumGoroutine()
	start := time.Now()
	analysis, err := Analyze(ctx, env.dataset(), env.opts)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if analysis == nil {
		t.Fatal("cancelled Analyze returned no partial analysis")
	}
	got := len(analysis.Diseases) + len(analysis.Medicines) + len(analysis.Prescriptions)
	if got != completeBefore {
		t.Fatalf("partial detections = %d, want %d (workers=1, cancel at series %d)", got, completeBefore, completeBefore+1)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("cancelled scan took %v", elapsed)
	}
	// The pool must wind down: allow the runtime a moment to retire workers.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestAnalyzeDeterministicUnderWorkerCounts checks detections and failures
// are identical for any pool size, including with a fault injected.
func TestAnalyzeDeterministicUnderWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is heavy")
	}
	env := faultCorpus(t)
	faultpoint.Reset()
	defer faultpoint.Reset()
	ref, err := Analyze(context.Background(), env.dataset(), env.opts)
	if err != nil {
		t.Fatal(err)
	}
	victim := pickVictim(ref)
	faultpoint.Enable("trend/detect", faultpoint.Spec{
		Match: func(detail string) bool { return detail == victim },
	})
	var base *Analysis
	for _, workers := range []int{1, 2, 7} {
		opts := env.opts
		opts.Workers = workers
		a, err := Analyze(context.Background(), env.dataset(), opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = a
			continue
		}
		if !reflect.DeepEqual(a.Diseases, base.Diseases) ||
			!reflect.DeepEqual(a.Medicines, base.Medicines) ||
			!reflect.DeepEqual(a.Prescriptions, base.Prescriptions) {
			t.Fatalf("workers=%d: detections differ from workers=1", workers)
		}
		if !reflect.DeepEqual(a.Failures, base.Failures) {
			t.Fatalf("workers=%d: failures differ from workers=1", workers)
		}
	}
}

// TestValidateJobsRejectsNonFinite checks the pre-detection validation stage.
func TestValidateJobsRejectsNonFinite(t *testing.T) {
	good := Detection{Kind: KindMedicine, Medicine: 1, Series: []float64{1, 2, 3}}
	nan := Detection{Kind: KindDisease, Disease: 2, Series: []float64{1, math.NaN(), 3}}
	inf := Detection{Kind: KindPrescription, Disease: 3, Medicine: 4, Series: []float64{1, 2, math.Inf(1)}}
	valid, fails := validateJobs([]Detection{good, nan, inf})
	if len(valid) != 1 || seriesKey(valid[0]) != "medicine:1" {
		t.Fatalf("valid = %v, want only medicine:1", valid)
	}
	if len(fails) != 2 {
		t.Fatalf("failures = %v, want 2", fails)
	}
	for _, f := range fails {
		if f.Stage != StageValidate {
			t.Fatalf("failure stage = %v, want validate", f.Stage)
		}
		if !strings.Contains(f.Err, "series value at month") {
			t.Fatalf("failure message %q lacks the offending month", f.Err)
		}
	}
}

// TestFailureString covers the report rendering.
func TestFailureString(t *testing.T) {
	f := Failure{Stage: StageModel, Month: 7, Err: "boom"}
	if got := f.String(); got != "model month 7: boom" {
		t.Fatalf("String() = %q", got)
	}
	f = Failure{Stage: StageDetect, Kind: KindPrescription, Disease: 1, Medicine: 2, Month: -1, Err: "bad fit", Attempts: 4}
	if got := f.String(); got != "detect prescription:1/2: bad fit (after 4 starts)" {
		t.Fatalf("String() = %q", got)
	}
}
