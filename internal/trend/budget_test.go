package trend

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"mictrend/internal/faultpoint"
)

func TestWorkerBudgetAcquireRelease(t *testing.T) {
	b := newWorkerBudget(2)
	ctx := context.Background()
	if err := b.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.acquire(ctx); err != nil {
		t.Fatal(err)
	}

	// The pool is empty: a third acquire must block until a release.
	acquired := make(chan error, 1)
	go func() {
		acquired <- b.acquire(ctx)
	}()
	select {
	case err := <-acquired:
		t.Fatalf("acquire on an empty budget returned %v without a release", err)
	case <-time.After(20 * time.Millisecond):
	}
	b.release(1)
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("acquire did not observe the released token")
	}
}

func TestWorkerBudgetAcquireCancelled(t *testing.T) {
	b := newWorkerBudget(1)
	if err := b.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("acquire on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestWorkerBudgetTryAcquire(t *testing.T) {
	b := newWorkerBudget(3)
	if got := b.tryAcquire(0); got != 0 {
		t.Fatalf("tryAcquire(0) = %d", got)
	}
	if got := b.tryAcquire(-2); got != 0 {
		t.Fatalf("tryAcquire(-2) = %d", got)
	}
	// Asking for more than the pool holds claims only what is idle.
	if got := b.tryAcquire(5); got != 3 {
		t.Fatalf("tryAcquire(5) on a full pool = %d, want 3", got)
	}
	if got := b.tryAcquire(1); got != 0 {
		t.Fatalf("tryAcquire on a drained pool = %d, want 0", got)
	}
	b.release(2)
	if got := b.tryAcquire(1); got != 1 {
		t.Fatalf("tryAcquire(1) after release = %d, want 1", got)
	}
}

// exactCorpus is faultCorpus retargeted at the exact scan: non-seasonal
// models keep the per-candidate fits cheap enough to scan every series
// exhaustively.
func exactCorpus(t *testing.T) *faultEnv {
	env := faultCorpus(t)
	env.opts.Method = MethodExact
	return env
}

// TestAnalyzeExactDeterministicAcrossBudgetSplits pins the two-level
// budget's contract: detections from the exact (warm-started, parallel)
// scan are byte-identical for every Workers × ScanWorkers split, because
// scan shards are carved by grain, never by worker count.
func TestAnalyzeExactDeterministicAcrossBudgetSplits(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is heavy")
	}
	env := exactCorpus(t)
	var base *Analysis
	var baseOpts string
	for _, split := range []struct{ workers, scan int }{
		{1, 1}, {2, 0}, {3, 2}, {7, 0}, {4, 1},
	} {
		opts := env.opts
		opts.Workers = split.workers
		opts.ScanWorkers = split.scan
		a, err := Analyze(context.Background(), env.dataset(), opts)
		if err != nil {
			t.Fatalf("workers=%d scan=%d: %v", split.workers, split.scan, err)
		}
		if len(a.Failures) != 0 {
			t.Fatalf("workers=%d scan=%d: unexpected failures %v", split.workers, split.scan, a.Failures)
		}
		if base == nil {
			base, baseOpts = a, "workers=1 scan=1"
			continue
		}
		if !reflect.DeepEqual(detectionsByKey(a), detectionsByKey(base)) {
			t.Fatalf("workers=%d scan=%d: detections differ from %s", split.workers, split.scan, baseOpts)
		}
		if a.TotalFits != base.TotalFits {
			t.Fatalf("workers=%d scan=%d: TotalFits %d != %d", split.workers, split.scan, a.TotalFits, base.TotalFits)
		}
	}
}

// TestAnalyzeExactCandidateFaultDegradesOneSeries drives the changepoint
// fault site through the pipeline: one injected candidate-fit failure inside
// a parallel exact scan must fail only that series (StageDetect, everything
// else byte-identical to the clean run) — the shard error path composes with
// the pipeline's per-series degradation.
func TestAnalyzeExactCandidateFaultDegradesOneSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is heavy")
	}
	env := exactCorpus(t)
	env.opts.Workers = 1 // deterministic victim: the first series to fit the candidate
	faultpoint.Reset()
	clean, err := Analyze(context.Background(), env.dataset(), env.opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Failures) != 0 {
		t.Fatalf("fault-free run recorded failures: %v", clean.Failures)
	}

	defer faultpoint.Reset()
	faultpoint.Enable("changepoint/candidate", faultpoint.Spec{
		Match: func(detail string) bool { return detail == "5" },
		Count: 1,
	})
	faulty, err := Analyze(context.Background(), env.dataset(), env.opts)
	if err != nil {
		t.Fatalf("injected candidate fault aborted Analyze: %v", err)
	}
	if len(faulty.Failures) != 1 {
		t.Fatalf("failures = %v, want exactly the injected one", faulty.Failures)
	}
	f := faulty.Failures[0]
	if f.Stage != StageDetect || f.Panicked {
		t.Fatalf("failure = %+v, want a non-panic StageDetect entry", f)
	}
	victim := seriesKey(Detection{Kind: f.Kind, Disease: f.Disease, Medicine: f.Medicine})

	cleanDets := detectionsByKey(clean)
	faultyDets := detectionsByKey(faulty)
	if _, ok := faultyDets[victim]; ok {
		t.Fatal("failed series still has a detection")
	}
	for key, det := range cleanDets {
		if key == victim {
			continue
		}
		got, ok := faultyDets[key]
		if !ok {
			t.Fatalf("series %s lost its detection", key)
		}
		if !reflect.DeepEqual(got, det) {
			t.Fatalf("series %s detection changed under the fault", key)
		}
	}
}
