// Typed series keys. The pipeline historically identified series with ad-hoc
// "disease:3" / "medicine:5" / "prescription:3/7" strings; SeriesKey makes
// that identity a first-class value shared by Analysis.Failures, provenance
// records, fault points, and the Surveillance tree, while rendering to the
// exact same strings so every existing artifact, report, and fault-point
// match stays byte-identical.
package trend

import (
	"fmt"
	"strconv"
	"strings"

	"mictrend/internal/mic"
)

// SeriesKey identifies one series — leaf or aggregate — across the pipeline.
// Leaf kinds (KindDisease, KindMedicine, KindPrescription) are identified by
// vocabulary ids; aggregate kinds (KindMedicineClass, KindMedicineGroup,
// KindDiseaseGroup) by the hierarchy node code in Node.
type SeriesKey struct {
	Kind     SeriesKind     `json:"kind"`
	Disease  mic.DiseaseID  `json:"disease,omitempty"`
	Medicine mic.MedicineID `json:"medicine,omitempty"`
	// Node is the hierarchy node code for aggregate kinds ("" for leaves).
	Node string `json:"node,omitempty"`
}

// String renders the key in the pipeline's canonical form: "disease:3",
// "medicine:5", "prescription:3/7", "class:B01", "class-group:B",
// "disease-group:RESP". Leaf keys are byte-identical to the strings the
// pipeline produced before SeriesKey existed.
func (k SeriesKey) String() string {
	switch k.Kind {
	case KindDisease:
		return "disease:" + strconv.Itoa(int(k.Disease))
	case KindMedicine:
		return "medicine:" + strconv.Itoa(int(k.Medicine))
	case KindMedicineClass:
		return "class:" + k.Node
	case KindMedicineGroup:
		return "class-group:" + k.Node
	case KindDiseaseGroup:
		return "disease-group:" + k.Node
	default:
		return "prescription:" + strconv.Itoa(int(k.Disease)) + "/" + strconv.Itoa(int(k.Medicine))
	}
}

// Aggregate reports whether the key names a hierarchy roll-up rather than a
// leaf series.
func (k SeriesKey) Aggregate() bool {
	switch k.Kind {
	case KindMedicineClass, KindMedicineGroup, KindDiseaseGroup:
		return true
	}
	return false
}

// MarshalText renders the key as its canonical string, so SeriesKey-typed
// struct fields and map keys serialize exactly like the old string keys.
func (k SeriesKey) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a canonical key string.
func (k *SeriesKey) UnmarshalText(b []byte) error {
	parsed, err := ParseSeriesKey(string(b))
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// ParseSeriesKey parses the canonical string form produced by String.
func ParseSeriesKey(s string) (SeriesKey, error) {
	kind, rest, ok := strings.Cut(s, ":")
	if !ok {
		return SeriesKey{}, fmt.Errorf("trend: series key %q: missing kind", s)
	}
	switch kind {
	case "disease":
		id, err := strconv.Atoi(rest)
		if err != nil {
			return SeriesKey{}, fmt.Errorf("trend: series key %q: %w", s, err)
		}
		return SeriesKey{Kind: KindDisease, Disease: mic.DiseaseID(id)}, nil
	case "medicine":
		id, err := strconv.Atoi(rest)
		if err != nil {
			return SeriesKey{}, fmt.Errorf("trend: series key %q: %w", s, err)
		}
		return SeriesKey{Kind: KindMedicine, Medicine: mic.MedicineID(id)}, nil
	case "prescription":
		d, m, ok := strings.Cut(rest, "/")
		if !ok {
			return SeriesKey{}, fmt.Errorf("trend: series key %q: missing medicine id", s)
		}
		di, err := strconv.Atoi(d)
		if err != nil {
			return SeriesKey{}, fmt.Errorf("trend: series key %q: %w", s, err)
		}
		mi, err := strconv.Atoi(m)
		if err != nil {
			return SeriesKey{}, fmt.Errorf("trend: series key %q: %w", s, err)
		}
		return SeriesKey{Kind: KindPrescription, Disease: mic.DiseaseID(di), Medicine: mic.MedicineID(mi)}, nil
	case "class":
		return SeriesKey{Kind: KindMedicineClass, Node: rest}, nil
	case "class-group":
		return SeriesKey{Kind: KindMedicineGroup, Node: rest}, nil
	case "disease-group":
		return SeriesKey{Kind: KindDiseaseGroup, Node: rest}, nil
	default:
		return SeriesKey{}, fmt.Errorf("trend: series key %q: unknown kind %q", s, kind)
	}
}

// less orders keys deterministically: kind, then node code, then ids.
func (k SeriesKey) less(o SeriesKey) bool {
	if k.Kind != o.Kind {
		return k.Kind < o.Kind
	}
	if k.Node != o.Node {
		return k.Node < o.Node
	}
	if k.Disease != o.Disease {
		return k.Disease < o.Disease
	}
	return k.Medicine < o.Medicine
}

// Key returns the detection's typed series key.
func (d Detection) Key() SeriesKey {
	return SeriesKey{Kind: d.Kind, Disease: d.Disease, Medicine: d.Medicine}
}

// Key returns the typed key of the series this failure concerns. For
// StageModel and StageObserver failures — which are not about one series —
// the key is the zero-value leaf key; check the stage first.
func (f Failure) Key() SeriesKey {
	return SeriesKey{Kind: f.Kind, Disease: f.Disease, Medicine: f.Medicine, Node: f.Node}
}

// SeriesKey returns the typed key for this provenance entry, parsed from its
// canonical Key string (which remains authoritative for artifact naming).
func (sp SeriesProvenance) SeriesKey() (SeriesKey, error) {
	return ParseSeriesKey(sp.Key)
}

// ProvenanceFor returns the provenance entry for the given series key, or nil
// when the run did not collect provenance (Options.Explain off) or the series
// was never considered.
func (a *Analysis) ProvenanceFor(k SeriesKey) *SeriesProvenance {
	want := k.String()
	for i := range a.SeriesProvenance {
		if a.SeriesProvenance[i].Key == want {
			return &a.SeriesProvenance[i]
		}
	}
	return nil
}
