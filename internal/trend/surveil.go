// Hierarchical surveillance: detect high, attribute down. Millions of
// disease/medicine pairs is too many to eyeball, so Surveil rolls the
// reproduced series up an ATC-like hierarchy (medicine → class → anatomical
// group; disease → disease group), runs the prefix-exact change point scan on
// the far smaller aggregate set, and then attributes each aggregate break to
// the child series driving it via per-child contribution deltas around the
// break — including offsetting substitution pairs (one member's decline
// absorbed by a sibling's rise) that are invisible at the aggregate level.
package trend

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"mictrend/internal/changepoint"
	"mictrend/internal/faultpoint"
	"mictrend/internal/medmodel"
	"mictrend/internal/mic"
	"mictrend/internal/obs"
	"mictrend/internal/ssm"
)

// Hierarchy maps leaf series into the class tree, keyed by dataset
// vocabulary ids. Leaves absent from the maps are outside the hierarchy and
// are not surveilled; classes absent from ClassGroup form no group node.
type Hierarchy struct {
	// MedicineClass maps each medicine to its class code (e.g. "B01").
	MedicineClass map[mic.MedicineID]string `json:"medicine_class,omitempty"`
	// ClassGroup maps each class code to its anatomical group code ("B").
	ClassGroup map[string]string `json:"class_group,omitempty"`
	// DiseaseGroup maps each disease to its disease-group code ("RESP").
	DiseaseGroup map[mic.DiseaseID]string `json:"disease_group,omitempty"`
}

// Empty reports whether the hierarchy has no levels at all.
func (h Hierarchy) Empty() bool {
	return len(h.MedicineClass) == 0 && len(h.ClassGroup) == 0 && len(h.DiseaseGroup) == 0
}

// HierarchyFromCodes resolves a code-keyed hierarchy (such as the micgen
// catalog's ground-truth class maps) against a dataset's vocabularies.
// Codes missing from the vocabulary are dropped; vocabulary entries missing
// from the maps stay outside the hierarchy.
func HierarchyFromCodes(ds *mic.Dataset, medicineClass, classGroup, diseaseGroup map[string]string) Hierarchy {
	h := Hierarchy{ClassGroup: make(map[string]string, len(classGroup))}
	for class, group := range classGroup {
		h.ClassGroup[class] = group
	}
	h.MedicineClass = make(map[mic.MedicineID]string)
	for id, code := range ds.Medicines.Codes() {
		if class, ok := medicineClass[code]; ok {
			h.MedicineClass[mic.MedicineID(id)] = class
		}
	}
	h.DiseaseGroup = make(map[mic.DiseaseID]string)
	for id, code := range ds.Diseases.Codes() {
		if group, ok := diseaseGroup[code]; ok {
			h.DiseaseGroup[mic.DiseaseID(id)] = group
		}
	}
	return h
}

// SurveilOptions configures hierarchical surveillance.
type SurveilOptions struct {
	// Hierarchy is the class tree to roll series up. Required.
	Hierarchy Hierarchy
	// Pipeline carries the shared pipeline options: method, filters, worker
	// budget, and the Observer/Metrics/Trace/Explain instrumentation, with
	// the same contracts they have on Analyze.
	Pipeline Options
	// Analysis, when non-nil, reuses a completed Analyze run: its models and
	// reproduced series feed the roll-up, and its leaf detections cross-link
	// into the attribution (no drill-down scans needed). Nil runs the model
	// and reproduce stages here — identically to Analyze — but skips the
	// flat per-leaf detection stage; that is the cheap detect-high path.
	Analysis *Analysis
	// Window is the contribution-delta window in months around a detected
	// aggregate break (default 6, clamped to the series bounds).
	Window int
	// MinShare drops attribution entries whose |delta| is below this
	// fraction of the node's own delta (default 0.05). The top contributor
	// is always kept.
	MinShare float64
	// OffsetMinShare is the minimum opposing move — both the decline and the
	// absorbing rise — as a fraction of the node's mean level for an offset
	// pair to be flagged (default 0.10).
	OffsetMinShare float64
	// OffsetCancel is the maximum |net node move| as a fraction of the
	// larger opposing move: 0 of a perfect substitution, 1 disables the
	// cancellation requirement (default 0.6).
	OffsetCancel float64
	// SkipDrillDown skips the per-child change point scans under detected
	// aggregates; attribution then carries contribution deltas only.
	SkipDrillDown bool
}

func (o SurveilOptions) withDefaults() SurveilOptions {
	if o.Window <= 0 {
		o.Window = 6
	}
	if o.MinShare <= 0 {
		o.MinShare = 0.05
	}
	if o.OffsetMinShare <= 0 {
		o.OffsetMinShare = 0.10
	}
	if o.OffsetCancel <= 0 {
		o.OffsetCancel = 0.6
	}
	return o
}

// Attribution is one child's contribution to a detected aggregate break:
// the change of its window-mean level across the break, its share of the
// node's own move, and — when the child was scanned or cross-linked from an
// Analysis — the child's own change point.
type Attribution struct {
	Child SeriesKey `json:"child"`
	// Delta is mean(child[cp:cp+w]) − mean(child[cp−w:cp]).
	Delta float64 `json:"delta"`
	// Share is Delta over the node's own delta (signed; shares of all
	// children sum to ≈1). When the node's net move is ≈0 — an offsetting
	// break — Share is Delta over the sum of |child deltas| instead.
	Share float64 `json:"share"`
	// ChildChangePoint is the child's own detected change point, -1 when the
	// child has none (or was not scanned).
	ChildChangePoint int `json:"child_change_point"`
}

// OffsetPair flags an offsetting substitution inside one node: Decliner's
// fall is absorbed by sibling rises, so the node aggregate moves little — a
// change invisible from the aggregate alone.
type OffsetPair struct {
	Node     SeriesKey `json:"node"`
	Decliner SeriesKey `json:"decliner"`
	// Riser is the largest single absorbing sibling; RiseDelta is the total
	// opposing rise across all siblings.
	Riser SeriesKey `json:"riser"`
	// Month is the split point with the strongest offsetting contrast.
	Month int `json:"month"`
	// DeclineDelta (negative) is the decliner's level change across Month;
	// RiseDelta (positive) the siblings' total opposing change; NetDelta the
	// node's own change.
	DeclineDelta float64 `json:"decline_delta"`
	RiseDelta    float64 `json:"rise_delta"`
	NetDelta     float64 `json:"net_delta"`
}

// SurveilNode is one aggregate series of the hierarchy.
type SurveilNode struct {
	Key SeriesKey `json:"key"`
	// Parent is the enclosing node's key (nil for top-level nodes).
	Parent *SeriesKey `json:"parent,omitempty"`
	// Children lists the member series keys in deterministic order:
	// medicines of a class, classes of a group, diseases of a disease group.
	Children []SeriesKey `json:"children"`
	// Series is the rolled-up aggregate series (sum of the children).
	Series []float64 `json:"series"`
	// Result is the aggregate change point scan's outcome. A node whose scan
	// failed keeps a zero Result and carries a StageSurveil failure.
	Result changepoint.Result `json:"result"`
	// Attribution ranks the children of a detected node by |Delta|; nil for
	// undetected nodes.
	Attribution []Attribution `json:"attribution,omitempty"`
}

// Surveillance is Surveil's output tree.
type Surveillance struct {
	// Nodes lists every aggregate node: classes, then class groups, then
	// disease groups, each sorted by node code.
	Nodes []SurveilNode `json:"nodes"`
	// Offsets lists the flagged offsetting substitution pairs, in node and
	// then child order. Offsets are detected on every node — not only
	// detected ones — precisely because a well-offset substitution leaves no
	// aggregate break.
	Offsets []OffsetPair `json:"offsets"`
	// Failures records the surveillance run's own degradations (aggregate
	// and drill-down scans, observer panics), sorted. The model/reproduce
	// stage failures live in Analysis.Failures as always.
	Failures []Failure `json:"failures,omitempty"`
	// AggregateFits and DrillFits count the model fits spent on aggregate
	// and drill-down scans (compare Analysis.TotalFits for the flat cost).
	AggregateFits int `json:"aggregate_fits"`
	DrillFits     int `json:"drill_fits"`
	// Hierarchy is the (id-keyed) hierarchy the run used.
	Hierarchy Hierarchy `json:"hierarchy"`
	// Provenance carries the aggregate and drill-down scan provenance when
	// Options.Explain is set.
	Provenance []SeriesProvenance `json:"-"`
	// Analysis is the underlying pipeline run: the fitted models, reproduced
	// series, and — when Surveil reused a full Analyze — the leaf
	// detections the attribution cross-links.
	Analysis *Analysis `json:"-"`
}

// Detected returns the nodes with a detected aggregate change point, in node
// order.
func (s *Surveillance) Detected() []*SurveilNode {
	var out []*SurveilNode
	for i := range s.Nodes {
		if s.Nodes[i].Result.Detected() {
			out = append(out, &s.Nodes[i])
		}
	}
	return out
}

// Node returns the node with the given key, or nil.
func (s *Surveillance) Node(k SeriesKey) *SurveilNode {
	for i := range s.Nodes {
		if s.Nodes[i].Key == k {
			return &s.Nodes[i]
		}
	}
	return nil
}

// Surveil runs hierarchical surveillance: roll the reproduced series up
// opts.Hierarchy, scan the aggregates for change points, attribute each
// detected break down to the children driving it, and flag offsetting
// substitution pairs.
//
// Surveil shares Analyze's contracts. Determinism: the roll-up consumes the
// deterministically merged ReproduceParallel series in sorted id order and
// every scan is worker-invariant, so the Surveillance tree is byte-identical
// for any Workers/ScanWorkers/Shards split. Failure degradation: a failed or
// panicked aggregate scan degrades that node only (recorded in
// Surveillance.Failures with StageSurveil); observer panics mute the
// observer and keep the run alive. Observability: the model/reproduce stages
// (when run here) emit exactly Analyze's events, followed by a "surveil"
// stage with one SeriesDone per node and — when drill-down scans run — a
// "surveil-drill" stage with one SeriesDone per scanned child; metrics land
// under surveil/* and spans on the detect lane. Cancelling ctx stops within
// one model fit and returns the partial tree alongside ctx's error.
func Surveil(ctx context.Context, ds *mic.Dataset, opts SurveilOptions) (*Surveillance, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	popts, ins := setupPipeline(ctx, opts.Pipeline)
	analysis := opts.Analysis
	if analysis == nil || analysis.Series == nil {
		var valFails []Failure
		var err error
		analysis, _, valFails, err = prepare(ctx, ds, popts, ins)
		if err != nil {
			return nil, err
		}
		if popts.Explain {
			analysis.SeriesProvenance = append(analysis.SeriesProvenance, valProvenance(valFails)...)
		}
		sortFailures(analysis.Failures)
	}
	surv := &Surveillance{Hierarchy: opts.Hierarchy, Analysis: analysis}
	nodes, classIdx := buildNodes(analysis.Series, opts.Hierarchy)
	surv.Nodes = nodes
	childAt := func(k SeriesKey) []float64 {
		switch k.Kind {
		case KindDisease:
			return analysis.Series.Disease(k.Disease)
		case KindMedicine:
			return analysis.Series.Medicine(k.Medicine)
		case KindMedicineClass:
			if i, ok := classIdx[k.Node]; ok {
				return nodes[i].Series
			}
		}
		return nil
	}

	// Detect high: scan the aggregate set (far smaller than the leaf set).
	aggJobs := make([]scanJob, len(nodes))
	for i := range nodes {
		aggJobs[i] = scanJob{key: nodes[i].Key, series: nodes[i].Series}
	}
	endAgg := ins.stage("surveil", len(aggJobs))
	aggRes, aggOK, aggFails, aggProvs, aggFits, aerr := scanAll(ctx, "surveil", aggJobs, popts, ins)
	done := 0
	for i := range nodes {
		if aggOK[i] {
			nodes[i].Result = aggRes[i]
			done++
		}
	}
	endAgg(done, aerr)
	surv.Failures = append(surv.Failures, aggFails...)
	surv.AggregateFits = aggFits
	if popts.Explain {
		surv.Provenance = append(surv.Provenance, scanProvenance(aggJobs, aggOK, aggFails, aggProvs)...)
	}

	// Attribute down: cross-link child change points (from the reused
	// Analysis and the class scans above), drill-scanning only the leaf
	// children of detected nodes that have no detection yet.
	childRes := make(map[SeriesKey]changepoint.Result)
	for i := range nodes {
		if aggOK[i] {
			childRes[nodes[i].Key] = nodes[i].Result
		}
	}
	for _, dets := range [][]Detection{analysis.Diseases, analysis.Medicines} {
		for _, det := range dets {
			childRes[det.Key()] = det.Result
		}
	}
	failed := make(map[SeriesKey]bool, len(aggFails))
	for i := range aggFails {
		failed[aggFails[i].Key()] = true
	}
	if aerr == nil && !opts.SkipDrillDown {
		var drillJobs []scanJob
		for i := range nodes {
			if !nodes[i].Result.Detected() {
				continue
			}
			for _, ck := range nodes[i].Children {
				if _, ok := childRes[ck]; ok {
					continue
				}
				if failed[ck] {
					continue // already degraded in the aggregate scan
				}
				if series := childAt(ck); series != nil {
					drillJobs = append(drillJobs, scanJob{key: ck, series: series})
				}
			}
		}
		if len(drillJobs) > 0 {
			endDrill := ins.stage("surveil-drill", len(drillJobs))
			dRes, dOK, dFails, dProvs, dFits, derr := scanAll(ctx, "surveil-drill", drillJobs, popts, ins)
			ddone := 0
			for i := range drillJobs {
				if dOK[i] {
					childRes[drillJobs[i].key] = dRes[i]
					ddone++
				}
			}
			endDrill(ddone, derr)
			surv.Failures = append(surv.Failures, dFails...)
			surv.DrillFits = dFits
			if popts.Explain {
				surv.Provenance = append(surv.Provenance, scanProvenance(drillJobs, dOK, dFails, dProvs)...)
			}
			aerr = derr
		}
	}
	for i := range nodes {
		if nodes[i].Result.Detected() {
			nodes[i].Attribution = attribute(&nodes[i], childAt, childRes, opts)
		}
	}

	// Offset pairs are pure sliding-contrast arithmetic over the already
	// reproduced series — no extra fits, and independent of whether the node
	// aggregate broke (a perfect substitution never breaks it).
	surv.Offsets = detectOffsets(nodes, childAt, opts)

	ins.finishSurveil(surv)
	sortFailures(surv.Failures)
	if aerr != nil {
		return surv, aerr
	}
	return surv, ctx.Err()
}

// buildNodes rolls the reproduced series up the hierarchy in sorted id/code
// order, so the aggregates inherit ReproduceParallel's bit-exact determinism.
// It returns the node list (classes, class groups, disease groups — each
// sorted by code) and the class-code → node-index lookup.
func buildNodes(series *medmodel.SeriesSet, h Hierarchy) ([]SurveilNode, map[string]int) {
	var nodes []SurveilNode

	meds := series.Medicines()
	sort.Slice(meds, func(a, b int) bool { return meds[a] < meds[b] })
	classMembers := make(map[string][]mic.MedicineID)
	for _, m := range meds {
		if class, ok := h.MedicineClass[m]; ok {
			classMembers[class] = append(classMembers[class], m)
		}
	}
	classes := sortedKeys(classMembers)
	classIdx := make(map[string]int, len(classes))
	for _, class := range classes {
		node := newSurveilNode(SeriesKey{Kind: KindMedicineClass, Node: class})
		for _, m := range classMembers[class] {
			node.Children = append(node.Children, SeriesKey{Kind: KindMedicine, Medicine: m})
			node.Series = addSeries(node.Series, series.Medicine(m))
		}
		if group, ok := h.ClassGroup[class]; ok {
			pk := SeriesKey{Kind: KindMedicineGroup, Node: group}
			node.Parent = &pk
		}
		classIdx[class] = len(nodes)
		nodes = append(nodes, node)
	}

	groupMembers := make(map[string][]string)
	for _, class := range classes {
		if group, ok := h.ClassGroup[class]; ok {
			groupMembers[group] = append(groupMembers[group], class)
		}
	}
	for _, group := range sortedKeys(groupMembers) {
		node := newSurveilNode(SeriesKey{Kind: KindMedicineGroup, Node: group})
		for _, class := range groupMembers[group] {
			node.Children = append(node.Children, SeriesKey{Kind: KindMedicineClass, Node: class})
			node.Series = addSeries(node.Series, nodes[classIdx[class]].Series)
		}
		nodes = append(nodes, node)
	}

	diseases := series.Diseases()
	sort.Slice(diseases, func(a, b int) bool { return diseases[a] < diseases[b] })
	dgMembers := make(map[string][]mic.DiseaseID)
	for _, d := range diseases {
		if group, ok := h.DiseaseGroup[d]; ok {
			dgMembers[group] = append(dgMembers[group], d)
		}
	}
	for _, group := range sortedKeys(dgMembers) {
		node := newSurveilNode(SeriesKey{Kind: KindDiseaseGroup, Node: group})
		for _, d := range dgMembers[group] {
			node.Children = append(node.Children, SeriesKey{Kind: KindDisease, Disease: d})
			node.Series = addSeries(node.Series, series.Disease(d))
		}
		nodes = append(nodes, node)
	}
	return nodes, classIdx
}

// newSurveilNode starts a node with no change point, so nodes whose scan
// fails or is cancelled read as not-detected (a zero Result would claim a
// break at month 0).
func newSurveilNode(key SeriesKey) SurveilNode {
	node := SurveilNode{Key: key}
	node.Result.ChangePoint = ssm.NoChangePoint
	return node
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// addSeries accumulates src into dst (allocating dst on first use).
func addSeries(dst, src []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(src))
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// scanJob is one aggregate or drill-down series to scan.
type scanJob struct {
	key    SeriesKey
	series []float64
}

// scanAll runs change point scans over the jobs on the shared two-level
// worker budget with the same fault tolerance, cancellation, and
// serial-order event delivery as detectAll; results assemble by job index so
// the outcome is worker-count invariant. stage names the observer stage and
// metrics family.
func scanAll(ctx context.Context, stage string, jobs []scanJob, opts Options, ins *pipelineInstruments) (results []changepoint.Result, ok []bool, failures []Failure, provs []*changepoint.Provenance, totalFits int, err error) {
	type outcome struct {
		i         int
		res       changepoint.Result
		fail      *Failure
		cancelled bool
		stats     *ssm.FitStats
		prov      *changepoint.Provenance
		began     time.Time
		dur       time.Duration
	}
	var trace obs.SpanObserver
	if ins != nil {
		trace = ins.trace
	}
	budget := newWorkerBudget(opts.Workers)
	out := make(chan outcome)
	run := func(i int, wg *sync.WaitGroup) {
		defer wg.Done()
		defer budget.release(1)
		if ctx.Err() != nil {
			out <- outcome{i: i, cancelled: true}
			return
		}
		o := outcome{i: i}
		if ins != nil {
			if ins.metrics != nil {
				o.stats = &ssm.FitStats{}
			}
			o.began = time.Now()
			o.res, o.fail, o.cancelled, o.prov = runScan(ctx, jobs[i].key, StageSurveil, "trend/surveil", jobs[i].series, opts, budget, o.stats, trace)
			o.dur = time.Since(o.began)
		} else {
			o.res, o.fail, o.cancelled, o.prov = runScan(ctx, jobs[i].key, StageSurveil, "trend/surveil", jobs[i].series, opts, budget, nil, nil)
		}
		out <- o
	}
	go func() {
		var wg sync.WaitGroup
		defer func() {
			wg.Wait()
			close(out)
		}()
		for i := range jobs {
			if budget.acquire(ctx) != nil {
				return
			}
			wg.Add(1)
			go run(i, &wg)
		}
	}()

	results = make([]changepoint.Result, len(jobs))
	ok = make([]bool, len(jobs))
	if opts.Explain {
		provs = make([]*changepoint.Provenance, len(jobs))
	}
	var seq *obs.Sequencer
	if ins != nil {
		seq = obs.NewSequencer()
	}
	for o := range out {
		switch {
		case o.cancelled:
		case o.fail != nil:
			failures = append(failures, *o.fail)
		default:
			results[o.i] = o.res
			ok[o.i] = true
			totalFits += o.res.Fits
		}
		if opts.Explain && !o.cancelled {
			provs[o.i] = o.prov
		}
		if seq != nil {
			o := o
			seq.Done(o.i, func() {
				failErr := ""
				if o.fail != nil {
					failErr = o.fail.Err
				}
				ins.scanDone(stage, jobs[o.i].key, o.res, failErr, o.cancelled, o.stats, o.began, o.dur, o.i, len(jobs))
			})
		}
	}
	return results, ok, failures, provs, totalFits, ctx.Err()
}

// scanDone accounts one finished aggregate/drill scan, mirroring seriesDone.
func (ins *pipelineInstruments) scanDone(stage string, key SeriesKey, res changepoint.Result, failErr string, cancelled bool, stats *ssm.FitStats, began time.Time, dur time.Duration, idx, total int) {
	if ins == nil || cancelled {
		return
	}
	if ins.trace != nil {
		sp := obs.SpanEvent{
			Cat: "surveil", Name: stage + "/series", TID: obs.LaneDetect,
			Start: began, Duration: dur, Month: -1, Series: key.String(),
		}
		switch {
		case failErr != "":
			sp.Err = failErr
			sp.Detail = "stage=" + StageSurveil.String()
		case res.Detected():
			sp.Detail = "cp=" + strconv.Itoa(res.ChangePoint)
		default:
			sp.Detail = "cp=none"
		}
		ins.trace(sp)
	}
	if m := ins.metrics; m != nil {
		ins.addFitStats(stats)
		m.Counter(stage + "/series").Inc()
		if failErr == "" {
			m.Counter(stage + "/fits").Add(int64(res.Fits))
		}
		m.Timer("time/" + stage + "/series").Observe(dur)
	}
	if ins.deliver != nil {
		ins.deliver(obs.Event{
			Kind: obs.SeriesDone, Stage: stage, Series: key.String(),
			Month: -1, Done: idx + 1, Total: total, Duration: dur, Err: failErr,
		})
	}
}

// finishSurveil folds the run-level accounting into the surveillance tree:
// observer-panic failures, failure counters, detection/offset counters, and
// the fault-injection trip delta.
func (ins *pipelineInstruments) finishSurveil(surv *Surveillance) {
	if ins == nil {
		return
	}
	ins.mu.Lock()
	surv.Failures = append(surv.Failures, ins.obsFails...)
	ins.obsFails = nil
	ins.mu.Unlock()
	if m := ins.metrics; m != nil {
		m.Gauge("faultpoint/trips").Set(faultpoint.Trips() - ins.tripsBase)
		for _, f := range surv.Failures {
			m.Counter("pipeline/failures/" + f.Stage.String()).Inc()
		}
		detected := 0
		for i := range surv.Nodes {
			if surv.Nodes[i].Result.Detected() {
				detected++
			}
		}
		m.Counter("surveil/nodes").Add(int64(len(surv.Nodes)))
		m.Counter("surveil/detections").Add(int64(detected))
		m.Counter("surveil/offset_pairs").Add(int64(len(surv.Offsets)))
		m.Counter("surveil/total_fits").Add(int64(surv.AggregateFits + surv.DrillFits))
	}
}

// scanProvenance builds the provenance entries for a scan batch, in job
// order, linking failures like the detect stage does.
func scanProvenance(jobs []scanJob, ok []bool, failures []Failure, provs []*changepoint.Provenance) []SeriesProvenance {
	failFor := make(map[SeriesKey]*Failure, len(failures))
	for i := range failures {
		failFor[failures[i].Key()] = &failures[i]
	}
	var out []SeriesProvenance
	for i, job := range jobs {
		f := failFor[job.key]
		if !ok[i] && f == nil {
			continue // cancelled
		}
		sp := SeriesProvenance{
			Kind: job.key.Kind.String(), Disease: job.key.Disease, Medicine: job.key.Medicine,
			Key: job.key.String(), Scan: provs[i],
		}
		if f != nil {
			sp.Failure = f.Err
			sp.FailureStage = f.Stage.String()
		}
		out = append(out, sp)
	}
	return out
}

// windowDelta is the change of s's w-month mean level across the break at
// cp: mean(s[cp:cp+w]) − mean(s[cp−w:cp]).
func windowDelta(s []float64, cp, w int) float64 {
	var before, after float64
	for i := cp - w; i < cp; i++ {
		before += s[i]
	}
	for i := cp; i < cp+w; i++ {
		after += s[i]
	}
	return (after - before) / float64(w)
}

// attribute ranks a detected node's children by their contribution delta
// around the break.
func attribute(node *SurveilNode, childAt func(SeriesKey) []float64, childRes map[SeriesKey]changepoint.Result, opts SurveilOptions) []Attribution {
	cp := node.Result.ChangePoint
	w := opts.Window
	if cp < w {
		w = cp
	}
	if len(node.Series)-cp < w {
		w = len(node.Series) - cp
	}
	if w < 1 {
		return nil
	}
	nodeDelta := windowDelta(node.Series, cp, w)
	var attrs []Attribution
	var sumAbs float64
	for _, ck := range node.Children {
		series := childAt(ck)
		if series == nil {
			continue
		}
		a := Attribution{Child: ck, Delta: windowDelta(series, cp, w), ChildChangePoint: -1}
		if res, ok := childRes[ck]; ok && res.Detected() {
			a.ChildChangePoint = res.ChangePoint
		}
		sumAbs += absf(a.Delta)
		attrs = append(attrs, a)
	}
	denom := absf(nodeDelta)
	if denom < 1e-9*sumAbs || denom == 0 {
		denom = sumAbs
	}
	for i := range attrs {
		if denom > 0 {
			attrs[i].Share = attrs[i].Delta / denom
		}
	}
	sort.SliceStable(attrs, func(a, b int) bool {
		da, db := absf(attrs[a].Delta), absf(attrs[b].Delta)
		if da != db {
			return da > db
		}
		return attrs[a].Child.less(attrs[b].Child)
	})
	// Trim the noise floor but always keep the top contributor.
	floor := opts.MinShare * denom
	kept := attrs[:0]
	for i, a := range attrs {
		if i > 0 && absf(a.Delta) < floor {
			break
		}
		kept = append(kept, a)
	}
	return kept
}

// detectOffsets slides a split point over each multi-child node and flags
// decliners whose fall is matched by sibling rises with little net node
// movement. The contrast at split t compares each child's mean level over
// [0,t) against [t,T) — O(children × T) arithmetic via prefix sums, no model
// fits — so substitutions with slow adoption ramps still show their full
// eventual migration.
func detectOffsets(nodes []SurveilNode, childAt func(SeriesKey) []float64, opts SurveilOptions) []OffsetPair {
	const edge = 4 // months required on each side of a split
	var out []OffsetPair
	for ni := range nodes {
		node := &nodes[ni]
		if len(node.Children) < 2 {
			continue
		}
		T := len(node.Series)
		if T < 2*edge+1 {
			continue
		}
		var nodeMean float64
		for _, v := range node.Series {
			nodeMean += v
		}
		nodeMean /= float64(T)
		if nodeMean <= 0 {
			continue
		}
		k := len(node.Children)
		prefix := make([][]float64, k)
		for c, ck := range node.Children {
			s := childAt(ck)
			if s == nil {
				s = make([]float64, T)
			}
			p := make([]float64, T+1)
			for i, v := range s {
				p[i+1] = p[i] + v
			}
			prefix[c] = p
		}
		type best struct {
			score, decline, riseSum, net float64
			month, riser                 int
		}
		bests := make([]*best, k)
		deltas := make([]float64, k)
		minMove := opts.OffsetMinShare * nodeMean
		for t := edge; t <= T-edge; t++ {
			var riseSum, net float64
			riser := -1
			for c := range prefix {
				p := prefix[c]
				before := p[t] / float64(t)
				after := (p[T] - p[t]) / float64(T-t)
				d := after - before
				deltas[c] = d
				net += d
				if d > 0 {
					riseSum += d
					if riser < 0 || d > deltas[riser] {
						riser = c
					}
				}
			}
			if riser < 0 || riseSum < minMove {
				continue
			}
			for c, d := range deltas {
				if d >= 0 {
					continue
				}
				decline := -d
				if decline < minMove {
					continue
				}
				if absf(net) > opts.OffsetCancel*maxf(decline, riseSum) {
					continue
				}
				score := decline
				if riseSum < score {
					score = riseSum
				}
				if bests[c] == nil || score > bests[c].score {
					bests[c] = &best{score: score, decline: d, riseSum: riseSum, net: net, month: t, riser: riser}
				}
			}
		}
		for c, b := range bests {
			if b == nil {
				continue
			}
			out = append(out, OffsetPair{
				Node:         node.Key,
				Decliner:     node.Children[c],
				Riser:        node.Children[b.riser],
				Month:        b.month,
				DeclineDelta: b.decline,
				RiseDelta:    b.riseSum,
				NetDelta:     b.net,
			})
		}
	}
	return out
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// WriteReport renders the drill-down report: every detected aggregate with
// its ranked attribution, then the offset pairs, then the surveillance
// failures. ds, when non-nil, resolves leaf ids to vocabulary codes.
func (s *Surveillance) WriteReport(w io.Writer, ds *mic.Dataset) error {
	label := func(k SeriesKey) string {
		if ds != nil {
			switch k.Kind {
			case KindDisease:
				return ds.Diseases.Code(int32(k.Disease))
			case KindMedicine:
				return ds.Medicines.Code(int32(k.Medicine))
			}
		}
		return k.String()
	}
	detected := s.Detected()
	if _, err := fmt.Fprintf(w, "hierarchical surveillance: %d aggregate series, %d detections, %d offset pairs, %d fits (aggregate %d + drill %d)\n",
		len(s.Nodes), len(detected), len(s.Offsets), s.AggregateFits+s.DrillFits, s.AggregateFits, s.DrillFits); err != nil {
		return err
	}
	for _, node := range detected {
		imp := node.Result.NoChangeAIC - node.Result.AIC
		fmt.Fprintf(w, "\n%s: change at month %d (AIC improvement %.1f, %d members)\n",
			node.Key, node.Result.ChangePoint, imp, len(node.Children))
		for _, a := range node.Attribution {
			cp := "cp none"
			if a.ChildChangePoint >= 0 {
				cp = fmt.Sprintf("cp %d", a.ChildChangePoint)
			}
			fmt.Fprintf(w, "  %-24s delta %+8.2f  share %+5.2f  %s\n", label(a.Child), a.Delta, a.Share, cp)
		}
	}
	if len(s.Offsets) > 0 {
		fmt.Fprintf(w, "\noffset pairs (decline absorbed by substitute):\n")
		for _, op := range s.Offsets {
			fmt.Fprintf(w, "  %s: %s %+0.2f -> %s (total rise %+0.2f, net %+0.2f) around month %d\n",
				op.Node, label(op.Decliner), op.DeclineDelta, label(op.Riser), op.RiseDelta, op.NetDelta, op.Month)
		}
	}
	if len(s.Failures) > 0 {
		fmt.Fprintf(w, "\nsurveillance failures:\n")
		for _, f := range s.Failures {
			fmt.Fprintf(w, "  %s\n", f.String())
		}
	}
	return nil
}
