// Package trend wires the two stages of the paper into an end-to-end
// pipeline (Fig. 1): fit the probabilistic medication model to every monthly
// MIC dataset, reproduce the disease/medicine/prescription time series
// (Eqs. 7–8), filter unreliable series (§VI), run AIC change point detection
// over every series on a two-level worker budget (series-level parallelism
// that spills into intra-series scan parallelism when cores would otherwise
// idle), and classify each detected prescription-level change as disease-,
// medicine-, or prescription-derived (§III-B).
package trend

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"mictrend/internal/changepoint"
	"mictrend/internal/faultpoint"
	"mictrend/internal/medmodel"
	"mictrend/internal/mic"
	"mictrend/internal/obs"
	"mictrend/internal/ssm"
)

// Method selects the change point search algorithm. It is the pipeline-level
// name for changepoint.SearchMethod, so the two option surfaces share one
// vocabulary.
type Method = changepoint.SearchMethod

// Search methods.
const (
	// MethodExact is Algorithm 1. The pipeline runs it on the warm-started
	// parallel scan (selection identical to the serial scan) whenever the
	// worker budget grants a scan more than one token.
	MethodExact = changepoint.SearchExact
	// MethodBinary is Algorithm 2.
	MethodBinary = changepoint.SearchBinary
	// MethodExactParallel requests the parallel scan explicitly; within the
	// pipeline it behaves exactly like MethodExact (same scan, same budget).
	MethodExactParallel = changepoint.SearchExactParallel
)

// SeriesKind distinguishes the three series families of the paper.
type SeriesKind int

// Series kinds.
const (
	KindDisease SeriesKind = iota
	KindMedicine
	KindPrescription
	// KindMedicineClass is an aggregate: the sum of one medicine class's
	// member series (ATC-like level, e.g. "B01"). Produced by Surveil.
	KindMedicineClass
	// KindMedicineGroup is an aggregate: the sum of one anatomical group's
	// class series (e.g. "B"). Produced by Surveil.
	KindMedicineGroup
	// KindDiseaseGroup is an aggregate: the sum of one disease group's
	// disease series. Produced by Surveil.
	KindDiseaseGroup
)

// String names the kind.
func (k SeriesKind) String() string {
	switch k {
	case KindDisease:
		return "disease"
	case KindMedicine:
		return "medicine"
	case KindMedicineClass:
		return "class"
	case KindMedicineGroup:
		return "class-group"
	case KindDiseaseGroup:
		return "disease-group"
	default:
		return "prescription"
	}
}

// Detection is one series' change point search outcome.
type Detection struct {
	Kind     SeriesKind
	Disease  mic.DiseaseID  // valid for KindDisease and KindPrescription
	Medicine mic.MedicineID // valid for KindMedicine and KindPrescription
	Series   []float64
	Result   changepoint.Result
}

// Options configures the pipeline.
type Options struct {
	// Method is the change point search algorithm (default exact).
	Method Method
	// Seasonal enables the seasonal component in the fitted models
	// (default true via DefaultOptions).
	Seasonal bool
	// MinSeriesTotal drops series whose total frequency is below this
	// threshold before fitting (the paper uses 10).
	MinSeriesTotal float64
	// MinMonthlyFreq drops rare diseases/medicines per month before EM (the
	// paper uses 5).
	MinMonthlyFreq int
	// Workers bounds the pipeline's concurrency (default GOMAXPROCS): the
	// change point detection pool, and — unless EM.Workers overrides it —
	// the per-month medication model fits.
	Workers int
	// ScanWorkers caps how many of the shared Workers tokens one exact
	// change point scan may hold (its own plus idle extras claimed from the
	// two-level budget). 0 means auto: a scan soaks up every idle token, so
	// a single-series run — or the draining tail of a batch — parallelizes
	// inside the scan instead of idling cores. 1 forces serial scans.
	// Results are identical for every setting; only wall-clock changes.
	ScanWorkers int
	// Shards partitions the series universe by disease (medicine-kind
	// series by medicine) into this many shards, each with its own
	// dispatcher over the shared worker budget. Detections merge by global
	// job index, so the analysis is byte-identical for every Shards value —
	// sharding only changes which dispatcher feeds a series to the pool.
	// 0 or 1 keeps the single dispatcher.
	Shards int
	// EM tunes the medication model fit. EM.Workers defaults to Workers, and
	// EM.Observer/EM.Metrics default to the pipeline's Observer/Metrics.
	EM medmodel.FitOptions
	// Observer, when non-nil, receives the pipeline's progress events:
	// StageStart/StageEnd around the model, reproduce, and detect stages, one
	// MonthFitted per month, one SeriesDone per series. Per-unit events
	// arrive in serial order (months ascending, series in job order) for any
	// Workers/ScanWorkers split, and deliveries are serialized. A panicking
	// Observer is recovered, recorded as a StageObserver failure, and
	// permanently muted; cancelling ctx stops delivery. Nil costs nothing.
	Observer obs.Observer
	// Metrics, when non-nil, collects the run's counters, histograms, and
	// stage timers (see the README's metrics table). The registry's
	// counter/gauge/histogram sections are deterministic for a given input
	// regardless of worker counts; only its timings vary. Nil costs nothing
	// on the fit path.
	Metrics *obs.Registry
	// Trace, when non-nil, receives the run's timed spans: one stage span per
	// pipeline stage, one em/month span per month, one detect/series span per
	// series (degraded series carry their failure stage), and the exact
	// scans' shard/refit spans. Wire obs.NewTracer().Observe here and write
	// the collected spans with Tracer.WriteTrace. Span content is
	// deterministic for a given input — only timestamps vary — and per-unit
	// spans arrive in serial order. Deliveries are panic-isolated like
	// Observer's (a panicking sink is muted and recorded as a StageObserver
	// failure) but are NOT stopped by cancellation, so an interrupted run
	// still flushes a valid partial trace. Nil costs nothing.
	Trace obs.SpanObserver
	// Explain collects decision provenance: Analysis.MonthProvenance records
	// each month's EM convergence (per-iteration log-likelihoods, fallback
	// events) and Analysis.SeriesProvenance each series' full AIC ladder and
	// selected model parameters (see changepoint.Provenance). Provenance
	// never changes any result; export it with WriteExplain. Off (the
	// default) the pipeline allocates none of it.
	Explain bool
	// Checkpoint, when non-nil, makes the model stage resumable: each month's
	// fitted state is loaded from the checkpointer when its DataHash matches
	// the current (filtered) month, and every freshly fitted month is saved
	// back before detection starts. The resulting Analysis is byte-identical
	// to an uncheckpointed run; only the fits skipped change. A SaveMonth
	// failure aborts the analysis — durable means durable. Nil (the default)
	// keeps the stage on its plain FitAll path.
	Checkpoint Checkpointer
}

// DefaultOptions mirrors the paper's setup.
func DefaultOptions() Options {
	return Options{
		Method:         MethodExact,
		Seasonal:       true,
		MinSeriesTotal: 10,
		MinMonthlyFreq: 5,
	}
}

func (o Options) withDefaults() Options {
	if o.MinSeriesTotal <= 0 {
		o.MinSeriesTotal = 10
	}
	if o.MinMonthlyFreq <= 0 {
		o.MinMonthlyFreq = 5
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.EM.Workers <= 0 {
		o.EM.Workers = o.Workers
	}
	return o
}

// FailureStage identifies where in the pipeline a recorded failure occurred.
type FailureStage int

// Failure stages.
const (
	// StageModel is a per-month EM fit failure; the month was degraded to
	// the cooccurrence fallback model.
	StageModel FailureStage = iota
	// StageValidate is a series rejected before detection (NaN/Inf values).
	StageValidate
	// StageDetect is a change point search that failed or panicked; the
	// series carries no detection.
	StageDetect
	// StageObserver is a user progress Observer that panicked; the pipeline
	// muted it and kept running, so the run lost events but no results.
	StageObserver
	// StageSurveil is an aggregate or drill-down change point scan inside
	// Surveil that failed or panicked; the hierarchy node (or child) carries
	// no detection but the surveillance run kept going.
	StageSurveil
)

// String names the stage.
func (s FailureStage) String() string {
	switch s {
	case StageModel:
		return "model"
	case StageValidate:
		return "validate"
	case StageObserver:
		return "observer"
	case StageSurveil:
		return "surveil"
	default:
		return "detect"
	}
}

// Failure is one recorded per-month or per-series degradation: the pipeline
// kept running, and this entry explains what was skipped or downgraded.
type Failure struct {
	// Stage is the pipeline stage that failed.
	Stage FailureStage
	// Kind, Disease, Medicine identify the series for StageValidate and
	// StageDetect failures (as in Detection, id validity depends on Kind).
	Kind     SeriesKind
	Disease  mic.DiseaseID
	Medicine mic.MedicineID
	// Node is the hierarchy node code for StageSurveil failures on aggregate
	// series ("" for leaf series).
	Node string
	// Month is the failed month for StageModel failures, -1 otherwise.
	Month int
	// Err is the failure message.
	Err string
	// Attempts is the number of optimization starts tried before the series
	// was declared failed (0 when unknown or not applicable).
	Attempts int
	// Panicked reports whether the failure was a recovered worker panic.
	Panicked bool
}

// String renders the failure for reports.
func (f Failure) String() string {
	var what string
	switch f.Stage {
	case StageModel:
		what = fmt.Sprintf("month %d", f.Month)
	case StageObserver:
		return fmt.Sprintf("%s: %s", f.Stage, f.Err)
	default:
		what = f.Key().String()
	}
	s := fmt.Sprintf("%s %s: %s", f.Stage, what, f.Err)
	if f.Attempts > 0 {
		s += fmt.Sprintf(" (after %d starts)", f.Attempts)
	}
	return s
}

// seriesKey identifies a job's series for failure reports and fault points.
//
// Deprecated: it remains as a shim over the typed key; use Detection.Key.
func seriesKey(det Detection) string { return det.Key().String() }

// Analysis is the full pipeline output.
type Analysis struct {
	// Models holds the fitted medication model per month. Months whose EM
	// fit failed carry the cooccurrence fallback model and a StageModel
	// failure entry.
	Models []*medmodel.Model
	// Series holds the reproduced (and reliability-filtered) time series.
	Series *medmodel.SeriesSet
	// Diseases, Medicines, Prescriptions hold one Detection per surviving
	// series, sorted by id for determinism. Series whose detection failed
	// are absent here and present in Failures.
	Diseases      []Detection
	Medicines     []Detection
	Prescriptions []Detection
	// Failures records every per-month and per-series degradation of the
	// run, sorted deterministically (stage, then month/ids).
	Failures []Failure
	// TotalFits counts model fits across all searches (Table V's cost).
	TotalFits int
	// MonthProvenance and SeriesProvenance hold the run's decision
	// provenance — one entry per month and per considered series — when
	// Options.Explain is set, nil otherwise. SeriesProvenance lists the
	// detection jobs in job order, then validation-rejected series. Export
	// them with WriteExplain.
	MonthProvenance  []MonthProvenance
	SeriesProvenance []SeriesProvenance
}

// pipelineInstruments carries Analyze's observability wiring: the guarded,
// context-gated observer, the metrics registry, and the observer failures
// recorded so far. A nil *pipelineInstruments (neither an Observer nor a
// Metrics registry configured) makes every method a no-op, keeping the
// disabled pipeline on its old code path.
type pipelineInstruments struct {
	deliver obs.Observer
	metrics *obs.Registry
	trace   obs.SpanObserver
	exact   bool // scan-cost counters only make sense for the exact scans

	mu        sync.Mutex
	obsFails  []Failure
	tripsBase int64
}

func newPipelineInstruments(ctx context.Context, opts Options) *pipelineInstruments {
	if opts.Observer == nil && opts.Metrics == nil && opts.Trace == nil {
		return nil
	}
	ins := &pipelineInstruments{
		metrics:   opts.Metrics,
		exact:     opts.Method != MethodBinary,
		tripsBase: faultpoint.Trips(),
	}
	guarded := obs.Guard(opts.Observer, func(r any) {
		ins.mu.Lock()
		ins.obsFails = append(ins.obsFails, Failure{
			Stage: StageObserver, Month: -1,
			Err: fmt.Sprintf("observer panicked: %v", r), Panicked: true,
		})
		ins.mu.Unlock()
	})
	if guarded != nil {
		ins.deliver = func(e obs.Event) {
			if ctx.Err() != nil {
				return // cancelled: stop delivery cleanly
			}
			guarded(e)
		}
	}
	// Spans are guarded like events but NOT ctx-gated: a cancelled run keeps
	// collecting the wind-down spans so the flushed trace stays coherent.
	ins.trace = obs.GuardSpans(opts.Trace, func(r any) {
		ins.mu.Lock()
		ins.obsFails = append(ins.obsFails, Failure{
			Stage: StageObserver, Month: -1,
			Err: fmt.Sprintf("trace observer panicked: %v", r), Panicked: true,
		})
		ins.mu.Unlock()
	})
	return ins
}

// span emits one span through the guarded trace sink; nil-safe.
func (ins *pipelineInstruments) span(sp obs.SpanEvent) {
	if ins == nil || ins.trace == nil {
		return
	}
	ins.trace(sp)
}

// stage opens one pipeline stage (emitting StageStart) and returns its
// closer, which records the stage timer and emits StageEnd with the stage's
// wall-clock and outcome.
func (ins *pipelineInstruments) stage(name string, total int) func(done int, err error) {
	if ins == nil {
		return func(int, error) {}
	}
	t0 := time.Now()
	if ins.deliver != nil {
		ins.deliver(obs.Event{Kind: obs.StageStart, Stage: name, Month: -1, Total: total})
	}
	return func(done int, err error) {
		d := time.Since(t0)
		ins.metrics.Timer("time/stage/" + name).Observe(d)
		if ins.trace != nil {
			sp := obs.SpanEvent{
				Cat: "stage", Name: "stage/" + name, TID: obs.LaneStage,
				Start: t0, Duration: d, Month: -1,
			}
			if err != nil {
				sp.Err = err.Error()
			}
			ins.trace(sp)
		}
		if ins.deliver != nil {
			e := obs.Event{
				Kind: obs.StageEnd, Stage: name, Month: -1,
				Total: total, Done: done, Duration: d,
			}
			if err != nil {
				e.Err = err.Error()
			}
			ins.deliver(e)
		}
	}
}

// seriesDone accounts one finished detection job. detectAll invokes it
// through a sequencer in job-index order, so the registry merges and the
// SeriesDone stream are deterministic for any worker split.
func (ins *pipelineInstruments) seriesDone(job Detection, res changepoint.Result, failErr string, cancelled bool, stats *ssm.FitStats, began time.Time, dur time.Duration, idx, total int) {
	if ins == nil || cancelled {
		return
	}
	if ins.trace != nil {
		sp := obs.SpanEvent{
			Cat: "detect", Name: "detect/series", TID: obs.LaneDetect,
			Start: began, Duration: dur, Month: -1, Series: seriesKey(job),
		}
		switch {
		case failErr != "":
			// Degraded series: the span carries the failure stage and message.
			sp.Err = failErr
			sp.Detail = "stage=" + StageDetect.String()
		case res.Detected():
			sp.Detail = "cp=" + strconv.Itoa(res.ChangePoint)
		default:
			sp.Detail = "cp=none"
		}
		ins.trace(sp)
	}
	if m := ins.metrics; m != nil {
		ins.addFitStats(stats)
		m.Counter("scan/series").Inc()
		if failErr == "" {
			m.Counter("scan/fits").Add(int64(res.Fits))
			if ins.exact {
				evals := changepoint.ScanEvaluations(len(job.Series))
				m.Counter("scan/candidates").Add(int64(evals))
				if refits := res.Fits - evals; refits > 0 {
					m.Counter("scan/warm_refits").Add(int64(refits))
				}
			}
		}
		m.Timer("time/scan/series").Observe(dur)
	}
	if ins.deliver != nil {
		ins.deliver(obs.Event{
			Kind: obs.SeriesDone, Stage: "detect", Series: seriesKey(job),
			Month: -1, Done: idx + 1, Total: total, Duration: dur, Err: failErr,
		})
	}
}

// addFitStats merges one scan's fit-stat counters into the registry; callers
// hold a non-nil metrics registry.
func (ins *pipelineInstruments) addFitStats(stats *ssm.FitStats) {
	if stats == nil {
		return
	}
	m := ins.metrics
	m.Counter("ssm/lik_evals").Add(stats.LikEvals.Load())
	m.Counter("ssm/starts").Add(stats.Starts.Load())
	m.Counter("ssm/restarts").Add(stats.Restarts.Load())
	m.Counter("ssm/fit_failures").Add(stats.FitFailures.Load())
	m.Counter("kalman/steady_hits").Add(stats.SteadyHits.Load())
	m.Counter("scan/prefix_resumes").Add(stats.PrefixResumes.Load())
}

// finish folds the run-level accounting into the analysis and registry:
// observer-panic failures, per-stage failure counters, and the run's
// fault-injection trip delta.
func (ins *pipelineInstruments) finish(analysis *Analysis) {
	if ins == nil {
		return
	}
	ins.mu.Lock()
	analysis.Failures = append(analysis.Failures, ins.obsFails...)
	ins.mu.Unlock()
	if m := ins.metrics; m != nil {
		m.Gauge("faultpoint/trips").Set(faultpoint.Trips() - ins.tripsBase)
		for _, f := range analysis.Failures {
			m.Counter("pipeline/failures/" + f.Stage.String()).Inc()
		}
		m.Counter("scan/total_fits").Add(int64(analysis.TotalFits))
	}
}

// Analyze runs the full two-stage pipeline.
//
// Failure semantics: the pipeline degrades instead of failing atomically. A
// month whose EM fit errors or panics falls back to the cooccurrence model;
// a series containing NaN/Inf is skipped before detection; a series whose
// change point search fails (after multi-start recovery) or panics loses
// only its own detection; a panicking progress Observer is muted. Every such
// event is recorded in Analysis.Failures. The error return is reserved for
// corpus-level problems (reproduction) and for ctx: when ctx is cancelled
// mid-scan, Analyze stops within one in-flight model fit and returns the
// detections completed so far alongside ctx's error.
func Analyze(ctx context.Context, ds *mic.Dataset, opts Options) (*Analysis, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts, ins := setupPipeline(ctx, opts)
	analysis, jobs, valFails, err := prepare(ctx, ds, opts, ins)
	if err != nil {
		return nil, err
	}
	endDetect := ins.stage("detect", len(jobs))
	results, detFails, seriesProvs, totalFits, derr := detectAll(ctx, jobs, opts, ins)
	endDetect(len(results), derr)
	analysis.Failures = append(analysis.Failures, detFails...)
	analysis.TotalFits = totalFits
	if opts.Explain {
		analysis.SeriesProvenance = seriesProvs
		analysis.SeriesProvenance = append(analysis.SeriesProvenance, valProvenance(valFails)...)
	}
	ins.finish(analysis)
	sortFailures(analysis.Failures)
	for _, det := range results {
		switch det.Kind {
		case KindDisease:
			analysis.Diseases = append(analysis.Diseases, det)
		case KindMedicine:
			analysis.Medicines = append(analysis.Medicines, det)
		default:
			analysis.Prescriptions = append(analysis.Prescriptions, det)
		}
	}
	if derr != nil {
		// Cancelled mid-scan: hand back the partial analysis with the error
		// so callers can report what completed.
		return analysis, derr
	}
	return analysis, nil
}

// setupPipeline applies the option defaults shared by Analyze and Surveil and
// builds their instrument set, wiring the EM stage's observer, metrics, and
// trace defaults to the pipeline's.
func setupPipeline(ctx context.Context, opts Options) (Options, *pipelineInstruments) {
	opts = opts.withDefaults()
	if opts.Explain {
		opts.EM.TraceConvergence = true
	}
	ins := newPipelineInstruments(ctx, opts)
	if ins != nil {
		if opts.EM.Observer == nil {
			opts.EM.Observer = ins.deliver
		}
		if opts.EM.Metrics == nil {
			opts.EM.Metrics = ins.metrics
		}
		if opts.EM.Trace == nil {
			opts.EM.Trace = ins.trace
		}
	}
	return opts, ins
}

// valProvenance builds the provenance entries for validation-rejected series;
// callers append them after the detection-job entries so the provenance list
// keeps its documented order.
func valProvenance(valFails []Failure) []SeriesProvenance {
	var provs []SeriesProvenance
	for _, f := range valFails {
		provs = append(provs, SeriesProvenance{
			Kind: f.Kind.String(), Disease: f.Disease, Medicine: f.Medicine,
			Key:     f.Key().String(),
			Failure: f.Err, FailureStage: StageValidate.String(),
		})
	}
	return provs
}

// prepare runs the shared front half of the pipeline — dataset filtering, the
// model stage (with cooccurrence fallbacks and month provenance), the
// reproduce stage, and series validation — exactly as Analyze always has, so
// Surveil's event stream, metrics, spans, and failure records match Analyze's
// on the stages they share. opts must already carry its defaults
// (setupPipeline). The returned jobs are the validated detection jobs; the
// validation failures are already appended to the analysis but their
// provenance entries are the caller's (Analyze lists detection jobs first).
func prepare(ctx context.Context, ds *mic.Dataset, opts Options, ins *pipelineInstruments) (*Analysis, []Detection, []Failure, error) {
	filtered := mic.FilterDataset(ds, mic.FilterOptions{MinMonthlyFreq: opts.MinMonthlyFreq})
	analysis := &Analysis{}
	endModel := ins.stage("model", len(filtered.Months))
	models, monthFails, err := fitModels(ctx, filtered, opts, ins)
	endModel(len(filtered.Months)-len(monthFails), err)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("trend: fitting medication models: %w", err)
	}
	for _, mf := range monthFails {
		models[mf.Month] = medmodel.FallbackModel(filtered.Months[mf.Month], filtered.Medicines.Len())
		analysis.Failures = append(analysis.Failures, Failure{
			Stage: StageModel, Month: mf.Month, Err: mf.Err.Error(), Panicked: mf.Panicked,
		})
	}
	if ins != nil && len(monthFails) > 0 {
		ins.metrics.Counter("em/fallbacks").Add(int64(len(monthFails)))
	}
	if opts.Explain {
		analysis.MonthProvenance = make([]MonthProvenance, len(models))
		for i, m := range models {
			mp := MonthProvenance{Month: i}
			if m != nil {
				mp.Iterations = m.Iterations
				mp.LogLik = m.LogLik
				mp.LogLikTrace = m.LogLikTrace
			}
			analysis.MonthProvenance[i] = mp
		}
		for _, mf := range monthFails {
			mp := &analysis.MonthProvenance[mf.Month]
			mp.Fallback = true
			mp.Err = mf.Err.Error()
			mp.Panicked = mf.Panicked
		}
	}
	endRepro := ins.stage("reproduce", -1)
	series, err := medmodel.ReproduceParallel(filtered, models, opts.Workers)
	if err != nil {
		endRepro(0, err)
		return nil, nil, nil, fmt.Errorf("trend: reproducing series: %w", err)
	}
	series = series.FilterMinTotal(opts.MinSeriesTotal)

	analysis.Models = models
	analysis.Series = series
	jobs, valFails := validateJobs(collectJobs(series))
	endRepro(len(jobs), nil)
	analysis.Failures = append(analysis.Failures, valFails...)
	for _, f := range valFails {
		// Zero-duration span per rejected series so degraded series appear in
		// the trace with their failure stage even though they never ran.
		ins.span(obs.SpanEvent{
			Cat: "detect", Name: "detect/series", TID: obs.LaneDetect,
			Start: time.Now(), Month: -1,
			Series: f.Key().String(),
			Detail: "stage=" + StageValidate.String(), Err: f.Err,
		})
	}
	return analysis, jobs, valFails, nil
}

// validateJobs rejects series the Kalman filter cannot digest (NaN or Inf
// values would poison every downstream covariance update), recording one
// failure per rejected series.
func validateJobs(jobs []Detection) (valid []Detection, failures []Failure) {
	valid = jobs[:0]
	for _, det := range jobs {
		if i, ok := firstNonFinite(det.Series); ok {
			failures = append(failures, Failure{
				Stage: StageValidate, Kind: det.Kind, Disease: det.Disease, Medicine: det.Medicine,
				Month: -1, Err: fmt.Sprintf("series value at month %d is %v", i, det.Series[i]),
			})
			continue
		}
		valid = append(valid, det)
	}
	return valid, failures
}

// firstNonFinite returns the index of the first NaN/Inf value of y.
func firstNonFinite(y []float64) (int, bool) {
	for i, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return i, true
		}
	}
	return 0, false
}

// sortFailures orders failures deterministically regardless of worker
// completion order: stage, then month, then series identity.
func sortFailures(fs []Failure) {
	sort.Slice(fs, func(a, b int) bool {
		if fs[a].Stage != fs[b].Stage {
			return fs[a].Stage < fs[b].Stage
		}
		if fs[a].Month != fs[b].Month {
			return fs[a].Month < fs[b].Month
		}
		if fs[a].Kind != fs[b].Kind {
			return fs[a].Kind < fs[b].Kind
		}
		if fs[a].Node != fs[b].Node {
			return fs[a].Node < fs[b].Node
		}
		if fs[a].Disease != fs[b].Disease {
			return fs[a].Disease < fs[b].Disease
		}
		return fs[a].Medicine < fs[b].Medicine
	})
}

// collectJobs enumerates every series to search, deterministically ordered.
func collectJobs(series *medmodel.SeriesSet) []Detection {
	var jobs []Detection
	diseases := series.Diseases()
	sort.Slice(diseases, func(a, b int) bool { return diseases[a] < diseases[b] })
	for _, d := range diseases {
		jobs = append(jobs, Detection{Kind: KindDisease, Disease: d, Series: series.Disease(d)})
	}
	meds := series.Medicines()
	sort.Slice(meds, func(a, b int) bool { return meds[a] < meds[b] })
	for _, m := range meds {
		jobs = append(jobs, Detection{Kind: KindMedicine, Medicine: m, Series: series.Medicine(m)})
	}
	pairs := make([]mic.Pair, 0, len(series.Pairs))
	for p := range series.Pairs {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].Disease != pairs[b].Disease {
			return pairs[a].Disease < pairs[b].Disease
		}
		return pairs[a].Medicine < pairs[b].Medicine
	})
	for _, p := range pairs {
		jobs = append(jobs, Detection{
			Kind: KindPrescription, Disease: p.Disease, Medicine: p.Medicine,
			Series: series.Pair(p),
		})
	}
	return jobs
}

// shardJobs partitions job indices into shards: disease- and prescription-
// kind series shard by disease id, medicine-kind by medicine id, so every
// series of one disease (and its pairs) lands in one shard. Within a shard,
// indices stay in global job order.
func shardJobs(jobs []Detection, shards int) [][]int {
	if shards <= 1 {
		all := make([]int, len(jobs))
		for i := range jobs {
			all[i] = i
		}
		return [][]int{all}
	}
	lists := make([][]int, shards)
	for i, job := range jobs {
		var s int
		if job.Kind == KindMedicine {
			s = int(job.Medicine) % shards
		} else {
			s = int(job.Disease) % shards
		}
		lists[s] = append(lists[s], i)
	}
	return lists
}

// detectAll runs change point detection over the jobs with a two-level
// worker budget: a shared pool of Options.Workers tokens admits series
// (level one), and each admitted exact scan opportunistically claims idle
// tokens to shard its own candidate set (level two, see workerBudget). A
// wide batch behaves like the old flat pool; a narrow batch or a draining
// tail moves the idle tokens into intra-series scan parallelism.
//
// The pool is fault-tolerant and cancellable: a worker panic or a failed
// search is confined to its series (recorded as a Failure), and cancelling
// ctx stops dispatch immediately — in-flight searches abort within one model
// fit — returning the detections completed so far with ctx's error. Results
// are independent per series and assembled by job index, and the scan
// itself is worker-count-invariant, so detections are deterministic under
// any Workers/ScanWorkers split and byte-identical for the surviving series
// whether or not other series failed.
func detectAll(ctx context.Context, jobs []Detection, opts Options, ins *pipelineInstruments) ([]Detection, []Failure, []SeriesProvenance, int, error) {
	type outcome struct {
		i         int
		det       Detection
		fail      *Failure
		cancelled bool
		stats     *ssm.FitStats
		prov      *changepoint.Provenance
		began     time.Time
		dur       time.Duration
	}
	var trace obs.SpanObserver
	if ins != nil {
		trace = ins.trace
	}
	budget := newWorkerBudget(opts.Workers)
	out := make(chan outcome)
	run := func(i int, wg *sync.WaitGroup) {
		defer wg.Done()
		defer budget.release(1)
		if ctx.Err() != nil {
			out <- outcome{i: i, cancelled: true}
			return
		}
		o := outcome{i: i}
		if ins != nil {
			if ins.metrics != nil {
				o.stats = &ssm.FitStats{}
			}
			o.began = time.Now()
			o.det, o.fail, o.cancelled, o.prov = runDetection(ctx, jobs[i], opts, budget, o.stats, trace)
			o.dur = time.Since(o.began)
		} else {
			o.det, o.fail, o.cancelled, o.prov = runDetection(ctx, jobs[i], opts, budget, nil, nil)
		}
		out <- o
	}
	// Partition the series universe into shards — by disease for disease-
	// and prescription-kind series, by medicine for medicine-kind ones — and
	// give each shard its own dispatcher over the shared budget. Outcomes
	// carry their global job index, so assembly below is shard-agnostic and
	// the analysis is byte-identical for any Shards value.
	shardLists := shardJobs(jobs, opts.Shards)
	go func() {
		var dwg, wg sync.WaitGroup
		defer func() {
			dwg.Wait()
			wg.Wait()
			close(out)
		}()
		for _, list := range shardLists {
			dwg.Add(1)
			go func(list []int) {
				defer dwg.Done()
				for _, i := range list {
					if budget.acquire(ctx) != nil {
						return
					}
					wg.Add(1)
					go run(i, &wg)
				}
			}(list)
		}
	}()

	dets := make([]Detection, len(jobs))
	done := make([]bool, len(jobs))
	var scanProvs []*changepoint.Provenance
	var failAt []*Failure
	if opts.Explain {
		scanProvs = make([]*changepoint.Provenance, len(jobs))
		failAt = make([]*Failure, len(jobs))
	}
	var failures []Failure
	totalFits := 0
	var seq *obs.Sequencer
	if ins != nil {
		seq = obs.NewSequencer()
	}
	for o := range out {
		switch {
		case o.cancelled:
		case o.fail != nil:
			failures = append(failures, *o.fail)
		default:
			dets[o.i] = o.det
			done[o.i] = true
			totalFits += o.det.Result.Fits
		}
		if opts.Explain && !o.cancelled {
			scanProvs[o.i] = o.prov
			failAt[o.i] = o.fail
		}
		if seq != nil {
			o := o
			seq.Done(o.i, func() {
				failErr := ""
				if o.fail != nil {
					failErr = o.fail.Err
				}
				ins.seriesDone(jobs[o.i], o.det.Result, failErr, o.cancelled, o.stats, o.began, o.dur, o.i, len(jobs))
			})
		}
	}
	results := make([]Detection, 0, len(jobs))
	for i, ok := range done {
		if ok {
			results = append(results, dets[i])
		}
	}
	// Assemble the per-series provenance in job order. Cancelled jobs (no
	// outcome, or an unprocessed one) get no entry; failed jobs keep their
	// partial ladder alongside the failure link.
	var provs []SeriesProvenance
	if opts.Explain {
		for i, job := range jobs {
			f := failAt[i]
			if !done[i] && f == nil {
				continue
			}
			sp := SeriesProvenance{
				Kind: job.Kind.String(), Disease: job.Disease, Medicine: job.Medicine,
				Key: seriesKey(job), Scan: scanProvs[i],
			}
			if f != nil {
				sp.Failure = f.Err
				sp.FailureStage = f.Stage.String()
			}
			provs = append(provs, sp)
		}
	}
	return results, failures, provs, totalFits, ctx.Err()
}

// runDetection searches one series with panic isolation: a crash anywhere in
// the model fitting stack fails this series only (the parallel scan
// re-panics shard crashes on this goroutine, so the recover here covers
// them too). The cancelled return distinguishes a context abort (not a
// series failure) from a genuine one. budget supplies the scan's level-two
// extra workers; nil runs the scan serially. trace receives the scan's
// shard/refit spans; prov is the series' decision provenance (non-nil only
// under Options.Explain, and kept — possibly partial — on failure).
func runDetection(ctx context.Context, job Detection, opts Options, budget *workerBudget, stats *ssm.FitStats, trace obs.SpanObserver) (det Detection, fail *Failure, cancelled bool, prov *changepoint.Provenance) {
	det = job
	res, fail, cancelled, prov := runScan(ctx, job.Key(), StageDetect, "trend/detect", job.Series, opts, budget, stats, trace)
	if fail == nil && !cancelled {
		det.Result = res
	}
	return det, fail, cancelled, prov
}

// runScan searches one series — leaf or aggregate — with the panic isolation,
// fault-point, cancellation, and level-two budget semantics documented on
// runDetection. key identifies the series in failure records and fault-point
// matches; stage tags the failure (StageDetect for pipeline jobs,
// StageSurveil for hierarchy scans) and site names the fault point.
func runScan(ctx context.Context, key SeriesKey, stage FailureStage, site string, series []float64, opts Options, budget *workerBudget, stats *ssm.FitStats, trace obs.SpanObserver) (res changepoint.Result, fail *Failure, cancelled bool, prov *changepoint.Provenance) {
	defer func() {
		if r := recover(); r != nil {
			res = changepoint.Result{}
			fail = scanFailure(key, stage, fmt.Errorf("panic: %v", r))
			fail.Panicked = true
			cancelled = false
		}
	}()
	if opts.Explain {
		prov = &changepoint.Provenance{}
	}
	if err := faultpoint.Inject(site, key.String()); err != nil {
		return res, scanFailure(key, stage, err), false, prov
	}
	dopts := changepoint.DetectOptions{
		Seasonal: opts.Seasonal, Stats: stats, Provenance: prov, Trace: trace,
	}
	if opts.Method == MethodBinary {
		dopts.Method = changepoint.SearchBinary
	} else {
		// Level two of the worker budget: claim idle tokens (beyond this
		// series' own) for the scan's contender workers, returning them as
		// soon as the scan finishes. The scan's result does not depend on
		// how many we get.
		dopts.Method = changepoint.SearchExactPrefix
		dopts.Workers = 1
		if budget != nil {
			target := opts.ScanWorkers
			if target <= 0 {
				target = opts.Workers
			}
			if extra := budget.tryAcquire(target - 1); extra > 0 {
				defer budget.release(extra)
				dopts.Workers += extra
			}
		}
	}
	res, err := changepoint.Detect(ctx, series, dopts)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return changepoint.Result{}, nil, true, prov
		}
		return changepoint.Result{}, scanFailure(key, stage, err), false, prov
	}
	return res, nil, false, prov
}

// scanFailure builds the failure record for a series scan, extracting the
// multi-start attempt count when the fit stack provides one.
func scanFailure(key SeriesKey, stage FailureStage, err error) *Failure {
	f := &Failure{
		Stage: stage, Kind: key.Kind, Disease: key.Disease, Medicine: key.Medicine, Node: key.Node,
		Month: -1, Err: err.Error(),
	}
	var oe *ssm.OptimizationError
	if errors.As(err, &oe) {
		f.Attempts = oe.Attempts
	}
	return f
}

// DetectedChangePoints returns the subset of detections with a change point,
// most confident (largest AIC improvement) first.
func DetectedChangePoints(dets []Detection) []Detection {
	var out []Detection
	for _, d := range dets {
		if d.Result.Detected() {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		ia := out[a].Result.NoChangeAIC - out[a].Result.AIC
		ib := out[b].Result.NoChangeAIC - out[b].Result.AIC
		return ia > ib
	})
	return out
}

// Cause categorizes a prescription-level trend change per the paper's
// §III-B taxonomy.
type Cause int

// Causes of a prescription trend change.
const (
	CauseNone         Cause = iota // no change detected
	CauseDisease                   // the disease series broke at the same time
	CauseMedicine                  // the medicine series broke at the same time
	CausePrescription              // only the pair broke: interaction effect
)

// String names the cause.
func (c Cause) String() string {
	switch c {
	case CauseDisease:
		return "disease-derived"
	case CauseMedicine:
		return "medicine-derived"
	case CausePrescription:
		return "prescription-derived"
	default:
		return "none"
	}
}

// ClassifyChanges attributes each detected prescription change to its cause
// by checking whether the corresponding disease or medicine series broke
// within tolerance months of the pair's change point. Disease attribution
// wins ties (a disease-wide epidemic shift explains all its pairs).
func ClassifyChanges(a *Analysis, tolerance int) map[mic.Pair]Cause {
	diseaseCP := make(map[mic.DiseaseID]int)
	for _, d := range a.Diseases {
		if d.Result.Detected() {
			diseaseCP[d.Disease] = d.Result.ChangePoint
		}
	}
	medicineCP := make(map[mic.MedicineID]int)
	for _, d := range a.Medicines {
		if d.Result.Detected() {
			medicineCP[d.Medicine] = d.Result.ChangePoint
		}
	}
	out := make(map[mic.Pair]Cause)
	for _, det := range a.Prescriptions {
		pair := mic.Pair{Disease: det.Disease, Medicine: det.Medicine}
		if !det.Result.Detected() {
			out[pair] = CauseNone
			continue
		}
		cp := det.Result.ChangePoint
		if dcp, ok := diseaseCP[det.Disease]; ok && abs(dcp-cp) <= tolerance {
			out[pair] = CauseDisease
			continue
		}
		if mcp, ok := medicineCP[det.Medicine]; ok && abs(mcp-cp) <= tolerance {
			out[pair] = CauseMedicine
			continue
		}
		out[pair] = CausePrescription
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
