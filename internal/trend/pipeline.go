// Package trend wires the two stages of the paper into an end-to-end
// pipeline (Fig. 1): fit the probabilistic medication model to every monthly
// MIC dataset, reproduce the disease/medicine/prescription time series
// (Eqs. 7–8), filter unreliable series (§VI), run AIC change point detection
// over every series with a worker pool, and classify each detected
// prescription-level change as disease-, medicine-, or prescription-derived
// (§III-B).
package trend

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"mictrend/internal/changepoint"
	"mictrend/internal/medmodel"
	"mictrend/internal/mic"
)

// Method selects the change point search algorithm.
type Method int

// Search methods.
const (
	MethodExact  Method = iota // Algorithm 1
	MethodBinary               // Algorithm 2
)

// String names the method.
func (m Method) String() string {
	if m == MethodExact {
		return "exact"
	}
	return "binary"
}

// SeriesKind distinguishes the three series families of the paper.
type SeriesKind int

// Series kinds.
const (
	KindDisease SeriesKind = iota
	KindMedicine
	KindPrescription
)

// String names the kind.
func (k SeriesKind) String() string {
	switch k {
	case KindDisease:
		return "disease"
	case KindMedicine:
		return "medicine"
	default:
		return "prescription"
	}
}

// Detection is one series' change point search outcome.
type Detection struct {
	Kind     SeriesKind
	Disease  mic.DiseaseID  // valid for KindDisease and KindPrescription
	Medicine mic.MedicineID // valid for KindMedicine and KindPrescription
	Series   []float64
	Result   changepoint.Result
}

// Options configures the pipeline.
type Options struct {
	// Method is the change point search algorithm (default exact).
	Method Method
	// Seasonal enables the seasonal component in the fitted models
	// (default true via DefaultOptions).
	Seasonal bool
	// MinSeriesTotal drops series whose total frequency is below this
	// threshold before fitting (the paper uses 10).
	MinSeriesTotal float64
	// MinMonthlyFreq drops rare diseases/medicines per month before EM (the
	// paper uses 5).
	MinMonthlyFreq int
	// Workers bounds the pipeline's concurrency (default GOMAXPROCS): the
	// change point detection pool, and — unless EM.Workers overrides it —
	// the per-month medication model fits.
	Workers int
	// EM tunes the medication model fit. EM.Workers defaults to Workers.
	EM medmodel.FitOptions
}

// DefaultOptions mirrors the paper's setup.
func DefaultOptions() Options {
	return Options{
		Method:         MethodExact,
		Seasonal:       true,
		MinSeriesTotal: 10,
		MinMonthlyFreq: 5,
	}
}

func (o Options) withDefaults() Options {
	if o.MinSeriesTotal <= 0 {
		o.MinSeriesTotal = 10
	}
	if o.MinMonthlyFreq <= 0 {
		o.MinMonthlyFreq = 5
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.EM.Workers <= 0 {
		o.EM.Workers = o.Workers
	}
	return o
}

// Analysis is the full pipeline output.
type Analysis struct {
	// Models holds the fitted medication model per month.
	Models []*medmodel.Model
	// Series holds the reproduced (and reliability-filtered) time series.
	Series *medmodel.SeriesSet
	// Diseases, Medicines, Prescriptions hold one Detection per surviving
	// series, sorted by id for determinism.
	Diseases      []Detection
	Medicines     []Detection
	Prescriptions []Detection
	// TotalFits counts model fits across all searches (Table V's cost).
	TotalFits int
}

// Analyze runs the full two-stage pipeline.
func Analyze(ds *mic.Dataset, opts Options) (*Analysis, error) {
	opts = opts.withDefaults()
	filtered := mic.FilterDataset(ds, mic.FilterOptions{MinMonthlyFreq: opts.MinMonthlyFreq})
	models, err := medmodel.FitAll(filtered, opts.EM)
	if err != nil {
		return nil, fmt.Errorf("trend: fitting medication models: %w", err)
	}
	series, err := medmodel.Reproduce(filtered, models)
	if err != nil {
		return nil, fmt.Errorf("trend: reproducing series: %w", err)
	}
	series = series.FilterMinTotal(opts.MinSeriesTotal)

	analysis := &Analysis{Models: models, Series: series}
	jobs := collectJobs(series)
	results, totalFits, err := detectAll(jobs, opts)
	if err != nil {
		return nil, err
	}
	analysis.TotalFits = totalFits
	for _, det := range results {
		switch det.Kind {
		case KindDisease:
			analysis.Diseases = append(analysis.Diseases, det)
		case KindMedicine:
			analysis.Medicines = append(analysis.Medicines, det)
		default:
			analysis.Prescriptions = append(analysis.Prescriptions, det)
		}
	}
	return analysis, nil
}

// collectJobs enumerates every series to search, deterministically ordered.
func collectJobs(series *medmodel.SeriesSet) []Detection {
	var jobs []Detection
	diseases := series.Diseases()
	sort.Slice(diseases, func(a, b int) bool { return diseases[a] < diseases[b] })
	for _, d := range diseases {
		jobs = append(jobs, Detection{Kind: KindDisease, Disease: d, Series: series.Disease(d)})
	}
	meds := series.Medicines()
	sort.Slice(meds, func(a, b int) bool { return meds[a] < meds[b] })
	for _, m := range meds {
		jobs = append(jobs, Detection{Kind: KindMedicine, Medicine: m, Series: series.Medicine(m)})
	}
	pairs := make([]mic.Pair, 0, len(series.Pairs))
	for p := range series.Pairs {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].Disease != pairs[b].Disease {
			return pairs[a].Disease < pairs[b].Disease
		}
		return pairs[a].Medicine < pairs[b].Medicine
	})
	for _, p := range pairs {
		jobs = append(jobs, Detection{
			Kind: KindPrescription, Disease: p.Disease, Medicine: p.Medicine,
			Series: series.Pair(p),
		})
	}
	return jobs
}

// detectAll runs change point detection over the jobs with a worker pool.
func detectAll(jobs []Detection, opts Options) ([]Detection, int, error) {
	type indexed struct {
		i   int
		det Detection
		err error
	}
	in := make(chan int)
	out := make(chan indexed)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range in {
				det := jobs[i]
				var res changepoint.Result
				var err error
				if opts.Method == MethodExact {
					res, err = changepoint.DetectExact(det.Series, opts.Seasonal)
				} else {
					res, err = changepoint.DetectBinary(det.Series, opts.Seasonal)
				}
				det.Result = res
				out <- indexed{i: i, det: det, err: err}
			}
		}()
	}
	go func() {
		for i := range jobs {
			in <- i
		}
		close(in)
		wg.Wait()
		close(out)
	}()

	results := make([]Detection, len(jobs))
	var firstErr error
	totalFits := 0
	for r := range out {
		if r.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("trend: detecting %s series: %w", r.det.Kind, r.err)
		}
		results[r.i] = r.det
		totalFits += r.det.Result.Fits
	}
	if firstErr != nil {
		return nil, 0, firstErr
	}
	return results, totalFits, nil
}

// DetectedChangePoints returns the subset of detections with a change point,
// most confident (largest AIC improvement) first.
func DetectedChangePoints(dets []Detection) []Detection {
	var out []Detection
	for _, d := range dets {
		if d.Result.Detected() {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		ia := out[a].Result.NoChangeAIC - out[a].Result.AIC
		ib := out[b].Result.NoChangeAIC - out[b].Result.AIC
		return ia > ib
	})
	return out
}

// Cause categorizes a prescription-level trend change per the paper's
// §III-B taxonomy.
type Cause int

// Causes of a prescription trend change.
const (
	CauseNone         Cause = iota // no change detected
	CauseDisease                   // the disease series broke at the same time
	CauseMedicine                  // the medicine series broke at the same time
	CausePrescription              // only the pair broke: interaction effect
)

// String names the cause.
func (c Cause) String() string {
	switch c {
	case CauseDisease:
		return "disease-derived"
	case CauseMedicine:
		return "medicine-derived"
	case CausePrescription:
		return "prescription-derived"
	default:
		return "none"
	}
}

// ClassifyChanges attributes each detected prescription change to its cause
// by checking whether the corresponding disease or medicine series broke
// within tolerance months of the pair's change point. Disease attribution
// wins ties (a disease-wide epidemic shift explains all its pairs).
func ClassifyChanges(a *Analysis, tolerance int) map[mic.Pair]Cause {
	diseaseCP := make(map[mic.DiseaseID]int)
	for _, d := range a.Diseases {
		if d.Result.Detected() {
			diseaseCP[d.Disease] = d.Result.ChangePoint
		}
	}
	medicineCP := make(map[mic.MedicineID]int)
	for _, d := range a.Medicines {
		if d.Result.Detected() {
			medicineCP[d.Medicine] = d.Result.ChangePoint
		}
	}
	out := make(map[mic.Pair]Cause)
	for _, det := range a.Prescriptions {
		pair := mic.Pair{Disease: det.Disease, Medicine: det.Medicine}
		if !det.Result.Detected() {
			out[pair] = CauseNone
			continue
		}
		cp := det.Result.ChangePoint
		if dcp, ok := diseaseCP[det.Disease]; ok && abs(dcp-cp) <= tolerance {
			out[pair] = CauseDisease
			continue
		}
		if mcp, ok := medicineCP[det.Medicine]; ok && abs(mcp-cp) <= tolerance {
			out[pair] = CauseMedicine
			continue
		}
		out[pair] = CausePrescription
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
