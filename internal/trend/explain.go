// Decision provenance export: when Options.Explain is set, Analyze records
// why each change point was (or was not) selected — the full AIC ladder per
// series, the selected model's parameters, and each month's EM convergence —
// and WriteExplain serializes those records as reviewable JSON artifacts
// alongside a run manifest.
package trend

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mictrend/internal/changepoint"
	"mictrend/internal/mic"
)

// MonthProvenance records one month's EM fit: the convergence trajectory
// (one log-likelihood per iteration when tracing was on) and, for degraded
// months, the fallback event that replaced the fit with the cooccurrence
// model.
type MonthProvenance struct {
	Month       int       `json:"month"`
	Iterations  int       `json:"iterations"`
	LogLik      float64   `json:"loglik"`
	LogLikTrace []float64 `json:"loglik_trace,omitempty"`
	Fallback    bool      `json:"fallback,omitempty"`
	Err         string    `json:"error,omitempty"`
	Panicked    bool      `json:"panicked,omitempty"`
}

// SeriesProvenance records one series' detection decision: the scan's full
// AIC ladder and selected parameters (Scan), or — for degraded series — the
// failure message and stage cross-linking the matching Analysis.Failures
// entry. A failed scan may carry a partial ladder alongside its failure.
type SeriesProvenance struct {
	Kind         string                  `json:"kind"`
	Disease      mic.DiseaseID           `json:"disease,omitempty"`
	Medicine     mic.MedicineID          `json:"medicine,omitempty"`
	Key          string                  `json:"key"`
	Scan         *changepoint.Provenance `json:"scan,omitempty"`
	Failure      string                  `json:"failure,omitempty"`
	FailureStage string                  `json:"failure_stage,omitempty"`
}

// Manifest summarizes one run for the explain artifacts: the options that
// shaped it, the corpus dimensions, and the outcome counts. BuildManifest
// fills everything derivable from the analysis; Version, Seed, Records, and
// Interrupted are the caller's (they describe the invocation, not the
// result).
type Manifest struct {
	Version        string  `json:"version,omitempty"`
	Seed           uint64  `json:"seed,omitempty"`
	Method         string  `json:"method"`
	Seasonal       bool    `json:"seasonal"`
	MinSeriesTotal float64 `json:"min_series_total"`
	MinMonthlyFreq int     `json:"min_monthly_freq"`
	Records        int     `json:"records,omitempty"`
	Months         int     `json:"months"`
	Series         int     `json:"series"`
	Detections     int     `json:"detections"`
	Failures       int     `json:"failures"`
	Interrupted    bool    `json:"interrupted,omitempty"`
}

// BuildManifest derives a run's manifest from its options and analysis.
// Series counts every considered series (including degraded ones) when the
// run collected provenance, surviving detections otherwise.
func BuildManifest(opts Options, a *Analysis) Manifest {
	opts = opts.withDefaults()
	man := Manifest{
		Method:         opts.Method.String(),
		Seasonal:       opts.Seasonal,
		MinSeriesTotal: opts.MinSeriesTotal,
		MinMonthlyFreq: opts.MinMonthlyFreq,
		Months:         len(a.Models),
		Failures:       len(a.Failures),
	}
	for _, dets := range [][]Detection{a.Diseases, a.Medicines, a.Prescriptions} {
		man.Series += len(dets)
		for _, d := range dets {
			if d.Result.Detected() {
				man.Detections++
			}
		}
	}
	if len(a.SeriesProvenance) > man.Series {
		man.Series = len(a.SeriesProvenance)
	}
	return man
}

// WriteExplain writes the run's provenance artifacts under dir:
// manifest.json, months.json (one MonthProvenance per month), and
// series/<key>.json (one SeriesProvenance per considered series, with ":"
// and "/" in keys mapped to "_"). Run Analyze with Options.Explain first;
// an analysis without provenance still writes its manifest and an empty
// months.json, so an interrupted run flushes whatever it has.
func WriteExplain(dir string, a *Analysis, man Manifest) error {
	if err := os.MkdirAll(filepath.Join(dir, "series"), 0o755); err != nil {
		return fmt.Errorf("trend: explain dir: %w", err)
	}
	if err := writeJSON(filepath.Join(dir, "manifest.json"), man); err != nil {
		return err
	}
	months := a.MonthProvenance
	if months == nil {
		months = []MonthProvenance{}
	}
	if err := writeJSON(filepath.Join(dir, "months.json"), months); err != nil {
		return err
	}
	for i := range a.SeriesProvenance {
		sp := &a.SeriesProvenance[i]
		path := filepath.Join(dir, "series", sanitizeKey(sp.Key)+".json")
		if err := writeJSON(path, sp); err != nil {
			return err
		}
	}
	return nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("trend: encoding %s: %w", filepath.Base(path), err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("trend: %w", err)
	}
	return nil
}

// sanitizeKey maps a series key to a filesystem-safe artifact name.
func sanitizeKey(key string) string {
	return strings.NewReplacer(":", "_", "/", "_").Replace(key)
}
