package experiments

import (
	"io"

	"mictrend/internal/apps"
	"mictrend/internal/mic"
	"mictrend/internal/micgen"
	"mictrend/internal/report"
)

// TableIIRow is one ranked disease for one hospital class.
type TableIIRow struct {
	DiseaseCode string
	DiseaseName string
	Ratio       float64 // percent of the antibiotic's prescriptions
}

// TableIIResult reproduces Table II: the top-K diseases for which the
// antibiotic is prescribed at small, medium, and large hospitals.
type TableIIResult struct {
	Classes map[mic.HospitalClass][]TableIIRow
	// ViralShare sums the ratio of virus-caused diseases (cold, influenza)
	// per class — the paper's key observation is that this share is largest
	// at small hospitals.
	ViralShare map[mic.HospitalClass]float64
}

// RunTableII reproduces the paper's Table II on the environment corpus.
func RunTableII(env *Env, k int) (*TableIIResult, error) {
	abx, err := env.MedicineID(micgen.MedicineAntibiotic)
	if err != nil {
		return nil, err
	}
	gap, err := apps.PrescriptionGapByClass(env.Filtered, abx, k, env.Config.EM)
	if err != nil {
		return nil, err
	}
	res := &TableIIResult{
		Classes:    make(map[mic.HospitalClass][]TableIIRow),
		ViralShare: make(map[mic.HospitalClass]float64),
	}
	for class, shares := range gap {
		for _, s := range shares {
			code := env.Data.Diseases.Code(int32(s.Disease))
			name := code
			if d, ok := env.Truth.Catalog.DiseaseByCode(code); ok {
				name = d.Name
			}
			res.Classes[class] = append(res.Classes[class], TableIIRow{
				DiseaseCode: code, DiseaseName: name, Ratio: s.Ratio,
			})
			if code == micgen.DiseaseCommonCold || code == micgen.DiseaseInfluenza {
				res.ViralShare[class] += s.Ratio
			}
		}
	}
	return res, nil
}

// Render prints the three class rankings like the paper's Table II.
func (r *TableIIResult) Render(w io.Writer) {
	for class := mic.SmallHospital; class <= mic.LargeHospital; class++ {
		t := &report.Table{
			Title:   "Table II(" + string('a'+rune(class)) + "): top diseases for the antibiotic at " + class.String() + " hospitals",
			Headers: []string{"disease", "ratio (%)"},
		}
		for _, row := range r.Classes[class] {
			t.AddRow(row.DiseaseName, row.Ratio)
		}
		t.Render(w)
		io.WriteString(w, "viral-cause share: "+report.FormatFloat(r.ViralShare[class])+"%\n\n")
	}
}
