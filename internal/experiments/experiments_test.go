package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mictrend/internal/mic"
	"mictrend/internal/stat"
	"mictrend/internal/trend"
)

// sharedEnv caches one small environment across the package tests (building
// it involves corpus generation plus EM fits).
var sharedEnv *Env

func testEnv(t *testing.T) *Env {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment tests are heavy")
	}
	if sharedEnv == nil {
		cfg := SmallConfig()
		env, err := NewEnv(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sharedEnv = env
	}
	return sharedEnv
}

func TestEnvBasics(t *testing.T) {
	env := testEnv(t)
	if env.Data.T() != env.Config.Months {
		t.Fatalf("months = %d", env.Data.T())
	}
	if _, err := env.DiseaseID("nope"); err == nil {
		t.Fatal("unknown disease accepted")
	}
	if _, err := env.MedicineID("nope"); err == nil {
		t.Fatal("unknown medicine accepted")
	}
	models, coocs, err := env.Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != env.Config.Months || len(coocs) != env.Config.Months {
		t.Fatal("model counts wrong")
	}
	proposed, cooc, err := env.Series()
	if err != nil {
		t.Fatal(err)
	}
	if len(proposed.Pairs) == 0 || len(cooc.Pairs) == 0 {
		t.Fatal("no reproduced series")
	}
}

func TestSampleSeriesRespectsCap(t *testing.T) {
	env := testEnv(t)
	series, err := env.SampleSeries()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[trend.SeriesKind]int{}
	for _, s := range series {
		counts[s.Kind]++
		if len(s.Values) != env.Config.Months {
			t.Fatal("series length wrong")
		}
	}
	for kind, n := range counts {
		if n > env.Config.MaxSeriesPerKind {
			t.Fatalf("%v series = %d exceeds cap %d", kind, n, env.Config.MaxSeriesPerKind)
		}
		if n == 0 {
			t.Fatalf("no %v series", kind)
		}
	}
}

func TestTableII(t *testing.T) {
	env := testEnv(t)
	res, err := RunTableII(env, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes[mic.SmallHospital]) == 0 {
		t.Fatal("small-hospital ranking empty")
	}
	// The paper's core finding: viral share largest at small hospitals.
	if res.ViralShare[mic.SmallHospital] <= res.ViralShare[mic.LargeHospital] {
		t.Fatalf("viral share small %v <= large %v",
			res.ViralShare[mic.SmallHospital], res.ViralShare[mic.LargeHospital])
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "small hospitals") {
		t.Fatal("render missing class title")
	}
}

func TestTableIII(t *testing.T) {
	env := testEnv(t)
	res, err := RunTableIII(env)
	if err != nil {
		t.Fatal(err)
	}
	mU := stat.Mean(res.PerplexityUnigram)
	mC := stat.Mean(res.PerplexityCooc)
	mP := stat.Mean(res.PerplexityProposed)
	// The paper's ordering: Unigram ≫ Cooccurrence > Proposed.
	if !(mU > mC && mC > mP) {
		t.Fatalf("perplexity ordering violated: U=%v C=%v P=%v", mU, mC, mP)
	}
	// Relevance: proposed beats cooccurrence on both measures.
	if stat.Mean(res.APProposed) <= stat.Mean(res.APCooc) {
		t.Fatalf("AP: proposed %v <= cooc %v", stat.Mean(res.APProposed), stat.Mean(res.APCooc))
	}
	if stat.Mean(res.NDCGProposed) <= stat.Mean(res.NDCGCooc) {
		t.Fatalf("NDCG: proposed %v <= cooc %v", stat.Mean(res.NDCGProposed), stat.Mean(res.NDCGCooc))
	}
	// Perplexity difference should be significant (proposed lower → t < 0).
	if res.PerplexityTest.T >= 0 {
		t.Fatalf("perplexity t = %v, want negative", res.PerplexityTest.T)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Proposed") {
		t.Fatal("render missing model rows")
	}
}

func TestTableIV(t *testing.T) {
	env := testEnv(t)
	res, err := RunTableIV(env)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if len(res.AICs[ModelLL][k]) == 0 {
			t.Fatalf("kind %d has no AICs", k)
		}
		mLL := stat.Mean(res.AICs[ModelLL][k])
		mLLS := stat.Mean(res.AICs[ModelLLS][k])
		mLLI := stat.Mean(res.AICs[ModelLLI][k])
		mFull := stat.Mean(res.AICs[ModelLLSI][k])
		// Paper orderings: LL worst; adding either component helps; the full
		// model beats LL+S.
		if mLLS >= mLL {
			t.Errorf("kind %d: LL+S (%v) should beat LL (%v)", k, mLLS, mLL)
		}
		if mLLI > mLL {
			t.Errorf("kind %d: LL+I (%v) should not be worse than LL (%v)", k, mLLI, mLL)
		}
		if mFull >= mLLS {
			t.Errorf("kind %d: full (%v) should beat LL+S (%v)", k, mFull, mLLS)
		}
		if res.DetectionRate[k] < 0 || res.DetectionRate[k] > 1 {
			t.Fatalf("detection rate out of range")
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "ARIMA") {
		t.Fatal("render missing ARIMA row")
	}
}

func TestTableV(t *testing.T) {
	env := testEnv(t)
	res, err := RunTableV(env)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if res.Counts[k] == 0 {
			continue
		}
		if res.Exact[k] <= res.Approx[k] {
			t.Errorf("kind %d: exact (%v) should cost more than approx (%v)", k, res.Exact[k], res.Approx[k])
		}
		// Fit-count shape: exact ≈ T+1 fits; approximate far fewer.
		if math.Abs(res.ExactFits[k]-float64(env.Config.Months-1)) > 0.5 {
			t.Errorf("kind %d: exact fits = %v, want %d", k, res.ExactFits[k], env.Config.Months-1)
		}
		if res.ApproxFits[k] >= res.ExactFits[k]/2 {
			t.Errorf("kind %d: approx fits = %v, not far below exact %v", k, res.ApproxFits[k], res.ExactFits[k])
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Exact Solution") {
		t.Fatal("render missing rows")
	}
}

func TestTableVI(t *testing.T) {
	env := testEnv(t)
	res, err := RunTableVI(env)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		cm := res.Confusion[k]
		if cm.Total() == 0 {
			t.Fatalf("kind %d: empty confusion matrix", k)
		}
		// The paper's key property: no false positives (binary never fires
		// where exact does not).
		if cm.NegPos != 0 {
			t.Errorf("kind %d: %d false positives", k, cm.NegPos)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "kappa") {
		t.Fatal("render missing kappa")
	}
}

func TestFigure2(t *testing.T) {
	env := testEnv(t)
	res, err := RunFigure2(env)
	if err != nil {
		t.Fatal(err)
	}
	// Cooccurrence should leak substantial analgesic counts onto
	// hypertension; the proposed model should nearly eliminate them.
	if res.CoocRatio < 0.1 {
		t.Fatalf("cooccurrence ratio %v suspiciously low (no mis-prediction to fix?)", res.CoocRatio)
	}
	if res.ProposedRatio > res.CoocRatio/3 {
		t.Fatalf("proposed ratio %v not far below cooccurrence %v", res.ProposedRatio, res.CoocRatio)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 2a") {
		t.Fatal("render missing panel")
	}
}

func TestFigure3(t *testing.T) {
	env := testEnv(t)
	res, err := RunFigure3(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seasonal) != 3 || len(res.NewMedicine) != 3 || len(res.NewIndSeries) != 2 {
		t.Fatal("panel series missing")
	}
	// New medicine series must be zero before release.
	for _, s := range res.NewMedicine {
		for tm := 0; tm < res.ReleaseMonth && tm < len(s.Values); tm++ {
			if s.Values[tm] != 0 {
				t.Fatalf("series %s nonzero before release", s.Label)
			}
		}
	}
	// New indication series ≈ 0 before the expansion month.
	newInd := res.NewIndSeries[1]
	var before float64
	for tm := 0; tm < res.NewIndMonths && tm < len(newInd.Values); tm++ {
		before += newInd.Values[tm]
	}
	var after float64
	for tm := res.NewIndMonths; tm < len(newInd.Values); tm++ {
		after += newInd.Values[tm]
	}
	if after <= before {
		t.Fatalf("new indication did not grow: before=%v after=%v", before, after)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 3c") {
		t.Fatal("render missing panel")
	}
}

func TestFigure5(t *testing.T) {
	env := testEnv(t)
	res, err := RunFigure5(env)
	if err != nil {
		t.Fatal(err)
	}
	// The curve spans the admissible candidate range only (tail candidates
	// would trade a skipped observation for a free parameter).
	if len(res.AIC) >= env.Config.Months || len(res.AIC) < env.Config.Months-4 {
		t.Fatalf("AIC curve length = %d for %d months", len(res.AIC), env.Config.Months)
	}
	// Valley shape (the figure's point): candidates near the true event
	// score clearly better than candidates far before it. The global argmin
	// can wander on a short noisy corpus, so assert the valley rather than
	// the argmin.
	nearBest := math.Inf(1)
	for cp := res.TrueMonth - 2; cp <= res.TrueMonth+4 && cp < len(res.AIC); cp++ {
		if cp >= 0 && res.AIC[cp] < nearBest {
			nearBest = res.AIC[cp]
		}
	}
	var farSum float64
	farN := 0
	for cp := 0; cp < res.TrueMonth-5; cp++ {
		farSum += res.AIC[cp]
		farN++
	}
	if farN == 0 {
		t.Skip("true event too early to compare against a flat region")
	}
	if nearBest >= farSum/float64(farN)-1 {
		t.Fatalf("no AIC valley near truth: near=%v, far mean=%v", nearBest, farSum/float64(farN))
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "AIC by candidate") {
		t.Fatal("render missing panel")
	}
}

func TestFigure6(t *testing.T) {
	env := testEnv(t)
	res, err := RunFigure6(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 4 {
		t.Fatalf("cases = %d", len(res.Cases))
	}
	for _, cs := range res.Cases {
		if cs.Decomp == nil {
			t.Fatalf("case %q missing decomposition", cs.Title)
		}
		// Components must rebuild the fit.
		for i := range cs.Series {
			recon := cs.Decomp.Level[i] + cs.Decomp.Seasonal[i] + cs.Decomp.Intervention[i] + cs.Decomp.Irregular[i]
			if math.Abs(recon-cs.Series[i]) > 1e-6 {
				t.Fatalf("case %q reconstruction error", cs.Title)
			}
		}
	}
	// Influenza must show substantial seasonality.
	flu := res.Cases[0]
	var maxSeasonal float64
	for _, v := range flu.Decomp.Seasonal {
		if a := math.Abs(v); a > maxSeasonal {
			maxSeasonal = a
		}
	}
	if maxSeasonal <= 0 {
		t.Fatal("influenza seasonal component empty")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 6c") {
		t.Fatal("render missing case")
	}
}

func TestFigure7(t *testing.T) {
	env := testEnv(t)
	res, err := RunFigure7(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 2 {
		t.Fatalf("cases = %d", len(res.Cases))
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 7b") {
		t.Fatal("render missing case")
	}
}

func TestFigure8(t *testing.T) {
	env := testEnv(t)
	res, err := RunFigure8(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots) == 0 {
		t.Fatal("no snapshots")
	}
	first := res.Snapshots[0]
	// Before release no city uses generics.
	for city := range first.Cities {
		if share := res.GenericShare(first, city); share != 0 {
			t.Fatalf("city %s generic share %v before release", city, share)
		}
	}
	// Later snapshots should show adoption somewhere.
	last := res.Snapshots[len(res.Snapshots)-1]
	var anyAdoption bool
	for city := range last.Cities {
		if res.GenericShare(last, city) > 0.2 {
			anyAdoption = true
		}
	}
	if len(res.Snapshots) > 1 && !anyAdoption {
		t.Fatal("no city adopted generics a year after release")
	}
	if len(res.Grid) == 0 {
		t.Fatal("missing city grid")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "anti-platelet") {
		t.Fatal("render missing table")
	}
}

func TestLinkRecovery(t *testing.T) {
	env := testEnv(t)
	res, err := RunLinkRecovery(env, env.Config.MinSeriesTotal)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs == 0 {
		t.Fatal("no pairs evaluated")
	}
	// The headline claim with ground truth: the proposed model's reproduced
	// series track the true links more closely than the cooccurrence
	// baseline's.
	mP := stat.Mean(res.ProposedNRMSE)
	mC := stat.Mean(res.CoocNRMSE)
	if mP >= mC {
		t.Fatalf("proposed NRMSE %v should beat cooccurrence %v", mP, mC)
	}
	if stat.Mean(res.TotalErrProposed) >= stat.Mean(res.TotalErrCooc) {
		t.Fatalf("proposed total error %v should beat cooccurrence %v",
			stat.Mean(res.TotalErrProposed), stat.Mean(res.TotalErrCooc))
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Link recovery") {
		t.Fatal("render missing title")
	}
}

func TestExtensions(t *testing.T) {
	env := testEnv(t)
	res, err := RunExtensions(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SingleAIC) == 0 || len(res.SingleAIC) != len(res.MultiAIC) {
		t.Fatal("multi-change-point ablation empty or misaligned")
	}
	// Allowing more change points can never hurt the greedy objective.
	for i := range res.SingleAIC {
		if res.MultiAIC[i] > res.SingleAIC[i]+1e-6 {
			t.Fatalf("series %d: multi AIC %v worse than single %v", i, res.MultiAIC[i], res.SingleAIC[i])
		}
	}
	if len(res.PerplexityPlain) != env.Config.Months {
		t.Fatalf("smoothed ablation covered %d months", len(res.PerplexityPlain))
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Extension 2") {
		t.Fatal("render missing extension 2")
	}
}

func TestFigure9(t *testing.T) {
	env := testEnv(t)
	res, err := RunFigure9(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.N == 0 {
		t.Fatal("no forecast series")
	}
	if math.IsNaN(res.MedianRMSESSM) || math.IsNaN(res.MedianRMSEARIMA) {
		t.Fatal("median RMSE NaN")
	}
	// The paper reports comparable medians; allow a generous factor.
	if res.MedianRMSESSM > 5*res.MedianRMSEARIMA && res.MedianRMSEARIMA > 0 {
		t.Fatalf("SSM median %v wildly worse than ARIMA %v", res.MedianRMSESSM, res.MedianRMSEARIMA)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "median normalized RMSE") {
		t.Fatal("render missing medians")
	}
}
