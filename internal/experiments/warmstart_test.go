package experiments

import (
	"testing"

	"mictrend/internal/changepoint"
)

// TestWarmScanSelectionMatchesColdOnCorpus is the warm-start regression gate:
// across every sampled corpus series (disease, medicine, and prescription
// level), the warm-started parallel exact scan must select exactly the change
// point the cold serial scan selects. Warm starts may move a candidate's AIC
// by a small basin gap on a multimodal likelihood, but if that ever flips a
// selection on this corpus the speedup is no longer a free lunch and this
// test is the tripwire.
func TestWarmScanSelectionMatchesColdOnCorpus(t *testing.T) {
	env := testEnv(t)
	sample, err := env.SampleSeries()
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) == 0 {
		t.Fatal("corpus sample is empty")
	}
	seasonal := env.Config.Months >= 24
	for _, s := range sample {
		cold, err := changepoint.DetectExact(s.Values, seasonal)
		if err != nil {
			t.Fatalf("%v d%d/m%d: cold scan: %v", s.Kind, s.Disease, s.Medicine, err)
		}
		warm, err := changepoint.DetectExactParallel(s.Values, seasonal, changepoint.ParallelOptions{
			Workers: 4, WarmStart: true,
		})
		if err != nil {
			t.Fatalf("%v d%d/m%d: warm scan: %v", s.Kind, s.Disease, s.Medicine, err)
		}
		if warm.ChangePoint != cold.ChangePoint {
			t.Errorf("%v d%d/m%d: warm scan selected month %d, cold selected %d (cold AIC %v vs no-change %v)",
				s.Kind, s.Disease, s.Medicine, warm.ChangePoint, cold.ChangePoint, cold.AIC, cold.NoChangeAIC)
		}
		if warm.NoChangeAIC != cold.NoChangeAIC {
			t.Errorf("%v d%d/m%d: warm NoChangeAIC %v != cold %v (the no-intervention fit must stay cold)",
				s.Kind, s.Disease, s.Medicine, warm.NoChangeAIC, cold.NoChangeAIC)
		}
	}
}
