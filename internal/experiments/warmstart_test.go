package experiments

import (
	"testing"

	"mictrend/internal/changepoint"
)

// TestWarmScanSelectionMatchesColdOnCorpus is the warm-start regression gate:
// across every sampled corpus series (disease, medicine, and prescription
// level), the warm-started parallel exact scan must select exactly the change
// point the cold serial scan selects. Warm starts may move a candidate's AIC
// by a small basin gap on a multimodal likelihood, but if that ever flips a
// selection on this corpus the speedup is no longer a free lunch and this
// test is the tripwire.
func TestWarmScanSelectionMatchesColdOnCorpus(t *testing.T) {
	env := testEnv(t)
	sample, err := env.SampleSeries()
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) == 0 {
		t.Fatal("corpus sample is empty")
	}
	seasonal := env.Config.Months >= 24
	for _, s := range sample {
		cold, err := changepoint.DetectExact(s.Values, seasonal)
		if err != nil {
			t.Fatalf("%v d%d/m%d: cold scan: %v", s.Kind, s.Disease, s.Medicine, err)
		}
		warm, err := changepoint.DetectExactParallel(s.Values, seasonal, changepoint.ParallelOptions{
			Workers: 4, WarmStart: true,
		})
		if err != nil {
			t.Fatalf("%v d%d/m%d: warm scan: %v", s.Kind, s.Disease, s.Medicine, err)
		}
		if warm.ChangePoint != cold.ChangePoint {
			t.Errorf("%v d%d/m%d: warm scan selected month %d, cold selected %d (cold AIC %v vs no-change %v)",
				s.Kind, s.Disease, s.Medicine, warm.ChangePoint, cold.ChangePoint, cold.AIC, cold.NoChangeAIC)
		}
		if warm.NoChangeAIC != cold.NoChangeAIC {
			t.Errorf("%v d%d/m%d: warm NoChangeAIC %v != cold %v (the no-intervention fit must stay cold)",
				s.Kind, s.Disease, s.Medicine, warm.NoChangeAIC, cold.NoChangeAIC)
		}
	}
}

// TestPrefixScanSelectionMatchesColdOnCorpus is the same tripwire for the
// prefix-checkpointed scan, with a stronger pin: the scan's screening and
// refinement must reproduce the cold serial scan's selection byte for byte —
// change point, winning AIC, and no-change AIC — on every sampled corpus
// series. A divergence means a true winner slipped past the ladder screen
// (prefixScreenMargin too tight) or skipped its cold refit (refineMargin too
// tight), and the fit savings are no longer free.
func TestPrefixScanSelectionMatchesColdOnCorpus(t *testing.T) {
	env := testEnv(t)
	sample, err := env.SampleSeries()
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) == 0 {
		t.Fatal("corpus sample is empty")
	}
	seasonal := env.Config.Months >= 24
	coldTotal, prefixTotal := 0, 0
	for _, s := range sample {
		cold, err := changepoint.DetectExact(s.Values, seasonal)
		if err != nil {
			t.Fatalf("%v d%d/m%d: cold scan: %v", s.Kind, s.Disease, s.Medicine, err)
		}
		pref, err := changepoint.DetectExactPrefix(s.Values, seasonal, changepoint.PrefixOptions{
			Workers: 4,
		})
		if err != nil {
			t.Fatalf("%v d%d/m%d: prefix scan: %v", s.Kind, s.Disease, s.Medicine, err)
		}
		if pref.ChangePoint != cold.ChangePoint || pref.AIC != cold.AIC || pref.NoChangeAIC != cold.NoChangeAIC {
			t.Errorf("%v d%d/m%d: prefix scan selected (cp=%d aic=%v nc=%v), cold selected (cp=%d aic=%v nc=%v)",
				s.Kind, s.Disease, s.Medicine,
				pref.ChangePoint, pref.AIC, pref.NoChangeAIC,
				cold.ChangePoint, cold.AIC, cold.NoChangeAIC)
		}
		coldTotal += cold.Fits
		prefixTotal += pref.Fits
		// On a flat series the equivalence contract forces a fit for every
		// candidate the refinement band can reach, so per-series overhead
		// (probes + refits) is legitimate — but it must stay bounded.
		if pref.Fits > cold.Fits+16 {
			t.Errorf("%v d%d/m%d: prefix scan spent %d fits, cold spent %d — screening overhead out of bounds",
				s.Kind, s.Disease, s.Medicine, pref.Fits, cold.Fits)
		}
	}
	// Across the corpus the screen must save fits in aggregate: break series
	// collapse to a handful of contenders, outweighing flat-series overhead.
	if prefixTotal >= coldTotal {
		t.Errorf("prefix scan spent %d total fits, cold spent %d — no aggregate saving", prefixTotal, coldTotal)
	}
}
