package experiments

import (
	"runtime"
	"sort"
	"sync"

	"mictrend/internal/mic"
	"mictrend/internal/trend"
)

// LabeledSeries is one reproduced time series entering the Table IV–VI
// sweeps.
type LabeledSeries struct {
	Kind     trend.SeriesKind
	Disease  mic.DiseaseID
	Medicine mic.MedicineID
	Values   []float64
}

// SampleSeries returns up to MaxSeriesPerKind disease, medicine, and
// prescription series each, ordered by id. Scenario entities are interned
// first by the generator, so the cap always retains the paper's case-study
// series.
func (e *Env) SampleSeries() ([]LabeledSeries, error) {
	series, _, err := e.Series()
	if err != nil {
		return nil, err
	}
	max := e.Config.MaxSeriesPerKind
	var out []LabeledSeries

	diseases := series.Diseases()
	sort.Slice(diseases, func(a, b int) bool { return diseases[a] < diseases[b] })
	if max > 0 && len(diseases) > max {
		diseases = diseases[:max]
	}
	for _, d := range diseases {
		out = append(out, LabeledSeries{Kind: trend.KindDisease, Disease: d, Values: series.Disease(d)})
	}

	meds := series.Medicines()
	sort.Slice(meds, func(a, b int) bool { return meds[a] < meds[b] })
	if max > 0 && len(meds) > max {
		meds = meds[:max]
	}
	for _, m := range meds {
		out = append(out, LabeledSeries{Kind: trend.KindMedicine, Medicine: m, Values: series.Medicine(m)})
	}

	pairs := make([]mic.Pair, 0, len(series.Pairs))
	for p := range series.Pairs {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].Disease != pairs[b].Disease {
			return pairs[a].Disease < pairs[b].Disease
		}
		return pairs[a].Medicine < pairs[b].Medicine
	})
	pairs = capSeries(pairs, max)
	for _, p := range pairs {
		out = append(out, LabeledSeries{
			Kind: trend.KindPrescription, Disease: p.Disease, Medicine: p.Medicine,
			Values: series.Pair(p),
		})
	}
	return out, nil
}

// parallelFor runs fn(i) for i in [0, n) across workers goroutines,
// returning the first error.
func parallelFor(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return nil
	}
	in := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range in {
				if err := fn(i); err != nil {
					select {
					case errs <- err:
					default:
					}
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		in <- i
	}
	close(in)
	wg.Wait()
	close(errs)
	return <-errs
}
