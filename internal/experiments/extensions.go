package experiments

import (
	"fmt"
	"io"

	"mictrend/internal/changepoint"
	"mictrend/internal/medmodel"
	"mictrend/internal/mic"
	"mictrend/internal/report"
	"mictrend/internal/stat"
	"mictrend/internal/trend"
)

// ExtensionsResult covers the two §IX future-work directions implemented
// beyond the paper: (1) multiple change points per series — does allowing a
// second intervention improve fitting quality, and (2) temporally smoothed
// EM — does chaining a Dirichlet prior across months improve held-out
// perplexity?
type ExtensionsResult struct {
	// Multi-change-point ablation on prescription series.
	SingleAIC, MultiAIC []float64
	MultiImproved       int // series where the greedy search added ≥2 breaks
	MultiTest           stat.TTestResult

	// Smoothed-EM ablation: per-month holdout perplexities.
	PerplexityPlain, PerplexitySmoothed []float64
	SmoothTest                          stat.TTestResult
	PriorWeight                         float64
}

// RunExtensions evaluates both extensions on the environment corpus.
func RunExtensions(env *Env) (*ExtensionsResult, error) {
	res := &ExtensionsResult{PriorWeight: 5}

	// --- multiple change points (paper §IX, limitation 1) ---
	all, err := env.SampleSeries()
	if err != nil {
		return nil, err
	}
	var prescriptions []LabeledSeries
	for _, s := range all {
		if s.Kind == trend.KindPrescription {
			prescriptions = append(prescriptions, s)
		}
	}
	type pairOut struct {
		single, multi float64
		improved      bool
	}
	outs := make([]pairOut, len(prescriptions))
	err = parallelFor(len(prescriptions), env.Config.Workers, func(i int) error {
		y := prescriptions[i].Values
		single, err := changepoint.DetectExact(y, false)
		if err != nil {
			return err
		}
		multi, err := changepoint.DetectMultiple(y, changepoint.MultiOptions{MaxChanges: 2})
		if err != nil {
			return err
		}
		outs[i] = pairOut{
			single:   single.AIC,
			multi:    multi.AIC,
			improved: len(multi.Interventions) >= 2,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, o := range outs {
		res.SingleAIC = append(res.SingleAIC, o.single)
		res.MultiAIC = append(res.MultiAIC, o.multi)
		if o.improved {
			res.MultiImproved++
		}
	}
	if len(res.SingleAIC) >= 2 {
		if res.MultiTest, err = stat.PairedTTest(res.MultiAIC, res.SingleAIC); err != nil {
			return nil, err
		}
	}

	// --- temporally smoothed EM (paper §IX, Dynamic Topic Model direction) ---
	vocabM := env.Filtered.Medicines.Len()
	type monthOut struct{ plain, smoothed float64 }
	monthOuts := make([]monthOut, env.Filtered.T())
	var prevSmoothed *medmodel.Model
	for i, month := range env.Filtered.Months {
		holdout := mic.SplitMedicines(month, env.Config.HoldoutTrainFraction, env.Config.Seed+1)
		plain, err := medmodel.Fit(holdout.Train, vocabM, env.Config.EM)
		if err != nil {
			return nil, err
		}
		smoothed, err := medmodel.FitSmoothed(holdout.Train, vocabM, env.Config.EM, prevSmoothed, res.PriorWeight)
		if err != nil {
			return nil, err
		}
		pplPlain, err := medmodel.Perplexity(plain, holdout.Train, holdout.Test)
		if err != nil {
			return nil, err
		}
		pplSmoothed, err := medmodel.Perplexity(smoothed, holdout.Train, holdout.Test)
		if err != nil {
			return nil, err
		}
		monthOuts[i] = monthOut{plain: pplPlain, smoothed: pplSmoothed}
		prevSmoothed = smoothed
	}
	for _, o := range monthOuts {
		res.PerplexityPlain = append(res.PerplexityPlain, o.plain)
		res.PerplexitySmoothed = append(res.PerplexitySmoothed, o.smoothed)
	}
	if len(res.PerplexityPlain) >= 2 {
		if res.SmoothTest, err = stat.PairedTTest(res.PerplexitySmoothed, res.PerplexityPlain); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Render prints both ablations.
func (r *ExtensionsResult) Render(w io.Writer) {
	t := &report.Table{
		Title:   "Extension 1: multiple change points (prescription series, AIC mean (SD))",
		Headers: []string{"model", "AIC"},
	}
	cell := func(xs []float64) string {
		if len(xs) == 0 {
			return "-"
		}
		return report.FormatFloat(stat.Mean(xs)) + " (" + report.FormatFloat(stat.StdDev(xs)) + ")"
	}
	t.AddRow("single change point (paper)", cell(r.SingleAIC))
	t.AddRow("up to two change points (§IX extension)", cell(r.MultiAIC))
	t.Render(w)
	fmt.Fprintf(w, "  %d/%d series accepted a second change point; paired t(%.0f) = %.3f, p = %.4g\n\n",
		r.MultiImproved, len(r.SingleAIC), r.MultiTest.DF, r.MultiTest.T, r.MultiTest.P)

	t2 := &report.Table{
		Title:   fmt.Sprintf("Extension 2: temporally smoothed EM (prior weight %.0f), holdout perplexity mean (SD)", r.PriorWeight),
		Headers: []string{"model", "perplexity"},
	}
	t2.AddRow("independent monthly EM (paper)", cell(r.PerplexityPlain))
	t2.AddRow("temporally smoothed EM (§IX extension)", cell(r.PerplexitySmoothed))
	t2.Render(w)
	fmt.Fprintf(w, "  paired t(%.0f) = %.3f, p = %.4g, d = %.3f\n",
		r.SmoothTest.DF, r.SmoothTest.T, r.SmoothTest.P, r.SmoothTest.CohensD)
}
