package experiments

import (
	"fmt"
	"io"
	"sort"

	"mictrend/internal/mic"
	"mictrend/internal/report"
	"mictrend/internal/stat"
)

// LinkRecoveryResult is an evaluation the paper could not run for lack of
// ground truth: how accurately does each model's reproduced prescription
// time series x_dmt (Eq. 7) recover the generator's *true* link counts?
// Reported as the normalized RMSE between the estimated and true monthly
// series per disease–medicine pair, for the proposed model and the
// cooccurrence baseline.
type LinkRecoveryResult struct {
	// Per-pair normalized RMSE (divided by the true series' mean level),
	// aligned across the two models.
	ProposedNRMSE, CoocNRMSE []float64
	// TotalErrProposed/Cooc is the relative error of the total (whole
	// period) count per pair.
	TotalErrProposed, TotalErrCooc []float64
	// Test compares per-pair NRMSE (proposed − cooccurrence): negative t
	// means the proposed model tracks the truth better.
	Test stat.TTestResult
	// Pairs is the number of evaluated pairs.
	Pairs int
}

// RunLinkRecovery evaluates both models' reproductions against the true
// links for every pair whose true total count is at least minTotal.
func RunLinkRecovery(env *Env, minTotal float64) (*LinkRecoveryResult, error) {
	proposed, cooc, err := env.Series()
	if err != nil {
		return nil, err
	}
	// The proposed set is min-total filtered; evaluate on the intersection
	// of substantial true pairs to keep the comparison symmetric.
	res := &LinkRecoveryResult{}
	keys := make([]struct {
		pair  mic.Pair
		total float64
	}, 0, len(env.Truth.PairCounts))
	for pair, series := range env.Truth.PairCounts {
		var total float64
		for _, v := range series {
			total += v
		}
		if total >= minTotal {
			keys = append(keys, struct {
				pair  mic.Pair
				total float64
			}{pair, total})
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].pair.Disease != keys[b].pair.Disease {
			return keys[a].pair.Disease < keys[b].pair.Disease
		}
		return keys[a].pair.Medicine < keys[b].pair.Medicine
	})

	for _, k := range keys {
		truth := env.Truth.PairCounts[k.pair]
		mean := k.total / float64(len(truth))
		if mean <= 0 {
			continue
		}
		estP := proposed.Pair(k.pair)
		estC := cooc.Pair(k.pair)
		zero := make([]float64, len(truth))
		if estP == nil {
			estP = zero
		}
		if estC == nil {
			estC = zero
		}
		res.ProposedNRMSE = append(res.ProposedNRMSE, stat.RMSE(truth, estP)/mean)
		res.CoocNRMSE = append(res.CoocNRMSE, stat.RMSE(truth, estC)/mean)
		res.TotalErrProposed = append(res.TotalErrProposed, relErr(sum(estP), k.total))
		res.TotalErrCooc = append(res.TotalErrCooc, relErr(sum(estC), k.total))
		res.Pairs++
	}
	if res.Pairs >= 2 {
		if res.Test, err = stat.PairedTTest(res.ProposedNRMSE, res.CoocNRMSE); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func sum(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

func relErr(est, truth float64) float64 {
	if truth == 0 {
		return 0
	}
	d := est - truth
	if d < 0 {
		d = -d
	}
	return d / truth
}

// Render prints the recovery comparison.
func (r *LinkRecoveryResult) Render(w io.Writer) {
	t := &report.Table{
		Title:   fmt.Sprintf("Link recovery vs generator ground truth (%d pairs)", r.Pairs),
		Headers: []string{"model", "NRMSE mean (SD)", "NRMSE median", "total-count rel. error mean"},
	}
	row := func(name string, nrmse, terr []float64) {
		t.AddRow(name,
			report.FormatFloat(stat.Mean(nrmse))+" ("+report.FormatFloat(stat.StdDev(nrmse))+")",
			stat.Median(nrmse),
			stat.Mean(terr))
	}
	row("Cooccurrence", r.CoocNRMSE, r.TotalErrCooc)
	row("Proposed", r.ProposedNRMSE, r.TotalErrProposed)
	t.Render(w)
	fmt.Fprintf(w, "  paired t(%.0f) = %.3f, p = %.4g, d = %.3f (negative favors the proposed model)\n",
		r.Test.DF, r.Test.T, r.Test.P, r.Test.CohensD)
}
