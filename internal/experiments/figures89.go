package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"mictrend/internal/apps"
	"mictrend/internal/arima"
	"mictrend/internal/changepoint"
	"mictrend/internal/mic"
	"mictrend/internal/micgen"
	"mictrend/internal/report"
	"mictrend/internal/ssm"
	"mictrend/internal/stat"
	"mictrend/internal/trend"
)

// Figure8Snapshot is the per-city medicine share map at one month.
type Figure8Snapshot struct {
	Month  int
	Label  string
	Cities apps.CityCounts
}

// Figure8Result reproduces Fig. 8: the geographical spread of the
// anti-platelet generics at one month before release, one month after, and
// one year after.
type Figure8Result struct {
	Medicines []string // codes, original first
	MedIDs    []mic.MedicineID
	Snapshots []Figure8Snapshot
	// Grid lays out city names by (row, col) from the generator catalog.
	Grid [][]string
}

// RunFigure8 reproduces the paper's Figure 8.
func RunFigure8(env *Env) (*Figure8Result, error) {
	codes := []string{micgen.MedicineAntiplOrig, micgen.MedicineGeneric1, micgen.MedicineGeneric2, micgen.MedicineGeneric3}
	meds := make([]mic.MedicineID, len(codes))
	for i, c := range codes {
		id, err := env.MedicineID(c)
		if err != nil {
			return nil, err
		}
		meds[i] = id
	}
	stroke, err := env.DiseaseID(micgen.DiseaseStroke)
	if err != nil {
		return nil, err
	}
	months := []struct {
		m     int
		label string
	}{
		{micgen.GenericReleaseMonth - 1, "one month before release"},
		{micgen.GenericReleaseMonth + 1, "one month after release"},
		{micgen.GenericReleaseMonth + 12, "one year after release"},
	}
	res := &Figure8Result{Medicines: codes, MedIDs: meds}
	for _, mm := range months {
		if mm.m < 0 || mm.m >= env.Config.Months {
			continue
		}
		counts, err := apps.PairCountsByCity(env.Filtered, stroke, meds, mm.m, env.Config.EM)
		if err != nil {
			return nil, err
		}
		res.Snapshots = append(res.Snapshots, Figure8Snapshot{Month: mm.m, Label: mm.label, Cities: counts})
	}
	// Build the display grid from the catalog's city coordinates.
	maxRow, maxCol := 0, 0
	for _, c := range env.Truth.Catalog.Cities {
		if c.Row > maxRow {
			maxRow = c.Row
		}
		if c.Col > maxCol {
			maxCol = c.Col
		}
	}
	res.Grid = make([][]string, maxRow+1)
	for r := range res.Grid {
		res.Grid[r] = make([]string, maxCol+1)
	}
	for _, c := range env.Truth.Catalog.Cities {
		res.Grid[c.Row][c.Col] = c.Name
	}
	return res, nil
}

// GenericShare returns the fraction of a city's anti-platelet prescriptions
// that are generics in a snapshot. Medicines[0]/MedIDs[0] is the original by
// construction. Returns 0 when the city has no prescriptions.
func (r *Figure8Result) GenericShare(snap Figure8Snapshot, city string) float64 {
	counts, ok := snap.Cities[city]
	if !ok || len(r.MedIDs) == 0 {
		return 0
	}
	var total, generic float64
	for i, id := range r.MedIDs {
		v := counts[id]
		total += v
		if i > 0 {
			generic += v
		}
	}
	if total <= 0 {
		return 0
	}
	return generic / total
}

// Render prints one share table per snapshot.
func (r *Figure8Result) Render(w io.Writer) {
	for _, snap := range r.Snapshots {
		t := &report.Table{
			Title:   fmt.Sprintf("Figure 8 (%s, month %d): anti-platelet prescriptions by city", snap.Label, snap.Month),
			Headers: append([]string{"city"}, r.Medicines...),
		}
		cities := make([]string, 0, len(snap.Cities))
		for c := range snap.Cities {
			cities = append(cities, c)
		}
		sort.Strings(cities)
		for _, city := range cities {
			counts := snap.Cities[city]
			cells := []interface{}{city}
			for _, id := range r.MedIDs {
				cells = append(cells, counts[id])
			}
			t.AddRow(cells...)
		}
		t.Render(w)
		// Spatial layout, like the paper's map: generic share per grid cell.
		fmt.Fprintln(w, "  generic share by location:")
		for _, row := range r.Grid {
			fmt.Fprint(w, "   ")
			for _, city := range row {
				if city == "" {
					fmt.Fprint(w, "      .")
					continue
				}
				fmt.Fprintf(w, " %5.0f%%", 100*r.GenericShare(snap, city))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
}

// ForecastCase is one Fig. 9 panel: a series forecast by both models.
type ForecastCase struct {
	Label    string
	Actual   []float64 // full series (train + test)
	TrainLen int
	SSM      []float64 // forecasts over the test window
	ARIMA    []float64
}

// Figure9Result reproduces Fig. 9: train on the first T−h months, forecast
// the last h, compare the structural model against ARIMA. The paper reports
// comparable median RMSE with ARIMA unstable on seasonal/late-break series.
type Figure9Result struct {
	Cases []ForecastCase
	// Median RMSE over all sampled disease series (normalized to [0, 1]).
	MedianRMSESSM, MedianRMSEARIMA float64
	// Unstable counts forecasts whose error exploded (> 3× series range).
	UnstableSSM, UnstableARIMA int
	N                          int
}

// RunFigure9 reproduces the paper's Figure 9 and §VIII-B2.
func RunFigure9(env *Env) (*Figure9Result, error) {
	all, err := env.SampleSeries()
	if err != nil {
		return nil, err
	}
	h := env.Config.ForecastHorizon
	res := &Figure9Result{}
	var rmseSSM, rmseARIMA []float64
	var mu sync.Mutex

	var diseaseSeries []LabeledSeries
	for _, s := range all {
		if s.Kind == trend.KindDisease && len(s.Values) > h+10 {
			diseaseSeries = append(diseaseSeries, s)
		}
	}
	err = parallelFor(len(diseaseSeries), env.Config.Workers, func(i int) error {
		y := diseaseSeries[i].Values
		trainLen := len(y) - h
		train := y[:trainLen]
		test := y[trainLen:]
		ssmFC, arimaFC, err := forecastBoth(train, h)
		if err != nil {
			return err
		}
		// Normalize the RMSE by the series range like the paper's
		// "(normalized) disease time series".
		norm := stat.Max(y) - stat.Min(y)
		if norm <= 0 {
			norm = 1
		}
		scaleDown := func(xs []float64) []float64 {
			out := make([]float64, len(xs))
			for j, v := range xs {
				out[j] = v / norm
			}
			return out
		}
		mu.Lock()
		rmseSSM = append(rmseSSM, stat.RMSE(scaleDown(test), scaleDown(ssmFC)))
		rmseARIMA = append(rmseARIMA, stat.RMSE(scaleDown(test), scaleDown(arimaFC)))
		if forecastUnstable(test, ssmFC) {
			res.UnstableSSM++
		}
		if forecastUnstable(test, arimaFC) {
			res.UnstableARIMA++
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.N = len(rmseSSM)
	res.MedianRMSESSM = stat.Median(rmseSSM)
	res.MedianRMSEARIMA = stat.Median(rmseARIMA)

	// Case panels: two seasonal diseases and three structural-break series.
	proposed, _, err := env.Series()
	if err != nil {
		return nil, err
	}
	addCase := func(label string, y []float64) error {
		if y == nil || len(y) <= h+10 {
			return nil
		}
		trainLen := len(y) - h
		ssmFC, arimaFC, err := forecastBoth(y[:trainLen], h)
		if err != nil {
			return err
		}
		res.Cases = append(res.Cases, ForecastCase{
			Label: label, Actual: y, TrainLen: trainLen, SSM: ssmFC, ARIMA: arimaFC,
		})
		return nil
	}
	for _, sc := range []struct{ label, code string }{
		{"influenza (seasonal)", micgen.DiseaseInfluenza},
		{"hay fever (seasonal)", micgen.DiseaseHayFever},
	} {
		id, err := env.DiseaseID(sc.code)
		if err != nil {
			return nil, err
		}
		if err := addCase(sc.label, proposed.Disease(id)); err != nil {
			return nil, err
		}
	}
	for _, sc := range []struct{ label, code string }{
		{"new osteoporosis medicine (structural break)", micgen.MedicineNewOsteo},
		{"anti-platelet original (late decline)", micgen.MedicineAntiplOrig},
		{"authorized generic (late break)", micgen.MedicineGeneric3},
	} {
		id, err := env.MedicineID(sc.code)
		if err != nil {
			return nil, err
		}
		if err := addCase(sc.label, proposed.Medicine(id)); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// forecastBoth fits both models on train and forecasts h steps.
func forecastBoth(train []float64, h int) (ssmFC, arimaFC []float64, err error) {
	det, err := changepoint.DetectExact(train, true)
	if err != nil {
		return nil, nil, err
	}
	fit, err := ssm.FitConfig(train, ssm.Config{Seasonal: true, ChangePoint: det.ChangePoint})
	if err != nil {
		return nil, nil, err
	}
	ssmFC, _, err = fit.Forecast(h)
	if err != nil {
		return nil, nil, err
	}
	ar, err := arima.Select(train, arima.SelectOptions{})
	if err != nil {
		return nil, nil, err
	}
	arimaFC, err = ar.Forecast(h)
	if err != nil {
		return nil, nil, err
	}
	return ssmFC, arimaFC, nil
}

// forecastUnstable reports whether a forecast wandered more than 3× the test
// window's own range away from it.
func forecastUnstable(test, fc []float64) bool {
	lo, hi := stat.Min(test), stat.Max(test)
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	for _, v := range fc {
		if v > hi+3*span || v < lo-3*span {
			return true
		}
	}
	return false
}

// Render plots the forecast panels and prints the medians.
func (r *Figure9Result) Render(w io.Writer) {
	for _, cs := range r.Cases {
		p := &report.LinePlot{Title: "Figure 9: " + cs.Label}
		p.Add("actual", cs.Actual)
		pad := func(fc []float64) []float64 {
			out := make([]float64, len(cs.Actual))
			for i := range out {
				out[i] = nan()
			}
			for i, v := range fc {
				if cs.TrainLen+i < len(out) {
					out[cs.TrainLen+i] = v
				}
			}
			return out
		}
		p.Add("ssm forecast", pad(cs.SSM))
		p.Add("arima forecast", pad(cs.ARIMA))
		p.Render(w)
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "median normalized RMSE over %d disease series: SSM = %.3f, ARIMA = %.3f\n",
		r.N, r.MedianRMSESSM, r.MedianRMSEARIMA)
	fmt.Fprintf(w, "unstable forecasts: SSM = %d, ARIMA = %d\n", r.UnstableSSM, r.UnstableARIMA)
}

func nan() float64 { return math.NaN() }
