package experiments

import (
	"errors"
	"sync/atomic"
	"testing"

	"mictrend/internal/mic"
)

func TestParallelForVisitsAll(t *testing.T) {
	const n = 100
	var visited [n]int32
	err := parallelFor(n, 4, func(i int) error {
		atomic.AddInt32(&visited[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range visited {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestParallelForPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := parallelFor(50, 3, func(i int) error {
		if i == 17 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestParallelForZeroItems(t *testing.T) {
	if err := parallelFor(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal("zero items should be a no-op")
	}
}

func TestParallelForDefaultWorkers(t *testing.T) {
	count := int32(0)
	if err := parallelFor(10, 0, func(int) error {
		atomic.AddInt32(&count, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d", count)
	}
}

func TestCapSeries(t *testing.T) {
	pairs := []mic.Pair{{Disease: 1}, {Disease: 2}, {Disease: 3}}
	if got := capSeries(pairs, 2); len(got) != 2 {
		t.Fatalf("cap 2 = %d", len(got))
	}
	if got := capSeries(pairs, 0); len(got) != 3 {
		t.Fatalf("cap 0 should keep all, got %d", len(got))
	}
	if got := capSeries(pairs, 10); len(got) != 3 {
		t.Fatalf("cap beyond length = %d", len(got))
	}
}

func TestSmallAndDefaultConfigsSane(t *testing.T) {
	for _, cfg := range []Config{SmallConfig(), DefaultConfig()} {
		if cfg.Months < 30 {
			t.Fatalf("months %d cannot cover the latest scenario event (month 24)", cfg.Months)
		}
		if cfg.HoldoutTrainFraction <= 0 || cfg.HoldoutTrainFraction > 1 {
			t.Fatal("bad holdout fraction")
		}
		if cfg.MinMonthlyFreq != 5 || cfg.MinSeriesTotal != 10 {
			t.Fatal("paper filter constants drifted")
		}
	}
}
