package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestSurveillance pins the acceptance criteria on the experiments corpus:
// ≥ 90% recall of the planted aggregate events, perfect top-1 attribution
// for single-driver events, the planted substitution pairs flagged, and a
// surveillance scan set far smaller than the flat one.
func TestSurveillance(t *testing.T) {
	env := testEnv(t)
	res, err := RunSurveillance(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("no planted aggregate events to score against")
	}
	if res.EventHits*10 < len(res.Events)*9 {
		t.Errorf("aggregate-event recall %d/%d, want ≥ 90%%", res.EventHits, len(res.Events))
	}
	if res.Top1Total > 0 && res.Top1Correct != res.Top1Total {
		t.Errorf("top-1 attribution %d/%d, want all correct", res.Top1Correct, res.Top1Total)
	}
	if len(res.OffsetTruths) == 0 {
		t.Fatal("no planted offset pairs to score against")
	}
	if res.OffsetHits != len(res.OffsetTruths) {
		t.Errorf("offset-pair recall %d/%d, want all flagged", res.OffsetHits, len(res.OffsetTruths))
	}
	if res.AggregateNodes >= res.FlatSeries {
		t.Errorf("aggregate set (%d nodes) is not smaller than the flat set (%d series)", res.AggregateNodes, res.FlatSeries)
	}
	if res.AggregateFits+res.DrillFits >= res.FlatFits {
		t.Errorf("surveillance fits %d+%d are not cheaper than the flat scan's %d",
			res.AggregateFits, res.DrillFits, res.FlatFits)
	}
	if res.DetectedNodes == 0 {
		t.Error("surveillance flagged no aggregate nodes at all")
	}

	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, want := range []string{"attribution accuracy", "Aggregate-vs-flat scan cost", "offset pairs flagged"} {
		if !strings.Contains(out, want) {
			t.Errorf("render is missing %q:\n%s", want, out)
		}
	}
	t.Logf("\n%s", out)
}
