package experiments

import (
	"fmt"
	"io"

	"mictrend/internal/changepoint"
	"mictrend/internal/kalman"
	"mictrend/internal/mic"
	"mictrend/internal/micgen"
	"mictrend/internal/report"
	"mictrend/internal/ssm"
)

// Figure5Result reproduces Fig. 5: the AIC of the intervention model over
// every candidate change point of a series with a true structural break,
// showing the valley shape around the true break that justifies the binary
// search.
type Figure5Result struct {
	SeriesLabel string
	Series      []float64
	// AIC[t] is the model AIC with the change point at month t.
	AIC []float64
	// NoChangeAIC is the intervention-free model's score.
	NoChangeAIC float64
	// TrueMonth is the generator-injected event month.
	TrueMonth int
	// BestMonth minimizes AIC.
	BestMonth int
}

// RunFigure5 reproduces the paper's Figure 5 on the authorized generic's
// series, whose mid-window release month is known from the generator (the
// paper uses a series with a change in September 2013; a mid-window break
// gives the cleanest valley).
func RunFigure5(env *Env) (*Figure5Result, error) {
	proposed, _, err := env.Series()
	if err != nil {
		return nil, err
	}
	med, err := env.MedicineID(micgen.MedicineGeneric3)
	if err != nil {
		return nil, err
	}
	series := proposed.Medicine(med)
	if series == nil {
		return nil, fmt.Errorf("experiments: authorized generic series missing")
	}
	// The sensitivity curve uses the non-seasonal model (the paper's example
	// series carries no seasonal signal; a 12-state seasonal block on a
	// short window only blurs the valley) and scans the admissible candidate
	// range (a λ at the very tail is unidentified — see
	// changepoint.MinActiveObservations).
	maxCP := len(series) - changepoint.MinActiveObservations
	res := &Figure5Result{
		SeriesLabel: "anti-platelet authorized generic",
		Series:      series,
		AIC:         make([]float64, maxCP+1),
		TrueMonth:   micgen.GenericReleaseMonth,
	}
	best := 0
	ws := kalman.NewWorkspace() // one workspace across the whole valley scan
	for cp := 0; cp <= maxCP; cp++ {
		aic, err := ssm.AICAtWorkspace(series, false, cp, ws)
		if err != nil {
			return nil, err
		}
		res.AIC[cp] = aic
		if aic < res.AIC[best] {
			best = cp
		}
	}
	res.BestMonth = best
	if res.NoChangeAIC, err = ssm.AICAtWorkspace(series, false, ssm.NoChangePoint, ws); err != nil {
		return nil, err
	}
	return res, nil
}

// Render plots the series and the AIC valley.
func (r *Figure5Result) Render(w io.Writer) {
	a := &report.LinePlot{Title: fmt.Sprintf("Figure 5a: %s (true change month %d)", r.SeriesLabel, r.TrueMonth)}
	a.Add("series", r.Series)
	a.Render(w)
	fmt.Fprintln(w)
	b := &report.LinePlot{Title: "Figure 5b: AIC by candidate change point"}
	b.Add("AIC", r.AIC)
	b.Render(w)
	fmt.Fprintf(w, "  best candidate month = %d, no-change AIC = %s\n", r.BestMonth, report.FormatFloat(r.NoChangeAIC))
}

// CaseStudy is one fitted series of Figures 6–7: the original series, the
// smoothed fit, the decomposed components, and related comparison series.
type CaseStudy struct {
	Title       string
	Series      []float64
	Fitted      []float64
	Decomp      *ssm.Decomposition
	ChangePoint int // ssm.NoChangePoint when none detected
	Related     []NamedSeries
}

// Figure6Result reproduces Fig. 6: fitting results for four disease/medicine
// case studies (influenza seasonality+outlier, multi-peak diarrhea, a new
// medicine's release, and a generic-release decline).
type Figure6Result struct {
	Cases []CaseStudy
}

// Figure7Result reproduces Fig. 7: prescription-level case studies (a new
// indication and a diagnostics substitution with opposite trends).
type Figure7Result struct {
	Cases []CaseStudy
}

// buildCase fits the full model with exact change point search and
// decomposes it.
func buildCase(title string, series []float64, related []NamedSeries) (CaseStudy, error) {
	cs := CaseStudy{Title: title, Series: series, Related: related, ChangePoint: ssm.NoChangePoint}
	det, err := changepoint.DetectExact(series, true)
	if err != nil {
		return cs, err
	}
	cs.ChangePoint = det.ChangePoint
	fit, err := ssm.FitConfig(series, ssm.Config{Seasonal: true, ChangePoint: det.ChangePoint})
	if err != nil {
		return cs, err
	}
	d, err := fit.Decompose()
	if err != nil {
		return cs, err
	}
	cs.Decomp = d
	cs.Fitted = d.Fitted
	return cs, nil
}

// RunFigure6 reproduces the paper's Figure 6.
func RunFigure6(env *Env) (*Figure6Result, error) {
	proposed, _, err := env.Series()
	if err != nil {
		return nil, err
	}
	dSeries := func(code string) ([]float64, error) {
		id, err := env.DiseaseID(code)
		if err != nil {
			return nil, err
		}
		v := proposed.Disease(id)
		if v == nil {
			return nil, fmt.Errorf("experiments: no series for disease %s", code)
		}
		return v, nil
	}
	mSeries := func(code string) ([]float64, error) {
		id, err := env.MedicineID(code)
		if err != nil {
			return nil, err
		}
		v := proposed.Medicine(id)
		if v == nil {
			return nil, fmt.Errorf("experiments: no series for medicine %s", code)
		}
		return v, nil
	}

	res := &Figure6Result{}
	flu, err := dSeries(micgen.DiseaseInfluenza)
	if err != nil {
		return nil, err
	}
	cs, err := buildCase("Figure 6a: influenza (seasonality + outlier)", flu, nil)
	if err != nil {
		return nil, err
	}
	res.Cases = append(res.Cases, cs)

	diarrhea, err := dSeries(micgen.DiseaseDiarrhea)
	if err != nil {
		return nil, err
	}
	cs, err = buildCase("Figure 6b: diarrhea (multi-peak seasonality)", diarrhea, nil)
	if err != nil {
		return nil, err
	}
	res.Cases = append(res.Cases, cs)

	newOsteo, err := mSeries(micgen.MedicineNewOsteo)
	if err != nil {
		return nil, err
	}
	oldOsteo, err := mSeries(micgen.MedicineOldOsteo)
	if err != nil {
		return nil, err
	}
	cs, err = buildCase(
		fmt.Sprintf("Figure 6c: new osteoporosis medicine (released month %d)", micgen.NewOsteoReleaseMonth),
		newOsteo, []NamedSeries{{Label: "established competitor", Values: oldOsteo}})
	if err != nil {
		return nil, err
	}
	res.Cases = append(res.Cases, cs)

	orig, err := mSeries(micgen.MedicineAntiplOrig)
	if err != nil {
		return nil, err
	}
	var related []NamedSeries
	for _, code := range []string{micgen.MedicineGeneric1, micgen.MedicineGeneric2, micgen.MedicineGeneric3} {
		v, err := mSeries(code)
		if err != nil {
			continue // generic may be filtered out at tiny scales
		}
		related = append(related, NamedSeries{Label: code, Values: v})
	}
	cs, err = buildCase(
		fmt.Sprintf("Figure 6d: anti-platelet original (generics released month %d)", micgen.GenericReleaseMonth),
		orig, related)
	if err != nil {
		return nil, err
	}
	res.Cases = append(res.Cases, cs)
	return res, nil
}

// RunFigure7 reproduces the paper's Figure 7.
func RunFigure7(env *Env) (*Figure7Result, error) {
	proposed, _, err := env.Series()
	if err != nil {
		return nil, err
	}
	pair := func(dCode, mCode string) ([]float64, error) {
		d, err := env.DiseaseID(dCode)
		if err != nil {
			return nil, err
		}
		m, err := env.MedicineID(mCode)
		if err != nil {
			return nil, err
		}
		v := proposed.Pair(mic.Pair{Disease: d, Medicine: m})
		if v == nil {
			return nil, fmt.Errorf("experiments: no series for pair (%s, %s)", dCode, mCode)
		}
		return v, nil
	}
	res := &Figure7Result{}

	lewy, err := pair(micgen.DiseaseLewyBody, micgen.MedicineLewyDrug)
	if err != nil {
		return nil, err
	}
	parkinson, err := pair(micgen.DiseaseParkinson, micgen.MedicineLewyDrug)
	if err != nil {
		return nil, err
	}
	cs, err := buildCase(
		fmt.Sprintf("Figure 7a: new indication for Lewy body dementia (month %d)", micgen.LewyExpansionMonth),
		lewy, []NamedSeries{{Label: "Parkinson's (original indication)", Values: parkinson}})
	if err != nil {
		return nil, err
	}
	res.Cases = append(res.Cases, cs)

	oral, err := pair(micgen.DiseaseOralFeeding, micgen.MedicineInfusion)
	if err != nil {
		return nil, err
	}
	dehy, err := pair(micgen.DiseaseDehydration, micgen.MedicineInfusion)
	if err != nil {
		return nil, err
	}
	cs, err = buildCase(
		fmt.Sprintf("Figure 7b: diagnostics substitution (shift month %d)", micgen.DiagShiftMonth),
		oral, []NamedSeries{{Label: "dehydration (related1, opposite trend)", Values: dehy}})
	if err != nil {
		return nil, err
	}
	res.Cases = append(res.Cases, cs)
	return res, nil
}

func renderCases(w io.Writer, cases []CaseStudy) {
	for _, cs := range cases {
		top := &report.LinePlot{Title: cs.Title}
		top.Add("original", cs.Series)
		top.Add("fitted", cs.Fitted)
		top.Render(w)
		if cs.Decomp != nil {
			mid := &report.LinePlot{Title: "  components"}
			mid.Add("level", cs.Decomp.Level)
			mid.Add("seasonal", cs.Decomp.Seasonal)
			mid.Add("intervention", cs.Decomp.Intervention)
			mid.Render(w)
		}
		if len(cs.Related) > 0 {
			rel := &report.LinePlot{Title: "  related series"}
			for _, s := range cs.Related {
				rel.Add(s.Label, s.Values)
			}
			rel.Render(w)
		}
		if cs.ChangePoint != ssm.NoChangePoint {
			fmt.Fprintf(w, "  detected change point: month %d\n", cs.ChangePoint)
		} else {
			fmt.Fprintln(w, "  no change point detected")
		}
		fmt.Fprintln(w)
	}
}

// Render plots all Figure 6 case studies.
func (r *Figure6Result) Render(w io.Writer) { renderCases(w, r.Cases) }

// Render plots all Figure 7 case studies.
func (r *Figure7Result) Render(w io.Writer) { renderCases(w, r.Cases) }
