package experiments

import (
	"fmt"
	"io"

	"mictrend/internal/medmodel"
	"mictrend/internal/mic"
	"mictrend/internal/micgen"
	"mictrend/internal/report"
	"mictrend/internal/stat"
)

// NamedSeries is one labeled time series of a figure reproduction.
type NamedSeries struct {
	Label  string
	Values []float64
}

// Figure2Result reproduces Fig. 2: prescription time series of a depressor
// (effective for hypertension) and an anti-inflammatory analgesic (not
// effective) for hypertension, estimated by (a) the cooccurrence approach
// and (b) the proposed model. The paper's point: cooccurrence over-predicts
// the unrelated-but-frequent analgesic; the proposed model drives it to ≈0.
type Figure2Result struct {
	Cooccurrence []NamedSeries
	Proposed     []NamedSeries
	// MispredictionRatio is Σ analgesic / Σ depressor under each approach;
	// the paper's pathology is ratio > 1 for cooccurrence and ≈ 0 for the
	// proposed model.
	CoocRatio, ProposedRatio float64
}

// RunFigure2 reproduces the paper's Figure 2.
func RunFigure2(env *Env) (*Figure2Result, error) {
	proposed, cooc, err := env.Series()
	if err != nil {
		return nil, err
	}
	htn, err := env.DiseaseID(micgen.DiseaseHypertension)
	if err != nil {
		return nil, err
	}
	depr, err := env.MedicineID(micgen.MedicineDepressor)
	if err != nil {
		return nil, err
	}
	nsaid, err := env.MedicineID(micgen.MedicineAnalgesic)
	if err != nil {
		return nil, err
	}
	get := func(s *medmodel.SeriesSet, m mic.MedicineID) []float64 {
		v := s.Pair(mic.Pair{Disease: htn, Medicine: m})
		if v == nil {
			v = make([]float64, env.Config.Months)
		}
		return v
	}
	res := &Figure2Result{
		Cooccurrence: []NamedSeries{
			{Label: "depressor (effective)", Values: get(cooc, depr)},
			{Label: "analgesic (not effective)", Values: get(cooc, nsaid)},
		},
		Proposed: []NamedSeries{
			{Label: "depressor (effective)", Values: get(proposed, depr)},
			{Label: "analgesic (not effective)", Values: get(proposed, nsaid)},
		},
	}
	res.CoocRatio = ratioOfTotals(res.Cooccurrence[1].Values, res.Cooccurrence[0].Values)
	res.ProposedRatio = ratioOfTotals(res.Proposed[1].Values, res.Proposed[0].Values)
	return res, nil
}

func ratioOfTotals(num, den []float64) float64 {
	d := stat.Sum(den)
	if d == 0 {
		return 0
	}
	return stat.Sum(num) / d
}

// Render plots both panels.
func (r *Figure2Result) Render(w io.Writer) {
	a := &report.LinePlot{Title: "Figure 2a: cooccurrence-based prediction for hypertension"}
	for _, s := range r.Cooccurrence {
		a.Add(s.Label, s.Values)
	}
	a.Render(w)
	fmt.Fprintf(w, "  analgesic/depressor count ratio = %.3f (mis-prediction when > 0.5)\n\n", r.CoocRatio)
	b := &report.LinePlot{Title: "Figure 2b: proposed model prediction for hypertension"}
	for _, s := range r.Proposed {
		b.Add(s.Label, s.Values)
	}
	b.Render(w)
	fmt.Fprintf(w, "  analgesic/depressor count ratio = %.3f (should be ≈ 0)\n", r.ProposedRatio)
}

// Figure3Result reproduces Fig. 3: (a) seasonality of hay fever, heatstroke,
// and influenza prescriptions; (b) the new bronchodilator's series for its
// three target diseases rising from zero at release; (c) the
// indication-expanded bronchodilator's series for asthma ramping after the
// expansion.
type Figure3Result struct {
	Seasonal     []NamedSeries
	NewMedicine  []NamedSeries
	NewIndMonths int // expansion month for reference
	NewIndSeries []NamedSeries
	ReleaseMonth int
}

// RunFigure3 reproduces the paper's Figure 3.
func RunFigure3(env *Env) (*Figure3Result, error) {
	proposed, _, err := env.Series()
	if err != nil {
		return nil, err
	}
	pairSeries := func(dCode, mCode string) ([]float64, error) {
		d, err := env.DiseaseID(dCode)
		if err != nil {
			return nil, err
		}
		m, err := env.MedicineID(mCode)
		if err != nil {
			return nil, err
		}
		v := proposed.Pair(mic.Pair{Disease: d, Medicine: m})
		if v == nil {
			v = make([]float64, env.Config.Months)
		}
		return v, nil
	}
	res := &Figure3Result{ReleaseMonth: micgen.NewBronchReleaseMonth, NewIndMonths: micgen.AsthmaExpansionMonth}
	for _, sc := range []struct{ label, d, m string }{
		{"hay fever", micgen.DiseaseHayFever, micgen.MedicineAntihist},
		{"heatstroke", micgen.DiseaseHeatstroke, micgen.MedicineRehydrate},
		{"influenza", micgen.DiseaseInfluenza, micgen.MedicineAntiviral},
	} {
		v, err := pairSeries(sc.d, sc.m)
		if err != nil {
			return nil, err
		}
		res.Seasonal = append(res.Seasonal, NamedSeries{Label: sc.label, Values: v})
	}
	for _, sc := range []struct{ label, d string }{
		{"asthma", micgen.DiseaseAsthma},
		{"chronic bronchitis", micgen.DiseaseBronchitis},
		{"COPD", micgen.DiseaseCOPD},
	} {
		v, err := pairSeries(sc.d, micgen.MedicineNewBronch)
		if err != nil {
			return nil, err
		}
		res.NewMedicine = append(res.NewMedicine, NamedSeries{Label: sc.label, Values: v})
	}
	for _, sc := range []struct{ label, d string }{
		{"COPD (original indication)", micgen.DiseaseCOPD},
		{"asthma (new indication)", micgen.DiseaseAsthma},
	} {
		v, err := pairSeries(sc.d, micgen.MedicineExpBronch)
		if err != nil {
			return nil, err
		}
		res.NewIndSeries = append(res.NewIndSeries, NamedSeries{Label: sc.label, Values: v})
	}
	return res, nil
}

// Render plots the three panels.
func (r *Figure3Result) Render(w io.Writer) {
	a := &report.LinePlot{Title: "Figure 3a: seasonal prescriptions (hay fever/heatstroke/influenza)"}
	for _, s := range r.Seasonal {
		a.Add(s.Label, s.Values)
	}
	a.Render(w)
	fmt.Fprintln(w)
	b := &report.LinePlot{Title: fmt.Sprintf("Figure 3b: new bronchodilator (release month %d)", r.ReleaseMonth)}
	for _, s := range r.NewMedicine {
		b.Add(s.Label, s.Values)
	}
	b.Render(w)
	fmt.Fprintln(w)
	c := &report.LinePlot{Title: fmt.Sprintf("Figure 3c: indication expansion (month %d)", r.NewIndMonths)}
	for _, s := range r.NewIndSeries {
		c.Add(s.Label, s.Values)
	}
	c.Render(w)
}
