package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"mictrend/internal/changepoint"
	"mictrend/internal/report"
	"mictrend/internal/ssm"
)

// TableVResult reproduces Table V: total fitting time per series kind for
// the exact (Algorithm 1) and approximate (Algorithm 2) change point
// searches, each reported with its cost rate relative to a single fit of the
// model without intervention variables — the paper's parenthesized
// "increased computation rate". The theoretical expectations are T+1 for
// the exact search and ≈log2(T)+O(1) for the binary search.
type TableVResult struct {
	Months int
	// Baseline[kind] is the time for one no-intervention fit of every
	// series of the kind.
	Baseline [3]time.Duration
	Exact    [3]time.Duration
	Approx   [3]time.Duration
	// Fit-count rates: mean model fits per series performed by each search.
	ExactFits  [3]float64
	ApproxFits [3]float64
	Counts     [3]int
}

// RunTableV reproduces the paper's Table V on the sampled series.
func RunTableV(env *Env) (*TableVResult, error) {
	series, err := env.SampleSeries()
	if err != nil {
		return nil, err
	}
	res := &TableVResult{Months: env.Config.Months}
	for _, s := range series {
		res.Counts[int(s.Kind)]++
	}

	// Phase runners time one strategy over all series, accumulating per
	// kind. Workers parallelize within a phase; wall-clock is summed per
	// series so parallelism does not distort the rate (we sum CPU-ish time).
	run := func(fn func(y []float64) (int, error)) ([3]time.Duration, [3]float64, error) {
		var durations [3]time.Duration
		var fits [3]float64
		var mu sync.Mutex
		err := parallelFor(len(series), env.Config.Workers, func(i int) error {
			start := time.Now()
			nFits, err := fn(series[i].Values)
			if err != nil {
				return err
			}
			elapsed := time.Since(start)
			mu.Lock()
			durations[int(series[i].Kind)] += elapsed
			fits[int(series[i].Kind)] += float64(nFits)
			mu.Unlock()
			return nil
		})
		return durations, fits, err
	}

	baseline, _, err := run(func(y []float64) (int, error) {
		_, err := ssm.FitConfig(y, ssm.Config{Seasonal: true, ChangePoint: ssm.NoChangePoint})
		return 1, err
	})
	if err != nil {
		return nil, err
	}
	res.Baseline = baseline

	exact, exactFits, err := run(func(y []float64) (int, error) {
		r, err := changepoint.DetectExact(y, true)
		return r.Fits, err
	})
	if err != nil {
		return nil, err
	}
	res.Exact = exact

	approx, approxFits, err := run(func(y []float64) (int, error) {
		r, err := changepoint.DetectBinary(y, true)
		return r.Fits, err
	})
	if err != nil {
		return nil, err
	}
	res.Approx = approx

	for k := 0; k < 3; k++ {
		if res.Counts[k] > 0 {
			res.ExactFits[k] = exactFits[k] / float64(res.Counts[k])
			res.ApproxFits[k] = approxFits[k] / float64(res.Counts[k])
		}
	}
	return res, nil
}

// Rate returns elapsed/baseline for a kind, the paper's parenthesized
// metric.
func (r *TableVResult) Rate(d [3]time.Duration, kind int) float64 {
	if r.Baseline[kind] <= 0 {
		return 0
	}
	return float64(d[kind]) / float64(r.Baseline[kind])
}

// Render prints the timing table.
func (r *TableVResult) Render(w io.Writer) {
	t := &report.Table{
		Title:   "Table V: computational time to fit all series (rate vs no-intervention fit)",
		Headers: []string{"method", "disease", "medicine", "prescription"},
	}
	row := func(name string, d [3]time.Duration, fits [3]float64) {
		cells := make([]interface{}, 0, 4)
		cells = append(cells, name)
		for k := 0; k < 3; k++ {
			cells = append(cells, fmt.Sprintf("%.3fs (%.2fx, %.1f fits)", d[k].Seconds(), r.Rate(d, k), fits[k]))
		}
		t.AddRow(cells...)
	}
	row("Exact Solution", r.Exact, r.ExactFits)
	row("Approximate Solution", r.Approx, r.ApproxFits)
	t.Render(w)
	fmt.Fprintf(w, "theoretical rates for T=%d: exact ≈ %d, approximate ≈ %.2f\n",
		r.Months, r.Months-1, logTheoretical(r.Months))
}

func logTheoretical(t int) float64 {
	// log2(T) plus the terminal pair and the no-change comparison.
	n := 0.0
	for v := t; v > 1; v /= 2 {
		n++
	}
	return n + 2
}
