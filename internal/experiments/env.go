// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII–§VIII) on a synthetic MIC corpus with ground truth. Each
// experiment is a Run function returning a structured result plus a Render
// method that prints the same rows/series the paper reports. Absolute
// numbers differ from the paper (different data); the orderings, factors,
// and crossovers are what these reproductions preserve.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"mictrend/internal/medmodel"
	"mictrend/internal/mic"
	"mictrend/internal/micgen"
)

// Config scales an experiment run. SmallConfig is sized for unit tests and
// benchmarks; DefaultConfig approximates the paper's 43-month setup at
// laptop scale.
type Config struct {
	Seed            uint64
	Months          int
	RecordsPerMonth int
	BulkDiseases    int
	BulkMedicines   int
	// TopKDiseases is the number of frequent diseases for the relevance
	// experiment (the paper uses 100).
	TopKDiseases int
	// HoldoutTrainFraction is the per-record medicine train share (paper:
	// 0.9).
	HoldoutTrainFraction float64
	// MinSeriesTotal filters reproduced series (paper: 10).
	MinSeriesTotal float64
	// MinMonthlyFreq filters rare codes per month (paper: 5).
	MinMonthlyFreq int
	// ForecastHorizon is the test window of the forecasting experiment
	// (paper: 12 of 43 months).
	ForecastHorizon int
	// MaxSeriesPerKind caps how many series per kind enter the heavy
	// Table IV–VI sweeps (0 = no cap).
	MaxSeriesPerKind int
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// EM tunes medication model fitting.
	EM medmodel.FitOptions
}

// SmallConfig returns a fast configuration for tests and benchmarks. The
// window must cover the latest scenario event (the Lewy body indication
// expansion at month 24), so 36 months is the practical minimum.
func SmallConfig() Config {
	return Config{
		Seed:                 7,
		Months:               36,
		RecordsPerMonth:      700,
		BulkDiseases:         8,
		BulkMedicines:        10,
		TopKDiseases:         15,
		HoldoutTrainFraction: 0.9,
		MinSeriesTotal:       10,
		MinMonthlyFreq:       5,
		ForecastHorizon:      8,
		MaxSeriesPerKind:     12,
		EM:                   medmodel.FitOptions{MaxIter: 20},
	}
}

// DefaultConfig mirrors the paper's period length at a corpus scale that
// runs in minutes on a laptop.
func DefaultConfig() Config {
	return Config{
		Seed:                 7,
		Months:               43,
		RecordsPerMonth:      2000,
		BulkDiseases:         60,
		BulkMedicines:        80,
		TopKDiseases:         100,
		HoldoutTrainFraction: 0.9,
		MinSeriesTotal:       10,
		MinMonthlyFreq:       5,
		ForecastHorizon:      12,
		MaxSeriesPerKind:     120,
		EM:                   medmodel.FitOptions{MaxIter: 30},
	}
}

// Env is the shared experimental setup: the generated corpus with ground
// truth, the frequency-filtered view, per-month fitted models (proposed and
// cooccurrence), and the reproduced series of both.
type Env struct {
	Config   Config
	Data     *mic.Dataset
	Truth    *micgen.Truth
	Filtered *mic.Dataset

	modelsOnce sync.Once
	modelsErr  error
	models     []*medmodel.Model
	coocs      []*medmodel.Cooccurrence

	seriesOnce sync.Once
	seriesErr  error
	series     *medmodel.SeriesSet // proposed, min-total filtered
	coocSeries *medmodel.SeriesSet // cooccurrence, unfiltered
}

// NewEnv generates the corpus for cfg.
func NewEnv(cfg Config) (*Env, error) {
	ds, truth, err := micgen.Generate(micgen.Config{
		Seed:            cfg.Seed,
		Months:          cfg.Months,
		RecordsPerMonth: cfg.RecordsPerMonth,
		BulkDiseases:    cfg.BulkDiseases,
		BulkMedicines:   cfg.BulkMedicines,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: generating corpus: %w", err)
	}
	filtered := mic.FilterDataset(ds, mic.FilterOptions{MinMonthlyFreq: cfg.MinMonthlyFreq})
	return &Env{Config: cfg, Data: ds, Truth: truth, Filtered: filtered}, nil
}

// Models returns the per-month proposed and cooccurrence models, fitting
// them on first use.
func (e *Env) Models() ([]*medmodel.Model, []*medmodel.Cooccurrence, error) {
	e.modelsOnce.Do(func() {
		models, fails, err := medmodel.FitAll(context.Background(), e.Filtered, e.Config.EM)
		if err != nil {
			e.modelsErr = err
			return
		}
		if len(fails) > 0 {
			e.modelsErr = fails[0].Err
			return
		}
		e.models = models
		coocs := make([]*medmodel.Cooccurrence, e.Filtered.T())
		for i, month := range e.Filtered.Months {
			c, err := medmodel.FitCooccurrence(month, e.Filtered.Medicines.Len())
			if err != nil {
				e.modelsErr = err
				return
			}
			coocs[i] = c
		}
		e.coocs = coocs
	})
	return e.models, e.coocs, e.modelsErr
}

// Series returns the reproduced series: proposed (min-total filtered, as the
// paper filters before trend detection) and cooccurrence (unfiltered, used
// only for comparisons like Fig. 2).
func (e *Env) Series() (proposed, cooc *medmodel.SeriesSet, err error) {
	models, coocs, err := e.Models()
	if err != nil {
		return nil, nil, err
	}
	e.seriesOnce.Do(func() {
		s, err := medmodel.Reproduce(e.Filtered, models)
		if err != nil {
			e.seriesErr = err
			return
		}
		e.series = s.FilterMinTotal(e.Config.MinSeriesTotal)
		cs, err := medmodel.ReproduceCooccurrence(e.Filtered, coocs)
		if err != nil {
			e.seriesErr = err
			return
		}
		e.coocSeries = cs
	})
	return e.series, e.coocSeries, e.seriesErr
}

// DiseaseID resolves a scenario disease code.
func (e *Env) DiseaseID(code string) (mic.DiseaseID, error) {
	id, ok := e.Data.Diseases.Lookup(code)
	if !ok {
		return 0, fmt.Errorf("experiments: unknown disease %s", code)
	}
	return mic.DiseaseID(id), nil
}

// MedicineID resolves a scenario medicine code.
func (e *Env) MedicineID(code string) (mic.MedicineID, error) {
	id, ok := e.Data.Medicines.Lookup(code)
	if !ok {
		return 0, fmt.Errorf("experiments: unknown medicine %s", code)
	}
	return mic.MedicineID(id), nil
}

// sampleSeries returns up to max series of a map ordered deterministically.
// Scenario-relevant series (those passed in `prefer`) are kept first.
func capSeries(keys []mic.Pair, max int) []mic.Pair {
	if max <= 0 || len(keys) <= max {
		return keys
	}
	return keys[:max]
}
