package experiments

import (
	"fmt"
	"io"
	"math"

	"mictrend/internal/changepoint"
	"mictrend/internal/report"
	"mictrend/internal/stat"
	"mictrend/internal/trend"
)

// TableVIResult reproduces Table VI: change point consistency between the
// exact and approximate detectors per series kind — the confusion matrix,
// the false negative rate, Cohen's κ, and the RMSE between located change
// points on series where both methods fired.
type TableVIResult struct {
	Confusion [3]stat.ConfusionMatrix
	RMSE      [3]float64
	// TruthHits counts detections (by the exact method) within ±3 months of
	// a generator-injected event affecting the series — an accuracy check
	// the paper could not run.
	TruthHits, TruthTotal [3]int
}

// RunTableVI reproduces the paper's Table VI on the sampled series.
func RunTableVI(env *Env) (*TableVIResult, error) {
	series, err := env.SampleSeries()
	if err != nil {
		return nil, err
	}
	type outcome struct {
		exact, approx changepoint.Result
	}
	outcomes := make([]outcome, len(series))
	err = parallelFor(len(series), env.Config.Workers, func(i int) error {
		ex, err := changepoint.DetectExact(series[i].Values, true)
		if err != nil {
			return err
		}
		ap, err := changepoint.DetectBinary(series[i].Values, true)
		if err != nil {
			return err
		}
		outcomes[i] = outcome{exact: ex, approx: ap}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &TableVIResult{}
	sqErr := [3]float64{}
	sqN := [3]int{}
	for i, s := range series {
		k := int(s.Kind)
		ex, ap := outcomes[i].exact, outcomes[i].approx
		res.Confusion[k].Add(ex.Detected(), ap.Detected())
		if ex.Detected() && ap.Detected() {
			d := float64(ex.ChangePoint - ap.ChangePoint)
			sqErr[k] += d * d
			sqN[k]++
		}
		// Ground-truth comparison: does the exact detection land near a true
		// injected event for this medicine (release/price cut/expansion)?
		if s.Kind != trend.KindDisease {
			mCode := env.Data.Medicines.Code(int32(s.Medicine))
			changes := env.Truth.ChangesFor(mCode)
			if len(changes) > 0 {
				res.TruthTotal[k]++
				if ex.Detected() {
					for _, c := range changes {
						if absInt(c.Month-ex.ChangePoint) <= 3 {
							res.TruthHits[k]++
							break
						}
					}
				}
			}
		}
	}
	for k := 0; k < 3; k++ {
		if sqN[k] > 0 {
			res.RMSE[k] = math.Sqrt(sqErr[k] / float64(sqN[k]))
		}
	}
	return res, nil
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Render prints the three confusion matrices with κ and RMSE.
func (r *TableVIResult) Render(w io.Writer) {
	for k := 0; k < 3; k++ {
		kind := trend.SeriesKind(k)
		cm := r.Confusion[k]
		t := &report.Table{
			Title:   "Table VI(" + string('a'+rune(k)) + "): exact vs approximate change points — " + kind.String(),
			Headers: []string{"", "approx pos.", "approx neg."},
		}
		t.AddRow("exact pos.", cm.PosPos, cm.PosNeg)
		t.AddRow("exact neg.", cm.NegPos, cm.NegNeg)
		t.Render(w)
		fmt.Fprintf(w, "  false-negative rate = %.3f%%, false-positive rate = %.3f%%, Cohen's kappa = %.3f, cp RMSE = %.3f\n",
			100*cm.FalseNegativeRate(), 100*cm.FalsePositiveRate(), cm.CohensKappa(), r.RMSE[k])
		if r.TruthTotal[k] > 0 {
			fmt.Fprintf(w, "  ground truth: %d/%d series with injected events detected within ±3 months\n",
				r.TruthHits[k], r.TruthTotal[k])
		}
		fmt.Fprintln(w)
	}
}
