package experiments

import (
	"io"
	"sync"

	"mictrend/internal/arima"
	"mictrend/internal/changepoint"
	"mictrend/internal/report"
	"mictrend/internal/ssm"
	"mictrend/internal/stat"
	"mictrend/internal/trend"
)

// TableIVModel enumerates the ablation rows of Table IV.
type TableIVModel int

// Ablation rows.
const (
	ModelLL TableIVModel = iota
	ModelLLS
	ModelLLI
	ModelLLSI
	ModelARIMA
	numTableIVModels
)

// String names the row like the paper.
func (m TableIVModel) String() string {
	switch m {
	case ModelLL:
		return "Local Level (LL)"
	case ModelLLS:
		return "LL + Seasonality (S)"
	case ModelLLI:
		return "LL + Intervention (I)"
	case ModelLLSI:
		return "LL + S + I (proposed)"
	case ModelARIMA:
		return "ARIMA"
	default:
		return "?"
	}
}

// TableIVResult reproduces Table IV: mean (SD) AIC of the model ablation on
// disease, medicine, and prescription series, plus the full model's change
// point detection rates.
type TableIVResult struct {
	// AICs[model][kind] collects per-series AIC values.
	AICs [numTableIVModels][3][]float64
	// DetectionRate[kind] is the fraction of series where the full model
	// found a change point (paper: 12% diseases, 28% medicines, 10%
	// prescriptions).
	DetectionRate [3]float64
	// FullVsSeasonalTest compares LL+S+I against LL+S per kind.
	FullVsSeasonalTest [3]stat.TTestResult
}

// RunTableIV reproduces the paper's Table IV on the sampled series.
func RunTableIV(env *Env) (*TableIVResult, error) {
	series, err := env.SampleSeries()
	if err != nil {
		return nil, err
	}
	type perSeries struct {
		aics     [numTableIVModels]float64
		detected bool
	}
	results := make([]perSeries, len(series))
	var mu sync.Mutex
	err = parallelFor(len(series), env.Config.Workers, func(i int) error {
		y := series[i].Values
		var out perSeries
		ll, err := ssm.FitConfig(y, ssm.Config{ChangePoint: ssm.NoChangePoint})
		if err != nil {
			return err
		}
		out.aics[ModelLL] = ll.AIC
		lls, err := ssm.FitConfig(y, ssm.Config{Seasonal: true, ChangePoint: ssm.NoChangePoint})
		if err != nil {
			return err
		}
		out.aics[ModelLLS] = lls.AIC
		lli, err := changepoint.DetectExact(y, false)
		if err != nil {
			return err
		}
		out.aics[ModelLLI] = lli.AIC
		llsi, err := changepoint.DetectExact(y, true)
		if err != nil {
			return err
		}
		out.aics[ModelLLSI] = llsi.AIC
		out.detected = llsi.Detected()
		ar, err := arima.Select(y, arima.SelectOptions{})
		if err != nil {
			return err
		}
		out.aics[ModelARIMA] = ar.AIC
		mu.Lock()
		results[i] = out
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &TableIVResult{}
	detected := [3]int{}
	counts := [3]int{}
	for i, s := range series {
		k := int(s.Kind)
		for m := TableIVModel(0); m < numTableIVModels; m++ {
			res.AICs[m][k] = append(res.AICs[m][k], results[i].aics[m])
		}
		counts[k]++
		if results[i].detected {
			detected[k]++
		}
	}
	for k := 0; k < 3; k++ {
		if counts[k] > 0 {
			res.DetectionRate[k] = float64(detected[k]) / float64(counts[k])
		}
		if len(res.AICs[ModelLLSI][k]) >= 2 {
			tt, err := stat.PairedTTest(res.AICs[ModelLLSI][k], res.AICs[ModelLLS][k])
			if err == nil {
				res.FullVsSeasonalTest[k] = tt
			}
		}
	}
	return res, nil
}

// Render prints the ablation table.
func (r *TableIVResult) Render(w io.Writer) {
	t := &report.Table{
		Title:   "Table IV: fitting quality (AIC, mean (SD)) of model variants",
		Headers: []string{"model", "disease", "medicine", "prescription"},
	}
	cell := func(xs []float64) string {
		if len(xs) == 0 {
			return "-"
		}
		return report.FormatFloat(stat.Mean(xs)) + " (" + report.FormatFloat(stat.StdDev(xs)) + ")"
	}
	for m := TableIVModel(0); m < numTableIVModels; m++ {
		t.AddRow(m.String(), cell(r.AICs[m][0]), cell(r.AICs[m][1]), cell(r.AICs[m][2]))
	}
	t.Render(w)
	for k := 0; k < 3; k++ {
		kind := trend.SeriesKind(k)
		tt := r.FullVsSeasonalTest[k]
		io.WriteString(w, "  "+kind.String()+": change points in "+
			report.FormatFloat(100*r.DetectionRate[k])+"% of series; LL+S+I vs LL+S t("+
			report.FormatFloat(tt.DF)+") = "+report.FormatFloat(tt.T)+", p = "+report.FormatFloat(tt.P)+"\n")
	}
}
