package experiments

import (
	"fmt"
	"io"

	"mictrend/internal/eval"
	"mictrend/internal/medmodel"
	"mictrend/internal/mic"
	"mictrend/internal/report"
	"mictrend/internal/stat"
)

// TableIIIResult reproduces Table III: predictive performance (perplexity on
// a 90/10 medicine holdout per monthly dataset) and prescription relevance
// (AP@10 / NDCG@10 against the indication ground truth for the top-K
// frequent diseases), with the paper's paired t-tests.
type TableIIIResult struct {
	// Per-month perplexities, one entry per monthly dataset.
	PerplexityUnigram  []float64
	PerplexityCooc     []float64
	PerplexityProposed []float64
	// Per-disease ranking quality at cutoff 10.
	APCooc, APProposed     []float64
	NDCGCooc, NDCGProposed []float64
	// Paired t-tests (proposed vs cooccurrence).
	PerplexityTest stat.TTestResult
	APTest         stat.TTestResult
	NDCGTest       stat.TTestResult
}

// RunTableIII reproduces Table III on the environment corpus.
func RunTableIII(env *Env) (*TableIIIResult, error) {
	res := &TableIIIResult{}
	vocabM := env.Filtered.Medicines.Len()

	// Predictive performance: per-month holdout.
	for _, month := range env.Filtered.Months {
		holdout := mic.SplitMedicines(month, env.Config.HoldoutTrainFraction, env.Config.Seed)
		model, err := medmodel.Fit(holdout.Train, vocabM, env.Config.EM)
		if err != nil {
			return nil, fmt.Errorf("experiments: month %d proposed: %w", month.Month, err)
		}
		cooc, err := medmodel.FitCooccurrence(holdout.Train, vocabM)
		if err != nil {
			return nil, err
		}
		unigram, err := medmodel.FitUnigram(holdout.Train, vocabM)
		if err != nil {
			return nil, err
		}
		pplP, err := medmodel.Perplexity(model, holdout.Train, holdout.Test)
		if err != nil {
			return nil, err
		}
		pplC, err := medmodel.Perplexity(cooc, holdout.Train, holdout.Test)
		if err != nil {
			return nil, err
		}
		pplU, err := medmodel.Perplexity(unigram, holdout.Train, holdout.Test)
		if err != nil {
			return nil, err
		}
		res.PerplexityProposed = append(res.PerplexityProposed, pplP)
		res.PerplexityCooc = append(res.PerplexityCooc, pplC)
		res.PerplexityUnigram = append(res.PerplexityUnigram, pplU)
	}

	// Prescription relevance: rank medicines per frequent disease by total
	// reproduced prescription count and score against the indication truth.
	proposedSeries, coocSeries, err := env.Series()
	if err != nil {
		return nil, err
	}
	top := mic.TopDiseases(env.Filtered, env.Config.TopKDiseases)
	for _, d := range top {
		dCode := env.Data.Diseases.Code(int32(d))
		relevant := make(map[string]bool)
		for m := 0; m < env.Data.Medicines.Len(); m++ {
			mCode := env.Data.Medicines.Code(int32(m))
			if env.Truth.Relevant(dCode, mCode) {
				relevant[mCode] = true
			}
		}
		if len(relevant) == 0 {
			continue
		}
		toCodes := func(ids []mic.MedicineID) []string {
			out := make([]string, len(ids))
			for i, id := range ids {
				out[i] = env.Data.Medicines.Code(int32(id))
			}
			return out
		}
		rankedP := toCodes(medmodel.RankMedicines([]*medmodel.SeriesSet{proposedSeries}, d))
		rankedC := toCodes(medmodel.RankMedicines([]*medmodel.SeriesSet{coocSeries}, d))
		res.APProposed = append(res.APProposed, eval.AveragePrecisionAt(rankedP, relevant, 10))
		res.APCooc = append(res.APCooc, eval.AveragePrecisionAt(rankedC, relevant, 10))
		res.NDCGProposed = append(res.NDCGProposed, eval.NDCGAt(rankedP, relevant, 10))
		res.NDCGCooc = append(res.NDCGCooc, eval.NDCGAt(rankedC, relevant, 10))
	}

	if res.PerplexityTest, err = stat.PairedTTest(res.PerplexityProposed, res.PerplexityCooc); err != nil {
		return nil, err
	}
	if res.APTest, err = stat.PairedTTest(res.APProposed, res.APCooc); err != nil {
		return nil, err
	}
	if res.NDCGTest, err = stat.PairedTTest(res.NDCGProposed, res.NDCGCooc); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the table with means, SDs, and test statistics.
func (r *TableIIIResult) Render(w io.Writer) {
	t := &report.Table{
		Title:   "Table III: predictive performance and prescription relevance",
		Headers: []string{"model", "perplexity (SD)", "AP@10 (SD)", "NDCG@10 (SD)"},
	}
	cell := func(xs []float64) string {
		if len(xs) == 0 {
			return "-"
		}
		return report.FormatFloat(stat.Mean(xs)) + " (" + report.FormatFloat(stat.StdDev(xs)) + ")"
	}
	t.AddRow("Unigram", cell(r.PerplexityUnigram), "-", "-")
	t.AddRow("Cooccurrence", cell(r.PerplexityCooc), cell(r.APCooc), cell(r.NDCGCooc))
	t.AddRow("Proposed", cell(r.PerplexityProposed), cell(r.APProposed), cell(r.NDCGProposed))
	t.Render(w)
	fmt.Fprintf(w, "paired t-tests (proposed vs cooccurrence):\n")
	fmt.Fprintf(w, "  perplexity: t(%.0f) = %.3f, p = %.4g, d = %.3f\n",
		r.PerplexityTest.DF, r.PerplexityTest.T, r.PerplexityTest.P, r.PerplexityTest.CohensD)
	fmt.Fprintf(w, "  AP@10:      t(%.0f) = %.3f, p = %.4g, d = %.3f\n",
		r.APTest.DF, r.APTest.T, r.APTest.P, r.APTest.CohensD)
	fmt.Fprintf(w, "  NDCG@10:    t(%.0f) = %.3f, p = %.4g, d = %.3f\n",
		r.NDCGTest.DF, r.NDCGTest.T, r.NDCGTest.P, r.NDCGTest.CohensD)
}
