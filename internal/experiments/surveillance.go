package experiments

import (
	"context"
	"fmt"
	"io"

	"mictrend/internal/mic"
	"mictrend/internal/micgen"
	"mictrend/internal/report"
	"mictrend/internal/trend"
)

// SurveillanceResult scores hierarchical surveillance (detect on aggregates,
// attribute down) against the generator's ground truth, and contrasts its
// scan cost with the flat per-series scan over the same corpus — the
// aggregate-vs-flat trade the IBM surveillance papers formalize.
type SurveillanceResult struct {
	// Recall over the planted aggregate-level events (true class-aggregate
	// shift ≥ 20%): an event is recalled when its class node is flagged and
	// the event month surfaces as the aggregate break or as a member change
	// point in the drill-down.
	Events    []micgen.AggregateEvent
	EventHits int

	// Top-1 attribution over single-driver events whose month the aggregate
	// break itself matched.
	Top1Correct, Top1Total int

	// Precision over flagged aggregate nodes: a detection is a true positive
	// when any planted event (down to a 5% true shift) on that class or
	// group lies within ±4 months.
	DetectedNodes, TruePositives int

	// Offsetting substitutions: planted pairs vs flagged pairs.
	OffsetTruths []micgen.OffsetTruth
	OffsetHits   int
	OffsetsFound int

	// Cost: fits spent by the flat per-series scan vs the surveillance pass
	// (aggregate scan + drill-down under detected nodes only).
	FlatSeries, FlatFits          int
	AggregateNodes, AggregateFits int
	DrillFits                     int
}

// RunSurveillance runs the flat analysis and the hierarchical surveillance
// pass (reusing the flat run's models and series, so the surveillance fit
// counts are its marginal cost) and scores both against ground truth.
//
// The pass runs on its own fixed corpus rather than the shared environment:
// aggregate-level detection power depends on the class volumes clearing the
// estimation noise floor, and the scenario's planted shifts are calibrated
// against that floor at 1200 records/month over 30 months (the regime the
// trend package's surveillance acceptance tests pin). At the shared test
// scale (~700 records/month) true 20–35% class shifts are statistically
// invisible to the AIC scan — recall would measure the corpus, not the
// method.
func RunSurveillance(env *Env) (*SurveillanceResult, error) {
	ds, truth, err := micgen.Generate(micgen.Config{
		Seed:            42,
		Months:          30,
		RecordsPerMonth: 1200,
		BulkDiseases:    6,
		BulkMedicines:   6,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: surveillance corpus: %w", err)
	}
	data := ds

	opts := trend.DefaultOptions()
	opts.Method = trend.MethodExact
	opts.Seasonal = false
	opts.MinSeriesTotal = 100
	opts.Workers = env.Config.Workers

	ctx := context.Background()
	analysis, err := trend.Analyze(ctx, data, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: flat analysis: %w", err)
	}

	c := truth.Catalog
	h := trend.HierarchyFromCodes(data, c.MedicineClasses(), c.ClassGroups, c.DiseaseGroups())
	surv, err := trend.Surveil(ctx, data, trend.SurveilOptions{
		Hierarchy: h,
		Pipeline:  opts,
		Analysis:  analysis,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: surveillance: %w", err)
	}

	res := &SurveillanceResult{
		FlatSeries:     len(analysis.Diseases) + len(analysis.Medicines) + len(analysis.Prescriptions),
		FlatFits:       analysis.TotalFits,
		AggregateNodes: len(surv.Nodes),
		AggregateFits:  surv.AggregateFits,
		DrillFits:      surv.DrillFits,
		OffsetsFound:   len(surv.Offsets),
	}

	near := func(cp, month int) bool { return cp >= month-4 && cp <= month+4 }
	classNode := func(class string) *trend.SurveilNode {
		return surv.Node(trend.SeriesKey{Kind: trend.KindMedicineClass, Node: class})
	}
	eventNear := func(node *trend.SurveilNode, month int) bool {
		if !node.Result.Detected() {
			return false
		}
		if near(node.Result.ChangePoint, month) {
			return true
		}
		for _, a := range node.Attribution {
			if a.ChildChangePoint >= 0 && near(a.ChildChangePoint, month) {
				return true
			}
		}
		return false
	}

	// Recall and top-1 attribution against the clearly visible events.
	res.Events = truth.AggregateEvents(0, -1, 0.2)
	for _, ev := range res.Events {
		node := classNode(ev.Class)
		if node == nil {
			continue
		}
		if eventNear(node, ev.Month) {
			res.EventHits++
		}
		if len(ev.Drivers) == 1 && node.Result.Detected() && near(node.Result.ChangePoint, ev.Month) {
			res.Top1Total++
			if len(node.Attribution) > 0 {
				if id, ok := data.Medicines.Lookup(ev.Drivers[0]); ok &&
					node.Attribution[0].Child == (trend.SeriesKey{Kind: trend.KindMedicine, Medicine: mic.MedicineID(id)}) {
					res.Top1Correct++
				}
			}
		}
	}

	// Precision over the medicine-side aggregates (the levels AggregateEvents
	// covers): explain each flagged class/class-group by any planted event,
	// down to faint (5% shift) ones — an unexplained detection is a false
	// alarm, most of them seasonal classes breaking the non-seasonal scan.
	faint := truth.AggregateEvents(0, -1, 0.05)
	for _, node := range surv.Detected() {
		if node.Key.Kind != trend.KindMedicineClass && node.Key.Kind != trend.KindMedicineGroup {
			continue
		}
		res.DetectedNodes++
		explained := false
		for _, ev := range faint {
			match := false
			switch node.Key.Kind {
			case trend.KindMedicineClass:
				match = node.Key.Node == ev.Class
			case trend.KindMedicineGroup:
				match = node.Key.Node == ev.Group
			}
			if match && eventNear(node, ev.Month) {
				explained = true
				break
			}
		}
		if explained {
			res.TruePositives++
		}
	}

	// Offsetting substitutions: each planted pair must be flagged with the
	// right decliner, a planted riser, and a split month inside the ramp.
	res.OffsetTruths = truth.OffsetPairs()
	for _, ot := range res.OffsetTruths {
		want := trend.SeriesKey{}
		if ot.Class != "" {
			if id, ok := data.Medicines.Lookup(ot.Decliner); ok {
				want = trend.SeriesKey{Kind: trend.KindMedicine, Medicine: mic.MedicineID(id)}
			}
		} else {
			if id, ok := data.Diseases.Lookup(ot.Decliner); ok {
				want = trend.SeriesKey{Kind: trend.KindDisease, Disease: mic.DiseaseID(id)}
			}
		}
		risers := make(map[trend.SeriesKey]bool)
		for _, r := range ot.Risers {
			if ot.Class != "" {
				if id, ok := data.Medicines.Lookup(r); ok {
					risers[trend.SeriesKey{Kind: trend.KindMedicine, Medicine: mic.MedicineID(id)}] = true
				}
			} else if id, ok := data.Diseases.Lookup(r); ok {
				risers[trend.SeriesKey{Kind: trend.KindDisease, Disease: mic.DiseaseID(id)}] = true
			}
		}
		for _, op := range surv.Offsets {
			if op.Decliner == want && risers[op.Riser] &&
				op.Month >= ot.Month-2 && op.Month <= ot.Month+8 {
				res.OffsetHits++
				break
			}
		}
	}
	return res, nil
}

// Render prints the paper-style accuracy and cost tables.
func (r *SurveillanceResult) Render(w io.Writer) {
	t := &report.Table{
		Title:   "Hierarchical surveillance: attribution accuracy vs planted ground truth",
		Headers: []string{"measure", "hit", "total", "rate"},
	}
	rate := func(hit, total int) string {
		if total == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f%%", 100*float64(hit)/float64(total))
	}
	t.AddRow("aggregate-event recall (true shift ≥ 20%)", r.EventHits, len(r.Events), rate(r.EventHits, len(r.Events)))
	t.AddRow("top-1 attribution (single-driver events)", r.Top1Correct, r.Top1Total, rate(r.Top1Correct, r.Top1Total))
	t.AddRow("detection precision (flagged aggregates)", r.TruePositives, r.DetectedNodes, rate(r.TruePositives, r.DetectedNodes))
	t.AddRow("offset-pair recall (planted substitutions)", r.OffsetHits, len(r.OffsetTruths), rate(r.OffsetHits, len(r.OffsetTruths)))
	t.Render(w)

	t2 := &report.Table{
		Title:   "Aggregate-vs-flat scan cost (same corpus, exact prefix scans)",
		Headers: []string{"pass", "series scanned", "model fits"},
	}
	t2.AddRow("flat per-series scan", r.FlatSeries, r.FlatFits)
	t2.AddRow("surveillance (aggregates + drill-down)", r.AggregateNodes, r.AggregateFits+r.DrillFits)
	t2.Render(w)
	fmt.Fprintf(w, "  surveillance scans %d aggregate nodes (%d fits) and drills down only under detections (%d fits); %d offset pairs flagged\n",
		r.AggregateNodes, r.AggregateFits, r.DrillFits, r.OffsetsFound)
}
