package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// TestTracerNilSafe pins the disabled-tracer contract: a nil *Tracer accepts
// spans, reports zero length, and writes a valid empty trace.
func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Observe(SpanEvent{Name: "x"})
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer retained spans")
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if file.TraceEvents == nil {
		t.Fatal("empty trace must still carry a traceEvents array")
	}
}

// TestTracerWriteTraceStructure pins the Trace Event Format contract the
// -trace flag relies on: the output is a JSON object with a traceEvents
// array whose entries carry the fields Perfetto's JSON importer requires
// (name, ph, ts, pid, tid; dur for complete events), timestamps are relative
// to the earliest span, and args carry the deterministic span content.
func TestTracerWriteTraceStructure(t *testing.T) {
	tr := NewTracer()
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	tr.Observe(SpanEvent{
		Cat: "stage", Name: "stage/model", TID: LaneStage,
		Start: base, Duration: 5 * time.Millisecond, Month: -1,
	})
	tr.Observe(SpanEvent{
		Cat: "em", Name: "em/month", TID: LaneEM,
		Start: base.Add(time.Millisecond), Duration: time.Millisecond,
		Month: 3,
	})
	tr.Observe(SpanEvent{
		Cat: "detect", Name: "detect/series", TID: LaneDetect,
		Start: base.Add(2 * time.Millisecond), Duration: 2 * time.Millisecond,
		Month: -1, Series: "prescription:3/7", Detail: "cp=12", Err: "boom",
	})

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	var complete, meta int
	for _, ev := range file.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		if name == "" {
			t.Fatalf("event without name: %v", ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event without numeric pid: %v", ev)
		}
		if _, ok := ev["tid"].(float64); !ok {
			t.Fatalf("event without numeric tid: %v", ev)
		}
		switch ph {
		case "M":
			meta++
		case "X":
			complete++
			ts, ok := ev["ts"].(float64)
			if !ok || ts < 0 {
				t.Fatalf("complete event with bad ts: %v", ev)
			}
			if ev["dur"] == nil {
				t.Fatalf("complete event without dur: %v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ph)
		}
	}
	if complete != 3 {
		t.Fatalf("%d complete events, want 3", complete)
	}
	if meta != 3 { // one thread_name per lane
		t.Fatalf("%d metadata events, want 3", meta)
	}

	// The failed series span's args must carry the failure and detail.
	var found bool
	for _, ev := range file.TraceEvents {
		if ev["name"] == "detect/series" {
			args, _ := ev["args"].(map[string]any)
			if args["series"] != "prescription:3/7" || args["error"] != "boom" || args["detail"] != "cp=12" {
				t.Fatalf("detect span args = %v", args)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("detect/series span missing")
	}

	// Timestamps are relative: the earliest complete event sits at ts 0.
	minTS := -1.0
	for _, ev := range file.TraceEvents {
		if ev["ph"] == "X" {
			ts := ev["ts"].(float64)
			if minTS < 0 || ts < minTS {
				minTS = ts
			}
		}
	}
	if minTS != 0 {
		t.Fatalf("earliest span at ts %v, want 0", minTS)
	}
}

// TestTracerDeterministicOrder pins the content-order contract: spans
// recorded in different arrival orders serialize identically apart from
// timestamp values.
func TestTracerDeterministicOrder(t *testing.T) {
	spans := []SpanEvent{
		{Cat: "em", Name: "em/month", TID: LaneEM, Month: 2},
		{Cat: "em", Name: "em/month", TID: LaneEM, Month: 0},
		{Cat: "detect", Name: "detect/series", TID: LaneDetect, Month: -1, Series: "disease:1"},
		{Cat: "em", Name: "em/month", TID: LaneEM, Month: 1},
		{Cat: "stage", Name: "stage/model", TID: LaneStage, Month: -1},
	}
	a, b := NewTracer(), NewTracer()
	for _, sp := range spans {
		a.Observe(sp)
	}
	for i := len(spans) - 1; i >= 0; i-- {
		b.Observe(spans[i])
	}
	if !reflect.DeepEqual(a.Spans(), b.Spans()) {
		t.Fatalf("span order depends on arrival order:\n%v\n%v", a.Spans(), b.Spans())
	}
}

// TestGuardSpansMutesPanickingTracer pins the satellite contract: the first
// panic in a span sink disables it permanently — later spans are dropped, the
// panic is surfaced through onPanic exactly once, and the caller never sees
// it.
func TestGuardSpansMutesPanickingTracer(t *testing.T) {
	if GuardSpans(nil, nil) != nil {
		t.Fatal("GuardSpans(nil) must stay nil to keep the disabled path free")
	}
	calls, panics := 0, 0
	guarded := GuardSpans(func(SpanEvent) {
		calls++
		panic("tracer boom")
	}, func(r any) {
		panics++
		if r != "tracer boom" {
			t.Fatalf("onPanic got %v", r)
		}
	})
	for i := 0; i < 5; i++ {
		guarded(SpanEvent{Name: "s"}) // must not propagate the panic
	}
	if calls != 1 {
		t.Fatalf("panicking tracer called %d times, want 1 (muted after first panic)", calls)
	}
	if panics != 1 {
		t.Fatalf("onPanic called %d times, want 1", panics)
	}
}

// TestSequencerOrderWithFailedWorker pins the mid-sequence failure contract:
// when the worker for unit i reports a failure (emit still called via Done),
// later units still flush in serial order, and when a unit never reports
// (a permanent hole), emission stops at the hole without blocking Done.
func TestSequencerOrderWithFailedWorker(t *testing.T) {
	var got []int
	emit := func(i int) func() { return func() { got = append(got, i) } }

	seq := NewSequencer()
	seq.Done(2, emit(2)) // out of order
	seq.Done(0, emit(0))
	seq.Done(1, emit(1)) // "failed" unit still reports Done with its emit
	seq.Done(3, emit(3))
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("emit order %v, want %v", got, want)
	}

	// A permanent hole: unit 1 never reports; 2 and 3 must not flush, and
	// Done must not block.
	got = nil
	seq = NewSequencer()
	seq.Done(0, emit(0))
	seq.Done(2, emit(2))
	seq.Done(3, emit(3))
	if want := []int{0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("emit order with hole %v, want %v", got, want)
	}
}

// TestTracerFlowEvents pins the lineage-flow contract: spans sharing a
// nonzero Flow id emit Chrome Trace flow events ("s" at the first member,
// "t" in the middle, "f" with bp="e" at the last, ordered by wall-clock
// start), each bound to its span's pid/tid/ts so viewers attach the arrow to
// the right slice; single-member flows and Flow=0 spans emit none.
func TestTracerFlowEvents(t *testing.T) {
	tr := NewTracer()
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	// One three-step lineage (flow 8), recorded out of wall-clock order.
	tr.Observe(SpanEvent{
		Cat: "serve", Name: "serve/publish", TID: LaneServe,
		Start: base.Add(4 * time.Millisecond), Duration: time.Millisecond,
		Month: 7, Flow: 8,
	})
	tr.Observe(SpanEvent{
		Cat: "serve", Name: "serve/queue", TID: LaneServe,
		Start: base, Duration: time.Millisecond, Month: 7, Flow: 8,
	})
	tr.Observe(SpanEvent{
		Cat: "serve", Name: "serve/fold", TID: LaneServe,
		Start: base.Add(2 * time.Millisecond), Duration: time.Millisecond,
		Month: 7, Flow: 8,
	})
	// A single-member flow and a flowless span: no arrows.
	tr.Observe(SpanEvent{
		Cat: "serve", Name: "serve/queue", TID: LaneServe,
		Start: base.Add(6 * time.Millisecond), Duration: time.Millisecond,
		Month: 9, Flow: 10,
	})
	tr.Observe(SpanEvent{
		Cat: "stage", Name: "stage/model", TID: LaneStage,
		Start: base, Duration: 8 * time.Millisecond, Month: -1,
	})

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	type flowEv struct {
		ph string
		ts float64
		id float64
		bp any
	}
	var flows []flowEv
	tsByName := map[string]float64{}
	for _, ev := range file.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "s", "t", "f":
			id, ok := ev["id"].(float64)
			if !ok {
				t.Fatalf("flow event without id: %v", ev)
			}
			if ev["pid"] == nil || ev["tid"] == nil {
				t.Fatalf("flow event without pid/tid: %v", ev)
			}
			flows = append(flows, flowEv{ph: ph, ts: ev["ts"].(float64), id: id, bp: ev["bp"]})
		case "X":
			if args, _ := ev["args"].(map[string]any); args["month"] == float64(7) {
				tsByName[ev["name"].(string)] = ev["ts"].(float64)
			}
		}
	}
	if len(flows) != 3 {
		t.Fatalf("%d flow events, want 3 (single-member and flowless spans emit none): %+v", len(flows), flows)
	}
	// Wall-clock order within the flow: s at queue, t at fold, f at publish.
	want := []struct {
		ph   string
		name string
	}{{"s", "serve/queue"}, {"t", "serve/fold"}, {"f", "serve/publish"}}
	for _, fv := range flows {
		if fv.id != 8 {
			t.Fatalf("flow id = %v, want 8", fv.id)
		}
	}
	for _, wv := range want {
		var match *flowEv
		for i := range flows {
			if flows[i].ts == tsByName[wv.name] {
				match = &flows[i]
			}
		}
		if match == nil || match.ph != wv.ph {
			t.Fatalf("no %q flow event at %s (ts %v); flows %+v", wv.ph, wv.name, tsByName[wv.name], flows)
		}
		if wv.ph == "f" && match.bp != "e" {
			t.Fatalf("terminating flow event missing bp=e: %+v", *match)
		}
	}
}
