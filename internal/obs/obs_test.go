package obs

import (
	"bytes"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", 1, 2)
	tm := r.Timer("x")
	if c != nil || g != nil || h != nil || tm != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// None of these may panic.
	c.Add(3)
	c.Inc()
	g.Set(9)
	h.Observe(1.5)
	tm.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || tm.Total() != 0 || tm.Count() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Timings) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestNilHandleZeroAlloc(t *testing.T) {
	var c *Counter
	var h *Histogram
	var tm *Timer
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Observe(1)
		tm.Observe(1)
	})
	if allocs != 0 {
		t.Fatalf("nil-handle instrumentation allocated %v/op", allocs)
	}
	r := NewRegistry()
	ec := r.Counter("c")
	eh := r.Histogram("h", 1, 10, 100)
	allocs = testing.AllocsPerRun(1000, func() {
		ec.Add(1)
		eh.Observe(5)
	})
	if allocs != 0 {
		t.Fatalf("enabled counter/histogram writes allocated %v/op", allocs)
	}
}

func TestRegistryHandlesAreStable(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name must return the same counter")
	}
	if r.Histogram("h", 1, 2) != r.Histogram("h") {
		t.Fatal("same name must return the same histogram regardless of bounds")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("iters", 2, 5, 10)
	for _, v := range []float64{1, 2, 3, 7, 50} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["iters"]
	if s.Count != 5 || s.Sum != 63 || s.Min != 1 || s.Max != 50 {
		t.Fatalf("bad summary: %+v", s)
	}
	// Cumulative: ≤2 → {1,2}, ≤5 → +{3}, ≤10 → +{7}, +Inf → +{50}.
	want := []int64{2, 3, 4, 5}
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d: got %d want %d (%+v)", i, b.Count, want[i], s.Buckets)
		}
	}
}

func TestSnapshotDeterministicJSON(t *testing.T) {
	build := func(order []int) Snapshot {
		r := NewRegistry()
		for _, i := range order {
			name := string(rune('a' + i))
			r.Counter("count/" + name).Add(int64(i))
			r.Histogram("hist/"+name, 1, 2).Observe(float64(i))
		}
		r.Timer("time/x").Observe(time.Duration(rand.Int63n(1e9)))
		return r.Snapshot()
	}
	var b1, b2 bytes.Buffer
	if err := build([]int{0, 1, 2, 3}).Deterministic().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build([]int{3, 1, 0, 2}).Deterministic().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("deterministic snapshots differ:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	if strings.Contains(b1.String(), "timings") {
		t.Fatal("Deterministic() must strip timings")
	}
	if !strings.Contains(b1.String(), `"+Inf"`) {
		t.Fatal("overflow bucket bound must serialize as \"+Inf\"")
	}
}

func TestConcurrentCountsAreExact(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("h", 10, 100)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(2)
				h.Observe(float64(i % 150))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Fatalf("counter = %d, want 16000", c.Value())
	}
	if s := r.Snapshot().Histograms["h"]; s.Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", s.Count)
	}
}

func TestSequencerSerialOrder(t *testing.T) {
	const n = 200
	seq := NewSequencer()
	var mu sync.Mutex
	var got []int
	perm := rand.Perm(n)
	var wg sync.WaitGroup
	for _, i := range perm {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seq.Done(i, func() {
				mu.Lock()
				got = append(got, i)
				mu.Unlock()
			})
		}(i)
	}
	wg.Wait()
	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("event %d delivered out of order (got index %d)", i, v)
		}
	}
}

func TestSequencerHoleNeverBlocks(t *testing.T) {
	seq := NewSequencer()
	fired := 0
	seq.Done(0, func() { fired++ })
	// Index 1 never reports; later indices must neither block nor fire.
	done := make(chan struct{})
	go func() {
		seq.Done(2, func() { fired++ })
		seq.Done(3, func() { fired++ })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Done blocked on a hole")
	}
	if fired != 1 {
		t.Fatalf("events past the hole fired (%d)", fired)
	}
}

func TestGuardRecoversPanic(t *testing.T) {
	if Guard(nil, nil) != nil {
		t.Fatal("Guard(nil) must stay nil for the zero-cost disabled path")
	}
	var panics []any
	calls := 0
	g := Guard(func(e Event) {
		calls++
		if calls == 2 {
			panic("observer bug")
		}
	}, func(r any) { panics = append(panics, r) })
	g(Event{Kind: StageStart})
	g(Event{Kind: StageEnd}) // panics
	g(Event{Kind: StageEnd}) // dropped
	g(Event{Kind: StageEnd}) // dropped
	if calls != 2 {
		t.Fatalf("callback ran %d times, want 2 (disabled after panic)", calls)
	}
	if len(panics) != 1 || panics[0] != "observer bug" {
		t.Fatalf("onPanic saw %v", panics)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Kind: MonthFitted, Stage: "model", Month: 4, Done: 5, Total: 36}
	if !strings.Contains(e.String(), "month 4") {
		t.Fatalf("unhelpful event string %q", e)
	}
	e = Event{Kind: SeriesDone, Stage: "detect", Series: "medicine:3", Err: "boom"}
	if !strings.Contains(e.String(), "medicine:3") || !strings.Contains(e.String(), "boom") {
		t.Fatalf("unhelpful event string %q", e)
	}
	for _, k := range []EventKind{StageStart, StageEnd, MonthFitted, SeriesDone} {
		if k.String() == "" {
			t.Fatal("kind without a name")
		}
	}
}
