package obs

import (
	"context"
	"io"
	"log/slog"
)

// Logger is the serving plane's nil-safe structured logging handle, a thin
// wrapper over log/slog that extends the obs disabled-means-free contract to
// logs: every method on a nil *Logger is a no-op, and With/WithRequest/
// WithMonth on a nil *Logger return nil, so instrumented code threads one
// pointer through and logging costs nothing when no sink is configured.
//
// The one caveat variadic attributes impose: building a non-empty
// ...slog.Attr argument list allocates at the call site whether or not the
// receiver is nil (the compiler cannot see through the nil check). Bare
// calls — no attrs — are free on a nil logger; calls that carry attrs on a
// path that must stay allocation-free guard with Enabled():
//
//	if log.Enabled() {
//		log.Info("fold committed", slog.Int("month", m))
//	}
//
// Field-name conventions the serving plane relies on: "request_id" is the
// correlated per-request id (WithRequest), "month" is the ingested month
// index (WithMonth). Access logs, lineage records, and trace span details
// carry the same request id, which is what makes a request reconstructable
// across all three.
type Logger struct {
	s *slog.Logger
}

// NewLogger wraps a slog handler. A nil handler returns a nil (disabled)
// logger.
func NewLogger(h slog.Handler) *Logger {
	if h == nil {
		return nil
	}
	return &Logger{s: slog.New(h)}
}

// NewTextLogger returns a logger writing logfmt-style text lines to w at the
// given minimum level.
func NewTextLogger(w io.Writer, level slog.Level) *Logger {
	return NewLogger(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// NewJSONLogger returns a logger writing one JSON object per line to w at
// the given minimum level.
func NewJSONLogger(w io.Writer, level slog.Level) *Logger {
	return NewLogger(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// Enabled reports whether the logger has a sink. Instrumented code on
// allocation-sensitive paths guards attr-bearing calls with it.
func (l *Logger) Enabled() bool { return l != nil }

// With returns a logger whose records carry the given attributes (nil on a
// nil receiver, keeping the disabled path free).
func (l *Logger) With(attrs ...slog.Attr) *Logger {
	if l == nil {
		return nil
	}
	args := make([]any, len(attrs))
	for i, a := range attrs {
		args[i] = a
	}
	return &Logger{s: l.s.With(args...)}
}

// WithRequest returns a logger stamping the correlated request id on every
// record (field "request_id"; nil on a nil receiver).
func (l *Logger) WithRequest(id string) *Logger {
	return l.With(slog.String("request_id", id))
}

// WithMonth returns a logger stamping the ingested month index on every
// record (field "month"; nil on a nil receiver).
func (l *Logger) WithMonth(m int) *Logger {
	return l.With(slog.Int("month", m))
}

// Debug logs at debug level (no-op on a nil receiver).
func (l *Logger) Debug(msg string, attrs ...slog.Attr) {
	if l != nil {
		l.s.LogAttrs(context.Background(), slog.LevelDebug, msg, attrs...)
	}
}

// Info logs at info level (no-op on a nil receiver).
func (l *Logger) Info(msg string, attrs ...slog.Attr) {
	if l != nil {
		l.s.LogAttrs(context.Background(), slog.LevelInfo, msg, attrs...)
	}
}

// Warn logs at warn level (no-op on a nil receiver).
func (l *Logger) Warn(msg string, attrs ...slog.Attr) {
	if l != nil {
		l.s.LogAttrs(context.Background(), slog.LevelWarn, msg, attrs...)
	}
}

// Error logs at error level (no-op on a nil receiver).
func (l *Logger) Error(msg string, attrs ...slog.Attr) {
	if l != nil {
		l.s.LogAttrs(context.Background(), slog.LevelError, msg, attrs...)
	}
}
