package obs

// Labeled metric vectors: families of Counters, Gauges, and Histograms
// indexed by a small fixed set of label values ("http_requests_total" by
// route/method/status). They extend the registry's contracts unchanged:
//
//   - Disabled means free. A nil Registry returns nil vectors, and every
//     method on a nil vector is a no-op returning a nil child handle — so
//     instrumented code resolves a vector once and calls With on every
//     request without a single allocation when observability is off.
//   - Deterministic snapshots. Children are keyed by their label values;
//     snapshots render each family's series in sorted label order, so two
//     snapshots of the same state are byte-identical documents.
//   - Safe under -race. Child lookup is mutex-guarded; child mutation is
//     the atomic Counter/Gauge/Histogram machinery.
//
// Label sets are meant to stay small and bounded (routes, methods, status
// codes) — every distinct label combination is one live child, and nothing
// expires them. Callers bound cardinality (e.g. the HTTP middleware
// normalizes unknown paths to one "other" route) rather than the registry.

import (
	"sort"
	"strings"
	"sync"
)

// labelKey joins label values into a map key. Values are joined with 0xFF,
// a byte that cannot appear in UTF-8 text, so distinct value tuples never
// collide.
func labelKey(values []string) string {
	return strings.Join(values, "\xff")
}

// CounterVec is a family of Counters indexed by label values. A nil
// CounterVec hands out nil Counters, which discard writes.
type CounterVec struct {
	labels   []string
	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for the given label values, creating it on
// first use (nil on a nil vector or a label-arity mismatch).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil || len(values) != len(v.labels) {
		return nil
	}
	k := labelKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[k]
	if !ok {
		c = &Counter{}
		v.children[k] = c
	}
	return c
}

// GaugeVec is a family of Gauges indexed by label values. A nil GaugeVec
// hands out nil Gauges, which discard writes.
type GaugeVec struct {
	labels   []string
	mu       sync.Mutex
	children map[string]*Gauge
}

// With returns the child gauge for the given label values, creating it on
// first use (nil on a nil vector or a label-arity mismatch).
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil || len(values) != len(v.labels) {
		return nil
	}
	k := labelKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.children[k]
	if !ok {
		g = &Gauge{}
		v.children[k] = g
	}
	return g
}

// HistogramVec is a family of Histograms indexed by label values, sharing
// one set of upper bounds. A nil HistogramVec hands out nil Histograms,
// which discard observations.
type HistogramVec struct {
	labels   []string
	bounds   []float64
	mu       sync.Mutex
	children map[string]*Histogram
}

// With returns the child histogram for the given label values, creating it
// on first use (nil on a nil vector or a label-arity mismatch).
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil || len(values) != len(v.labels) {
		return nil
	}
	k := labelKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[k]
	if !ok {
		h = &Histogram{bounds: v.bounds, counts: make([]int64, len(v.bounds)+1)}
		v.children[k] = h
	}
	return h
}

// CounterVec returns the named counter family with the given label names,
// creating it on first use (nil on a nil registry). Later calls return the
// existing family regardless of label names.
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counterVecs == nil {
		r.counterVecs = make(map[string]*CounterVec)
	}
	v, ok := r.counterVecs[name]
	if !ok {
		v = &CounterVec{labels: append([]string(nil), labels...), children: make(map[string]*Counter)}
		r.counterVecs[name] = v
	}
	return v
}

// GaugeVec returns the named gauge family with the given label names,
// creating it on first use (nil on a nil registry).
func (r *Registry) GaugeVec(name string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gaugeVecs == nil {
		r.gaugeVecs = make(map[string]*GaugeVec)
	}
	v, ok := r.gaugeVecs[name]
	if !ok {
		v = &GaugeVec{labels: append([]string(nil), labels...), children: make(map[string]*Gauge)}
		r.gaugeVecs[name] = v
	}
	return v
}

// HistogramVec returns the named histogram family with the given ascending
// upper bounds and label names, creating it on first use (nil on a nil
// registry).
func (r *Registry) HistogramVec(name string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histVecs == nil {
		r.histVecs = make(map[string]*HistogramVec)
	}
	v, ok := r.histVecs[name]
	if !ok {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		v = &HistogramVec{labels: append([]string(nil), labels...), bounds: b, children: make(map[string]*Histogram)}
		r.histVecs[name] = v
	}
	return v
}

// LabeledValue is one child of a labeled counter or gauge family in a
// snapshot: the label values (in the family's label-name order) and the
// child's value.
type LabeledValue struct {
	Labels []string `json:"labels"`
	Value  int64    `json:"value"`
}

// LabeledHistogram is one child of a labeled histogram family in a snapshot.
type LabeledHistogram struct {
	Labels []string `json:"labels"`
	HistogramSnapshot
}

// VecSnapshot is a labeled counter or gauge family at snapshot time, its
// children sorted by label values so the snapshot is deterministic.
type VecSnapshot struct {
	LabelNames []string       `json:"label_names"`
	Values     []LabeledValue `json:"values"`
}

// HistVecSnapshot is a labeled histogram family at snapshot time.
type HistVecSnapshot struct {
	LabelNames []string           `json:"label_names"`
	Values     []LabeledHistogram `json:"values"`
}

// snapshotVecs copies the labeled families under the registry lock; the
// caller holds r.mu.
func (r *Registry) snapshotVecs(s *Snapshot) {
	for name, v := range r.counterVecs {
		vs := VecSnapshot{LabelNames: append([]string(nil), v.labels...)}
		v.mu.Lock()
		for k, c := range v.children {
			vs.Values = append(vs.Values, LabeledValue{Labels: strings.Split(k, "\xff"), Value: c.Value()})
		}
		v.mu.Unlock()
		sortLabeled(vs.Values, func(lv LabeledValue) []string { return lv.Labels })
		s.CounterVecs[name] = vs
	}
	for name, v := range r.gaugeVecs {
		vs := VecSnapshot{LabelNames: append([]string(nil), v.labels...)}
		v.mu.Lock()
		for k, g := range v.children {
			vs.Values = append(vs.Values, LabeledValue{Labels: strings.Split(k, "\xff"), Value: g.Value()})
		}
		v.mu.Unlock()
		sortLabeled(vs.Values, func(lv LabeledValue) []string { return lv.Labels })
		s.GaugeVecs[name] = vs
	}
	for name, v := range r.histVecs {
		vs := HistVecSnapshot{LabelNames: append([]string(nil), v.labels...)}
		v.mu.Lock()
		for k, h := range v.children {
			vs.Values = append(vs.Values, LabeledHistogram{
				Labels:            strings.Split(k, "\xff"),
				HistogramSnapshot: h.snapshot(),
			})
		}
		v.mu.Unlock()
		sortLabeled(vs.Values, func(lh LabeledHistogram) []string { return lh.Labels })
		s.HistogramVecs[name] = vs
	}
}

// sortLabeled orders a family's children lexicographically by label values.
func sortLabeled[T any](items []T, labels func(T) []string) {
	sort.Slice(items, func(a, b int) bool {
		la, lb := labels(items[a]), labels(items[b])
		for i := range la {
			if i >= len(lb) {
				return false
			}
			if la[i] != lb[i] {
				return la[i] < lb[i]
			}
		}
		return len(la) < len(lb)
	})
}
