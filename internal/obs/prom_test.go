package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promTestRegistry builds a registry exercising every metric family plus the
// name characters that need sanitizing.
func promTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("em/months_fitted").Add(12)
	r.Counter("scan/fits").Add(345)
	r.Counter("pipeline/failures/detect").Inc()
	r.Gauge("faultpoint/trips").Set(2)
	h := r.Histogram("em/iterations_per_month", 1, 2, 5, 10, 20, 50)
	for _, v := range []float64{1, 3, 3, 7, 50, 60} {
		h.Observe(v)
	}
	r.Timer("time/stage/model").Observe(1500 * time.Millisecond)
	return r
}

// Prometheus text exposition format grammar, per the format spec
// (version 0.0.4).
var (
	promMetricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	promSample     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (NaN|[+-]Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)( [0-9]+)?$`)
	promLabelPair  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// validatePromExposition parses a text exposition document strictly enough
// that anything it accepts a Prometheus scraper accepts too: legal metric
// and label names, HELP/TYPE lines preceding their family's samples, sample
// values parseable as Go floats, histogram bucket/count consistency, and a
// trailing newline. It returns the per-family sample counts.
func validatePromExposition(t *testing.T, doc string) map[string][]string {
	t.Helper()
	if doc == "" {
		t.Fatal("empty exposition")
	}
	if !strings.HasSuffix(doc, "\n") {
		t.Fatal("exposition must end with a newline")
	}
	typed := map[string]string{}     // family -> type
	helped := map[string]bool{}      // family -> HELP seen
	samples := map[string][]string{} // family -> sample lines
	seenSample := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimSuffix(doc, "\n"), "\n") {
		switch {
		case line == "":
			t.Fatalf("line %d: blank line", ln+1)
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !promMetricName.MatchString(name) {
				t.Fatalf("line %d: bad HELP line %q", ln+1, line)
			}
			if helped[name] {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			helped[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.Fields(rest)
			if len(parts) != 2 || !promMetricName.MatchString(parts[0]) {
				t.Fatalf("line %d: bad TYPE line %q", ln+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, parts[1])
			}
			if _, dup := typed[parts[0]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, parts[0])
			}
			if seenSample[parts[0]] {
				t.Fatalf("line %d: TYPE for %s after its samples", ln+1, parts[0])
			}
			typed[parts[0]] = parts[1]
		case strings.HasPrefix(line, "#"):
			// comment: fine
		default:
			m := promSample.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: unparseable sample %q", ln+1, line)
			}
			name, labels := m[1], m[3]
			if labels != "" {
				for _, pair := range strings.Split(labels, ",") {
					lm := promLabelPair.FindStringSubmatch(pair)
					if lm == nil {
						t.Fatalf("line %d: bad label pair %q", ln+1, pair)
					}
					if !promLabelName.MatchString(lm[1]) {
						t.Fatalf("line %d: illegal label name %q", ln+1, lm[1])
					}
				}
			}
			if v := m[4]; v != "NaN" && v != "+Inf" && v != "-Inf" {
				if _, err := strconv.ParseFloat(v, 64); err != nil {
					t.Fatalf("line %d: bad sample value %q", ln+1, v)
				}
			}
			// Resolve the family: histogram/summary samples use suffixed
			// names.
			family := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suffix)
				if base != name {
					if ty := typed[base]; ty == "histogram" || ty == "summary" {
						family = base
						break
					}
				}
			}
			if _, ok := typed[family]; !ok {
				t.Fatalf("line %d: sample %q without a preceding TYPE", ln+1, name)
			}
			seenSample[family] = true
			samples[family] = append(samples[family], line)
		}
	}
	for fam := range typed {
		if !helped[fam] {
			t.Fatalf("family %s has TYPE but no HELP", fam)
		}
		if len(samples[fam]) == 0 {
			t.Fatalf("family %s has no samples", fam)
		}
	}
	return samples
}

// TestWritePrometheusExpositionFormat pins the acceptance criterion: the
// -prom output passes a strict exposition-format validation, every registry
// name sanitizes to a legal metric name, and histogram buckets stay
// cumulative and consistent.
func TestWritePrometheusExpositionFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := promTestRegistry().Snapshot().WritePrometheus(&buf, "mictrend"); err != nil {
		t.Fatal(err)
	}
	samples := validatePromExposition(t, buf.String())

	for _, fam := range []string{
		"mictrend_em_months_fitted_total",
		"mictrend_scan_fits_total",
		"mictrend_pipeline_failures_detect_total",
		"mictrend_faultpoint_trips",
		"mictrend_em_iterations_per_month",
		"mictrend_time_stage_model_seconds",
	} {
		if len(samples[fam]) == 0 {
			t.Errorf("family %s missing from exposition:\n%s", fam, buf.String())
		}
	}

	// Histogram consistency: bucket counts are cumulative, the +Inf bucket
	// equals _count, and _sum matches the observations.
	var lastCum, infCount, count int64
	var sum float64
	sawInf := false
	for _, line := range samples["mictrend_em_iterations_per_month"] {
		switch {
		case strings.Contains(line, "_bucket{"):
			var c int64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &c); err != nil {
				t.Fatal(err)
			}
			if c < lastCum {
				t.Fatalf("bucket counts not cumulative: %q after %d", line, lastCum)
			}
			lastCum = c
			if strings.Contains(line, `le="+Inf"`) {
				sawInf, infCount = true, c
			}
		case strings.Contains(line, "_sum "):
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &sum)
		case strings.Contains(line, "_count "):
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &count)
		}
	}
	if !sawInf {
		t.Fatal("histogram lacks a +Inf bucket")
	}
	if infCount != count || count != 6 {
		t.Fatalf("+Inf bucket %d, _count %d, want both 6", infCount, count)
	}
	if sum != 124 {
		t.Fatalf("_sum = %v, want 124", sum)
	}

	// Determinism: two expositions of the same deterministic snapshot are
	// byte-identical.
	var buf2 bytes.Buffer
	if err := promTestRegistry().Snapshot().WritePrometheus(&buf2, "mictrend"); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("exposition not deterministic")
	}
}

// TestPromNameSanitization pins the name mapping for the characters the
// registry actually uses plus the pathological ones.
func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"em/months_fitted": "em_months_fitted",
		"time/stage/model": "time_stage_model",
		"9lives":           "_9lives",
		"a-b.c d":          "a_b_c_d",
		"ok_name:sub":      "ok_name:sub",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
		if !promMetricName.MatchString(promName(in)) {
			t.Errorf("promName(%q) = %q is not a legal metric name", in, promName(in))
		}
	}
}

// TestPrometheusHandler pins the HTTP bridge: content type and a valid body,
// including for a nil registry.
func TestPrometheusHandler(t *testing.T) {
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	promTestRegistry().PrometheusHandler("mictrend").ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	validatePromExposition(t, rec.Body.String())

	var nilReg *Registry
	rec = httptest.NewRecorder()
	nilReg.PrometheusHandler("mictrend").ServeHTTP(rec, req)
	if rec.Body.Len() != 0 && !strings.HasSuffix(rec.Body.String(), "\n") {
		t.Fatalf("nil registry exposition malformed: %q", rec.Body.String())
	}
}

// TestPublishExpvar pins the /debug/vars bridge: the published variable
// renders the live snapshot as valid JSON.
func TestPublishExpvar(t *testing.T) {
	r := promTestRegistry()
	const name = "mictrend_test_publish_expvar"
	r.PublishExpvar(name)
	v := expvar.Get(name)
	if v == nil {
		t.Fatal("expvar not published")
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar value is not a JSON snapshot: %v", err)
	}
	if snap.Counters["em/months_fitted"] != 12 {
		t.Fatalf("snapshot counters = %v", snap.Counters)
	}
	// Live: later updates show up on the next read.
	r.Counter("em/months_fitted").Add(1)
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["em/months_fitted"] != 13 {
		t.Fatalf("expvar snapshot is not live: %v", snap.Counters["em/months_fitted"])
	}
}

// TestPromFloat pins the special-value rendering.
func TestPromFloat(t *testing.T) {
	if promFloat(math.Inf(1)) != "+Inf" || promFloat(math.Inf(-1)) != "-Inf" || promFloat(math.NaN()) != "NaN" {
		t.Fatal("special float rendering broken")
	}
	if promFloat(1.5) != "1.5" || promFloat(0) != "0" {
		t.Fatalf("float rendering: %q %q", promFloat(1.5), promFloat(0))
	}
}

// promLabeledTestRegistry builds a registry exercising the labeled families,
// including label values that need exposition escaping (backslash, double
// quote, newline) and a label name that needs sanitizing.
func promLabeledTestRegistry() *Registry {
	r := NewRegistry()
	cv := r.CounterVec("http/requests", "route", "method", "code")
	cv.With("/v1/epoch", "GET", "200").Add(41)
	cv.With("/v1/ingest", "POST", "429").Add(2)
	cv.With("other", "GET", "404").Inc()
	cv.With(`back\slash"quote`+"\nnewline", "GET", "200").Inc()
	r.GaugeVec("http/in_flight_by_route", "bad-label.name").With("/v1/series").Set(3)
	hv := r.HistogramVec("http/request_duration_seconds", []float64{0.005, 0.05, 0.5}, "route")
	for _, v := range []float64{0.001, 0.02, 0.3, 2} {
		hv.With("/v1/epoch").Observe(v)
	}
	hv.With("/v1/ingest").Observe(0.04)
	return r
}

// TestWritePrometheusLabeledExposition extends the conformance check to
// labeled families: the exposition with CounterVec/GaugeVec/HistogramVec
// samples passes the same strict parser, series within a family come out in
// stable sorted-label order, label names sanitize, and escaped label values
// survive the round trip.
func TestWritePrometheusLabeledExposition(t *testing.T) {
	var buf bytes.Buffer
	if err := promLabeledTestRegistry().Snapshot().WritePrometheus(&buf, "mictrend"); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	samples := validatePromExposition(t, doc)

	reqs := samples["mictrend_http_requests_total"]
	if len(reqs) != 4 {
		t.Fatalf("http_requests_total has %d series, want 4:\n%v", len(reqs), reqs)
	}
	// Stable ordering: series sorted by label values ("/v1/epoch" < "/v1/ingest"
	// < "back\..." < "other").
	wantOrder := []string{`route="/v1/epoch"`, `route="/v1/ingest"`, `route="back`, `route="other"`}
	for i, line := range reqs {
		if !strings.Contains(line, wantOrder[i]) {
			t.Fatalf("series %d = %q, want it to carry %q", i, line, wantOrder[i])
		}
	}
	// Escaping: the raw backslash/quote/newline value renders escaped.
	if !strings.Contains(doc, `route="back\\slash\"quote\nnewline"`) {
		t.Fatalf("escaped label value missing:\n%s", doc)
	}
	// Label name sanitization.
	if !strings.Contains(doc, `bad_label_name="/v1/series"`) {
		t.Fatalf("label name not sanitized:\n%s", doc)
	}

	// Labeled histogram: per-series cumulative buckets, +Inf == _count.
	var epochInf, epochCount int64
	for _, line := range samples["mictrend_http_request_duration_seconds"] {
		if !strings.Contains(line, `route="/v1/epoch"`) {
			continue
		}
		val := line[strings.LastIndex(line, " ")+1:]
		switch {
		case strings.Contains(line, `le="+Inf"`):
			fmt.Sscanf(val, "%d", &epochInf)
		case strings.Contains(line, "_count{"):
			fmt.Sscanf(val, "%d", &epochCount)
		}
	}
	if epochInf != 4 || epochCount != 4 {
		t.Fatalf("+Inf bucket %d, _count %d, want both 4", epochInf, epochCount)
	}

	// Determinism: two expositions of independently built registries are
	// byte-identical.
	var buf2 bytes.Buffer
	if err := promLabeledTestRegistry().Snapshot().WritePrometheus(&buf2, "mictrend"); err != nil {
		t.Fatal(err)
	}
	if doc != buf2.String() {
		t.Fatal("labeled exposition not deterministic")
	}
}
