package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

// TestLoggerNilSafety pins the disabled path: a nil logger no-ops every
// method, derived loggers stay nil, and Enabled reports false.
func TestLoggerNilSafety(t *testing.T) {
	var l *Logger
	if l.Enabled() {
		t.Fatal("nil logger reports Enabled")
	}
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	if l.With(slog.String("k", "v")) != nil {
		t.Fatal("With on nil logger must return nil")
	}
	if l.WithRequest("r1") != nil || l.WithMonth(3) != nil {
		t.Fatal("WithRequest/WithMonth on nil logger must return nil")
	}
	if NewLogger(nil) != nil {
		t.Fatal("NewLogger(nil handler) must return nil")
	}
}

// TestLoggerJSONFields pins the field conventions: WithRequest stamps
// "request_id", WithMonth stamps "month", and per-call attrs land alongside.
func TestLoggerJSONFields(t *testing.T) {
	var buf bytes.Buffer
	l := NewJSONLogger(&buf, slog.LevelInfo)
	if !l.Enabled() {
		t.Fatal("configured logger reports disabled")
	}
	l.WithRequest("req-42").WithMonth(7).Info("fold committed", slog.Int("queue", 2))

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not one JSON object per line: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "fold committed" {
		t.Fatalf("msg = %v", rec["msg"])
	}
	if rec["request_id"] != "req-42" {
		t.Fatalf("request_id = %v", rec["request_id"])
	}
	if rec["month"] != float64(7) {
		t.Fatalf("month = %v", rec["month"])
	}
	if rec["queue"] != float64(2) {
		t.Fatalf("queue = %v", rec["queue"])
	}
	if rec["level"] != "INFO" {
		t.Fatalf("level = %v", rec["level"])
	}
}

// TestLoggerLevelsAndText pins the level floor and the text sink shape.
func TestLoggerLevelsAndText(t *testing.T) {
	var buf bytes.Buffer
	l := NewTextLogger(&buf, slog.LevelWarn)
	l.Info("below floor")
	l.Warn("shed", slog.String("reason", "queue full"))
	out := buf.String()
	if strings.Contains(out, "below floor") {
		t.Fatalf("info record emitted below warn floor:\n%s", out)
	}
	if !strings.Contains(out, "level=WARN") || !strings.Contains(out, "msg=shed") {
		t.Fatalf("text sink missing level/msg:\n%s", out)
	}
	if !strings.Contains(out, `reason="queue full"`) {
		t.Fatalf("text sink missing quoted attr:\n%s", out)
	}
}
