package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for a Registry snapshot,
// so a run's metrics can be scraped without adding a client-library
// dependency. The mapping:
//
//   - counters  → "<ns>_<name>_total" counter samples
//   - gauges    → "<ns>_<name>" gauge samples
//   - histograms→ classic Prometheus histograms: cumulative
//     "<ns>_<name>_bucket{le="…"}" samples plus _sum and _count
//   - timers    → "<ns>_<name>_seconds" summaries (_sum in seconds, _count)
//
// Slashes and other characters outside [a-zA-Z0-9_:] in metric names are
// rewritten to underscores, so "em/months_fitted" scrapes as
// "mictrend_em_months_fitted_total".

// promName sanitizes a registry metric name into a legal Prometheus metric
// name component: every byte outside [a-zA-Z0-9_:] becomes '_', and a leading
// digit is prefixed with '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a sample value the exposition format accepts ("+Inf",
// "-Inf", "NaN", or a Go float literal).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

// promEscapeHelp escapes a HELP text per the exposition format (backslash and
// newline only; HELP text is not quoted).
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promEscapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline (label values are double-quoted).
func promEscapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promLabels renders a label set as `{name="value",…}`, sanitizing names and
// escaping values. extra appends one more pair (the histogram "le" bound).
func promLabels(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(promName(n))
		b.WriteString(`="`)
		b.WriteString(promEscapeLabel(v))
		b.WriteString(`"`)
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(promEscapeLabel(extraValue))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format under the given namespace prefix (e.g. "mictrend"). Metric families
// are emitted in sorted name order, each with its HELP and TYPE line, so the
// output is deterministic for a deterministic snapshot (timer families vary
// with wall-clock, as in WriteJSON). The output ends with a newline, as the
// format requires.
func (s Snapshot) WritePrometheus(w io.Writer, namespace string) error {
	ns := promName(namespace)
	if ns != "" {
		ns += "_"
	}
	var b strings.Builder

	family := func(name, typ, help string) string {
		fmt.Fprintf(&b, "# HELP %s %s\n", name, promEscapeHelp(help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
		return name
	}

	for _, name := range sortedKeys(s.Counters) {
		fam := family(ns+promName(name)+"_total", "counter", "mictrend counter "+name)
		fmt.Fprintf(&b, "%s %d\n", fam, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fam := family(ns+promName(name), "gauge", "mictrend gauge "+name)
		fmt.Fprintf(&b, "%s %d\n", fam, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fam := family(ns+promName(name), "histogram", "mictrend histogram "+name)
		for _, bkt := range h.Buckets {
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", fam, promFloat(bkt.Le), bkt.Count)
		}
		fmt.Fprintf(&b, "%s_sum %s\n", fam, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", fam, h.Count)
	}
	for _, name := range sortedKeys(s.CounterVecs) {
		v := s.CounterVecs[name]
		fam := family(ns+promName(name)+"_total", "counter", "mictrend counter "+name)
		for _, lv := range v.Values {
			fmt.Fprintf(&b, "%s%s %d\n", fam, promLabels(v.LabelNames, lv.Labels, "", ""), lv.Value)
		}
	}
	for _, name := range sortedKeys(s.GaugeVecs) {
		v := s.GaugeVecs[name]
		fam := family(ns+promName(name), "gauge", "mictrend gauge "+name)
		for _, lv := range v.Values {
			fmt.Fprintf(&b, "%s%s %d\n", fam, promLabels(v.LabelNames, lv.Labels, "", ""), lv.Value)
		}
	}
	for _, name := range sortedKeys(s.HistogramVecs) {
		v := s.HistogramVecs[name]
		fam := family(ns+promName(name), "histogram", "mictrend histogram "+name)
		for _, lh := range v.Values {
			for _, bkt := range lh.Buckets {
				fmt.Fprintf(&b, "%s_bucket%s %d\n", fam,
					promLabels(v.LabelNames, lh.Labels, "le", promFloat(bkt.Le)), bkt.Count)
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", fam, promLabels(v.LabelNames, lh.Labels, "", ""), promFloat(lh.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", fam, promLabels(v.LabelNames, lh.Labels, "", ""), lh.Count)
		}
	}
	for _, name := range sortedKeys(s.Timings) {
		t := s.Timings[name]
		fam := family(ns+promName(name)+"_seconds", "summary", "mictrend timer "+name)
		fmt.Fprintf(&b, "%s_sum %s\n", fam, promFloat(float64(t.TotalNS)/1e9))
		fmt.Fprintf(&b, "%s_count %d\n", fam, t.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PrometheusHandler returns an http.Handler exposing the registry in the
// Prometheus text exposition format, for mounting at /metrics alongside a
// pprof server. Each scrape takes a fresh snapshot; a nil registry serves an
// empty (but valid) exposition.
func (r *Registry) PrometheusHandler(namespace string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Snapshot().WritePrometheus(w, namespace)
	})
}

// PublishExpvar publishes the registry under name in the process-global
// expvar namespace, so an HTTP server with the expvar handler (any server on
// http.DefaultServeMux, e.g. the pprof one) also serves the registry's live
// snapshot at /debug/vars for free. Each read takes a fresh snapshot.
// Expvar names are process-global and publishing the same name twice panics
// (expvar's contract), so call this once per process per name; a nil
// registry publishes empty snapshots.
func (r *Registry) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
