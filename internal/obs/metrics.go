// Package obs is the pipeline's zero-dependency observability layer: typed
// counters, gauges, histograms, and wall-clock timers collected in a
// Registry, plus a structured progress-event stream (events.go) the pipeline
// delivers to a user Observer.
//
// Design constraints, in order:
//
//  1. Disabled means free. Every handle type is nil-safe — methods on a nil
//     *Counter/*Gauge/*Histogram/*Timer are no-ops, and a nil *Registry
//     returns nil handles — so instrumented code holds one pointer per metric
//     and pays a nil check (no allocation, no branch into the metrics path)
//     when observability is off. Hot kernels (the Kalman likelihood filter,
//     the EM sweep) are not instrumented at all; instrumentation reads
//     aggregate statistics at stage boundaries instead.
//
//  2. Deterministic counts. Counter, Gauge, and Histogram values in a
//     pipeline run depend only on the work performed, never on worker
//     scheduling: all count-valued metrics are merged from per-unit shards
//     in serial order (see obs.Sequencer) or accumulated via commutative
//     atomic adds of exact integers, so a Snapshot is identical for any
//     -workers/-scan-workers split. Wall-clock Timers are inherently
//     nondeterministic and live in a separate Snapshot section
//     (Snapshot.Timings) that Deterministic() strips.
//
//  3. Safe under -race. All mutation is atomic or mutex-guarded; Snapshot
//     may be taken while workers are still writing.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; a nil Counter discards writes.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on a nil receiver).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins integer metric. The zero value is ready to use;
// a nil Gauge discards writes.
type Gauge struct {
	v atomic.Int64
}

// Set stores v (no-op on a nil receiver).
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta, which may be negative — the shape in-flight
// counts need (no-op on a nil receiver).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the stored value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates a distribution over fixed upper-bound buckets. A nil
// Histogram discards observations. Observing exact integers (iteration
// counts, fit counts) keeps Sum exact and therefore deterministic under
// concurrent accumulation; fractional observations may lose associativity in
// Sum's last bits.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []int64   // len(bounds)+1
	count  int64
	sum    float64
	min    float64
	max    float64
}

// Observe records v (no-op on a nil receiver).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// snapshot copies the histogram's state with cumulative bucket counts.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	hs := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		hs.Buckets = append(hs.Buckets, BucketCount{Le: b, Count: cum})
	}
	cum += h.counts[len(h.bounds)]
	hs.Buckets = append(hs.Buckets, BucketCount{Le: math.Inf(1), Count: cum})
	return hs
}

// Timer accumulates wall-clock durations. A nil Timer discards observations.
// Timers are the one nondeterministic metric family; snapshots report them
// separately so the deterministic sections stay comparable across runs.
type Timer struct {
	n  atomic.Int64
	ns atomic.Int64
}

// Observe adds one duration (no-op on a nil receiver).
func (t *Timer) Observe(d time.Duration) {
	if t != nil {
		t.n.Add(1)
		t.ns.Add(int64(d))
	}
}

// Total returns the accumulated duration (0 on a nil receiver).
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// Count returns how many durations were observed (0 on a nil receiver).
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.n.Load()
}

// Registry holds named metrics. A nil Registry returns nil handles from
// every accessor, so callers resolve handles once and instrument
// unconditionally. Accessors create metrics on first use and return the
// same handle for the same name afterwards; all methods are goroutine-safe.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	timers   map[string]*Timer

	// Labeled families (vec.go), allocated lazily so a registry that never
	// uses labels pays nothing for them.
	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	histVecs    map[string]*HistogramVec
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns the named counter, creating it on first use (nil on a nil
// registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending upper bounds on first use (nil on a nil registry). Later calls
// return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Timer returns the named timer, creating it on first use (nil on a nil
// registry).
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// BucketCount is one histogram bucket in a snapshot: the count of
// observations with value ≤ Le (Le is +Inf for the overflow bucket,
// serialized as the string "+Inf").
type BucketCount struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// MarshalJSON renders the +Inf bound as a string (JSON has no Inf literal).
func (b BucketCount) MarshalJSON() ([]byte, error) {
	type alias struct {
		Le    any   `json:"le"`
		Count int64 `json:"count"`
	}
	le := any(b.Le)
	if math.IsInf(b.Le, 1) {
		le = "+Inf"
	}
	return json.Marshal(alias{Le: le, Count: b.Count})
}

// UnmarshalJSON accepts both numeric bounds and the "+Inf" string form
// MarshalJSON emits, so snapshot JSON round-trips.
func (b *BucketCount) UnmarshalJSON(data []byte) error {
	type alias struct {
		Le    json.RawMessage `json:"le"`
		Count int64           `json:"count"`
	}
	var a alias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	b.Count = a.Count
	var s string
	if err := json.Unmarshal(a.Le, &s); err == nil {
		if s == "+Inf" {
			b.Le = math.Inf(1)
			return nil
		}
		return fmt.Errorf("obs: bucket bound %q is not a number or \"+Inf\"", s)
	}
	return json.Unmarshal(a.Le, &b.Le)
}

// HistogramSnapshot is a histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Min     float64       `json:"min"`
	Max     float64       `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// TimingSnapshot is a timer's state at snapshot time.
type TimingSnapshot struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	MeanNS  int64 `json:"mean_ns"`
}

// Snapshot is a point-in-time copy of a registry. The Counters, Gauges, and
// Histograms sections are deterministic for a deterministic workload; the
// Timings section is wall-clock and varies run to run (Deterministic strips
// it). The labeled-vector sections render each family's children in sorted
// label order, so two snapshots of the same state compare byte-identical;
// note that labeled families fed wall-clock values (the HTTP duration
// histograms) are deterministic in structure but not in content.
type Snapshot struct {
	Counters      map[string]int64             `json:"counters"`
	Gauges        map[string]int64             `json:"gauges"`
	Histograms    map[string]HistogramSnapshot `json:"histograms"`
	CounterVecs   map[string]VecSnapshot       `json:"counter_vecs,omitempty"`
	GaugeVecs     map[string]VecSnapshot       `json:"gauge_vecs,omitempty"`
	HistogramVecs map[string]HistVecSnapshot   `json:"histogram_vecs,omitempty"`
	Timings       map[string]TimingSnapshot    `json:"timings,omitempty"`
}

// Snapshot copies the registry's current state. Safe to call concurrently
// with metric updates; a nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
		Timings:    map[string]TimingSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	if len(r.counterVecs)+len(r.gaugeVecs)+len(r.histVecs) > 0 {
		s.CounterVecs = map[string]VecSnapshot{}
		s.GaugeVecs = map[string]VecSnapshot{}
		s.HistogramVecs = map[string]HistVecSnapshot{}
		r.snapshotVecs(&s)
	}
	for name, t := range r.timers {
		ts := TimingSnapshot{Count: t.Count(), TotalNS: int64(t.Total())}
		if ts.Count > 0 {
			ts.MeanNS = ts.TotalNS / ts.Count
		}
		s.Timings[name] = ts
	}
	return s
}

// Deterministic returns the snapshot without its wall-clock Timings section:
// the remainder is identical across runs and worker splits for a
// deterministic workload.
func (s Snapshot) Deterministic() Snapshot {
	s.Timings = nil
	return s
}

// WriteJSON renders the snapshot as indented JSON with lexically sorted keys
// (encoding/json sorts map keys), so two deterministic snapshots compare as
// byte-identical documents.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
