package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanEvent is one completed timed span of a pipeline run. Every field except
// Start and Duration is deterministic for a deterministic workload: the span
// set a run produces — names, categories, lanes, units, details, errors —
// depends only on the work performed, never on worker scheduling; only the
// wall-clock timestamps vary. Per-unit spans are emitted through the same
// Sequencer machinery as progress events, so their emission order is
// serial-equivalent too.
type SpanEvent struct {
	// Cat is the span's category lane ("stage", "em", "detect", "scan",
	// "ssm"), rendered as a separate track in trace viewers.
	Cat string
	// Name is the span name, e.g. "stage/model", "em/month", "detect/series",
	// "scan/shard".
	Name string
	// TID is the span's logical track id — a deterministic lane number, never
	// a goroutine id (goroutine ids would break worker-count invariance).
	TID int64
	// Start is the span's wall-clock start time.
	Start time.Time
	// Duration is the span's wall-clock length.
	Duration time.Duration
	// Month is the fitted month for per-month spans, -1 otherwise.
	Month int
	// Series identifies the span's series for per-series spans, e.g.
	// "prescription:3/7".
	Series string
	// Detail carries span-specific context, e.g. "cp=12" for a detection
	// with a change point or "shard 2 [16,24)" for a scan shard.
	Detail string
	// Err is non-empty when the span's unit degraded or failed; for pipeline
	// spans the same failure is recorded in Analysis.Failures.
	Err string
	// Flow correlates spans belonging to one logical unit of work across
	// lanes (e.g. one ingested month's queue→fold→checkpoint→WAL→publish
	// lineage). Spans sharing a nonzero Flow are tied together in the trace
	// by Chrome Trace flow events (rendered as arrows between slices); 0
	// means the span belongs to no flow.
	Flow int64
}

// SpanObserver receives completed spans. A nil SpanObserver disables span
// emission at zero cost: instrumented code checks the observer for nil before
// building the span, so the disabled path performs no clock reads and no
// allocations. Unlike Observer deliveries, SpanObserver calls may arrive from
// concurrent workers (per-fit and intra-scan spans are emitted where they
// complete); implementations must be goroutine-safe. Tracer.Observe is.
type SpanObserver func(SpanEvent)

// GuardSpans wraps cb with the same panic isolation Guard gives Observers:
// the first panic in cb invokes onPanic with the recovered value, permanently
// disables delivery, and subsequent spans are dropped — a broken span sink
// can cost its own trace but never a pipeline worker. A nil cb returns nil
// (the disabled path keeps its zero cost); a nil onPanic just disables
// silently.
func GuardSpans(cb SpanObserver, onPanic func(r any)) SpanObserver {
	if cb == nil {
		return nil
	}
	var disabled atomic.Bool
	return func(e SpanEvent) {
		if disabled.Load() {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				disabled.Store(true)
				if onPanic != nil {
					onPanic(r)
				}
			}
		}()
		cb(e)
	}
}

// Tracer collects SpanEvents and renders them as Chrome Trace Event Format
// JSON, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. The zero
// value is ready to use; a nil Tracer discards spans, so a caller can wire
// tracer.Observe unconditionally. All methods are goroutine-safe.
type Tracer struct {
	mu    sync.Mutex
	spans []SpanEvent
}

// NewTracer returns an empty span collector.
func NewTracer() *Tracer { return &Tracer{} }

// Observe records one span (no-op on a nil receiver). It is a SpanObserver.
func (t *Tracer) Observe(e SpanEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, e)
	t.mu.Unlock()
}

// Len returns the number of collected spans (0 on a nil receiver).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the collected spans in deterministic content order
// (category, name, lane, month, series, detail — wall-clock start only breaks
// exact duplicates), the order WriteTrace emits them in.
func (t *Tracer) Spans() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanEvent(nil), t.spans...)
	t.mu.Unlock()
	sortSpans(out)
	return out
}

// sortSpans orders spans by deterministic content so two traces of the same
// run differ only in their timestamp values, never in event order.
func sortSpans(spans []SpanEvent) {
	sort.SliceStable(spans, func(a, b int) bool {
		sa, sb := &spans[a], &spans[b]
		if sa.Cat != sb.Cat {
			return sa.Cat < sb.Cat
		}
		if sa.Name != sb.Name {
			return sa.Name < sb.Name
		}
		if sa.TID != sb.TID {
			return sa.TID < sb.TID
		}
		if sa.Month != sb.Month {
			return sa.Month < sb.Month
		}
		if sa.Series != sb.Series {
			return sa.Series < sb.Series
		}
		if sa.Detail != sb.Detail {
			return sa.Detail < sb.Detail
		}
		return sa.Start.Before(sb.Start)
	})
}

// traceEvent is one Chrome Trace Event Format entry. Complete events
// (ph "X") carry their duration inline; metadata events (ph "M") name the
// lanes. See the Trace Event Format spec (the format chrome://tracing and
// Perfetto consume).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	ID   int64          `json:"id,omitempty"` // flow id (ph "s"/"t"/"f")
	BP   string         `json:"bp,omitempty"` // binding point ("e" on ph "f")
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON Object Format variant of the Trace Event Format —
// the shape Perfetto's legacy JSON importer accepts.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// tracePID is the single logical process all spans belong to.
const tracePID = 1

// WriteTrace renders the collected spans as Chrome Trace Event Format JSON.
// Timestamps are microseconds relative to the earliest span, so traces of
// deterministic runs line up at t=0; events are emitted in deterministic
// content order (see Spans). A nil or empty tracer writes a valid empty
// trace. Lane-naming metadata events give each category its own named track.
// Spans sharing a nonzero Flow id additionally emit Chrome Trace flow
// events ("s"/"t"/"f" in wall-clock order within the flow), which viewers
// render as arrows connecting the flow's slices across lanes.
func (t *Tracer) WriteTrace(w io.Writer) error {
	spans := t.Spans()
	var t0 time.Time
	for i := range spans {
		if i == 0 || spans[i].Start.Before(t0) {
			t0 = spans[i].Start
		}
	}

	// Order each flow's member spans by wall-clock start (content order
	// breaking exact ties), so the arrows run queue → fold → … → publish.
	type flowPos struct{ pos, n int }
	flowOrder := map[*SpanEvent]flowPos{}
	{
		members := map[int64][]*SpanEvent{}
		for i := range spans {
			if spans[i].Flow != 0 {
				members[spans[i].Flow] = append(members[spans[i].Flow], &spans[i])
			}
		}
		for _, ms := range members {
			sort.SliceStable(ms, func(a, b int) bool { return ms[a].Start.Before(ms[b].Start) })
			for i, sp := range ms {
				flowOrder[sp] = flowPos{pos: i, n: len(ms)}
			}
		}
	}
	file := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	type lane struct {
		cat string
		tid int64
	}
	seen := map[lane]bool{}
	for i, sp := range spans {
		l := lane{sp.Cat, sp.TID}
		if !seen[l] {
			seen[l] = true
			file.TraceEvents = append(file.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", PID: tracePID, TID: sp.TID,
				Args: map[string]any{"name": sp.Cat},
			})
		}
		ev := traceEvent{
			Name: sp.Name,
			Cat:  sp.Cat,
			Ph:   "X",
			TS:   float64(sp.Start.Sub(t0)) / float64(time.Microsecond),
			Dur:  float64(sp.Duration) / float64(time.Microsecond),
			PID:  tracePID,
			TID:  sp.TID,
		}
		args := map[string]any{}
		if sp.Month >= 0 {
			args["month"] = sp.Month
		}
		if sp.Series != "" {
			args["series"] = sp.Series
		}
		if sp.Detail != "" {
			args["detail"] = sp.Detail
		}
		if sp.Err != "" {
			args["error"] = sp.Err
		}
		if len(args) > 0 {
			ev.Args = args
		}
		file.TraceEvents = append(file.TraceEvents, ev)

		// Flow events bind to the slice enclosing their timestamp on the
		// same pid/tid, so each is emitted at its span's start; a flow with
		// a single member emits nothing (there is no arrow to draw).
		if fp, ok := flowOrder[&spans[i]]; ok && fp.n > 1 {
			fev := traceEvent{
				Name: "lineage", Cat: "flow", PID: tracePID, TID: sp.TID,
				TS: ev.TS, ID: sp.Flow,
			}
			switch {
			case fp.pos == 0:
				fev.Ph = "s"
			case fp.pos == fp.n-1:
				fev.Ph, fev.BP = "f", "e"
			default:
				fev.Ph = "t"
			}
			file.TraceEvents = append(file.TraceEvents, fev)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}

// Logical lane ids for the pipeline's span categories; spans in different
// categories render as separate tracks. The constants are part of the trace
// contract so tests (and external tools) can address lanes deterministically.
const (
	// LaneStage carries the pipeline stage brackets (model/reproduce/detect).
	LaneStage int64 = 0
	// LaneEM carries the per-month EM fit spans.
	LaneEM int64 = 1
	// LaneDetect carries the per-series change point search spans.
	LaneDetect int64 = 2
	// LaneScan carries the intra-scan spans: exact-scan shards and the warm
	// refinement pass's cold refits.
	LaneScan int64 = 3
	// LaneSSM carries per-fit structural model spans (ssm.FitOptions.Trace).
	LaneSSM int64 = 4
	// LaneServe carries the serving plane's lineage spans: one ingested
	// month's queue-admit, fold, checkpoint-write, WAL-commit, and
	// epoch-publish steps, correlated by a per-month Flow id.
	LaneServe int64 = 5
)
