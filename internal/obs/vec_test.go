package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestVecNilSafety pins the disabled path: a nil registry hands out nil
// vectors, nil vectors hand out nil children, and writes through the whole
// chain are no-ops.
func TestVecNilSafety(t *testing.T) {
	var r *Registry
	cv := r.CounterVec("http_requests_total", "route", "code")
	gv := r.GaugeVec("http_in_flight_by_route", "route")
	hv := r.HistogramVec("http_request_duration_seconds", []float64{0.1, 1}, "route")
	if cv != nil || gv != nil || hv != nil {
		t.Fatal("nil registry must return nil vectors")
	}
	cv.With("/v1/epoch", "200").Inc()
	gv.With("/v1/epoch").Set(3)
	hv.With("/v1/epoch").Observe(0.5)

	// Arity mismatches return nil children instead of corrupting the family.
	r2 := NewRegistry()
	cv2 := r2.CounterVec("c", "a", "b")
	if cv2.With("only-one") != nil {
		t.Fatal("label arity mismatch must return a nil child")
	}
	cv2.With("only-one").Inc()
	if n := len(r2.Snapshot().CounterVecs["c"].Values); n != 0 {
		t.Fatalf("arity-mismatched With created %d children, want 0", n)
	}
}

// TestVecSameChild pins handle identity: With returns the same child for the
// same label values, and distinct children for distinct values.
func TestVecSameChild(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("reqs", "route", "code")
	a := cv.With("/x", "200")
	b := cv.With("/x", "200")
	if a != b {
		t.Fatal("same labels must return the same child")
	}
	if cv.With("/x", "500") == a {
		t.Fatal("distinct labels must return distinct children")
	}
	// The 0xFF separator keeps adjacent values from colliding.
	if cv.With("/x2", "00") == cv.With("/x", "200") {
		t.Fatal("label tuples with equal concatenation must not collide")
	}
	a.Add(2)
	b.Inc()
	snap := r.Snapshot()
	vs := snap.CounterVecs["reqs"]
	if len(vs.Values) != 3 {
		t.Fatalf("snapshot has %d children, want 3", len(vs.Values))
	}
	if vs.Values[0].Value != 3 { // sorted: /x,200 < /x,500 < /x2,00
		t.Fatalf("child value = %d, want 3 (values %+v)", vs.Values[0].Value, vs.Values)
	}
}

// TestVecSnapshotDeterministic pins the ordering contract: children appear
// sorted by label values regardless of creation order, so two snapshots of
// the same state render byte-identically.
func TestVecSnapshotDeterministic(t *testing.T) {
	build := func(order []int) Snapshot {
		r := NewRegistry()
		cv := r.CounterVec("reqs", "route", "code")
		gv := r.GaugeVec("inflight", "route")
		hv := r.HistogramVec("dur", []float64{1, 10}, "route")
		routes := []string{"/b", "/a", "/c"}
		for _, i := range order {
			cv.With(routes[i], "200").Add(int64(i) + 1)
			gv.With(routes[i]).Set(int64(i))
			hv.With(routes[i]).Observe(float64(i))
		}
		return r.Snapshot()
	}
	s1, s2 := build([]int{0, 1, 2}), build([]int{2, 0, 1})
	j1, _ := json.Marshal(s1)
	j2, _ := json.Marshal(s2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("snapshots differ across creation orders:\n%s\n%s", j1, j2)
	}
	want := []string{"/a", "/b", "/c"}
	for i, lv := range s1.CounterVecs["reqs"].Values {
		if lv.Labels[0] != want[i] {
			t.Fatalf("children not sorted by label values: %+v", s1.CounterVecs["reqs"].Values)
		}
	}
	if !reflect.DeepEqual(s1.HistogramVecs["dur"].LabelNames, []string{"route"}) {
		t.Fatalf("histogram vec label names = %v", s1.HistogramVecs["dur"].LabelNames)
	}

	// Deterministic() keeps the labeled sections (they are count-valued).
	det := s1.Deterministic()
	if len(det.CounterVecs) == 0 || len(det.HistogramVecs) == 0 {
		t.Fatal("Deterministic() stripped the labeled sections")
	}
}

// TestVecSnapshotJSONRoundTrip pins that the labeled sections survive the
// JSON round trip the expvar bridge exposes.
func TestVecSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("reqs", "route", "code").With("/v1/status", "200").Add(7)
	r.HistogramVec("dur", []float64{0.5}, "route").With("/v1/status").Observe(0.1)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	cv := back.CounterVecs["reqs"]
	if len(cv.Values) != 1 || cv.Values[0].Value != 7 || cv.Values[0].Labels[1] != "200" {
		t.Fatalf("counter vec did not round-trip: %+v", cv)
	}
	hv := back.HistogramVecs["dur"]
	if len(hv.Values) != 1 || hv.Values[0].Count != 1 {
		t.Fatalf("histogram vec did not round-trip: %+v", hv)
	}
}

// TestVecConcurrentUpdates hammers one family from concurrent goroutines —
// the serving middleware's access pattern — and checks the totals. Run under
// -race this doubles as the labeled-metric data-race guard.
func TestVecConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("reqs", "route", "code")
	hv := r.HistogramVec("dur", []float64{1, 5, 25}, "route")
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				route := fmt.Sprintf("/r%d", i%3)
				cv.With(route, "200").Inc()
				hv.With(route).Observe(float64(i % 7))
				if i%50 == 0 {
					_ = r.Snapshot() // snapshots race against writers by design
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total int64
	for _, lv := range snap.CounterVecs["reqs"].Values {
		total += lv.Value
	}
	if total != workers*perWorker {
		t.Fatalf("counter total = %d, want %d", total, workers*perWorker)
	}
	var hn int64
	for _, lh := range snap.HistogramVecs["dur"].Values {
		hn += lh.Count
	}
	if hn != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", hn, workers*perWorker)
	}
}
