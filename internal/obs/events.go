package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind identifies a progress event.
type EventKind uint8

// Event kinds.
const (
	// StageStart opens a pipeline stage ("model", "reproduce", "detect",
	// "scan"); Total carries the stage's planned unit count when known.
	StageStart EventKind = iota
	// StageEnd closes a stage; Duration carries its wall-clock.
	StageEnd
	// MonthFitted reports one month's medication model fit (stage "model").
	MonthFitted
	// SeriesDone reports one series' change point search (stage "detect").
	SeriesDone
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case StageStart:
		return "stage-start"
	case StageEnd:
		return "stage-end"
	case MonthFitted:
		return "month-fitted"
	default:
		return "series-done"
	}
}

// Event is one structured progress event. All fields except Duration are
// deterministic for a deterministic workload; per-unit events are delivered
// in serial-equivalent order (months ascending, series in job order)
// regardless of worker count.
type Event struct {
	// Kind is the event type.
	Kind EventKind
	// Stage is the owning pipeline stage.
	Stage string
	// Total is the stage's planned unit count (StageStart; -1 when unknown).
	Total int
	// Done is the number of units completed including this one
	// (MonthFitted/SeriesDone).
	Done int
	// Month is the fitted month (MonthFitted; -1 otherwise).
	Month int
	// Series identifies the finished series (SeriesDone), e.g.
	// "prescription:3/7".
	Series string
	// Err is non-empty when the unit degraded or failed; the unit's failure
	// is also recorded in Analysis.Failures.
	Err string
	// Duration is the unit's (or stage's, for StageEnd) wall-clock time. It
	// is the one nondeterministic field.
	Duration time.Duration
}

// String renders the event for logs.
func (e Event) String() string {
	switch e.Kind {
	case StageStart:
		return fmt.Sprintf("%s %s (%d units)", e.Kind, e.Stage, e.Total)
	case StageEnd:
		return fmt.Sprintf("%s %s (%v)", e.Kind, e.Stage, e.Duration)
	case MonthFitted:
		if e.Err != "" {
			return fmt.Sprintf("%s month %d: %s", e.Kind, e.Month, e.Err)
		}
		return fmt.Sprintf("%s month %d (%d/%d)", e.Kind, e.Month, e.Done, e.Total)
	default:
		if e.Err != "" {
			return fmt.Sprintf("%s %s: %s", e.Kind, e.Series, e.Err)
		}
		return fmt.Sprintf("%s %s (%d/%d)", e.Kind, e.Series, e.Done, e.Total)
	}
}

// Observer receives progress events. A nil Observer disables event delivery
// at zero cost. Deliveries are serialized — an Observer never runs
// concurrently with itself — and arrive in serial-equivalent order for any
// worker count. Observers should return quickly: a slow callback backpressures
// the sequencer's flush (not the workers' compute, but their completion
// accounting).
type Observer func(Event)

// Guard wraps cb with panic isolation: the first panic in cb invokes onPanic
// with the recovered value, permanently disables delivery, and subsequent
// events are dropped — a broken user callback can cost its own events but
// never a pipeline worker. A nil cb returns nil (the disabled path keeps its
// zero cost); a nil onPanic just disables silently.
func Guard(cb Observer, onPanic func(r any)) Observer {
	if cb == nil {
		return nil
	}
	var disabled atomic.Bool
	return func(e Event) {
		if disabled.Load() {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				disabled.Store(true)
				if onPanic != nil {
					onPanic(r)
				}
			}
		}()
		cb(e)
	}
}

// Sequencer re-orders per-unit completions from concurrent workers into
// serial (index) order, mirroring the parallel scan's deterministic
// reduction: unit i's emit callback runs only after units 0..i-1 have
// emitted, under the sequencer's lock (so emits are also mutually
// serialized). Workers call Done once per unit, in any order; emits for
// indices past a permanent hole (a unit that will never report, e.g. after
// cancellation) are simply never flushed — Done never blocks.
type Sequencer struct {
	mu      sync.Mutex
	next    int
	pending map[int]func()
}

// NewSequencer returns a sequencer expecting indices starting at 0.
func NewSequencer() *Sequencer {
	return &Sequencer{pending: make(map[int]func())}
}

// Done reports unit i complete, with emit the callback to run in serial
// order (emit may be nil to just advance the cursor). Each index must be
// reported at most once.
func (s *Sequencer) Done(i int, emit func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending[i] = emit
	for {
		f, ok := s.pending[s.next]
		if !ok {
			return
		}
		delete(s.pending, s.next)
		s.next++
		if f != nil {
			f()
		}
	}
}
