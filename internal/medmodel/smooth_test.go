package medmodel

import (
	"context"
	"math"
	"testing"

	"mictrend/internal/mic"
)

func TestFitSmoothedNoPriorEqualsFit(t *testing.T) {
	month := twoDiseaseMonth()
	plain, err := Fit(month, 2, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	smoothed, err := FitSmoothed(month, 2, FitOptions{}, nil, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.LogLik-smoothed.LogLik) > 1e-9 {
		t.Fatal("nil prior should reduce to plain Fit")
	}
	smoothed2, err := FitSmoothed(month, 2, FitOptions{}, plain, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.LogLik-smoothed2.LogLik) > 1e-9 {
		t.Fatal("zero weight should reduce to plain Fit")
	}
}

func TestFitSmoothedRowsSumToOne(t *testing.T) {
	month := twoDiseaseMonth()
	prior, err := Fit(month, 2, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	smoothed, err := FitSmoothed(month, 2, FitOptions{}, prior, 3)
	if err != nil {
		t.Fatal(err)
	}
	for d, row := range smoothed.Phi {
		var sum float64
		for _, p := range row {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("smoothed phi[%d] sums to %v", d, sum)
		}
	}
}

func TestFitSmoothedKeepsPriorSupportAlive(t *testing.T) {
	// The prior strongly links disease 0 to medicine 1; the new month never
	// cooccurs them. With smoothing the pair keeps mass; without it the pair
	// has zero probability.
	prior := &Model{
		Phi: map[mic.DiseaseID]map[mic.MedicineID]float64{
			0: {1: 1.0},
		},
		M: 2,
	}
	month := &mic.Monthly{Month: 1}
	for i := 0; i < 10; i++ {
		month.Records = append(month.Records, mic.Record{
			Diseases:  []mic.DiseaseCount{{Disease: 0, Count: 1}},
			Medicines: []mic.MedicineID{0},
		})
	}
	plain, err := Fit(month, 2, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Phi[0][1] != 0 {
		t.Fatal("plain fit should have no mass on the absent pair")
	}
	smoothed, err := FitSmoothed(month, 2, FitOptions{}, prior, 5)
	if err != nil {
		t.Fatal(err)
	}
	if smoothed.Phi[0][1] <= 0 {
		t.Fatal("smoothing lost the prior pair")
	}
	// But the observed pair should still dominate (10 observations vs 5
	// pseudo-counts).
	if smoothed.Phi[0][0] <= smoothed.Phi[0][1] {
		t.Fatalf("observed pair %v should outweigh prior pair %v", smoothed.Phi[0][0], smoothed.Phi[0][1])
	}
}

func TestFitSmoothedPriorWeightControlsPull(t *testing.T) {
	prior := &Model{
		Phi: map[mic.DiseaseID]map[mic.MedicineID]float64{0: {1: 1.0}},
		M:   2,
	}
	month := &mic.Monthly{Month: 1}
	for i := 0; i < 10; i++ {
		month.Records = append(month.Records, mic.Record{
			Diseases:  []mic.DiseaseCount{{Disease: 0, Count: 1}},
			Medicines: []mic.MedicineID{0},
		})
	}
	weak, err := FitSmoothed(month, 2, FitOptions{}, prior, 1)
	if err != nil {
		t.Fatal(err)
	}
	strong, err := FitSmoothed(month, 2, FitOptions{}, prior, 50)
	if err != nil {
		t.Fatal(err)
	}
	if strong.Phi[0][1] <= weak.Phi[0][1] {
		t.Fatalf("stronger prior should pull harder: weak=%v strong=%v", weak.Phi[0][1], strong.Phi[0][1])
	}
}

func TestFitAllSmoothedChains(t *testing.T) {
	d := mic.NewDataset()
	d.Diseases.Intern("d0")
	d.Diseases.Intern("d1")
	d.Medicines.Intern("m0")
	d.Medicines.Intern("m1")
	d.AddHospital(mic.Hospital{Code: "H"})
	m0 := twoDiseaseMonth()
	// Month 1 is sparse: only mixed records (ambiguous on their own).
	m1 := &mic.Monthly{Month: 1}
	for i := 0; i < 4; i++ {
		m1.Records = append(m1.Records, mic.Record{
			Diseases:  []mic.DiseaseCount{{Disease: 0, Count: 1}, {Disease: 1, Count: 1}},
			Medicines: []mic.MedicineID{0, 1},
		})
	}
	d.Months = []*mic.Monthly{m0, m1}

	smoothed, err := FitAllSmoothed(context.Background(), d, FitOptions{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	plain, fails, err := FitAll(context.Background(), d, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) != 0 {
		t.Fatalf("unexpected month failures: %v", fails)
	}
	// Month 1 plain: ambiguous, phi[0][1] stays near the symmetric 0.5.
	// Smoothed: month 0 resolved the links; the prior should pull month 1's
	// phi[0][0] well above phi[0][1].
	if !(smoothed[1].Phi[0][0] > 0.8) {
		t.Fatalf("smoothed month 1 phi[0][0] = %v, want > 0.8", smoothed[1].Phi[0][0])
	}
	if plain[1].Phi[0][0] > 0.8 {
		t.Fatalf("plain month 1 unexpectedly resolved the ambiguity: %v", plain[1].Phi[0][0])
	}
	if len(smoothed) != 2 {
		t.Fatal("wrong model count")
	}
}
