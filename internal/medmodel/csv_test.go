package medmodel

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"mictrend/internal/mic"
)

func TestWriteCSV(t *testing.T) {
	diseases := mic.NewVocab()
	medicines := mic.NewVocab()
	d0 := mic.DiseaseID(diseases.Intern("flu"))
	d1 := mic.DiseaseID(diseases.Intern("cold"))
	m0 := mic.MedicineID(medicines.Intern("antiviral"))
	s := &SeriesSet{T: 3, Pairs: map[mic.Pair][]float64{
		{Disease: d1, Medicine: m0}: {1, 2, 3},
		{Disease: d0, Medicine: m0}: {4, 5, 6},
	}}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf, diseases, medicines); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("rows = %d, want header + 2", len(records))
	}
	if strings.Join(records[0], ",") != "disease,medicine,m00,m01,m02" {
		t.Fatalf("header = %v", records[0])
	}
	// Sorted by disease code: "cold" before "flu".
	if records[1][0] != "cold" || records[2][0] != "flu" {
		t.Fatalf("rows not sorted: %v / %v", records[1], records[2])
	}
	if records[2][2] != "4.000" {
		t.Fatalf("value cell = %q", records[2][2])
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	s := &SeriesSet{T: 2, Pairs: map[mic.Pair][]float64{}}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf, mic.NewVocab(), mic.NewVocab()); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "disease,medicine") {
		t.Fatal("missing header")
	}
}
