package medmodel

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"mictrend/internal/mic"
)

// WriteCSV exports the reproduced pair series as CSV for external plotting
// tools: one row per disease–medicine pair with columns
// disease,medicine,m0,m1,…  Codes are resolved through the vocabularies.
// Rows are sorted by (disease, medicine) code for stable diffs.
func (s *SeriesSet) WriteCSV(w io.Writer, diseases, medicines *mic.Vocab) error {
	cw := csv.NewWriter(w)
	header := make([]string, 2+s.T)
	header[0] = "disease"
	header[1] = "medicine"
	for t := 0; t < s.T; t++ {
		header[2+t] = fmt.Sprintf("m%02d", t)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	type row struct {
		d, m   string
		series []float64
	}
	rows := make([]row, 0, len(s.Pairs))
	for pair, series := range s.Pairs {
		rows = append(rows, row{
			d:      diseases.Code(int32(pair.Disease)),
			m:      medicines.Code(int32(pair.Medicine)),
			series: series,
		})
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].d != rows[b].d {
			return rows[a].d < rows[b].d
		}
		return rows[a].m < rows[b].m
	})
	record := make([]string, 2+s.T)
	for _, r := range rows {
		record[0] = r.d
		record[1] = r.m
		for t, v := range r.series {
			record[2+t] = strconv.FormatFloat(v, 'f', 3, 64)
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
