package medmodel

import (
	"math"

	"mictrend/internal/mic"
)

// FitOptions tunes the EM loop.
type FitOptions struct {
	// MaxIter bounds EM iterations (default 50).
	MaxIter int
	// Tol is the relative log-likelihood improvement below which EM stops
	// (default 1e-6).
	Tol float64
}

func (o FitOptions) withDefaults() FitOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	return o
}

// Fit estimates the latent-variable medication model for one month with the
// EM algorithm of §IV-C: θ is closed-form (Eq. 2), η is closed-form (Eq. 4),
// and Φ alternates with the responsibilities Q via Eqs. 5–6, starting from
// the cooccurrence estimate (which also fixes Φ's support: a (d, m) pair can
// only carry probability if it cooccurs in some record).
func Fit(month *mic.Monthly, vocabMedicines int, opts FitOptions) (*Model, error) {
	opts = opts.withDefaults()
	recs, err := usableRecords(month)
	if err != nil {
		return nil, err
	}

	phi := cooccurrencePhi(recs)
	model := &Model{
		Eta: EstimateEta(month),
		Phi: phi,
		M:   vocabMedicines,
	}

	prevLL := math.Inf(-1)
	for iter := 0; iter < opts.MaxIter; iter++ {
		// E-step folded into the M-step accumulation: for every medicine
		// occurrence, distribute one unit of count across the record's
		// diseases proportionally to θ_rd·φ_dm (Eq. 6), accumulating Eq. 5's
		// numerator.
		next := make(map[mic.DiseaseID]map[mic.MedicineID]float64, len(phi))
		rowSums := make(map[mic.DiseaseID]float64, len(phi))
		for _, r := range recs {
			theta := Theta(r)
			for _, med := range r.Medicines {
				var denom float64
				for d, th := range theta {
					if row, ok := phi[d]; ok {
						denom += th * row[med]
					}
				}
				if denom <= 0 {
					continue
				}
				for d, th := range theta {
					row, ok := phi[d]
					if !ok {
						continue
					}
					q := th * row[med] / denom
					if q == 0 {
						continue
					}
					nrow, ok := next[d]
					if !ok {
						nrow = make(map[mic.MedicineID]float64)
						next[d] = nrow
					}
					nrow[med] += q
					rowSums[d] += q
				}
			}
		}
		// Normalize rows (Eq. 5 denominator).
		for d, nrow := range next {
			sum := rowSums[d]
			if sum <= 0 {
				delete(next, d)
				continue
			}
			for med := range nrow {
				nrow[med] /= sum
			}
		}
		phi = next
		model.Phi = phi
		model.Iterations = iter + 1

		ll := logLikelihood(recs, phi)
		model.LogLik = ll
		if prevLL != math.Inf(-1) {
			denom := math.Abs(prevLL)
			if denom == 0 {
				denom = 1
			}
			if (ll-prevLL)/denom < opts.Tol {
				break
			}
		}
		prevLL = ll
	}
	return model, nil
}

// FitAll fits one model per month of the dataset.
func FitAll(d *mic.Dataset, opts FitOptions) ([]*Model, error) {
	models := make([]*Model, d.T())
	for i, month := range d.Months {
		m, err := Fit(month, d.Medicines.Len(), opts)
		if err != nil {
			return nil, err
		}
		models[i] = m
	}
	return models, nil
}

// cooccurrencePhi computes the Eq. 10 estimate used both as the Cooccurrence
// baseline and as EM initialization. Cooc_r(d, m) counts each occurrence of
// medicine m in a record once per distinct disease d of the record.
func cooccurrencePhi(recs []*mic.Record) map[mic.DiseaseID]map[mic.MedicineID]float64 {
	phi := make(map[mic.DiseaseID]map[mic.MedicineID]float64)
	rowSums := make(map[mic.DiseaseID]float64)
	for _, r := range recs {
		for _, dc := range r.Diseases {
			row, ok := phi[dc.Disease]
			if !ok {
				row = make(map[mic.MedicineID]float64)
				phi[dc.Disease] = row
			}
			for _, med := range r.Medicines {
				row[med]++
				rowSums[dc.Disease]++
			}
		}
	}
	for d, row := range phi {
		sum := rowSums[d]
		if sum <= 0 {
			delete(phi, d)
			continue
		}
		for med := range row {
			row[med] /= sum
		}
	}
	return phi
}
