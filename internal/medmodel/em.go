package medmodel

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"mictrend/internal/faultpoint"
	"mictrend/internal/mic"
	"mictrend/internal/obs"
)

// FitOptions tunes the EM loop.
type FitOptions struct {
	// MaxIter bounds EM iterations (default 50).
	MaxIter int
	// Tol is the relative log-likelihood improvement below which EM stops
	// (default 1e-6).
	Tol float64
	// Workers bounds FitAll's concurrency across months (default
	// GOMAXPROCS). Fit itself is single-threaded.
	Workers int
	// PriorWeight, when positive, chains a Dirichlet prior across months
	// (the paper's §IX Dynamic Topic Model direction): FitAll fits months
	// serially, each month's φ carrying a prior centered at the previous
	// month's fitted distributions with this concentration (pseudo-count
	// mass per disease). The zero value disables the prior — months are
	// independent and fitted in parallel.
	PriorWeight float64
	// Observer, when non-nil, receives one obs.MonthFitted event per month
	// from FitAll, delivered in ascending month order for any worker count.
	// A panicking Observer silently loses its remaining events (wrap with
	// obs.Guard to intercept the panic); it never crashes a fit worker.
	Observer obs.Observer
	// Metrics, when non-nil, collects EM instrumentation: per-month
	// iteration counts and E/M sweep vs likelihood timing. Nil costs
	// nothing on the fit path.
	Metrics *obs.Registry
	// Trace, when non-nil, receives one "em/month" span per month from
	// FitAll, timed around the month's fit and emitted in ascending month
	// order for any worker count (the same Sequencer that orders Observer
	// events). A nil Trace costs nothing — no clock reads, no allocations.
	Trace obs.SpanObserver
	// TraceConvergence records each month's per-iteration log-likelihood in
	// Model.LogLikTrace, the EM convergence evidence the explain artifacts
	// export. Off (the default) the fit loop stores only the final value and
	// allocates no trace.
	TraceConvergence bool
	// InitialPrior seeds the smoothed chain's first month (PriorWeight > 0
	// only): FitAll centers month 0's Dirichlet prior at this model instead
	// of starting the chain cold. A checkpoint-resumed analysis passes the
	// last reused posterior here so the continued chain is bit-identical to
	// one that never stopped. Ignored when PriorWeight is zero.
	InitialPrior *Model
}

// WithDefaults returns the options with the EM loop defaults filled in, the
// exact values Fit and FitAll use; exposed so checkpoint fingerprints hash
// the effective configuration rather than the zero values.
func (o FitOptions) WithDefaults() FitOptions { return o.withDefaults() }

func (o FitOptions) withDefaults() FitOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	return o
}

// emIndex is the dense-indexed (CSR-style) view of one month's usable
// records, built once per Fit so the EM iterations run as flat array
// arithmetic instead of map-of-maps lookups. Diseases of the month are
// interned to contiguous indices; φ lives in one value array addressed
// through per-disease row ranges; and every (record, medicine occurrence,
// disease) triple the E-step touches is resolved to its position in that
// array ahead of time — the inner loop then performs no hashing at all.
type emIndex struct {
	diseases []mic.DiseaseID // interned disease ids, ascending
	rowStart []int           // row d occupies [rowStart[d], rowStart[d+1]) below
	rowMed   []mic.MedicineID
	val      []float64 // current φ iterate
	next     []float64 // Eq. 5 numerator accumulator
	rowSum   []float64 // Eq. 5 denominator accumulator, per disease

	// Per-record dense θ (Eq. 2): record r owns slots
	// [thetaStart[r], thetaStart[r+1]).
	thetaStart []int
	thetaDis   []int32 // interned disease index per slot
	thetaVal   []float64

	// Occurrence table: record r's o-th medicine occurrence and θ-slot s map
	// to pos[occStart[r]+o*slots(r)+s], an index into val, or -1 when the
	// (disease, medicine) pair is outside the cooccurrence support.
	occStart []int
	pos      []int32

	numMeds []int // medicine occurrences per record
}

// newEMIndex interns the records against the cooccurrence support (which
// also provides the φ initialization, Eq. 10).
func newEMIndex(recs []*mic.Record) *emIndex {
	phi := cooccurrencePhi(recs)
	ix := &emIndex{}

	ix.diseases = make([]mic.DiseaseID, 0, len(phi))
	for d := range phi {
		ix.diseases = append(ix.diseases, d)
	}
	sort.Slice(ix.diseases, func(a, b int) bool { return ix.diseases[a] < ix.diseases[b] })
	diseaseIdx := make(map[mic.DiseaseID]int32, len(ix.diseases))
	ix.rowStart = make([]int, len(ix.diseases)+1)
	for di, d := range ix.diseases {
		diseaseIdx[d] = int32(di)
		row := phi[d]
		meds := make([]mic.MedicineID, 0, len(row))
		for med := range row {
			meds = append(meds, med)
		}
		sort.Slice(meds, func(a, b int) bool { return meds[a] < meds[b] })
		for _, med := range meds {
			ix.rowMed = append(ix.rowMed, med)
			ix.val = append(ix.val, row[med])
		}
		ix.rowStart[di+1] = len(ix.rowMed)
	}
	ix.next = make([]float64, len(ix.val))
	ix.rowSum = make([]float64, len(ix.diseases))

	ix.thetaStart = make([]int, len(recs)+1)
	ix.occStart = make([]int, len(recs)+1)
	ix.numMeds = make([]int, len(recs))
	slotOf := make(map[mic.DiseaseID]int) // scratch, cleared per record
	for r, rec := range recs {
		n := rec.NumDiseaseMentions()
		if n > 0 {
			// θ_rd accumulated per entry in record order — the same
			// quotient-sum Theta computes, but at a deterministic slot.
			for _, dc := range rec.Diseases {
				s, ok := slotOf[dc.Disease]
				if !ok {
					s = len(ix.thetaVal) - ix.thetaStart[r]
					slotOf[dc.Disease] = s
					di, inSupport := diseaseIdx[dc.Disease]
					if !inSupport {
						di = -1
					}
					ix.thetaDis = append(ix.thetaDis, di)
					ix.thetaVal = append(ix.thetaVal, 0)
				}
				ix.thetaVal[ix.thetaStart[r]+s] += float64(dc.Count) / float64(n)
			}
		}
		for d := range slotOf {
			delete(slotOf, d)
		}
		ix.thetaStart[r+1] = len(ix.thetaVal)
		slots := ix.thetaStart[r+1] - ix.thetaStart[r]

		ix.numMeds[r] = len(rec.Medicines)
		for _, med := range rec.Medicines {
			for s := 0; s < slots; s++ {
				di := ix.thetaDis[ix.thetaStart[r]+s]
				p := int32(-1)
				if di >= 0 {
					lo, hi := ix.rowStart[di], ix.rowStart[di+1]
					row := ix.rowMed[lo:hi]
					j := sort.Search(len(row), func(k int) bool { return row[k] >= med })
					if j < len(row) && row[j] == med {
						p = int32(lo + j)
					}
				}
				ix.pos = append(ix.pos, p)
			}
		}
		ix.occStart[r+1] = len(ix.pos)
	}
	return ix
}

// iterate performs one EM step (Eqs. 5–6): distribute each medicine
// occurrence across its record's diseases proportionally to θ_rd·φ_dm, then
// renormalize every φ row.
func (ix *emIndex) iterate() {
	for i := range ix.next {
		ix.next[i] = 0
	}
	for i := range ix.rowSum {
		ix.rowSum[i] = 0
	}
	for r := range ix.numMeds {
		ts := ix.thetaStart[r]
		slots := ix.thetaStart[r+1] - ts
		if slots == 0 {
			continue
		}
		theta := ix.thetaVal[ts : ts+slots]
		dis := ix.thetaDis[ts : ts+slots]
		base := ix.occStart[r]
		for o := 0; o < ix.numMeds[r]; o++ {
			blk := ix.pos[base+o*slots : base+(o+1)*slots]
			var denom float64
			for s, p := range blk {
				if p >= 0 {
					denom += theta[s] * ix.val[p]
				}
			}
			if denom <= 0 {
				continue
			}
			for s, p := range blk {
				if p < 0 {
					continue
				}
				q := theta[s] * ix.val[p] / denom
				if q == 0 {
					continue
				}
				ix.next[p] += q
				ix.rowSum[dis[s]] += q
			}
		}
	}
	for d := range ix.rowSum {
		sum := ix.rowSum[d]
		lo, hi := ix.rowStart[d], ix.rowStart[d+1]
		if sum <= 0 {
			// The row lost all mass: zero it, the dense-index equivalent of
			// deleting the map row (lookups read 0 either way).
			for i := lo; i < hi; i++ {
				ix.val[i] = 0
			}
			continue
		}
		for i := lo; i < hi; i++ {
			ix.val[i] = ix.next[i] / sum
		}
	}
}

// logLik computes the Φ part of Eq. 3 under the current φ iterate.
func (ix *emIndex) logLik() float64 {
	var ll float64
	for r := range ix.numMeds {
		ts := ix.thetaStart[r]
		slots := ix.thetaStart[r+1] - ts
		if slots == 0 {
			continue
		}
		theta := ix.thetaVal[ts : ts+slots]
		base := ix.occStart[r]
		for o := 0; o < ix.numMeds[r]; o++ {
			blk := ix.pos[base+o*slots : base+(o+1)*slots]
			var p float64
			for s, pp := range blk {
				if pp >= 0 {
					p += theta[s] * ix.val[pp]
				}
			}
			if p <= 0 {
				p = math.SmallestNonzeroFloat64
			}
			ll += math.Log(p)
		}
	}
	return ll
}

// phiMap converts the dense rows back to the public map representation,
// dropping rows and entries that carry no mass (mirroring the sparsity the
// map-based accumulation produced).
func (ix *emIndex) phiMap() map[mic.DiseaseID]map[mic.MedicineID]float64 {
	out := make(map[mic.DiseaseID]map[mic.MedicineID]float64, len(ix.diseases))
	for di, d := range ix.diseases {
		lo, hi := ix.rowStart[di], ix.rowStart[di+1]
		var row map[mic.MedicineID]float64
		for i := lo; i < hi; i++ {
			if ix.val[i] <= 0 {
				continue
			}
			if row == nil {
				row = make(map[mic.MedicineID]float64, hi-lo)
			}
			row[ix.rowMed[i]] = ix.val[i]
		}
		if row != nil {
			out[d] = row
		}
	}
	return out
}

// Fit estimates the latent-variable medication model for one month with the
// EM algorithm of §IV-C: θ is closed-form (Eq. 2), η is closed-form (Eq. 4),
// and Φ alternates with the responsibilities Q via Eqs. 5–6, starting from
// the cooccurrence estimate (which also fixes Φ's support: a (d, m) pair can
// only carry probability if it cooccurs in some record). The E/M sweep runs
// over a dense index interned once per call, so iterations are flat array
// arithmetic; the fitted Φ is converted back to the map representation the
// Model API exposes. Results are deterministic.
func Fit(month *mic.Monthly, vocabMedicines int, opts FitOptions) (*Model, error) {
	opts = opts.withDefaults()
	recs, err := usableRecords(month)
	if err != nil {
		return nil, err
	}

	ix := newEMIndex(recs)
	model := &Model{
		Eta: EstimateEta(month),
		M:   vocabMedicines,
	}

	// Timers resolve to nil when metrics are off, so the disabled loop pays
	// one pointer check per iteration and allocates nothing.
	var tIterate, tLogLik *obs.Timer
	if m := opts.Metrics; m != nil {
		tIterate = m.Timer("time/em/iterate")
		tLogLik = m.Timer("time/em/loglik")
	}

	prevLL := math.Inf(-1)
	for iter := 0; iter < opts.MaxIter; iter++ {
		var t0 time.Time
		if tIterate != nil {
			t0 = time.Now()
		}
		ix.iterate()
		if tIterate != nil {
			tIterate.Observe(time.Since(t0))
			t0 = time.Now()
		}
		model.Iterations = iter + 1
		ll := ix.logLik()
		if tLogLik != nil {
			tLogLik.Observe(time.Since(t0))
		}
		model.LogLik = ll
		if opts.TraceConvergence {
			model.LogLikTrace = append(model.LogLikTrace, ll)
		}
		if prevLL != math.Inf(-1) {
			denom := math.Abs(prevLL)
			if denom == 0 {
				denom = 1
			}
			if (ll-prevLL)/denom < opts.Tol {
				break
			}
		}
		prevLL = ll
	}
	model.Phi = ix.phiMap()
	return model, nil
}

// MonthError records one month whose EM fit failed. FitAll reports failed
// months instead of aborting, so a run over many months degrades to the
// months that did fit.
type MonthError struct {
	// Month is the index of the failed month.
	Month int
	// Err is the fit error (for a crashed worker, the recovered panic value).
	Err error
	// Panicked reports whether the failure was a recovered worker panic
	// rather than a returned error.
	Panicked bool
}

// fitMonth fits one month with panic isolation: a crash inside the EM loop
// becomes an error confined to that month instead of a process abort.
func fitMonth(month *mic.Monthly, vocabMedicines int, opts FitOptions) (m *Model, panicked bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			m, panicked = nil, true
			err = fmt.Errorf("medmodel: month %d fit panicked: %v", month.Month, r)
		}
	}()
	if err := faultpoint.Inject("medmodel/fit-month", strconv.Itoa(month.Month)); err != nil {
		return nil, false, err
	}
	m, err = Fit(month, vocabMedicines, opts)
	return m, false, err
}

// fitAllInstruments carries FitAll's observability wiring: a sequencer that
// re-orders per-month completions into ascending month order, the guarded
// observer, and metric handles resolved once. A nil *fitAllInstruments (no
// observer, no metrics) costs one pointer check per month.
type fitAllInstruments struct {
	seq     *obs.Sequencer
	deliver obs.Observer
	trace   obs.SpanObserver
	total   int
	months  *obs.Counter   // em/months_fitted
	iters   *obs.Counter   // em/iterations
	hIters  *obs.Histogram // em/iterations_per_month
}

// newFitAllInstruments returns nil when opts carries no observer, no span
// sink, and no metrics registry.
func newFitAllInstruments(opts FitOptions, total int) *fitAllInstruments {
	if opts.Observer == nil && opts.Metrics == nil && opts.Trace == nil {
		return nil
	}
	ins := &fitAllInstruments{
		seq:     obs.NewSequencer(),
		deliver: obs.Guard(opts.Observer, nil),
		trace:   obs.GuardSpans(opts.Trace, nil),
		total:   total,
	}
	if m := opts.Metrics; m != nil {
		ins.months = m.Counter("em/months_fitted")
		ins.iters = m.Counter("em/iterations")
		ins.hIters = m.Histogram("em/iterations_per_month", 1, 2, 5, 10, 20, 50)
	}
	return ins
}

// began stamps a month fit's start, only when spans are on: the untraced
// path keeps its no-clock-read contract.
func (ins *fitAllInstruments) began() time.Time {
	if ins == nil || ins.trace == nil {
		return time.Time{}
	}
	return time.Now()
}

// monthDone accounts one finished month. Metric merges and event deliveries
// run in ascending month order regardless of which worker finished first,
// so registry snapshots and event streams are identical for any worker
// split. Safe from concurrent workers.
func (ins *fitAllInstruments) monthDone(ctx context.Context, i int, m *Model, err error, began time.Time) {
	if ins == nil {
		return
	}
	var dur time.Duration
	if ins.trace != nil {
		dur = time.Since(began)
	}
	ins.seq.Done(i, func() {
		if m != nil {
			ins.months.Inc()
			ins.iters.Add(int64(m.Iterations))
			ins.hIters.Observe(float64(m.Iterations))
		}
		if ins.trace != nil && ctx.Err() == nil {
			sp := obs.SpanEvent{
				Cat: "em", Name: "em/month", TID: obs.LaneEM,
				Start: began, Duration: dur, Month: i,
			}
			if m != nil {
				sp.Detail = "iters=" + strconv.Itoa(m.Iterations)
			}
			if err != nil {
				sp.Err = err.Error()
			}
			ins.trace(sp)
		}
		if ins.deliver == nil || ctx.Err() != nil {
			return
		}
		e := obs.Event{
			Kind: obs.MonthFitted, Stage: "model",
			Month: i, Done: i + 1, Total: ins.total,
		}
		if err != nil {
			e.Err = err.Error()
		}
		ins.deliver(e)
	})
}

// FitAll fits one model per month of the dataset. With a zero
// opts.PriorWeight months are independent and fitted concurrently by a
// bounded pool of opts.Workers goroutines (default GOMAXPROCS); the models
// are identical to those of a serial month-by-month loop. A positive
// PriorWeight switches to the inherently serial smoothed chain, each month's
// prior centered at the previous month's posterior.
//
// FitAll degrades rather than failing atomically: a month whose fit errors
// or panics leaves a nil entry in the returned slice and a MonthError
// (ascending by month), while every other month's model is still produced.
// The error return is reserved for cancellation — when ctx is cancelled the
// already-fitted models are returned alongside ctx's error, and no new month
// fits start.
func FitAll(ctx context.Context, d *mic.Dataset, opts FitOptions) ([]*Model, []MonthError, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.PriorWeight > 0 {
		return fitAllSmoothed(ctx, d, opts)
	}
	models := make([]*Model, d.T())
	errs := make([]error, len(d.Months))
	panicked := make([]bool, len(d.Months))
	ins := newFitAllInstruments(opts, len(d.Months))
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(d.Months) {
		workers = len(d.Months)
	}
	if workers <= 1 {
		for i, month := range d.Months {
			if err := ctx.Err(); err != nil {
				return models, monthErrors(errs, panicked), err
			}
			began := ins.began()
			models[i], panicked[i], errs[i] = fitMonth(month, d.Medicines.Len(), opts)
			ins.monthDone(ctx, i, models[i], errs[i], began)
		}
	} else {
		in := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range in {
					if ctx.Err() != nil {
						continue // drain: cancelled before this month started
					}
					began := ins.began()
					models[i], panicked[i], errs[i] = fitMonth(d.Months[i], d.Medicines.Len(), opts)
					ins.monthDone(ctx, i, models[i], errs[i], began)
				}
			}()
		}
		for i := range d.Months {
			select {
			case in <- i:
			case <-ctx.Done():
			}
		}
		close(in)
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return models, monthErrors(errs, panicked), err
	}
	return models, monthErrors(errs, panicked), nil
}

// fitAllSmoothed is FitAll's PriorWeight > 0 path: the serial smoothed
// chain with the same degradation contract — a failed month leaves a nil
// model and a MonthError while the chain continues from the last month that
// did fit (its posterior stays the prior).
func fitAllSmoothed(ctx context.Context, d *mic.Dataset, opts FitOptions) ([]*Model, []MonthError, error) {
	models := make([]*Model, d.T())
	errs := make([]error, len(d.Months))
	panicked := make([]bool, len(d.Months))
	ins := newFitAllInstruments(opts, len(d.Months))
	prev := opts.InitialPrior
	for i, month := range d.Months {
		if err := ctx.Err(); err != nil {
			return models, monthErrors(errs, panicked), err
		}
		began := ins.began()
		models[i], panicked[i], errs[i] = fitMonthSmoothed(month, d.Medicines.Len(), opts, prev)
		if models[i] != nil {
			prev = models[i]
		}
		ins.monthDone(ctx, i, models[i], errs[i], began)
	}
	if err := ctx.Err(); err != nil {
		return models, monthErrors(errs, panicked), err
	}
	return models, monthErrors(errs, panicked), nil
}

// fitMonthSmoothed is fitMonth for the smoothed chain: the same faultpoint
// site and panic isolation, with the previous month's posterior as prior.
func fitMonthSmoothed(month *mic.Monthly, vocabMedicines int, opts FitOptions, prior *Model) (m *Model, panicked bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			m, panicked = nil, true
			err = fmt.Errorf("medmodel: month %d fit panicked: %v", month.Month, r)
		}
	}()
	if err := faultpoint.Inject("medmodel/fit-month", strconv.Itoa(month.Month)); err != nil {
		return nil, false, err
	}
	m, err = FitSmoothed(month, vocabMedicines, opts, prior, opts.PriorWeight)
	return m, false, err
}

// monthErrors collects the per-month failures in month order.
func monthErrors(errs []error, panicked []bool) []MonthError {
	var out []MonthError
	for i, err := range errs {
		if err != nil {
			out = append(out, MonthError{Month: i, Err: err, Panicked: panicked[i]})
		}
	}
	return out
}

// FallbackModel builds the cooccurrence-initialized medication model without
// running EM — the degradation target when a month's EM fit fails or
// crashes. It is the exact model EM starts from (Eq. 10 support and
// estimate), so downstream series reproduction stays well-defined, just
// without the latent-variable refinement. A month with no usable records
// yields a model with an empty Φ, whose responsibilities fall back to θ.
func FallbackModel(month *mic.Monthly, vocabMedicines int) *Model {
	model := &Model{Eta: EstimateEta(month), M: vocabMedicines}
	if recs, err := usableRecords(month); err == nil {
		model.Phi = cooccurrencePhi(recs)
	}
	return model
}

// cooccurrencePhi computes the Eq. 10 estimate used both as the Cooccurrence
// baseline and as EM initialization. Cooc_r(d, m) counts each occurrence of
// medicine m in a record once per distinct disease d of the record.
func cooccurrencePhi(recs []*mic.Record) map[mic.DiseaseID]map[mic.MedicineID]float64 {
	phi := make(map[mic.DiseaseID]map[mic.MedicineID]float64)
	rowSums := make(map[mic.DiseaseID]float64)
	for _, r := range recs {
		for _, dc := range r.Diseases {
			row, ok := phi[dc.Disease]
			if !ok {
				row = make(map[mic.MedicineID]float64)
				phi[dc.Disease] = row
			}
			for _, med := range r.Medicines {
				row[med]++
				rowSums[dc.Disease]++
			}
		}
	}
	for d, row := range phi {
		sum := rowSums[d]
		if sum <= 0 {
			delete(phi, d)
			continue
		}
		for med := range row {
			row[med] /= sum
		}
	}
	return phi
}
