package medmodel

import (
	"context"
	"reflect"
	"testing"

	"mictrend/internal/micgen"
)

// TestReproduceParallelMatchesSerial pins the parallel reproduce contract:
// every worker count yields bit-identical series to the serial Reproduce,
// because each month accumulates locally in record order and merges into its
// own series slot.
func TestReproduceParallelMatchesSerial(t *testing.T) {
	ds, _, err := micgen.Generate(micgen.Config{
		Seed: 9, Months: 10, RecordsPerMonth: 400, BulkDiseases: 6, BulkMedicines: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	models, fails, err := FitAll(context.Background(), ds, FitOptions{MaxIter: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) != 0 {
		t.Fatalf("unexpected month failures: %v", fails)
	}
	serial, err := Reproduce(ds, models)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8, 100} {
		par, err := ReproduceParallel(ds, models, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial.Pairs, par.Pairs) {
			t.Fatalf("workers=%d: pair series differ from serial reproduce", workers)
		}
		if !reflect.DeepEqual(serial.diseaseSeries, par.diseaseSeries) {
			t.Fatalf("workers=%d: disease marginals differ from serial reproduce", workers)
		}
		if !reflect.DeepEqual(serial.medicineSeries, par.medicineSeries) {
			t.Fatalf("workers=%d: medicine marginals differ from serial reproduce", workers)
		}
	}
}
