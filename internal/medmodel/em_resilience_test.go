package medmodel

import (
	"context"
	"errors"
	"testing"

	"mictrend/internal/faultpoint"
	"mictrend/internal/mic"
)

// multiMonth builds a small dataset with n identical fit-able months.
func multiMonth(n int) *mic.Dataset {
	d := mic.NewDataset()
	d.Diseases.Intern("d0")
	d.Diseases.Intern("d1")
	d.Medicines.Intern("m0")
	d.Medicines.Intern("m1")
	d.AddHospital(mic.Hospital{Code: "H"})
	for t := 0; t < n; t++ {
		m := &mic.Monthly{Month: t}
		for i := 0; i < 4; i++ {
			m.Records = append(m.Records, mic.Record{
				Diseases:  []mic.DiseaseCount{{Disease: 0, Count: 1}, {Disease: 1, Count: 1}},
				Medicines: []mic.MedicineID{0, 1},
			})
		}
		d.Months = append(d.Months, m)
	}
	return d
}

func TestFitAllDegradesOnMonthError(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	faultpoint.Enable("medmodel/fit-month", faultpoint.Spec{
		Match: func(detail string) bool { return detail == "2" },
	})
	d := multiMonth(5)
	models, fails, err := FitAll(context.Background(), d, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) != 1 || fails[0].Month != 2 || fails[0].Panicked {
		t.Fatalf("fails = %+v, want one non-panic failure at month 2", fails)
	}
	if !errors.Is(fails[0].Err, faultpoint.ErrInjected) {
		t.Fatalf("failure error = %v, want injected", fails[0].Err)
	}
	for i, m := range models {
		if i == 2 {
			if m != nil {
				t.Fatal("failed month should have a nil model")
			}
			continue
		}
		if m == nil {
			t.Fatalf("month %d model missing", i)
		}
	}
}

func TestFitAllIsolatesWorkerPanic(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	faultpoint.Enable("medmodel/fit-month", faultpoint.Spec{
		Match: func(detail string) bool { return detail == "1" },
		Panic: true,
	})
	d := multiMonth(4)
	opts := FitOptions{Workers: 3}
	models, fails, err := FitAll(context.Background(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) != 1 || fails[0].Month != 1 || !fails[0].Panicked {
		t.Fatalf("fails = %+v, want one panic failure at month 1", fails)
	}
	for i, m := range models {
		if (m == nil) != (i == 1) {
			t.Fatalf("month %d model presence wrong (nil=%v)", i, m == nil)
		}
	}
}

func TestFitAllCancelledReturnsContextError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := multiMonth(4)
	_, _, err := FitAll(ctx, d, FitOptions{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFallbackModelMatchesCooccurrenceInit(t *testing.T) {
	d := multiMonth(1)
	fb := FallbackModel(d.Months[0], d.Medicines.Len())
	if fb == nil || fb.Phi == nil {
		t.Fatal("fallback model missing Φ for a month with usable records")
	}
	// Symmetric records: each disease row splits evenly over both medicines.
	for dID, row := range fb.Phi {
		for mID, v := range row {
			if v != 0.5 {
				t.Fatalf("φ[%d][%d] = %v, want 0.5", dID, mID, v)
			}
		}
	}
	// An empty month still yields a usable (empty-Φ) model, not a nil one.
	empty := &mic.Monthly{Month: 0}
	fb = FallbackModel(empty, d.Medicines.Len())
	if fb == nil || fb.Phi != nil {
		t.Fatalf("empty month fallback = %+v, want model with nil Φ", fb)
	}
}
