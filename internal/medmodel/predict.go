package medmodel

import (
	"sort"

	"mictrend/internal/eval"
	"mictrend/internal/mic"
)

// Perplexity evaluates a predictor on held-out medicines (Eq. 11): test[i]
// holds the medicines withheld from month.Records[i]; the probability of
// each is scored in the context of the (training-side) record.
func Perplexity(p Predictor, month *mic.Monthly, test [][]mic.MedicineID) (float64, error) {
	var acc eval.PerplexityAccumulator
	for i := range month.Records {
		r := &month.Records[i]
		for _, med := range test[i] {
			acc.Add(p.ProbMedicine(r, med))
		}
	}
	return acc.Perplexity()
}

// PhiRanker exposes a per-disease medicine distribution; satisfied by Model
// and Cooccurrence.
type PhiRanker interface {
	PhiRow(d mic.DiseaseID) map[mic.MedicineID]float64
}

// RankMedicines ranks medicines for a disease by the total estimated
// prescription count Σ_t x_dmt over a set of monthly rankers (§VIII-A2),
// most prescribed first. Scores are the reproduced counts, so the ranking is
// exactly the one the paper evaluates with AP@10/NDCG@10.
func RankMedicines(sets []*SeriesSet, d mic.DiseaseID) []mic.MedicineID {
	totals := make(map[mic.MedicineID]float64)
	for _, s := range sets {
		for pair, series := range s.Pairs {
			if pair.Disease != d {
				continue
			}
			for _, v := range series {
				totals[pair.Medicine] += v
			}
		}
	}
	meds := make([]mic.MedicineID, 0, len(totals))
	for m := range totals {
		meds = append(meds, m)
	}
	sort.Slice(meds, func(a, b int) bool {
		ta, tb := totals[meds[a]], totals[meds[b]]
		if ta != tb {
			return ta > tb
		}
		return meds[a] < meds[b]
	})
	return meds
}
