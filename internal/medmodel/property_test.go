package medmodel

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"mictrend/internal/mic"
)

// randomMonth builds a random but valid month: nDiseases/nMeds vocabulary,
// records with 1–4 diseases and 1–5 medicines.
func randomMonth(rng *rand.Rand, records, nDiseases, nMeds int) *mic.Monthly {
	m := &mic.Monthly{Month: 0}
	for i := 0; i < records; i++ {
		r := mic.Record{}
		nd := 1 + rng.IntN(4)
		seen := map[mic.DiseaseID]bool{}
		for j := 0; j < nd; j++ {
			d := mic.DiseaseID(rng.IntN(nDiseases))
			if seen[d] {
				continue
			}
			seen[d] = true
			r.Diseases = append(r.Diseases, mic.DiseaseCount{Disease: d, Count: 1 + rng.IntN(3)})
		}
		nm := 1 + rng.IntN(5)
		for j := 0; j < nm; j++ {
			r.Medicines = append(r.Medicines, mic.MedicineID(rng.IntN(nMeds)))
		}
		m.Records = append(m.Records, r)
	}
	return m
}

// Property: on any random month, EM converges to a model whose φ rows are
// probability distributions and whose log-likelihood is at least the
// cooccurrence initialization's.
func TestEMInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 31))
		month := randomMonth(rng, 40, 6, 8)
		recs, err := usableRecords(month)
		if err != nil {
			return true // degenerate random month: nothing to check
		}
		initLL := logLikelihood(recs, cooccurrencePhi(recs))
		model, err := Fit(month, 8, FitOptions{MaxIter: 25})
		if err != nil {
			return false
		}
		if model.LogLik < initLL-1e-9 {
			return false
		}
		for _, row := range model.Phi {
			var sum float64
			for _, p := range row {
				if p < 0 {
					return false
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: responsibilities always form a distribution over the record's
// diseases, for any medicine (seen or unseen).
func TestResponsibilityDistributionProperty(t *testing.T) {
	f := func(seed uint64, medRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 32))
		month := randomMonth(rng, 30, 5, 6)
		model, err := Fit(month, 6, FitOptions{MaxIter: 15})
		if err != nil {
			return false
		}
		r := &month.Records[rng.IntN(len(month.Records))]
		q := model.Responsibility(r, mic.MedicineID(medRaw%10))
		var sum float64
		for d, v := range q {
			if v < 0 || !r.HasDisease(d) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: reproduction conserves per-month medicine counts for any random
// corpus (Σ_d x_dmt = raw count of m in month t).
func TestReproduceConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 33))
		d := mic.NewDataset()
		for i := 0; i < 5; i++ {
			d.Diseases.Intern(string(rune('a' + i)))
		}
		for i := 0; i < 6; i++ {
			d.Medicines.Intern(string(rune('A' + i)))
		}
		d.AddHospital(mic.Hospital{Code: "H"})
		for t := 0; t < 3; t++ {
			m := randomMonth(rng, 25, 5, 6)
			m.Month = t
			d.Months = append(d.Months, m)
		}
		models, fails, err := FitAll(context.Background(), d, FitOptions{MaxIter: 10})
		if err != nil || len(fails) != 0 {
			return false
		}
		set, err := Reproduce(d, models)
		if err != nil {
			return false
		}
		for t, month := range d.Months {
			for med, f := range month.MedicineFrequencies() {
				series := set.Medicine(med)
				if series == nil {
					return false
				}
				if math.Abs(series[t]-float64(f)) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
