package medmodel

import (
	"context"
	"errors"
	"math"
	"testing"

	"mictrend/internal/mic"
)

// twoDisease builds the canonical disambiguation corpus: disease 0 is always
// treated with medicine 0, disease 1 with medicine 1, but mixed records
// contain both bags with no links.
func twoDiseaseMonth() *mic.Monthly {
	m := &mic.Monthly{Month: 0}
	// Pure records pin down the associations.
	for i := 0; i < 10; i++ {
		m.Records = append(m.Records,
			mic.Record{Diseases: []mic.DiseaseCount{{Disease: 0, Count: 1}}, Medicines: []mic.MedicineID{0}},
			mic.Record{Diseases: []mic.DiseaseCount{{Disease: 1, Count: 1}}, Medicines: []mic.MedicineID{1}},
		)
	}
	// Mixed records are ambiguous on their own.
	for i := 0; i < 10; i++ {
		m.Records = append(m.Records,
			mic.Record{Diseases: []mic.DiseaseCount{{Disease: 0, Count: 1}, {Disease: 1, Count: 1}}, Medicines: []mic.MedicineID{0, 1}},
		)
	}
	return m
}

func TestTheta(t *testing.T) {
	r := &mic.Record{Diseases: []mic.DiseaseCount{{Disease: 0, Count: 3}, {Disease: 1, Count: 1}}}
	theta := Theta(r)
	if math.Abs(theta[0]-0.75) > 1e-12 || math.Abs(theta[1]-0.25) > 1e-12 {
		t.Fatalf("theta = %v", theta)
	}
	empty := Theta(&mic.Record{})
	if len(empty) != 0 {
		t.Fatal("empty record should have empty theta")
	}
}

func TestEstimateEta(t *testing.T) {
	m := &mic.Monthly{Records: []mic.Record{
		{Diseases: []mic.DiseaseCount{{Disease: 0, Count: 3}}},
		{Diseases: []mic.DiseaseCount{{Disease: 1, Count: 1}}},
	}}
	eta := EstimateEta(m)
	if math.Abs(eta[0]-0.75) > 1e-12 || math.Abs(eta[1]-0.25) > 1e-12 {
		t.Fatalf("eta = %v", eta)
	}
	var sum float64
	for _, v := range eta {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("eta sums to %v", sum)
	}
}

func TestEMDisambiguatesLinks(t *testing.T) {
	month := twoDiseaseMonth()
	model, err := Fit(month, 2, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// After EM, disease 0 should almost exclusively generate medicine 0.
	if model.Phi[0][0] < 0.95 {
		t.Fatalf("phi[0][0] = %v, want > 0.95", model.Phi[0][0])
	}
	if model.Phi[1][1] < 0.95 {
		t.Fatalf("phi[1][1] = %v, want > 0.95", model.Phi[1][1])
	}
	// The cooccurrence baseline cannot: mixed records pollute it.
	cooc, err := FitCooccurrence(month, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cooc.Phi[0][1] < 0.2 {
		t.Fatalf("cooccurrence phi[0][1] = %v, expected pollution > 0.2", cooc.Phi[0][1])
	}
}

func TestPhiRowsSumToOne(t *testing.T) {
	model, err := Fit(twoDiseaseMonth(), 2, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for d, row := range model.Phi {
		var sum float64
		for _, p := range row {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("phi[%d] sums to %v", d, sum)
		}
	}
}

func TestEMLogLikImproves(t *testing.T) {
	month := twoDiseaseMonth()
	one, err := Fit(month, 2, FitOptions{MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Fit(month, 2, FitOptions{MaxIter: 30})
	if err != nil {
		t.Fatal(err)
	}
	if many.LogLik < one.LogLik-1e-9 {
		t.Fatalf("EM decreased log-likelihood: %v -> %v", one.LogLik, many.LogLik)
	}
	if many.Iterations < 2 {
		t.Fatalf("expected multiple iterations, got %d", many.Iterations)
	}
}

func TestResponsibilitySumsToOne(t *testing.T) {
	model, err := Fit(twoDiseaseMonth(), 2, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := &mic.Record{Diseases: []mic.DiseaseCount{{Disease: 0, Count: 1}, {Disease: 1, Count: 2}}, Medicines: []mic.MedicineID{0}}
	q := model.Responsibility(r, 0)
	var sum float64
	for _, v := range q {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("responsibility sums to %v", sum)
	}
	// Medicine 0 belongs to disease 0.
	if q[0] < 0.9 {
		t.Fatalf("q[d0] = %v, want ≈1", q[0])
	}
	// Unknown medicine: fall back to theta.
	q99 := model.Responsibility(r, 99)
	if math.Abs(q99[1]-2.0/3.0) > 1e-9 {
		t.Fatalf("fallback responsibility = %v", q99)
	}
}

func TestProbMedicineSmoothing(t *testing.T) {
	model, err := Fit(twoDiseaseMonth(), 10, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := &mic.Record{Diseases: []mic.DiseaseCount{{Disease: 0, Count: 1}}}
	// Unseen medicine still has positive probability.
	if p := model.ProbMedicine(r, 9); p <= 0 {
		t.Fatalf("unseen medicine probability = %v", p)
	}
	// Seen medicine dominates.
	if model.ProbMedicine(r, 0) < 1e3*model.ProbMedicine(r, 9) {
		t.Fatal("seen medicine should dominate unseen")
	}
}

func TestFitRejectsEmptyMonth(t *testing.T) {
	_, err := Fit(&mic.Monthly{}, 5, FitOptions{})
	if !errors.Is(err, ErrEmptyMonth) {
		t.Fatalf("err = %v", err)
	}
	if _, err := FitCooccurrence(&mic.Monthly{}, 5); err == nil {
		t.Fatal("cooccurrence accepted empty month")
	}
	if _, err := FitUnigram(&mic.Monthly{}, 5); err == nil {
		t.Fatal("unigram accepted empty month")
	}
}

func TestUnigramIgnoresContext(t *testing.T) {
	month := twoDiseaseMonth()
	u, err := FitUnigram(month, 2)
	if err != nil {
		t.Fatal(err)
	}
	r0 := &mic.Record{Diseases: []mic.DiseaseCount{{Disease: 0, Count: 1}}}
	r1 := &mic.Record{Diseases: []mic.DiseaseCount{{Disease: 1, Count: 1}}}
	if u.ProbMedicine(r0, 0) != u.ProbMedicine(r1, 0) {
		t.Fatal("unigram probability must not depend on the record")
	}
	// Both medicines equally frequent here.
	if math.Abs(u.ProbMedicine(r0, 0)-u.ProbMedicine(r0, 1)) > 1e-12 {
		t.Fatal("equal-frequency medicines should have equal unigram probability")
	}
}

func TestPerplexityOrdering(t *testing.T) {
	// The proposed model should beat unigram decisively on the
	// disambiguation corpus when testing medicines in pure records.
	month := twoDiseaseMonth()
	model, err := Fit(month, 2, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	u, err := FitUnigram(month, 2)
	if err != nil {
		t.Fatal(err)
	}
	test := make([][]mic.MedicineID, len(month.Records))
	for i := range month.Records {
		// Hold out every medicine of the pure records.
		if len(month.Records[i].Diseases) == 1 {
			test[i] = month.Records[i].Medicines
		}
	}
	pplModel, err := Perplexity(model, month, test)
	if err != nil {
		t.Fatal(err)
	}
	pplUnigram, err := Perplexity(u, month, test)
	if err != nil {
		t.Fatal(err)
	}
	if pplModel >= pplUnigram {
		t.Fatalf("proposed ppl %v should beat unigram %v", pplModel, pplUnigram)
	}
}

func TestReproduceConservesCounts(t *testing.T) {
	d := mic.NewDataset()
	d.Diseases.Intern("d0")
	d.Diseases.Intern("d1")
	d.Medicines.Intern("m0")
	d.Medicines.Intern("m1")
	d.AddHospital(mic.Hospital{Code: "H"})
	d.Months = []*mic.Monthly{twoDiseaseMonth()}
	models, fails, err := FitAll(context.Background(), d, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) != 0 {
		t.Fatalf("unexpected month failures: %v", fails)
	}
	set, err := Reproduce(d, models)
	if err != nil {
		t.Fatal(err)
	}
	// Σ_d x_dmt must equal the number of occurrences of m in month t,
	// because responsibilities sum to one per occurrence.
	medFreq := d.Months[0].MedicineFrequencies()
	for m, f := range medFreq {
		series := set.Medicine(m)
		if series == nil {
			t.Fatalf("medicine %d missing from reproduction", m)
		}
		if math.Abs(series[0]-float64(f)) > 1e-6 {
			t.Fatalf("medicine %d: reproduced %v, actual %d", m, series[0], f)
		}
	}
	// Pair series must be consistent with marginals.
	var totalPairs float64
	for _, series := range set.Pairs {
		totalPairs += series[0]
	}
	var totalMeds float64
	for _, f := range medFreq {
		totalMeds += float64(f)
	}
	if math.Abs(totalPairs-totalMeds) > 1e-6 {
		t.Fatalf("pair total %v != medicine total %v", totalPairs, totalMeds)
	}
}

func TestReproduceResolvesMixedRecords(t *testing.T) {
	d := mic.NewDataset()
	d.Diseases.Intern("d0")
	d.Diseases.Intern("d1")
	d.Medicines.Intern("m0")
	d.Medicines.Intern("m1")
	d.AddHospital(mic.Hospital{Code: "H"})
	d.Months = []*mic.Monthly{twoDiseaseMonth()}
	models, fails, err := FitAll(context.Background(), d, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) != 0 {
		t.Fatalf("unexpected month failures: %v", fails)
	}
	set, err := Reproduce(d, models)
	if err != nil {
		t.Fatal(err)
	}
	cross := set.Pair(mic.Pair{Disease: 0, Medicine: 1})
	var crossCount float64
	if cross != nil {
		crossCount = cross[0]
	}
	direct := set.Pair(mic.Pair{Disease: 0, Medicine: 0})
	if direct == nil || direct[0] < 15 {
		t.Fatalf("direct pair count = %v, want ≈20", direct)
	}
	if crossCount > 1.0 {
		t.Fatalf("cross pair count = %v, want ≈0", crossCount)
	}

	// The cooccurrence baseline, in contrast, leaves substantial cross mass.
	coocs := make([]*Cooccurrence, 1)
	coocs[0], err = FitCooccurrence(d.Months[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	coocSet, err := ReproduceCooccurrence(d, coocs)
	if err != nil {
		t.Fatal(err)
	}
	coocCross := coocSet.Pair(mic.Pair{Disease: 0, Medicine: 1})
	if coocCross == nil || coocCross[0] < 2 {
		t.Fatalf("cooccurrence cross count = %v, expected pollution", coocCross)
	}
}

func TestFilterMinTotal(t *testing.T) {
	s := &SeriesSet{T: 2, Pairs: map[mic.Pair][]float64{
		{Disease: 0, Medicine: 0}: {5, 6},
		{Disease: 0, Medicine: 1}: {1, 0},
	}}
	s.buildMarginals()
	f := s.FilterMinTotal(10)
	if len(f.Pairs) != 1 {
		t.Fatalf("filtered pairs = %d, want 1", len(f.Pairs))
	}
	if f.Pair(mic.Pair{Disease: 0, Medicine: 0}) == nil {
		t.Fatal("frequent pair dropped")
	}
	if got := len(f.Medicines()); got != 1 {
		t.Fatalf("medicines after filter = %d", got)
	}
}

func TestRankMedicines(t *testing.T) {
	s := &SeriesSet{T: 1, Pairs: map[mic.Pair][]float64{
		{Disease: 0, Medicine: 0}: {3},
		{Disease: 0, Medicine: 1}: {10},
		{Disease: 0, Medicine: 2}: {1},
		{Disease: 1, Medicine: 0}: {99}, // other disease must not interfere
	}}
	s.buildMarginals()
	ranked := RankMedicines([]*SeriesSet{s}, 0)
	if len(ranked) != 3 || ranked[0] != 1 || ranked[1] != 0 || ranked[2] != 2 {
		t.Fatalf("ranked = %v", ranked)
	}
}

func TestReproduceRequiresOneModelPerMonth(t *testing.T) {
	d := mic.NewDataset()
	d.Months = []*mic.Monthly{{Month: 0}, {Month: 1}}
	if _, err := Reproduce(d, []*Model{}); err == nil {
		t.Fatal("model count mismatch accepted")
	}
}
