package medmodel

import (
	"context"
	"strings"
	"testing"

	"mictrend/internal/faultpoint"
	"mictrend/internal/obs"
)

// TestFitConvergenceTrace pins the TraceConvergence contract: the recorded
// per-iteration log-likelihoods end at the final LogLik, one entry per
// iteration — and stay nil when tracing is off.
func TestFitConvergenceTrace(t *testing.T) {
	d := multiMonth(1)
	plain, err := Fit(d.Months[0], d.Medicines.Len(), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.LogLikTrace != nil {
		t.Fatal("untraced fit allocated a convergence trace")
	}
	traced, err := Fit(d.Months[0], d.Medicines.Len(), FitOptions{TraceConvergence: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(traced.LogLikTrace) != traced.Iterations {
		t.Fatalf("trace length %d, want %d iterations", len(traced.LogLikTrace), traced.Iterations)
	}
	if got := traced.LogLikTrace[len(traced.LogLikTrace)-1]; got != traced.LogLik {
		t.Fatalf("trace ends at %v, want final LogLik %v", got, traced.LogLik)
	}
	if traced.LogLik != plain.LogLik || traced.Iterations != plain.Iterations {
		t.Fatal("tracing changed the fit")
	}
	// Same contract on the smoothed path.
	smoothed, err := FitSmoothed(d.Months[0], d.Medicines.Len(),
		FitOptions{TraceConvergence: true}, traced, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(smoothed.LogLikTrace) != smoothed.Iterations {
		t.Fatalf("smoothed trace length %d, want %d", len(smoothed.LogLikTrace), smoothed.Iterations)
	}
}

// TestFitAllMonthSpans pins the span contract: one em/month span per month,
// emitted in ascending month order for any worker count, with the failed
// month's span carrying its error.
func TestFitAllMonthSpans(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	faultpoint.Enable("medmodel/fit-month", faultpoint.Spec{
		Match: func(detail string) bool { return detail == "2" },
	})
	d := multiMonth(5)
	for _, workers := range []int{1, 3} {
		var got []obs.SpanEvent
		_, fails, err := FitAll(context.Background(), d, FitOptions{
			Workers: workers,
			Trace:   func(sp obs.SpanEvent) { got = append(got, sp) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(fails) != 1 {
			t.Fatalf("workers %d: fails = %+v", workers, fails)
		}
		if len(got) != 5 {
			t.Fatalf("workers %d: %d spans, want 5", workers, len(got))
		}
		for i, sp := range got {
			if sp.Name != "em/month" || sp.Cat != "em" || sp.TID != obs.LaneEM {
				t.Fatalf("workers %d: span %d mislabelled: %+v", workers, i, sp)
			}
			if sp.Month != i {
				t.Fatalf("workers %d: span %d out of month order (month %d)", workers, i, sp.Month)
			}
			if (sp.Err != "") != (i == 2) {
				t.Fatalf("workers %d: span %d error %q, failure belongs to month 2", workers, i, sp.Err)
			}
			if i != 2 && !strings.HasPrefix(sp.Detail, "iters=") {
				t.Fatalf("workers %d: span %d detail %q, want iteration count", workers, i, sp.Detail)
			}
		}
	}
}
