package medmodel

import (
	"context"
	"reflect"
	"testing"

	"mictrend/internal/micgen"
)

// TestFitAllParallelMatchesSerial checks that the concurrent FitAll produces
// byte-identical models to a serial month-by-month loop: the dense-indexed
// EM is deterministic, so parallelism must not change a single bit.
func TestFitAllParallelMatchesSerial(t *testing.T) {
	ds, _, err := micgen.Generate(micgen.Config{
		Seed: 42, Months: 8, RecordsPerMonth: 300, BulkDiseases: 6, BulkMedicines: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := FitOptions{MaxIter: 15}

	serial := make([]*Model, ds.T())
	for i, month := range ds.Months {
		m, err := Fit(month, ds.Medicines.Len(), opts)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = m
	}

	opts.Workers = 4
	parallel, fails, err := FitAll(context.Background(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) != 0 {
		t.Fatalf("unexpected month failures: %v", fails)
	}
	if len(parallel) != len(serial) {
		t.Fatalf("parallel FitAll returned %d models, want %d", len(parallel), len(serial))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.LogLik != p.LogLik {
			t.Errorf("month %d: LogLik parallel %v != serial %v", i, p.LogLik, s.LogLik)
		}
		if s.Iterations != p.Iterations {
			t.Errorf("month %d: Iterations parallel %d != serial %d", i, p.Iterations, s.Iterations)
		}
		if !reflect.DeepEqual(s.Eta, p.Eta) {
			t.Errorf("month %d: Eta differs between parallel and serial", i)
		}
		if !reflect.DeepEqual(s.Phi, p.Phi) {
			t.Errorf("month %d: Phi differs between parallel and serial", i)
		}
	}
}

// TestFitDeterministic checks repeated fits of the same month are
// bit-identical — the property the parallel FitAll relies on.
func TestFitDeterministic(t *testing.T) {
	ds, _, err := micgen.Generate(micgen.Config{
		Seed: 9, Months: 1, RecordsPerMonth: 400, BulkDiseases: 6, BulkMedicines: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Fit(ds.Months[0], ds.Medicines.Len(), FitOptions{MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(ds.Months[0], ds.Medicines.Len(), FitOptions{MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	if a.LogLik != b.LogLik || !reflect.DeepEqual(a.Phi, b.Phi) {
		t.Fatal("Fit is not deterministic across repeated runs")
	}
}
