package medmodel

import "mictrend/internal/mic"

// Cooccurrence is the paper's main baseline (Eq. 10): φ_dm estimated from
// raw disease–medicine cooccurrence counts, with the same θ-weighted mixture
// prediction as the proposed model. Its weakness — frequent medicines leak
// probability onto every disease they merely share records with (paper
// Fig. 2a) — is what the latent-variable model fixes.
type Cooccurrence struct {
	Phi map[mic.DiseaseID]map[mic.MedicineID]float64
	M   int
}

// FitCooccurrence estimates the baseline for one month.
func FitCooccurrence(month *mic.Monthly, vocabMedicines int) (*Cooccurrence, error) {
	recs, err := usableRecords(month)
	if err != nil {
		return nil, err
	}
	return &Cooccurrence{Phi: cooccurrencePhi(recs), M: vocabMedicines}, nil
}

// Name implements Predictor.
func (c *Cooccurrence) Name() string { return "Cooccurrence" }

// ProbMedicine returns the θ-weighted mixture probability under the
// cooccurrence φ.
func (c *Cooccurrence) ProbMedicine(r *mic.Record, med mic.MedicineID) float64 {
	var p float64
	for d, th := range Theta(r) {
		if row, ok := c.Phi[d]; ok {
			p += th * row[med]
		}
	}
	return smooth(p, c.M)
}

// PhiRow returns the cooccurrence φ_d.
func (c *Cooccurrence) PhiRow(d mic.DiseaseID) map[mic.MedicineID]float64 { return c.Phi[d] }

// Unigram is the paper's weaker baseline: a record-independent medicine
// frequency model (Song & Croft style language model).
type Unigram struct {
	Prob map[mic.MedicineID]float64
	M    int
}

// FitUnigram estimates medicine frequencies for one month.
func FitUnigram(month *mic.Monthly, vocabMedicines int) (*Unigram, error) {
	if _, err := usableRecords(month); err != nil {
		return nil, err
	}
	freq := month.MedicineFrequencies()
	var total float64
	for _, f := range freq {
		total += float64(f)
	}
	prob := make(map[mic.MedicineID]float64, len(freq))
	for m, f := range freq {
		prob[m] = float64(f) / total
	}
	return &Unigram{Prob: prob, M: vocabMedicines}, nil
}

// Name implements Predictor.
func (u *Unigram) Name() string { return "Unigram" }

// ProbMedicine ignores the record context entirely.
func (u *Unigram) ProbMedicine(_ *mic.Record, med mic.MedicineID) float64 {
	return smooth(u.Prob[med], u.M)
}
