package medmodel

import (
	"context"
	"math"
	"sort"

	"mictrend/internal/mic"
)

// The paper's §IX names temporal evolution of the distributions (Dynamic
// Topic Model / Topic Tracking Model style) as the most promising extension
// of the medication model. FitSmoothed implements it as maximum a posteriori
// EM: each month's φ_d carries a Dirichlet prior centered at the previous
// month's fitted distribution with concentration PriorWeight, which
// stabilizes sparse months without constraining months with plenty of data.

// thetaEntry is one (disease, θ_rd) pair of a record's topic mixture held in
// ascending-disease order, so every float accumulation over a record's θ runs
// in a fixed order. Iterating the Theta map directly would sum in Go's
// randomized map order, and float addition is not associative — two fits of
// the same month could then differ in the last bits, which breaks the
// byte-identical checkpoint-resume contract.
type thetaEntry struct {
	d  mic.DiseaseID
	th float64
}

func sortedTheta(r *mic.Record) []thetaEntry {
	theta := Theta(r)
	out := make([]thetaEntry, 0, len(theta))
	for d, th := range theta {
		out = append(out, thetaEntry{d: d, th: th})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].d < out[b].d })
	return out
}

// sortedRowKeys returns a φ row's medicine ids in ascending order.
func sortedRowKeys(row map[mic.MedicineID]float64) []mic.MedicineID {
	meds := make([]mic.MedicineID, 0, len(row))
	for med := range row {
		meds = append(meds, med)
	}
	sort.Slice(meds, func(a, b int) bool { return meds[a] < meds[b] })
	return meds
}

// FitSmoothed fits one month with a Dirichlet prior centered at prior's φ.
// priorWeight is the pseudo-count mass added per disease (0 disables the
// prior and reduces to Fit). The prior also extends the support: a pair
// absent from this month's cooccurrences but present in the prior keeps
// probability mass, so rare pairs do not flicker in and out month to month.
//
// Results are deterministic: every accumulation runs in sorted key order, so
// refitting the same month against the same prior is bit-identical — the
// property the crash-recovery tests assert for the smoothed chain.
func FitSmoothed(month *mic.Monthly, vocabMedicines int, opts FitOptions, prior *Model, priorWeight float64) (*Model, error) {
	if prior == nil || priorWeight <= 0 {
		return Fit(month, vocabMedicines, opts)
	}
	opts = opts.withDefaults()
	recs, err := usableRecords(month)
	if err != nil {
		return nil, err
	}

	// Initialize from this month's cooccurrences blended with the prior.
	phi := cooccurrencePhi(recs)
	blendPrior(phi, prior.Phi, priorWeight)

	// Fix the iteration orders once: per-record θ ascending by disease, and
	// the prior's rows and entries ascending by id.
	thetas := make([][]thetaEntry, len(recs))
	for i, r := range recs {
		thetas[i] = sortedTheta(r)
	}
	priorDiseases := make([]mic.DiseaseID, 0, len(prior.Phi))
	for d := range prior.Phi {
		priorDiseases = append(priorDiseases, d)
	}
	sort.Slice(priorDiseases, func(a, b int) bool { return priorDiseases[a] < priorDiseases[b] })
	priorMeds := make([][]mic.MedicineID, len(priorDiseases))
	for i, d := range priorDiseases {
		priorMeds[i] = sortedRowKeys(prior.Phi[d])
	}

	model := &Model{
		Eta: EstimateEta(month),
		Phi: phi,
		M:   vocabMedicines,
	}
	prevLL := negInf()
	for iter := 0; iter < opts.MaxIter; iter++ {
		next := make(map[mic.DiseaseID]map[mic.MedicineID]float64, len(phi))
		rowSums := make(map[mic.DiseaseID]float64, len(phi))
		// E/M accumulation as in Fit…
		for ri, r := range recs {
			theta := thetas[ri]
			for _, med := range r.Medicines {
				var denom float64
				for _, e := range theta {
					if row, ok := phi[e.d]; ok {
						denom += e.th * row[med]
					}
				}
				if denom <= 0 {
					continue
				}
				for _, e := range theta {
					row, ok := phi[e.d]
					if !ok {
						continue
					}
					q := e.th * row[med] / denom
					if q == 0 {
						continue
					}
					nrow, ok := next[e.d]
					if !ok {
						nrow = make(map[mic.MedicineID]float64)
						next[e.d] = nrow
					}
					nrow[med] += q
					rowSums[e.d] += q
				}
			}
		}
		// …plus the MAP step: add priorWeight·φ_prev as pseudo-counts.
		for i, d := range priorDiseases {
			prow := prior.Phi[d]
			nrow, ok := next[d]
			if !ok {
				nrow = make(map[mic.MedicineID]float64)
				next[d] = nrow
			}
			for _, med := range priorMeds[i] {
				add := priorWeight * prow[med]
				nrow[med] += add
				rowSums[d] += add
			}
		}
		for d, nrow := range next {
			sum := rowSums[d]
			if sum <= 0 {
				delete(next, d)
				continue
			}
			for med := range nrow {
				nrow[med] /= sum
			}
		}
		phi = next
		model.Phi = phi
		model.Iterations = iter + 1

		ll := logLikelihoodSorted(recs, thetas, phi)
		model.LogLik = ll
		if opts.TraceConvergence {
			model.LogLikTrace = append(model.LogLikTrace, ll)
		}
		if prevLL != negInf() {
			denom := prevLL
			if denom < 0 {
				denom = -denom
			}
			if denom == 0 {
				denom = 1
			}
			if (ll-prevLL)/denom < opts.Tol {
				break
			}
		}
		prevLL = ll
	}
	return model, nil
}

// logLikelihoodSorted is logLikelihood with the per-record θ already fixed in
// sorted order, keeping the convergence checks (and thus the stopping
// iteration) deterministic.
func logLikelihoodSorted(recs []*mic.Record, thetas [][]thetaEntry, phi map[mic.DiseaseID]map[mic.MedicineID]float64) float64 {
	var ll float64
	for ri, r := range recs {
		theta := thetas[ri]
		for _, med := range r.Medicines {
			var p float64
			for _, e := range theta {
				if row, ok := phi[e.d]; ok {
					p += e.th * row[med]
				}
			}
			if p <= 0 {
				p = math.SmallestNonzeroFloat64
			}
			ll += math.Log(p)
		}
	}
	return ll
}

// FitAllSmoothed fits one model per month, chaining each month's prior to
// the previous month's posterior. The chain is inherently serial, so ctx is
// checked between months: cancellation returns the months fitted so far with
// ctx's error.
//
// Deprecated: set FitOptions.PriorWeight and call FitAll, which runs the same
// serial chain but degrades per month (MonthError) instead of failing fast.
// This wrapper preserves the old fail-fast contract by returning the first
// month failure as its error.
func FitAllSmoothed(ctx context.Context, d *mic.Dataset, opts FitOptions, priorWeight float64) ([]*Model, error) {
	opts.PriorWeight = priorWeight
	if priorWeight <= 0 {
		// FitAll would treat 0 as "independent months, parallel"; the old
		// contract was a serial chain that reduces to plain fits. The models
		// are identical either way, but keep it serial for faithfulness.
		opts.Workers = 1
	}
	models, monthErrs, err := FitAll(ctx, d, opts)
	if err != nil {
		return models, err
	}
	if len(monthErrs) > 0 {
		return nil, monthErrs[0].Err
	}
	return models, nil
}

// blendPrior mixes prior rows into phi so the EM support covers both. Both
// the pseudo-count additions and the renormalizing sum run in ascending key
// order so the blend is bit-deterministic.
func blendPrior(phi, prior map[mic.DiseaseID]map[mic.MedicineID]float64, weight float64) {
	// Normalize the blend as (counts-model): current rows are distributions;
	// treat the prior as weight pseudo-observations against 1 unit of the
	// cooccurrence distribution, then re-normalize.
	diseases := make([]mic.DiseaseID, 0, len(prior))
	for d := range prior {
		diseases = append(diseases, d)
	}
	sort.Slice(diseases, func(a, b int) bool { return diseases[a] < diseases[b] })
	for _, d := range diseases {
		prow := prior[d]
		row, ok := phi[d]
		if !ok {
			row = make(map[mic.MedicineID]float64)
			phi[d] = row
		}
		for _, med := range sortedRowKeys(prow) {
			row[med] += weight * prow[med]
		}
		var sum float64
		for _, med := range sortedRowKeys(row) {
			sum += row[med]
		}
		if sum > 0 {
			for med := range row {
				row[med] /= sum
			}
		}
	}
}

func negInf() float64 { return math.Inf(-1) }
