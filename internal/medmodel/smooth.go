package medmodel

import (
	"context"
	"math"

	"mictrend/internal/mic"
)

// The paper's §IX names temporal evolution of the distributions (Dynamic
// Topic Model / Topic Tracking Model style) as the most promising extension
// of the medication model. FitSmoothed implements it as maximum a posteriori
// EM: each month's φ_d carries a Dirichlet prior centered at the previous
// month's fitted distribution with concentration PriorWeight, which
// stabilizes sparse months without constraining months with plenty of data.

// FitSmoothed fits one month with a Dirichlet prior centered at prior's φ.
// priorWeight is the pseudo-count mass added per disease (0 disables the
// prior and reduces to Fit). The prior also extends the support: a pair
// absent from this month's cooccurrences but present in the prior keeps
// probability mass, so rare pairs do not flicker in and out month to month.
func FitSmoothed(month *mic.Monthly, vocabMedicines int, opts FitOptions, prior *Model, priorWeight float64) (*Model, error) {
	if prior == nil || priorWeight <= 0 {
		return Fit(month, vocabMedicines, opts)
	}
	opts = opts.withDefaults()
	recs, err := usableRecords(month)
	if err != nil {
		return nil, err
	}

	// Initialize from this month's cooccurrences blended with the prior.
	phi := cooccurrencePhi(recs)
	blendPrior(phi, prior.Phi, priorWeight)

	model := &Model{
		Eta: EstimateEta(month),
		Phi: phi,
		M:   vocabMedicines,
	}
	prevLL := negInf()
	for iter := 0; iter < opts.MaxIter; iter++ {
		next := make(map[mic.DiseaseID]map[mic.MedicineID]float64, len(phi))
		rowSums := make(map[mic.DiseaseID]float64, len(phi))
		// E/M accumulation as in Fit…
		for _, r := range recs {
			theta := Theta(r)
			for _, med := range r.Medicines {
				var denom float64
				for d, th := range theta {
					if row, ok := phi[d]; ok {
						denom += th * row[med]
					}
				}
				if denom <= 0 {
					continue
				}
				for d, th := range theta {
					row, ok := phi[d]
					if !ok {
						continue
					}
					q := th * row[med] / denom
					if q == 0 {
						continue
					}
					nrow, ok := next[d]
					if !ok {
						nrow = make(map[mic.MedicineID]float64)
						next[d] = nrow
					}
					nrow[med] += q
					rowSums[d] += q
				}
			}
		}
		// …plus the MAP step: add priorWeight·φ_prev as pseudo-counts.
		for d, prow := range prior.Phi {
			nrow, ok := next[d]
			if !ok {
				nrow = make(map[mic.MedicineID]float64)
				next[d] = nrow
			}
			for med, p := range prow {
				add := priorWeight * p
				nrow[med] += add
				rowSums[d] += add
			}
		}
		for d, nrow := range next {
			sum := rowSums[d]
			if sum <= 0 {
				delete(next, d)
				continue
			}
			for med := range nrow {
				nrow[med] /= sum
			}
		}
		phi = next
		model.Phi = phi
		model.Iterations = iter + 1

		ll := logLikelihood(recs, phi)
		model.LogLik = ll
		if opts.TraceConvergence {
			model.LogLikTrace = append(model.LogLikTrace, ll)
		}
		if prevLL != negInf() {
			denom := prevLL
			if denom < 0 {
				denom = -denom
			}
			if denom == 0 {
				denom = 1
			}
			if (ll-prevLL)/denom < opts.Tol {
				break
			}
		}
		prevLL = ll
	}
	return model, nil
}

// FitAllSmoothed fits one model per month, chaining each month's prior to
// the previous month's posterior. The chain is inherently serial, so ctx is
// checked between months: cancellation returns the months fitted so far with
// ctx's error.
//
// Deprecated: set FitOptions.PriorWeight and call FitAll, which runs the same
// serial chain but degrades per month (MonthError) instead of failing fast.
// This wrapper preserves the old fail-fast contract by returning the first
// month failure as its error.
func FitAllSmoothed(ctx context.Context, d *mic.Dataset, opts FitOptions, priorWeight float64) ([]*Model, error) {
	opts.PriorWeight = priorWeight
	if priorWeight <= 0 {
		// FitAll would treat 0 as "independent months, parallel"; the old
		// contract was a serial chain that reduces to plain fits. The models
		// are identical either way, but keep it serial for faithfulness.
		opts.Workers = 1
	}
	models, monthErrs, err := FitAll(ctx, d, opts)
	if err != nil {
		return models, err
	}
	if len(monthErrs) > 0 {
		return nil, monthErrs[0].Err
	}
	return models, nil
}

// blendPrior mixes prior rows into phi so the EM support covers both.
func blendPrior(phi, prior map[mic.DiseaseID]map[mic.MedicineID]float64, weight float64) {
	// Normalize the blend as (counts-model): current rows are distributions;
	// treat the prior as weight pseudo-observations against 1 unit of the
	// cooccurrence distribution, then re-normalize.
	for d, prow := range prior {
		row, ok := phi[d]
		if !ok {
			row = make(map[mic.MedicineID]float64)
			phi[d] = row
		}
		for med, p := range prow {
			row[med] += weight * p
		}
		var sum float64
		for _, v := range row {
			sum += v
		}
		if sum > 0 {
			for med := range row {
				row[med] /= sum
			}
		}
	}
}

func negInf() float64 { return math.Inf(-1) }
