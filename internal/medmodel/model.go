// Package medmodel implements the paper's primary contribution (§IV): a
// probabilistic medication model with latent variables that simulates how
// physicians prescribe medicines for the diseases they diagnose, recovering
// the disease→medicine prescription links that MIC records omit.
//
// Per monthly dataset, the model is
//
//	d_rn ~ Multinomial(η)           disease diagnosis           (Eq. 4)
//	z_rl ~ Multinomial(θ_r)         medication target, θ_rd = N_rd/N_r (Eq. 2)
//	m_rl ~ Multinomial(φ_{z_rl})    medicine prescription       (Eq. 5–6, EM)
//
// alongside the paper's two baselines: the medicine Unigram model and the
// Cooccurrence model (Eq. 10). Fitted models reproduce the prescription time
// series of Eqs. 7–8, the input of the trend change detector.
package medmodel

import (
	"errors"
	"fmt"
	"math"

	"mictrend/internal/mic"
)

// UniformSmoothing is the weight of the uniform background distribution
// mixed into every predictive probability so that held-out medicines unseen
// by a model keep finite perplexity. Applied identically to the proposed
// model and both baselines (the paper does not specify its handling).
const UniformSmoothing = 1e-6

// ErrEmptyMonth is returned when a model is fitted to a month with no usable
// records.
var ErrEmptyMonth = errors.New("medmodel: month has no records with both diseases and medicines")

// Predictor scores the probability of a medicine being prescribed in the
// context of a record. Implemented by Model, Cooccurrence, and Unigram.
type Predictor interface {
	// ProbMedicine returns P(m | record context), smoothed to be positive.
	ProbMedicine(r *mic.Record, m mic.MedicineID) float64
	// Name identifies the predictor in experiment reports.
	Name() string
}

// Model is the fitted latent-variable medication model for one month.
type Model struct {
	// Eta is the disease distribution η (Eq. 4), indexed by DiseaseID.
	// Diseases absent from the month have probability zero.
	Eta map[mic.DiseaseID]float64
	// Phi[d][m] is the medicine distribution φ_d (Eq. 5). Only diseases and
	// medicines cooccurring somewhere in the month have entries.
	Phi map[mic.DiseaseID]map[mic.MedicineID]float64
	// M is the number of medicines in the vocabulary (for smoothing).
	M int
	// LogLik is the final training log-likelihood (Eq. 3's Φ part).
	LogLik float64
	// Iterations is the number of EM iterations performed.
	Iterations int
	// LogLikTrace is the per-iteration training log-likelihood, recorded only
	// when FitOptions.TraceConvergence is set (nil otherwise). Its last entry
	// equals LogLik and its length equals Iterations.
	LogLikTrace []float64
}

// Name implements Predictor.
func (m *Model) Name() string { return "Proposed" }

// Theta returns θ_rd = N_rd/N_r (Eq. 2) for every disease in the record.
func Theta(r *mic.Record) map[mic.DiseaseID]float64 {
	n := r.NumDiseaseMentions()
	out := make(map[mic.DiseaseID]float64, len(r.Diseases))
	if n == 0 {
		return out
	}
	for _, dc := range r.Diseases {
		out[dc.Disease] += float64(dc.Count) / float64(n)
	}
	return out
}

// ProbMedicine returns P(m | r) = Σ_d θ_rd·φ_dm, mixed with the uniform
// background.
func (m *Model) ProbMedicine(r *mic.Record, med mic.MedicineID) float64 {
	var p float64
	theta := Theta(r)
	for d, th := range theta {
		if row, ok := m.Phi[d]; ok {
			p += th * row[med]
		}
	}
	return smooth(p, m.M)
}

// PhiRow returns φ_d, or nil when the disease never cooccurred with any
// medicine in the month.
func (m *Model) PhiRow(d mic.DiseaseID) map[mic.MedicineID]float64 { return m.Phi[d] }

// Responsibility returns q_rld for each disease of the record given medicine
// m (Eq. 6). The result sums to 1 unless the medicine has zero probability
// under every disease of the record, in which case responsibilities fall
// back to θ (the model is indifferent). The normalizer is accumulated in the
// record's disease order — not map iteration order — so repeated calls are
// bit-identical, which the pipeline's reproducibility guarantees rely on.
func (m *Model) Responsibility(r *mic.Record, med mic.MedicineID) map[mic.DiseaseID]float64 {
	theta := Theta(r)
	out := make(map[mic.DiseaseID]float64, len(theta))
	var total float64
	for _, dc := range r.Diseases {
		d := dc.Disease
		if _, seen := out[d]; seen {
			continue
		}
		var phi float64
		if row, ok := m.Phi[d]; ok {
			phi = row[med]
		}
		w := theta[d] * phi
		out[d] = w
		total += w
	}
	if total <= 0 {
		return theta
	}
	for d := range out {
		out[d] /= total
	}
	return out
}

// smooth mixes a model probability with the uniform background over M
// medicines.
func smooth(p float64, m int) float64 {
	if m <= 0 {
		m = 1
	}
	return (1-UniformSmoothing)*p + UniformSmoothing/float64(m)
}

// validateMonth checks that the month has records usable for fitting and
// returns them.
func usableRecords(month *mic.Monthly) ([]*mic.Record, error) {
	var recs []*mic.Record
	for i := range month.Records {
		r := &month.Records[i]
		if len(r.Diseases) > 0 && len(r.Medicines) > 0 {
			recs = append(recs, r)
		}
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("%w (month %d)", ErrEmptyMonth, month.Month)
	}
	return recs, nil
}

// EstimateEta computes η (Eq. 4): disease frequencies normalized across the
// month.
func EstimateEta(month *mic.Monthly) map[mic.DiseaseID]float64 {
	freq := month.DiseaseFrequencies()
	var total float64
	for _, f := range freq {
		total += float64(f)
	}
	out := make(map[mic.DiseaseID]float64, len(freq))
	if total == 0 {
		return out
	}
	for d, f := range freq {
		out[d] = float64(f) / total
	}
	return out
}

// logLikelihood computes the Φ part of Eq. 3 for the given records.
func logLikelihood(recs []*mic.Record, phi map[mic.DiseaseID]map[mic.MedicineID]float64) float64 {
	var ll float64
	for _, r := range recs {
		theta := Theta(r)
		for _, med := range r.Medicines {
			var p float64
			for d, th := range theta {
				if row, ok := phi[d]; ok {
					p += th * row[med]
				}
			}
			if p <= 0 {
				p = math.SmallestNonzeroFloat64
			}
			ll += math.Log(p)
		}
	}
	return ll
}
