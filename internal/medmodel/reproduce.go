package medmodel

import (
	"errors"
	"runtime"
	"sort"
	"sync"

	"mictrend/internal/mic"
)

// SeriesSet holds reproduced monthly time series: Pairs is the paper's
// X_P (Eq. 7); disease and medicine series (Eq. 8) are marginal sums.
type SeriesSet struct {
	// T is the number of months.
	T int
	// Pairs maps each disease–medicine pair to its monthly estimated
	// prescription counts.
	Pairs map[mic.Pair][]float64

	diseaseSeries  map[mic.DiseaseID][]float64
	medicineSeries map[mic.MedicineID][]float64
}

// linkEstimator distributes each medicine occurrence of a record over the
// record's diseases; implemented by the proposed model (responsibilities,
// Eq. 7) and by the cooccurrence baseline (θ-weighted φ, the paper's Fig. 2a
// comparator).
type linkEstimator interface {
	Responsibility(r *mic.Record, med mic.MedicineID) map[mic.DiseaseID]float64
}

// Responsibility for the cooccurrence baseline implements the paper's
// straightforward approach verbatim (§III-A): "assume the number of
// cooccurrences between each disease and medicine in MIC data as the
// prescription count". Every distinct disease of the record receives the
// full count for each medicine occurrence — deliberately NOT normalized, so
// frequent comorbid diseases (hypertension) soak up counts for unrelated
// medicines, the mis-prediction Figure 2a illustrates.
func (c *Cooccurrence) Responsibility(r *mic.Record, med mic.MedicineID) map[mic.DiseaseID]float64 {
	out := make(map[mic.DiseaseID]float64, len(r.Diseases))
	for _, dc := range r.Diseases {
		out[dc.Disease] = 1
	}
	return out
}

// Reproduce applies fitted monthly models to their months and accumulates
// the pair time series x_dmt (Eq. 7). models[i] must correspond to
// dataset.Months[i].
func Reproduce(d *mic.Dataset, models []*Model) (*SeriesSet, error) {
	ests := make([]linkEstimator, len(models))
	for i, m := range models {
		ests[i] = m
	}
	return reproduce(d, ests)
}

// ReproduceCooccurrence reproduces the pair series with the cooccurrence
// baseline (the paper's Fig. 2a).
func ReproduceCooccurrence(d *mic.Dataset, models []*Cooccurrence) (*SeriesSet, error) {
	ests := make([]linkEstimator, len(models))
	for i, m := range models {
		ests[i] = m
	}
	return reproduce(d, ests)
}

func reproduce(d *mic.Dataset, ests []linkEstimator) (*SeriesSet, error) {
	return reproduceParallel(d, ests, 1)
}

// ReproduceParallel is Reproduce with the months distributed over a bounded
// worker pool (workers ≤ 0 means GOMAXPROCS). Each month accumulates into
// its own local pair map in record order — exactly the serial addition order
// for that month — and each month owns a distinct series slot, so the result
// is bit-identical to Reproduce's for every worker count.
func ReproduceParallel(d *mic.Dataset, models []*Model, workers int) (*SeriesSet, error) {
	ests := make([]linkEstimator, len(models))
	for i, m := range models {
		ests[i] = m
	}
	return reproduceParallel(d, ests, workers)
}

func reproduceParallel(d *mic.Dataset, ests []linkEstimator, workers int) (*SeriesSet, error) {
	if len(ests) != d.T() {
		return nil, errors.New("medmodel: one model per month required")
	}
	s := &SeriesSet{T: d.T(), Pairs: make(map[mic.Pair][]float64)}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > d.T() {
		workers = d.T()
	}
	// Per-month accumulation, fanned out across months. locals[t] holds
	// month t's pair sums, accumulated in record order — the same float64
	// addition order as a serial sweep, since a month's contributions to
	// series[t] are contiguous in it.
	locals := make([]map[mic.Pair]float64, d.T())
	monthTotal := func(t int) {
		month := d.Months[t]
		est := ests[t]
		local := make(map[mic.Pair]float64)
		for i := range month.Records {
			r := &month.Records[i]
			if len(r.Diseases) == 0 {
				continue
			}
			for _, med := range r.Medicines {
				for dis, q := range est.Responsibility(r, med) {
					if q == 0 {
						continue
					}
					local[mic.Pair{Disease: dis, Medicine: med}] += q
				}
			}
		}
		locals[t] = local
	}
	if workers <= 1 {
		for t := range d.Months {
			monthTotal(t)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range next {
					monthTotal(t)
				}
			}()
		}
		for t := range d.Months {
			next <- t
		}
		close(next)
		wg.Wait()
	}
	// Serial merge in month order: each month writes only its own slot, so
	// the merge is pure placement — no cross-month float accumulation.
	for t, local := range locals {
		for key, v := range local {
			series, ok := s.Pairs[key]
			if !ok {
				series = make([]float64, s.T)
				s.Pairs[key] = series
			}
			series[t] = v
		}
	}
	s.buildMarginals()
	return s, nil
}

func (s *SeriesSet) buildMarginals() {
	s.diseaseSeries = make(map[mic.DiseaseID][]float64)
	s.medicineSeries = make(map[mic.MedicineID][]float64)
	// Accumulate in sorted pair order, not map order: the marginal sums are
	// floating point, and a run-dependent addition order would make the
	// disease/medicine series differ in their last bits between runs.
	pairs := make([]mic.Pair, 0, len(s.Pairs))
	for p := range s.Pairs {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].Disease != pairs[b].Disease {
			return pairs[a].Disease < pairs[b].Disease
		}
		return pairs[a].Medicine < pairs[b].Medicine
	})
	for _, pair := range pairs {
		series := s.Pairs[pair]
		ds, ok := s.diseaseSeries[pair.Disease]
		if !ok {
			ds = make([]float64, s.T)
			s.diseaseSeries[pair.Disease] = ds
		}
		ms, ok := s.medicineSeries[pair.Medicine]
		if !ok {
			ms = make([]float64, s.T)
			s.medicineSeries[pair.Medicine] = ms
		}
		for t, v := range series {
			ds[t] += v
			ms[t] += v
		}
	}
}

// Pair returns the reproduced series for a pair, or nil.
func (s *SeriesSet) Pair(p mic.Pair) []float64 { return s.Pairs[p] }

// Disease returns x_dt = Σ_m x_dmt (Eq. 8), or nil.
func (s *SeriesSet) Disease(d mic.DiseaseID) []float64 { return s.diseaseSeries[d] }

// Medicine returns x_mt = Σ_d x_dmt (Eq. 8), or nil.
func (s *SeriesSet) Medicine(m mic.MedicineID) []float64 { return s.medicineSeries[m] }

// Diseases returns the ids with a nonzero series.
func (s *SeriesSet) Diseases() []mic.DiseaseID {
	out := make([]mic.DiseaseID, 0, len(s.diseaseSeries))
	for d := range s.diseaseSeries {
		out = append(out, d)
	}
	return out
}

// Medicines returns the ids with a nonzero series.
func (s *SeriesSet) Medicines() []mic.MedicineID {
	out := make([]mic.MedicineID, 0, len(s.medicineSeries))
	for m := range s.medicineSeries {
		out = append(out, m)
	}
	return out
}

// FilterMinTotal returns a copy keeping only pairs whose total frequency
// over the whole period is at least minTotal — the paper's §VI reliability
// filter ("total frequency during the said period is less than 10").
func (s *SeriesSet) FilterMinTotal(minTotal float64) *SeriesSet {
	out := &SeriesSet{T: s.T, Pairs: make(map[mic.Pair][]float64)}
	for pair, series := range s.Pairs {
		var total float64
		for _, v := range series {
			total += v
		}
		if total >= minTotal {
			out.Pairs[pair] = series
		}
	}
	out.buildMarginals()
	return out
}
