package ssm

import (
	"errors"
	"math"
	"testing"

	"mictrend/internal/faultpoint"
)

func multistartSeries() []float64 {
	y := make([]float64, 36)
	for t := range y {
		y[t] = 50 + 0.3*float64(t) + 4*math.Sin(2*math.Pi*float64(t)/12)
	}
	return y
}

// TestMultiStartRecoversFromFailedAttempt injects a failure into the first
// optimization start and checks that the fit recovers from a perturbed start
// instead of declaring the series failed.
func TestMultiStartRecoversFromFailedAttempt(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	faultpoint.Enable("ssm/fit-attempt", faultpoint.Spec{
		Match: func(detail string) bool { return detail == "1" },
	})
	fit, err := FitConfig(multistartSeries(), Config{Seasonal: true})
	if err != nil {
		t.Fatalf("fit did not recover: %v", err)
	}
	if fit.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2 (first start injected to fail)", fit.Attempts)
	}
	if math.IsInf(fit.LogLik, 0) || math.IsNaN(fit.LogLik) {
		t.Fatalf("recovered fit has non-finite log-likelihood %v", fit.LogLik)
	}
}

// TestMultiStartExhaustionReturnsOptimizationError fails every start and
// checks the typed error carries the attempt count.
func TestMultiStartExhaustionReturnsOptimizationError(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	faultpoint.Enable("ssm/fit-attempt", faultpoint.Spec{})
	_, err := FitConfig(multistartSeries(), Config{Seasonal: true})
	if err == nil {
		t.Fatal("fit succeeded with every start failing")
	}
	var oe *OptimizationError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v (%T), want *OptimizationError", err, err)
	}
	if oe.Attempts != len(startPoints(2)) {
		t.Fatalf("Attempts = %d, want %d", oe.Attempts, len(startPoints(2)))
	}
}

// TestHealthyFitUsesSingleAttempt checks the fast path: a series whose
// default start converges must not pay for extra starts, and must produce
// the same fit as before multi-start existed.
func TestHealthyFitUsesSingleAttempt(t *testing.T) {
	fit, err := FitConfig(multistartSeries(), Config{Seasonal: true})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Attempts != 1 {
		t.Fatalf("Attempts = %d, want 1 for a healthy series", fit.Attempts)
	}
}

func TestStartPointsShape(t *testing.T) {
	for _, nq := range []int{1, 2} {
		pts := startPoints(nq)
		if len(pts) < 2 {
			t.Fatalf("want at least 2 starts, got %d", len(pts))
		}
		for i, p := range pts {
			if len(p) != nq {
				t.Fatalf("start %d has dim %d, want %d", i, len(p), nq)
			}
		}
		// The first start must remain the historical default so healthy fits
		// are byte-identical to single-start fits.
		if pts[0][0] != math.Log(0.2) {
			t.Fatalf("first start q_ξ = %v, want log(0.2)", pts[0][0])
		}
	}
}
