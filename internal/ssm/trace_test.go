package ssm

import (
	"testing"

	"mictrend/internal/obs"
)

// TestFitSpan pins the per-fit span contract: one ssm/fit span per
// FitConfigOptions call on the SSM lane, detail carrying the configuration
// and start count, error carried on failed fits — and bitwise-identical
// numerics to the untraced fit.
func TestFitSpan(t *testing.T) {
	y := synthSeries(30, 0, 12, 0.8, 0.3, 3)
	plain, err := FitConfig(y, Config{ChangePoint: 12})
	if err != nil {
		t.Fatal(err)
	}
	var spans []obs.SpanEvent
	traced, err := FitConfigOptions(y, Config{ChangePoint: 12}, nil, FitOptions{
		Trace: func(sp obs.SpanEvent) { spans = append(spans, sp) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if traced.AIC != plain.AIC || traced.LogLik != plain.LogLik {
		t.Fatal("tracing changed the fit")
	}
	if len(spans) != 1 {
		t.Fatalf("%d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Name != "ssm/fit" || sp.Cat != "ssm" || sp.TID != obs.LaneSSM {
		t.Fatalf("span mislabelled: %+v", sp)
	}
	if sp.Detail != "cp=12 attempts=1" {
		t.Fatalf("detail = %q, want \"cp=12 attempts=1\"", sp.Detail)
	}
	if sp.Err != "" || sp.Duration <= 0 {
		t.Fatalf("span err=%q dur=%v", sp.Err, sp.Duration)
	}

	// A failing fit still emits its span, carrying the error.
	spans = nil
	if _, err := FitConfigOptions(y[:2], Config{}, nil, FitOptions{
		Trace: func(sp obs.SpanEvent) { spans = append(spans, sp) },
	}); err == nil {
		t.Fatal("short series should fail")
	}
	if len(spans) != 1 || spans[0].Err == "" {
		t.Fatalf("failed fit spans = %+v, want one span with error", spans)
	}
}
