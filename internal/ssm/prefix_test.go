package ssm

import (
	"math"
	"math/rand"
	"testing"

	"mictrend/internal/kalman"
)

// prefixTestSeries builds a deterministic noisy slope-shift series.
func prefixTestSeries(n, cp int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	y := make([]float64, n)
	level := 50.0
	for t := 0; t < n; t++ {
		level += rng.NormFloat64()
		y[t] = level + 5*rng.NormFloat64()
		if cp >= 0 && t >= cp {
			y[t] += 2 * float64(t-cp+1)
		}
	}
	return y
}

// fullCandidateAIC evaluates the candidate model's concentrated AIC over the
// whole series at fixed params — the O(T) evaluation Score must reproduce.
func fullCandidateAIC(t *testing.T, y []float64, seasonal bool, cp int, params []float64) float64 {
	t.Helper()
	scaled, _ := rescale(y)
	cfg := Config{Seasonal: seasonal, ChangePoint: cp}.withDefaults()
	m, err := build(cfg, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ll, _, err := concentratedLogLik(scaled, cfg, m, params, kalman.NewWorkspace())
	if err != nil {
		t.Fatalf("cp=%d: %v", cp, err)
	}
	return -2*ll + 2*float64(cfg.NumParams())
}

// TestPrefixScoreMatchesFullEvaluation is the prefix-sharing invariant gate:
// for every candidate change point, resuming from the checkpointed
// no-intervention prefix must reproduce the full-series candidate evaluation
// bit for bit — same filter arithmetic, same summation order, same AIC bits.
func TestPrefixScoreMatchesFullEvaluation(t *testing.T) {
	cases := []struct {
		name     string
		n, cp    int
		seasonal bool
		missing  []int
		params   []float64
	}{
		{name: "nonseasonal_break", n: 40, cp: 25, params: []float64{math.Log(0.2)}},
		{name: "nonseasonal_flat", n: 30, cp: -1, params: []float64{-3.5}},
		{name: "seasonal_break", n: 48, cp: 30, params: []float64{math.Log(0.2), math.Log(0.1)}},
		{name: "seasonal_small_q", n: 36, cp: 12, params: []float64{-6, -8}},
		{name: "missing_obs", n: 40, cp: 20, missing: []int{5, 17, 28}, params: []float64{-1.0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			y := prefixTestSeries(tc.n, tc.cp, 7)
			for _, idx := range tc.missing {
				y[idx] = math.NaN()
			}
			maxCP := tc.n - 3
			tc.seasonal = len(tc.params) == 2
			ps, err := NewPrefixScanner(y, tc.seasonal, maxCP)
			if err != nil {
				t.Fatal(err)
			}
			if err := ps.Prepare(tc.params); err != nil {
				t.Fatal(err)
			}
			for cp := 0; cp <= maxCP; cp++ {
				got, err := ps.Score(cp)
				if err != nil {
					t.Fatalf("Score(%d): %v", cp, err)
				}
				want := fullCandidateAIC(t, y, tc.seasonal, cp, tc.params)
				if got != want {
					t.Errorf("cp=%d: prefix score %v (bits %x) != full evaluation %v (bits %x)",
						cp, got, math.Float64bits(got), want, math.Float64bits(want))
				}
			}
		})
	}
}

// TestPrefixScannerReprepare checks a scanner can re-anchor at new parameters
// and that stale scores are rejected before Prepare.
func TestPrefixScannerReprepare(t *testing.T) {
	y := prefixTestSeries(36, 20, 3)
	ps, err := NewPrefixScanner(y, false, 33)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Score(5); err == nil {
		t.Fatal("Score before Prepare should fail")
	}
	for _, p := range []float64{math.Log(0.2), -2.5} {
		if err := ps.Prepare([]float64{p}); err != nil {
			t.Fatal(err)
		}
		got, err := ps.Score(20)
		if err != nil {
			t.Fatal(err)
		}
		if want := fullCandidateAIC(t, y, false, 20, []float64{p}); got != want {
			t.Errorf("params %v: %v != %v", p, got, want)
		}
	}
	if err := ps.Prepare([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN params accepted")
	}
	if _, err := ps.Score(5); err == nil {
		t.Fatal("Score after failed Prepare should fail")
	}
}

// TestPrefixScannerCountsResumes checks the PrefixResumes accounting.
func TestPrefixScannerCountsResumes(t *testing.T) {
	y := prefixTestSeries(30, 15, 9)
	ps, err := NewPrefixScanner(y, false, 27)
	if err != nil {
		t.Fatal(err)
	}
	stats := &FitStats{}
	ps.Stats = stats
	if err := ps.Prepare([]float64{-1}); err != nil {
		t.Fatal(err)
	}
	for cp := 0; cp <= 27; cp++ {
		if _, err := ps.Score(cp); err != nil {
			t.Fatal(err)
		}
	}
	if got := stats.PrefixResumes.Load(); got != 28 {
		t.Fatalf("PrefixResumes = %d, want 28", got)
	}
}
