// Package ssm implements the paper's structural time series model (§V,
// Eq. 9): a local level plus an optional 12-month dummy-variable seasonal
// plus slope-shift interventions, observed with Gaussian noise. Disturbance
// variances are estimated by maximum likelihood through the Kalman filter;
// models are scored with AIC; fitted models decompose the series into the
// level/seasonal/intervention/irregular components shown in the paper's
// Figures 6–7 and forecast as in Figure 9.
//
// Beyond the paper's single slope shift, the package supports multiple
// simultaneous interventions and level-shift interventions — the extension
// the paper's §IX explicitly proposes ("state space models can accept more
// than one intervention variable, we can extend our model in that way").
package ssm

import (
	"errors"
	"fmt"

	"mictrend/internal/kalman"
	"mictrend/internal/linalg"
)

// NoChangePoint marks the absence of an intervention (the paper's
// t_CP = ∞).
const NoChangePoint = -1

// InterventionKind selects the structural change shape an intervention
// models (Commandeur & Koopman's intervention taxonomy).
type InterventionKind int

// Intervention kinds.
const (
	// SlopeShift is the paper's choice: w_t = max(0, t−cp+1), an ongoing
	// increase in the slope after the change point.
	SlopeShift InterventionKind = iota
	// LevelShift is a step: w_t = 1 for t ≥ cp — the natural shape for
	// price revisions and one-off substitutions.
	LevelShift
)

// String names the kind.
func (k InterventionKind) String() string {
	if k == LevelShift {
		return "level-shift"
	}
	return "slope-shift"
}

// Intervention is one structural change regressor with an unknown
// coefficient λ estimated by the filter.
type Intervention struct {
	Kind  InterventionKind
	Month int // 0-based change point
}

// Regressor returns the intervention's dummy value at time t.
func (iv Intervention) Regressor(t int) float64 {
	if iv.Month == NoChangePoint || t < iv.Month {
		return 0
	}
	if iv.Kind == LevelShift {
		return 1
	}
	return float64(t - iv.Month + 1)
}

// Config selects the model variant. Note that ChangePoint 0 means an
// intervention starting at month 0; set ChangePoint to NoChangePoint for the
// intervention-free variants (the paper's "LL" and "LL+S" ablation rows).
type Config struct {
	// Seasonal enables the dummy seasonal component with the given Period
	// (default 12 when Seasonal is set and Period is 0).
	Seasonal bool
	Period   int
	// ChangePoint is the 0-based month of the paper's single slope-shift
	// intervention, or NoChangePoint for none. The regressor is
	// w_t = max(0, t−cp+1). Each intervention coefficient λ is initialized
	// diffusely and its first active observation is excluded from the
	// likelihood (the same convention the level and seasonal diffuse
	// elements follow), so AIC values stay comparable across candidate
	// change points and against the intervention-free model.
	ChangePoint int
	// Extra lists additional interventions beyond ChangePoint — the §IX
	// multiple-change-point extension. Entries with Month == NoChangePoint
	// are ignored.
	Extra []Intervention
	// MaxIter bounds the variance optimization (default 400).
	MaxIter int
}

func (c Config) withDefaults() Config {
	if c.Seasonal && c.Period <= 0 {
		c.Period = 12
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 400
	}
	return c
}

// Interventions returns the merged intervention list: the legacy single
// slope shift (when set) followed by Extra.
func (c Config) Interventions() []Intervention {
	var out []Intervention
	if c.ChangePoint != NoChangePoint {
		out = append(out, Intervention{Kind: SlopeShift, Month: c.ChangePoint})
	}
	for _, iv := range c.Extra {
		if iv.Month != NoChangePoint {
			out = append(out, iv)
		}
	}
	return out
}

// HasIntervention reports whether the config includes any intervention
// component.
func (c Config) HasIntervention() bool { return len(c.Interventions()) > 0 }

// stateDim returns the state vector length: level + (period−1) seasonal
// states + one λ per intervention.
func (c Config) stateDim() int {
	n := 1
	if c.Seasonal {
		n += c.Period - 1
	}
	return n + len(c.Interventions())
}

// numVariances returns the count of estimated disturbance variances:
// observation ε and level ξ always; seasonal ω when present.
func (c Config) numVariances() int {
	if c.Seasonal {
		return 3
	}
	return 2
}

// NumParams returns k for AIC: estimated variances plus initial state
// elements (the C&K convention of charging each diffuse/estimated initial
// state value as a parameter, which also charges every λ exactly once).
func (c Config) NumParams() int {
	return c.numVariances() + c.stateDim()
}

// InterventionRegressor returns the slope-shift dummy w_t for a change point
// cp: 0 before cp, then 1, 2, 3, … (the paper's w_qt = t−t_CP+1).
func InterventionRegressor(cp, t int) float64 {
	return Intervention{Kind: SlopeShift, Month: cp}.Regressor(t)
}

// build assembles the kalman.Model for the config and variance triple.
// Variances are (εVar, ξVar, ωVar); ωVar ignored without seasonality.
func build(cfg Config, epsVar, xiVar, omegaVar float64) (*kalman.Model, error) {
	if epsVar < 0 || xiVar < 0 || omegaVar < 0 {
		return nil, errors.New("ssm: negative variance")
	}
	cfg = cfg.withDefaults()
	ivs := cfg.Interventions()
	n := cfg.stateDim()
	period := cfg.Period
	base := n - len(ivs) // first λ index

	tm := linalg.NewMatrix(n, n)
	tm.Set(0, 0, 1) // level random walk
	if cfg.Seasonal {
		// Seasonal block occupies rows/cols 1..period-1:
		// γ'_1 = −Σ γ_s; γ'_s = γ_{s-1}.
		for s := 1; s <= period-1; s++ {
			tm.Set(1, s, -1)
		}
		for s := 2; s <= period-1; s++ {
			tm.Set(s, s-1, 1)
		}
	}
	for j := range ivs {
		tm.Set(base+j, base+j, 1) // each λ constant
	}

	nDist := 1 // level disturbance ξ
	if cfg.Seasonal {
		nDist = 2 // plus seasonal disturbance ω
	}
	r := linalg.NewMatrix(n, nDist)
	r.Set(0, 0, 1)
	if cfg.Seasonal {
		r.Set(1, 1, 1)
	}
	q := linalg.NewMatrix(nDist, nDist)
	q.Set(0, 0, xiVar)
	if cfg.Seasonal {
		q.Set(1, 1, omegaVar)
	}

	p1 := linalg.NewMatrix(n, n)
	diffuse := 1
	p1.Set(0, 0, kalman.DiffuseVariance)
	if cfg.Seasonal {
		for s := 1; s <= period-1; s++ {
			p1.Set(s, s, kalman.DiffuseVariance)
		}
		diffuse += period - 1
	}
	// Every λ is diffuse; its initialization consumes its first active
	// observation. Skip indices must be distinct so each λ is charged one
	// observation: when two interventions activate at the same month (or
	// inside the leading burn-in) the later one charges the next free index.
	var skipLik []int
	used := make(map[int]bool)
	for j := range ivs {
		p1.Set(base+j, base+j, kalman.DiffuseVariance)
		idx := ivs[j].Month
		if idx < diffuse {
			idx = diffuse
		}
		for used[idx] {
			idx++
		}
		used[idx] = true
		skipLik = append(skipLik, idx)
	}

	zBuf := make([]float64, n)
	zBuf[0] = 1
	if cfg.Seasonal {
		zBuf[1] = 1
	}
	z := func(t int) []float64 {
		for j, iv := range ivs {
			zBuf[base+j] = iv.Regressor(t)
		}
		return zBuf
	}

	m := &kalman.Model{
		T:            tm,
		R:            r,
		Q:            q,
		H:            epsVar,
		Z:            z,
		A1:           make([]float64, n),
		P1:           p1,
		DiffuseCount: diffuse,
		SkipLik:      skipLik,
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("ssm: built invalid model: %w", err)
	}
	return m, nil
}
