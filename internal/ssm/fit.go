package ssm

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync/atomic"
	"time"

	"mictrend/internal/faultpoint"
	"mictrend/internal/kalman"
	"mictrend/internal/obs"
	"mictrend/internal/optimize"
	"mictrend/internal/stat"
)

// FitStats accumulates optimizer-level accounting across fits for the
// observability layer: how many Kalman likelihood evaluations a search paid,
// how often the multi-start recovery had to restart, and how many fits
// failed outright. Fields are atomic, so one FitStats may be shared by every
// worker of a parallel scan; the totals are sums of exact integers and
// therefore deterministic for any worker split. A nil *FitStats disables
// collection at the cost of one pointer check per fit — the hot per-candidate
// path stays allocation-free either way.
type FitStats struct {
	// Fits counts completed (successful) maximum-likelihood fits.
	Fits atomic.Int64
	// LikEvals counts Kalman likelihood-filter evaluations: every objective
	// evaluation of every optimization start, plus each fit's final
	// concentrated-likelihood pass.
	LikEvals atomic.Int64
	// Starts counts optimization starts tried (warm and cold).
	Starts atomic.Int64
	// Restarts counts starts beyond each fit's first — the multi-start
	// recovery rate.
	Restarts atomic.Int64
	// FitFailures counts fits where every start failed (OptimizationError).
	FitFailures atomic.Int64
	// SteadyHits counts likelihood evaluations in which the Kalman filter
	// engaged the steady-state fast path for at least one step (requires
	// FitOptions.SteadyTol > 0).
	SteadyHits atomic.Int64
	// PrefixResumes counts candidate scores resumed from a prefix checkpoint
	// by the prefix-checkpointed change point scan.
	PrefixResumes atomic.Int64
}

// Merge folds src's counts into s (either may be nil; both no-op).
func (s *FitStats) Merge(src *FitStats) {
	if s == nil || src == nil {
		return
	}
	s.Fits.Add(src.Fits.Load())
	s.LikEvals.Add(src.LikEvals.Load())
	s.Starts.Add(src.Starts.Load())
	s.Restarts.Add(src.Restarts.Load())
	s.FitFailures.Add(src.FitFailures.Load())
	s.SteadyHits.Add(src.SteadyHits.Load())
	s.PrefixResumes.Add(src.PrefixResumes.Load())
}

// ErrSeriesTooShort is returned when a series is shorter than the model can
// identify.
var ErrSeriesTooShort = errors.New("ssm: series too short for the requested model")

// OptimizationError reports that the likelihood optimization failed to find a
// finite value from every starting point of the multi-start search. Attempts
// is the number of starts tried before the series was declared failed.
type OptimizationError struct {
	Attempts int
}

// Error implements error.
func (e *OptimizationError) Error() string {
	return fmt.Sprintf("ssm: likelihood optimization failed to find a finite value (%d starts)", e.Attempts)
}

// FitOptions tunes a single maximum-likelihood fit beyond the model choice.
// The zero value reproduces the historical cold fit bit-for-bit.
type FitOptions struct {
	// Start seeds the Nelder-Mead simplex with a caller-supplied starting
	// point in the optimizer's coordinates: the relative disturbance
	// log-variances (log q_ξ and, with seasonality, log q_ω), matching
	// Fit.OptParams. A warm Start is tried before the deterministic cold
	// starts; because the multi-start loop keeps the first converged finite
	// start, a good warm start wins outright and a bad one (wrong length
	// aside, which is an error) merely falls through to the cold starts. The
	// change point scan threads each candidate's OptParams into its
	// neighbor's Start, exploiting the AIC valley's near-identical adjacent
	// optimization problems.
	//
	// A warm fit optimizes at scan precision, not estimation precision: the
	// simplex starts as a small absolute neighborhood of Start
	// (DefaultWarmStep per axis) and stops at tolerances calibrated for AIC
	// model selection (warmTolF/warmTolX, ~1e-4 in AIC) rather than the cold
	// fits' near-machine-precision ones. Nelder-Mead's cost is dominated by
	// shrinking the simplex down to tolerance, so this — not the starting
	// point — is where warm fits earn their speedup; candidate AIC gaps are
	// orders of magnitude above the slack. Cold fits are unaffected.
	Start []float64
	// StartStep is the absolute initial simplex edge used for the warm Start
	// only (0 = DefaultWarmStep). Cold starts always use the historical
	// relative step, so their trajectories are unchanged by this option.
	StartStep float64
	// Stats, when non-nil, accumulates optimizer accounting (likelihood
	// evaluations, starts, restarts, failures) for this fit. It never
	// changes the fit's numerics.
	Stats *FitStats
	// Trace, when non-nil, receives one "ssm/fit" span per FitConfigOptions
	// call, carrying the fitted configuration and start count (or the
	// failure) in its detail. A nil Trace is free: the disabled path is one
	// pointer check — no clock reads, no allocations — preserving the
	// kernel-level zero-alloc contract. The observer must be goroutine-safe
	// when fits run concurrently.
	Trace obs.SpanObserver
	// SteadyTol, when positive, lets every likelihood evaluation of this fit
	// take the Kalman filter's steady-state fast path
	// (kalman.LogLikOptions.SteadyTol). The profile likelihood then carries
	// an O(SteadyTol) approximation per steady step, so this belongs on
	// warm scan-tolerance fits whose selections a cold refinement pass
	// re-arbitrates — never on cold fits, whose results are pinned
	// bit-for-bit. Zero keeps the exact recursion.
	SteadyTol float64
}

// DefaultWarmStep is the absolute initial simplex edge for warm starts:
// small enough that a start already sitting at a neighbor's optimum is
// near-converged from the first iteration, large enough to escape a
// slightly stale neighbor optimum.
const DefaultWarmStep = 0.1

// Warm-fit convergence tolerances: the scan compares candidate AICs whose
// gaps are O(0.1) and up, so stopping the simplex at ~1e-4 AIC precision
// buys roughly half the cold fit's evaluations without ever confusing the
// selection. Cold fits keep the optimizer's defaults (1e-10/1e-8).
const (
	warmTolF = 1e-6
	warmTolX = 1e-3
)

// coldStep is the historical relative initial simplex edge of the cold
// starts.
const coldStep = 1.0

// DefaultSteadyTol is the steady-state switch tolerance for warm
// scan-tolerance fits: the per-step likelihood perturbation it admits
// (O(1e-5) relative on the covariance, ~1e-4 in AIC over a series) sits far
// below the scan's refinement margin, so a steady-path warm fit can never
// flip a selection the cold refinement pass would not re-examine.
const DefaultSteadyTol = 1e-5

// Fit is a maximum-likelihood-fitted structural model.
type Fit struct {
	Config Config
	Model  *kalman.Model
	Filter *kalman.FilterResult

	// LogLik is the maximized log-likelihood of the scaled series.
	LogLik float64
	// AIC = −2·LogLik + 2·NumParams.
	AIC float64
	// NumParams is k in the AIC formula.
	NumParams int
	// EpsVar, XiVar, OmegaVar are the estimated disturbance variances on the
	// scaled series.
	EpsVar, XiVar, OmegaVar float64
	// Lambda is the first intervention's coefficient (0 without an
	// intervention), on the scaled series.
	Lambda float64
	// Lambdas holds every intervention coefficient in Config.Interventions()
	// order, on the scaled series.
	Lambdas []float64

	// Attempts is the number of optimization starts tried before this fit
	// succeeded: 1 when the default start converged, more when the
	// multi-start recovery had to perturb the initial parameters.
	Attempts int

	// OptParams is the optimizer's solution: the relative disturbance
	// log-variances (log q_ξ and, with seasonality, log q_ω) that maximized
	// the profile likelihood. It is the natural warm FitOptions.Start for a
	// neighboring fit.
	OptParams []float64

	// Scaled is the series the model was fitted to (y divided by Scale).
	Scaled []float64
	// Scale is the divisor applied to the input series for numerical
	// conditioning; multiply model-scale quantities by Scale to return to
	// data units.
	Scale float64
}

// FitConfig fits the structural model selected by cfg to y by maximum
// likelihood. The observation variance is concentrated out of the
// likelihood (the standard Commandeur–Koopman device), so the optimizer
// works over one or two relative variances only: q_ξ = σξ²/σε² and, with
// seasonality, q_ω = σω²/σε². The series is internally rescaled to unit
// magnitude; reported LogLik/AIC refer to the scaled series, which is
// consistent across model variants of the same series and therefore valid
// for the paper's AIC comparisons.
func FitConfig(y []float64, cfg Config) (*Fit, error) {
	return FitConfigWorkspace(y, cfg, nil)
}

// FitConfigWorkspace is FitConfig with an explicit Kalman workspace. The
// structural model is assembled once per call; every Nelder-Mead objective
// evaluation only updates the disturbance variances in place and runs the
// allocation-free likelihood filter through ws, so a caller performing many
// fits — the change point search evaluates one fit per candidate month —
// can reuse one workspace across the whole search. The full Filter pass
// (which materializes the smoother inputs) runs once, for the winning
// parameters. ws may be nil; a workspace is not safe for concurrent use.
func FitConfigWorkspace(y []float64, cfg Config, ws *kalman.Workspace) (*Fit, error) {
	return FitConfigOptions(y, cfg, ws, FitOptions{})
}

// FitConfigOptions is FitConfigWorkspace with per-fit options; a zero opts
// reproduces FitConfigWorkspace exactly (same starts, same order, same
// simplex step, bitwise-identical estimates).
func FitConfigOptions(y []float64, cfg Config, ws *kalman.Workspace, opts FitOptions) (*Fit, error) {
	if opts.Trace == nil {
		return fitConfig(y, cfg, ws, opts)
	}
	began := time.Now()
	fit, err := fitConfig(y, cfg, ws, opts)
	sp := obs.SpanEvent{
		Cat: "ssm", Name: "ssm/fit", TID: obs.LaneSSM,
		Start: began, Duration: time.Since(began), Month: -1,
		Detail: fitDetail(cfg, fit),
	}
	if err != nil {
		sp.Err = err.Error()
	}
	opts.Trace(sp)
	return fit, err
}

// fitDetail renders the span detail for a fit of cfg: the intervention
// months, the model flavor, and (for completed fits) the start count.
func fitDetail(cfg Config, fit *Fit) string {
	d := "cp=none"
	if ivs := cfg.Interventions(); len(ivs) > 0 {
		d = "cp=" + strconv.Itoa(ivs[0].Month)
		for _, iv := range ivs[1:] {
			d += "," + strconv.Itoa(iv.Month)
		}
	}
	if cfg.Seasonal {
		d += " seasonal"
	}
	if fit != nil {
		d += " attempts=" + strconv.Itoa(fit.Attempts)
	}
	return d
}

// fitConfig is the uninstrumented fit core behind FitConfigOptions.
func fitConfig(y []float64, cfg Config, ws *kalman.Workspace, opts FitOptions) (*Fit, error) {
	cfg = cfg.withDefaults()
	minLen := cfg.stateDim() + cfg.numVariances() + 2
	if len(y) < minLen {
		return nil, fmt.Errorf("%w: len %d < %d", ErrSeriesTooShort, len(y), minLen)
	}
	for _, iv := range cfg.Interventions() {
		if iv.Month < 0 || iv.Month >= len(y) {
			return nil, fmt.Errorf("ssm: change point %d outside series of length %d", iv.Month, len(y))
		}
	}
	if ws == nil {
		ws = kalman.NewWorkspace()
	}

	scaled, scale := rescale(y)

	// The search model: built once with unit variances; concentratedLogLik
	// rewrites H and the Q diagonal before each evaluation.
	searchModel, err := build(cfg, 1, 1, 1)
	if err != nil {
		return nil, err
	}

	// Optimize relative log-variances with σε² concentrated out.
	nq := 1
	if cfg.Seasonal {
		nq = 2
	}
	var evals, attempts, steadyHits int
	if s := opts.Stats; s != nil {
		defer func() {
			s.LikEvals.Add(int64(evals))
			s.Starts.Add(int64(attempts))
			if attempts > 1 {
				s.Restarts.Add(int64(attempts - 1))
			}
			s.SteadyHits.Add(int64(steadyHits))
		}()
	}
	objective := func(params []float64) float64 {
		evals++
		ll, _, steady, err := concentratedLogLikTol(scaled, cfg, searchModel, params, ws, opts.SteadyTol)
		if steady > 0 {
			steadyHits++
		}
		if err != nil {
			return math.Inf(1)
		}
		return -ll
	}

	starts, err := fitStarts(nq, opts)
	if err != nil {
		return nil, err
	}

	// Multi-start recovery: the warm start (when provided) and then the
	// default start are tried in order and the first that converges to a
	// finite value wins outright — the common case costs exactly one
	// optimization, identical to a single-start fit. A start that errors or
	// lands on +Inf is discarded; a finite but non-converged start is kept
	// as a candidate while the perturbed starts get a chance to do better.
	// Only when every start fails is the series declared failed.
	var best optimize.Result
	haveBest := false
	for _, s0 := range starts {
		attempts++
		if err := faultpoint.Inject("ssm/fit-attempt", strconv.Itoa(attempts)); err != nil {
			continue
		}
		nm := optimize.NelderMeadOptions{MaxIter: cfg.MaxIter, Step: s0.step}
		if s0.warm {
			nm.StepAbsolute = true
			nm.TolF, nm.TolX = warmTolF, warmTolX
		}
		res, err := optimize.NelderMead(objective, s0.x, nm)
		if err != nil || math.IsInf(res.F, 1) || math.IsNaN(res.F) {
			continue
		}
		if !haveBest || res.F < best.F {
			best, haveBest = res, true
		}
		if res.Converged {
			break
		}
	}
	if !haveBest {
		if s := opts.Stats; s != nil {
			s.FitFailures.Add(1)
		}
		return nil, &OptimizationError{Attempts: attempts}
	}
	evals++
	logLik, sigma2, steady, err := concentratedLogLikTol(scaled, cfg, searchModel, best.X, ws, opts.SteadyTol)
	if steady > 0 {
		steadyHits++
	}
	if err != nil {
		return nil, err
	}
	res := best

	epsVar := sigma2
	xiVar := sigma2 * math.Exp(res.X[0])
	omegaVar := 0.0
	if cfg.Seasonal {
		omegaVar = sigma2 * math.Exp(res.X[1])
	}
	m, err := build(cfg, epsVar, xiVar, omegaVar)
	if err != nil {
		return nil, err
	}
	fr, err := m.Filter(scaled)
	if err != nil {
		return nil, err
	}
	fit := &Fit{
		Config:    cfg,
		Model:     m,
		Filter:    fr,
		LogLik:    logLik,
		NumParams: cfg.NumParams(),
		EpsVar:    epsVar,
		XiVar:     xiVar,
		OmegaVar:  omegaVar,
		Scaled:    scaled,
		Scale:     scale,
		Attempts:  attempts,
		OptParams: append([]float64(nil), best.X...),
	}
	fit.AIC = -2*fit.LogLik + 2*float64(fit.NumParams)
	if ivs := cfg.Interventions(); len(ivs) > 0 {
		// λ coefficients are the trailing elements of the final predicted
		// state, in Interventions() order.
		final := fr.A[len(scaled)]
		base := m.Dim() - len(ivs)
		fit.Lambdas = append([]float64(nil), final[base:]...)
		fit.Lambda = fit.Lambdas[0]
	}
	if s := opts.Stats; s != nil {
		s.Fits.Add(1)
	}
	return fit, nil
}

// simplexStart pairs an initial point with its simplex geometry: warm starts
// search a small absolute neighborhood at scan tolerances, cold starts the
// historical wide relative one at estimation tolerances.
type simplexStart struct {
	x    []float64
	step float64
	warm bool
}

// fitStarts builds the ordered start list: the caller's warm start (when
// provided) ahead of the deterministic cold points, so the cold list — and
// with it every historical fit — is reproduced exactly when opts is zero.
func fitStarts(nq int, opts FitOptions) ([]simplexStart, error) {
	cold := startPoints(nq)
	starts := make([]simplexStart, 0, len(cold)+1)
	if opts.Start != nil {
		if len(opts.Start) != nq {
			return nil, fmt.Errorf("ssm: warm start has %d parameters, want %d", len(opts.Start), nq)
		}
		step := opts.StartStep
		if step <= 0 {
			step = DefaultWarmStep
		}
		starts = append(starts, simplexStart{x: append([]float64(nil), opts.Start...), step: step, warm: true})
	}
	for _, x := range cold {
		starts = append(starts, simplexStart{x: x, step: coldStep})
	}
	return starts, nil
}

// startPoints returns the deterministic initial log-variance points of the
// multi-start search: the historical default first (so healthy fits are
// unchanged), then perturbations spanning smoother and noisier regimes of
// (q_ξ, q_ω).
func startPoints(nq int) [][]float64 {
	bases := [...][2]float64{
		{0.2, 0.1}, // default start
		{0.02, 0.02},
		{1.5, 0.5},
		{0.005, 1.0},
	}
	out := make([][]float64, len(bases))
	for i, b := range bases {
		s := make([]float64, nq)
		s[0] = math.Log(b[0])
		if nq > 1 {
			s[1] = math.Log(b[1])
		}
		out[i] = s
	}
	return out
}

// concentratedLogLik evaluates the profile log-likelihood at relative
// log-variances params, returning the log-likelihood and the implied
// observation variance σ̂². The model m (built once by the caller) is
// updated in place — H set to the concentrated unit variance, the Q diagonal
// to the relative variances — and filtered through the allocation-free
// likelihood kernel with ws as scratch.
func concentratedLogLik(scaled []float64, cfg Config, m *kalman.Model, params []float64, ws *kalman.Workspace) (logLik, sigma2 float64, err error) {
	logLik, sigma2, _, err = concentratedLogLikTol(scaled, cfg, m, params, ws, 0)
	return logLik, sigma2, err
}

// concentratedLogLikTol is concentratedLogLik with an optional steady-state
// filter tolerance (0 = exact); steadySteps reports how many filter steps the
// fast path handled.
func concentratedLogLikTol(scaled []float64, cfg Config, m *kalman.Model, params []float64, ws *kalman.Workspace, steadyTol float64) (logLik, sigma2 float64, steadySteps int, err error) {
	if err := checkParams(params); err != nil {
		return 0, 0, 0, err
	}
	m.H = 1
	m.Q.Set(0, 0, math.Exp(params[0]))
	if cfg.Seasonal {
		m.Q.Set(1, 1, math.Exp(params[1]))
	}
	fr, err := m.LogLikFilterOpts(scaled, ws, kalman.LogLikOptions{SteadyTol: steadyTol})
	if err != nil {
		return 0, 0, 0, err
	}
	if fr.LikCount == 0 {
		return 0, 0, 0, errors.New("ssm: no likelihood contributions")
	}
	var sumLogF, sumV2F float64
	for t := range fr.V {
		if !fr.Contributed[t] {
			continue
		}
		sumLogF += math.Log(fr.F[t])
		sumV2F += fr.V[t] * fr.V[t] / fr.F[t]
	}
	logLik, sigma2 = concentrateFromSums(sumLogF, sumV2F, fr.LikCount)
	return logLik, sigma2, fr.SteadySteps, nil
}

// checkParams validates optimizer coordinates: relative log-variances beyond
// e^±20 add nothing but conditioning trouble on unit-scaled series.
func checkParams(params []float64) error {
	for _, p := range params {
		if p < -20 || p > 20 || math.IsNaN(p) {
			return errors.New("ssm: parameter out of range")
		}
	}
	return nil
}

// concentrateFromSums turns the filter's accumulated log-variance and scaled
// squared-innovation sums into the profile log-likelihood and the implied
// observation variance. It is the single implementation of the concentration
// formula, shared by the full-series evaluation and the prefix-checkpointed
// candidate scorer so the two agree bitwise on identical sums.
func concentrateFromSums(sumLogF, sumV2F float64, likCount int) (logLik, sigma2 float64) {
	n := float64(likCount)
	sigma2 = sumV2F / n
	// Floor the concentrated variance: a deterministic (perfectly fitted)
	// series would otherwise send the profile likelihood to +∞ and the
	// rebuilt model's prediction variances so far below the diffuse prior
	// (1e7) that covariance updates cancel to negative values in float64.
	// 1e-6 on a unit-scaled series is far below any practical noise level.
	const sigmaFloor = 1e-6
	if !(sigma2 > sigmaFloor) {
		sigma2 = sigmaFloor
	}
	logLik = -0.5*n*math.Log(2*math.Pi) - 0.5*sumLogF - 0.5*n*(math.Log(sigma2)+1)
	return logLik, sigma2
}

// AICAt is the change point search primitive: it fits the full model
// (level + optional seasonal + intervention at cp, or no intervention for
// cp == NoChangePoint) and returns its AIC.
func AICAt(y []float64, seasonal bool, cp int) (float64, error) {
	return AICAtWorkspace(y, seasonal, cp, nil)
}

// AICAtWorkspace is AICAt with an explicit Kalman workspace, so a change
// point search can reuse one workspace across every candidate fit. ws may
// be nil.
func AICAtWorkspace(y []float64, seasonal bool, cp int, ws *kalman.Workspace) (float64, error) {
	fit, err := FitConfigWorkspace(y, Config{Seasonal: seasonal, ChangePoint: cp}, ws)
	if err != nil {
		return 0, err
	}
	return fit.AIC, nil
}

// AICAtStart is AICAtWorkspace extended for warm-started scans: start (nil
// for a cold fit) seeds the optimizer, and the returned opt is the fitted
// optimum's parameters — the warm start for the next candidate.
func AICAtStart(y []float64, seasonal bool, cp int, ws *kalman.Workspace, start []float64) (aic float64, opt []float64, err error) {
	return AICAtOptions(y, seasonal, cp, ws, FitOptions{Start: start})
}

// AICAtOptions is the options-first change point search primitive: AICAtStart
// with the full FitOptions, so scans can thread warm starts and FitStats
// accounting through one call. A zero opts reproduces AICAtWorkspace's cold
// fit bit-for-bit.
func AICAtOptions(y []float64, seasonal bool, cp int, ws *kalman.Workspace, opts FitOptions) (aic float64, opt []float64, err error) {
	fit, err := FitConfigOptions(y, Config{Seasonal: seasonal, ChangePoint: cp}, ws, opts)
	if err != nil {
		return 0, nil, err
	}
	return fit.AIC, fit.OptParams, nil
}

// rescale divides y by a positive magnitude (its standard deviation, falling
// back to the mean absolute value, falling back to 1) so variance estimation
// starts well-conditioned regardless of count magnitude.
func rescale(y []float64) (scaled []float64, scale float64) {
	scale = stat.StdDev(y)
	if !(scale > 0) { // catches 0 and NaN
		var sum float64
		for _, v := range y {
			sum += math.Abs(v)
		}
		scale = sum / float64(len(y))
	}
	if !(scale > 0) {
		scale = 1
	}
	scaled = make([]float64, len(y))
	for i, v := range y {
		scaled[i] = v / scale
	}
	return scaled, scale
}
