package ssm

import (
	"fmt"
	"math"
)

// Decomposition splits a fitted series into the components of the paper's
// Eq. 9, in original data units: x_t = Level + Seasonal + Intervention +
// Irregular. Fitted is the smoothed signal (x_t − ε̂_t).
type Decomposition struct {
	Level        []float64
	Seasonal     []float64
	Intervention []float64
	Irregular    []float64
	Fitted       []float64
}

// Decompose runs the fixed-interval smoother and extracts the component
// series, rescaled back to data units.
func (f *Fit) Decompose() (*Decomposition, error) {
	sr, err := f.Model.Smooth(f.Scaled, f.Filter)
	if err != nil {
		return nil, err
	}
	n := len(f.Scaled)
	d := &Decomposition{
		Level:        make([]float64, n),
		Seasonal:     make([]float64, n),
		Intervention: make([]float64, n),
		Irregular:    make([]float64, n),
		Fitted:       make([]float64, n),
	}
	dim := f.Model.Dim()
	hasSeason := f.Config.Seasonal
	ivs := f.Config.Interventions()
	base := dim - len(ivs)
	for t := 0; t < n; t++ {
		alpha := sr.Alpha[t]
		level := alpha[0]
		var seasonal, intervention float64
		if hasSeason {
			seasonal = alpha[1]
		}
		for j, iv := range ivs {
			intervention += alpha[base+j] * iv.Regressor(t)
		}
		signal := level + seasonal + intervention
		d.Level[t] = level * f.Scale
		d.Seasonal[t] = seasonal * f.Scale
		d.Intervention[t] = intervention * f.Scale
		d.Fitted[t] = signal * f.Scale
		d.Irregular[t] = (f.Scaled[t] - signal) * f.Scale
	}
	return d, nil
}

// Forecast returns h-step-ahead predictions in data units, with standard
// errors. The intervention regressor extends past the sample, so a detected
// slope shift keeps contributing to the forecast (the paper's Fig. 9
// advantage over ARIMA).
func (f *Fit) Forecast(h int) (mean, se []float64, err error) {
	if h <= 0 {
		return nil, nil, fmt.Errorf("ssm: non-positive forecast horizon %d", h)
	}
	fc, err := f.Model.Forecast(f.Filter, len(f.Scaled), h)
	if err != nil {
		return nil, nil, err
	}
	mean = make([]float64, h)
	se = make([]float64, h)
	for i := 0; i < h; i++ {
		mean[i] = fc.Mean[i] * f.Scale
		se[i] = sqrtNonNeg(fc.Variance[i]) * f.Scale
	}
	return mean, se, nil
}

func sqrtNonNeg(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}
