package ssm

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

// synthSeries builds a test series: level drift + optional 12-month seasonal
// + optional slope shift at cp + Gaussian noise.
func synthSeries(n int, seasonalAmp float64, cp int, slope float64, noise float64, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, 42))
	y := make([]float64, n)
	level := 10.0
	for t := 0; t < n; t++ {
		level += rng.NormFloat64() * 0.05
		v := level
		if seasonalAmp != 0 {
			v += seasonalAmp * math.Sin(2*math.Pi*float64(t)/12)
		}
		v += slope * InterventionRegressor(cp, t)
		v += rng.NormFloat64() * noise
		y[t] = v
	}
	return y
}

func TestInterventionRegressor(t *testing.T) {
	if InterventionRegressor(NoChangePoint, 5) != 0 {
		t.Fatal("no change point should give 0")
	}
	if InterventionRegressor(10, 9) != 0 {
		t.Fatal("before cp should give 0")
	}
	if InterventionRegressor(10, 10) != 1 {
		t.Fatal("at cp should give 1")
	}
	if InterventionRegressor(10, 14) != 5 {
		t.Fatal("slope shift increments by 1 per month")
	}
}

func TestConfigDims(t *testing.T) {
	cases := []struct {
		cfg       Config
		dim, k    int
		variances int
	}{
		{Config{ChangePoint: NoChangePoint}, 1, 3, 2},                               // LL
		{Config{Seasonal: true, Period: 12, ChangePoint: NoChangePoint}, 12, 15, 3}, // LL+S
		{Config{ChangePoint: 5}, 2, 4, 2},                                           // LL+I
		{Config{Seasonal: true, Period: 12, ChangePoint: 5}, 13, 16, 3},             // LL+S+I
	}
	for i, c := range cases {
		cfg := c.cfg.withDefaults()
		if got := cfg.stateDim(); got != c.dim {
			t.Errorf("case %d: dim = %d, want %d", i, got, c.dim)
		}
		if got := cfg.NumParams(); got != c.k {
			t.Errorf("case %d: NumParams = %d, want %d", i, got, c.k)
		}
		if got := cfg.numVariances(); got != c.variances {
			t.Errorf("case %d: variances = %d, want %d", i, got, c.variances)
		}
	}
}

func TestFitLocalLevelTracksLevel(t *testing.T) {
	y := synthSeries(43, 0, NoChangePoint, 0, 0.2, 1)
	fit, err := FitConfig(y, Config{ChangePoint: NoChangePoint})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(fit.AIC) || math.IsInf(fit.AIC, 0) {
		t.Fatalf("AIC = %v", fit.AIC)
	}
	d, err := fit.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	// The level component should stay near 10 throughout.
	for i := 2; i < len(y)-2; i++ {
		if math.Abs(d.Level[i]-10) > 1.5 {
			t.Fatalf("level[%d] = %v, want ≈10", i, d.Level[i])
		}
	}
	// Components must reconstruct the series exactly.
	for i := range y {
		recon := d.Level[i] + d.Seasonal[i] + d.Intervention[i] + d.Irregular[i]
		if math.Abs(recon-y[i]) > 1e-8 {
			t.Fatalf("reconstruction at %d: %v vs %v", i, recon, y[i])
		}
		if math.Abs(d.Fitted[i]+d.Irregular[i]-y[i]) > 1e-8 {
			t.Fatalf("fitted+irregular != y at %d", i)
		}
	}
}

func TestSeasonalModelExtractsSeasonality(t *testing.T) {
	y := synthSeries(48, 3.0, NoChangePoint, 0, 0.2, 2)
	fit, err := FitConfig(y, Config{Seasonal: true, ChangePoint: NoChangePoint})
	if err != nil {
		t.Fatal(err)
	}
	d, err := fit.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	// Seasonal component must capture most of the sine amplitude.
	var maxSeasonal float64
	for _, v := range d.Seasonal[12:36] {
		if a := math.Abs(v); a > maxSeasonal {
			maxSeasonal = a
		}
	}
	if maxSeasonal < 2.0 {
		t.Fatalf("seasonal amplitude = %v, want ≈3", maxSeasonal)
	}
	// And it should be roughly 12-periodic in the interior.
	for i := 14; i < 30; i++ {
		if math.Abs(d.Seasonal[i]-d.Seasonal[i+12]) > 1.0 {
			t.Fatalf("seasonal not periodic at %d: %v vs %v", i, d.Seasonal[i], d.Seasonal[i+12])
		}
	}
}

func TestSeasonalImprovesAICOnSeasonalSeries(t *testing.T) {
	y := synthSeries(43, 3.0, NoChangePoint, 0, 0.3, 3)
	ll, err := FitConfig(y, Config{ChangePoint: NoChangePoint})
	if err != nil {
		t.Fatal(err)
	}
	lls, err := FitConfig(y, Config{Seasonal: true, ChangePoint: NoChangePoint})
	if err != nil {
		t.Fatal(err)
	}
	if lls.AIC >= ll.AIC {
		t.Fatalf("seasonal AIC %v should beat plain LL %v on a seasonal series", lls.AIC, ll.AIC)
	}
}

func TestInterventionImprovesAICOnBrokenSeries(t *testing.T) {
	cp := 25
	y := synthSeries(43, 0, cp, 0.8, 0.3, 4)
	plain, err := FitConfig(y, Config{ChangePoint: NoChangePoint})
	if err != nil {
		t.Fatal(err)
	}
	withIv, err := FitConfig(y, Config{ChangePoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	if withIv.AIC >= plain.AIC {
		t.Fatalf("intervention AIC %v should beat plain %v on a broken series", withIv.AIC, plain.AIC)
	}
	// λ should be near the true slope (scaled back).
	lambda := withIv.Lambda * withIv.Scale
	if math.Abs(lambda-0.8) > 0.3 {
		t.Fatalf("λ = %v, want ≈0.8", lambda)
	}
}

func TestAICPrefersTrueChangePoint(t *testing.T) {
	cp := 20
	y := synthSeries(43, 0, cp, 1.0, 0.3, 5)
	aicTrue, err := AICAt(y, false, cp)
	if err != nil {
		t.Fatal(err)
	}
	for _, wrong := range []int{5, 35} {
		aicWrong, err := AICAt(y, false, wrong)
		if err != nil {
			t.Fatal(err)
		}
		if aicTrue >= aicWrong {
			t.Fatalf("AIC at true cp (%v) should beat cp=%d (%v)", aicTrue, wrong, aicWrong)
		}
	}
}

func TestInterventionNotPreferredOnStableSeries(t *testing.T) {
	y := synthSeries(43, 0, NoChangePoint, 0, 0.3, 6)
	plain, err := FitConfig(y, Config{ChangePoint: NoChangePoint})
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	for cp := 2; cp < 41; cp += 6 {
		aic, err := AICAt(y, false, cp)
		if err != nil {
			t.Fatal(err)
		}
		if aic < best {
			best = aic
		}
	}
	if best < plain.AIC-2 {
		t.Fatalf("an intervention (AIC %v) decisively beat the plain model (%v) on a stable series", best, plain.AIC)
	}
}

func TestForecastContinuesSlopeShift(t *testing.T) {
	cp := 20
	n := 36
	y := synthSeries(n, 0, cp, 1.0, 0.2, 7)
	fit, err := FitConfig(y, Config{ChangePoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	mean, se, err := fit.Forecast(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(mean) != 6 || len(se) != 6 {
		t.Fatal("wrong forecast length")
	}
	// The slope shift must keep increasing the forecast.
	for i := 1; i < 6; i++ {
		if mean[i] <= mean[i-1] {
			t.Fatalf("forecast should keep rising after a slope shift: %v", mean)
		}
	}
	// First forecast should continue from the end of the series.
	if math.Abs(mean[0]-y[n-1]) > 5 {
		t.Fatalf("forecast start %v far from last observation %v", mean[0], y[n-1])
	}
	if _, _, err := fit.Forecast(0); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	if _, err := FitConfig([]float64{1, 2, 3}, Config{ChangePoint: NoChangePoint}); !errors.Is(err, ErrSeriesTooShort) {
		t.Fatalf("short series: err = %v", err)
	}
	y := synthSeries(43, 0, NoChangePoint, 0, 0.3, 8)
	if _, err := FitConfig(y, Config{ChangePoint: 99}); err == nil {
		t.Fatal("out-of-range change point accepted")
	}
}

func TestFitConstantSeries(t *testing.T) {
	y := make([]float64, 43) // all zeros — e.g. a pair that never occurs
	fit, err := FitConfig(y, Config{ChangePoint: NoChangePoint})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(fit.AIC) {
		t.Fatal("constant series produced NaN AIC")
	}
}

func TestFitDeterministic(t *testing.T) {
	y := synthSeries(43, 2, 15, 0.5, 0.3, 9)
	a, err := FitConfig(y, Config{Seasonal: true, ChangePoint: 15})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitConfig(y, Config{Seasonal: true, ChangePoint: 15})
	if err != nil {
		t.Fatal(err)
	}
	if a.AIC != b.AIC || a.LogLik != b.LogLik {
		t.Fatal("fitting is not deterministic")
	}
}

func TestRescale(t *testing.T) {
	scaled, scale := rescale([]float64{10, 20, 30})
	if scale <= 0 {
		t.Fatalf("scale = %v", scale)
	}
	if math.Abs(scaled[2]*scale-30) > 1e-12 {
		t.Fatal("rescale is not invertible")
	}
	// Constant nonzero series falls back to mean magnitude.
	_, scale2 := rescale([]float64{5, 5, 5})
	if scale2 != 5 {
		t.Fatalf("constant scale = %v, want 5", scale2)
	}
	// All-zero series falls back to 1.
	_, scale3 := rescale([]float64{0, 0})
	if scale3 != 1 {
		t.Fatalf("zero scale = %v, want 1", scale3)
	}
}
