package ssm

import (
	"errors"
	"fmt"
	"math"

	"mictrend/internal/kalman"
	"mictrend/internal/linalg"
)

// PrefixScanner scores every candidate change point of one series at a shared
// parameter vector in ~O(T) filter steps instead of the O(T²) a fit-per-
// candidate ladder pays.
//
// The trick is the prefix-sharing invariant: a candidate's slope-shift
// regressor is exactly zero before its change point, so up to t_CP the
// candidate model's λ block is inert — the sparse filter kernels skip exact
// zeros, the λ row of the gain stays 0, the λ state stays at its diffuse
// prior — and the candidate's filter recursion is arithmetic-for-arithmetic
// the no-intervention model's. Prepare therefore runs ONE filter pass over
// the no-intervention model, checkpointing the predicted state (a, P) at
// every candidate boundary into a reusable arena together with the running
// likelihood sums; Score(cp) resumes from checkpoint cp with the λ state
// appended (mean 0, diffuse variance, untouched cross-covariances — exactly
// the values the inert block would carry) and filters only the suffix.
// Summing the stored prefix terms with the suffix terms in the original
// ascending-time order reproduces the full-series concentrated likelihood of
// the candidate model at the shared parameters bitwise (see
// TestPrefixScoreMatchesFullEvaluation).
//
// A PrefixScanner is not safe for concurrent use.
type PrefixScanner struct {
	// Stats, when non-nil, counts every checkpoint resume (PrefixResumes).
	Stats *FitStats

	scaled   []float64
	seasonal bool
	maxCP    int
	base     int // no-intervention state dimension
	diffuse  int // shared diffuse burn-in of the level/seasonal block
	nq       int // optimizer coordinates (relative log-variances)
	// numParams is the candidate models' AIC parameter count (shared by all
	// candidates: variances + base states + one λ).
	numParams int

	noInt  *kalman.Model // built once; H/Q rewritten per Prepare
	suffix *kalman.Model // candidate tail model; A1/P1/diffuse set per Score
	// Separate workspaces for the two state dimensions, so alternating
	// Prepare/Score calls never thrash buffer reallocation.
	wsPrefix *kalman.Workspace
	wsSuffix *kalman.Workspace

	// Checkpoint arena: boundary b ∈ [0, maxCP] holds the predicted state
	// entering step b (boundary 0 is the diffuse initialization) and the
	// likelihood sums accumulated over steps [0, b).
	aArena   []float64 // (maxCP+1) × base
	pArena   []float64 // (maxCP+1) × base²
	cumLogF  []float64
	cumV2F   []float64
	cumCount []int

	skipBuf  [1]int
	prepared bool
}

// NewPrefixScanner builds a scanner for y with candidate change points
// 0..maxCP. The series is rescaled exactly as FitConfig rescales it, so
// scores are comparable with fitted AICs of the same series.
func NewPrefixScanner(y []float64, seasonal bool, maxCP int) (*PrefixScanner, error) {
	if len(y) < 2 {
		return nil, fmt.Errorf("%w: len %d", ErrSeriesTooShort, len(y))
	}
	if maxCP < 0 || maxCP >= len(y) {
		return nil, fmt.Errorf("ssm: prefix scan bound %d outside series of length %d", maxCP, len(y))
	}
	scaled, _ := rescale(y)

	noIntCfg := Config{Seasonal: seasonal, ChangePoint: NoChangePoint}.withDefaults()
	noInt, err := build(noIntCfg, 1, 1, 1)
	if err != nil {
		return nil, err
	}
	// The suffix template is the candidate model re-rooted at its change
	// point: built for ChangePoint 0 its regressor is w(t_rel) = t_rel+1 =
	// t−cp+1, exactly the candidate's active regressor. Its initial state,
	// diffuse count, and skip index are overwritten per Score.
	sufCfg := Config{Seasonal: seasonal, ChangePoint: 0}.withDefaults()
	suffix, err := build(sufCfg, 1, 1, 1)
	if err != nil {
		return nil, err
	}

	base := noIntCfg.stateDim()
	ps := &PrefixScanner{
		scaled:    scaled,
		seasonal:  seasonal,
		maxCP:     maxCP,
		base:      base,
		diffuse:   noInt.DiffuseCount,
		nq:        noIntCfg.numVariances() - 1,
		numParams: sufCfg.NumParams(),
		noInt:     noInt,
		suffix:    suffix,
		wsPrefix:  kalman.NewWorkspace(),
		wsSuffix:  kalman.NewWorkspace(),
		aArena:    make([]float64, (maxCP+1)*base),
		pArena:    make([]float64, (maxCP+1)*base*base),
		cumLogF:   make([]float64, maxCP+1),
		cumV2F:    make([]float64, maxCP+1),
		cumCount:  make([]int, maxCP+1),
	}
	return ps, nil
}

// Prepare runs the single no-intervention filter pass at the shared
// parameters (optimizer coordinates, as Fit.OptParams), filling the
// checkpoint arena. It must be called before Score and may be called again
// to re-anchor the ladder at a different parameter vector.
func (ps *PrefixScanner) Prepare(params []float64) error {
	ps.prepared = false
	if len(params) != ps.nq {
		return fmt.Errorf("ssm: prefix scan got %d parameters, want %d", len(params), ps.nq)
	}
	if err := checkParams(params); err != nil {
		return err
	}
	for _, m := range []*kalman.Model{ps.noInt, ps.suffix} {
		m.H = 1
		m.Q.Set(0, 0, math.Exp(params[0]))
		if ps.seasonal {
			m.Q.Set(1, 1, math.Exp(params[1]))
		}
	}

	// Boundary 0 is the diffuse initialization itself.
	base := ps.base
	copy(ps.aArena[:base], ps.noInt.A1)
	for i := 0; i < base; i++ {
		copy(ps.pArena[i*base:(i+1)*base], ps.noInt.P1.Row(i))
	}
	fr, err := ps.noInt.LogLikFilterOpts(ps.scaled, ps.wsPrefix, kalman.LogLikOptions{
		OnStep: func(t int, a []float64, p *linalg.Matrix) {
			b := t + 1
			if b > ps.maxCP {
				return
			}
			copy(ps.aArena[b*base:(b+1)*base], a)
			off := b * base * base
			for i := 0; i < base; i++ {
				copy(ps.pArena[off+i*base:off+(i+1)*base], p.Row(i))
			}
		},
	})
	if err != nil {
		return err
	}
	// Running likelihood sums: cum*[b] covers contributions of steps [0, b),
	// accumulated in the same ascending order concentratedLogLik uses so a
	// resumed score reproduces the full-series sums bitwise.
	var sumLogF, sumV2F float64
	count := 0
	for t := range fr.V {
		if t <= ps.maxCP {
			ps.cumLogF[t] = sumLogF
			ps.cumV2F[t] = sumV2F
			ps.cumCount[t] = count
		}
		if fr.Contributed[t] {
			sumLogF += math.Log(fr.F[t])
			sumV2F += fr.V[t] * fr.V[t] / fr.F[t]
			count++
		}
	}
	ps.prepared = true
	return nil
}

// Score returns the candidate model's AIC at the prepared parameters by
// resuming the filter from checkpoint cp. It equals, bit for bit, the AIC a
// full-series concentrated-likelihood evaluation of the cp model at the same
// parameters would produce.
func (ps *PrefixScanner) Score(cp int) (float64, error) {
	if !ps.prepared {
		return 0, errors.New("ssm: prefix scanner not prepared")
	}
	if cp < 0 || cp > ps.maxCP {
		return 0, fmt.Errorf("ssm: candidate %d outside prepared range [0, %d]", cp, ps.maxCP)
	}
	if s := ps.Stats; s != nil {
		s.PrefixResumes.Add(1)
	}

	// Rebuild the suffix model's initial conditions from the checkpoint: the
	// level/seasonal block verbatim, the λ state at its untouched diffuse
	// prior with zero cross-covariances.
	base := ps.base
	m := ps.suffix
	copy(m.A1[:base], ps.aArena[cp*base:(cp+1)*base])
	m.A1[base] = 0
	off := cp * base * base
	for i := 0; i < base; i++ {
		row := m.P1.Row(i)
		copy(row[:base], ps.pArena[off+i*base:off+(i+1)*base])
		row[base] = 0
	}
	last := m.P1.Row(base)
	for j := range last {
		last[j] = 0
	}
	last[base] = kalman.DiffuseVariance

	// Relative likelihood bookkeeping: the burn-in still ends at absolute
	// step max(diffuse, cp) — the λ initialization charges the candidate's
	// first active observation, or the first past the shared burn-in.
	rel := ps.diffuse - cp
	if rel < 0 {
		rel = 0
	}
	m.DiffuseCount = rel
	ps.skipBuf[0] = rel
	m.SkipLik = ps.skipBuf[:]

	fr, err := m.LogLikFilter(ps.scaled[cp:], ps.wsSuffix)
	if err != nil {
		return 0, err
	}
	sumLogF, sumV2F := ps.cumLogF[cp], ps.cumV2F[cp]
	count := ps.cumCount[cp]
	for t := range fr.V {
		if !fr.Contributed[t] {
			continue
		}
		sumLogF += math.Log(fr.F[t])
		sumV2F += fr.V[t] * fr.V[t] / fr.F[t]
		count++
	}
	if count == 0 {
		return 0, errors.New("ssm: no likelihood contributions")
	}
	logLik, _ := concentrateFromSums(sumLogF, sumV2F, count)
	return -2*logLik + 2*float64(ps.numParams), nil
}
