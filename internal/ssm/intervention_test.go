package ssm

import (
	"math"
	"math/rand/v2"
	"testing"
)

// synthTwoBreaks builds a series with slope shifts at cp1 and cp2.
func synthTwoBreaks(n, cp1, cp2 int, s1, s2, noise float64, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, 77))
	y := make([]float64, n)
	level := 10.0
	for t := 0; t < n; t++ {
		level += rng.NormFloat64() * 0.05
		y[t] = level +
			s1*InterventionRegressor(cp1, t) +
			s2*InterventionRegressor(cp2, t) +
			rng.NormFloat64()*noise
	}
	return y
}

func TestInterventionKinds(t *testing.T) {
	slope := Intervention{Kind: SlopeShift, Month: 10}
	if slope.Regressor(9) != 0 || slope.Regressor(10) != 1 || slope.Regressor(15) != 6 {
		t.Fatal("slope regressor wrong")
	}
	level := Intervention{Kind: LevelShift, Month: 10}
	if level.Regressor(9) != 0 || level.Regressor(10) != 1 || level.Regressor(40) != 1 {
		t.Fatal("level regressor wrong")
	}
	none := Intervention{Kind: SlopeShift, Month: NoChangePoint}
	if none.Regressor(5) != 0 {
		t.Fatal("no-change regressor should be 0")
	}
	if SlopeShift.String() != "slope-shift" || LevelShift.String() != "level-shift" {
		t.Fatal("kind names wrong")
	}
}

func TestConfigInterventionsMerging(t *testing.T) {
	c := Config{ChangePoint: 5, Extra: []Intervention{
		{Kind: LevelShift, Month: 10},
		{Kind: SlopeShift, Month: NoChangePoint}, // ignored
	}}
	ivs := c.Interventions()
	if len(ivs) != 2 {
		t.Fatalf("interventions = %d, want 2", len(ivs))
	}
	if ivs[0].Month != 5 || ivs[0].Kind != SlopeShift {
		t.Fatal("legacy change point should come first as a slope shift")
	}
	if ivs[1].Month != 10 || ivs[1].Kind != LevelShift {
		t.Fatal("extra intervention lost")
	}
	if c.stateDim() != 3 { // level + 2 lambdas
		t.Fatalf("stateDim = %d", c.stateDim())
	}
	if c.NumParams() != 5 { // 2 variances + 3 states
		t.Fatalf("NumParams = %d", c.NumParams())
	}
}

func TestFitTwoInterventions(t *testing.T) {
	cp1, cp2 := 12, 28
	y := synthTwoBreaks(43, cp1, cp2, 0.8, 1.2, 0.3, 1)
	fit, err := FitConfig(y, Config{
		ChangePoint: NoChangePoint,
		Extra: []Intervention{
			{Kind: SlopeShift, Month: cp1},
			{Kind: SlopeShift, Month: cp2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fit.Lambdas) != 2 {
		t.Fatalf("lambdas = %v", fit.Lambdas)
	}
	l1 := fit.Lambdas[0] * fit.Scale
	l2 := fit.Lambdas[1] * fit.Scale
	if math.Abs(l1-0.8) > 0.35 {
		t.Fatalf("λ1 = %v, want ≈0.8", l1)
	}
	if math.Abs(l2-1.2) > 0.35 {
		t.Fatalf("λ2 = %v, want ≈1.2", l2)
	}
	// The two-intervention model must beat both single-intervention models.
	single1, err := FitConfig(y, Config{ChangePoint: cp1})
	if err != nil {
		t.Fatal(err)
	}
	single2, err := FitConfig(y, Config{ChangePoint: cp2})
	if err != nil {
		t.Fatal(err)
	}
	if fit.AIC >= single1.AIC || fit.AIC >= single2.AIC {
		t.Fatalf("two-break AIC %v should beat singles %v / %v", fit.AIC, single1.AIC, single2.AIC)
	}
}

func TestLevelShiftFitsStepSeries(t *testing.T) {
	// A step change: level shift should fit better than a slope shift.
	rng := rand.New(rand.NewPCG(2, 3))
	cp := 20
	y := make([]float64, 43)
	for t := range y {
		v := 5.0
		if t >= cp {
			v = 12
		}
		y[t] = v + rng.NormFloat64()*0.4
	}
	levelFit, err := FitConfig(y, Config{
		ChangePoint: NoChangePoint,
		Extra:       []Intervention{{Kind: LevelShift, Month: cp}},
	})
	if err != nil {
		t.Fatal(err)
	}
	slopeFit, err := FitConfig(y, Config{ChangePoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	if levelFit.AIC >= slopeFit.AIC {
		t.Fatalf("level shift AIC %v should beat slope shift %v on a step", levelFit.AIC, slopeFit.AIC)
	}
	// λ ≈ step height.
	if got := levelFit.Lambda * levelFit.Scale; math.Abs(got-7) > 1.5 {
		t.Fatalf("step height λ = %v, want ≈7", got)
	}
}

func TestTwoInterventionDecomposition(t *testing.T) {
	cp1, cp2 := 10, 25
	y := synthTwoBreaks(40, cp1, cp2, 1.0, -0.6, 0.2, 4)
	fit, err := FitConfig(y, Config{
		ChangePoint: NoChangePoint,
		Extra: []Intervention{
			{Kind: SlopeShift, Month: cp1},
			{Kind: SlopeShift, Month: cp2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := fit.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruction must hold with multiple interventions.
	for i := range y {
		recon := d.Level[i] + d.Seasonal[i] + d.Intervention[i] + d.Irregular[i]
		if math.Abs(recon-y[i]) > 1e-8 {
			t.Fatalf("reconstruction at %d: %v vs %v", i, recon, y[i])
		}
	}
	// Intervention component is zero before the first break.
	for i := 0; i < cp1; i++ {
		if d.Intervention[i] != 0 {
			t.Fatalf("intervention nonzero at %d before first break", i)
		}
	}
	// And substantial at the end.
	if math.Abs(d.Intervention[39]) < 1 {
		t.Fatalf("intervention at end = %v, want substantial", d.Intervention[39])
	}
}

func TestExtraInterventionOutOfRangeRejected(t *testing.T) {
	y := synthTwoBreaks(43, NoChangePoint, NoChangePoint, 0, 0, 0.3, 5)
	_, err := FitConfig(y, Config{
		ChangePoint: NoChangePoint,
		Extra:       []Intervention{{Kind: SlopeShift, Month: 99}},
	})
	if err == nil {
		t.Fatal("out-of-range extra intervention accepted")
	}
}

func TestSameMonthInterventionsSkipDistinctObservations(t *testing.T) {
	// Two interventions at the same month (slope + level): the model must
	// still fit without double-charging one observation.
	rng := rand.New(rand.NewPCG(6, 7))
	cp := 15
	y := make([]float64, 43)
	level := 5.0
	for t := range y {
		v := level
		if t >= cp {
			v += 4 + 0.5*float64(t-cp+1) // level + slope change together
		}
		y[t] = v + rng.NormFloat64()*0.3
	}
	fit, err := FitConfig(y, Config{
		ChangePoint: NoChangePoint,
		Extra: []Intervention{
			{Kind: LevelShift, Month: cp},
			{Kind: SlopeShift, Month: cp},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(fit.AIC) || math.IsInf(fit.AIC, 0) {
		t.Fatalf("AIC = %v", fit.AIC)
	}
	if len(fit.Lambdas) != 2 {
		t.Fatalf("lambdas = %v", fit.Lambdas)
	}
}
