package ssm

import (
	"math"
	"testing"
)

func TestFitWithMissingMonths(t *testing.T) {
	// Claims pipelines occasionally miss a month of data; the filter treats
	// NaN as a missing observation and the fit must still work.
	y := synthSeries(43, 0, 20, 1.0, 0.3, 31)
	y[7] = math.NaN()
	y[8] = math.NaN()
	y[30] = math.NaN()
	fit, err := FitConfig(y, Config{ChangePoint: 20})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(fit.AIC) || math.IsInf(fit.AIC, 0) {
		t.Fatalf("AIC = %v", fit.AIC)
	}
	// λ should still recover the slope.
	if got := fit.Lambda * fit.Scale; math.Abs(got-1.0) > 0.4 {
		t.Fatalf("λ = %v, want ≈1.0", got)
	}
	d, err := fit.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	// The smoothed level interpolates across the gap (no NaN in components).
	for i, v := range d.Level {
		if math.IsNaN(v) {
			t.Fatalf("level NaN at %d", i)
		}
	}
	// Irregular is NaN exactly at missing points (observation − signal).
	if !math.IsNaN(d.Irregular[7]) || !math.IsNaN(d.Irregular[30]) {
		t.Fatal("irregular should be NaN at missing observations")
	}
	if math.IsNaN(d.Irregular[0]) {
		t.Fatal("irregular NaN at an observed point")
	}
}

func TestMissingMonthsReduceLikCount(t *testing.T) {
	y := synthSeries(43, 0, NoChangePoint, 0, 0.3, 32)
	full, err := FitConfig(y, Config{ChangePoint: NoChangePoint})
	if err != nil {
		t.Fatal(err)
	}
	y2 := append([]float64(nil), y...)
	y2[10] = math.NaN()
	y2[11] = math.NaN()
	gappy, err := FitConfig(y2, Config{ChangePoint: NoChangePoint})
	if err != nil {
		t.Fatal(err)
	}
	if gappy.Filter.LikCount != full.Filter.LikCount-2 {
		t.Fatalf("LikCount %d vs %d; missing months must not contribute",
			gappy.Filter.LikCount, full.Filter.LikCount)
	}
}

func TestAICAtWithAllMissingFails(t *testing.T) {
	y := make([]float64, 43)
	for i := range y {
		y[i] = math.NaN()
	}
	if _, err := AICAt(y, false, NoChangePoint); err == nil {
		t.Fatal("all-missing series accepted")
	}
}
