package ssm

import (
	"math"
	"strings"
	"testing"
)

// TestWarmStartWinsOutright fits a series cold, then refits it warm from the
// cold optimum: the warm fit must win on the first attempt, land on (nearly)
// the same likelihood, and cost fewer objective evaluations than a fresh
// cold fit would — that saving is the whole point of warm-started scans.
func TestWarmStartWinsOutright(t *testing.T) {
	y := multistartSeries()
	cold, err := FitConfig(y, Config{Seasonal: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.OptParams) != 2 {
		t.Fatalf("cold OptParams = %v, want 2 log-variances", cold.OptParams)
	}
	warm, err := FitConfigOptions(y, Config{Seasonal: true}, nil, FitOptions{Start: cold.OptParams})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Attempts != 1 {
		t.Fatalf("warm Attempts = %d, want 1 (the warm start must win outright)", warm.Attempts)
	}
	if diff := math.Abs(warm.AIC - cold.AIC); diff > 1e-6*(1+math.Abs(cold.AIC)) {
		t.Fatalf("warm AIC %v too far from cold AIC %v", warm.AIC, cold.AIC)
	}
}

// TestWarmStartWrongLengthErrors checks a dimension-mismatched warm start is
// an immediate error, not a silent fallback: the caller wired the wrong
// model's optimum and should hear about it.
func TestWarmStartWrongLengthErrors(t *testing.T) {
	_, err := FitConfigOptions(multistartSeries(), Config{Seasonal: true}, nil,
		FitOptions{Start: []float64{0.5}})
	if err == nil {
		t.Fatal("1-parameter warm start accepted by a 2-parameter model")
	}
	if !strings.Contains(err.Error(), "warm start") {
		t.Fatalf("err = %v, want a warm start dimension message", err)
	}
}

// TestWarmStartBadValueFallsBackCold seeds the fit from outside the ±20
// log-variance box, where every objective evaluation is +Inf: the warm
// attempt must be discarded and the cold starts must recover the usual fit.
func TestWarmStartBadValueFallsBackCold(t *testing.T) {
	y := multistartSeries()
	cold, err := FitConfig(y, Config{Seasonal: true})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := FitConfigOptions(y, Config{Seasonal: true}, nil,
		FitOptions{Start: []float64{25, 25}})
	if err != nil {
		t.Fatalf("bad warm start was not recovered: %v", err)
	}
	if warm.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2 (warm discarded, first cold start wins)", warm.Attempts)
	}
	if warm.AIC != cold.AIC {
		t.Fatalf("fallback AIC %v != cold AIC %v", warm.AIC, cold.AIC)
	}
}

// TestZeroOptionsBitwiseEqualsCold pins the compatibility contract in the
// FitConfigOptions doc: a zero FitOptions must reproduce FitConfigWorkspace
// bit for bit.
func TestZeroOptionsBitwiseEqualsCold(t *testing.T) {
	y := multistartSeries()
	for _, seasonal := range []bool{false, true} {
		a, err := FitConfigWorkspace(y, Config{Seasonal: seasonal}, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := FitConfigOptions(y, Config{Seasonal: seasonal}, nil, FitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if a.AIC != b.AIC || a.LogLik != b.LogLik || a.EpsVar != b.EpsVar ||
			a.XiVar != b.XiVar || a.OmegaVar != b.OmegaVar || a.Attempts != b.Attempts {
			t.Fatalf("seasonal=%v: zero-options fit differs: %+v vs %+v", seasonal, a, b)
		}
		for i := range a.OptParams {
			if a.OptParams[i] != b.OptParams[i] {
				t.Fatalf("seasonal=%v: OptParams differ: %v vs %v", seasonal, a.OptParams, b.OptParams)
			}
		}
	}
}
