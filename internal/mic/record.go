// Package mic defines the Medical Insurance Claim data model the whole
// reproduction operates on: monthly collections of claim records, each
// holding a bag of diagnosed diseases and a bag of prescribed medicines with
// the disease→medicine prescription links deliberately absent (paper §III-A),
// plus the hospital metadata (city, bed class) needed for the paper's §VII
// applications. The package also provides vocabularies, a JSONL+gzip codec,
// the paper's §VI frequency filters, and dataset splits.
package mic

import "fmt"

// DiseaseID identifies a disease code within a Dataset's disease vocabulary.
type DiseaseID int32

// MedicineID identifies a medicine code within a Dataset's medicine
// vocabulary.
type MedicineID int32

// HospitalID indexes a Dataset's hospital table.
type HospitalID int32

// Pair identifies a disease–medicine pair, the unit of the paper's
// prescription time series.
type Pair struct {
	Disease  DiseaseID
	Medicine MedicineID
}

// HospitalClass groups hospitals by bed count the way the paper's §VII-C
// inter-hospital gap analysis does.
type HospitalClass int

// Hospital classes, thresholded on bed counts per the paper: small [0,20)
// ("clinics"), medium [20,400), large [400,∞) ("advanced treatment
// hospitals").
const (
	SmallHospital HospitalClass = iota
	MediumHospital
	LargeHospital
	numHospitalClasses
)

// NumHospitalClasses is the number of hospital size classes.
const NumHospitalClasses = int(numHospitalClasses)

// ClassifyBeds maps a bed count to its HospitalClass.
func ClassifyBeds(beds int) HospitalClass {
	switch {
	case beds < 20:
		return SmallHospital
	case beds < 400:
		return MediumHospital
	default:
		return LargeHospital
	}
}

// String returns the class name used in reports.
func (c HospitalClass) String() string {
	switch c {
	case SmallHospital:
		return "small"
	case MediumHospital:
		return "medium"
	case LargeHospital:
		return "large"
	default:
		return fmt.Sprintf("HospitalClass(%d)", int(c))
	}
}

// Hospital carries the per-institution metadata attached to records.
type Hospital struct {
	Code string // external identifier
	City string // city name, used by the geographical spread analysis
	Beds int    // bed count, determines the HospitalClass
}

// Class returns the hospital's size class.
func (h Hospital) Class() HospitalClass { return ClassifyBeds(h.Beds) }

// DiseaseCount is one entry of a record's disease bag: a disease and how
// many times it was diagnosed in the record's month (N_rd in the paper).
type DiseaseCount struct {
	Disease DiseaseID
	Count   int
}

// Record is a single monthly MIC record: the diseases diagnosed for one
// patient at one institution in one month, and the medicines prescribed,
// with no link between the two bags.
type Record struct {
	Hospital  HospitalID
	Patient   int32 // anonymized patient index; -1 when unknown
	Diseases  []DiseaseCount
	Medicines []MedicineID
}

// NumDiseaseMentions returns N_r: the total number of disease diagnoses in
// the record counting multiplicity.
func (r *Record) NumDiseaseMentions() int {
	var n int
	for _, dc := range r.Diseases {
		n += dc.Count
	}
	return n
}

// NumMedicines returns L_r: the number of medicine prescriptions in the
// record.
func (r *Record) NumMedicines() int { return len(r.Medicines) }

// HasDisease reports whether the record's disease bag contains d.
func (r *Record) HasDisease(d DiseaseID) bool {
	for _, dc := range r.Diseases {
		if dc.Disease == d {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the record.
func (r *Record) Clone() Record {
	c := Record{Hospital: r.Hospital, Patient: r.Patient}
	c.Diseases = append([]DiseaseCount(nil), r.Diseases...)
	c.Medicines = append([]MedicineID(nil), r.Medicines...)
	return c
}

// Monthly is one month's record collection (the paper's R^(t)).
type Monthly struct {
	Month   int // 0-based month index within the dataset period
	Records []Record
}

// NumRecords returns R^(t).
func (m *Monthly) NumRecords() int { return len(m.Records) }

// DiseaseFrequencies returns, for each disease appearing in the month, the
// total number of diagnoses (counting multiplicity).
func (m *Monthly) DiseaseFrequencies() map[DiseaseID]int {
	freq := make(map[DiseaseID]int)
	for i := range m.Records {
		for _, dc := range m.Records[i].Diseases {
			freq[dc.Disease] += dc.Count
		}
	}
	return freq
}

// MedicineFrequencies returns, for each medicine appearing in the month, the
// total number of prescriptions.
func (m *Monthly) MedicineFrequencies() map[MedicineID]int {
	freq := make(map[MedicineID]int)
	for i := range m.Records {
		for _, med := range m.Records[i].Medicines {
			freq[med]++
		}
	}
	return freq
}
