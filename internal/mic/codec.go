package mic

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// The on-disk format is line-oriented JSON (JSONL), optionally gzipped:
// a header line describing vocabularies and hospitals, followed by one line
// per record. Line-oriented framing keeps memory flat when streaming
// population-scale corpora.

type fileHeader struct {
	Version   int        `json:"version"`
	Months    int        `json:"months"`
	Diseases  []string   `json:"diseases"`
	Medicines []string   `json:"medicines"`
	Hospitals []Hospital `json:"hospitals"`
}

type fileRecord struct {
	Month     int          `json:"t"`
	Hospital  int32        `json:"h"`
	Patient   int32        `json:"p"`
	Diseases  [][2]int32   `json:"d"` // pairs of (disease id, count)
	Medicines []MedicineID `json:"m"`
}

const codecVersion = 1

// Write serializes the dataset to w as JSONL.
func Write(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr := fileHeader{
		Version:   codecVersion,
		Months:    len(d.Months),
		Diseases:  d.Diseases.Codes(),
		Medicines: d.Medicines.Codes(),
		Hospitals: d.Hospitals,
	}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("mic: encoding header: %w", err)
	}
	for _, m := range d.Months {
		for i := range m.Records {
			r := &m.Records[i]
			fr := fileRecord{Month: m.Month, Hospital: int32(r.Hospital), Patient: r.Patient, Medicines: r.Medicines}
			for _, dc := range r.Diseases {
				fr.Diseases = append(fr.Diseases, [2]int32{int32(dc.Disease), int32(dc.Count)})
			}
			if err := enc.Encode(fr); err != nil {
				return fmt.Errorf("mic: encoding record: %w", err)
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a dataset previously produced by Write.
func Read(r io.Reader) (*Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	dec := json.NewDecoder(br)
	var hdr fileHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("mic: decoding header: %w", err)
	}
	if hdr.Version != codecVersion {
		return nil, fmt.Errorf("mic: unsupported file version %d", hdr.Version)
	}
	if hdr.Months < 0 {
		return nil, fmt.Errorf("mic: negative month count %d", hdr.Months)
	}
	d := NewDataset()
	for _, code := range hdr.Diseases {
		d.Diseases.Intern(code)
	}
	for _, code := range hdr.Medicines {
		d.Medicines.Intern(code)
	}
	d.Hospitals = hdr.Hospitals
	d.Months = make([]*Monthly, hdr.Months)
	for t := range d.Months {
		d.Months[t] = &Monthly{Month: t}
	}
	for {
		var fr fileRecord
		if err := dec.Decode(&fr); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("mic: decoding record: %w", err)
		}
		if fr.Month < 0 || fr.Month >= hdr.Months {
			return nil, fmt.Errorf("mic: record month %d out of range [0,%d)", fr.Month, hdr.Months)
		}
		rec := Record{Hospital: HospitalID(fr.Hospital), Patient: fr.Patient, Medicines: fr.Medicines}
		for _, pair := range fr.Diseases {
			rec.Diseases = append(rec.Diseases, DiseaseCount{Disease: DiseaseID(pair[0]), Count: int(pair[1])})
		}
		m := d.Months[fr.Month]
		m.Records = append(m.Records, rec)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// WriteFile writes the dataset to path, gzip-compressing when the path ends
// in ".gz".
func WriteFile(path string, d *Dataset) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	var w io.Writer = f
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		defer func() {
			if cerr := gz.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = gz
	}
	return Write(w, d)
}

// ReadFile reads a dataset from path, transparently decompressing ".gz"
// files.
func ReadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, err
		}
		defer gz.Close()
		r = gz
	}
	return Read(r)
}
