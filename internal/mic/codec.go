package mic

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// The on-disk format is line-oriented JSON (JSONL), optionally gzipped:
// a header line describing vocabularies and hospitals, followed by one line
// per record. Line-oriented framing keeps memory flat when streaming
// population-scale corpora.

type fileHeader struct {
	Version   int        `json:"version"`
	Months    int        `json:"months"`
	Diseases  []string   `json:"diseases"`
	Medicines []string   `json:"medicines"`
	Hospitals []Hospital `json:"hospitals"`
}

type fileRecord struct {
	Month     int          `json:"t"`
	Hospital  int32        `json:"h"`
	Patient   int32        `json:"p"`
	Diseases  [][2]int32   `json:"d"` // pairs of (disease id, count)
	Medicines []MedicineID `json:"m"`
}

const codecVersion = 1

// Write serializes the dataset to w as JSONL.
func Write(w io.Writer, d *Dataset) error {
	sw, err := NewJSONLStreamWriter(w, NewStreamMeta(d))
	if err != nil {
		return err
	}
	for _, m := range d.Months {
		if err := sw.WriteMonth(m); err != nil {
			return err
		}
	}
	return sw.Close()
}

// jsonlStreamWriter emits the JSONL encoding one month at a time. The
// fileRecord's disease pair slice is scratch reused across records — the
// encoder reads it synchronously — so a population-scale write allocates per
// flush, not per record.
type jsonlStreamWriter struct {
	bw      *bufio.Writer
	enc     *json.Encoder
	meta    StreamMeta
	next    int
	scratch [][2]int32
}

// NewJSONLStreamWriter writes the JSONL header for meta and returns a writer
// that streams months in index order. The emitted bytes are exactly Write's.
func NewJSONLStreamWriter(w io.Writer, meta StreamMeta) (StreamWriter, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr := fileHeader{
		Version:   codecVersion,
		Months:    meta.Months,
		Diseases:  meta.Diseases,
		Medicines: meta.Medicines,
		Hospitals: meta.Hospitals,
	}
	if err := enc.Encode(hdr); err != nil {
		return nil, fmt.Errorf("mic: encoding header: %w", err)
	}
	return &jsonlStreamWriter{bw: bw, enc: enc, meta: meta}, nil
}

func (sw *jsonlStreamWriter) WriteMonth(m *Monthly) error {
	if m == nil {
		return errors.New("mic: jsonl writer: nil month")
	}
	if m.Month != sw.next {
		return fmt.Errorf("mic: jsonl writer: month %d out of order (want %d)", m.Month, sw.next)
	}
	if sw.next >= sw.meta.Months {
		return fmt.Errorf("mic: jsonl writer: month %d beyond declared count %d", m.Month, sw.meta.Months)
	}
	sw.next++
	for i := range m.Records {
		r := &m.Records[i]
		fr := fileRecord{Month: m.Month, Hospital: int32(r.Hospital), Patient: r.Patient, Medicines: r.Medicines}
		if len(r.Diseases) > 0 {
			// Reuse the scratch pair slice across records (the encoder reads
			// it before returning); an empty bag stays nil so the emitted
			// bytes match the per-record-allocation writer exactly.
			sw.scratch = sw.scratch[:0]
			for _, dc := range r.Diseases {
				sw.scratch = append(sw.scratch, [2]int32{int32(dc.Disease), int32(dc.Count)})
			}
			fr.Diseases = sw.scratch
		}
		if err := sw.enc.Encode(fr); err != nil {
			return fmt.Errorf("mic: encoding record: %w", err)
		}
	}
	return nil
}

func (sw *jsonlStreamWriter) Close() error {
	if sw.next != sw.meta.Months {
		return fmt.Errorf("mic: jsonl writer: wrote %d of %d declared months", sw.next, sw.meta.Months)
	}
	return sw.bw.Flush()
}

// ReadOptions controls how the decoder treats malformed record lines.
type ReadOptions struct {
	// Strict aborts the load on the first malformed record line. The
	// default (false) skips and counts malformed lines — at population
	// scale, a handful of corrupt claims must not discard the corpus.
	Strict bool
}

// ReadStats reports what a lenient read skipped.
type ReadStats struct {
	// SkippedLines counts malformed record lines that were dropped.
	SkippedLines int
	// FirstError describes the first skipped line (nil when none).
	FirstError error
}

// Read deserializes a dataset previously produced by Write, skipping and
// counting malformed record lines; use ReadWithStats to observe the skip
// count or to restore fail-fast behavior.
func Read(r io.Reader) (*Dataset, error) {
	d, _, err := ReadWithStats(r, ReadOptions{})
	return d, err
}

// ReadWithStats deserializes a dataset, reporting skipped lines. A corrupt
// header, an I/O error, or (under Strict) any malformed record line aborts
// the load; otherwise malformed lines — bad JSON, out-of-range months,
// records referencing unknown vocabulary entries or hospitals — are dropped
// and counted, keeping the rest of the corpus usable.
func ReadWithStats(r io.Reader, opts ReadOptions) (*Dataset, ReadStats, error) {
	var stats ReadStats
	br := bufio.NewReaderSize(r, 1<<20)
	headerLine, rerr := readLine(br)
	if len(headerLine) == 0 && rerr != nil {
		return nil, stats, fmt.Errorf("mic: decoding header: %w", rerr)
	}
	var hdr fileHeader
	if err := json.Unmarshal(headerLine, &hdr); err != nil {
		return nil, stats, fmt.Errorf("mic: decoding header: %w", err)
	}
	if hdr.Version != codecVersion {
		return nil, stats, fmt.Errorf("mic: unsupported file version %d", hdr.Version)
	}
	if hdr.Months < 0 {
		return nil, stats, fmt.Errorf("mic: negative month count %d", hdr.Months)
	}
	d := NewDataset()
	for _, code := range hdr.Diseases {
		d.Diseases.Intern(code)
	}
	for _, code := range hdr.Medicines {
		d.Medicines.Intern(code)
	}
	d.Hospitals = hdr.Hospitals
	d.Months = make([]*Monthly, hdr.Months)
	for t := range d.Months {
		d.Months[t] = &Monthly{Month: t}
	}
	lineNo := 1
	for rerr == nil {
		var line []byte
		line, rerr = readLine(br)
		lineNo++
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if err := decodeRecordLine(d, hdr.Months, line); err != nil {
			if opts.Strict {
				return nil, stats, fmt.Errorf("mic: line %d: %w", lineNo, err)
			}
			stats.SkippedLines++
			if stats.FirstError == nil {
				stats.FirstError = fmt.Errorf("mic: line %d: %w", lineNo, err)
			}
		}
	}
	if rerr != io.EOF {
		return nil, stats, fmt.Errorf("mic: reading records: %w", rerr)
	}
	return d, stats, nil
}

// readLine returns the next line (without framing requirements on the final
// line); data may accompany io.EOF.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	return line, err
}

// decodeRecordLine parses and validates one record line, appending it to its
// month on success.
func decodeRecordLine(d *Dataset, months int, line []byte) error {
	var fr fileRecord
	if err := json.Unmarshal(line, &fr); err != nil {
		return err
	}
	if fr.Month < 0 || fr.Month >= months {
		return fmt.Errorf("record month %d out of range [0,%d)", fr.Month, months)
	}
	rec := Record{Hospital: HospitalID(fr.Hospital), Patient: fr.Patient, Medicines: fr.Medicines}
	for _, pair := range fr.Diseases {
		rec.Diseases = append(rec.Diseases, DiseaseCount{Disease: DiseaseID(pair[0]), Count: int(pair[1])})
	}
	if err := d.CheckRecord(&rec); err != nil {
		return err
	}
	m := d.Months[fr.Month]
	m.Records = append(m.Records, rec)
	return nil
}

// WriteFile writes the dataset to path, gzip-compressing when the path ends
// in ".gz".
func WriteFile(path string, d *Dataset) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	var w io.Writer = f
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		defer func() {
			if cerr := gz.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = gz
	}
	return Write(w, d)
}

// ReadFile reads a dataset from path, transparently decompressing ".gz"
// files. Malformed record lines are skipped; use ReadFileWithStats to
// observe the skip count or enforce strictness.
func ReadFile(path string) (*Dataset, error) {
	d, _, err := ReadFileWithStats(path, ReadOptions{})
	return d, err
}

// ReadFileWithStats reads a dataset from path with explicit lenient/strict
// handling of malformed record lines, transparently decompressing ".gz"
// files.
func ReadFileWithStats(path string, opts ReadOptions) (*Dataset, ReadStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, ReadStats{}, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, ReadStats{}, err
		}
		defer gz.Close()
		r = gz
	}
	return ReadWithStats(r, opts)
}
