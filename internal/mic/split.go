package mic

import (
	"math"
	"math/rand/v2"
	"sort"
)

// SplitByCity partitions every month's records by the city of the issuing
// hospital, returning one Dataset per city keyed by city name. Vocabularies
// and the hospital table are shared with the input. Used by the §VII-B
// geographical spread analysis.
func SplitByCity(d *Dataset) map[string]*Dataset {
	out := make(map[string]*Dataset)
	get := func(city string) *Dataset {
		ds, ok := out[city]
		if !ok {
			ds = &Dataset{Diseases: d.Diseases, Medicines: d.Medicines, Hospitals: d.Hospitals}
			for t := range d.Months {
				ds.Months = append(ds.Months, &Monthly{Month: t})
			}
			out[city] = ds
		}
		return ds
	}
	for t, m := range d.Months {
		for i := range m.Records {
			r := &m.Records[i]
			city := d.Hospitals[r.Hospital].City
			ds := get(city)
			ds.Months[t].Records = append(ds.Months[t].Records, *r)
		}
	}
	return out
}

// SplitByHospitalClass partitions every month's records by hospital size
// class (small/medium/large). Used by the §VII-C inter-hospital gap
// analysis.
func SplitByHospitalClass(d *Dataset) map[HospitalClass]*Dataset {
	out := make(map[HospitalClass]*Dataset, NumHospitalClasses)
	for c := SmallHospital; c <= LargeHospital; c++ {
		ds := &Dataset{Diseases: d.Diseases, Medicines: d.Medicines, Hospitals: d.Hospitals}
		for t := range d.Months {
			ds.Months = append(ds.Months, &Monthly{Month: t})
		}
		out[c] = ds
	}
	for t, m := range d.Months {
		for i := range m.Records {
			r := &m.Records[i]
			class := d.Hospitals[r.Hospital].Class()
			out[class].Months[t].Records = append(out[class].Months[t].Records, *r)
		}
	}
	return out
}

// Holdout is the result of a medicine train/test split of one month: Train
// keeps trainFraction of each record's medicines, Test holds the rest. The
// disease bags are identical on both sides; records whose medicine bag is
// too small to split contribute no test medicines, matching the paper's
// 90%/10% per-record sampling protocol (§VIII-A1).
type Holdout struct {
	Train *Monthly
	// Test[i] holds the held-out medicines of Train.Records[i].
	Test [][]MedicineID
}

// SplitMedicines splits each record's medicine bag into train/test portions.
// trainFraction must be in (0, 1]. The split is deterministic given seed.
func SplitMedicines(month *Monthly, trainFraction float64, seed uint64) Holdout {
	if trainFraction <= 0 || trainFraction > 1 {
		panic("mic: trainFraction must be in (0, 1]")
	}
	rng := rand.New(rand.NewPCG(seed, uint64(month.Month)+0x9e3779b97f4a7c15))
	out := Holdout{Train: &Monthly{Month: month.Month}}
	for i := range month.Records {
		r := &month.Records[i]
		nr := Record{Hospital: r.Hospital, Patient: r.Patient}
		nr.Diseases = append([]DiseaseCount(nil), r.Diseases...)
		l := len(r.Medicines)
		nTest := int(math.Round(float64(l) * (1 - trainFraction)))
		if nTest >= l {
			nTest = l - 1
		}
		if nTest < 0 {
			nTest = 0
		}
		perm := rng.Perm(l)
		testIdx := make(map[int]bool, nTest)
		for _, p := range perm[:nTest] {
			testIdx[p] = true
		}
		var test []MedicineID
		for j, med := range r.Medicines {
			if testIdx[j] {
				test = append(test, med)
			} else {
				nr.Medicines = append(nr.Medicines, med)
			}
		}
		out.Train.Records = append(out.Train.Records, nr)
		out.Test = append(out.Test, test)
	}
	return out
}

// TopDiseases returns the ids of the k diseases with the highest total
// diagnosis frequency across the whole dataset, most frequent first. Ties
// break on ascending id for determinism. Used to pick the "100 most frequent
// diseases" of the §VIII-A2 relevance experiment.
func TopDiseases(d *Dataset, k int) []DiseaseID {
	freq := make(map[DiseaseID]int)
	for _, m := range d.Months {
		for i := range m.Records {
			for _, dc := range m.Records[i].Diseases {
				freq[dc.Disease] += dc.Count
			}
		}
	}
	ids := make([]DiseaseID, 0, len(freq))
	for id := range freq {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		fa, fb := freq[ids[a]], freq[ids[b]]
		if fa != fb {
			return fa > fb
		}
		return ids[a] < ids[b]
	})
	if k < len(ids) {
		ids = ids[:k]
	}
	return ids
}

// TopMedicines returns the ids of the k most prescribed medicines across the
// dataset, most frequent first.
func TopMedicines(d *Dataset, k int) []MedicineID {
	freq := make(map[MedicineID]int)
	for _, m := range d.Months {
		for i := range m.Records {
			for _, med := range m.Records[i].Medicines {
				freq[med]++
			}
		}
	}
	ids := make([]MedicineID, 0, len(freq))
	for id := range freq {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		fa, fb := freq[ids[a]], freq[ids[b]]
		if fa != fb {
			return fa > fb
		}
		return ids[a] < ids[b]
	})
	if k < len(ids) {
		ids = ids[:k]
	}
	return ids
}
