package mic

import (
	"errors"
	"fmt"
)

// ErrEmptyDataset is returned by operations that need at least one month of
// records.
var ErrEmptyDataset = errors.New("mic: empty dataset")

// Dataset is a multi-month MIC corpus: T monthly record collections sharing
// disease/medicine vocabularies and a hospital table.
type Dataset struct {
	Months    []*Monthly
	Diseases  *Vocab
	Medicines *Vocab
	Hospitals []Hospital
}

// NewDataset returns an empty dataset with fresh vocabularies.
func NewDataset() *Dataset {
	return &Dataset{Diseases: NewVocab(), Medicines: NewVocab()}
}

// T returns the number of months.
func (d *Dataset) T() int { return len(d.Months) }

// NumRecords returns the total record count across all months.
func (d *Dataset) NumRecords() int {
	var n int
	for _, m := range d.Months {
		n += len(m.Records)
	}
	return n
}

// AddHospital appends a hospital and returns its id.
func (d *Dataset) AddHospital(h Hospital) HospitalID {
	d.Hospitals = append(d.Hospitals, h)
	return HospitalID(len(d.Hospitals) - 1)
}

// Hospital returns the hospital metadata for id. It panics on an
// out-of-range id.
func (d *Dataset) Hospital(id HospitalID) Hospital {
	if id < 0 || int(id) >= len(d.Hospitals) {
		panic(fmt.Sprintf("mic: hospital id %d out of range (%d hospitals)", id, len(d.Hospitals)))
	}
	return d.Hospitals[id]
}

// Validate checks internal consistency: month indices are sequential,
// disease/medicine ids are within vocabulary range, hospital ids are within
// the hospital table, and disease counts are positive.
func (d *Dataset) Validate() error {
	if d.Diseases == nil || d.Medicines == nil {
		return errors.New("mic: dataset missing vocabularies")
	}
	for i, m := range d.Months {
		if m == nil {
			return fmt.Errorf("mic: month %d is nil", i)
		}
		if m.Month != i {
			return fmt.Errorf("mic: month at position %d has index %d", i, m.Month)
		}
		for ri := range m.Records {
			if err := d.CheckRecord(&m.Records[ri]); err != nil {
				return fmt.Errorf("mic: month %d record %d: %w", i, ri, err)
			}
		}
	}
	return nil
}

// CheckRecord validates one record against the dataset's vocabularies and
// hospital table — the per-record subset of Validate, shared with the codec
// so a lenient load can reject individual lines instead of the whole corpus.
func (d *Dataset) CheckRecord(r *Record) error {
	if int(r.Hospital) >= len(d.Hospitals) || r.Hospital < 0 {
		return fmt.Errorf("references hospital %d of %d", r.Hospital, len(d.Hospitals))
	}
	for _, dc := range r.Diseases {
		if dc.Disease < 0 || int(dc.Disease) >= d.Diseases.Len() {
			return fmt.Errorf("disease id %d out of range", dc.Disease)
		}
		if dc.Count <= 0 {
			return fmt.Errorf("non-positive disease count %d", dc.Count)
		}
	}
	for _, med := range r.Medicines {
		if med < 0 || int(med) >= d.Medicines.Len() {
			return fmt.Errorf("medicine id %d out of range", med)
		}
	}
	return nil
}

// Summary aggregates the corpus statistics the paper reports in §VI (average
// monthly counts of institutions, patients, records, diseases, medicines,
// and per-record disease/medicine frequencies).
type Summary struct {
	Months              int
	AvgRecordsPerMonth  float64
	AvgDiseasesPerMonth float64 // unique diseases per month
	AvgMedsPerMonth     float64 // unique medicines per month
	AvgDiseasesPerRec   float64 // disease mentions per record (paper: 7.435)
	AvgMedsPerRec       float64 // medicine mentions per record (paper: 4.788)
	Hospitals           int
}

// Summarize computes the corpus Summary.
func (d *Dataset) Summarize() (Summary, error) {
	if len(d.Months) == 0 {
		return Summary{}, ErrEmptyDataset
	}
	var s Summary
	s.Months = len(d.Months)
	s.Hospitals = len(d.Hospitals)
	var totalRecords, totalDiseaseMentions, totalMedMentions int
	var totalUniqueDiseases, totalUniqueMeds int
	for _, m := range d.Months {
		totalRecords += len(m.Records)
		diseases := make(map[DiseaseID]struct{})
		meds := make(map[MedicineID]struct{})
		for i := range m.Records {
			r := &m.Records[i]
			totalDiseaseMentions += r.NumDiseaseMentions()
			totalMedMentions += len(r.Medicines)
			for _, dc := range r.Diseases {
				diseases[dc.Disease] = struct{}{}
			}
			for _, med := range r.Medicines {
				meds[med] = struct{}{}
			}
		}
		totalUniqueDiseases += len(diseases)
		totalUniqueMeds += len(meds)
	}
	t := float64(len(d.Months))
	s.AvgRecordsPerMonth = float64(totalRecords) / t
	s.AvgDiseasesPerMonth = float64(totalUniqueDiseases) / t
	s.AvgMedsPerMonth = float64(totalUniqueMeds) / t
	if totalRecords > 0 {
		s.AvgDiseasesPerRec = float64(totalDiseaseMentions) / float64(totalRecords)
		s.AvgMedsPerRec = float64(totalMedMentions) / float64(totalRecords)
	}
	return s, nil
}
