package mic

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"runtime"
	"sync"
)

// MICC1 is the compact binary columnar format for monthly MIC datasets. A
// file is one CRC-guarded header (vocabularies and the hospital table,
// interned once), followed by one independently decodable block per month,
// and a footer index that lets a reader fan decoding out across blocks. The
// layout (see DESIGN.md "MICC1 columnar format" for the full specification):
//
//	magic   "MICC1\n"
//	header  uvarint length ‖ payload ‖ crc32c(payload)
//	blocks  flate(columns), one per month, back to back
//	footer  payload ‖ … (block index: month, offset, sizes, records, CRC)
//	trailer footer offset (8B LE) ‖ crc32c(footer) ‖ "MICC1END"
//
// Inside a block the records of the month are stored column-major as
// contiguous homogeneous streams: the hospital column as plain uvarints, the
// patient column as zigzag varints, then for each bag kind the per-record
// lengths, the ids (zigzag-delta within each record's bag), and — for
// diseases — the counts as their own run of uvarints. Record order within a
// month is preserved exactly, so a JSONL → columnar → JSONL round trip
// reproduces Write's bytes.

const (
	columnarMagic   = "MICC1\n"
	columnarTrailer = "MICC1END"
	columnarVersion = 1

	// trailerSize is the fixed byte length of the end-of-file trailer:
	// 8 (footer offset) + 4 (footer CRC) + 8 (trailer magic).
	trailerSize = 8 + 4 + 8

	// maxHeaderLen bounds the header payload a reader will buffer, so a
	// corrupt length varint cannot demand an absurd allocation.
	maxHeaderLen = 1 << 28
	// maxBlockRaw bounds one decompressed month block.
	maxBlockRaw = 1 << 31
	// maxFlateRatio bounds how much a block may claim to expand under
	// decompression. DEFLATE tops out near 1032:1, so a rawLen beyond this
	// multiple of the stored compressed length is provably corrupt — the
	// reader rejects it before allocating anything.
	maxFlateRatio = 1040
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrNotColumnar reports that the input does not start with the MICC1 magic.
var ErrNotColumnar = errors.New("mic: not a MICC1 columnar file")

// blockInfo is one footer index entry: where month Month's block lives and
// how to verify and size its decoding.
type blockInfo struct {
	Month   int
	Offset  int64
	Len     int64 // compressed length on disk
	RawLen  int64 // decompressed column bytes
	Records int
	CRC     uint32 // crc32c of the compressed bytes
}

// --- varint encoding helpers ---

// colEncoder accumulates one block's column bytes.
type colEncoder struct {
	buf []byte
	tmp [binary.MaxVarintLen64]byte
}

func (e *colEncoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.tmp[:], v)
	e.buf = append(e.buf, e.tmp[:n]...)
}

func (e *colEncoder) zigzag(v int64) {
	n := binary.PutVarint(e.tmp[:], v)
	e.buf = append(e.buf, e.tmp[:n]...)
}

func (e *colEncoder) bytes(b []byte) {
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// colDecoder reads varints from a block payload with explicit bounds checks:
// every malformed or truncated sequence surfaces as an error, never a panic.
type colDecoder struct {
	buf []byte
	pos int
}

func (d *colDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated or malformed uvarint at offset %d", d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *colDecoder) zigzag() (int64, error) {
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated or malformed varint at offset %d", d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *colDecoder) string(maxLen int) (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(maxLen) || d.pos+int(n) > len(d.buf) {
		return "", fmt.Errorf("string length %d exceeds remaining payload at offset %d", n, d.pos)
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

func (d *colDecoder) remaining() int { return len(d.buf) - d.pos }

// --- writer ---

// ColumnarWriterOptions tunes the columnar encoder.
type ColumnarWriterOptions struct {
	// Level is the flate compression level for month blocks
	// (flate.BestSpeed … flate.BestCompression). 0 selects
	// flate.DefaultCompression.
	Level int
	// Workers bounds how many month blocks are compressed concurrently while
	// the writer emits them in month order (output bytes are identical for
	// every setting). 0 means GOMAXPROCS; 1 compresses inline.
	Workers int
}

func (o ColumnarWriterOptions) withDefaults() ColumnarWriterOptions {
	if o.Level == 0 {
		o.Level = flate.DefaultCompression
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// ColumnarWriter streams a dataset into the MICC1 format one month at a
// time, so population-scale corpora never have to materialize in memory.
// Months must arrive in index order starting at 0 and exactly Meta.Months of
// them must be written before Close. Block compression is pipelined across
// Workers goroutines; the emitted bytes are identical for any worker count.
type ColumnarWriter struct {
	w      io.Writer
	meta   StreamMeta
	opts   ColumnarWriterOptions
	offset int64
	next   int // next expected month index
	blocks []blockInfo

	// Compression pipeline: WriteMonth encodes the raw columns and queues a
	// promise; pool workers compress; a single drain goroutine dequeues
	// promises in submission order and appends to w.
	queue   chan *blockPromise
	jobs    chan *blockPromise
	drained chan struct{}
	wg      sync.WaitGroup

	mu       sync.Mutex
	writeErr error

	closed bool
}

type blockPromise struct {
	month   int
	records int
	raw     []byte
	rawSize int64
	done    chan struct{}
	comp    []byte
	err     error
}

// NewColumnarWriter writes the magic and header for meta and returns a
// writer ready for WriteMonth. The vocabularies and hospital table are fixed
// up front — exactly like the JSONL header — so every block can encode bare
// integer ids.
func NewColumnarWriter(w io.Writer, meta StreamMeta, opts ColumnarWriterOptions) (*ColumnarWriter, error) {
	if meta.Months < 0 {
		return nil, fmt.Errorf("mic: columnar writer: negative month count %d", meta.Months)
	}
	cw := &ColumnarWriter{w: w, meta: meta, opts: opts.withDefaults()}
	if _, err := io.WriteString(w, columnarMagic); err != nil {
		return nil, fmt.Errorf("mic: writing columnar magic: %w", err)
	}
	cw.offset = int64(len(columnarMagic))

	var enc colEncoder
	enc.uvarint(columnarVersion)
	enc.uvarint(uint64(meta.Months))
	enc.uvarint(uint64(len(meta.Diseases)))
	for _, c := range meta.Diseases {
		enc.bytes([]byte(c))
	}
	enc.uvarint(uint64(len(meta.Medicines)))
	for _, c := range meta.Medicines {
		enc.bytes([]byte(c))
	}
	enc.uvarint(uint64(len(meta.Hospitals)))
	for _, h := range meta.Hospitals {
		enc.bytes([]byte(h.Code))
		enc.bytes([]byte(h.City))
		enc.zigzag(int64(h.Beds))
	}
	var frame colEncoder
	frame.uvarint(uint64(len(enc.buf)))
	frame.buf = append(frame.buf, enc.buf...)
	frame.buf = binary.LittleEndian.AppendUint32(frame.buf, crc32.Checksum(enc.buf, castagnoli))
	if _, err := w.Write(frame.buf); err != nil {
		return nil, fmt.Errorf("mic: writing columnar header: %w", err)
	}
	cw.offset += int64(len(frame.buf))

	// Start the compression pipeline.
	cw.queue = make(chan *blockPromise, cw.opts.Workers*2)
	cw.jobs = make(chan *blockPromise, cw.opts.Workers*2)
	cw.drained = make(chan struct{})
	for i := 0; i < cw.opts.Workers; i++ {
		cw.wg.Add(1)
		go func() {
			defer cw.wg.Done()
			for p := range cw.jobs {
				p.comp, p.err = compressBlock(p.raw, cw.opts.Level)
				p.raw = nil
				close(p.done)
			}
		}()
	}
	go cw.drain()
	return cw, nil
}

// drain appends compressed blocks in submission (month) order and records
// their index entries. It is the only goroutine touching w after the header.
func (cw *ColumnarWriter) drain() {
	defer close(cw.drained)
	for p := range cw.queue {
		<-p.done
		err := p.err
		if err == nil && cw.failed() == nil {
			if _, werr := cw.w.Write(p.comp); werr != nil {
				err = fmt.Errorf("mic: writing month %d block: %w", p.month, werr)
			} else {
				cw.blocks = append(cw.blocks, blockInfo{
					Month:   p.month,
					Offset:  cw.offset,
					Len:     int64(len(p.comp)),
					RawLen:  p.rawSize,
					Records: p.records,
					CRC:     crc32.Checksum(p.comp, castagnoli),
				})
				cw.offset += int64(len(p.comp))
			}
		}
		if err != nil {
			cw.fail(err)
		}
	}
}

func (cw *ColumnarWriter) fail(err error) {
	cw.mu.Lock()
	if cw.writeErr == nil {
		cw.writeErr = err
	}
	cw.mu.Unlock()
}

func (cw *ColumnarWriter) failed() error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.writeErr
}

// WriteMonth encodes and queues one month. m.Month must equal the number of
// months already written. Records are validated against the header
// vocabularies so every emitted file decodes cleanly.
func (cw *ColumnarWriter) WriteMonth(m *Monthly) error {
	if cw.closed {
		return errors.New("mic: columnar writer: WriteMonth after Close")
	}
	if err := cw.failed(); err != nil {
		return err
	}
	if m == nil {
		return errors.New("mic: columnar writer: nil month")
	}
	if m.Month != cw.next {
		return fmt.Errorf("mic: columnar writer: month %d out of order (want %d)", m.Month, cw.next)
	}
	if cw.next >= cw.meta.Months {
		return fmt.Errorf("mic: columnar writer: month %d beyond declared count %d", m.Month, cw.meta.Months)
	}
	raw, err := encodeBlock(m, cw.meta)
	if err != nil {
		return err
	}
	p := &blockPromise{
		month:   m.Month,
		records: len(m.Records),
		raw:     raw,
		rawSize: int64(len(raw)),
		done:    make(chan struct{}),
	}
	cw.next++
	cw.queue <- p
	cw.jobs <- p
	return nil
}

// Close flushes the pipeline, writes the footer index and trailer, and
// returns the first error encountered anywhere in the write.
func (cw *ColumnarWriter) Close() error {
	if cw.closed {
		return nil
	}
	cw.closed = true
	close(cw.jobs)
	close(cw.queue)
	cw.wg.Wait()
	<-cw.drained
	if err := cw.failed(); err != nil {
		return err
	}
	if cw.next != cw.meta.Months {
		return fmt.Errorf("mic: columnar writer: wrote %d of %d declared months", cw.next, cw.meta.Months)
	}
	var enc colEncoder
	enc.uvarint(uint64(len(cw.blocks)))
	for _, b := range cw.blocks {
		enc.uvarint(uint64(b.Month))
		enc.uvarint(uint64(b.Offset))
		enc.uvarint(uint64(b.Len))
		enc.uvarint(uint64(b.RawLen))
		enc.uvarint(uint64(b.Records))
		enc.uvarint(uint64(b.CRC))
	}
	footerOffset := cw.offset
	if _, err := cw.w.Write(enc.buf); err != nil {
		return fmt.Errorf("mic: writing columnar footer: %w", err)
	}
	var trailer [trailerSize]byte
	binary.LittleEndian.PutUint64(trailer[0:8], uint64(footerOffset))
	binary.LittleEndian.PutUint32(trailer[8:12], crc32.Checksum(enc.buf, castagnoli))
	copy(trailer[12:], columnarTrailer)
	if _, err := cw.w.Write(trailer[:]); err != nil {
		return fmt.Errorf("mic: writing columnar trailer: %w", err)
	}
	return nil
}

// encodeBlock lays the month's records out column-major and returns the raw
// (uncompressed) block payload. Each column is one contiguous homogeneous
// stream — bag ids never interleave with counts or lengths — so flate's LZ
// stage can match recurring bags across records and its Huffman stage sees
// a single byte distribution per stream.
func encodeBlock(m *Monthly, meta StreamMeta) ([]byte, error) {
	var enc colEncoder
	// Size hint: ~12 bytes per record for typical bags.
	enc.buf = make([]byte, 0, 16+12*len(m.Records))
	enc.uvarint(uint64(len(m.Records)))
	// Hospital column: plain uvarints (visits hop between hospitals, so
	// deltas would only widen the values).
	for i := range m.Records {
		r := &m.Records[i]
		h := int64(r.Hospital)
		if h < 0 || int(h) >= len(meta.Hospitals) {
			return nil, fmt.Errorf("mic: month %d record %d: hospital %d out of range", m.Month, i, h)
		}
		enc.uvarint(uint64(h))
	}
	// Patient column: zigzag varints (patient may be -1 for unknown).
	for i := range m.Records {
		enc.zigzag(int64(m.Records[i].Patient))
	}
	// Disease bag lengths.
	for i := range m.Records {
		enc.uvarint(uint64(len(m.Records[i].Diseases)))
	}
	// Disease id stream: ids delta-coded within each record's bag (bags are
	// typically ascending).
	for i := range m.Records {
		prev := int64(0)
		for _, dc := range m.Records[i].Diseases {
			id := int64(dc.Disease)
			if id < 0 || int(id) >= len(meta.Diseases) {
				return nil, fmt.Errorf("mic: month %d record %d: disease %d out of range", m.Month, i, id)
			}
			enc.zigzag(id - prev)
			prev = id
		}
	}
	// Disease count stream (separate from the ids: counts are almost all 1-2,
	// so on their own they collapse to runs).
	for i := range m.Records {
		for _, dc := range m.Records[i].Diseases {
			if dc.Count <= 0 {
				return nil, fmt.Errorf("mic: month %d record %d: non-positive disease count %d", m.Month, i, dc.Count)
			}
			enc.uvarint(uint64(dc.Count))
		}
	}
	// Medicine bag lengths.
	for i := range m.Records {
		enc.uvarint(uint64(len(m.Records[i].Medicines)))
	}
	// Medicine id stream.
	for i := range m.Records {
		prev := int64(0)
		for _, med := range m.Records[i].Medicines {
			id := int64(med)
			if id < 0 || int(id) >= len(meta.Medicines) {
				return nil, fmt.Errorf("mic: month %d record %d: medicine %d out of range", m.Month, i, id)
			}
			enc.zigzag(id - prev)
			prev = id
		}
	}
	return enc.buf, nil
}

// compressBlock flate-compresses one raw block payload.
func compressBlock(raw []byte, level int) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(len(raw)/3 + 64)
	fw, err := flate.NewWriter(&buf, level)
	if err != nil {
		return nil, fmt.Errorf("mic: flate writer: %w", err)
	}
	if _, err := fw.Write(raw); err != nil {
		return nil, fmt.Errorf("mic: compressing block: %w", err)
	}
	if err := fw.Close(); err != nil {
		return nil, fmt.Errorf("mic: compressing block: %w", err)
	}
	return buf.Bytes(), nil
}

// --- reader ---

// ColumnarFile is an open MICC1 file handle: the decoded header plus the
// block index, with months decoded on demand. ReadMonth is safe for
// concurrent use, which is what ReadColumnar's parallel fan-out relies on.
type ColumnarFile struct {
	r      io.ReaderAt
	closer io.Closer
	meta   StreamMeta
	blocks []blockInfo // indexed by month
}

// OpenColumnarFile opens path and decodes its header and footer index.
func OpenColumnarFile(path string) (*ColumnarFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	cf, err := OpenColumnar(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	cf.closer = f
	return cf, nil
}

// OpenColumnar decodes the header and footer index of a MICC1 image of the
// given size. The ReaderAt must serve concurrent reads (os.File and
// bytes.Reader both do).
func OpenColumnar(r io.ReaderAt, size int64) (*ColumnarFile, error) {
	// Magic.
	magic := make([]byte, len(columnarMagic))
	if _, err := io.ReadFull(io.NewSectionReader(r, 0, int64(len(magic))), magic); err != nil {
		return nil, ErrNotColumnar
	}
	if string(magic) != columnarMagic {
		return nil, ErrNotColumnar
	}
	if size < int64(len(columnarMagic))+trailerSize {
		return nil, errors.New("mic: columnar file truncated before trailer")
	}
	// Trailer.
	var trailer [trailerSize]byte
	if _, err := r.ReadAt(trailer[:], size-trailerSize); err != nil {
		return nil, fmt.Errorf("mic: reading columnar trailer: %w", err)
	}
	if string(trailer[12:]) != columnarTrailer {
		return nil, errors.New("mic: columnar trailer magic missing (truncated or torn file)")
	}
	footerOffset := int64(binary.LittleEndian.Uint64(trailer[0:8]))
	footerCRC := binary.LittleEndian.Uint32(trailer[8:12])
	footerEnd := size - trailerSize
	if footerOffset < int64(len(columnarMagic)) || footerOffset > footerEnd {
		return nil, fmt.Errorf("mic: columnar footer offset %d out of range", footerOffset)
	}
	footer := make([]byte, footerEnd-footerOffset)
	if _, err := r.ReadAt(footer, footerOffset); err != nil {
		return nil, fmt.Errorf("mic: reading columnar footer: %w", err)
	}
	if crc32.Checksum(footer, castagnoli) != footerCRC {
		return nil, errors.New("mic: columnar footer CRC mismatch")
	}

	// Header.
	meta, headerEnd, err := readColumnarHeader(r, size)
	if err != nil {
		return nil, err
	}

	// Footer index.
	dec := &colDecoder{buf: footer}
	n, err := dec.uvarint()
	if err != nil {
		return nil, fmt.Errorf("mic: columnar footer: %w", err)
	}
	if n != uint64(meta.Months) {
		return nil, fmt.Errorf("mic: columnar footer lists %d blocks for %d months", n, meta.Months)
	}
	blocks := make([]blockInfo, meta.Months)
	seen := make([]bool, meta.Months)
	for i := 0; i < int(n); i++ {
		var b blockInfo
		var v [6]uint64
		for j := range v {
			if v[j], err = dec.uvarint(); err != nil {
				return nil, fmt.Errorf("mic: columnar footer entry %d: %w", i, err)
			}
		}
		b.Month = int(v[0])
		b.Offset = int64(v[1])
		b.Len = int64(v[2])
		b.RawLen = int64(v[3])
		b.Records = int(v[4])
		if v[5] > math.MaxUint32 {
			return nil, fmt.Errorf("mic: columnar footer entry %d: CRC out of range", i)
		}
		b.CRC = uint32(v[5])
		if b.Month < 0 || b.Month >= meta.Months || seen[b.Month] {
			return nil, fmt.Errorf("mic: columnar footer entry %d: bad or duplicate month %d", i, b.Month)
		}
		if b.Offset < headerEnd || b.Len < 0 || b.Offset+b.Len > footerOffset {
			return nil, fmt.Errorf("mic: columnar footer entry %d: block [%d,+%d) outside data region", i, b.Offset, b.Len)
		}
		if b.RawLen < 0 || b.RawLen > maxBlockRaw || b.RawLen > maxFlateRatio*(b.Len+64) {
			return nil, fmt.Errorf("mic: columnar footer entry %d: implausible raw length %d for %d compressed bytes", i, b.RawLen, b.Len)
		}
		// Every record occupies at least 4 bytes across its four columns
		// (hospital, patient, and the two bag lengths), so a record count
		// beyond rawLen/4 is provably corrupt — reject it before the decoder
		// allocates the record slice.
		if b.Records < 0 || int64(b.Records) > b.RawLen/4+1 {
			return nil, fmt.Errorf("mic: columnar footer entry %d: implausible record count %d for %d raw bytes", i, b.Records, b.RawLen)
		}
		seen[b.Month] = true
		blocks[b.Month] = b
	}
	return &ColumnarFile{r: r, meta: meta, blocks: blocks}, nil
}

// readColumnarHeader decodes the CRC-guarded header section and returns the
// stream metadata plus the file offset where blocks begin.
func readColumnarHeader(r io.ReaderAt, size int64) (StreamMeta, int64, error) {
	var meta StreamMeta
	pos := int64(len(columnarMagic))
	var lenBuf [binary.MaxVarintLen64]byte
	n, _ := r.ReadAt(lenBuf[:], pos)
	hlen, ln := binary.Uvarint(lenBuf[:n])
	if ln <= 0 {
		return meta, 0, errors.New("mic: columnar header: malformed length")
	}
	if hlen > maxHeaderLen || pos+int64(ln)+int64(hlen)+4 > size {
		return meta, 0, fmt.Errorf("mic: columnar header: implausible length %d", hlen)
	}
	pos += int64(ln)
	payload := make([]byte, hlen)
	if _, err := r.ReadAt(payload, pos); err != nil {
		return meta, 0, fmt.Errorf("mic: reading columnar header: %w", err)
	}
	pos += int64(hlen)
	var crcBuf [4]byte
	if _, err := r.ReadAt(crcBuf[:], pos); err != nil {
		return meta, 0, fmt.Errorf("mic: reading columnar header CRC: %w", err)
	}
	pos += 4
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(crcBuf[:]) {
		return meta, 0, errors.New("mic: columnar header CRC mismatch")
	}

	dec := &colDecoder{buf: payload}
	version, err := dec.uvarint()
	if err != nil {
		return meta, 0, fmt.Errorf("mic: columnar header: %w", err)
	}
	if version != columnarVersion {
		return meta, 0, fmt.Errorf("mic: unsupported columnar version %d", version)
	}
	months, err := dec.uvarint()
	if err != nil {
		return meta, 0, fmt.Errorf("mic: columnar header: %w", err)
	}
	if months > uint64(maxHeaderLen) {
		return meta, 0, fmt.Errorf("mic: columnar header: implausible month count %d", months)
	}
	meta.Months = int(months)
	if meta.Diseases, err = readStringList(dec, "disease"); err != nil {
		return meta, 0, err
	}
	if meta.Medicines, err = readStringList(dec, "medicine"); err != nil {
		return meta, 0, err
	}
	nh, err := dec.uvarint()
	if err != nil {
		return meta, 0, fmt.Errorf("mic: columnar header: %w", err)
	}
	if nh > uint64(dec.remaining()) {
		return meta, 0, fmt.Errorf("mic: columnar header: hospital count %d exceeds payload", nh)
	}
	meta.Hospitals = make([]Hospital, 0, nh)
	for i := 0; i < int(nh); i++ {
		var h Hospital
		if h.Code, err = dec.string(dec.remaining()); err != nil {
			return meta, 0, fmt.Errorf("mic: columnar header hospital %d: %w", i, err)
		}
		if h.City, err = dec.string(dec.remaining()); err != nil {
			return meta, 0, fmt.Errorf("mic: columnar header hospital %d: %w", i, err)
		}
		beds, err := dec.zigzag()
		if err != nil {
			return meta, 0, fmt.Errorf("mic: columnar header hospital %d: %w", i, err)
		}
		if beds < 0 || beds > math.MaxInt32 {
			return meta, 0, fmt.Errorf("mic: columnar header hospital %d: bed count %d out of range", i, beds)
		}
		h.Beds = int(beds)
		meta.Hospitals = append(meta.Hospitals, h)
	}
	if dec.remaining() != 0 {
		return meta, 0, fmt.Errorf("mic: columnar header: %d trailing bytes", dec.remaining())
	}
	return meta, pos, nil
}

func readStringList(dec *colDecoder, what string) ([]string, error) {
	n, err := dec.uvarint()
	if err != nil {
		return nil, fmt.Errorf("mic: columnar header: %w", err)
	}
	if n > uint64(dec.remaining()) {
		return nil, fmt.Errorf("mic: columnar header: %s count %d exceeds payload", what, n)
	}
	out := make([]string, 0, n)
	for i := 0; i < int(n); i++ {
		s, err := dec.string(dec.remaining())
		if err != nil {
			return nil, fmt.Errorf("mic: columnar header %s %d: %w", what, i, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// Meta returns the file's stream metadata (vocabulary codes in id order and
// the hospital table).
func (cf *ColumnarFile) Meta() StreamMeta { return cf.meta }

// Months returns the number of month blocks.
func (cf *ColumnarFile) Months() int { return len(cf.blocks) }

// MonthRecords returns month t's record count straight from the index,
// without decoding the block.
func (cf *ColumnarFile) MonthRecords(t int) int { return cf.blocks[t].Records }

// Close releases the underlying file when the handle owns one.
func (cf *ColumnarFile) Close() error {
	if cf.closer != nil {
		return cf.closer.Close()
	}
	return nil
}

// ReadMonth decodes month t's block: CRC check, bounded decompression, then
// column decoding with every id validated against the header vocabularies.
// Safe for concurrent use.
func (cf *ColumnarFile) ReadMonth(t int) (*Monthly, error) {
	if t < 0 || t >= len(cf.blocks) {
		return nil, fmt.Errorf("mic: month %d out of range [0,%d)", t, len(cf.blocks))
	}
	b := cf.blocks[t]
	comp := make([]byte, b.Len)
	if _, err := cf.r.ReadAt(comp, b.Offset); err != nil {
		return nil, fmt.Errorf("mic: reading month %d block: %w", t, err)
	}
	if crc32.Checksum(comp, castagnoli) != b.CRC {
		return nil, fmt.Errorf("mic: month %d block CRC mismatch", t)
	}
	raw := make([]byte, 0, b.RawLen)
	fr := flate.NewReader(bytes.NewReader(comp))
	// Read at most RawLen+1 bytes: a stream longer than the index claims is
	// corrupt, and the limit keeps a lying block from allocating beyond the
	// indexed (and plausibility-checked) size.
	lim := io.LimitReader(fr, b.RawLen+1)
	buf := bytes.NewBuffer(raw)
	if _, err := buf.ReadFrom(lim); err != nil {
		return nil, fmt.Errorf("mic: decompressing month %d block: %w", t, err)
	}
	if err := fr.Close(); err != nil {
		return nil, fmt.Errorf("mic: decompressing month %d block: %w", t, err)
	}
	raw = buf.Bytes()
	if int64(len(raw)) != b.RawLen {
		return nil, fmt.Errorf("mic: month %d block decompressed to %d bytes, index says %d", t, len(raw), b.RawLen)
	}
	return decodeBlock(raw, t, b.Records, cf.meta)
}

// decodeBlock decodes one raw block payload into a Monthly.
func decodeBlock(raw []byte, month, records int, meta StreamMeta) (*Monthly, error) {
	dec := &colDecoder{buf: raw}
	n, err := dec.uvarint()
	if err != nil {
		return nil, fmt.Errorf("mic: month %d block: %w", month, err)
	}
	if n != uint64(records) {
		return nil, fmt.Errorf("mic: month %d block holds %d records, index says %d", month, n, records)
	}
	m := &Monthly{Month: month}
	if records == 0 {
		if dec.remaining() != 0 {
			return nil, fmt.Errorf("mic: month %d block: %d trailing bytes", month, dec.remaining())
		}
		return m, nil
	}
	m.Records = make([]Record, records)
	// Hospital column (plain uvarints).
	for i := range m.Records {
		h, err := dec.uvarint()
		if err != nil {
			return nil, fmt.Errorf("mic: month %d hospital column: %w", month, err)
		}
		if h >= uint64(len(meta.Hospitals)) {
			return nil, fmt.Errorf("mic: month %d record %d: hospital %d out of range", month, i, h)
		}
		m.Records[i].Hospital = HospitalID(h)
	}
	// Patient column (zigzag varints).
	for i := range m.Records {
		p, err := dec.zigzag()
		if err != nil {
			return nil, fmt.Errorf("mic: month %d patient column: %w", month, err)
		}
		if p < math.MinInt32 || p > math.MaxInt32 {
			return nil, fmt.Errorf("mic: month %d record %d: patient %d out of range", month, i, p)
		}
		m.Records[i].Patient = int32(p)
	}
	// Disease bag lengths; the sum bounds the entry allocation by bytes
	// actually present in the block (each entry is ≥2 bytes: one in the id
	// stream, one in the count stream).
	dLens := make([]uint64, records)
	var dTotal uint64
	for i := range dLens {
		if dLens[i], err = dec.uvarint(); err != nil {
			return nil, fmt.Errorf("mic: month %d disease lengths: %w", month, err)
		}
		if dLens[i] > uint64(dec.remaining()) {
			return nil, fmt.Errorf("mic: month %d record %d: disease bag length %d exceeds block", month, i, dLens[i])
		}
		dTotal += dLens[i]
	}
	if 2*dTotal > uint64(dec.remaining()) {
		return nil, fmt.Errorf("mic: month %d: %d disease entries exceed remaining block", month, dTotal)
	}
	dEntries := make([]DiseaseCount, dTotal)
	pos := 0
	prev := int64(0)
	for i := range m.Records {
		ln := int(dLens[i])
		bag := dEntries[pos : pos+ln : pos+ln]
		pos += ln
		prev = 0
		for j := 0; j < ln; j++ {
			d, err := dec.zigzag()
			if err != nil {
				return nil, fmt.Errorf("mic: month %d disease ids: %w", month, err)
			}
			prev += d
			if prev < 0 || int(prev) >= len(meta.Diseases) {
				return nil, fmt.Errorf("mic: month %d record %d: disease %d out of range", month, i, prev)
			}
			bag[j].Disease = DiseaseID(prev)
		}
		if ln > 0 {
			m.Records[i].Diseases = bag
		}
	}
	// Disease count stream.
	for i := range dEntries {
		c, err := dec.uvarint()
		if err != nil {
			return nil, fmt.Errorf("mic: month %d disease counts: %w", month, err)
		}
		if c == 0 || c > math.MaxInt32 {
			return nil, fmt.Errorf("mic: month %d: disease count %d out of range", month, c)
		}
		dEntries[i].Count = int(c)
	}
	// Medicine bag lengths and entries.
	mLens := make([]uint64, records)
	var mTotal uint64
	for i := range mLens {
		if mLens[i], err = dec.uvarint(); err != nil {
			return nil, fmt.Errorf("mic: month %d medicine lengths: %w", month, err)
		}
		if mLens[i] > uint64(dec.remaining()) {
			return nil, fmt.Errorf("mic: month %d record %d: medicine bag length %d exceeds block", month, i, mLens[i])
		}
		mTotal += mLens[i]
	}
	if mTotal > uint64(dec.remaining()) {
		return nil, fmt.Errorf("mic: month %d: %d medicine entries exceed remaining block", month, mTotal)
	}
	mEntries := make([]MedicineID, mTotal)
	pos = 0
	for i := range m.Records {
		ln := int(mLens[i])
		bag := mEntries[pos : pos+ln : pos+ln]
		pos += ln
		prev = 0
		for j := 0; j < ln; j++ {
			d, err := dec.zigzag()
			if err != nil {
				return nil, fmt.Errorf("mic: month %d medicine entries: %w", month, err)
			}
			prev += d
			if prev < 0 || int(prev) >= len(meta.Medicines) {
				return nil, fmt.Errorf("mic: month %d record %d: medicine %d out of range", month, i, prev)
			}
			bag[j] = MedicineID(prev)
		}
		if ln > 0 {
			m.Records[i].Medicines = bag
		}
	}
	if dec.remaining() != 0 {
		return nil, fmt.Errorf("mic: month %d block: %d trailing bytes", month, dec.remaining())
	}
	return m, nil
}

// ColumnarReadOptions tunes the whole-dataset columnar read.
type ColumnarReadOptions struct {
	// Workers bounds the parallel block decode fan-out (0 = GOMAXPROCS).
	// The decoded dataset is identical for every setting: each block fills
	// its own month slot.
	Workers int
}

// ReadColumnar decodes a whole MICC1 image into a Dataset, fanning block
// decoding out across a bounded worker pool.
func ReadColumnar(r io.ReaderAt, size int64, opts ColumnarReadOptions) (*Dataset, error) {
	cf, err := OpenColumnar(r, size)
	if err != nil {
		return nil, err
	}
	return cf.ReadAll(opts)
}

// ReadColumnarFile decodes the MICC1 file at path with parallel block
// decoding.
func ReadColumnarFile(path string, opts ColumnarReadOptions) (*Dataset, error) {
	cf, err := OpenColumnarFile(path)
	if err != nil {
		return nil, err
	}
	defer cf.Close()
	return cf.ReadAll(opts)
}

// ReadAll decodes every month block into a Dataset. Blocks decode
// concurrently on Workers goroutines; each fills its own month slot, so the
// result is identical for any worker count.
func (cf *ColumnarFile) ReadAll(opts ColumnarReadOptions) (*Dataset, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cf.blocks) {
		workers = len(cf.blocks)
	}
	d, err := cf.meta.newDataset()
	if err != nil {
		return nil, err
	}
	if len(cf.blocks) == 0 {
		return d, nil
	}
	var (
		wg       sync.WaitGroup
		next     int64
		mu       sync.Mutex
		firstErr error
	)
	nextMonth := func() int {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= int64(len(cf.blocks)) {
			return -1
		}
		t := int(next)
		next++
		return t
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := nextMonth()
				if t < 0 {
					return
				}
				m, err := cf.ReadMonth(t)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				d.Months[t] = m
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return d, nil
}

// newDataset builds an empty Dataset skeleton (vocabularies interned,
// hospital table set, one empty Monthly per month) from stream metadata.
func (m StreamMeta) newDataset() (*Dataset, error) {
	d := NewDataset()
	for _, code := range m.Diseases {
		d.Diseases.Intern(code)
	}
	if d.Diseases.Len() != len(m.Diseases) {
		return nil, errors.New("mic: duplicate disease codes in columnar header")
	}
	for _, code := range m.Medicines {
		d.Medicines.Intern(code)
	}
	if d.Medicines.Len() != len(m.Medicines) {
		return nil, errors.New("mic: duplicate medicine codes in columnar header")
	}
	d.Hospitals = append([]Hospital(nil), m.Hospitals...)
	d.Months = make([]*Monthly, m.Months)
	for t := range d.Months {
		d.Months[t] = &Monthly{Month: t}
	}
	return d, nil
}

// WriteColumnar serializes an in-memory dataset as MICC1.
func WriteColumnar(w io.Writer, d *Dataset, opts ColumnarWriterOptions) error {
	cw, err := NewColumnarWriter(w, NewStreamMeta(d), opts)
	if err != nil {
		return err
	}
	for _, m := range d.Months {
		if err := cw.WriteMonth(m); err != nil {
			cw.Close()
			return err
		}
	}
	return cw.Close()
}

// WriteColumnarFile writes the dataset to path as MICC1.
func WriteColumnarFile(path string, d *Dataset, opts ColumnarWriterOptions) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return WriteColumnar(f, d, opts)
}
