package mic

import (
	"bytes"
	"testing"
)

// FuzzReadColumnar ensures the MICC1 reader never panics or over-allocates
// on malformed input: truncated blocks, corrupt CRCs, and garbage varints
// must all surface as errors. Run with `go test -fuzz=FuzzReadColumnar`;
// under plain `go test` the seed corpus below is executed.
func FuzzReadColumnar(f *testing.F) {
	// Valid file seeds: a tiny dataset and a larger multi-month one.
	small := NewDataset()
	dis := DiseaseID(small.Diseases.Intern("flu"))
	med := MedicineID(small.Medicines.Intern("drug"))
	h := small.AddHospital(Hospital{Code: "H", City: "c", Beds: 3})
	small.Months = []*Monthly{{Month: 0, Records: []Record{{
		Hospital: h, Diseases: []DiseaseCount{{dis, 1}}, Medicines: []MedicineID{med},
	}}}}
	for _, d := range []*Dataset{small, randomDataset(11, 4, 20)} {
		var buf bytes.Buffer
		if err := WriteColumnar(&buf, d, ColumnarWriterOptions{}); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// Seed structured corruptions so the fuzzer starts near the
		// interesting surfaces: clipped trailer, flipped footer byte,
		// flipped block byte, flipped header byte.
		b := buf.Bytes()
		f.Add(b[:len(b)-trailerSize/2])
		for _, pos := range []int{len(b) - trailerSize - 1, len(b) / 2, len(columnarMagic) + 2} {
			if pos >= 0 && pos < len(b) {
				mut := append([]byte(nil), b...)
				mut[pos] ^= 0xff
				f.Add(mut)
			}
		}
	}
	f.Add([]byte(""))
	f.Add([]byte(columnarMagic))
	f.Add([]byte(columnarMagic + "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte(columnarTrailer))

	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := ReadColumnar(bytes.NewReader(data), int64(len(data)), ColumnarReadOptions{Workers: 1})
		if err != nil {
			return // rejection is fine; panics and OOM are not
		}
		// Anything accepted must validate and round-trip.
		if err := ds.Validate(); err != nil {
			t.Fatalf("accepted dataset fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := WriteColumnar(&out, ds, ColumnarWriterOptions{Workers: 1}); err != nil {
			t.Fatalf("accepted dataset fails to serialize: %v", err)
		}
		if _, err := ReadColumnar(bytes.NewReader(out.Bytes()), int64(out.Len()), ColumnarReadOptions{Workers: 1}); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
