package mic

import "testing"

func TestClassifyBeds(t *testing.T) {
	cases := []struct {
		beds int
		want HospitalClass
	}{
		{0, SmallHospital},
		{19, SmallHospital},
		{20, MediumHospital},
		{399, MediumHospital},
		{400, LargeHospital},
		{1200, LargeHospital},
	}
	for _, c := range cases {
		if got := ClassifyBeds(c.beds); got != c.want {
			t.Errorf("ClassifyBeds(%d) = %v, want %v", c.beds, got, c.want)
		}
	}
}

func TestHospitalClassString(t *testing.T) {
	if SmallHospital.String() != "small" || MediumHospital.String() != "medium" || LargeHospital.String() != "large" {
		t.Fatal("class names wrong")
	}
	if HospitalClass(9).String() != "HospitalClass(9)" {
		t.Fatal("unknown class formatting wrong")
	}
}

func TestRecordCounts(t *testing.T) {
	r := Record{
		Diseases:  []DiseaseCount{{Disease: 1, Count: 3}, {Disease: 2, Count: 1}},
		Medicines: []MedicineID{10, 11, 10},
	}
	if got := r.NumDiseaseMentions(); got != 4 {
		t.Fatalf("NumDiseaseMentions = %d, want 4", got)
	}
	if got := r.NumMedicines(); got != 3 {
		t.Fatalf("NumMedicines = %d, want 3", got)
	}
	if !r.HasDisease(1) || r.HasDisease(3) {
		t.Fatal("HasDisease wrong")
	}
}

func TestRecordCloneIsDeep(t *testing.T) {
	r := Record{
		Diseases:  []DiseaseCount{{Disease: 1, Count: 1}},
		Medicines: []MedicineID{5},
	}
	c := r.Clone()
	c.Diseases[0].Count = 99
	c.Medicines[0] = 77
	if r.Diseases[0].Count != 1 || r.Medicines[0] != 5 {
		t.Fatal("Clone shares storage")
	}
}

func TestMonthlyFrequencies(t *testing.T) {
	m := Monthly{Records: []Record{
		{Diseases: []DiseaseCount{{1, 2}, {2, 1}}, Medicines: []MedicineID{10, 10}},
		{Diseases: []DiseaseCount{{1, 1}}, Medicines: []MedicineID{11}},
	}}
	df := m.DiseaseFrequencies()
	if df[1] != 3 || df[2] != 1 {
		t.Fatalf("disease freq = %v", df)
	}
	mf := m.MedicineFrequencies()
	if mf[10] != 2 || mf[11] != 1 {
		t.Fatalf("medicine freq = %v", mf)
	}
	if m.NumRecords() != 2 {
		t.Fatalf("NumRecords = %d", m.NumRecords())
	}
}

func TestVocabInternLookup(t *testing.T) {
	v := NewVocab()
	a := v.Intern("flu")
	b := v.Intern("cold")
	if a == b {
		t.Fatal("distinct codes shared an id")
	}
	if again := v.Intern("flu"); again != a {
		t.Fatal("re-interning changed the id")
	}
	if id, ok := v.Lookup("cold"); !ok || id != b {
		t.Fatal("Lookup failed")
	}
	if _, ok := v.Lookup("unknown"); ok {
		t.Fatal("Lookup invented a code")
	}
	if v.Code(a) != "flu" {
		t.Fatal("Code round trip failed")
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d", v.Len())
	}
	codes := v.Codes()
	if len(codes) != 2 || codes[0] != "flu" || codes[1] != "cold" {
		t.Fatalf("Codes = %v", codes)
	}
}

func TestVocabCodePanicsOutOfRange(t *testing.T) {
	v := NewVocab()
	defer func() {
		if recover() == nil {
			t.Fatal("Code out of range did not panic")
		}
	}()
	v.Code(0)
}

func TestDatasetValidate(t *testing.T) {
	d := NewDataset()
	dis := DiseaseID(d.Diseases.Intern("flu"))
	med := MedicineID(d.Medicines.Intern("oseltamivir"))
	h := d.AddHospital(Hospital{Code: "H1", City: "tsu", Beds: 10})
	d.Months = []*Monthly{{Month: 0, Records: []Record{{
		Hospital:  h,
		Diseases:  []DiseaseCount{{dis, 1}},
		Medicines: []MedicineID{med},
	}}}}
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}

	// Out-of-range disease.
	bad := *d
	bad.Months = []*Monthly{{Month: 0, Records: []Record{{Hospital: h, Diseases: []DiseaseCount{{99, 1}}}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range disease accepted")
	}

	// Wrong month index.
	bad2 := *d
	bad2.Months = []*Monthly{{Month: 5}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("wrong month index accepted")
	}

	// Non-positive disease count.
	bad3 := *d
	bad3.Months = []*Monthly{{Month: 0, Records: []Record{{Hospital: h, Diseases: []DiseaseCount{{dis, 0}}}}}}
	if err := bad3.Validate(); err == nil {
		t.Fatal("zero disease count accepted")
	}

	// Unknown hospital.
	bad4 := *d
	bad4.Months = []*Monthly{{Month: 0, Records: []Record{{Hospital: 9, Diseases: []DiseaseCount{{dis, 1}}}}}}
	if err := bad4.Validate(); err == nil {
		t.Fatal("unknown hospital accepted")
	}
}

func TestSummarize(t *testing.T) {
	d := NewDataset()
	dis1 := DiseaseID(d.Diseases.Intern("d1"))
	dis2 := DiseaseID(d.Diseases.Intern("d2"))
	med1 := MedicineID(d.Medicines.Intern("m1"))
	h := d.AddHospital(Hospital{Code: "H1"})
	d.Months = []*Monthly{
		{Month: 0, Records: []Record{
			{Hospital: h, Diseases: []DiseaseCount{{dis1, 2}, {dis2, 1}}, Medicines: []MedicineID{med1, med1}},
			{Hospital: h, Diseases: []DiseaseCount{{dis1, 1}}, Medicines: []MedicineID{med1}},
		}},
		{Month: 1, Records: []Record{
			{Hospital: h, Diseases: []DiseaseCount{{dis2, 1}}, Medicines: []MedicineID{med1}},
		}},
	}
	s, err := d.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Months != 2 || s.Hospitals != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.AvgRecordsPerMonth != 1.5 {
		t.Fatalf("AvgRecordsPerMonth = %v", s.AvgRecordsPerMonth)
	}
	// Month 0 has 2 unique diseases, month 1 has 1 → avg 1.5.
	if s.AvgDiseasesPerMonth != 1.5 {
		t.Fatalf("AvgDiseasesPerMonth = %v", s.AvgDiseasesPerMonth)
	}
	// Disease mentions: (3+1)+(1) = 5 over 3 records.
	if s.AvgDiseasesPerRec != 5.0/3.0 {
		t.Fatalf("AvgDiseasesPerRec = %v", s.AvgDiseasesPerRec)
	}
	if s.AvgMedsPerRec != 4.0/3.0 {
		t.Fatalf("AvgMedsPerRec = %v", s.AvgMedsPerRec)
	}

	empty := NewDataset()
	if _, err := empty.Summarize(); err == nil {
		t.Fatal("empty dataset summarized")
	}
}
