package mic

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// Property: after FilterMonthly, no surviving record references a code whose
// original within-month frequency was below the threshold, and every
// surviving record still has both bags non-empty.
func TestFilterMonthlyProperty(t *testing.T) {
	f := func(seed uint64, thresholdRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		threshold := 1 + int(thresholdRaw%8)
		m := &Monthly{Month: 0}
		for i := 0; i < 30; i++ {
			r := Record{}
			for j := 0; j < 1+rng.IntN(3); j++ {
				r.Diseases = append(r.Diseases, DiseaseCount{
					Disease: DiseaseID(rng.IntN(6)), Count: 1 + rng.IntN(2),
				})
			}
			for j := 0; j < 1+rng.IntN(4); j++ {
				r.Medicines = append(r.Medicines, MedicineID(rng.IntN(7)))
			}
			m.Records = append(m.Records, r)
		}
		origDisease := m.DiseaseFrequencies()
		origMed := m.MedicineFrequencies()
		out := FilterMonthly(m, FilterOptions{MinMonthlyFreq: threshold})
		for i := range out.Records {
			r := &out.Records[i]
			if len(r.Diseases) == 0 || len(r.Medicines) == 0 {
				return false
			}
			for _, dc := range r.Diseases {
				if origDisease[dc.Disease] < threshold {
					return false
				}
			}
			for _, med := range r.Medicines {
				if origMed[med] < threshold {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: codec round trip preserves any randomly built dataset exactly.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 18))
		d := NewDataset()
		for i := 0; i < 4; i++ {
			d.Diseases.Intern(string(rune('a' + i)))
			d.Medicines.Intern(string(rune('A' + i)))
		}
		h := d.AddHospital(Hospital{Code: "H", City: "c", Beds: 10})
		months := 1 + int(seed%4)
		for t := 0; t < months; t++ {
			m := &Monthly{Month: t}
			for i := 0; i < rng.IntN(10); i++ {
				m.Records = append(m.Records, Record{
					Hospital:  h,
					Patient:   int32(rng.IntN(100)),
					Diseases:  []DiseaseCount{{Disease: DiseaseID(rng.IntN(4)), Count: 1 + rng.IntN(3)}},
					Medicines: []MedicineID{MedicineID(rng.IntN(4))},
				})
			}
			d.Months = append(d.Months, m)
		}
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		if back.T() != d.T() || back.NumRecords() != d.NumRecords() {
			return false
		}
		for t := range d.Months {
			for i := range d.Months[t].Records {
				a, b := &d.Months[t].Records[i], &back.Months[t].Records[i]
				if a.Patient != b.Patient || len(a.Diseases) != len(b.Diseases) || len(a.Medicines) != len(b.Medicines) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
