package mic

import (
	"testing"
	"testing/quick"
)

// buildTestDataset constructs a small 2-month dataset with two cities and
// three hospital classes.
func buildTestDataset(t *testing.T) *Dataset {
	t.Helper()
	d := NewDataset()
	dis := DiseaseID(d.Diseases.Intern("flu"))
	med := MedicineID(d.Medicines.Intern("drug"))
	hSmallTsu := d.AddHospital(Hospital{Code: "S", City: "tsu", Beds: 5})
	hMedIse := d.AddHospital(Hospital{Code: "M", City: "ise", Beds: 100})
	hLargeTsu := d.AddHospital(Hospital{Code: "L", City: "tsu", Beds: 600})
	rec := func(h HospitalID) Record {
		return Record{Hospital: h, Diseases: []DiseaseCount{{dis, 1}}, Medicines: []MedicineID{med}}
	}
	d.Months = []*Monthly{
		{Month: 0, Records: []Record{rec(hSmallTsu), rec(hMedIse), rec(hLargeTsu)}},
		{Month: 1, Records: []Record{rec(hSmallTsu), rec(hSmallTsu)}},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSplitByCity(t *testing.T) {
	d := buildTestDataset(t)
	byCity := SplitByCity(d)
	if len(byCity) != 2 {
		t.Fatalf("cities = %d, want 2", len(byCity))
	}
	tsu := byCity["tsu"]
	if tsu.T() != 2 {
		t.Fatalf("tsu months = %d", tsu.T())
	}
	if len(tsu.Months[0].Records) != 2 || len(tsu.Months[1].Records) != 2 {
		t.Fatalf("tsu records per month = %d/%d", len(tsu.Months[0].Records), len(tsu.Months[1].Records))
	}
	ise := byCity["ise"]
	if len(ise.Months[0].Records) != 1 || len(ise.Months[1].Records) != 0 {
		t.Fatalf("ise records per month = %d/%d", len(ise.Months[0].Records), len(ise.Months[1].Records))
	}
	// Total records conserved.
	if tsu.NumRecords()+ise.NumRecords() != d.NumRecords() {
		t.Fatal("records lost in split")
	}
}

func TestSplitByHospitalClass(t *testing.T) {
	d := buildTestDataset(t)
	byClass := SplitByHospitalClass(d)
	if len(byClass) != 3 {
		t.Fatalf("classes = %d", len(byClass))
	}
	if byClass[SmallHospital].NumRecords() != 3 {
		t.Fatalf("small = %d, want 3", byClass[SmallHospital].NumRecords())
	}
	if byClass[MediumHospital].NumRecords() != 1 {
		t.Fatalf("medium = %d, want 1", byClass[MediumHospital].NumRecords())
	}
	if byClass[LargeHospital].NumRecords() != 1 {
		t.Fatalf("large = %d, want 1", byClass[LargeHospital].NumRecords())
	}
	// Every class dataset still spans all months.
	for _, ds := range byClass {
		if ds.T() != d.T() {
			t.Fatal("class dataset lost months")
		}
	}
}

func TestSplitMedicinesBasic(t *testing.T) {
	m := &Monthly{Month: 0, Records: []Record{
		{Medicines: []MedicineID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
		{Medicines: []MedicineID{0}},
		{Medicines: []MedicineID{}},
	}}
	h := SplitMedicines(m, 0.9, 42)
	if len(h.Train.Records) != 3 || len(h.Test) != 3 {
		t.Fatalf("records = %d/%d", len(h.Train.Records), len(h.Test))
	}
	if got := len(h.Train.Records[0].Medicines); got != 9 {
		t.Fatalf("train medicines = %d, want 9", got)
	}
	if got := len(h.Test[0]); got != 1 {
		t.Fatalf("test medicines = %d, want 1", got)
	}
	// Single-medicine record keeps its medicine in train.
	if len(h.Train.Records[1].Medicines) != 1 || len(h.Test[1]) != 0 {
		t.Fatal("single-medicine record mishandled")
	}
	// Empty record stays empty.
	if len(h.Train.Records[2].Medicines) != 0 || len(h.Test[2]) != 0 {
		t.Fatal("empty record mishandled")
	}
}

func TestSplitMedicinesDeterministic(t *testing.T) {
	m := &Monthly{Month: 3, Records: []Record{{Medicines: []MedicineID{0, 1, 2, 3, 4}}}}
	a := SplitMedicines(m, 0.6, 7)
	b := SplitMedicines(m, 0.6, 7)
	if len(a.Test[0]) != len(b.Test[0]) {
		t.Fatal("same seed produced different splits")
	}
	for i := range a.Test[0] {
		if a.Test[0][i] != b.Test[0][i] {
			t.Fatal("same seed produced different test sets")
		}
	}
}

func TestSplitMedicinesPanicsOnBadFraction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad fraction accepted")
		}
	}()
	SplitMedicines(&Monthly{}, 0, 1)
}

// Property: train + test partition the original medicine multiset.
func TestSplitMedicinesPartitionProperty(t *testing.T) {
	f := func(seed uint64, sizes []uint8) bool {
		m := &Monthly{Month: 0}
		for _, s := range sizes {
			n := int(s % 12)
			meds := make([]MedicineID, n)
			for i := range meds {
				meds[i] = MedicineID(i % 5)
			}
			m.Records = append(m.Records, Record{Medicines: meds})
		}
		h := SplitMedicines(m, 0.9, seed)
		for i := range m.Records {
			counts := map[MedicineID]int{}
			for _, med := range m.Records[i].Medicines {
				counts[med]++
			}
			for _, med := range h.Train.Records[i].Medicines {
				counts[med]--
			}
			for _, med := range h.Test[i] {
				counts[med]--
			}
			for _, c := range counts {
				if c != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTopDiseasesAndMedicines(t *testing.T) {
	d := NewDataset()
	d1 := DiseaseID(d.Diseases.Intern("a"))
	d2 := DiseaseID(d.Diseases.Intern("b"))
	d3 := DiseaseID(d.Diseases.Intern("c"))
	m1 := MedicineID(d.Medicines.Intern("x"))
	m2 := MedicineID(d.Medicines.Intern("y"))
	h := d.AddHospital(Hospital{Code: "H"})
	d.Months = []*Monthly{{Month: 0, Records: []Record{
		{Hospital: h, Diseases: []DiseaseCount{{d1, 5}, {d2, 1}}, Medicines: []MedicineID{m1, m1, m2}},
		{Hospital: h, Diseases: []DiseaseCount{{d3, 2}}, Medicines: []MedicineID{m2, m2, m2}},
	}}}
	top := TopDiseases(d, 2)
	if len(top) != 2 || top[0] != d1 || top[1] != d3 {
		t.Fatalf("TopDiseases = %v", top)
	}
	topM := TopMedicines(d, 1)
	if len(topM) != 1 || topM[0] != m2 {
		t.Fatalf("TopMedicines = %v", topM)
	}
	// k larger than available returns everything.
	if got := len(TopDiseases(d, 100)); got != 3 {
		t.Fatalf("TopDiseases(100) = %d entries", got)
	}
}

func TestFilterMonthly(t *testing.T) {
	m := &Monthly{Month: 0}
	// Disease 0 appears 6 times total, disease 1 only twice; medicine 0
	// appears 5 times, medicine 1 once.
	for i := 0; i < 3; i++ {
		m.Records = append(m.Records, Record{
			Diseases:  []DiseaseCount{{0, 2}},
			Medicines: []MedicineID{0},
		})
	}
	m.Records = append(m.Records, Record{
		Diseases:  []DiseaseCount{{1, 2}},
		Medicines: []MedicineID{0, 0, 1},
	})
	filtered := FilterMonthly(m, FilterOptions{MinMonthlyFreq: 5})
	// The last record loses its rare disease and becomes disease-empty → dropped.
	if len(filtered.Records) != 3 {
		t.Fatalf("filtered records = %d, want 3", len(filtered.Records))
	}
	for _, r := range filtered.Records {
		for _, dc := range r.Diseases {
			if dc.Disease == 1 {
				t.Fatal("rare disease survived the filter")
			}
		}
		for _, med := range r.Medicines {
			if med == 1 {
				t.Fatal("rare medicine survived the filter")
			}
		}
	}
}

func TestFilterDatasetKeepsShape(t *testing.T) {
	d := buildTestDataset(t)
	out := FilterDataset(d, FilterOptions{MinMonthlyFreq: 1})
	if out.T() != d.T() {
		t.Fatal("filter changed month count")
	}
	if out.NumRecords() != d.NumRecords() {
		t.Fatal("min freq 1 should keep everything")
	}
	// A high threshold drops everything.
	out2 := FilterDataset(d, FilterOptions{MinMonthlyFreq: 100})
	if out2.NumRecords() != 0 {
		t.Fatal("high threshold kept records")
	}
	if DefaultFilterOptions().MinMonthlyFreq != 5 {
		t.Fatal("default threshold should match the paper (5)")
	}
}
