package mic

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// Format identifies an on-disk dataset encoding.
type Format int

// Dataset formats.
const (
	// FormatAuto selects the format by sniffing magic bytes when reading
	// (gzip and '{' mean JSONL, the MICC1 magic means columnar) and by file
	// extension when writing (.micc is columnar, everything else JSONL).
	FormatAuto Format = iota
	// FormatJSONL is the line-oriented JSON codec (optionally gzipped).
	FormatJSONL
	// FormatColumnar is the MICC1 binary columnar format.
	FormatColumnar
)

// String names the format the way the CLI -format flags spell it.
func (f Format) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatJSONL:
		return "jsonl"
	case FormatColumnar:
		return "columnar"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat parses a -format flag value.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "auto", "":
		return FormatAuto, nil
	case "jsonl":
		return FormatJSONL, nil
	case "columnar":
		return FormatColumnar, nil
	default:
		return FormatAuto, fmt.Errorf("mic: unknown format %q (want auto, jsonl, or columnar)", s)
	}
}

// SniffFormat identifies the encoding from the first bytes of a stream: the
// MICC1 magic means columnar; a gzip magic or a JSON object open brace means
// JSONL. At least sniffLen bytes disambiguate every valid file.
func SniffFormat(prefix []byte) (Format, error) {
	if len(prefix) >= len(columnarMagic) && string(prefix[:len(columnarMagic)]) == columnarMagic {
		return FormatColumnar, nil
	}
	if len(prefix) >= 2 && prefix[0] == 0x1f && prefix[1] == 0x8b {
		return FormatJSONL, nil // gzip-wrapped JSONL
	}
	trimmed := bytes.TrimLeft(prefix, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		return FormatJSONL, nil
	}
	return FormatAuto, fmt.Errorf("mic: unrecognized dataset format (no MICC1, gzip, or JSON magic)")
}

// sniffLen is how many leading bytes SniffFormat needs.
const sniffLen = len(columnarMagic)

// SniffFile identifies the format of the dataset at path by magic bytes.
func SniffFile(path string) (Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return FormatAuto, err
	}
	defer f.Close()
	prefix := make([]byte, sniffLen)
	n, err := io.ReadFull(f, prefix)
	if err != nil && err != io.ErrUnexpectedEOF {
		return FormatAuto, fmt.Errorf("mic: sniffing %s: %w", path, err)
	}
	return SniffFormat(prefix[:n])
}

// FormatForPath selects a write format from the file extension: .micc means
// columnar, everything else (.jsonl, .jsonl.gz, …) JSONL.
func FormatForPath(path string) Format {
	if strings.HasSuffix(path, ".micc") {
		return FormatColumnar
	}
	return FormatJSONL
}

// StorageOptions carries the knobs shared by both backends. Zero values are
// sensible everywhere: lenient JSONL reads, GOMAXPROCS fan-out, default
// compression.
type StorageOptions struct {
	// Read controls JSONL malformed-line handling (columnar files are
	// CRC-verified instead; a corrupt block always errors).
	Read ReadOptions
	// Workers bounds the columnar backend's parallel block decode and the
	// writer's parallel block compression (0 = GOMAXPROCS). The bytes read
	// and written are identical for every setting.
	Workers int
	// Level is the columnar flate level (0 = default).
	Level int
}

// StreamMeta is the up-front dataset metadata a stream writer needs before
// any month arrives: the declared month count, the vocabularies in id order,
// and the hospital table. It is the header of both on-disk formats.
type StreamMeta struct {
	Months    int
	Diseases  []string
	Medicines []string
	Hospitals []Hospital
}

// NewStreamMeta captures a dataset's metadata for streaming writes.
func NewStreamMeta(d *Dataset) StreamMeta {
	return StreamMeta{
		Months:    len(d.Months),
		Diseases:  d.Diseases.Codes(),
		Medicines: d.Medicines.Codes(),
		Hospitals: d.Hospitals,
	}
}

// StreamWriter emits a dataset one month at a time. Months must be written
// in index order starting at 0, exactly Meta.Months of them, then Close
// finalizes the file. Both backends implement it, so generators and
// transcoders never materialize a corpus in memory.
type StreamWriter interface {
	WriteMonth(m *Monthly) error
	Close() error
}

// Storage is one on-disk dataset backend. The JSONL and columnar
// implementations share this surface so commands select a backend by flag
// (or by sniffing) instead of hard-coding a codec.
type Storage interface {
	// Format names the backend.
	Format() Format
	// Read decodes a whole dataset from r.
	Read(r io.Reader, opts StorageOptions) (*Dataset, ReadStats, error)
	// ReadFile decodes the dataset at path (handling the backend's framing:
	// gzip for JSONL, the block index for columnar).
	ReadFile(path string, opts StorageOptions) (*Dataset, ReadStats, error)
	// Write encodes a whole in-memory dataset to w.
	Write(w io.Writer, d *Dataset, opts StorageOptions) error
	// WriteFile encodes the dataset to path.
	WriteFile(path string, d *Dataset, opts StorageOptions) error
	// StreamWriter starts a month-at-a-time write to w.
	StreamWriter(w io.Writer, meta StreamMeta, opts StorageOptions) (StreamWriter, error)
}

// StorageFor returns the backend for a concrete format. FormatAuto is
// resolved by SniffFile/FormatForPath before this call.
func StorageFor(f Format) (Storage, error) {
	switch f {
	case FormatJSONL:
		return jsonlStorage{}, nil
	case FormatColumnar:
		return columnarStorage{}, nil
	default:
		return nil, fmt.Errorf("mic: no storage backend for format %v", f)
	}
}

// jsonlStorage adapts the JSONL codec to the Storage interface.
type jsonlStorage struct{}

func (jsonlStorage) Format() Format { return FormatJSONL }

func (jsonlStorage) Read(r io.Reader, opts StorageOptions) (*Dataset, ReadStats, error) {
	return ReadWithStats(r, opts.Read)
}

func (jsonlStorage) ReadFile(path string, opts StorageOptions) (*Dataset, ReadStats, error) {
	return ReadFileWithStats(path, opts.Read)
}

func (jsonlStorage) Write(w io.Writer, d *Dataset, _ StorageOptions) error {
	return Write(w, d)
}

func (jsonlStorage) WriteFile(path string, d *Dataset, _ StorageOptions) error {
	return WriteFile(path, d)
}

func (jsonlStorage) StreamWriter(w io.Writer, meta StreamMeta, _ StorageOptions) (StreamWriter, error) {
	return NewJSONLStreamWriter(w, meta)
}

// columnarStorage adapts the MICC1 codec to the Storage interface.
type columnarStorage struct{}

func (columnarStorage) Format() Format { return FormatColumnar }

func (columnarStorage) Read(r io.Reader, opts StorageOptions) (*Dataset, ReadStats, error) {
	// The columnar reader needs random access for its footer index; a plain
	// stream is buffered first. File-shaped callers use ReadFile, which
	// reads blocks in place.
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, ReadStats{}, fmt.Errorf("mic: buffering columnar stream: %w", err)
	}
	d, err := ReadColumnar(bytes.NewReader(data), int64(len(data)), ColumnarReadOptions{Workers: opts.Workers})
	return d, ReadStats{}, err
}

func (columnarStorage) ReadFile(path string, opts StorageOptions) (*Dataset, ReadStats, error) {
	d, err := ReadColumnarFile(path, ColumnarReadOptions{Workers: opts.Workers})
	return d, ReadStats{}, err
}

func (columnarStorage) Write(w io.Writer, d *Dataset, opts StorageOptions) error {
	return WriteColumnar(w, d, ColumnarWriterOptions{Level: opts.Level, Workers: opts.Workers})
}

func (columnarStorage) WriteFile(path string, d *Dataset, opts StorageOptions) error {
	return WriteColumnarFile(path, d, ColumnarWriterOptions{Level: opts.Level, Workers: opts.Workers})
}

func (columnarStorage) StreamWriter(w io.Writer, meta StreamMeta, opts StorageOptions) (StreamWriter, error) {
	return NewColumnarWriter(w, meta, ColumnarWriterOptions{Level: opts.Level, Workers: opts.Workers})
}

// ReadDatasetFile reads the dataset at path in the given format, sniffing
// magic bytes under FormatAuto. It returns the format actually decoded.
func ReadDatasetFile(path string, format Format, opts StorageOptions) (*Dataset, ReadStats, Format, error) {
	if format == FormatAuto {
		var err error
		if format, err = SniffFile(path); err != nil {
			return nil, ReadStats{}, FormatAuto, err
		}
	}
	s, err := StorageFor(format)
	if err != nil {
		return nil, ReadStats{}, format, err
	}
	d, stats, err := s.ReadFile(path, opts)
	return d, stats, format, err
}

// WriteDatasetFile writes the dataset to path in the given format, choosing
// by extension under FormatAuto. It returns the format actually written.
func WriteDatasetFile(path string, format Format, d *Dataset, opts StorageOptions) (Format, error) {
	if format == FormatAuto {
		format = FormatForPath(path)
	}
	s, err := StorageFor(format)
	if err != nil {
		return format, err
	}
	return format, s.WriteFile(path, d, opts)
}

// ReadAuto decodes a dataset from a stream whose format is unknown, sniffing
// the first bytes: HTTP ingest bodies and pipes take this path. It returns
// the format decoded.
func ReadAuto(r io.Reader, opts StorageOptions) (*Dataset, ReadStats, Format, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	prefix, err := br.Peek(sniffLen)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF && len(prefix) == 0 {
		return nil, ReadStats{}, FormatAuto, fmt.Errorf("mic: sniffing stream: %w", err)
	}
	format, err := SniffFormat(prefix)
	if err != nil {
		return nil, ReadStats{}, FormatAuto, err
	}
	var src io.Reader = br
	if format == FormatJSONL && len(prefix) >= 2 && prefix[0] == 0x1f && prefix[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, ReadStats{}, format, fmt.Errorf("mic: gunzipping stream: %w", err)
		}
		defer gz.Close()
		src = gz
	}
	s, _ := StorageFor(format)
	d, stats, err := s.Read(src, opts)
	return d, stats, format, err
}

// NewStreamFileWriter creates path and starts a month-at-a-time write in the
// given format (by extension under FormatAuto; a .gz suffix additionally
// gzip-wraps JSONL output). Close finalizes both the encoding and the file.
func NewStreamFileWriter(path string, format Format, meta StreamMeta, opts StorageOptions) (StreamWriter, Format, error) {
	if format == FormatAuto {
		format = FormatForPath(path)
	}
	s, err := StorageFor(format)
	if err != nil {
		return nil, format, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, format, err
	}
	var w io.Writer = f
	closers := []io.Closer{f}
	if format == FormatJSONL && strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		w = gz
		closers = []io.Closer{gz, f}
	}
	sw, err := s.StreamWriter(w, meta, opts)
	if err != nil {
		for _, c := range closers {
			c.Close()
		}
		os.Remove(path)
		return nil, format, err
	}
	return &fileStreamWriter{sw: sw, closers: closers}, format, nil
}

// fileStreamWriter chains a stream writer with the file (and optional gzip)
// closers behind it.
type fileStreamWriter struct {
	sw      StreamWriter
	closers []io.Closer
}

func (f *fileStreamWriter) WriteMonth(m *Monthly) error { return f.sw.WriteMonth(m) }

func (f *fileStreamWriter) Close() error {
	err := f.sw.Close()
	for _, c := range f.closers {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
