package mic

// FilterOptions holds the frequency thresholds the paper applies in §VI
// before model fitting: diseases and medicines appearing fewer than
// MinMonthlyFreq times in a monthly dataset are dropped from that month.
type FilterOptions struct {
	// MinMonthlyFreq is the minimum within-month frequency for a disease or
	// medicine to be kept (the paper uses 5).
	MinMonthlyFreq int
}

// DefaultFilterOptions mirrors the paper: frequency < 5 within a month is
// dropped.
func DefaultFilterOptions() FilterOptions {
	return FilterOptions{MinMonthlyFreq: 5}
}

// FilterMonthly returns a copy of month with rare diseases and medicines
// removed according to opts. Records left with no diseases or no medicines
// are dropped entirely (they carry no information for link prediction).
func FilterMonthly(month *Monthly, opts FilterOptions) *Monthly {
	diseaseFreq := month.DiseaseFrequencies()
	medFreq := month.MedicineFrequencies()
	out := &Monthly{Month: month.Month}
	for i := range month.Records {
		r := &month.Records[i]
		nr := Record{Hospital: r.Hospital, Patient: r.Patient}
		for _, dc := range r.Diseases {
			if diseaseFreq[dc.Disease] >= opts.MinMonthlyFreq {
				nr.Diseases = append(nr.Diseases, dc)
			}
		}
		for _, med := range r.Medicines {
			if medFreq[med] >= opts.MinMonthlyFreq {
				nr.Medicines = append(nr.Medicines, med)
			}
		}
		if len(nr.Diseases) > 0 && len(nr.Medicines) > 0 {
			out.Records = append(out.Records, nr)
		}
	}
	return out
}

// FilterDataset applies FilterMonthly to every month, sharing the original
// vocabularies and hospital table.
func FilterDataset(d *Dataset, opts FilterOptions) *Dataset {
	out := &Dataset{Diseases: d.Diseases, Medicines: d.Medicines, Hospitals: d.Hospitals}
	for _, m := range d.Months {
		out.Months = append(out.Months, FilterMonthly(m, opts))
	}
	return out
}
