// I/O data-plane benchmarks (package mic_test so they can drive micgen,
// which itself imports mic). These pin the numbers recorded in
// BENCH_io.json: JSONL vs MICC1 columnar decode/encode throughput on a
// shared synthetic corpus, plus the streamed ingest harness — micgen fed
// straight into the columnar writer without ever materializing the corpus —
// at 1M records as a smoke (runs under -short in CI) and at 100M+ records
// when MIC_INGEST_RECORDS is set.
package mic_test

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mictrend/internal/mic"
	"mictrend/internal/micgen"
)

// benchCorpus is the shared decode/encode corpus: ~300k records over 24
// months, generated once per process.
var benchCorpus struct {
	once    sync.Once
	ds      *mic.Dataset
	records int
	jsonl   []byte // raw JSONL encoding
	jsonlGz []byte // gzip(JSONL), the pre-columnar on-disk form
	col     []byte // MICC1 columnar encoding
	err     error
}

func benchData(tb testing.TB) (*mic.Dataset, []byte, []byte, []byte) {
	benchCorpus.once.Do(func() {
		ds, _, err := micgen.Generate(micgen.Config{
			Seed: 42, Months: 24, RecordsPerMonth: 20000,
		})
		if err != nil {
			benchCorpus.err = err
			return
		}
		benchCorpus.ds = ds
		benchCorpus.records = ds.NumRecords()
		var buf bytes.Buffer
		if benchCorpus.err = mic.Write(&buf, ds); benchCorpus.err != nil {
			return
		}
		benchCorpus.jsonl = bytes.Clone(buf.Bytes())
		var gzBuf bytes.Buffer
		gz := gzip.NewWriter(&gzBuf)
		if _, err := gz.Write(benchCorpus.jsonl); err != nil {
			benchCorpus.err = err
			return
		}
		if benchCorpus.err = gz.Close(); benchCorpus.err != nil {
			return
		}
		benchCorpus.jsonlGz = gzBuf.Bytes()
		buf.Reset()
		if benchCorpus.err = mic.WriteColumnar(&buf, ds, mic.ColumnarWriterOptions{}); benchCorpus.err != nil {
			return
		}
		benchCorpus.col = bytes.Clone(buf.Bytes())
	})
	if benchCorpus.err != nil {
		tb.Fatal(benchCorpus.err)
	}
	return benchCorpus.ds, benchCorpus.jsonl, benchCorpus.jsonlGz, benchCorpus.col
}

func reportRecords(b *testing.B, records int) {
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "recs/s")
}

func BenchmarkJSONLDecode(b *testing.B) {
	_, jsonl, _, _ := benchData(b)
	b.SetBytes(int64(len(jsonl)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mic.ReadWithStats(bytes.NewReader(jsonl), mic.ReadOptions{Strict: true}); err != nil {
			b.Fatal(err)
		}
	}
	reportRecords(b, benchCorpus.records)
}

func BenchmarkColumnarDecode(b *testing.B) {
	_, _, _, col := benchData(b)
	b.SetBytes(int64(len(col)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mic.ReadColumnar(bytes.NewReader(col), int64(len(col)), mic.ColumnarReadOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	reportRecords(b, benchCorpus.records)
}

func BenchmarkColumnarDecodeSerial(b *testing.B) {
	_, _, _, col := benchData(b)
	b.SetBytes(int64(len(col)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mic.ReadColumnar(bytes.NewReader(col), int64(len(col)), mic.ColumnarReadOptions{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
	reportRecords(b, benchCorpus.records)
}

func BenchmarkJSONLEncode(b *testing.B) {
	ds, jsonl, _, _ := benchData(b)
	b.SetBytes(int64(len(jsonl)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		buf.Grow(len(jsonl))
		if err := mic.Write(&buf, ds); err != nil {
			b.Fatal(err)
		}
	}
	reportRecords(b, benchCorpus.records)
}

func BenchmarkColumnarEncode(b *testing.B) {
	ds, _, _, col := benchData(b)
	b.SetBytes(int64(len(col)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		buf.Grow(len(col))
		if err := mic.WriteColumnar(&buf, ds, mic.ColumnarWriterOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	reportRecords(b, benchCorpus.records)
}

// TestCompressionRatio records the size story: MICC1 must be well under the
// raw JSONL and no larger than JSONL.gz. The synthetic corpus sits near its
// flate entropy floor (uniform-random patient ids plus high-entropy bag ids
// cost ~8-9 B/record no matter the layout), so the gzip-relative ratio is
// bounded near 1.5x — see DESIGN.md for the per-column breakdown.
func TestCompressionRatio(t *testing.T) {
	_, jsonl, jsonlGz, col := benchData(t)
	recs := benchCorpus.records
	t.Logf("records=%d jsonl=%d (%.2f B/rec) jsonl.gz=%d (%.2f B/rec) micc=%d (%.2f B/rec)",
		recs, len(jsonl), float64(len(jsonl))/float64(recs),
		len(jsonlGz), float64(len(jsonlGz))/float64(recs),
		len(col), float64(len(col))/float64(recs))
	t.Logf("ratio vs raw jsonl: %.2fx   vs jsonl.gz: %.2fx",
		float64(len(jsonl))/float64(len(col)), float64(len(jsonlGz))/float64(len(col)))
	if len(col)*3 > len(jsonl) {
		t.Fatalf("columnar (%d) not ≤ 1/3 of raw JSONL (%d)", len(col), len(jsonl))
	}
	if len(col) > len(jsonlGz) {
		t.Fatalf("columnar (%d) larger than JSONL.gz (%d)", len(col), len(jsonlGz))
	}
}

// peakMemBytes reports the process's peak memory: VmHWM (peak resident
// set) from /proc/self/status where the kernel exposes it, else the Go
// runtime's OS-reserved total (runtime.MemStats.Sys) as a labelled proxy.
func peakMemBytes() (int64, string) {
	if data, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
				fields := strings.Fields(rest)
				if len(fields) >= 1 {
					if kb, err := strconv.ParseInt(fields[0], 10, 64); err == nil {
						return kb << 10, "VmHWM"
					}
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys), "go-runtime-sys"
}

// runIngest streams a micgen corpus month by month into a columnar file and
// reports throughput, file size, and peak RSS. The corpus is never held in
// memory: one generated month is alive at a time, and the writer compresses
// blocks on a bounded worker pool.
func runIngest(t *testing.T, cfg micgen.Config, path string) {
	gen, err := micgen.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw, _, err := mic.NewStreamFileWriter(path, mic.FormatColumnar, gen.Meta(), mic.StorageOptions{})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	records := 0
	for m := gen.NextMonth(); m != nil; m = gen.NextMonth() {
		records += len(m.Records)
		if err := sw.WriteMonth(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	mem, memKind := peakMemBytes()
	t.Logf("ingest: %d records in %v (%.0f recs/s), %d bytes (%.2f B/rec), peak mem %.1f MiB (%s), GOMAXPROCS=%d",
		records, elapsed.Round(time.Millisecond), float64(records)/elapsed.Seconds(),
		info.Size(), float64(info.Size())/float64(records), float64(mem)/(1<<20), memKind, runtime.GOMAXPROCS(0))
	if records == 0 {
		t.Fatal("ingest produced zero records")
	}
}

// TestIngestSmoke streams a nominal 1M-record corpus (CI runs this under
// -short as the data-plane ingest gate).
func TestIngestSmoke(t *testing.T) {
	runIngest(t, micgen.Config{
		Seed: 7, Months: 50, RecordsPerMonth: 20000,
	}, filepath.Join(t.TempDir(), "smoke.micc"))
}

// TestIngestHuge is the 100M+-record end-to-end harness, gated behind
// MIC_INGEST_RECORDS (a nominal record-draw count, e.g. 160000000 for
// ~100M emitted records after visit-propensity thinning). It writes to
// MIC_INGEST_DIR (default the test temp dir, which needs ~1 GiB free).
func TestIngestHuge(t *testing.T) {
	env := os.Getenv("MIC_INGEST_RECORDS")
	if env == "" {
		t.Skip("set MIC_INGEST_RECORDS (nominal record draws, e.g. 160000000) to run the huge ingest")
	}
	nominal, err := strconv.ParseInt(env, 10, 64)
	if err != nil || nominal <= 0 {
		t.Fatalf("bad MIC_INGEST_RECORDS %q: %v", env, err)
	}
	perMonth := 400000
	months := int(nominal / int64(perMonth))
	if months < 1 {
		months = 1
		perMonth = int(nominal)
	}
	dir := os.Getenv("MIC_INGEST_DIR")
	if dir == "" {
		dir = t.TempDir()
	}
	path := filepath.Join(dir, fmt.Sprintf("huge-%d.micc", nominal))
	defer os.Remove(path)
	runIngest(t, micgen.Config{
		Seed: 1, Months: months, RecordsPerMonth: perMonth, Patients: 1200000,
	}, path)
}
