package mic

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
)

// testDataset builds a small dataset with edge shapes: empty months, empty
// bags, unknown (-1) patients, descending bag ids, and multi-count diseases.
func testDataset(t *testing.T) *Dataset {
	t.Helper()
	d := NewDataset()
	for i := 0; i < 7; i++ {
		d.Diseases.Intern(fmt.Sprintf("D%02d", i))
	}
	for i := 0; i < 5; i++ {
		d.Medicines.Intern(fmt.Sprintf("M%02d", i))
	}
	d.AddHospital(Hospital{Code: "H-a", City: "north", Beds: 12})
	d.AddHospital(Hospital{Code: "H-b", City: "south", Beds: 480})
	d.Months = []*Monthly{
		{Month: 0, Records: []Record{
			{Hospital: 0, Patient: 3, Diseases: []DiseaseCount{{0, 2}, {4, 1}}, Medicines: []MedicineID{1, 0, 4}},
			{Hospital: 1, Patient: -1, Diseases: []DiseaseCount{{6, 9}}, Medicines: nil},
			{Hospital: 0, Patient: 3, Diseases: nil, Medicines: []MedicineID{2}},
		}},
		{Month: 1}, // empty month
		{Month: 2, Records: []Record{
			{Hospital: 1, Patient: 0, Diseases: []DiseaseCount{{5, 1}, {1, 3}}, Medicines: []MedicineID{4, 4, 0}},
		}},
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("test dataset invalid: %v", err)
	}
	return d
}

// randomDataset builds a pseudo-random valid dataset for round-trip checks.
func randomDataset(seed uint64, months, recordsPerMonth int) *Dataset {
	rng := rand.New(rand.NewPCG(seed, 42))
	d := NewDataset()
	nd, nm, nh := 20+rng.IntN(30), 15+rng.IntN(20), 3+rng.IntN(8)
	for i := 0; i < nd; i++ {
		d.Diseases.Intern(fmt.Sprintf("dis-%03d", i))
	}
	for i := 0; i < nm; i++ {
		d.Medicines.Intern(fmt.Sprintf("med-%03d", i))
	}
	for i := 0; i < nh; i++ {
		d.AddHospital(Hospital{Code: fmt.Sprintf("H%d", i), City: fmt.Sprintf("c%d", i%3), Beds: rng.IntN(600)})
	}
	for t := 0; t < months; t++ {
		m := &Monthly{Month: t}
		n := rng.IntN(recordsPerMonth + 1)
		for r := 0; r < n; r++ {
			rec := Record{Hospital: HospitalID(rng.IntN(nh)), Patient: int32(rng.IntN(1000)) - 1}
			for k := rng.IntN(5); k > 0; k-- {
				rec.Diseases = append(rec.Diseases, DiseaseCount{
					Disease: DiseaseID(rng.IntN(nd)), Count: 1 + rng.IntN(4),
				})
			}
			for k := rng.IntN(4); k > 0; k-- {
				rec.Medicines = append(rec.Medicines, MedicineID(rng.IntN(nm)))
			}
			m.Records = append(m.Records, rec)
		}
		d.Months = append(d.Months, m)
	}
	return d
}

// datasetsEqual compares two datasets structurally.
func datasetsEqual(t *testing.T, a, b *Dataset) {
	t.Helper()
	if !reflect.DeepEqual(a.Diseases.Codes(), b.Diseases.Codes()) {
		t.Fatalf("disease vocab mismatch")
	}
	if !reflect.DeepEqual(a.Medicines.Codes(), b.Medicines.Codes()) {
		t.Fatalf("medicine vocab mismatch")
	}
	if !reflect.DeepEqual(a.Hospitals, b.Hospitals) {
		t.Fatalf("hospital table mismatch")
	}
	if len(a.Months) != len(b.Months) {
		t.Fatalf("month count mismatch: %d vs %d", len(a.Months), len(b.Months))
	}
	for i := range a.Months {
		am, bm := a.Months[i], b.Months[i]
		if am.Month != bm.Month || len(am.Records) != len(bm.Records) {
			t.Fatalf("month %d shape mismatch", i)
		}
		for r := range am.Records {
			ar, br := am.Records[r], bm.Records[r]
			if ar.Hospital != br.Hospital || ar.Patient != br.Patient ||
				!sameDiseases(ar.Diseases, br.Diseases) || !sameMeds(ar.Medicines, br.Medicines) {
				t.Fatalf("month %d record %d mismatch:\n%+v\n%+v", i, r, ar, br)
			}
		}
	}
}

func sameDiseases(a, b []DiseaseCount) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameMeds(a, b []MedicineID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestColumnarRoundTrip(t *testing.T) {
	d := testDataset(t)
	var buf bytes.Buffer
	if err := WriteColumnar(&buf, d, ColumnarWriterOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadColumnar(bytes.NewReader(buf.Bytes()), int64(buf.Len()), ColumnarReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("decoded dataset invalid: %v", err)
	}
	datasetsEqual(t, d, got)
}

func TestColumnarRoundTripRandom(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		d := randomDataset(seed, 1+int(seed)*3, 50)
		var buf bytes.Buffer
		if err := WriteColumnar(&buf, d, ColumnarWriterOptions{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := ReadColumnar(bytes.NewReader(buf.Bytes()), int64(buf.Len()), ColumnarReadOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		datasetsEqual(t, d, got)
	}
}

// TestColumnarWriterWorkerInvariance pins the format's determinism contract:
// the emitted bytes are identical for any compression worker count, and the
// decoded dataset is identical for any decode worker count.
func TestColumnarWriterWorkerInvariance(t *testing.T) {
	d := randomDataset(99, 12, 80)
	var base bytes.Buffer
	if err := WriteColumnar(&base, d, ColumnarWriterOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		var buf bytes.Buffer
		if err := WriteColumnar(&buf, d, ColumnarWriterOptions{Workers: workers}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(base.Bytes(), buf.Bytes()) {
			t.Fatalf("columnar bytes differ between 1 and %d compression workers", workers)
		}
	}
	serial, err := ReadColumnar(bytes.NewReader(base.Bytes()), int64(base.Len()), ColumnarReadOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		got, err := ReadColumnar(bytes.NewReader(base.Bytes()), int64(base.Len()), ColumnarReadOptions{Workers: workers})
		if err != nil {
			t.Fatalf("decode workers=%d: %v", workers, err)
		}
		datasetsEqual(t, serial, got)
	}
}

// TestColumnarJSONLEquivalence decodes the same corpus through both backends
// and requires identical datasets — the decode-equivalence contract the CI
// race step runs with every worker count.
func TestColumnarJSONLEquivalence(t *testing.T) {
	d := randomDataset(7, 10, 120)
	var jl, col bytes.Buffer
	if err := Write(&jl, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteColumnar(&col, d, ColumnarWriterOptions{}); err != nil {
		t.Fatal(err)
	}
	fromJSONL, err := Read(bytes.NewReader(jl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		fromCol, err := ReadColumnar(bytes.NewReader(col.Bytes()), int64(col.Len()), ColumnarReadOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		datasetsEqual(t, fromJSONL, fromCol)
	}
}

func TestColumnarStreamWriterMonthOrder(t *testing.T) {
	d := testDataset(t)
	var buf bytes.Buffer
	cw, err := NewColumnarWriter(&buf, NewStreamMeta(d), ColumnarWriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.WriteMonth(d.Months[1]); err == nil {
		t.Fatal("out-of-order month accepted")
	}
	if err := cw.WriteMonth(d.Months[0]); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err == nil {
		t.Fatal("Close accepted an incomplete file")
	}
}

// TestColumnarCorruption flips, truncates, and rewrites bytes across the
// file and requires every mutation to surface as an error — never a panic,
// never a silently wrong dataset.
func TestColumnarCorruption(t *testing.T) {
	d := testDataset(t)
	var buf bytes.Buffer
	if err := WriteColumnar(&buf, d, ColumnarWriterOptions{}); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()

	t.Run("not-columnar", func(t *testing.T) {
		if _, err := ReadColumnar(bytes.NewReader([]byte("hello")), 5, ColumnarReadOptions{}); err == nil {
			t.Fatal("garbage accepted")
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for _, cut := range []int{1, 7, len(orig) / 3, len(orig) / 2, len(orig) - 1} {
			if cut >= len(orig) {
				continue
			}
			if _, err := ReadColumnar(bytes.NewReader(orig[:cut]), int64(cut), ColumnarReadOptions{}); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("bit-flips", func(t *testing.T) {
		for pos := 0; pos < len(orig); pos += 3 {
			mut := append([]byte(nil), orig...)
			mut[pos] ^= 0x41
			ds, err := ReadColumnar(bytes.NewReader(mut), int64(len(mut)), ColumnarReadOptions{})
			if err != nil {
				continue
			}
			// A flip the CRCs cannot see (e.g. inside the trailer's
			// unprotected offset bytes that still lands on a valid region) —
			// whatever decodes must still be a valid dataset.
			if verr := ds.Validate(); verr != nil {
				t.Fatalf("flip at %d decoded an invalid dataset: %v", pos, verr)
			}
		}
	})
}

func TestSniffFormat(t *testing.T) {
	d := testDataset(t)
	var jl, col bytes.Buffer
	if err := Write(&jl, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteColumnar(&col, d, ColumnarWriterOptions{}); err != nil {
		t.Fatal(err)
	}
	if f, err := SniffFormat(jl.Bytes()[:8]); err != nil || f != FormatJSONL {
		t.Fatalf("jsonl sniff: %v %v", f, err)
	}
	if f, err := SniffFormat(col.Bytes()[:8]); err != nil || f != FormatColumnar {
		t.Fatalf("columnar sniff: %v %v", f, err)
	}
	if f, err := SniffFormat([]byte{0x1f, 0x8b, 0x08}); err != nil || f != FormatJSONL {
		t.Fatalf("gzip sniff: %v %v", f, err)
	}
	if _, err := SniffFormat([]byte("PK\x03\x04")); err == nil {
		t.Fatal("zip magic sniffed as a dataset format")
	}
}

func TestReadAuto(t *testing.T) {
	d := testDataset(t)
	var jl, col bytes.Buffer
	if err := Write(&jl, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteColumnar(&col, d, ColumnarWriterOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		data []byte
		want Format
	}{
		{"jsonl", jl.Bytes(), FormatJSONL},
		{"columnar", col.Bytes(), FormatColumnar},
	} {
		ds, _, format, err := ReadAuto(bytes.NewReader(tc.data), StorageOptions{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if format != tc.want {
			t.Fatalf("%s: sniffed %v", tc.name, format)
		}
		datasetsEqual(t, d, ds)
	}
	if _, _, _, err := ReadAuto(strings.NewReader("PK\x03\x04junk"), StorageOptions{}); err == nil {
		t.Fatal("unknown stream accepted")
	}
}

func TestColumnarFileStreamingMonths(t *testing.T) {
	d := randomDataset(3, 9, 40)
	var buf bytes.Buffer
	if err := WriteColumnar(&buf, d, ColumnarWriterOptions{}); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenColumnar(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if cf.Months() != d.T() {
		t.Fatalf("Months() = %d, want %d", cf.Months(), d.T())
	}
	for tm := 0; tm < cf.Months(); tm++ {
		if got, want := cf.MonthRecords(tm), len(d.Months[tm].Records); got != want {
			t.Fatalf("MonthRecords(%d) = %d, want %d", tm, got, want)
		}
		m, err := cf.ReadMonth(tm)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m, d.Months[tm]) && len(m.Records)+len(d.Months[tm].Records) > 0 {
			t.Fatalf("month %d mismatch", tm)
		}
	}
	if _, err := cf.ReadMonth(cf.Months()); err == nil {
		t.Fatal("out-of-range month accepted")
	}
}

// TestDecodeBlockBagLengthOverflow pins the per-entry bound on bag lengths:
// two lengths of 2^63 wrap their uint64 sum to zero, slipping past the
// total-vs-remaining check, and the negative int conversion then panics on
// the slice bound. Both bag columns must reject each oversized length before
// it is summed.
func TestDecodeBlockBagLengthOverflow(t *testing.T) {
	meta := StreamMeta{
		Months:    1,
		Diseases:  []string{"D00"},
		Medicines: []string{"M00"},
		Hospitals: []Hospital{{Code: "H", City: "c", Beds: 1}},
	}
	const half = uint64(1) << 63
	prefix := binary.AppendUvarint(nil, 2)   // record count
	prefix = binary.AppendUvarint(prefix, 0) // hospital column
	prefix = binary.AppendUvarint(prefix, 0)
	prefix = binary.AppendUvarint(prefix, 0) // patient column (zigzag 0)
	prefix = binary.AppendUvarint(prefix, 0)

	disease := binary.AppendUvarint(append([]byte(nil), prefix...), half)
	disease = binary.AppendUvarint(disease, half)

	medicine := binary.AppendUvarint(append([]byte(nil), prefix...), 0) // empty disease bags
	medicine = binary.AppendUvarint(medicine, 0)
	medicine = binary.AppendUvarint(medicine, half)
	medicine = binary.AppendUvarint(medicine, half)

	for name, raw := range map[string][]byte{"disease": disease, "medicine": medicine} {
		if _, err := decodeBlock(raw, 0, 2, meta); err == nil {
			t.Fatalf("%s: overflowing bag lengths accepted", name)
		}
	}
}
