package mic

import "fmt"

// Vocab is a bidirectional mapping between external string codes (e.g. a
// disease or medicine code) and dense integer identifiers.
type Vocab struct {
	byCode map[string]int32
	codes  []string
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{byCode: make(map[string]int32)}
}

// Intern returns the identifier for code, assigning the next dense id on
// first sight.
func (v *Vocab) Intern(code string) int32 {
	if id, ok := v.byCode[code]; ok {
		return id
	}
	id := int32(len(v.codes))
	v.byCode[code] = id
	v.codes = append(v.codes, code)
	return id
}

// Lookup returns the identifier for code and whether it is known.
func (v *Vocab) Lookup(code string) (int32, bool) {
	id, ok := v.byCode[code]
	return id, ok
}

// Code returns the external code for id. It panics on an out-of-range id.
func (v *Vocab) Code(id int32) string {
	if id < 0 || int(id) >= len(v.codes) {
		panic(fmt.Sprintf("mic: vocab id %d out of range (size %d)", id, len(v.codes)))
	}
	return v.codes[id]
}

// Len returns the number of interned codes.
func (v *Vocab) Len() int { return len(v.codes) }

// Codes returns a copy of all interned codes in id order.
func (v *Vocab) Codes() []string {
	return append([]string(nil), v.codes...)
}
