package mic

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead ensures the codec never panics on malformed input and that
// anything it accepts round-trips. Run with `go test -fuzz=FuzzRead`; under
// plain `go test` the seed corpus below is executed.
func FuzzRead(f *testing.F) {
	// Valid file seed.
	d := NewDataset()
	dis := DiseaseID(d.Diseases.Intern("flu"))
	med := MedicineID(d.Medicines.Intern("drug"))
	h := d.AddHospital(Hospital{Code: "H", City: "c", Beds: 3})
	d.Months = []*Monthly{{Month: 0, Records: []Record{{
		Hospital: h, Diseases: []DiseaseCount{{dis, 1}}, Medicines: []MedicineID{med},
	}}}}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version":1,"months":-1}`))
	f.Add([]byte(`{"version":1,"months":1,"diseases":["d"],"medicines":["m"],"hospitals":[{"Code":"H"}]}
{"t":0,"h":0,"p":0,"d":[[0,1]],"m":[0]}`))
	f.Add([]byte(`{"version":1,"months":2}` + "\n" + `{"t":9}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must validate and round-trip.
		if err := ds.Validate(); err != nil {
			t.Fatalf("accepted dataset fails validation: %v", err)
		}
		var out strings.Builder
		if err := Write(&out, ds); err != nil {
			t.Fatalf("accepted dataset fails to serialize: %v", err)
		}
		if _, err := Read(strings.NewReader(out.String())); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
