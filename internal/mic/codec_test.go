package mic

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	d := buildTestDataset(t)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, d, got)
}

func TestCodecFileRoundTripPlain(t *testing.T) {
	d := buildTestDataset(t)
	path := filepath.Join(t.TempDir(), "data.jsonl")
	if err := WriteFile(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, d, got)
}

func TestCodecFileRoundTripGzip(t *testing.T) {
	d := buildTestDataset(t)
	path := filepath.Join(t.TempDir(), "data.jsonl.gz")
	if err := WriteFile(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, d, got)
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"version":99,"months":0}` + "\n")); err == nil {
		t.Fatal("future version accepted")
	}
}

// corruptCorpus interleaves valid record lines with four kinds of malformed
// ones: broken JSON, an out-of-range month, an unknown disease id, and an
// unknown hospital.
const corruptCorpus = `{"version":1,"months":2,"diseases":["d"],"medicines":["m"],"hospitals":[{"Code":"H","City":"c","Beds":1}]}
{"t":0,"h":0,"p":0,"d":[[0,1]],"m":[0]}
{"t":0,"h":0,"p":1,"d":[[0,1]],{{{garbage
{"t":5,"h":0,"p":2,"d":[[0,1]],"m":[0]}
{"t":1,"h":0,"p":3,"d":[[7,1]],"m":[0]}
{"t":1,"h":9,"p":4,"d":[[0,1]],"m":[0]}
{"t":1,"h":0,"p":5,"d":[[0,2]],"m":[0]}
`

func TestReadSkipsMalformedLines(t *testing.T) {
	d, stats, err := ReadWithStats(strings.NewReader(corruptCorpus), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SkippedLines != 4 {
		t.Fatalf("skipped = %d, want 4 (first: %v)", stats.SkippedLines, stats.FirstError)
	}
	if stats.FirstError == nil || !strings.Contains(stats.FirstError.Error(), "line 3") {
		t.Fatalf("FirstError = %v, want the garbage JSON at line 3", stats.FirstError)
	}
	if got := d.NumRecords(); got != 2 {
		t.Fatalf("records = %d, want the 2 valid ones", got)
	}
	if len(d.Months[0].Records) != 1 || len(d.Months[1].Records) != 1 {
		t.Fatalf("valid records landed in wrong months: %d/%d",
			len(d.Months[0].Records), len(d.Months[1].Records))
	}
}

func TestReadStrictFailsFast(t *testing.T) {
	_, _, err := ReadWithStats(strings.NewReader(corruptCorpus), ReadOptions{Strict: true})
	if err == nil {
		t.Fatal("strict read accepted a malformed line")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("strict error %q does not name the offending line", err)
	}
}

func TestReadStrictRejectsOutOfRangeMonth(t *testing.T) {
	input := `{"version":1,"months":1,"diseases":["d"],"medicines":["m"],"hospitals":[{"Code":"H","City":"c","Beds":1}]}
{"t":5,"h":0,"p":0,"d":[[0,1]],"m":[0]}
`
	if _, _, err := ReadWithStats(strings.NewReader(input), ReadOptions{Strict: true}); err == nil {
		t.Fatal("out-of-range month accepted")
	}
}

func TestReadStrictRejectsInvalidIDs(t *testing.T) {
	input := `{"version":1,"months":1,"diseases":["d"],"medicines":["m"],"hospitals":[{"Code":"H","City":"c","Beds":1}]}
{"t":0,"h":0,"p":0,"d":[[7,1]],"m":[0]}
`
	if _, _, err := ReadWithStats(strings.NewReader(input), ReadOptions{Strict: true}); err == nil {
		t.Fatal("out-of-range disease id accepted")
	}
}

func TestReadFileWithStatsGzip(t *testing.T) {
	d := buildTestDataset(t)
	path := filepath.Join(t.TempDir(), "data.jsonl.gz")
	if err := WriteFile(path, d); err != nil {
		t.Fatal(err)
	}
	got, stats, err := ReadFileWithStats(path, ReadOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SkippedLines != 0 {
		t.Fatalf("clean file skipped %d lines", stats.SkippedLines)
	}
	assertDatasetsEqual(t, d, got)
}

func TestReadMissingFile(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func assertDatasetsEqual(t *testing.T, want, got *Dataset) {
	t.Helper()
	if got.T() != want.T() {
		t.Fatalf("months = %d, want %d", got.T(), want.T())
	}
	if got.Diseases.Len() != want.Diseases.Len() || got.Medicines.Len() != want.Medicines.Len() {
		t.Fatal("vocabulary sizes differ")
	}
	for i := int32(0); int(i) < want.Diseases.Len(); i++ {
		if got.Diseases.Code(i) != want.Diseases.Code(i) {
			t.Fatalf("disease code %d differs", i)
		}
	}
	if len(got.Hospitals) != len(want.Hospitals) {
		t.Fatal("hospital tables differ")
	}
	for i := range want.Hospitals {
		if got.Hospitals[i] != want.Hospitals[i] {
			t.Fatalf("hospital %d differs: %+v vs %+v", i, got.Hospitals[i], want.Hospitals[i])
		}
	}
	for ti := range want.Months {
		wm, gm := want.Months[ti], got.Months[ti]
		if len(gm.Records) != len(wm.Records) {
			t.Fatalf("month %d records = %d, want %d", ti, len(gm.Records), len(wm.Records))
		}
		for ri := range wm.Records {
			wr, gr := &wm.Records[ri], &gm.Records[ri]
			if gr.Hospital != wr.Hospital || gr.Patient != wr.Patient {
				t.Fatalf("month %d record %d metadata differs", ti, ri)
			}
			if len(gr.Diseases) != len(wr.Diseases) || len(gr.Medicines) != len(wr.Medicines) {
				t.Fatalf("month %d record %d bags differ in size", ti, ri)
			}
			for j := range wr.Diseases {
				if gr.Diseases[j] != wr.Diseases[j] {
					t.Fatalf("month %d record %d disease %d differs", ti, ri, j)
				}
			}
			for j := range wr.Medicines {
				if gr.Medicines[j] != wr.Medicines[j] {
					t.Fatalf("month %d record %d medicine %d differs", ti, ri, j)
				}
			}
		}
	}
}
