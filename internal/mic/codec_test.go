package mic

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	d := buildTestDataset(t)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, d, got)
}

func TestCodecFileRoundTripPlain(t *testing.T) {
	d := buildTestDataset(t)
	path := filepath.Join(t.TempDir(), "data.jsonl")
	if err := WriteFile(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, d, got)
}

func TestCodecFileRoundTripGzip(t *testing.T) {
	d := buildTestDataset(t)
	path := filepath.Join(t.TempDir(), "data.jsonl.gz")
	if err := WriteFile(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, d, got)
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"version":99,"months":0}` + "\n")); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestReadRejectsOutOfRangeMonth(t *testing.T) {
	input := `{"version":1,"months":1,"diseases":["d"],"medicines":["m"],"hospitals":[{"Code":"H","City":"c","Beds":1}]}
{"t":5,"h":0,"p":0,"d":[[0,1]],"m":[0]}
`
	if _, err := Read(strings.NewReader(input)); err == nil {
		t.Fatal("out-of-range month accepted")
	}
}

func TestReadRejectsInvalidIDs(t *testing.T) {
	input := `{"version":1,"months":1,"diseases":["d"],"medicines":["m"],"hospitals":[{"Code":"H","City":"c","Beds":1}]}
{"t":0,"h":0,"p":0,"d":[[7,1]],"m":[0]}
`
	if _, err := Read(strings.NewReader(input)); err == nil {
		t.Fatal("out-of-range disease id accepted (Validate should catch it)")
	}
}

func TestReadMissingFile(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func assertDatasetsEqual(t *testing.T, want, got *Dataset) {
	t.Helper()
	if got.T() != want.T() {
		t.Fatalf("months = %d, want %d", got.T(), want.T())
	}
	if got.Diseases.Len() != want.Diseases.Len() || got.Medicines.Len() != want.Medicines.Len() {
		t.Fatal("vocabulary sizes differ")
	}
	for i := int32(0); int(i) < want.Diseases.Len(); i++ {
		if got.Diseases.Code(i) != want.Diseases.Code(i) {
			t.Fatalf("disease code %d differs", i)
		}
	}
	if len(got.Hospitals) != len(want.Hospitals) {
		t.Fatal("hospital tables differ")
	}
	for i := range want.Hospitals {
		if got.Hospitals[i] != want.Hospitals[i] {
			t.Fatalf("hospital %d differs: %+v vs %+v", i, got.Hospitals[i], want.Hospitals[i])
		}
	}
	for ti := range want.Months {
		wm, gm := want.Months[ti], got.Months[ti]
		if len(gm.Records) != len(wm.Records) {
			t.Fatalf("month %d records = %d, want %d", ti, len(gm.Records), len(wm.Records))
		}
		for ri := range wm.Records {
			wr, gr := &wm.Records[ri], &gm.Records[ri]
			if gr.Hospital != wr.Hospital || gr.Patient != wr.Patient {
				t.Fatalf("month %d record %d metadata differs", ti, ri)
			}
			if len(gr.Diseases) != len(wr.Diseases) || len(gr.Medicines) != len(wr.Medicines) {
				t.Fatalf("month %d record %d bags differ in size", ti, ri)
			}
			for j := range wr.Diseases {
				if gr.Diseases[j] != wr.Diseases[j] {
					t.Fatalf("month %d record %d disease %d differs", ti, ri, j)
				}
			}
			for j := range wr.Medicines {
				if gr.Medicines[j] != wr.Medicines[j] {
					t.Fatalf("month %d record %d medicine %d differs", ti, ri, j)
				}
			}
		}
	}
}
