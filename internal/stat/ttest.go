package stat

import (
	"errors"
	"math"
)

// ErrTooFewSamples is returned when a test is given fewer pairs than it can
// work with.
var ErrTooFewSamples = errors.New("stat: too few samples")

// TTestResult holds the outcome of a paired t-test plus the Cohen's d effect
// size the paper reports alongside every significance claim.
type TTestResult struct {
	T       float64 // t statistic
	DF      float64 // degrees of freedom (n−1)
	P       float64 // two-sided p-value
	CohensD float64 // mean(diff)/sd(diff)
	N       int     // number of pairs
}

// Significant reports whether the two-sided p-value is below alpha.
func (r TTestResult) Significant(alpha float64) bool { return r.P < alpha }

// PairedTTest runs a two-sided paired t-test on equal-length samples a and b,
// testing H0: mean(a−b) = 0. It matches the paper's usage, e.g.
// "t(42) = −103.670, p < 0.001, Cohen's d = −15.810".
func PairedTTest(a, b []float64) (TTestResult, error) {
	if len(a) != len(b) {
		return TTestResult{}, errors.New("stat: paired t-test requires equal-length samples")
	}
	n := len(a)
	if n < 2 {
		return TTestResult{}, ErrTooFewSamples
	}
	diffs := make([]float64, n)
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	meanD := Mean(diffs)
	sdD := StdDev(diffs)
	if sdD == 0 {
		// Identical pairs: define t = 0 (no evidence of difference) unless the
		// constant difference is nonzero, in which case the difference is
		// certain and we report an infinite statistic.
		if meanD == 0 {
			return TTestResult{T: 0, DF: float64(n - 1), P: 1, CohensD: 0, N: n}, nil
		}
		return TTestResult{
			T: math.Inf(sign(meanD)), DF: float64(n - 1), P: 0,
			CohensD: math.Inf(sign(meanD)), N: n,
		}, nil
	}
	tStat := meanD / (sdD / math.Sqrt(float64(n)))
	df := float64(n - 1)
	p := 2 * (1 - StudentTCDF(math.Abs(tStat), df))
	if p < 0 {
		p = 0
	}
	return TTestResult{T: tStat, DF: df, P: p, CohensD: meanD / sdD, N: n}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}
