package stat

import "math"

// NormalPDF returns the density of N(mu, sigma²) at x.
func NormalPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		return math.NaN()
	}
	z := (x - mu) / sigma
	return math.Exp(-z*z/2) / (sigma * math.Sqrt(2*math.Pi))
}

// NormalLogPDF returns the log density of N(mu, sigma²) at x.
func NormalLogPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		return math.NaN()
	}
	z := (x - mu) / sigma
	return -z*z/2 - math.Log(sigma) - 0.5*math.Log(2*math.Pi)
}

// NormalCDF returns P(X ≤ x) for X ~ N(mu, sigma²).
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		return math.NaN()
	}
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// StudentTCDF returns P(T ≤ t) for Student's t with df degrees of freedom.
// The tail probability is computed through the regularized incomplete beta
// function, which is exact up to quadrature error for any df > 0.
func StudentTCDF(t float64, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b),
// evaluated with the Lentz continued-fraction expansion (Numerical Recipes
// style, implemented from the mathematical definition).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	case a <= 0 || b <= 0:
		return math.NaN()
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	// Use the symmetry relation to keep the continued fraction convergent.
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// using the modified Lentz algorithm.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-14
		tiny    = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
