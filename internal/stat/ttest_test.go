package stat

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestPairedTTestKnownExample(t *testing.T) {
	// Classic textbook pairs; differences are {2, 1, 3, 2, 2}:
	// mean = 2, sd = sqrt(0.5), t = 2 / (sqrt(0.5)/sqrt(5)) = 6.3245…
	a := []float64{12, 11, 13, 12, 12}
	b := []float64{10, 10, 10, 10, 10}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.T, 2/(math.Sqrt(0.5)/math.Sqrt(5)), 1e-9) {
		t.Fatalf("t = %v", res.T)
	}
	if res.DF != 4 {
		t.Fatalf("df = %v, want 4", res.DF)
	}
	if !res.Significant(0.05) {
		t.Fatalf("p = %v, expected significant", res.P)
	}
	if !almostEqual(res.CohensD, 2/math.Sqrt(0.5), 1e-9) {
		t.Fatalf("d = %v", res.CohensD)
	}
}

func TestPairedTTestNoDifference(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	n := 200
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		base := rng.NormFloat64()
		a[i] = base + rng.NormFloat64()*0.1
		b[i] = base + rng.NormFloat64()*0.1
	}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.001 {
		t.Fatalf("identical populations came out wildly significant: p = %v", res.P)
	}
}

func TestPairedTTestStrongDifference(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	n := 43 // matches the paper's monthly-dataset count
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = 112 + rng.NormFloat64()*4
		b[i] = 168 + rng.NormFloat64()*7
	}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.T >= 0 {
		t.Fatalf("t = %v, want negative (a < b)", res.T)
	}
	if res.P > 1e-6 {
		t.Fatalf("p = %v, want tiny", res.P)
	}
	if res.CohensD >= -1 {
		t.Fatalf("d = %v, want large negative effect", res.CohensD)
	}
}

func TestPairedTTestErrors(t *testing.T) {
	if _, err := PairedTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	if _, err := PairedTTest([]float64{1}, []float64{2}); err == nil {
		t.Fatal("single pair not rejected")
	}
}

func TestPairedTTestDegenerate(t *testing.T) {
	// Identical samples: zero variance of differences, zero mean difference.
	res, err := PairedTTest([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.T != 0 || res.P != 1 {
		t.Fatalf("identical samples: t=%v p=%v", res.T, res.P)
	}
	// Constant nonzero difference: certain difference.
	res, err = PairedTTest([]float64{2, 3, 4}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.T, 1) || res.P != 0 {
		t.Fatalf("constant difference: t=%v p=%v", res.T, res.P)
	}
}

func TestConfusionMatrixCounts(t *testing.T) {
	var cm ConfusionMatrix
	cm.Add(true, true)
	cm.Add(true, true)
	cm.Add(true, false)
	cm.Add(false, false)
	cm.Add(false, true)
	if cm.PosPos != 2 || cm.PosNeg != 1 || cm.NegPos != 1 || cm.NegNeg != 1 {
		t.Fatalf("counts = %+v", cm)
	}
	if cm.Total() != 5 {
		t.Fatalf("total = %d", cm.Total())
	}
	if got := cm.FalseNegativeRate(); !almostEqual(got, 1.0/3.0, 1e-12) {
		t.Fatalf("FNR = %v", got)
	}
	if got := cm.FalsePositiveRate(); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("FPR = %v", got)
	}
	if got := cm.Accuracy(); !almostEqual(got, 0.6, 1e-12) {
		t.Fatalf("accuracy = %v", got)
	}
}

func TestCohensKappaKnownValue(t *testing.T) {
	// A standard worked example: po = 0.8, pe = 0.54 → κ ≈ 0.5652.
	cm := ConfusionMatrix{PosPos: 45, PosNeg: 5, NegPos: 15, NegNeg: 35}
	want := (0.8 - (0.5*0.6 + 0.5*0.4)) / (1 - (0.5*0.6 + 0.5*0.4))
	if got := cm.CohensKappa(); !almostEqual(got, want, 1e-12) {
		t.Fatalf("kappa = %v, want %v", got, want)
	}
}

func TestCohensKappaPerfectAgreement(t *testing.T) {
	cm := ConfusionMatrix{PosPos: 10, NegNeg: 20}
	if got := cm.CohensKappa(); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("kappa = %v, want 1", got)
	}
}

func TestCohensKappaDegenerateMarginals(t *testing.T) {
	// All observations positive by both raters: pe = 1, po = 1 → define κ=1.
	cm := ConfusionMatrix{PosPos: 10}
	if got := cm.CohensKappa(); got != 1 {
		t.Fatalf("kappa = %v, want 1", got)
	}
	empty := ConfusionMatrix{}
	if got := empty.CohensKappa(); !math.IsNaN(got) {
		t.Fatalf("empty kappa = %v, want NaN", got)
	}
}

func TestConfusionMatrixRatesEmptyDenominators(t *testing.T) {
	cm := ConfusionMatrix{NegNeg: 5}
	if cm.FalseNegativeRate() != 0 {
		t.Fatal("FNR with no positives should be 0")
	}
	cm2 := ConfusionMatrix{PosPos: 5}
	if cm2.FalsePositiveRate() != 0 {
		t.Fatal("FPR with no negatives should be 0")
	}
}
