package stat_test

import (
	"fmt"

	"mictrend/internal/stat"
)

func ExamplePairedTTest() {
	proposed := []float64{110, 113, 108, 112, 115, 111}
	baseline := []float64{168, 170, 160, 166, 172, 169}
	res, _ := stat.PairedTTest(proposed, baseline)
	fmt.Printf("significant at 0.05: %v\n", res.Significant(0.05))
	fmt.Printf("direction: t < 0 is %v\n", res.T < 0)
	// Output:
	// significant at 0.05: true
	// direction: t < 0 is true
}

func ExampleConfusionMatrix_CohensKappa() {
	// Exact vs approximate change point detection outcomes.
	var cm stat.ConfusionMatrix
	for i := 0; i < 423; i++ {
		cm.Add(true, true)
	}
	for i := 0; i < 40; i++ {
		cm.Add(true, false)
	}
	for i := 0; i < 3515; i++ {
		cm.Add(false, false)
	}
	fmt.Printf("kappa = %.3f\n", cm.CohensKappa())
	fmt.Printf("false positives = %d\n", cm.NegPos)
	// Output:
	// kappa = 0.949
	// false positives = 0
}

func ExampleNormalize() {
	z := stat.Normalize([]float64{2, 4, 6, 8})
	fmt.Printf("mean ≈ %.0f, sd ≈ %.0f\n", stat.Mean(z), stat.StdDev(z))
	// Output: mean ≈ 0, sd ≈ 1
}
