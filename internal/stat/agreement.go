package stat

import "math"

// ConfusionMatrix is a 2×2 contingency table counting agreement between two
// binary raters (here: the exact and approximate change point detectors). It
// mirrors the layout of the paper's Table VI.
type ConfusionMatrix struct {
	// Indexing: first word is the exact (reference) outcome, second the
	// approximate (candidate) outcome.
	PosPos int // both positive (change point detected by both)
	PosNeg int // exact positive, approximate negative — false negative
	NegPos int // exact negative, approximate positive — false positive
	NegNeg int // both negative
}

// Add records one observation.
func (c *ConfusionMatrix) Add(exactPositive, approxPositive bool) {
	switch {
	case exactPositive && approxPositive:
		c.PosPos++
	case exactPositive && !approxPositive:
		c.PosNeg++
	case !exactPositive && approxPositive:
		c.NegPos++
	default:
		c.NegNeg++
	}
}

// Total returns the number of observations.
func (c *ConfusionMatrix) Total() int {
	return c.PosPos + c.PosNeg + c.NegPos + c.NegNeg
}

// FalseNegativeRate returns PosNeg / (PosPos + PosNeg): the fraction of
// reference positives the candidate missed. The paper reports this as the
// "rate of false-negative discoveries". Returns 0 when there are no
// reference positives.
func (c *ConfusionMatrix) FalseNegativeRate() float64 {
	den := c.PosPos + c.PosNeg
	if den == 0 {
		return 0
	}
	return float64(c.PosNeg) / float64(den)
}

// FalsePositiveRate returns NegPos / (NegPos + NegNeg). Returns 0 when there
// are no reference negatives.
func (c *ConfusionMatrix) FalsePositiveRate() float64 {
	den := c.NegPos + c.NegNeg
	if den == 0 {
		return 0
	}
	return float64(c.NegPos) / float64(den)
}

// Accuracy returns the fraction of observations on the diagonal.
func (c *ConfusionMatrix) Accuracy() float64 {
	n := c.Total()
	if n == 0 {
		return math.NaN()
	}
	return float64(c.PosPos+c.NegNeg) / float64(n)
}

// CohensKappa returns Cohen's κ for the table: the chance-corrected
// agreement the paper uses to compare the exact and approximate detectors
// ("κ = 0.949 … indicating strong agreement"). Returns NaN for an empty
// table. When the expected agreement is exactly 1 (a degenerate marginal),
// κ is defined here as 1 if the observed agreement is also 1 and 0 otherwise.
func (c *ConfusionMatrix) CohensKappa() float64 {
	n := float64(c.Total())
	if n == 0 {
		return math.NaN()
	}
	po := float64(c.PosPos+c.NegNeg) / n
	exactPos := float64(c.PosPos+c.PosNeg) / n
	approxPos := float64(c.PosPos+c.NegPos) / n
	pe := exactPos*approxPos + (1-exactPos)*(1-approxPos)
	if pe == 1 {
		if po == 1 {
			return 1
		}
		return 0
	}
	return (po - pe) / (1 - pe)
}
