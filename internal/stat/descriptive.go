// Package stat provides the statistical substrate used throughout the
// reproduction: descriptive statistics, the Normal and Student-t
// distributions, paired t-tests with Cohen's d effect sizes, Cohen's kappa
// agreement on confusion matrices, and RMSE — everything the paper's
// evaluation section reports.
package stat

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n−1) sample variance of xs, or NaN when
// fewer than two values are supplied.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Median returns the median of xs, or NaN for an empty slice. The input is
// not modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th quantile of xs (0 ≤ q ≤ 1) using linear
// interpolation between order statistics. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the smallest value in xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	min := xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the largest value in xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	return max
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// RMSE returns the root mean squared error between two equal-length series.
// It returns NaN if the lengths differ or are zero.
func RMSE(actual, predicted []float64) float64 {
	if len(actual) != len(predicted) || len(actual) == 0 {
		return math.NaN()
	}
	var ss float64
	for i, a := range actual {
		d := a - predicted[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(actual)))
}

// Normalize returns xs scaled to zero mean and unit variance. A constant
// series is returned as all zeros. The input is not modified.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	m := Mean(xs)
	sd := StdDev(xs)
	if len(xs) < 2 || sd == 0 || math.IsNaN(sd) {
		return out
	}
	for i, x := range xs {
		out[i] = (x - m) / sd
	}
	return out
}

// MinMaxScale returns xs rescaled to [0, 1]. A constant series is returned
// as all zeros. The input is not modified.
func MinMaxScale(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	lo, hi := Min(xs), Max(xs)
	if hi == lo {
		return out
	}
	for i, x := range xs {
		out[i] = (x - lo) / (hi - lo)
	}
	return out
}
