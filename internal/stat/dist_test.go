package stat

import (
	"math"
	"testing"
)

func TestNormalPDF(t *testing.T) {
	// Standard normal density at 0 is 1/sqrt(2π).
	if got, want := NormalPDF(0, 0, 1), 1/math.Sqrt(2*math.Pi); !almostEqual(got, want, 1e-12) {
		t.Fatalf("NormalPDF(0) = %v, want %v", got, want)
	}
	if got := NormalPDF(1, 1, 2); !almostEqual(got, 1/(2*math.Sqrt(2*math.Pi)), 1e-12) {
		t.Fatalf("NormalPDF mean shift = %v", got)
	}
	if !math.IsNaN(NormalPDF(0, 0, -1)) {
		t.Fatal("negative sigma should be NaN")
	}
}

func TestNormalLogPDFMatchesLog(t *testing.T) {
	for _, x := range []float64{-3, -0.5, 0, 1.2, 4} {
		want := math.Log(NormalPDF(x, 0.3, 1.7))
		if got := NormalLogPDF(x, 0.3, 1.7); !almostEqual(got, want, 1e-10) {
			t.Fatalf("NormalLogPDF(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{3, 0.9986501019683699},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x, 0, 1); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// Reference values from standard t tables.
	check := func(tv, df, want float64) {
		if got := StudentTCDF(tv, df); !almostEqual(got, want, 1e-6) {
			t.Errorf("StudentTCDF(%v, %v) = %v, want %v", tv, df, got, want)
		}
	}
	check(0, 5, 0.5)
	check(2.015048373, 5, 0.95)
	check(2.570581836, 5, 0.975)
	check(-2.570581836, 5, 0.025)
	check(1.644853627, 1e6, 0.95) // huge df approaches the normal
}

func TestStudentTCDFExtremes(t *testing.T) {
	if got := StudentTCDF(math.Inf(1), 3); got != 1 {
		t.Fatalf("CDF(+inf) = %v", got)
	}
	if got := StudentTCDF(math.Inf(-1), 3); got != 0 {
		t.Fatalf("CDF(-inf) = %v", got)
	}
	if !math.IsNaN(StudentTCDF(1, 0)) {
		t.Fatal("df=0 should be NaN")
	}
	// Very large |t| with moderate df should be numerically ~1 / ~0.
	if got := StudentTCDF(100, 42); got < 0.999999 {
		t.Fatalf("CDF(100, 42) = %v", got)
	}
}

func TestStudentTApproachesNormal(t *testing.T) {
	for _, x := range []float64{-2, -1, 0, 0.5, 1.5} {
		tv := StudentTCDF(x, 1e7)
		nv := NormalCDF(x, 0, 1)
		if !almostEqual(tv, nv, 1e-5) {
			t.Fatalf("t CDF with huge df at %v = %v, normal = %v", x, tv, nv)
		}
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if got := RegIncBeta(2, 3, 0); got != 0 {
		t.Fatalf("I_0 = %v", got)
	}
	if got := RegIncBeta(2, 3, 1); got != 1 {
		t.Fatalf("I_1 = %v", got)
	}
	// I_x(1,1) = x (uniform distribution CDF).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); !almostEqual(got, x, 1e-12) {
			t.Fatalf("I_%v(1,1) = %v", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	if got, want := RegIncBeta(2.5, 1.5, 0.3), 1-RegIncBeta(1.5, 2.5, 0.7); !almostEqual(got, want, 1e-10) {
		t.Fatalf("symmetry: %v vs %v", got, want)
	}
}
