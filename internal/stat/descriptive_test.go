package stat

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1, 2, 3}, 2},
		{[]float64{5}, 5},
		{[]float64{-1, 1}, 0},
		{nil, math.NaN()},
	}
	for i, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("case %d: Mean = %v, want %v", i, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 denominator = 32/7.
	if got, want := Variance(xs), 32.0/7.0; !almostEqual(got, want, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("Variance of a single value should be NaN")
	}
}

func TestMedianAndQuantile(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("Median odd = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("Median even = %v, want 2.5", got)
	}
	if got := Quantile([]float64{1, 2, 3, 4, 5}, 0); got != 1 {
		t.Fatalf("Quantile 0 = %v, want 1", got)
	}
	if got := Quantile([]float64{1, 2, 3, 4, 5}, 1); got != 5 {
		t.Fatalf("Quantile 1 = %v, want 5", got)
	}
	if got := Quantile([]float64{1, 2, 3, 4}, 0.25); !almostEqual(got, 1.75, 1e-12) {
		t.Fatalf("Quantile 0.25 = %v, want 1.75", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Quantile([]float64{1}, -0.1)) {
		t.Fatal("invalid quantile inputs should return NaN")
	}
}

func TestQuantileDoesNotModifyInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median modified its input: %v", xs)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 || Sum(xs) != 12 {
		t.Fatalf("Min/Max/Sum = %v/%v/%v", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("Min/Max of empty should be NaN")
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("RMSE identical = %v, want 0", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); !almostEqual(got, math.Sqrt(12.5), 1e-12) {
		t.Fatalf("RMSE = %v", got)
	}
	if !math.IsNaN(RMSE([]float64{1}, []float64{1, 2})) {
		t.Fatal("length mismatch should be NaN")
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	z := Normalize(xs)
	if !almostEqual(Mean(z), 0, 1e-12) {
		t.Fatalf("normalized mean = %v", Mean(z))
	}
	if !almostEqual(StdDev(z), 1, 1e-12) {
		t.Fatalf("normalized sd = %v", StdDev(z))
	}
	constant := Normalize([]float64{7, 7, 7})
	for _, v := range constant {
		if v != 0 {
			t.Fatalf("constant series normalized to %v, want zeros", constant)
		}
	}
}

func TestMinMaxScale(t *testing.T) {
	xs := []float64{10, 20, 30}
	s := MinMaxScale(xs)
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEqual(s[i], want[i], 1e-12) {
			t.Fatalf("MinMaxScale = %v, want %v", s, want)
		}
	}
}

// Property: mean is translation-equivariant and variance translation-invariant.
func TestMeanVarianceShiftProperty(t *testing.T) {
	f := func(seed uint64, shiftRaw int8) bool {
		r := rand.New(rand.NewPCG(seed, 101))
		n := 3 + int(seed%20)
		xs := make([]float64, n)
		shifted := make([]float64, n)
		shift := float64(shiftRaw)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
			shifted[i] = xs[i] + shift
		}
		return almostEqual(Mean(shifted), Mean(xs)+shift, 1e-9) &&
			almostEqual(Variance(shifted), Variance(xs), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 102))
		n := 2 + int(seed%30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.1 {
			qq := math.Min(q, 1)
			v := Quantile(xs, qq)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
