// Package apps implements the paper's §VII analysis applications on top of
// the medication model: geographical prescription spread (per-city models,
// Fig. 8) and inter-hospital prescription gap analysis (per-bed-class
// models, Table II).
package apps

import (
	"context"
	"fmt"
	"sort"

	"mictrend/internal/medmodel"
	"mictrend/internal/mic"
)

// CityCounts maps city name → medicine → estimated prescription count for a
// fixed disease and month.
type CityCounts map[string]map[mic.MedicineID]float64

// PairCountsByCity fits the medication model per city for one month and
// returns each city's estimated prescription counts x_dm of the given
// medicines for the given disease — the quantity Fig. 8 visualizes around a
// generic release.
func PairCountsByCity(ds *mic.Dataset, disease mic.DiseaseID, meds []mic.MedicineID, month int, em medmodel.FitOptions) (CityCounts, error) {
	if month < 0 || month >= ds.T() {
		return nil, fmt.Errorf("apps: month %d outside dataset of %d months", month, ds.T())
	}
	wanted := make(map[mic.MedicineID]bool, len(meds))
	for _, m := range meds {
		wanted[m] = true
	}
	out := make(CityCounts)
	for city, cityDS := range mic.SplitByCity(ds) {
		counts := make(map[mic.MedicineID]float64, len(meds))
		for _, m := range meds {
			counts[m] = 0
		}
		monthRecs := cityDS.Months[month]
		model, err := medmodel.Fit(monthRecs, ds.Medicines.Len(), em)
		if err != nil {
			// A city can have no usable records in a month; report zeros.
			out[city] = counts
			continue
		}
		for i := range monthRecs.Records {
			r := &monthRecs.Records[i]
			for _, med := range r.Medicines {
				if !wanted[med] {
					continue
				}
				q := model.Responsibility(r, med)
				counts[med] += q[disease]
			}
		}
		out[city] = counts
	}
	return out, nil
}

// DiseaseShare is one row of the Table II ranking: the fraction of a
// medicine's estimated prescriptions attributed to a disease.
type DiseaseShare struct {
	Disease mic.DiseaseID
	Ratio   float64 // percentage share in [0, 100]
}

// TopDiseasesForMedicine fits the medication model on every month of ds,
// reproduces the prescription series, and returns the k diseases with the
// largest share of the medicine's total estimated prescriptions
// (ratio as a percentage, like the paper's Table II).
func TopDiseasesForMedicine(ds *mic.Dataset, med mic.MedicineID, k int, em medmodel.FitOptions) ([]DiseaseShare, error) {
	models, fails, err := medmodel.FitAll(context.Background(), ds, em)
	if err != nil {
		return nil, err
	}
	if len(fails) > 0 {
		return nil, fails[0].Err
	}
	series, err := medmodel.Reproduce(ds, models)
	if err != nil {
		return nil, err
	}
	totals := make(map[mic.DiseaseID]float64)
	var grand float64
	for pair, s := range series.Pairs {
		if pair.Medicine != med {
			continue
		}
		var sum float64
		for _, v := range s {
			sum += v
		}
		totals[pair.Disease] += sum
		grand += sum
	}
	if grand == 0 {
		return nil, nil
	}
	shares := make([]DiseaseShare, 0, len(totals))
	for d, v := range totals {
		shares = append(shares, DiseaseShare{Disease: d, Ratio: 100 * v / grand})
	}
	sort.Slice(shares, func(a, b int) bool {
		if shares[a].Ratio != shares[b].Ratio {
			return shares[a].Ratio > shares[b].Ratio
		}
		return shares[a].Disease < shares[b].Disease
	})
	if k < len(shares) {
		shares = shares[:k]
	}
	return shares, nil
}

// PrescriptionGapByClass runs TopDiseasesForMedicine separately on each
// hospital size class — the paper's Table II. Records are split by the
// issuing hospital's bed class and a separate medication model is learned
// per class, so class-specific prescription habits (like small-hospital
// antibiotic misuse for viral colds) surface in the rankings.
func PrescriptionGapByClass(ds *mic.Dataset, med mic.MedicineID, k int, em medmodel.FitOptions) (map[mic.HospitalClass][]DiseaseShare, error) {
	out := make(map[mic.HospitalClass][]DiseaseShare, mic.NumHospitalClasses)
	for class, classDS := range mic.SplitByHospitalClass(ds) {
		shares, err := TopDiseasesForMedicine(classDS, med, k, em)
		if err != nil {
			return nil, fmt.Errorf("apps: class %v: %w", class, err)
		}
		out[class] = shares
	}
	return out, nil
}
