package apps

import (
	"testing"

	"mictrend/internal/medmodel"
	"mictrend/internal/mic"
	"mictrend/internal/micgen"
)

func genCorpus(t *testing.T, months, perMonth int) (*mic.Dataset, *micgen.Truth) {
	t.Helper()
	ds, truth, err := micgen.Generate(micgen.Config{
		Seed:            7,
		Months:          months,
		RecordsPerMonth: perMonth,
		BulkDiseases:    5,
		BulkMedicines:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds, truth
}

func lookupMed(t *testing.T, ds *mic.Dataset, code string) mic.MedicineID {
	t.Helper()
	id, ok := ds.Medicines.Lookup(code)
	if !ok {
		t.Fatalf("medicine %s missing", code)
	}
	return mic.MedicineID(id)
}

func lookupDis(t *testing.T, ds *mic.Dataset, code string) mic.DiseaseID {
	t.Helper()
	id, ok := ds.Diseases.Lookup(code)
	if !ok {
		t.Fatalf("disease %s missing", code)
	}
	return mic.DiseaseID(id)
}

func TestPairCountsByCityGenericSpread(t *testing.T) {
	ds, _ := genCorpus(t, 36, 1500)
	stroke := lookupDis(t, ds, micgen.DiseaseStroke)
	meds := []mic.MedicineID{
		lookupMed(t, ds, micgen.MedicineAntiplOrig),
		lookupMed(t, ds, micgen.MedicineGeneric3),
	}
	before, err := PairCountsByCity(ds, stroke, meds, micgen.GenericReleaseMonth-1, medmodel.FitOptions{MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	later, err := PairCountsByCity(ds, stroke, meds, 34, medmodel.FitOptions{MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 {
		t.Fatal("no cities returned")
	}
	// Before release: no city has generic prescriptions.
	g3 := meds[1]
	for city, counts := range before {
		if counts[g3] > 0 {
			t.Fatalf("city %s used the generic before release", city)
		}
	}
	// One year after: total generic share must be substantial somewhere.
	var totalG3, totalOrig float64
	for _, counts := range later {
		totalG3 += counts[g3]
		totalOrig += counts[meds[0]]
	}
	if totalG3 <= 0 {
		t.Fatal("generic never adopted")
	}
	if totalG3 < 0.3*totalOrig {
		t.Fatalf("authorized generic adoption too weak: %v vs original %v", totalG3, totalOrig)
	}
}

func TestPairCountsByCityBadMonth(t *testing.T) {
	ds, _ := genCorpus(t, 12, 100)
	if _, err := PairCountsByCity(ds, 0, nil, 99, medmodel.FitOptions{}); err == nil {
		t.Fatal("out-of-range month accepted")
	}
}

func TestTopDiseasesForMedicine(t *testing.T) {
	ds, _ := genCorpus(t, 12, 1500)
	abx := lookupMed(t, ds, micgen.MedicineAntibiotic)
	shares, err := TopDiseasesForMedicine(ds, abx, 5, medmodel.FitOptions{MaxIter: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) == 0 {
		t.Fatal("no diseases ranked")
	}
	// Shares must be descending and sum to ≤ 100.
	var sum float64
	for i, s := range shares {
		if i > 0 && s.Ratio > shares[i-1].Ratio {
			t.Fatal("shares not descending")
		}
		sum += s.Ratio
	}
	if sum > 100.0001 {
		t.Fatalf("shares sum to %v", sum)
	}
	// The top disease must be one of the antibiotic's actual targets (or a
	// misuse target): it cannot be, say, hypertension.
	topCode := ds.Diseases.Code(int32(shares[0].Disease))
	if topCode == micgen.DiseaseHypertension {
		t.Fatalf("implausible top disease %s", topCode)
	}
}

func TestTopDiseasesUnknownMedicine(t *testing.T) {
	ds, _ := genCorpus(t, 6, 200)
	// A medicine id that never occurs yields an empty ranking, not an error.
	shares, err := TopDiseasesForMedicine(ds, mic.MedicineID(ds.Medicines.Len()-1)+1000, 5, medmodel.FitOptions{MaxIter: 5})
	if err == nil && len(shares) != 0 {
		t.Fatalf("expected empty ranking, got %v", shares)
	}
}

func TestPrescriptionGapByClass(t *testing.T) {
	ds, _ := genCorpus(t, 12, 2500)
	abx := lookupMed(t, ds, micgen.MedicineAntibiotic)
	gap, err := PrescriptionGapByClass(ds, abx, 10, medmodel.FitOptions{MaxIter: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(gap) != mic.NumHospitalClasses {
		t.Fatalf("classes = %d", len(gap))
	}
	// The paper's Table II signal: viral diseases (cold, influenza) rank
	// higher (larger share) at small hospitals than at large ones.
	viralShare := func(shares []DiseaseShare) float64 {
		var sum float64
		for _, s := range shares {
			code := ds.Diseases.Code(int32(s.Disease))
			if code == micgen.DiseaseCommonCold || code == micgen.DiseaseInfluenza {
				sum += s.Ratio
			}
		}
		return sum
	}
	small := viralShare(gap[mic.SmallHospital])
	large := viralShare(gap[mic.LargeHospital])
	if small <= large {
		t.Fatalf("viral share small=%v should exceed large=%v", small, large)
	}
}
