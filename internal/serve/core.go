package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"mictrend/internal/faultpoint"
	"mictrend/internal/mic"
	"mictrend/internal/obs"
	"mictrend/internal/trend"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrOverloaded means the bounded ingest queue is full; the caller should
	// back off and retry (429 + Retry-After).
	ErrOverloaded = errors.New("serve: ingest queue full")
	// ErrClosing means the core is draining for shutdown and accepts no new
	// work (503).
	ErrClosing = errors.New("serve: shutting down")
	// ErrMonthConflict means the request named a month index that does not
	// match the fold position — a gap, or a replay whose data differs from
	// what that month already committed (409).
	ErrMonthConflict = errors.New("serve: month conflict")
	// ErrPoisoned means a fold crashed (panicked) mid-commit: the store
	// handle can no longer be trusted (a torn WAL frame may sit under the
	// append position), so the core refuses all further work. Restart the
	// process — recovery rolls the store back to its last consistent prefix.
	ErrPoisoned = errors.New("serve: core poisoned by a crashed fold; restart to recover")
)

// Epoch is one immutable published snapshot: the Analysis over the first
// Months months of the corpus, visible to every reader until the next month
// finishes folding in and the core swaps the pointer. Readers never see a
// partially folded month — they hold whichever Epoch was current when they
// asked, fields and all.
type Epoch struct {
	// Seq increments with every publication; 1 is the recovery (or empty)
	// epoch published at startup.
	Seq int64
	// Months is how many months the Analysis covers (0 for the empty epoch).
	Months int
	// Analysis is the complete pipeline output; nil only in the empty epoch
	// of a store with no committed months.
	Analysis *trend.Analysis
	// DiseaseCodes and MedicineCodes snapshot the vocabularies at publish
	// time, in id order, so readers can render codes without touching the
	// fold goroutine's live (growing) vocab.
	DiseaseCodes  []string
	MedicineCodes []string
}

// CoreOptions configures NewCore.
type CoreOptions struct {
	// Dir is the checkpoint directory (required).
	Dir string
	// Trend configures the analysis pipeline. Its Checkpoint field is
	// overwritten with the core's store; Metrics defaults to the core's
	// registry when unset.
	Trend trend.Options
	// QueueDepth bounds the ingest queue; ingests beyond it are shed with
	// ErrOverloaded. Default 8.
	QueueDepth int
	// Retry schedules re-attempts of transiently failed folds. Zero value
	// means DefaultRetryPolicy.
	Retry RetryPolicy
	// Metrics receives the serving counters (serve/recoveries, serve/retries,
	// serve/shed_total), the serve/epoch and serve/queue_depth gauges, and the
	// serve/lineage_transitions{stage} vector; nil allocates a private
	// registry.
	Metrics *obs.Registry
	// Log receives the fold loop's structured records — ingest sheds, retry
	// attempts, fold commits and failures, recovery outcome, poisonings. Nil
	// disables logging at zero cost (the obs.Logger nil contract).
	Log *obs.Logger
	// Trace receives the lineage spans: each ingested month's queue-admit,
	// fold, checkpoint-write, WAL-commit, and epoch-publish stages on
	// obs.LaneServe, correlated by a per-month flow id. Nil disables span
	// emission.
	Trace obs.SpanObserver
	// LineageDepth bounds how many months /v1/status retains lineage for
	// (oldest pruned first). Default 64.
	LineageDepth int
}

// Core is the crash-safe incremental serving engine: a single fold goroutine
// owns the dataset and drains a bounded queue of ingested months, running
// the checkpointed pipeline once per month and publishing each completed
// Analysis as a new Epoch. Concurrent readers use Epoch()'s copy-on-write
// snapshot; ingest is synchronous (the caller waits for its month's fold,
// bounded by its context's deadline).
type Core struct {
	store   *Store
	report  *RecoveryReport
	opts    CoreOptions
	metrics *obs.Registry
	log     *obs.Logger
	lin     *lineageTracker

	lastFoldNS  atomic.Int64 // wall-clock cost of the last completed fold
	publishedAt atomic.Int64 // unix nanos of the last epoch swap

	epoch    atomic.Pointer[Epoch]
	queue    chan *foldTask
	done     chan struct{}
	poisoned atomic.Bool

	mu      sync.Mutex
	closing bool

	ds *mic.Dataset // owned by the fold goroutine after NewCore returns
}

type foldTask struct {
	month    *mic.Dataset // one-month dataset to merge and fold
	want     int          // asserted month index, -1 for "next"
	ctx      context.Context
	reply    chan foldResult
	admitted time.Time // when the task entered the queue
	reqID    string    // correlated request id, "" outside Instrument
}

type foldResult struct {
	month int
	epoch int64
	err   error
}

// NewCore opens (and repairs) the store under opts.Dir, rebuilds the corpus
// from the committed contiguous prefix, starts the fold loop, and schedules
// the recovery analysis as the loop's first unit of work. It returns before
// that analysis finishes; Ready() flips once the first epoch publishes, and
// the returned RecoveryReport says what restoration found.
func NewCore(opts CoreOptions) (*Core, *RecoveryReport, error) {
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 8
	}
	if opts.Retry.Attempts == 0 {
		opts.Retry = DefaultRetryPolicy()
	}
	store, rep, err := Open(opts.Dir, opts.Metrics)
	if err != nil {
		return nil, nil, err
	}
	ds, unservable := store.RebuildDataset()
	for _, u := range unservable {
		rep.Dropped = append(rep.Dropped, DroppedMonth{Month: u.Month, Reason: "unservable: " + u.Reason})
	}
	opts.Trend.Checkpoint = store
	if opts.Trend.Metrics == nil {
		opts.Trend.Metrics = opts.Metrics
	}
	c := &Core{
		store:   store,
		report:  rep,
		opts:    opts,
		metrics: opts.Metrics,
		log:     opts.Log,
		lin:     newLineageTracker(opts.Trace, opts.Metrics, opts.LineageDepth),
		queue:   make(chan *foldTask, opts.QueueDepth),
		done:    make(chan struct{}),
		ds:      ds,
	}
	store.SetCommitObserver(c.lin.commitObserver)
	go c.foldLoop()
	return c, rep, nil
}

// Epoch returns the current published snapshot (nil until the recovery
// analysis publishes the first one).
func (c *Core) Epoch() *Epoch { return c.epoch.Load() }

// Ready reports whether the first epoch has been published — the /readyz
// condition.
func (c *Core) Ready() bool { return c.epoch.Load() != nil }

// Report returns the recovery report from startup.
func (c *Core) Report() *RecoveryReport { return c.report }

// Months returns the number of folded months in the current epoch (0 before
// the first publication).
func (c *Core) Months() int {
	if e := c.epoch.Load(); e != nil {
		return e.Months
	}
	return 0
}

// Ingest merges one month of records — a single-month dataset, typically
// parsed from the JSONL codec — into the corpus, folds it through the
// checkpointed pipeline, and returns the month index it landed at along
// with the epoch that now includes it. want ≥ 0 asserts the month index:
// a mismatched assertion fails with ErrMonthConflict, except a replay of an
// already-committed month with identical records, which succeeds idempotently
// (at-least-once ingest). The call blocks until the fold completes; ctx's
// deadline bounds both the queue wait and the fold itself. When the queue is
// full the ingest is shed immediately with ErrOverloaded.
func (c *Core) Ingest(ctx context.Context, month *mic.Dataset, want int) (int, int64, error) {
	if month.T() != 1 {
		return 0, 0, fmt.Errorf("serve: ingest needs exactly one month, got %d", month.T())
	}
	if c.poisoned.Load() {
		return 0, 0, ErrPoisoned
	}
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		return 0, 0, ErrClosing
	}
	task := &foldTask{
		month: month, want: want, ctx: ctx, reply: make(chan foldResult, 1),
		admitted: time.Now(), reqID: RequestID(ctx),
	}
	select {
	case c.queue <- task:
		c.mu.Unlock()
		c.metrics.Gauge("serve/queue_depth").Set(int64(len(c.queue)))
		if want >= 0 {
			c.lin.admitted(want, task.reqID, task.admitted)
		}
	default:
		c.mu.Unlock()
		c.metrics.Counter("serve/shed_total").Inc()
		if c.log.Enabled() {
			c.log.Warn("ingest shed: queue full",
				slog.String("request_id", task.reqID), slog.Int("want", want))
		}
		return 0, 0, ErrOverloaded
	}
	select {
	case res := <-task.reply:
		return res.month, res.epoch, res.err
	case <-ctx.Done():
		// The fold may still complete and publish; the caller just stopped
		// waiting. At-least-once semantics let it re-assert the month later.
		return 0, 0, ctx.Err()
	}
}

// Close drains gracefully: no new ingests are accepted, every task already
// queued folds to completion, a final clean-shutdown marker lands in the
// WAL, and the store closes. Safe to call more than once.
func (c *Core) Close() error {
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		<-c.done
		return nil
	}
	c.closing = true
	c.mu.Unlock()
	close(c.queue)
	<-c.done
	var err error
	if c.poisoned.Load() {
		// No clean-shutdown marker: a torn frame may sit under the WAL's
		// append position, and writing after it would corrupt the log. The
		// next Open truncates and recovers instead.
		err = ErrPoisoned
	} else {
		var seq int64
		if e := c.epoch.Load(); e != nil {
			seq = e.Seq
		}
		err = c.store.MarkCleanShutdown(seq)
	}
	if cerr := c.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// foldLoop is the single goroutine that owns c.ds: it publishes the recovery
// epoch, then folds queued months one at a time until Close drains it.
func (c *Core) foldLoop() {
	defer close(c.done)
	c.recoverEpoch()
	for task := range c.queue {
		c.metrics.Gauge("serve/queue_depth").Set(int64(len(c.queue)))
		task.reply <- c.safeFold(task)
	}
}

// recoverEpoch runs the startup recovery analysis with the same panic
// containment as safeFold: a crash while re-analyzing the restored corpus
// poisons the core (readyz stays red, every ingest refused) instead of
// killing the process with the WAL handle open.
func (c *Core) recoverEpoch() {
	defer func() {
		if r := recover(); r != nil {
			c.poisoned.Store(true)
			c.metrics.Counter("serve/recovery_analysis_failures").Inc()
			if c.log.Enabled() {
				c.log.Error("recovery analysis panicked; core poisoned", slog.Any("panic", r))
			}
		}
	}()
	c.publishRecoveryEpoch()
}

// safeFold contains a fold panic: the real process would crash here (and
// recovery would repair the store at the next start); in-process we poison
// the core instead, which refuses all further work and skips the
// clean-shutdown marker, leaving the directory exactly as a SIGKILL would.
// This is also what makes every injected crash site testable without
// spawning processes.
func (c *Core) safeFold(task *foldTask) (res foldResult) {
	if c.poisoned.Load() {
		return foldResult{err: ErrPoisoned}
	}
	defer func() {
		if r := recover(); r != nil {
			c.poisoned.Store(true)
			if c.log.Enabled() {
				c.log.Error("fold panicked; core poisoned", slog.Any("panic", r))
			}
			res = foldResult{err: fmt.Errorf("%w: %v", ErrPoisoned, r)}
		}
	}()
	return c.fold(task)
}

// publishRecoveryEpoch analyzes the recovered corpus (reusing every
// committed model via the checkpointer) and publishes epoch 1. An empty
// store publishes an empty epoch immediately; a recovered corpus whose
// analysis fails terminally leaves the core unready — the operator sees
// /readyz stay red and the failure in the log.
func (c *Core) publishRecoveryEpoch() {
	if c.ds.T() == 0 {
		c.publish(&Epoch{Months: 0})
		return
	}
	analysis, err := c.analyze(context.Background())
	if err != nil {
		// Keep serving nothing rather than something wrong. The next
		// successful ingest will re-run the full analysis and publish.
		c.metrics.Counter("serve/recovery_analysis_failures").Inc()
		if c.log.Enabled() {
			c.log.Error("recovery analysis failed; staying unready",
				slog.String("err", err.Error()))
		}
		return
	}
	c.publish(&Epoch{Months: c.ds.T(), Analysis: analysis})
	if c.log.Enabled() {
		c.log.Info("recovery epoch published", slog.Int("months", c.ds.T()))
	}
}

func (c *Core) publish(e *Epoch) {
	var seq int64 = 1
	if cur := c.epoch.Load(); cur != nil {
		seq = cur.Seq + 1
	}
	e.Seq = seq
	e.DiseaseCodes = c.ds.Diseases.Codes()
	e.MedicineCodes = c.ds.Medicines.Codes()
	c.epoch.Store(e)
	c.publishedAt.Store(time.Now().UnixNano())
	c.metrics.Gauge("serve/epoch").Set(seq)
	c.metrics.Gauge("serve/months").Set(int64(e.Months))
}

// fold merges one ingested month into the corpus and re-runs the
// checkpointed analysis. Every month already committed is reloaded from the
// store, so the incremental cost is one month's fit plus detection. On
// terminal failure the merge is unwound and the previous epoch remains
// current — a failed fold is invisible to readers.
func (c *Core) fold(task *foldTask) foldResult {
	next := c.ds.T()
	if task.want >= 0 && task.want != next {
		if task.want < next {
			return c.replay(task)
		}
		return foldResult{err: fmt.Errorf("%w: asserted month %d, next is %d", ErrMonthConflict, task.want, next)}
	}

	foldStart := time.Now()
	c.lin.foldStart(next, task.reqID, task.admitted)
	monthly := c.mergeMonth(task.month, next)
	c.store.StageMonth(next, monthly, c.ds.Diseases.Codes(), c.ds.Medicines.Codes(), c.ds.Hospitals)

	// The request's deadline — not its cancellation — bounds the fold: a
	// client that gives up must not abort a fit that is about to commit
	// durable state (the reply just goes unread).
	ctx := context.Background()
	var cancel context.CancelFunc = func() {}
	if dl, ok := task.ctx.Deadline(); ok {
		ctx, cancel = context.WithDeadline(ctx, dl)
	}
	defer cancel()

	var analysis *trend.Analysis
	_, err := c.opts.Retry.Do(ctx, func() error {
		if err := faultpoint.Inject("serve/fold", monthFile(next)); err != nil {
			return MarkTransient(err) // injected infra faults model retryable I/O
		}
		var aerr error
		analysis, aerr = c.analyze(ctx)
		return aerr
	}, func(attempt int, rerr error) {
		c.metrics.Counter("serve/retries").Inc()
		if c.log.Enabled() {
			c.log.Warn("fold retrying", slog.Int("month", next),
				slog.Int("attempt", attempt), slog.String("err", rerr.Error()))
		}
	})
	if err != nil {
		// Unwind: drop the appended month so the dataset matches the last
		// epoch again. Interned vocabulary entries stay — they are harmless
		// supersets — but the staged records must not leak into a later save.
		c.ds.Months = c.ds.Months[:next]
		c.store.Unstage(next)
		c.lin.failed(next, err)
		if c.log.Enabled() {
			c.log.Error("fold failed; month unwound", slog.Int("month", next),
				slog.String("request_id", task.reqID), slog.String("err", err.Error()))
		}
		return foldResult{err: err}
	}
	e := &Epoch{Months: c.ds.T(), Analysis: analysis}
	c.publish(e)
	elapsed := time.Since(foldStart)
	c.lastFoldNS.Store(int64(elapsed))
	c.metrics.Gauge("serve/last_fold_ms").Set(elapsed.Milliseconds())
	c.lin.published(next, e.Seq)
	if c.log.Enabled() {
		c.log.Info("fold committed", slog.Int("month", next),
			slog.Int64("epoch", e.Seq), slog.String("request_id", task.reqID),
			slog.Duration("elapsed", elapsed))
	}
	return foldResult{month: next, epoch: e.Seq}
}

// replay handles an asserted month that is already committed: identical
// records succeed idempotently with the current epoch, different records
// conflict.
func (c *Core) replay(task *foldTask) foldResult {
	existing := c.ds.Months[task.want]
	incoming := c.remapMonth(task.month, task.want)
	if !monthliesEqual(existing, incoming) {
		return foldResult{err: fmt.Errorf("%w: month %d already committed with different records", ErrMonthConflict, task.want)}
	}
	e := c.epoch.Load()
	var seq int64
	if e != nil {
		seq = e.Seq
	}
	return foldResult{month: task.want, epoch: seq}
}

// mergeMonth interns the incoming month's vocabulary and hospitals into the
// corpus, remaps its records, and appends it as month index at.
func (c *Core) mergeMonth(in *mic.Dataset, at int) *mic.Monthly {
	monthly := c.remapMonth(in, at)
	c.ds.Months = append(c.ds.Months, monthly)
	return monthly
}

// remapMonth translates the single month of in into the serving corpus's id
// space, interning any new disease/medicine codes and appending any new
// hospitals (matched by code).
func (c *Core) remapMonth(in *mic.Dataset, at int) *mic.Monthly {
	dmap := make([]mic.DiseaseID, in.Diseases.Len())
	for i := range dmap {
		dmap[i] = mic.DiseaseID(c.ds.Diseases.Intern(in.Diseases.Code(int32(i))))
	}
	mmap := make([]mic.MedicineID, in.Medicines.Len())
	for i := range mmap {
		mmap[i] = mic.MedicineID(c.ds.Medicines.Intern(in.Medicines.Code(int32(i))))
	}
	hmap := make([]mic.HospitalID, len(in.Hospitals))
	byCode := make(map[string]mic.HospitalID, len(c.ds.Hospitals))
	for i, h := range c.ds.Hospitals {
		byCode[h.Code] = mic.HospitalID(i)
	}
	for i, h := range in.Hospitals {
		id, ok := byCode[h.Code]
		if !ok {
			id = c.ds.AddHospital(h)
			byCode[h.Code] = id
		}
		hmap[i] = id
	}
	src := in.Months[0]
	out := &mic.Monthly{Month: at, Records: make([]mic.Record, len(src.Records))}
	for i := range src.Records {
		r := &src.Records[i]
		nr := mic.Record{Patient: r.Patient}
		if int(r.Hospital) < len(hmap) {
			nr.Hospital = hmap[r.Hospital]
		}
		nr.Diseases = make([]mic.DiseaseCount, len(r.Diseases))
		for j, dc := range r.Diseases {
			nr.Diseases[j] = mic.DiseaseCount{Disease: dmap[dc.Disease], Count: dc.Count}
		}
		nr.Medicines = make([]mic.MedicineID, len(r.Medicines))
		for j, m := range r.Medicines {
			nr.Medicines[j] = mmap[m]
		}
		out.Records[i] = nr
	}
	return out
}

// analyze runs the checkpointed pipeline over the whole corpus, wrapping
// infrastructure errors (checkpoint commits, injected faults) as transient
// so the retry policy covers them; pipeline-semantic errors (empty corpus,
// context expiry) stay terminal.
func (c *Core) analyze(ctx context.Context) (*trend.Analysis, error) {
	analysis, err := trend.Analyze(ctx, c.ds, c.opts.Trend)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, mic.ErrEmptyDataset) {
			return nil, err
		}
		return nil, MarkTransient(err)
	}
	return analysis, nil
}

func monthliesEqual(a, b *mic.Monthly) bool {
	if len(a.Records) != len(b.Records) {
		return false
	}
	for i := range a.Records {
		ra, rb := &a.Records[i], &b.Records[i]
		if ra.Hospital != rb.Hospital || ra.Patient != rb.Patient ||
			len(ra.Diseases) != len(rb.Diseases) || len(ra.Medicines) != len(rb.Medicines) {
			return false
		}
		for j := range ra.Diseases {
			if ra.Diseases[j] != rb.Diseases[j] {
				return false
			}
		}
		for j := range ra.Medicines {
			if ra.Medicines[j] != rb.Medicines[j] {
				return false
			}
		}
	}
	return true
}
