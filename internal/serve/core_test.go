package serve

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"mictrend/internal/faultpoint"
	"mictrend/internal/obs"
)

func TestCoreIngestLifecycle(t *testing.T) {
	src := genServeCorpus(t, 4)
	c, rep, metrics := newTestCore(t, t.TempDir())
	if rep.Recovered() {
		t.Fatalf("fresh core reported recovery: %v", rep)
	}
	e := waitReady(t, c)
	if e.Seq != 1 || e.Months != 0 || e.Analysis != nil {
		t.Fatalf("empty store's first epoch = %+v, want seq 1, 0 months", e)
	}

	for i := 0; i < 4; i++ {
		idx, seq, err := c.Ingest(context.Background(), monthSlice(t, src, i), -1)
		if err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
		if idx != i {
			t.Fatalf("month landed at %d, want %d", idx, i)
		}
		if seq != int64(i+2) {
			t.Fatalf("epoch after month %d = %d, want %d", i, seq, i+2)
		}
	}
	e = c.Epoch()
	if e.Months != 4 {
		t.Fatalf("final epoch covers %d months, want 4", e.Months)
	}
	if want := controlAnalysis(t, src, 4); !reflect.DeepEqual(e.Analysis, want) {
		t.Fatal("served analysis differs from the plain pipeline over the same corpus")
	}
	if len(e.DiseaseCodes) == 0 || len(e.MedicineCodes) == 0 {
		t.Fatal("epoch vocab snapshots are empty")
	}
	if got := metrics.Gauge("serve/epoch").Value(); got != 5 {
		t.Fatalf("serve/epoch gauge = %d, want 5", got)
	}
	if got := metrics.Gauge("serve/months").Value(); got != 4 {
		t.Fatalf("serve/months gauge = %d, want 4", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCoreCleanRestartResumes(t *testing.T) {
	src := genServeCorpus(t, 4)
	dir := t.TempDir()
	c, _, _ := newTestCore(t, dir)
	waitReady(t, c)
	ingestRange(t, c, src, 0, 2)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, rep, metrics := newTestCore(t, dir)
	if !rep.CleanShutdown {
		t.Fatal("graceful drain not recognized as a clean shutdown")
	}
	if !reflect.DeepEqual(rep.Months, []int{0, 1}) {
		t.Fatalf("recovered months = %v, want [0 1]", rep.Months)
	}
	if got := metrics.Counter("serve/recoveries").Value(); got != 1 {
		t.Fatalf("serve/recoveries = %d, want 1", got)
	}
	e := waitReady(t, c2)
	if e.Months != 2 {
		t.Fatalf("recovery epoch covers %d months, want 2", e.Months)
	}
	if want := controlAnalysis(t, src, 2); !reflect.DeepEqual(e.Analysis, want) {
		t.Fatal("recovery analysis differs from the plain pipeline")
	}
	// Every recovered model is reused, never refitted.
	if got := metrics.Counter("trend/ckpt_months_reused").Value(); got != 2 {
		t.Fatalf("reused %d checkpointed months during recovery, want 2", got)
	}
	ingestRange(t, c2, src, 2, 4)
	if want := controlAnalysis(t, src, 4); !reflect.DeepEqual(c2.Epoch().Analysis, want) {
		t.Fatal("post-restart ingest diverged from the plain pipeline")
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCoreCrashRecoveryByteIdentical is the tentpole contract: a crash
// injected at every stage boundary of the month-3 commit path loses only the
// in-flight month, and after restart plus re-ingest the final Analysis is
// bit-identical to an uninterrupted run. Crashes are simulated in-process:
// the injected panic poisons the core, which skips the clean-shutdown marker
// and leaves the directory exactly as a SIGKILL would.
func TestCoreCrashRecoveryByteIdentical(t *testing.T) {
	src := genServeCorpus(t, 4)
	control := controlAnalysis(t, src, 4)
	sites := []struct {
		name  string
		point string
		spec  faultpoint.Spec
	}{
		// Before the analysis starts.
		{"pre-analysis", "serve/fold", faultpoint.Spec{Panic: true}},
		// While reloading a committed month inside the pipeline.
		{"checkpoint-load", "trend/ckpt-load", faultpoint.Spec{
			Panic: true, Match: func(d string) bool { return d == "month-1" },
		}},
		// While persisting the freshly fitted month.
		{"checkpoint-save", "trend/ckpt-save", faultpoint.Spec{
			Panic: true, Match: func(d string) bool { return d == "month-2" },
		}},
		// Before the month file write.
		{"month-write", "serve/month-write", faultpoint.Spec{Panic: true}},
		// After the rename, before the WAL append: the classic torn commit.
		{"pre-wal", "serve/crash-pre-wal", faultpoint.Spec{Panic: true}},
		// Mid WAL append: half a frame lands on disk (the site itself writes
		// the torn frame, then panics).
		{"wal-torn", "serve/wal-torn", faultpoint.Spec{}},
	}
	for _, tc := range sites {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c, _, _ := newTestCore(t, dir)
			waitReady(t, c)
			ingestRange(t, c, src, 0, 2)

			faultpoint.Enable(tc.point, tc.spec)
			_, _, err := c.Ingest(context.Background(), monthSlice(t, src, 2), 2)
			faultpoint.Reset()
			if !errors.Is(err, ErrPoisoned) {
				t.Fatalf("crashed ingest returned %v, want ErrPoisoned", err)
			}
			// A poisoned core refuses everything and will not write the
			// clean-shutdown marker.
			if _, _, err := c.Ingest(context.Background(), monthSlice(t, src, 2), 2); !errors.Is(err, ErrPoisoned) {
				t.Fatalf("post-crash ingest returned %v, want ErrPoisoned", err)
			}
			if err := c.Close(); !errors.Is(err, ErrPoisoned) {
				t.Fatalf("poisoned Close returned %v, want ErrPoisoned", err)
			}

			// Restart: recovery rolls back to the last committed prefix.
			c2, rep, _ := newTestCore(t, dir)
			defer c2.Close()
			if rep.CleanShutdown {
				t.Fatal("a crash was reported as a clean shutdown")
			}
			if !reflect.DeepEqual(rep.Months, []int{0, 1}) {
				t.Fatalf("recovered months = %v, want [0 1]", rep.Months)
			}
			if tc.point == "serve/wal-torn" && rep.TruncatedBytes == 0 {
				t.Fatal("torn WAL frame was not truncated")
			}
			if tc.point == "serve/crash-pre-wal" && rep.Orphans == 0 {
				t.Fatal("orphaned month file was not swept")
			}
			e := waitReady(t, c2)
			if e.Months != 2 {
				t.Fatalf("recovery epoch covers %d months, want 2", e.Months)
			}
			if want := controlAnalysis(t, src, 2); !reflect.DeepEqual(e.Analysis, want) {
				t.Fatal("recovery analysis differs from the uninterrupted 2-month run")
			}

			// Re-ingest the lost month and the one after: byte identity.
			ingestRange(t, c2, src, 2, 4)
			got := c2.Epoch()
			if got.Months != 4 {
				t.Fatalf("final epoch covers %d months, want 4", got.Months)
			}
			if !reflect.DeepEqual(got.Analysis, control) {
				t.Fatal("recovered run's analysis is not byte-identical to the uninterrupted run")
			}
			if err := c2.Close(); err != nil {
				t.Fatalf("clean close after recovery: %v", err)
			}
		})
	}
}

// TestCoreEpochConsistencyUnderIngest hammers Epoch() from reader goroutines
// while months fold in. Under -race this also proves readers never touch the
// fold goroutine's live state: sequence numbers are monotonic, the model
// count always matches the epoch's month count, and every detection id
// resolves inside the epoch's own vocab snapshot.
func TestCoreEpochConsistencyUnderIngest(t *testing.T) {
	src := genServeCorpus(t, 5)
	c, _, _ := newTestCore(t, t.TempDir())
	defer c.Close()
	waitReady(t, c)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSeq int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := c.Epoch()
				if e == nil {
					continue
				}
				if e.Seq < lastSeq {
					t.Errorf("epoch sequence went backwards: %d after %d", e.Seq, lastSeq)
					return
				}
				lastSeq = e.Seq
				if e.Analysis == nil {
					continue
				}
				if len(e.Analysis.Models) != e.Months {
					t.Errorf("torn epoch: %d models for %d months", len(e.Analysis.Models), e.Months)
					return
				}
				for _, det := range e.Analysis.Prescriptions {
					if int(det.Disease) >= len(e.DiseaseCodes) || int(det.Medicine) >= len(e.MedicineCodes) {
						t.Error("detection references an id outside the epoch's vocab snapshot")
						return
					}
				}
			}
		}()
	}
	ingestRange(t, c, src, 0, 5)
	close(stop)
	wg.Wait()
}

func TestCoreShedsWhenQueueFull(t *testing.T) {
	src := genServeCorpus(t, 3)
	metrics := obs.NewRegistry()
	c, _, err := NewCore(CoreOptions{
		Dir: t.TempDir(), Trend: servingTrendOptions(), Metrics: metrics, QueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitReady(t, c)

	// Slow every fold down without failing it, so the queue backs up
	// deterministically: Delay applies even to non-firing hits.
	faultpoint.Enable("serve/fold", faultpoint.Spec{
		Delay: 300 * time.Millisecond,
		Match: func(string) bool { return false },
	})
	defer faultpoint.Reset()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(1)
	go func() { defer wg.Done(); _, _, errs[0] = c.Ingest(context.Background(), monthSlice(t, src, 0), 0) }()
	// Wait until the first fold is inside the slow fault site.
	for deadline := time.Now().Add(10 * time.Second); faultpoint.Hits("serve/fold") == 0; {
		if time.Now().After(deadline) {
			t.Fatal("first ingest never reached the fold")
		}
		time.Sleep(time.Millisecond)
	}
	wg.Add(1)
	go func() { defer wg.Done(); _, _, errs[1] = c.Ingest(context.Background(), monthSlice(t, src, 1), 1) }()
	// Wait until the second task occupies the queue's single slot.
	for deadline := time.Now().Add(10 * time.Second); len(c.queue) == 0; {
		if time.Now().After(deadline) {
			t.Fatal("second ingest never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full, fold busy: the third ingest must shed immediately.
	_, _, err = c.Ingest(context.Background(), monthSlice(t, src, 2), 2)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third ingest returned %v, want ErrOverloaded", err)
	}
	if got := metrics.Counter("serve/shed_total").Value(); got != 1 {
		t.Fatalf("serve/shed_total = %d, want 1", got)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			t.Fatalf("queued ingest %d failed: %v", i, e)
		}
	}
	if c.Months() != 2 {
		t.Fatalf("months after shedding = %d, want 2", c.Months())
	}
}

func TestCoreReplayAndConflict(t *testing.T) {
	src := genServeCorpus(t, 4)
	c, _, _ := newTestCore(t, t.TempDir())
	defer c.Close()
	waitReady(t, c)
	ingestRange(t, c, src, 0, 2)
	before := c.Epoch()

	// Identical replay of a committed month: idempotent success, no new epoch.
	idx, seq, err := c.Ingest(context.Background(), monthSlice(t, src, 1), 1)
	if err != nil || idx != 1 {
		t.Fatalf("idempotent replay = (%d, %v), want month 1, nil", idx, err)
	}
	if seq != before.Seq {
		t.Fatalf("replay advanced the epoch to %d", seq)
	}

	// Same index, different records: conflict.
	if _, _, err := c.Ingest(context.Background(), monthSlice(t, src, 2), 1); !errors.Is(err, ErrMonthConflict) {
		t.Fatalf("divergent replay returned %v, want ErrMonthConflict", err)
	}
	// A gap ahead of the fold position: conflict.
	if _, _, err := c.Ingest(context.Background(), monthSlice(t, src, 3), 5); !errors.Is(err, ErrMonthConflict) {
		t.Fatalf("gap assert returned %v, want ErrMonthConflict", err)
	}
	// More than one month per ingest is a caller bug.
	if _, _, err := c.Ingest(context.Background(), src, -1); err == nil {
		t.Fatal("multi-month ingest accepted")
	}
	if c.Months() != 2 || c.Epoch().Seq != before.Seq {
		t.Fatal("rejected ingests mutated the published state")
	}
}

func TestCoreDeadlineUnwindsFold(t *testing.T) {
	src := genServeCorpus(t, 2)
	c, _, _ := newTestCore(t, t.TempDir())
	defer c.Close()
	waitReady(t, c)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := c.Ingest(ctx, monthSlice(t, src, 0), 0); err == nil {
		t.Fatal("expired deadline did not fail the ingest")
	}
	// The failed fold unwound completely: month 0 is still the next slot and
	// folds cleanly with a live context.
	ingestRange(t, c, src, 0, 2)
	e := c.Epoch()
	if e.Months != 2 {
		t.Fatalf("months = %d, want 2", e.Months)
	}
	if want := controlAnalysis(t, src, 2); !reflect.DeepEqual(e.Analysis, want) {
		t.Fatal("analysis after an unwound fold differs from the plain pipeline")
	}
}

func TestCoreRetriesTransientFold(t *testing.T) {
	src := genServeCorpus(t, 1)
	metrics := obs.NewRegistry()
	c, _, err := NewCore(CoreOptions{
		Dir: t.TempDir(), Trend: servingTrendOptions(), Metrics: metrics,
		Retry: RetryPolicy{Attempts: 3, Sleep: func(time.Duration) {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitReady(t, c)

	// First two attempts hit the injected fault, the third succeeds.
	faultpoint.Enable("serve/fold", faultpoint.Spec{Count: 2})
	defer faultpoint.Reset()
	if _, _, err := c.Ingest(context.Background(), monthSlice(t, src, 0), 0); err != nil {
		t.Fatalf("ingest did not survive transient faults: %v", err)
	}
	if got := metrics.Counter("serve/retries").Value(); got != 2 {
		t.Fatalf("serve/retries = %d, want 2", got)
	}
	if c.Months() != 1 {
		t.Fatalf("months = %d, want 1", c.Months())
	}
}

func TestCoreRetryBudgetExhaustedUnwinds(t *testing.T) {
	src := genServeCorpus(t, 1)
	c, _, err := NewCore(CoreOptions{
		Dir: t.TempDir(), Trend: servingTrendOptions(), Metrics: obs.NewRegistry(),
		Retry: RetryPolicy{Attempts: 2, Sleep: func(time.Duration) {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitReady(t, c)

	faultpoint.Enable("serve/fold", faultpoint.Spec{}) // every attempt fails
	_, _, ierr := c.Ingest(context.Background(), monthSlice(t, src, 0), 0)
	faultpoint.Reset()
	if ierr == nil || !strings.Contains(ierr.Error(), "giving up after 2 attempts") {
		t.Fatalf("exhausted ingest returned %v", ierr)
	}
	if c.Months() != 0 {
		t.Fatal("failed ingest left months behind")
	}
	// The unwind is complete: the same month folds cleanly afterwards.
	if _, _, err := c.Ingest(context.Background(), monthSlice(t, src, 0), 0); err != nil {
		t.Fatalf("ingest after exhausted retries: %v", err)
	}
}

// TestCoreRecoveryAnalysisFailureStaysUnready: when the startup re-analysis
// fails, the core publishes nothing (readyz stays red) but remains usable —
// the next successful ingest analyzes from scratch and publishes.
func TestCoreRecoveryAnalysisFailureStaysUnready(t *testing.T) {
	src := genServeCorpus(t, 3)
	dir := t.TempDir()
	c, _, _ := newTestCore(t, dir)
	waitReady(t, c)
	ingestRange(t, c, src, 0, 2)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Fail month 0's reload so recovery refits it, then fail the refit's
	// checkpoint commit: the whole recovery analysis errors terminally.
	faultpoint.Enable("trend/ckpt-load", faultpoint.Spec{
		Err: errors.New("disk hiccup"), Match: func(d string) bool { return d == "month-0" },
	})
	faultpoint.Enable("trend/ckpt-save", faultpoint.Spec{
		Err: errors.New("disk full"), Match: func(d string) bool { return d == "month-0" },
	})
	metrics := obs.NewRegistry()
	c2, _, err := NewCore(CoreOptions{Dir: dir, Trend: servingTrendOptions(), Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	deadline := time.Now().Add(30 * time.Second)
	for metrics.Counter("serve/recovery_analysis_failures").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("recovery analysis failure never recorded")
		}
		time.Sleep(2 * time.Millisecond)
	}
	faultpoint.Reset()
	if c2.Ready() {
		t.Fatal("core went ready despite a failed recovery analysis")
	}
	// The corpus is intact; the next ingest re-analyzes and publishes.
	ingestRange(t, c2, src, 2, 3)
	e := c2.Epoch()
	if e == nil || e.Months != 3 {
		t.Fatalf("epoch after post-recovery ingest = %+v, want 3 months", e)
	}
	if want := controlAnalysis(t, src, 3); !reflect.DeepEqual(e.Analysis, want) {
		t.Fatal("post-recovery analysis differs from the plain pipeline")
	}
}

// TestCoreRecoveryPanicPoisons: a panic during the startup analysis must not
// kill the process (the WAL handle is open) — it poisons the core, which
// stays unready and refuses work until restarted.
func TestCoreRecoveryPanicPoisons(t *testing.T) {
	src := genServeCorpus(t, 2)
	dir := t.TempDir()
	c, _, _ := newTestCore(t, dir)
	waitReady(t, c)
	ingestRange(t, c, src, 0, 2)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	faultpoint.Enable("trend/ckpt-load", faultpoint.Spec{
		Panic: true, Match: func(d string) bool { return d == "month-0" },
	})
	metrics := obs.NewRegistry()
	c2, _, err := NewCore(CoreOptions{Dir: dir, Trend: servingTrendOptions(), Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for metrics.Counter("serve/recovery_analysis_failures").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("recovery panic never recorded")
		}
		time.Sleep(2 * time.Millisecond)
	}
	faultpoint.Reset()
	if c2.Ready() {
		t.Fatal("core went ready after a recovery panic")
	}
	if _, _, err := c2.Ingest(context.Background(), monthSlice(t, src, 0), 0); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("ingest on a poisoned core returned %v, want ErrPoisoned", err)
	}
	if err := c2.Close(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("poisoned Close returned %v, want ErrPoisoned", err)
	}

	// The restart after the restart: everything is still there.
	c3, rep, _ := newTestCore(t, dir)
	defer c3.Close()
	if !reflect.DeepEqual(rep.Months, []int{0, 1}) {
		t.Fatalf("months = %v, want [0 1]", rep.Months)
	}
	e := waitReady(t, c3)
	if e.Months != 2 {
		t.Fatalf("epoch covers %d months, want 2", e.Months)
	}
}

func TestCoreCloseIsIdempotentAndRefusesIngest(t *testing.T) {
	src := genServeCorpus(t, 1)
	c, _, _ := newTestCore(t, t.TempDir())
	waitReady(t, c)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, _, err := c.Ingest(context.Background(), monthSlice(t, src, 0), 0); !errors.Is(err, ErrClosing) {
		t.Fatalf("ingest after Close returned %v, want ErrClosing", err)
	}
}
