package serve

import (
	"sort"
	"sync"
	"time"

	"mictrend/internal/obs"
)

// Lineage states. An ingested month moves through them in order — queued at
// ingest admission, folding when the fold goroutine picks it up, checkpointed
// when its month file is durably renamed into place, wal-committed when the
// WAL record referencing that file is fsynced (the commit point recovery
// honors), published when the epoch containing it swaps in — or drops to
// failed from any of them (the merge is unwound and the previous epoch stays
// current).
const (
	LineageQueued       = "queued"
	LineageFolding      = "folding"
	LineageCheckpointed = "checkpointed"
	LineageCommitted    = "wal-committed"
	LineagePublished    = "published"
	LineageFailed       = "failed"
)

// MonthLineage is one ingested month's progress through the serving plane's
// durable pipeline, as reported by /v1/status.
type MonthLineage struct {
	Month     int       `json:"month"`
	State     string    `json:"state"`
	RequestID string    `json:"request_id,omitempty"`
	Epoch     int64     `json:"epoch,omitempty"`
	UpdatedAt time.Time `json:"updated_at"`
	Error     string    `json:"error,omitempty"`
}

// lineageTracker records each ingested month's stage transitions, emitting a
// LaneServe span per completed stage (correlated by a per-month Flow id, so a
// month's whole queue→fold→checkpoint→wal→publish path renders as one arrow
// chain in the trace) and a serve/lineage_transitions{stage} count per
// transition. All methods are goroutine-safe; a tracker with a nil trace and
// nil metrics still tracks states for /v1/status.
type lineageTracker struct {
	trace       obs.SpanObserver
	transitions *obs.CounterVec // serve/lineage_transitions{stage}
	keep        int             // retained months, oldest pruned first

	mu     sync.Mutex
	months map[int]*monthLineage
	order  []int // admission order, for pruning
}

type monthLineage struct {
	MonthLineage
	stageStart time.Time // when the current state was entered
}

// flowID is the trace flow correlating one month's lineage spans; month
// indices start at 0 and flow id 0 means "no flow", hence the offset.
func flowID(month int) int64 { return int64(month) + 1 }

func newLineageTracker(trace obs.SpanObserver, metrics *obs.Registry, keep int) *lineageTracker {
	if keep <= 0 {
		keep = 64
	}
	return &lineageTracker{
		trace:       trace,
		transitions: metrics.CounterVec("serve/lineage_transitions", "stage"),
		keep:        keep,
		months:      make(map[int]*monthLineage),
	}
}

// get returns the tracked entry for month, creating it in state at t when
// absent (and pruning the oldest entry beyond the retention bound).
func (l *lineageTracker) get(month int, state string, t time.Time) *monthLineage {
	m, ok := l.months[month]
	if !ok {
		m = &monthLineage{
			MonthLineage: MonthLineage{Month: month, State: state, UpdatedAt: t},
			stageStart:   t,
		}
		l.months[month] = m
		l.order = append(l.order, month)
		if len(l.order) > l.keep {
			delete(l.months, l.order[0])
			l.order = l.order[1:]
		}
		l.transitions.With(state).Inc()
	}
	return m
}

// transition moves month into state at t, emits the span covering the stage
// just left (named span, on LaneServe, in month's flow), and counts the
// transition. A month that was never admitted — a recovery refit hitting the
// commit observer, say — is ignored: lineage covers ingested months only.
func (l *lineageTracker) transition(month int, state, span string, t time.Time, errMsg string) {
	l.mu.Lock()
	m, ok := l.months[month]
	if !ok {
		l.mu.Unlock()
		return
	}
	start := m.stageStart
	m.State = state
	m.UpdatedAt = t
	m.stageStart = t
	if errMsg != "" {
		m.Error = errMsg
	}
	l.mu.Unlock()

	l.transitions.With(state).Inc()
	if l.trace != nil && span != "" {
		l.trace(obs.SpanEvent{
			Cat: "serve", Name: span, TID: obs.LaneServe,
			Start: start, Duration: t.Sub(start),
			Month: month, Err: errMsg,
			Flow: flowID(month),
		})
	}
}

// admitted marks month queued as of t (called from Ingest when the asserted
// month index is known, and retroactively from the fold goroutine otherwise).
func (l *lineageTracker) admitted(month int, reqID string, t time.Time) {
	l.mu.Lock()
	m := l.get(month, LineageQueued, t)
	if m.RequestID == "" {
		m.RequestID = reqID
	}
	l.mu.Unlock()
}

// foldStart marks month folding, closing its queued stage with a serve/queue
// span running from admission to fold pickup.
func (l *lineageTracker) foldStart(month int, reqID string, admitted time.Time) {
	l.admitted(month, reqID, admitted)
	l.transition(month, LineageFolding, "serve/queue", time.Now(), "")
}

// commitObserver is the Store.SetCommitObserver hook: "checkpoint" closes the
// folding stage (the fit ran between fold pickup and the first durable byte),
// "wal" closes the checkpoint stage at the real commit point.
func (l *lineageTracker) commitObserver(month int, phase string) {
	switch phase {
	case "checkpoint":
		l.transition(month, LineageCheckpointed, "serve/fold", time.Now(), "")
	case "wal":
		l.transition(month, LineageCommitted, "serve/checkpoint", time.Now(), "")
	}
}

// published marks month live in epoch seq, closing the WAL stage with a
// serve/wal span and stamping a zero-width serve/publish span at the swap.
func (l *lineageTracker) published(month int, seq int64) {
	now := time.Now()
	l.transition(month, LineagePublished, "serve/wal", now, "")
	l.mu.Lock()
	if m, ok := l.months[month]; ok {
		m.Epoch = seq
	}
	l.mu.Unlock()
	if l.trace != nil {
		l.trace(obs.SpanEvent{
			Cat: "serve", Name: "serve/publish", TID: obs.LaneServe,
			Start: now, Month: month, Flow: flowID(month),
		})
	}
}

// failed marks month failed from whatever stage it was in, closing that stage
// with an error-carrying span.
func (l *lineageTracker) failed(month int, err error) {
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	l.transition(month, LineageFailed, "serve/fold", time.Now(), msg)
}

// snapshot returns the tracked lineages in month order.
func (l *lineageTracker) snapshot() []MonthLineage {
	l.mu.Lock()
	out := make([]MonthLineage, 0, len(l.months))
	for _, m := range l.months {
		out = append(out, m.MonthLineage)
	}
	l.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Month < out[b].Month })
	return out
}

// Status is the /v1/status payload: the serving plane's operational picture —
// readiness, current epoch and its age, ingest queue pressure, the last
// fold's wall-clock cost, per-month lineage, and the startup recovery report.
type Status struct {
	Ready           bool            `json:"ready"`
	Poisoned        bool            `json:"poisoned"`
	Epoch           int64           `json:"epoch"`
	Months          int             `json:"months"`
	EpochAgeSeconds float64         `json:"epoch_age_seconds"`
	QueueDepth      int             `json:"queue_depth"`
	QueueCapacity   int             `json:"queue_capacity"`
	LastFoldSeconds float64         `json:"last_fold_seconds,omitempty"`
	Lineage         []MonthLineage  `json:"lineage"`
	Recovery        *RecoveryReport `json:"recovery,omitempty"`
}

// Status reports the serving plane's current operational state.
func (c *Core) Status() Status {
	s := Status{
		Ready:         c.Ready(),
		Poisoned:      c.poisoned.Load(),
		QueueDepth:    len(c.queue),
		QueueCapacity: cap(c.queue),
		Lineage:       c.lin.snapshot(),
		Recovery:      c.report,
	}
	if e := c.Epoch(); e != nil {
		s.Epoch = e.Seq
		s.Months = e.Months
	}
	if at := c.publishedAt.Load(); at != 0 {
		s.EpochAgeSeconds = time.Since(time.Unix(0, at)).Seconds()
	}
	if ns := c.lastFoldNS.Load(); ns != 0 {
		s.LastFoldSeconds = float64(ns) / 1e9
	}
	return s
}
