package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mictrend/internal/faultpoint"
	"mictrend/internal/mic"
	"mictrend/internal/obs"
)

// postMonth ingests month i of src through the HTTP surface, asserting index
// want, and returns the status code and decoded (or raw) body.
func postMonth(t *testing.T, url string, src *mic.Dataset, i, want int) (int, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := mic.Write(&buf, monthSlice(t, src, i)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/ingest?month="+strconv.Itoa(want), "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func get(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

func TestHTTPIngestAndQuery(t *testing.T) {
	// Six months: the state-space detection needs that many points before a
	// series scan can succeed, and the failures list empties out.
	const months = 6
	src := genServeCorpus(t, months)
	c, _, _ := newTestCore(t, t.TempDir())
	defer c.Close()
	srv := httptest.NewServer(NewHandler(c, HandlerOptions{}))
	defer srv.Close()
	waitReady(t, c)

	if code, _, _ := get(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	if code, _, _ := get(t, srv.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d after the first epoch", code)
	}

	for i := 0; i < months; i++ {
		code, body := postMonth(t, srv.URL, src, i, i)
		if code != http.StatusOK {
			t.Fatalf("ingest month %d = %d: %s", i, code, body)
		}
		var r ingestResponse
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatal(err)
		}
		if r.Month != i {
			t.Fatalf("ingest landed at %d, want %d", r.Month, i)
		}
	}

	code, body, _ := get(t, srv.URL+"/v1/epoch")
	if code != http.StatusOK {
		t.Fatalf("/v1/epoch = %d", code)
	}
	var er epochResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Months != months || er.Seq != months+1 {
		t.Fatalf("/v1/epoch = %+v, want %d months at seq %d", er, months, months+1)
	}

	code, body, _ = get(t, srv.URL+"/v1/detections")
	if code != http.StatusOK {
		t.Fatalf("/v1/detections = %d", code)
	}
	var dr detectionsResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if len(dr.Detections) == 0 {
		t.Fatalf("no detections in a %d-month corpus with fitted series", months)
	}
	for _, d := range dr.Detections {
		if d.Key == "" || d.Kind == "" {
			t.Fatalf("detection missing key/kind: %+v", d)
		}
		if d.Series != nil {
			t.Fatal("list endpoint must not inline series data")
		}
	}

	// The detected=true filter is a strict subset.
	code, body, _ = get(t, srv.URL+"/v1/detections?detected=true")
	if code != http.StatusOK {
		t.Fatalf("filtered detections = %d", code)
	}
	var fr detectionsResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Detections) > len(dr.Detections) {
		t.Fatal("filter grew the detection list")
	}
	for _, d := range fr.Detections {
		if !d.Detected {
			t.Fatalf("undetected series %s passed the detected filter", d.Key)
		}
	}

	// One series, by its stable key, with data inlined.
	key := dr.Detections[0].Key
	code, body, _ = get(t, srv.URL+"/v1/series?key="+key)
	if code != http.StatusOK {
		t.Fatalf("/v1/series?key=%s = %d", key, code)
	}
	var sd detectionJSON
	if err := json.Unmarshal(body, &sd); err != nil {
		t.Fatal(err)
	}
	if sd.Key != key || len(sd.Series) != months {
		t.Fatalf("series %s = key %q with %d points, want %d", key, sd.Key, len(sd.Series), months)
	}
	if code, _, _ := get(t, srv.URL+"/v1/series?key=disease:9999"); code != http.StatusNotFound {
		t.Fatalf("unknown series = %d, want 404", code)
	}
	if code, _, _ := get(t, srv.URL+"/v1/series"); code != http.StatusBadRequest {
		t.Fatalf("missing key = %d, want 400", code)
	}

	code, body, _ = get(t, srv.URL+"/v1/failures")
	if code != http.StatusOK {
		t.Fatalf("/v1/failures = %d", code)
	}
	var fl failuresResponse
	if err := json.Unmarshal(body, &fl); err != nil {
		t.Fatal(err)
	}
	if len(fl.Failures) != 0 {
		t.Fatalf("clean corpus reported failures: %+v", fl.Failures)
	}

	code, body, _ = get(t, srv.URL+"/v1/recovery")
	if code != http.StatusOK {
		t.Fatalf("/v1/recovery = %d", code)
	}
	var rep RecoveryReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}

	code, body, _ = get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, metric := range []string{"mictrend_serve_epoch", "mictrend_serve_months"} {
		if !strings.Contains(string(body), metric) {
			t.Fatalf("exposition missing %s", metric)
		}
	}
}

func TestHTTPIngestErrorMapping(t *testing.T) {
	src := genServeCorpus(t, 3)
	c, _, _ := newTestCore(t, t.TempDir())
	defer c.Close()
	srv := httptest.NewServer(NewHandler(c, HandlerOptions{}))
	defer srv.Close()
	waitReady(t, c)

	if code, _ := postMonth(t, srv.URL, src, 0, 0); code != http.StatusOK {
		t.Fatalf("seed ingest = %d", code)
	}

	// Wrong method.
	if code, _, _ := get(t, srv.URL+"/v1/ingest"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET ingest = %d, want 405", code)
	}
	// Bad month parameter.
	resp, err := http.Post(srv.URL+"/v1/ingest?month=abc", "", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("month=abc = %d, want 400", resp.StatusCode)
	}
	// Unparseable body.
	resp, err = http.Post(srv.URL+"/v1/ingest", "", strings.NewReader("not json\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body = %d, want 400", resp.StatusCode)
	}
	// Gap ahead of the fold position.
	if code, _ := postMonth(t, srv.URL, src, 1, 7); code != http.StatusConflict {
		t.Fatalf("gap = %d, want 409", code)
	}
	// Idempotent replay of a committed month.
	if code, _ := postMonth(t, srv.URL, src, 0, 0); code != http.StatusOK {
		t.Fatalf("idempotent replay = %d, want 200", code)
	}
	// Same index, different data.
	if code, _ := postMonth(t, srv.URL, src, 2, 0); code != http.StatusConflict {
		t.Fatalf("divergent replay = %d, want 409", code)
	}
}

// TestHTTPUnreadyCore: a core whose recovery poisoned it keeps /readyz red
// and answers queries and ingests with 503 + Retry-After.
func TestHTTPUnreadyCore(t *testing.T) {
	src := genServeCorpus(t, 2)
	dir := t.TempDir()
	c, _, _ := newTestCore(t, dir)
	waitReady(t, c)
	ingestRange(t, c, src, 0, 2)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	faultpoint.Enable("trend/ckpt-load", faultpoint.Spec{
		Panic: true, Match: func(d string) bool { return d == "month-0" },
	})
	metrics := obs.NewRegistry()
	c2, _, err := NewCore(CoreOptions{Dir: dir, Trend: servingTrendOptions(), Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	deadline := time.Now().Add(30 * time.Second)
	for metrics.Counter("serve/recovery_analysis_failures").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("recovery panic never recorded")
		}
		time.Sleep(2 * time.Millisecond)
	}
	faultpoint.Reset()

	srv := httptest.NewServer(NewHandler(c2, HandlerOptions{}))
	defer srv.Close()
	if code, _, _ := get(t, srv.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz on unready core = %d, want 503", code)
	}
	if code, _, _ := get(t, srv.URL+"/v1/epoch"); code != http.StatusServiceUnavailable {
		t.Fatalf("/v1/epoch on unready core = %d, want 503", code)
	}
	if code, _, _ := get(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz must stay green while unready, got %d", code)
	}
	var buf bytes.Buffer
	if err := mic.Write(&buf, monthSlice(t, src, 0)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/ingest?month=0", "", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest on poisoned core = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without a Retry-After hint")
	}
}

// TestHTTPOverloadSheds drives the bounded queue to capacity through the
// HTTP surface: the shed ingest answers 429 with a Retry-After hint.
func TestHTTPOverloadSheds(t *testing.T) {
	src := genServeCorpus(t, 3)
	metrics := obs.NewRegistry()
	c, _, err := NewCore(CoreOptions{
		Dir: t.TempDir(), Trend: servingTrendOptions(), Metrics: metrics, QueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewHandler(c, HandlerOptions{}))
	defer srv.Close()
	waitReady(t, c)

	faultpoint.Enable("serve/fold", faultpoint.Spec{
		Delay: 300 * time.Millisecond,
		Match: func(string) bool { return false },
	})
	defer faultpoint.Reset()

	var wg sync.WaitGroup
	codes := make([]int, 2)
	wg.Add(1)
	go func() { defer wg.Done(); codes[0], _ = postMonth(t, srv.URL, src, 0, 0) }()
	for deadline := time.Now().Add(10 * time.Second); faultpoint.Hits("serve/fold") == 0; {
		if time.Now().After(deadline) {
			t.Fatal("first ingest never reached the fold")
		}
		time.Sleep(time.Millisecond)
	}
	wg.Add(1)
	go func() { defer wg.Done(); codes[1], _ = postMonth(t, srv.URL, src, 1, 1) }()
	for deadline := time.Now().Add(10 * time.Second); len(c.queue) == 0; {
		if time.Now().After(deadline) {
			t.Fatal("second ingest never queued")
		}
		time.Sleep(time.Millisecond)
	}

	var buf bytes.Buffer
	if err := mic.Write(&buf, monthSlice(t, src, 2)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/ingest?month=2", "", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed ingest = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("queued ingest %d = %d", i, code)
		}
	}
}

// TestIngestErrorStatusTable pins the full error → status mapping.
func TestIngestErrorStatusTable(t *testing.T) {
	cases := []struct {
		err    error
		status int
		retry  bool
	}{
		{ErrOverloaded, http.StatusTooManyRequests, true},
		{ErrClosing, http.StatusServiceUnavailable, true},
		{ErrPoisoned, http.StatusServiceUnavailable, true},
		{ErrMonthConflict, http.StatusConflict, false},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, false},
		{context.Canceled, http.StatusGatewayTimeout, false},
		{errors.New("anything else"), http.StatusInternalServerError, false},
	}
	for _, tc := range cases {
		status, headers := ingestErrorStatus(tc.err)
		if status != tc.status {
			t.Errorf("ingestErrorStatus(%v) = %d, want %d", tc.err, status, tc.status)
		}
		if got := headers["Retry-After"] != ""; got != tc.retry {
			t.Errorf("ingestErrorStatus(%v) Retry-After present=%v, want %v", tc.err, got, tc.retry)
		}
	}
}
