package serve

import (
	"context"
	"testing"
	"time"

	"mictrend/internal/mic"
	"mictrend/internal/micgen"
	"mictrend/internal/obs"
	"mictrend/internal/trend"
)

// genServeCorpus returns a small deterministic corpus for serving tests.
func genServeCorpus(t *testing.T, months int) *mic.Dataset {
	t.Helper()
	ds, _, err := micgen.Generate(micgen.Config{
		Seed:            7,
		Months:          months,
		RecordsPerMonth: 120,
		BulkDiseases:    4,
		BulkMedicines:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// monthSlice packages month i of src as a standalone one-month dataset — the
// shape HTTP ingest delivers: its own vocabulary (src's codes, so the remap
// into the serving corpus is the identity), the hospital table, and cloned
// records.
func monthSlice(t *testing.T, src *mic.Dataset, i int) *mic.Dataset {
	t.Helper()
	out := mic.NewDataset()
	for _, code := range src.Diseases.Codes() {
		out.Diseases.Intern(code)
	}
	for _, code := range src.Medicines.Codes() {
		out.Medicines.Intern(code)
	}
	out.Hospitals = append(out.Hospitals, src.Hospitals...)
	m := src.Months[i]
	clone := &mic.Monthly{Month: 0, Records: make([]mic.Record, len(m.Records))}
	for j := range m.Records {
		clone.Records[j] = m.Records[j].Clone()
	}
	out.Months = append(out.Months, clone)
	return out
}

// servingTrendOptions is the pipeline configuration every serving test uses,
// kept cheap: binary search, no seasonal model, a high series floor.
func servingTrendOptions() trend.Options {
	opts := trend.DefaultOptions()
	opts.Method = trend.MethodBinary
	opts.Seasonal = false
	opts.MinSeriesTotal = 20
	opts.Workers = 2
	return opts
}

func newTestCore(t *testing.T, dir string) (*Core, *RecoveryReport, *obs.Registry) {
	t.Helper()
	metrics := obs.NewRegistry()
	c, rep, err := NewCore(CoreOptions{Dir: dir, Trend: servingTrendOptions(), Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	return c, rep, metrics
}

// waitReady polls until the core publishes its first epoch.
func waitReady(t *testing.T, c *Core) *Epoch {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if e := c.Epoch(); e != nil {
			return e
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("core never published its first epoch")
	return nil
}

// ingestRange folds months [from, to) of src into the core, asserting each
// month index.
func ingestRange(t *testing.T, c *Core, src *mic.Dataset, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if _, _, err := c.Ingest(context.Background(), monthSlice(t, src, i), i); err != nil {
			t.Fatalf("ingest month %d: %v", i, err)
		}
	}
}

// controlAnalysis runs the plain, uncheckpointed pipeline over the first n
// months of src — the byte-identity reference every serving path must match.
func controlAnalysis(t *testing.T, src *mic.Dataset, n int) *trend.Analysis {
	t.Helper()
	sub := &mic.Dataset{Diseases: src.Diseases, Medicines: src.Medicines, Hospitals: src.Hospitals}
	sub.Months = append(sub.Months, src.Months[:n]...)
	a, err := trend.Analyze(context.Background(), sub, servingTrendOptions())
	if err != nil {
		t.Fatal(err)
	}
	return a
}
