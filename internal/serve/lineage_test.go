package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mictrend/internal/faultpoint"
	"mictrend/internal/obs"
)

// lineageStages is the span sequence one successful ingest leaves on
// obs.LaneServe, in flow order.
var lineageStages = []string{"serve/queue", "serve/fold", "serve/checkpoint", "serve/wal", "serve/publish"}

// TestLineageTrace pins the acceptance criterion: after folding months
// through a traced core, each month's full lineage is reconstructable from
// the flushed trace — five spans on LaneServe sharing the month's flow id, in
// stage order, plus the flow arrows connecting them.
func TestLineageTrace(t *testing.T) {
	src := genServeCorpus(t, 3)
	tracer := obs.NewTracer()
	metrics := obs.NewRegistry()
	c, _, err := NewCore(CoreOptions{
		Dir: t.TempDir(), Trend: servingTrendOptions(), Metrics: metrics, Trace: tracer.Observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitReady(t, c)
	ingestRange(t, c, src, 0, 3)

	for month := 0; month < 3; month++ {
		var names []string
		var spans []obs.SpanEvent
		for _, sp := range tracer.Spans() {
			if sp.Flow == flowID(month) {
				spans = append(spans, sp)
			}
		}
		// Reconstruct the lineage by wall-clock start within the flow.
		for i := 0; i < len(spans); i++ {
			for j := i + 1; j < len(spans); j++ {
				if spans[j].Start.Before(spans[i].Start) {
					spans[i], spans[j] = spans[j], spans[i]
				}
			}
		}
		for _, sp := range spans {
			names = append(names, sp.Name)
			if sp.TID != obs.LaneServe || sp.Cat != "serve" || sp.Month != month {
				t.Fatalf("month %d lineage span misfiled: %+v", month, sp)
			}
		}
		if strings.Join(names, ",") != strings.Join(lineageStages, ",") {
			t.Fatalf("month %d lineage = %v, want %v", month, names, lineageStages)
		}
	}

	// The flushed trace carries the flow arrows tying each month's spans.
	var buf bytes.Buffer
	if err := tracer.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	type flowEv struct {
		ph string
		ts float64
	}
	flowEvents := map[int64][]flowEv{}
	for _, ev := range file.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "s" || ph == "t" || ph == "f" {
			id := int64(ev["id"].(float64))
			flowEvents[id] = append(flowEvents[id], flowEv{ph: ph, ts: ev["ts"].(float64)})
		}
	}
	for month := 0; month < 3; month++ {
		evs := flowEvents[flowID(month)]
		if len(evs) != len(lineageStages) {
			t.Fatalf("month %d has %d flow events, want %d", month, len(evs), len(lineageStages))
		}
		// One "s" at the earliest timestamp, one "f" at the latest, "t" between.
		counts := map[string]int{}
		var sTS, fTS float64
		minTS, maxTS := evs[0].ts, evs[0].ts
		for _, ev := range evs {
			counts[ev.ph]++
			switch ev.ph {
			case "s":
				sTS = ev.ts
			case "f":
				fTS = ev.ts
			}
			minTS, maxTS = min(minTS, ev.ts), max(maxTS, ev.ts)
		}
		if counts["s"] != 1 || counts["f"] != 1 || counts["t"] != len(lineageStages)-2 {
			t.Fatalf("month %d flow phase counts = %v", month, counts)
		}
		if sTS != minTS || fTS != maxTS {
			t.Fatalf("month %d flow endpoints out of order: s@%v f@%v range [%v,%v]", month, sTS, fTS, minTS, maxTS)
		}
	}

	// Lineage transitions surfaced as a labeled counter.
	trans := metrics.Snapshot().CounterVecs["serve/lineage_transitions"]
	byStage := map[string]int64{}
	for _, lv := range trans.Values {
		byStage[lv.Labels[0]] = lv.Value
	}
	for _, stage := range []string{LineageQueued, LineageFolding, LineageCheckpointed, LineageCommitted, LineagePublished} {
		if byStage[stage] != 3 {
			t.Fatalf("lineage_transitions[%s] = %d, want 3 (all: %v)", stage, byStage[stage], byStage)
		}
	}
}

// TestStatusEndpoint pins the /v1/status payload: readiness, epoch and its
// age, queue shape, last-fold duration, per-month lineage in published state,
// and the recovery report.
func TestStatusEndpoint(t *testing.T) {
	src := genServeCorpus(t, 2)
	c, _, _ := newTestCore(t, t.TempDir())
	defer c.Close()
	waitReady(t, c)
	ingestRange(t, c, src, 0, 2)

	srv := httptest.NewServer(NewHandler(c, HandlerOptions{}))
	defer srv.Close()
	code, body, _ := get(t, srv.URL+"/v1/status")
	if code != 200 {
		t.Fatalf("/v1/status = %d: %s", code, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Ready || st.Poisoned {
		t.Fatalf("status ready=%v poisoned=%v", st.Ready, st.Poisoned)
	}
	if st.Epoch < 3 || st.Months != 2 { // recovery epoch + 2 folds
		t.Fatalf("status epoch=%d months=%d", st.Epoch, st.Months)
	}
	if st.EpochAgeSeconds < 0 || st.EpochAgeSeconds > 300 {
		t.Fatalf("epoch_age_seconds = %v", st.EpochAgeSeconds)
	}
	if st.QueueCapacity != 8 || st.QueueDepth != 0 {
		t.Fatalf("queue %d/%d, want 0/8", st.QueueDepth, st.QueueCapacity)
	}
	if st.LastFoldSeconds <= 0 {
		t.Fatalf("last_fold_seconds = %v, want > 0", st.LastFoldSeconds)
	}
	if st.Recovery == nil {
		t.Fatal("status missing recovery report")
	}
	if len(st.Lineage) != 2 {
		t.Fatalf("lineage has %d months, want 2: %+v", len(st.Lineage), st.Lineage)
	}
	for i, m := range st.Lineage {
		if m.Month != i || m.State != LineagePublished || m.Epoch == 0 {
			t.Fatalf("lineage[%d] = %+v, want month %d published", i, m, i)
		}
		if m.UpdatedAt.IsZero() || time.Since(m.UpdatedAt) > 5*time.Minute {
			t.Fatalf("lineage[%d] updated_at = %v", i, m.UpdatedAt)
		}
	}
}

// TestLineageFailedState pins the failure edge of the state machine: a fold
// that fails terminally leaves its month in state failed with the error
// recorded, visible in Status, and the error-carrying span in the trace.
func TestLineageFailedState(t *testing.T) {
	src := genServeCorpus(t, 1)
	tracer := obs.NewTracer()
	var logBuf bytes.Buffer
	c, _, err := NewCore(CoreOptions{
		Dir: t.TempDir(), Trend: servingTrendOptions(),
		Retry: RetryPolicy{Attempts: 1},
		Trace: tracer.Observe,
		Log:   obs.NewJSONLogger(&logBuf, slog.LevelInfo),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitReady(t, c)

	faultpoint.Enable("serve/fold", faultpoint.Spec{Err: errors.New("disk on fire")})
	defer faultpoint.Reset()
	if _, _, err := c.Ingest(context.Background(), monthSlice(t, src, 0), 0); err == nil {
		t.Fatal("fold succeeded despite injected fault")
	}

	st := c.Status()
	if len(st.Lineage) != 1 || st.Lineage[0].State != LineageFailed {
		t.Fatalf("lineage after failed fold = %+v", st.Lineage)
	}
	if !strings.Contains(st.Lineage[0].Error, "disk on fire") {
		t.Fatalf("lineage error = %q", st.Lineage[0].Error)
	}
	var sawErrSpan bool
	for _, sp := range tracer.Spans() {
		if sp.Flow == flowID(0) && sp.Err != "" {
			sawErrSpan = true
		}
	}
	if !sawErrSpan {
		t.Fatal("no error-carrying lineage span in the trace")
	}
	if !bytes.Contains(logBuf.Bytes(), []byte("fold failed")) {
		t.Fatalf("structured log missing the fold failure:\n%s", logBuf.String())
	}
}
