package serve

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", errors.New("boom"), false},
		{"transient", MarkTransient(errors.New("boom")), true},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		// A transient marker cannot launder a spent clock into a retry.
		{"transient-canceled", MarkTransient(context.Canceled), false},
		{"transient-deadline", MarkTransient(context.DeadlineExceeded), false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
	if MarkTransient(nil) != nil {
		t.Error("MarkTransient(nil) should stay nil")
	}
	// The marker must not hide the underlying error from errors.Is.
	sentinel := errors.New("sentinel")
	if !errors.Is(MarkTransient(sentinel), sentinel) {
		t.Error("MarkTransient breaks errors.Is unwrapping")
	}
}

// TestRetryBackoffSchedule pins the deterministic (jitter-free) schedule:
// exponential growth from Base by Multiplier, capped at Max.
func TestRetryBackoffSchedule(t *testing.T) {
	var sleeps []time.Duration
	p := RetryPolicy{
		Attempts:   4,
		Base:       100 * time.Millisecond,
		Max:        350 * time.Millisecond,
		Multiplier: 2,
		Sleep:      func(d time.Duration) { sleeps = append(sleeps, d) },
	}
	calls, retries := 0, 0
	attempts, err := p.Do(context.Background(), func() error {
		calls++
		if calls < 4 {
			return MarkTransient(errors.New("flaky"))
		}
		return nil
	}, func(attempt int, err error) { retries++ })
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 4 || calls != 4 || retries != 3 {
		t.Fatalf("attempts=%d calls=%d retries=%d, want 4/4/3", attempts, calls, retries)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 350 * time.Millisecond}
	if !reflect.DeepEqual(sleeps, want) {
		t.Fatalf("backoff schedule = %v, want %v", sleeps, want)
	}
}

// TestRetryJitterDeterministic: the same seed reproduces the same jittered
// schedule, and jitter only ever adds (bounded by the fraction).
func TestRetryJitterDeterministic(t *testing.T) {
	run := func() []time.Duration {
		var sleeps []time.Duration
		p := RetryPolicy{
			Attempts:   3,
			Base:       100 * time.Millisecond,
			Multiplier: 2,
			Jitter:     0.2,
			Seed:       99,
			Sleep:      func(d time.Duration) { sleeps = append(sleeps, d) },
		}
		p.Do(context.Background(), func() error { return MarkTransient(errors.New("x")) }, nil)
		return sleeps
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}
	if len(a) != 2 {
		t.Fatalf("slept %d times, want 2", len(a))
	}
	bases := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	for i, d := range a {
		lo, hi := bases[i], time.Duration(float64(bases[i])*1.2)
		if d < lo || d > hi {
			t.Fatalf("sleep %d = %v outside [%v, %v]", i, d, lo, hi)
		}
	}
}

func TestRetryTerminalStopsImmediately(t *testing.T) {
	calls := 0
	p := RetryPolicy{Attempts: 5, Sleep: func(time.Duration) {}}
	terminal := errors.New("terminal")
	attempts, err := p.Do(context.Background(), func() error {
		calls++
		return terminal
	}, nil)
	if attempts != 1 || calls != 1 {
		t.Fatalf("attempts=%d calls=%d, want 1/1", attempts, calls)
	}
	if !errors.Is(err, terminal) {
		t.Fatalf("err = %v, want the terminal error", err)
	}
	if strings.Contains(err.Error(), "giving up") {
		t.Fatal("terminal error wrapped as an exhausted budget")
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	flaky := errors.New("flaky")
	p := RetryPolicy{Attempts: 3, Sleep: func(time.Duration) {}}
	attempts, err := p.Do(context.Background(), func() error {
		return MarkTransient(flaky)
	}, nil)
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if !errors.Is(err, flaky) {
		t.Fatalf("exhausted error lost its cause: %v", err)
	}
	if !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("exhausted error does not say so: %v", err)
	}
}

func TestRetryContextCancelDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := RetryPolicy{Attempts: 5, Base: time.Millisecond}
	_, err := p.Do(ctx, func() error {
		calls++
		cancel() // the world ends while the op is in flight
		return MarkTransient(errors.New("flaky"))
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("op ran %d times after cancellation, want 1", calls)
	}
}

func TestRetryZeroValueSingleAttempt(t *testing.T) {
	var p RetryPolicy
	calls := 0
	attempts, err := p.Do(context.Background(), func() error {
		calls++
		return MarkTransient(errors.New("x"))
	}, nil)
	if attempts != 1 || calls != 1 || err == nil {
		t.Fatalf("zero-value policy: attempts=%d calls=%d err=%v", attempts, calls, err)
	}
}
