package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"mictrend/internal/obs"
)

// RequestIDHeader is the header the serving plane reads an inbound request id
// from and echoes the effective id on, so a caller (or a proxy in front) can
// correlate its own logs with the server's access log, metrics exemplars, and
// lineage spans.
const RequestIDHeader = "X-Request-Id"

type ctxKey int

const requestIDKey ctxKey = iota

// RequestID returns the correlated request id Instrument stored in ctx, or ""
// when the request did not pass through the middleware.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// InstrumentOptions configures the serving plane's HTTP middleware.
type InstrumentOptions struct {
	// Metrics receives the RED series: http/requests{route,method,code},
	// http/request_duration_seconds{route}, and the http/in_flight gauge.
	// Nil disables metric emission.
	Metrics *obs.Registry
	// Log receives one access-log record per request (fields request_id,
	// method, path, route, status, bytes, duration_ms). Nil disables access
	// logging.
	Log *obs.Logger
	// Routes is the closed set of route labels; request paths outside it are
	// labeled "other" so unmatched paths cannot grow metric cardinality
	// without bound. Nil defaults to the paths NewHandler mounts.
	Routes []string
	// DurationBuckets overrides the latency histogram's upper bounds, in
	// seconds. Nil uses defaultDurationBuckets.
	DurationBuckets []float64
}

// defaultRoutes is the route-label set for the handler NewHandler builds.
var defaultRoutes = []string{
	"/v1/ingest", "/v1/epoch", "/v1/series", "/v1/detections",
	"/v1/failures", "/v1/recovery", "/v1/status",
	"/healthz", "/readyz", "/metrics",
}

// defaultDurationBuckets spans sub-millisecond cache hits through multi-second
// folds, in seconds.
var defaultDurationBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// Instrument wraps next with the serving plane's observability middleware:
// RED metrics (request counts by route/method/code, a latency histogram by
// route, an in-flight gauge), request-id propagation (an inbound
// X-Request-Id is accepted after validation, otherwise a fresh id is
// generated; the effective id is stored in the request context, echoed on the
// response, and stamped on the access log), and one structured access-log
// record per request.
//
// With neither metrics nor log configured Instrument returns next unchanged,
// so a fully disabled serving plane pays nothing per request — the same
// disabled-means-free contract the obs handles keep.
func Instrument(next http.Handler, opts InstrumentOptions) http.Handler {
	if opts.Metrics == nil && opts.Log == nil {
		return next
	}
	routes := opts.Routes
	if routes == nil {
		routes = defaultRoutes
	}
	known := make(map[string]bool, len(routes))
	for _, r := range routes {
		known[r] = true
	}
	bounds := opts.DurationBuckets
	if bounds == nil {
		bounds = defaultDurationBuckets
	}
	// Nil-safe: on a nil registry these are nil vectors and writes no-op.
	requests := opts.Metrics.CounterVec("http/requests", "route", "method", "code")
	durations := opts.Metrics.HistogramVec("http/request_duration_seconds", bounds, "route")
	inFlight := opts.Metrics.Gauge("http/in_flight")

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(RequestIDHeader)
		if !validRequestID(id) {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey, id))

		route := r.URL.Path
		if !known[route] {
			route = "other"
		}
		inFlight.Add(1)
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		inFlight.Add(-1)

		elapsed := time.Since(start)
		requests.With(route, r.Method, strconv.Itoa(rec.Status())).Inc()
		durations.With(route).Observe(elapsed.Seconds())
		if opts.Log.Enabled() {
			opts.Log.Info("request",
				slog.String("request_id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", rec.Status()),
				slog.Int64("bytes", rec.bytes),
				slog.Float64("duration_ms", float64(elapsed)/float64(time.Millisecond)),
			)
		}
	})
}

// validRequestID accepts inbound ids that are short, non-empty, and printable
// ASCII without spaces — anything else (header injection attempts, binary
// junk, oversized values) is replaced with a generated id.
func validRequestID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		if c := id[i]; c <= ' ' || c > '~' {
			return false
		}
	}
	return true
}

// newRequestID returns a fresh random id (16 hex chars). crypto/rand's Read
// never fails on supported platforms; if it somehow does, the zero bytes
// still produce a usable (if non-unique) id rather than an error path.
func newRequestID() string {
	var b [8]byte
	_, _ = rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// statusRecorder captures the response status and body size for metrics and
// access logs. It forwards Flush so streaming handlers behind the middleware
// keep working.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Status returns the recorded status, defaulting to 200 for handlers that
// never call WriteHeader.
func (r *statusRecorder) Status() int {
	if r.status == 0 {
		return http.StatusOK
	}
	return r.status
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
