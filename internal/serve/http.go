package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"mictrend/internal/mic"
	"mictrend/internal/trend"
)

// HandlerOptions configures the HTTP surface.
type HandlerOptions struct {
	// MetricsNamespace prefixes the Prometheus exposition (default
	// "mictrend").
	MetricsNamespace string
}

// NewHandler mounts the serving API onto a fresh mux:
//
//	POST /v1/ingest?month=N   one-month JSONL dataset body → fold + publish
//	GET  /v1/epoch            current snapshot summary
//	GET  /v1/series?key=K     one series' data and detection
//	GET  /v1/detections       every detection in the current epoch
//	GET  /v1/failures         the current epoch's degradations
//	GET  /v1/recovery         the startup recovery report
//	GET  /v1/status           operational status: epoch age, queue depth,
//	                          last-fold duration, per-month lineage, recovery
//	GET  /healthz             process liveness (always 200)
//	GET  /readyz              200 once the first epoch is published
//	GET  /metrics             Prometheus exposition of the core registry
//
// Every query serves from the epoch snapshot current at arrival; a month
// folding in concurrently is invisible until its epoch swaps in.
func NewHandler(c *Core, opts HandlerOptions) http.Handler {
	if opts.MetricsNamespace == "" {
		opts.MetricsNamespace = "mictrend"
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ingest", func(w http.ResponseWriter, r *http.Request) { handleIngest(c, w, r) })
	mux.HandleFunc("/v1/epoch", func(w http.ResponseWriter, r *http.Request) { handleEpoch(c, w, r) })
	mux.HandleFunc("/v1/series", func(w http.ResponseWriter, r *http.Request) { handleSeries(c, w, r) })
	mux.HandleFunc("/v1/detections", func(w http.ResponseWriter, r *http.Request) { handleDetections(c, w, r) })
	mux.HandleFunc("/v1/failures", func(w http.ResponseWriter, r *http.Request) { handleFailures(c, w, r) })
	mux.HandleFunc("/v1/recovery", func(w http.ResponseWriter, r *http.Request) { writeJSON(w, http.StatusOK, c.Report()) })
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) { writeJSON(w, http.StatusOK, c.Status()) })
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !c.Ready() {
			http.Error(w, "warming: no epoch published yet", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	mux.Handle("/metrics", c.metrics.PrometheusHandler(opts.MetricsNamespace))
	return mux
}

type ingestResponse struct {
	Month int   `json:"month"`
	Epoch int64 `json:"epoch"`
}

func handleIngest(c *Core, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	want := -1
	if s := r.URL.Query().Get("month"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest, "month must be a non-negative integer")
			return
		}
		want = v
	}
	// The body's format is sniffed by magic bytes, so clients may POST a
	// month as JSONL (optionally gzipped) or as a MICC1 columnar image.
	month, _, _, err := mic.ReadAuto(r.Body, mic.StorageOptions{Read: mic.ReadOptions{Strict: true}})
	if err != nil {
		httpError(w, http.StatusBadRequest, "parsing month body: "+err.Error())
		return
	}
	idx, epoch, err := c.Ingest(r.Context(), month, want)
	if err != nil {
		status, headers := ingestErrorStatus(err)
		for k, v := range headers {
			w.Header().Set(k, v)
		}
		httpError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{Month: idx, Epoch: epoch})
}

// ingestErrorStatus maps core errors onto HTTP semantics: shed load is 429
// with a Retry-After hint, a draining core is 503, month conflicts are 409,
// deadline expiry is 504, and anything else is a 500.
func ingestErrorStatus(err error) (int, map[string]string) {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, map[string]string{"Retry-After": "1"}
	case errors.Is(err, ErrClosing), errors.Is(err, ErrPoisoned):
		return http.StatusServiceUnavailable, map[string]string{"Retry-After": "5"}
	case errors.Is(err, ErrMonthConflict):
		return http.StatusConflict, nil
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, nil
	default:
		return http.StatusInternalServerError, nil
	}
}

type epochResponse struct {
	Seq           int64 `json:"seq"`
	Months        int   `json:"months"`
	Diseases      int   `json:"diseases"`
	Medicines     int   `json:"medicines"`
	Prescriptions int   `json:"prescriptions"`
	Failures      int   `json:"failures"`
	TotalFits     int   `json:"total_fits"`
}

func handleEpoch(c *Core, w http.ResponseWriter, r *http.Request) {
	e, ok := currentEpoch(c, w)
	if !ok {
		return
	}
	resp := epochResponse{Seq: e.Seq, Months: e.Months}
	if a := e.Analysis; a != nil {
		resp.Diseases = len(a.Diseases)
		resp.Medicines = len(a.Medicines)
		resp.Prescriptions = len(a.Prescriptions)
		resp.Failures = len(a.Failures)
		resp.TotalFits = a.TotalFits
	}
	writeJSON(w, http.StatusOK, resp)
}

// detectionJSON is one detection rendered for the API, carrying the stable
// series key ("disease:3", "prescription:3/7") plus the search outcome.
type detectionJSON struct {
	Key         string    `json:"key"`
	Kind        string    `json:"kind"`
	Disease     string    `json:"disease,omitempty"`
	Medicine    string    `json:"medicine,omitempty"`
	ChangePoint int       `json:"change_point"`
	Detected    bool      `json:"detected"`
	AIC         float64   `json:"aic"`
	NoChangeAIC float64   `json:"no_change_aic"`
	Fits        int       `json:"fits"`
	Series      []float64 `json:"series,omitempty"`
}

func detectionToJSON(e *Epoch, det trend.Detection, withSeries bool) detectionJSON {
	d := detectionJSON{
		Key:         detectionKey(det),
		Kind:        det.Kind.String(),
		ChangePoint: det.Result.ChangePoint,
		Detected:    det.Result.Detected(),
		AIC:         det.Result.AIC,
		NoChangeAIC: det.Result.NoChangeAIC,
		Fits:        det.Result.Fits,
	}
	if det.Kind == trend.KindDisease || det.Kind == trend.KindPrescription {
		if i := int(det.Disease); i >= 0 && i < len(e.DiseaseCodes) {
			d.Disease = e.DiseaseCodes[i]
		}
	}
	if det.Kind == trend.KindMedicine || det.Kind == trend.KindPrescription {
		if i := int(det.Medicine); i >= 0 && i < len(e.MedicineCodes) {
			d.Medicine = e.MedicineCodes[i]
		}
	}
	if withSeries {
		d.Series = det.Series
	}
	return d
}

// detectionKey mirrors the pipeline's internal series key format so API
// keys, trace span names, and explain artifact names all agree.
func detectionKey(det trend.Detection) string {
	switch det.Kind {
	case trend.KindDisease:
		return "disease:" + strconv.Itoa(int(det.Disease))
	case trend.KindMedicine:
		return "medicine:" + strconv.Itoa(int(det.Medicine))
	default:
		return "prescription:" + strconv.Itoa(int(det.Disease)) + "/" + strconv.Itoa(int(det.Medicine))
	}
}

func handleSeries(c *Core, w http.ResponseWriter, r *http.Request) {
	e, ok := currentEpoch(c, w)
	if !ok {
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		httpError(w, http.StatusBadRequest, "key query parameter required (e.g. disease:3, prescription:3/7)")
		return
	}
	if a := e.Analysis; a != nil {
		for _, group := range [][]trend.Detection{a.Diseases, a.Medicines, a.Prescriptions} {
			for _, det := range group {
				if detectionKey(det) == key {
					writeJSON(w, http.StatusOK, detectionToJSON(e, det, true))
					return
				}
			}
		}
	}
	httpError(w, http.StatusNotFound, "no such series in the current epoch: "+key)
}

type detectionsResponse struct {
	Epoch      int64           `json:"epoch"`
	Detections []detectionJSON `json:"detections"`
}

func handleDetections(c *Core, w http.ResponseWriter, r *http.Request) {
	e, ok := currentEpoch(c, w)
	if !ok {
		return
	}
	resp := detectionsResponse{Epoch: e.Seq, Detections: []detectionJSON{}}
	onlyDetected := r.URL.Query().Get("detected") == "true"
	if a := e.Analysis; a != nil {
		for _, group := range [][]trend.Detection{a.Diseases, a.Medicines, a.Prescriptions} {
			for _, det := range group {
				if onlyDetected && !det.Result.Detected() {
					continue
				}
				resp.Detections = append(resp.Detections, detectionToJSON(e, det, false))
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

type failureJSON struct {
	Stage    string `json:"stage"`
	Month    int    `json:"month,omitempty"`
	Disease  int    `json:"disease,omitempty"`
	Medicine int    `json:"medicine,omitempty"`
	Err      string `json:"err"`
	Panicked bool   `json:"panicked,omitempty"`
}

type failuresResponse struct {
	Epoch    int64         `json:"epoch"`
	Failures []failureJSON `json:"failures"`
}

func handleFailures(c *Core, w http.ResponseWriter, r *http.Request) {
	e, ok := currentEpoch(c, w)
	if !ok {
		return
	}
	resp := failuresResponse{Epoch: e.Seq, Failures: []failureJSON{}}
	if a := e.Analysis; a != nil {
		for _, f := range a.Failures {
			resp.Failures = append(resp.Failures, failureJSON{
				Stage: f.Stage.String(), Month: f.Month,
				Disease: int(f.Disease), Medicine: int(f.Medicine),
				Err: f.Err, Panicked: f.Panicked,
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// currentEpoch loads the published snapshot or answers 503 during warmup.
func currentEpoch(c *Core, w http.ResponseWriter) (*Epoch, bool) {
	e := c.Epoch()
	if e == nil {
		httpError(w, http.StatusServiceUnavailable, "warming: no epoch published yet")
		return nil, false
	}
	return e, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
