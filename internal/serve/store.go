package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"mictrend/internal/faultpoint"
	"mictrend/internal/mic"
	"mictrend/internal/obs"
	"mictrend/internal/trend"
)

// Store file layout inside the checkpoint directory:
//
//	MANIFEST.wal            append-only commit log, CRC-framed records
//	month-000042.ckpt       one committed month's state (codec.go payload
//	                        plus a trailing CRC32-C)
//	.tmp-*                  in-flight writes, cleaned at Open
//
// The WAL is the single source of truth for what exists: a month file not
// referenced by a verified WAL record is an orphan from a crash mid-commit
// and is deleted at Open. Each WAL record carries the referenced file's
// checksum, so a file that was torn, truncated, or swapped is detected even
// though the file also ends in its own CRC trailer.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// walRecord is one manifest entry. Kind "month" commits a month file; kind
// "shutdown" marks a clean drain (recovery reports its absence as a dirty
// start, nothing more).
type walRecord struct {
	Kind  string `json:"kind"`
	Month int    `json:"month,omitempty"`
	File  string `json:"file,omitempty"`
	CRC   uint32 `json:"crc,omitempty"`
	Epoch int64  `json:"epoch,omitempty"`
}

// DroppedMonth is one month discarded during recovery, with the reason.
type DroppedMonth struct {
	Month  int    `json:"month"`
	Reason string `json:"reason"`
}

// RecoveryReport is the structured account of what Open found, repaired,
// and discarded. It is deterministic for a given directory state.
type RecoveryReport struct {
	// Months lists the committed months that verified, ascending.
	Months []int `json:"months"`
	// WALRecords counts the verified manifest records.
	WALRecords int `json:"wal_records"`
	// TruncatedBytes is the size of the torn WAL tail removed at Open (0
	// when the WAL ended cleanly).
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
	// Dropped lists months whose files failed verification, plus the reason
	// each was discarded.
	Dropped []DroppedMonth `json:"dropped,omitempty"`
	// Orphans counts unreferenced temp/month files removed at Open.
	Orphans int `json:"orphans,omitempty"`
	// CleanShutdown reports whether the WAL ends with a shutdown marker, i.e.
	// the previous process drained and exited on its own terms.
	CleanShutdown bool `json:"clean_shutdown"`
}

// Recovered reports whether Open had anything to restore or repair.
func (r *RecoveryReport) Recovered() bool {
	return len(r.Months) > 0 || r.TruncatedBytes > 0 || len(r.Dropped) > 0 || r.Orphans > 0
}

// String renders the report for logs.
func (r *RecoveryReport) String() string {
	s := fmt.Sprintf("recovered %d month(s)", len(r.Months))
	if r.TruncatedBytes > 0 {
		s += fmt.Sprintf(", truncated %dB torn WAL tail", r.TruncatedBytes)
	}
	if len(r.Dropped) > 0 {
		s += fmt.Sprintf(", dropped %d corrupt month(s)", len(r.Dropped))
	}
	if r.Orphans > 0 {
		s += fmt.Sprintf(", removed %d orphan file(s)", r.Orphans)
	}
	if r.CleanShutdown {
		s += " (clean shutdown)"
	} else {
		s += " (dirty start)"
	}
	return s
}

// Store is the durable checkpoint store: it implements trend.Checkpointer
// over the directory protocol above. All methods are goroutine-safe.
type Store struct {
	dir     string
	metrics *obs.Registry

	mu     sync.Mutex
	wal    *os.File
	months map[int]*monthState
	staged map[int]*monthState // records staged by StageMonth, committed by SaveMonth
	epoch  int64               // last epoch recorded in a shutdown marker

	onCommit func(month int, phase string) // see SetCommitObserver
}

// SetCommitObserver registers cb to be invoked at the two durable points of
// SaveMonth's two-phase commit: phase "checkpoint" once the month file is
// renamed into place and the directory synced, and phase "wal" once the WAL
// record referencing it is appended and fsynced (the commit point recovery
// honors). The serving core's lineage tracker hangs off this. cb runs with
// the store's lock held, so it must not call back into the store; a nil cb
// clears the hook. Set before the store is shared across goroutines.
func (s *Store) SetCommitObserver(cb func(month int, phase string)) {
	s.mu.Lock()
	s.onCommit = cb
	s.mu.Unlock()
}

const walName = "MANIFEST.wal"

// Open opens (creating if needed) the checkpoint directory, replays and
// repairs the manifest WAL, verifies every referenced month file, removes
// orphans, and returns the store with its recovery report. The report is
// also the place crash forensics start: a truncated tail or dropped month
// means the previous process died mid-commit, and the store rolled back to
// its last consistent prefix.
func Open(dir string, metrics *obs.Registry) (*Store, *RecoveryReport, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("serve: creating checkpoint dir: %w", err)
	}
	s := &Store{
		dir:     dir,
		metrics: metrics,
		months:  make(map[int]*monthState),
		staged:  make(map[int]*monthState),
	}
	rep := &RecoveryReport{}
	recs, truncated, err := s.replayWAL(rep)
	if err != nil {
		return nil, nil, err
	}
	rep.TruncatedBytes = truncated

	// Later records win: a re-ingested month supersedes its earlier commit.
	committed := make(map[int]walRecord)
	for _, r := range recs {
		switch r.Kind {
		case "month":
			committed[r.Month] = r
			rep.CleanShutdown = false
		case "shutdown":
			s.epoch = r.Epoch
			rep.CleanShutdown = true
		}
	}
	referenced := map[string]bool{}
	for _, r := range committed {
		referenced[r.File] = true
	}
	months := make([]int, 0, len(committed))
	for m := range committed {
		months = append(months, m)
	}
	sort.Ints(months)
	for _, m := range months {
		r := committed[m]
		st, err := s.loadMonthFile(r)
		if err != nil {
			rep.Dropped = append(rep.Dropped, DroppedMonth{Month: m, Reason: err.Error()})
			continue
		}
		s.months[m] = st
		rep.Months = append(rep.Months, m)
	}

	// Sweep orphans: temp files from interrupted writes and month files whose
	// WAL record never made it (crash between rename and WAL append).
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: scanning checkpoint dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if name == walName || e.IsDir() || referenced[name] {
			continue
		}
		var m int
		isTmp := len(name) > 5 && name[:5] == ".tmp-"
		isMonth := false
		if _, err := fmt.Sscanf(name, "month-%06d.ckpt", &m); err == nil {
			isMonth = true
		}
		if isTmp || isMonth {
			if err := os.Remove(filepath.Join(dir, name)); err == nil {
				rep.Orphans++
			}
		}
	}

	// Reopen the WAL for appending.
	s.wal, err = os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: opening WAL: %w", err)
	}
	rep.WALRecords = len(recs)
	if rep.Recovered() {
		metrics.Counter("serve/recoveries").Inc()
	}
	return s, rep, nil
}

// replayWAL reads every verifiable record and truncates the file after the
// last good one. A missing WAL is an empty store, not an error.
func (s *Store) replayWAL(rep *RecoveryReport) ([]walRecord, int64, error) {
	path := filepath.Join(s.dir, walName)
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("serve: reading WAL: %w", err)
	}
	var recs []walRecord
	off := 0
	good := 0
	for {
		if off == len(b) {
			break // clean end
		}
		if off+8 > len(b) {
			break // torn frame header
		}
		n := int(binary.LittleEndian.Uint32(b[off:]))
		sum := binary.LittleEndian.Uint32(b[off+4:])
		if n <= 0 || off+8+n > len(b) {
			break // torn or nonsense payload length
		}
		payload := b[off+8 : off+8+n]
		if crc32.Checksum(payload, crcTable) != sum {
			break // corrupt record: everything after is untrusted
		}
		var r walRecord
		if err := json.Unmarshal(payload, &r); err != nil {
			break
		}
		recs = append(recs, r)
		off += 8 + n
		good = off
	}
	var truncated int64
	if good < len(b) {
		truncated = int64(len(b) - good)
		if err := os.Truncate(path, int64(good)); err != nil {
			return nil, 0, fmt.Errorf("serve: truncating torn WAL tail: %w", err)
		}
	}
	_ = rep
	return recs, truncated, nil
}

// loadMonthFile reads and doubly verifies one committed month: the file's
// own CRC trailer and the checksum recorded in its WAL entry must both hold.
func (s *Store) loadMonthFile(r walRecord) (*monthState, error) {
	b, err := os.ReadFile(filepath.Join(s.dir, r.File))
	if err != nil {
		return nil, fmt.Errorf("unreadable: %v", err)
	}
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorrupt, len(b))
	}
	payload, trailer := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	sum := crc32.Checksum(payload, crcTable)
	if sum != trailer {
		return nil, fmt.Errorf("%w: file CRC %08x != trailer %08x", ErrCorrupt, sum, trailer)
	}
	if sum != r.CRC {
		return nil, fmt.Errorf("%w: file CRC %08x != manifest %08x", ErrCorrupt, sum, r.CRC)
	}
	st, err := decodeMonth(payload)
	if err != nil {
		return nil, err
	}
	if st.Month != r.Month {
		return nil, fmt.Errorf("%w: file says month %d, manifest says %d", ErrCorrupt, st.Month, r.Month)
	}
	return st, nil
}

// StageMonth attaches the raw records and vocabulary snapshot that SaveMonth
// will commit alongside the month's fitted state. The serving core stages
// every ingested month before analysis so a restart can rebuild the dataset
// from the store alone; batch callers skip staging and persist models only.
func (s *Store) StageMonth(month int, records *mic.Monthly, diseases, medicines []string, hospitals []mic.Hospital) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.staged[month] = &monthState{
		Month: month, HasRecords: true, Records: records,
		Diseases: diseases, Medicines: medicines, Hospitals: hospitals,
	}
}

// Unstage discards a staged month that will not be committed (its ingest
// failed terminally before the model stage saved anything).
func (s *Store) Unstage(month int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.staged, month)
}

// LoadMonth implements trend.Checkpointer from the verified in-memory state.
func (s *Store) LoadMonth(month int) (trend.MonthCheckpoint, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.months[month]
	if !ok {
		return trend.MonthCheckpoint{}, false, nil
	}
	return trend.MonthCheckpoint{
		Month: month, DataHash: st.DataHash, Model: st.Model, Failure: st.Failure,
	}, true, nil
}

// SaveMonth implements trend.Checkpointer: it merges the checkpoint with any
// staged records and runs the two-phase commit — month file (write tmp,
// fsync, rename, fsync dir), then WAL append (fsynced). Only after the WAL
// record is durable is the month visible to recovery.
func (s *Store) SaveMonth(cp trend.MonthCheckpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.staged[cp.Month]
	if st == nil {
		st = &monthState{Month: cp.Month}
	}
	st.DataHash = cp.DataHash
	st.Model = cp.Model
	st.Failure = cp.Failure

	if err := faultpoint.Inject("serve/month-write", monthFile(cp.Month)); err != nil {
		return err
	}
	payload := encodeMonth(st)
	sum := crc32.Checksum(payload, crcTable)
	file := monthFile(cp.Month)
	tmp := filepath.Join(s.dir, ".tmp-"+file)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("serve: writing month checkpoint: %w", err)
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], sum)
	if _, err = f.Write(payload); err == nil {
		_, err = f.Write(trailer[:])
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: writing month checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, file)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: committing month checkpoint: %w", err)
	}
	s.syncDir()
	if s.onCommit != nil {
		s.onCommit(cp.Month, "checkpoint")
	}

	// Crash window: the month file exists but the WAL does not reference it.
	// Recovery treats it as an orphan and deletes it — the commit point is
	// the WAL append below.
	faultpoint.Check("serve/crash-pre-wal", file)

	if err := s.appendWAL(walRecord{Kind: "month", Month: cp.Month, File: file, CRC: sum}); err != nil {
		return err
	}
	if s.onCommit != nil {
		s.onCommit(cp.Month, "wal")
	}
	s.months[cp.Month] = st
	delete(s.staged, cp.Month)
	return nil
}

// appendWAL frames, appends, and fsyncs one manifest record. The
// serve/wal-torn fault point simulates a crash mid-append by writing only
// half the frame before panicking — exactly the torn tail replayWAL must
// truncate.
func (s *Store) appendWAL(r walRecord) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("serve: encoding WAL record: %w", err)
	}
	frame := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	frame = append(frame, payload...)
	if faultpoint.Check("serve/wal-torn", r.Kind) {
		s.wal.Write(frame[:len(frame)/2])
		s.wal.Sync()
		panic(fmt.Sprintf("serve: injected crash mid WAL append (%s)", r.Kind))
	}
	if err := faultpoint.Inject("serve/wal-append", r.Kind); err != nil {
		return err
	}
	if _, err := s.wal.Write(frame); err != nil {
		return fmt.Errorf("serve: appending WAL record: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("serve: syncing WAL: %w", err)
	}
	return nil
}

// syncDir fsyncs the directory so a rename survives power loss; best-effort
// on filesystems that reject directory fsync.
func (s *Store) syncDir() {
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// MarkCleanShutdown appends the shutdown marker recording the final epoch —
// the last step of a graceful drain.
func (s *Store) MarkCleanShutdown(epoch int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch = epoch
	return s.appendWAL(walRecord{Kind: "shutdown", Epoch: epoch})
}

// Close releases the WAL handle. It does not write a shutdown marker; call
// MarkCleanShutdown first when the shutdown is orderly.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// Months returns the committed month indices, ascending.
func (s *Store) Months() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.months))
	for m := range s.months {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// LastEpoch returns the epoch recorded by the most recent clean shutdown (0
// when the store has never drained cleanly).
func (s *Store) LastEpoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// RebuildDataset reconstructs the serving dataset from the longest
// contiguous prefix of committed months that carry records, applying the
// latest vocabulary snapshot (vocabularies only grow, so the newest
// restorable month's snapshot covers every earlier month). Months beyond the
// prefix — committed out of order, or model-only batch checkpoints — are
// reported as unservable and left for the checkpointer to reuse if their
// data reappears.
func (s *Store) RebuildDataset() (*mic.Dataset, []DroppedMonth) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var unservable []DroppedMonth
	months := make([]int, 0, len(s.months))
	for m := range s.months {
		months = append(months, m)
	}
	sort.Ints(months)
	prefix := 0
	for _, m := range months {
		if m != prefix || !s.months[m].HasRecords {
			break
		}
		prefix++
	}
	for _, m := range months {
		if m >= prefix || !s.months[m].HasRecords {
			reason := "beyond contiguous prefix"
			if !s.months[m].HasRecords {
				reason = "no records section (batch checkpoint)"
			}
			if m < prefix {
				continue
			}
			unservable = append(unservable, DroppedMonth{Month: m, Reason: reason})
		}
	}
	ds := mic.NewDataset()
	if prefix == 0 {
		return ds, unservable
	}
	last := s.months[prefix-1]
	for _, code := range last.Diseases {
		ds.Diseases.Intern(code)
	}
	for _, code := range last.Medicines {
		ds.Medicines.Intern(code)
	}
	ds.Hospitals = append([]mic.Hospital(nil), last.Hospitals...)
	for m := 0; m < prefix; m++ {
		ds.Months = append(ds.Months, s.months[m].Records)
	}
	return ds, unservable
}

func monthFile(m int) string { return fmt.Sprintf("month-%06d.ckpt", m) }
