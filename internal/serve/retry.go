package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// transientError marks a failure worth retrying: the operation may succeed
// on a later attempt with no change of input (I/O hiccup, injected fault,
// resource pressure). Everything unmarked is terminal.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// MarkTransient wraps err so Retryable reports it worth retrying. A nil err
// stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// Retryable classifies an error for the retry loop: only errors explicitly
// marked transient are retried. Context cancellation and deadline expiry are
// always terminal — the clock that would cover a retry is already spent —
// and they stay terminal even when a transient marker wraps them.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var te *transientError
	return errors.As(err, &te)
}

// RetryPolicy is a bounded, jittered exponential backoff schedule for
// transient failures. The zero value retries nothing (one attempt, no
// sleeps); DefaultRetryPolicy is the serving default.
type RetryPolicy struct {
	// Attempts is the total number of tries, including the first. Values
	// below 1 mean one attempt (no retry).
	Attempts int
	// Base is the delay before the first retry; each later retry multiplies
	// the previous delay by Multiplier, capped at Max.
	Base       time.Duration
	Max        time.Duration
	Multiplier float64
	// Jitter is the fraction of each delay drawn uniformly at random and
	// added on top (0.2 → delay × [1, 1.2)). Zero disables jitter.
	Jitter float64
	// Seed seeds the jitter source so tests are reproducible. Zero gives a
	// fixed default seed — backoff schedules never need to be secret, only
	// decorrelated across months, which the per-Do rng achieves.
	Seed int64
	// Sleep replaces time.Sleep in tests; nil uses the real clock (bounded
	// by the context's deadline).
	Sleep func(time.Duration)
}

// DefaultRetryPolicy is the serving core's schedule: three attempts at
// 50ms → 200ms (20% jitter, ×4 growth, 2s cap).
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 3, Base: 50 * time.Millisecond, Max: 2 * time.Second, Multiplier: 4, Jitter: 0.2}
}

// Do runs op until it succeeds, fails terminally, exhausts the attempt
// budget, or the context ends. It returns the number of attempts made and
// the final error (wrapped with the attempt count when the budget ran out).
// onRetry, when non-nil, observes each scheduled retry before its backoff
// sleep — the serving core counts serve/retries there.
func (p RetryPolicy) Do(ctx context.Context, op func() error, onRetry func(attempt int, err error)) (int, error) {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	rng := rand.New(rand.NewSource(p.Seed ^ 0x5eed))
	delay := p.Base
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil {
			return attempt, nil
		}
		if !Retryable(err) || attempt == attempts {
			if attempt > 1 && Retryable(err) {
				err = fmt.Errorf("serve: giving up after %d attempts: %w", attempt, err)
			}
			return attempt, err
		}
		if onRetry != nil {
			onRetry(attempt, err)
		}
		d := delay
		if p.Jitter > 0 && d > 0 {
			d += time.Duration(p.Jitter * rng.Float64() * float64(d))
		}
		if p.Max > 0 && d > p.Max {
			d = p.Max
		}
		if err := p.sleep(ctx, d); err != nil {
			return attempt, err
		}
		delay = time.Duration(float64(delay) * p.Multiplier)
		if p.Max > 0 && delay > p.Max {
			delay = p.Max
		}
	}
}

func (p RetryPolicy) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
