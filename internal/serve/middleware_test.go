package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mictrend/internal/obs"
)

// TestInstrumentDisabledIdentity pins the disabled-means-free contract at the
// middleware level: with neither metrics nor log configured, Instrument
// returns the handler unchanged — no wrapper, no per-request work.
func TestInstrumentDisabledIdentity(t *testing.T) {
	next := http.NewServeMux()
	if got := Instrument(next, InstrumentOptions{}); got != http.Handler(next) {
		t.Fatal("fully disabled Instrument must return next unchanged")
	}
}

// TestInstrumentRED pins the RED series: request counts labeled by
// route/method/code, a latency histogram by route, unknown paths normalized
// to "other" so cardinality stays bounded, and the in-flight gauge back at
// zero after the requests drain.
func TestInstrumentRED(t *testing.T) {
	reg := obs.NewRegistry()
	h := Instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/ingest" {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("ok")) // implicit 200
	}), InstrumentOptions{Metrics: reg})

	for _, req := range []struct {
		method, path string
	}{
		{"GET", "/v1/epoch"},
		{"GET", "/v1/epoch"},
		{"POST", "/v1/ingest"},
		{"GET", "/not/a/route"},
		{"GET", "/also%2Fnot/mounted"},
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(req.method, req.path, nil))
	}

	snap := reg.Snapshot()
	reqs := snap.CounterVecs["http/requests"]
	got := map[string]int64{}
	for _, lv := range reqs.Values {
		got[strings.Join(lv.Labels, " ")] = lv.Value
	}
	want := map[string]int64{
		"/v1/epoch GET 200":   2,
		"/v1/ingest POST 429": 1,
		"other GET 200":       2,
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("http/requests[%s] = %d, want %d (all: %v)", k, got[k], v, got)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("unexpected series: %v", got)
	}

	var durN int64
	for _, lh := range snap.HistogramVecs["http/request_duration_seconds"].Values {
		durN += lh.Count
	}
	if durN != 5 {
		t.Fatalf("duration histogram count = %d, want 5", durN)
	}
	if v := snap.Gauges["http/in_flight"]; v != 0 {
		t.Fatalf("http/in_flight = %d after drain, want 0", v)
	}
}

// TestInstrumentRequestID pins id propagation: a valid inbound X-Request-Id
// is kept (context + response header), an invalid or absent one is replaced
// with a generated id, and the access log carries the effective id.
func TestInstrumentRequestID(t *testing.T) {
	var buf bytes.Buffer
	var seenCtx string
	h := Instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seenCtx = RequestID(r.Context())
		w.WriteHeader(http.StatusNoContent)
	}), InstrumentOptions{Log: obs.NewJSONLogger(&buf, slog.LevelInfo)})

	// Valid inbound id: kept verbatim.
	req := httptest.NewRequest("GET", "/v1/status", nil)
	req.Header.Set(RequestIDHeader, "caller-7")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seenCtx != "caller-7" || rec.Header().Get(RequestIDHeader) != "caller-7" {
		t.Fatalf("valid inbound id not propagated: ctx=%q header=%q", seenCtx, rec.Header().Get(RequestIDHeader))
	}
	var logRec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &logRec); err != nil {
		t.Fatal(err)
	}
	if logRec["request_id"] != "caller-7" || logRec["route"] != "/v1/status" || logRec["status"] != float64(204) {
		t.Fatalf("access log record = %v", logRec)
	}

	// Injection attempt: replaced with a generated 16-hex-char id.
	req = httptest.NewRequest("GET", "/v1/status", nil)
	req.Header.Set(RequestIDHeader, "bad\nid")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	echoed := rec.Header().Get(RequestIDHeader)
	if echoed == "bad\nid" || len(echoed) != 16 || seenCtx != echoed {
		t.Fatalf("invalid inbound id not replaced: %q (ctx %q)", echoed, seenCtx)
	}

	// Absent id: generated, and distinct per request.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest("GET", "/v1/status", nil))
	if id2 := rec2.Header().Get(RequestIDHeader); len(id2) != 16 || id2 == echoed {
		t.Fatalf("generated ids: %q then %q", echoed, id2)
	}
}

// TestInstrumentConcurrent hammers the middleware from concurrent clients —
// under the CI serve-race step this is the labeled-metric data-race guard for
// the full request path (vector lookup, child update, in-flight gauge,
// access log) rather than the registry in isolation.
func TestInstrumentConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	var logMu sync.Mutex
	h := Instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}), InstrumentOptions{
		Metrics: reg,
		Log:     obs.NewJSONLogger(&syncWriter{mu: &logMu, w: &buf}, slog.LevelInfo),
	})
	paths := []string{"/v1/epoch", "/v1/series", "/healthz", "/nope"}
	const workers, perWorker = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", paths[(w+i)%len(paths)], nil))
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, lv := range reg.Snapshot().CounterVecs["http/requests"].Values {
		total += lv.Value
	}
	if total != workers*perWorker {
		t.Fatalf("request count = %d, want %d", total, workers*perWorker)
	}
	if v := reg.Snapshot().Gauges["http/in_flight"]; v != 0 {
		t.Fatalf("http/in_flight = %d after drain, want 0", v)
	}
	if lines := bytes.Count(buf.Bytes(), []byte("\n")); lines != workers*perWorker {
		t.Fatalf("access log has %d records, want %d", lines, workers*perWorker)
	}
}

// syncWriter serializes concurrent writes; slog handlers already lock per
// record, but the test's final Count read needs the same mutex.
type syncWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(b []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(b)
}
