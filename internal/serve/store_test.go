package serve

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mictrend/internal/faultpoint"
	"mictrend/internal/medmodel"
	"mictrend/internal/mic"
	"mictrend/internal/obs"
	"mictrend/internal/trend"
)

// openStore opens the store with a private registry, failing the test on
// error.
func openStore(t *testing.T, dir string) (*Store, *RecoveryReport) {
	t.Helper()
	s, rep, err := Open(dir, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return s, rep
}

// commitMonth stages month i of src and commits it with a freshly fitted
// model, the exact sequence the serving core performs.
func commitMonth(t *testing.T, s *Store, src *mic.Dataset, i int) {
	t.Helper()
	model, err := medmodel.Fit(src.Months[i], src.Medicines.Len(), medmodel.FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.StageMonth(i, src.Months[i], src.Diseases.Codes(), src.Medicines.Codes(), src.Hospitals)
	cp := trend.MonthCheckpoint{
		Month:    i,
		DataHash: trend.HashMonth(src.Months[i], medmodel.FitOptions{}),
		Model:    model,
	}
	if err := s.SaveMonth(cp); err != nil {
		t.Fatalf("SaveMonth(%d): %v", i, err)
	}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	src := genServeCorpus(t, 3)
	dir := t.TempDir()
	s, rep := openStore(t, dir)
	if rep.Recovered() {
		t.Fatalf("fresh dir reported recovery: %v", rep)
	}
	for i := 0; i < 3; i++ {
		commitMonth(t, s, src, i)
	}
	for i := 0; i < 3; i++ {
		cp, ok, err := s.LoadMonth(i)
		if err != nil || !ok {
			t.Fatalf("LoadMonth(%d) = ok=%v err=%v", i, ok, err)
		}
		if cp.Model == nil || cp.DataHash == 0 {
			t.Fatalf("month %d checkpoint incomplete: %+v", i, cp)
		}
	}
	if _, ok, _ := s.LoadMonth(9); ok {
		t.Fatal("LoadMonth invented a month")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything must verify and the dataset must rebuild in full.
	s2, rep2 := openStore(t, dir)
	defer s2.Close()
	if !reflect.DeepEqual(rep2.Months, []int{0, 1, 2}) {
		t.Fatalf("recovered months = %v, want [0 1 2]", rep2.Months)
	}
	if rep2.CleanShutdown {
		t.Fatal("no shutdown marker was written, yet CleanShutdown is true")
	}
	if rep2.TruncatedBytes != 0 || len(rep2.Dropped) != 0 || rep2.Orphans != 0 {
		t.Fatalf("clean store reported repairs: %v", rep2)
	}
	ds, unservable := s2.RebuildDataset()
	if len(unservable) != 0 {
		t.Fatalf("unservable months: %v", unservable)
	}
	if ds.T() != 3 {
		t.Fatalf("rebuilt %d months, want 3", ds.T())
	}
	for i := 0; i < 3; i++ {
		if !monthliesEqual(ds.Months[i], src.Months[i]) {
			t.Fatalf("rebuilt month %d records differ from the originals", i)
		}
	}
	if got, want := ds.Diseases.Codes(), src.Diseases.Codes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("rebuilt disease vocab = %v, want %v", got, want)
	}

	// The reloaded models must be bit-identical to what was saved.
	before, _, _ := s.LoadMonth(1)
	after, ok, err := s2.LoadMonth(1)
	if err != nil || !ok {
		t.Fatalf("reopened LoadMonth(1): ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(before.Model, after.Model) {
		t.Fatal("model changed across a store reopen")
	}
}

func TestStoreCleanShutdownMarker(t *testing.T) {
	src := genServeCorpus(t, 2)
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	commitMonth(t, s, src, 0)
	if err := s.MarkCleanShutdown(7); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, rep := openStore(t, dir)
	if !rep.CleanShutdown {
		t.Fatal("shutdown marker not recognized")
	}
	if s2.LastEpoch() != 7 {
		t.Fatalf("LastEpoch = %d, want 7", s2.LastEpoch())
	}
	// A commit after the marker makes the next start dirty again.
	commitMonth(t, s2, src, 1)
	s2.Close()
	s3, rep3 := openStore(t, dir)
	defer s3.Close()
	if rep3.CleanShutdown {
		t.Fatal("commit after shutdown marker still reads as clean")
	}
	if !reflect.DeepEqual(rep3.Months, []int{0, 1}) {
		t.Fatalf("months = %v, want [0 1]", rep3.Months)
	}
}

// TestStoreTornWALTail: a crash mid-append leaves a torn frame; Open must
// truncate it, keep every complete record, and leave the WAL appendable.
func TestStoreTornWALTail(t *testing.T) {
	src := genServeCorpus(t, 3)
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	commitMonth(t, s, src, 0)
	commitMonth(t, s, src, 1)
	s.Close()

	// Half a frame header: too short to even carry a length.
	walPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0x09, 0x00, 0x00, 0x00, 0xAB, 0xCD}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, rep := openStore(t, dir)
	if rep.TruncatedBytes != int64(len(torn)) {
		t.Fatalf("TruncatedBytes = %d, want %d", rep.TruncatedBytes, len(torn))
	}
	if !reflect.DeepEqual(rep.Months, []int{0, 1}) {
		t.Fatalf("months after torn-tail repair = %v, want [0 1]", rep.Months)
	}
	// The repaired WAL must accept new commits at the truncated position.
	commitMonth(t, s2, src, 2)
	s2.Close()
	s3, rep3 := openStore(t, dir)
	defer s3.Close()
	if rep3.TruncatedBytes != 0 {
		t.Fatalf("second repair truncated %d more bytes", rep3.TruncatedBytes)
	}
	if !reflect.DeepEqual(rep3.Months, []int{0, 1, 2}) {
		t.Fatalf("months = %v, want [0 1 2]", rep3.Months)
	}
}

// TestStoreCorruptWALRecord: a frame whose CRC does not match is the end of
// the trustworthy log — it and everything after it are discarded.
func TestStoreCorruptWALRecord(t *testing.T) {
	src := genServeCorpus(t, 2)
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	commitMonth(t, s, src, 0)
	s.Close()

	walPath := filepath.Join(dir, walName)
	payload := []byte(`{"kind":"month","month":9}`)
	frame := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable)+1) // wrong
	frame = append(frame, payload...)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(frame)
	f.Close()

	s2, rep := openStore(t, dir)
	defer s2.Close()
	if rep.TruncatedBytes != int64(len(frame)) {
		t.Fatalf("TruncatedBytes = %d, want %d", rep.TruncatedBytes, len(frame))
	}
	if !reflect.DeepEqual(rep.Months, []int{0}) {
		t.Fatalf("months = %v, want [0]", rep.Months)
	}
}

// TestStoreCorruptMonthFileDropped: a month file that fails its CRC is
// dropped with a reason, and every other month survives.
func TestStoreCorruptMonthFileDropped(t *testing.T) {
	src := genServeCorpus(t, 2)
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	commitMonth(t, s, src, 0)
	commitMonth(t, s, src, 1)
	s.Close()

	path := filepath.Join(dir, monthFile(1))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rep := openStore(t, dir)
	defer s2.Close()
	if !reflect.DeepEqual(rep.Months, []int{0}) {
		t.Fatalf("months = %v, want [0]", rep.Months)
	}
	if len(rep.Dropped) != 1 || rep.Dropped[0].Month != 1 {
		t.Fatalf("Dropped = %v, want month 1", rep.Dropped)
	}
	if !strings.Contains(rep.Dropped[0].Reason, "CRC") {
		t.Fatalf("drop reason %q does not name the CRC mismatch", rep.Dropped[0].Reason)
	}
	if !rep.Recovered() {
		t.Fatal("a repaired store must report Recovered")
	}
}

// TestStoreOrphanSweep: temp files and unreferenced month files are crash
// debris and are removed; unrelated files are left alone.
func TestStoreOrphanSweep(t *testing.T) {
	src := genServeCorpus(t, 1)
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	commitMonth(t, s, src, 0)
	s.Close()

	for _, name := range []string{".tmp-" + monthFile(3), monthFile(7)} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("debris"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rep := openStore(t, dir)
	defer s2.Close()
	if rep.Orphans != 2 {
		t.Fatalf("Orphans = %d, want 2", rep.Orphans)
	}
	for _, name := range []string{".tmp-" + monthFile(3), monthFile(7)} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived the sweep", name)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "notes.txt")); err != nil {
		t.Fatal("unrelated file was swept away")
	}
	if !reflect.DeepEqual(rep.Months, []int{0}) {
		t.Fatalf("months = %v, want [0]", rep.Months)
	}
}

// TestStoreCrashBetweenRenameAndWAL: the commit point is the WAL append. A
// crash after the month file lands but before its WAL record means the month
// was never committed — recovery deletes the file.
func TestStoreCrashBetweenRenameAndWAL(t *testing.T) {
	src := genServeCorpus(t, 2)
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	commitMonth(t, s, src, 0)

	faultpoint.Enable("serve/crash-pre-wal", faultpoint.Spec{Panic: true})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("crash-pre-wal fault did not fire")
			}
		}()
		commitMonth(t, s, src, 1)
	}()
	faultpoint.Reset()
	s.Close()

	// The month file exists on disk but the WAL never heard of it.
	if _, err := os.Stat(filepath.Join(dir, monthFile(1))); err != nil {
		t.Fatalf("month file missing before recovery: %v", err)
	}
	s2, rep := openStore(t, dir)
	defer s2.Close()
	if !reflect.DeepEqual(rep.Months, []int{0}) {
		t.Fatalf("months = %v, want [0]", rep.Months)
	}
	if rep.Orphans != 1 {
		t.Fatalf("Orphans = %d, want 1", rep.Orphans)
	}
	if _, err := os.Stat(filepath.Join(dir, monthFile(1))); !os.IsNotExist(err) {
		t.Fatal("uncommitted month file survived recovery")
	}
}

// TestStoreModelOnlyCheckpointUnservable: batch (trendscan) checkpoints carry
// no records section; the serving rebuild must report rather than serve them.
func TestStoreModelOnlyCheckpointUnservable(t *testing.T) {
	src := genServeCorpus(t, 1)
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	model, err := medmodel.Fit(src.Months[0], src.Medicines.Len(), medmodel.FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// No StageMonth: this is what the batch pipeline persists.
	cp := trend.MonthCheckpoint{Month: 0, DataHash: 42, Model: model}
	if err := s.SaveMonth(cp); err != nil {
		t.Fatal(err)
	}
	ds, unservable := s.RebuildDataset()
	if ds.T() != 0 {
		t.Fatalf("rebuilt %d months from a model-only store, want 0", ds.T())
	}
	if len(unservable) != 1 || unservable[0].Month != 0 {
		t.Fatalf("unservable = %v, want month 0", unservable)
	}
	// The checkpoint itself is still reusable by the batch pipeline.
	got, ok, err := s.LoadMonth(0)
	if err != nil || !ok || got.DataHash != 42 {
		t.Fatalf("LoadMonth(0) = %+v ok=%v err=%v", got, ok, err)
	}
	s.Close()
}
