// Package serve is the crash-safe incremental serving substrate: a durable
// on-disk checkpoint store for per-month pipeline state (store.go), an
// epoch-snapshot scheme giving concurrent readers the last complete Analysis
// while the next month folds in (core.go), retry/backoff classification for
// transient stage failures (retry.go), and the HTTP surface cmd/trendserve
// mounts (http.go).
//
// Durability protocol, in one paragraph: every month's state (raw records,
// vocabulary snapshot, fitted model or recorded degradation) is encoded into
// one self-checksummed file written as write-tmp → fsync → rename, and only
// then referenced by an appended, CRC-framed record in a small manifest WAL
// (also fsynced). A month is committed iff its WAL record and its file both
// verify; recovery truncates a torn WAL tail, drops months whose files fail
// their checksum, and reports everything it discarded in a structured
// RecoveryReport. Re-analysis from committed months is deterministic, so a
// process killed at any point between stage boundaries recovers to an
// Analysis byte-identical to one that never crashed.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"mictrend/internal/medmodel"
	"mictrend/internal/mic"
	"mictrend/internal/trend"
)

// ErrCorrupt marks a checkpoint artifact that failed structural or checksum
// verification; recovery converts it into a dropped-month report entry.
var ErrCorrupt = errors.New("serve: corrupt checkpoint")

// monthState is the full durable state of one committed month.
type monthState struct {
	Month    int
	DataHash uint64

	// HasRecords: the raw (unfiltered) month plus the vocabulary/hospital
	// snapshot at commit time, enough to rebuild the serving dataset with no
	// external corpus. Batch checkpoints (trendscan -checkpoint) omit it —
	// their corpus is already on disk.
	HasRecords bool
	Records    *mic.Monthly
	Diseases   []string
	Medicines  []string
	Hospitals  []mic.Hospital

	// Model/Failure mirror trend.MonthCheckpoint: exactly one is set once
	// the month's model stage has run.
	Model   *medmodel.Model
	Failure *trend.Failure
}

const (
	monthMagic = "MTC1"

	flagRecords = 1 << 0
	flagModel   = 1 << 1
	flagFailed  = 1 << 2
)

// enc is a little-endian append-only encoder.
type enc struct{ b []byte }

func (e *enc) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) uv(v uint64)   { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) str(s string) {
	e.uv(uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// dec is the matching sticky-error decoder: after the first failure every
// accessor returns zero values, and err() reports what went wrong.
type dec struct {
	b   []byte
	off int
	bad error
}

func (d *dec) fail(what string) {
	if d.bad == nil {
		d.bad = fmt.Errorf("%w: truncated %s at offset %d", ErrCorrupt, what, d.off)
	}
}

func (d *dec) err() error { return d.bad }

func (d *dec) u32() uint32 {
	if d.bad != nil || d.off+4 > len(d.b) {
		d.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.bad != nil || d.off+8 > len(d.b) {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) uv() uint64 {
	if d.bad != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

// length reads a uvarint count and sanity-bounds it by the bytes remaining,
// so a corrupt length cannot drive a giant allocation.
func (d *dec) length(what string) int {
	n := d.uv()
	if d.bad == nil && n > uint64(len(d.b)-d.off) {
		d.bad = fmt.Errorf("%w: %s count %d exceeds remaining %d bytes", ErrCorrupt, what, n, len(d.b)-d.off)
	}
	if d.bad != nil {
		return 0
	}
	return int(n)
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) str() string {
	n := d.length("string")
	if d.bad != nil || d.off+n > len(d.b) {
		d.fail("string")
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) bool() bool {
	if d.bad != nil || d.off >= len(d.b) {
		d.fail("bool")
		return false
	}
	v := d.b[d.off]
	d.off++
	return v != 0
}

// encodeMonth serializes a month state (checksum excluded; the store frames
// and checksums the payload).
func encodeMonth(st *monthState) []byte {
	e := &enc{b: make([]byte, 0, 1024)}
	e.b = append(e.b, monthMagic...)
	var flags uint32
	if st.HasRecords {
		flags |= flagRecords
	}
	if st.Model != nil {
		flags |= flagModel
	}
	if st.Failure != nil {
		flags |= flagFailed
	}
	e.u32(flags)
	e.u32(uint32(st.Month))
	e.u64(st.DataHash)
	if st.HasRecords {
		encodeStrings(e, st.Diseases)
		encodeStrings(e, st.Medicines)
		e.uv(uint64(len(st.Hospitals)))
		for _, h := range st.Hospitals {
			e.str(h.Code)
			e.str(h.City)
			e.uv(uint64(h.Beds))
		}
		e.uv(uint64(len(st.Records.Records)))
		for i := range st.Records.Records {
			r := &st.Records.Records[i]
			e.u32(uint32(r.Hospital))
			e.u32(uint32(r.Patient))
			e.uv(uint64(len(r.Diseases)))
			for _, dc := range r.Diseases {
				e.uv(uint64(uint32(dc.Disease)))
				e.uv(uint64(dc.Count))
			}
			e.uv(uint64(len(r.Medicines)))
			for _, m := range r.Medicines {
				e.uv(uint64(uint32(m)))
			}
		}
	}
	if st.Failure != nil {
		e.str(st.Failure.Err)
		e.bool(st.Failure.Panicked)
	}
	if st.Model != nil {
		encodeModel(e, st.Model)
	}
	return e.b
}

func encodeStrings(e *enc, ss []string) {
	e.uv(uint64(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

// encodeModel writes the fitted model with exact float64 bit patterns, map
// keys in sorted order so the encoding is canonical: the same model always
// produces the same bytes, and a decoded model reproduces the same series
// bit for bit.
func encodeModel(e *enc, m *medmodel.Model) {
	e.uv(uint64(m.M))
	e.f64(m.LogLik)
	e.uv(uint64(m.Iterations))
	e.uv(uint64(len(m.LogLikTrace)))
	for _, v := range m.LogLikTrace {
		e.f64(v)
	}
	eta := make([]mic.DiseaseID, 0, len(m.Eta))
	for d := range m.Eta {
		eta = append(eta, d)
	}
	sortDiseaseIDs(eta)
	e.uv(uint64(len(eta)))
	for _, d := range eta {
		e.uv(uint64(uint32(d)))
		e.f64(m.Eta[d])
	}
	rows := make([]mic.DiseaseID, 0, len(m.Phi))
	for d := range m.Phi {
		rows = append(rows, d)
	}
	sortDiseaseIDs(rows)
	e.uv(uint64(len(rows)))
	for _, d := range rows {
		row := m.Phi[d]
		meds := make([]mic.MedicineID, 0, len(row))
		for med := range row {
			meds = append(meds, med)
		}
		sortMedicineIDs(meds)
		e.uv(uint64(uint32(d)))
		e.uv(uint64(len(meds)))
		for _, med := range meds {
			e.uv(uint64(uint32(med)))
			e.f64(row[med])
		}
	}
}

// decodeMonth parses an encoded month state payload.
func decodeMonth(b []byte) (*monthState, error) {
	if len(b) < len(monthMagic) || string(b[:len(monthMagic)]) != monthMagic {
		return nil, fmt.Errorf("%w: bad month magic", ErrCorrupt)
	}
	d := &dec{b: b, off: len(monthMagic)}
	flags := d.u32()
	st := &monthState{Month: int(d.u32()), DataHash: d.u64()}
	if flags&flagRecords != 0 {
		st.HasRecords = true
		st.Diseases = decodeStrings(d)
		st.Medicines = decodeStrings(d)
		nh := d.length("hospitals")
		for i := 0; i < nh && d.err() == nil; i++ {
			st.Hospitals = append(st.Hospitals, mic.Hospital{
				Code: d.str(), City: d.str(), Beds: int(d.uv()),
			})
		}
		st.Records = &mic.Monthly{Month: st.Month}
		nr := d.length("records")
		for i := 0; i < nr && d.err() == nil; i++ {
			r := mic.Record{
				Hospital: mic.HospitalID(int32(d.u32())),
				Patient:  int32(d.u32()),
			}
			nd := d.length("diseases")
			for j := 0; j < nd && d.err() == nil; j++ {
				r.Diseases = append(r.Diseases, mic.DiseaseCount{
					Disease: mic.DiseaseID(int32(uint32(d.uv()))),
					Count:   int(d.uv()),
				})
			}
			nm := d.length("medicines")
			for j := 0; j < nm && d.err() == nil; j++ {
				r.Medicines = append(r.Medicines, mic.MedicineID(int32(uint32(d.uv()))))
			}
			st.Records.Records = append(st.Records.Records, r)
		}
	}
	if flags&flagFailed != 0 {
		st.Failure = &trend.Failure{
			Stage: trend.StageModel, Month: st.Month,
			Err: d.str(), Panicked: d.bool(),
		}
	}
	if flags&flagModel != 0 {
		st.Model = decodeModel(d)
	}
	if err := d.err(); err != nil {
		return nil, err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes after month payload", ErrCorrupt, len(b)-d.off)
	}
	return st, nil
}

func decodeStrings(d *dec) []string {
	n := d.length("strings")
	var out []string
	for i := 0; i < n && d.err() == nil; i++ {
		out = append(out, d.str())
	}
	return out
}

func decodeModel(d *dec) *medmodel.Model {
	m := &medmodel.Model{M: int(d.uv()), LogLik: d.f64(), Iterations: int(d.uv())}
	nt := d.length("loglik trace")
	for i := 0; i < nt && d.err() == nil; i++ {
		m.LogLikTrace = append(m.LogLikTrace, d.f64())
	}
	ne := d.length("eta")
	m.Eta = make(map[mic.DiseaseID]float64, ne)
	for i := 0; i < ne && d.err() == nil; i++ {
		id := mic.DiseaseID(int32(uint32(d.uv())))
		m.Eta[id] = d.f64()
	}
	nr := d.length("phi rows")
	m.Phi = make(map[mic.DiseaseID]map[mic.MedicineID]float64, nr)
	for i := 0; i < nr && d.err() == nil; i++ {
		id := mic.DiseaseID(int32(uint32(d.uv())))
		nm := d.length("phi row")
		row := make(map[mic.MedicineID]float64, nm)
		for j := 0; j < nm && d.err() == nil; j++ {
			med := mic.MedicineID(int32(uint32(d.uv())))
			row[med] = d.f64()
		}
		m.Phi[id] = row
	}
	return m
}

func sortDiseaseIDs(ids []mic.DiseaseID) {
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
}

func sortMedicineIDs(ids []mic.MedicineID) {
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
}
