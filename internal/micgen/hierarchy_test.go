package micgen

import (
	"math/rand/v2"
	"reflect"
	"testing"
)

// TestCatalogHierarchyComplete: the accessor maps must be singleton-completed
// — every medicine has a class, every class a group, every disease a group —
// so a hierarchy built from them covers the whole vocabulary.
func TestCatalogHierarchyComplete(t *testing.T) {
	c := NewCatalog(30, 0, 0, rand.New(rand.NewPCG(1, 2)))
	classes := c.MedicineClasses()
	for i := range c.Medicines {
		m := &c.Medicines[i]
		class, ok := classes[m.Code]
		if !ok || class == "" {
			t.Fatalf("medicine %s has no class", m.Code)
		}
	}
	groups := c.ClassGroupCodes()
	for _, class := range classes {
		if groups[class] == "" {
			t.Fatalf("class %s has no anatomical group", class)
		}
	}
	dgroups := c.DiseaseGroups()
	for i := range c.Diseases {
		if dgroups[c.Diseases[i].Code] == "" {
			t.Fatalf("disease %s has no group", c.Diseases[i].Code)
		}
	}
	// The planted substitution scenario must share one class: the original
	// anti-platelet and its three generics.
	for _, code := range []string{MedicineAntiplOrig, MedicineGeneric1, MedicineGeneric2, MedicineGeneric3} {
		if classes[code] != ClassAntiplatelet {
			t.Fatalf("%s in class %s, want %s", code, classes[code], ClassAntiplatelet)
		}
	}
	// And the diagnostics-shift diseases one disease group.
	if dgroups[DiseaseDehydration] != GroupNutrition || dgroups[DiseaseOralFeeding] != GroupNutrition {
		t.Fatal("diag-shift diseases not in the nutrition group")
	}
}

// TestBulkHierarchyPositional: bulk catalog hierarchy assignment must be
// positional (no RNG draws), so enabling it never perturbs record streams.
func TestBulkHierarchyPositional(t *testing.T) {
	a := NewCatalog(30, 8, 9, rand.New(rand.NewPCG(1, 2)))
	b := NewCatalog(30, 8, 9, rand.New(rand.NewPCG(3, 4)))
	if !reflect.DeepEqual(a.MedicineClasses(), b.MedicineClasses()) {
		t.Fatal("bulk medicine classes not deterministic")
	}
	classes := a.MedicineClasses()
	for i := range a.Medicines {
		if classes[a.Medicines[i].Code] == "" {
			t.Fatalf("bulk medicine %s unclassed", a.Medicines[i].Code)
		}
	}
	// Bulk classes hold several medicines each — a one-medicine-per-class
	// hierarchy would make class aggregates pointless.
	counts := map[string]int{}
	for _, class := range classes {
		counts[class]++
	}
	multi := 0
	for _, n := range counts {
		if n > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no bulk class has more than one medicine")
	}
}

// TestAggregateEventsGroundTruth pins the derived class-level events on the
// standard corpus: deterministic, sorted, and containing the known planted
// single-driver events.
func TestAggregateEventsGroundTruth(t *testing.T) {
	_, truth, err := Generate(Config{Seed: 42, Months: 30, RecordsPerMonth: 1200, BulkDiseases: 6, BulkMedicines: 6})
	if err != nil {
		t.Fatal(err)
	}
	events := truth.AggregateEvents(0, -1, 0)
	if len(events) == 0 {
		t.Fatal("no aggregate events derived")
	}
	again := truth.AggregateEvents(0, -1, 0)
	if !reflect.DeepEqual(events, again) {
		t.Fatal("AggregateEvents not deterministic")
	}
	for i := 1; i < len(events); i++ {
		a, b := events[i-1], events[i]
		if a.Class > b.Class || (a.Class == b.Class && a.Month > b.Month) {
			t.Fatalf("events not sorted: %v before %v", a, b)
		}
	}
	byClass := map[string][]AggregateEvent{}
	for _, ev := range events {
		if ev.RelShift <= 0 {
			t.Fatalf("event %v kept with non-positive shift", ev)
		}
		if len(ev.Drivers) == 0 || len(ev.Kinds) != len(ev.Drivers) {
			t.Fatalf("event %v has malformed drivers", ev)
		}
		if ev.Group == "" {
			t.Fatalf("event %v lost its group", ev)
		}
		byClass[ev.Class] = append(byClass[ev.Class], ev)
	}
	// The Lewy body indication expansion is a clean single-driver class
	// event: M-LEWY is alone in its antiparkinson class.
	found := false
	for _, ev := range byClass[ClassAntiparkinson] {
		if len(ev.Drivers) == 1 && ev.Drivers[0] == MedicineLewyDrug && ev.Kinds[0] == ChangeExpansion {
			found = true
		}
	}
	if !found {
		t.Fatalf("Lewy expansion missing from %s events: %+v", ClassAntiparkinson, byClass[ClassAntiparkinson])
	}
	// The generic substitution must NOT surface as a visible aggregate
	// event: the class total stays roughly flat — that is the offset case.
	for _, ev := range byClass[ClassAntiplatelet] {
		t.Fatalf("offsetting substitution leaked into aggregate events: %+v", ev)
	}
}

// TestOffsetPairsGroundTruth pins the planted substitutions.
func TestOffsetPairsGroundTruth(t *testing.T) {
	_, truth, err := Generate(Config{Seed: 42, Months: 30, RecordsPerMonth: 400})
	if err != nil {
		t.Fatal(err)
	}
	pairs := truth.OffsetPairs()
	var generic, diag *OffsetTruth
	for i := range pairs {
		switch {
		case pairs[i].Class == ClassAntiplatelet && pairs[i].Decliner == MedicineAntiplOrig:
			generic = &pairs[i]
		case pairs[i].Group == GroupNutrition && pairs[i].Decliner == DiseaseDehydration:
			diag = &pairs[i]
		}
	}
	if generic == nil {
		t.Fatalf("generic substitution missing from offset truth: %+v", pairs)
	}
	if want := []string{MedicineGeneric1, MedicineGeneric2, MedicineGeneric3}; !reflect.DeepEqual(generic.Risers, want) {
		t.Fatalf("generic risers = %v, want %v", generic.Risers, want)
	}
	if generic.Month != GenericReleaseMonth {
		t.Fatalf("generic offset month = %d, want %d", generic.Month, GenericReleaseMonth)
	}
	if diag == nil {
		t.Fatalf("diagnostics shift missing from offset truth: %+v", pairs)
	}
	if len(diag.Risers) != 1 || diag.Risers[0] != DiseaseOralFeeding || diag.Month != DiagShiftMonth {
		t.Fatalf("diag-shift offset = %+v", *diag)
	}
	// Short corpora that end before the release month plant nothing.
	_, short, err := Generate(Config{Seed: 42, Months: 10, RecordsPerMonth: 200})
	if err != nil {
		t.Fatal(err)
	}
	if got := short.OffsetPairs(); len(got) != 0 {
		t.Fatalf("10-month corpus should plant no offsets, got %+v", got)
	}
}
