package micgen

import (
	"math"
	"math/rand/v2"
	"testing"

	"mictrend/internal/mic"
)

// smallConfig is a fast configuration for unit tests.
func smallConfig() Config {
	return Config{
		Seed:            1,
		Months:          30,
		RecordsPerMonth: 300,
		Patients:        600,
		BulkDiseases:    10,
		BulkMedicines:   12,
	}
}

func TestGenerateProducesValidDataset(t *testing.T) {
	ds, truth, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ds.T() != 30 {
		t.Fatalf("months = %d", ds.T())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.NumRecords() == 0 {
		t.Fatal("no records generated")
	}
	if len(truth.PairCounts) == 0 {
		t.Fatal("no ground-truth links")
	}
	// Every month must hold some records.
	for _, m := range ds.Months {
		if len(m.Records) == 0 {
			t.Fatalf("month %d empty", m.Month)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, ta, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, tb, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRecords() != b.NumRecords() {
		t.Fatalf("record counts differ: %d vs %d", a.NumRecords(), b.NumRecords())
	}
	if len(ta.PairCounts) != len(tb.PairCounts) {
		t.Fatal("truth differs between identical configs")
	}
	for i := range a.Months {
		if len(a.Months[i].Records) != len(b.Months[i].Records) {
			t.Fatalf("month %d sizes differ", i)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg2 := smallConfig()
	cfg2.Seed = 99
	a, _, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRecords() == b.NumRecords() {
		// Counts could coincide; compare first-month first-record contents too.
		ra, rb := a.Months[0].Records[0], b.Months[0].Records[0]
		if ra.Hospital == rb.Hospital && len(ra.Medicines) == len(rb.Medicines) && len(ra.Diseases) == len(rb.Diseases) {
			t.Log("seeds produced suspiciously similar corpora; acceptable but unusual")
		}
	}
}

func TestTruthLinkCountsMatchRecords(t *testing.T) {
	ds, truth, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Total medicine mentions in records must equal total true links.
	var recordMeds, truthLinks float64
	for _, m := range ds.Months {
		for i := range m.Records {
			recordMeds += float64(len(m.Records[i].Medicines))
		}
	}
	for _, series := range truth.PairCounts {
		for _, v := range series {
			truthLinks += v
		}
	}
	if recordMeds != truthLinks {
		t.Fatalf("medicine mentions %v != true links %v", recordMeds, truthLinks)
	}
}

func TestTruthLinkDiseasePresentInRecord(t *testing.T) {
	// Every medicine in a record must be attributable to some disease in the
	// same record (the generator only prescribes for diagnosed diseases).
	ds, _, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ds.Months {
		for i := range m.Records {
			if len(m.Records[i].Medicines) > 0 && len(m.Records[i].Diseases) == 0 {
				t.Fatal("record has medicines but no diseases")
			}
		}
	}
}

func TestNewMedicineAbsentBeforeRelease(t *testing.T) {
	ds, truth, err := Generate(Config{Seed: 3, Months: 20, RecordsPerMonth: 400, BulkDiseases: 5, BulkMedicines: 5})
	if err != nil {
		t.Fatal(err)
	}
	newID, ok := ds.Medicines.Lookup(MedicineNewBronch)
	if !ok {
		t.Fatal("scenario medicine missing from vocabulary")
	}
	for tm := 0; tm < NewBronchReleaseMonth; tm++ {
		for i := range ds.Months[tm].Records {
			for _, med := range ds.Months[tm].Records[i].Medicines {
				if med == mic.MedicineID(newID) {
					t.Fatalf("new medicine prescribed in month %d before release %d", tm, NewBronchReleaseMonth)
				}
			}
		}
	}
	// And it must appear afterwards.
	var after float64
	for _, series := range truth.PairCounts {
		_ = series
	}
	for p, series := range truth.PairCounts {
		if p.Medicine == mic.MedicineID(newID) {
			for tm := NewBronchReleaseMonth; tm < 20; tm++ {
				after += series[tm]
			}
		}
	}
	if after == 0 {
		t.Fatal("new medicine never prescribed after release")
	}
}

func TestGenericsShiftShareAfterRelease(t *testing.T) {
	cfg := Config{Seed: 5, Months: 36, RecordsPerMonth: 1200, BulkDiseases: 5, BulkMedicines: 5}
	ds, truth, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	count := func(code string, from, to int) float64 {
		id, ok := ds.Medicines.Lookup(code)
		if !ok {
			t.Fatalf("medicine %s missing", code)
		}
		var sum float64
		for p, series := range truth.PairCounts {
			if p.Medicine == mic.MedicineID(id) {
				for tm := from; tm < to; tm++ {
					sum += series[tm]
				}
			}
		}
		return sum
	}
	pre := count(MedicineAntiplOrig, GenericReleaseMonth-6, GenericReleaseMonth)
	post := count(MedicineAntiplOrig, 30, 36)
	if post >= pre {
		t.Fatalf("original did not decline: pre=%v post=%v", pre, post)
	}
	g3 := count(MedicineGeneric3, 30, 36)
	g1 := count(MedicineGeneric1, 30, 36)
	if g3 == 0 {
		t.Fatal("authorized generic never prescribed")
	}
	if g3 <= g1 {
		t.Fatalf("authorized generic (%v) should dominate generic 1 (%v)", g3, g1)
	}
	// No generic before release.
	if pre3 := count(MedicineGeneric3, 0, GenericReleaseMonth); pre3 != 0 {
		t.Fatalf("generic prescribed before release: %v", pre3)
	}
}

func TestSeasonalWeightShapes(t *testing.T) {
	hay := Disease{Code: "d", Prevalence: 1, Peaks: []SeasonPeak{{Month: 1, Amplitude: 3, Width: 1}}}
	peak := seasonalWeight(&hay, 1)
	trough := seasonalWeight(&hay, 7)
	if peak <= 2*trough {
		t.Fatalf("seasonal contrast too weak: peak=%v trough=%v", peak, trough)
	}
	// Periodicity: month 1 and month 13 identical.
	if seasonalWeight(&hay, 1) != seasonalWeight(&hay, 13) {
		t.Fatal("seasonality is not 12-month periodic")
	}
	flat := Disease{Code: "f", Prevalence: 2}
	for tm := 0; tm < 24; tm++ {
		if seasonalWeight(&flat, tm) != 2 {
			t.Fatal("flat disease should have constant weight")
		}
	}
	burst := Disease{Code: "b", Prevalence: 1, OutbreakMonths: []int{5}, OutbreakBoost: 4}
	if got := seasonalWeight(&burst, 5); got != 4 {
		t.Fatalf("outbreak weight = %v, want 4", got)
	}
	if got := seasonalWeight(&burst, 6); got != 1 {
		t.Fatalf("non-outbreak weight = %v, want 1", got)
	}
}

func TestCircularMonthDistance(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 6, 6}, {0, 11, 1}, {11, 0, 1}, {3, 9, 6}, {2, 10, 4},
	}
	for _, c := range cases {
		if got := circularMonthDistance(c.a, c.b); got != c.want {
			t.Errorf("distance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAvailabilityRampAndPriceCut(t *testing.T) {
	m := Medicine{ReleaseMonth: 10, ReleaseRamp: 4, PriceCutMonth: 20, PriceCutBoost: 2}
	if availability(&m, 9) != 0 {
		t.Fatal("available before release")
	}
	if got := availability(&m, 10); got != 0.25 {
		t.Fatalf("ramp month 1 = %v, want 0.25", got)
	}
	if got := availability(&m, 13); got != 1 {
		t.Fatalf("ramp saturation = %v, want 1", got)
	}
	if got := availability(&m, 20); got != 2 {
		t.Fatalf("price cut = %v, want 2", got)
	}
	noCut := Medicine{PriceCutMonth: -1}
	if availability(&noCut, 0) != 1 {
		t.Fatal("always-available medicine wrong")
	}
}

func TestIndicationWeightExpansion(t *testing.T) {
	ind := Indication{Disease: "d", Weight: 2, StartMonth: 10, RampMonths: 4}
	if indicationWeight(&ind, 9) != 0 {
		t.Fatal("weight before expansion")
	}
	if got := indicationWeight(&ind, 10); got != 0.5 {
		t.Fatalf("ramp start = %v, want 0.5", got)
	}
	if got := indicationWeight(&ind, 13); got != 2 {
		t.Fatalf("ramp end = %v, want 2", got)
	}
}

func TestCatalogValidate(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	c := NewCatalog(43, 5, 5, rng)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Unknown indication disease.
	bad := &Catalog{
		Diseases:  []Disease{{Code: "d", Prevalence: 1}},
		Medicines: []Medicine{{Code: "m", Indications: []Indication{{Disease: "nope", Weight: 1}}}},
		Cities:    defaultCities(),
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("dangling indication accepted")
	}
	// Generic of unknown original.
	bad2 := &Catalog{
		Diseases: []Disease{{Code: "d", Prevalence: 1}},
		Medicines: []Medicine{{Code: "m", GenericOf: "ghost",
			Indications: []Indication{{Disease: "d", Weight: 1}}}},
		Cities: defaultCities(),
	}
	if err := bad2.Validate(); err == nil {
		t.Fatal("dangling generic accepted")
	}
	// Empty catalog.
	if err := (&Catalog{}).Validate(); err == nil {
		t.Fatal("empty catalog accepted")
	}
}

func TestTruthChangesRecorded(t *testing.T) {
	_, truth, err := Generate(Config{Seed: 7, Months: 30, RecordsPerMonth: 100, BulkDiseases: 5, BulkMedicines: 5})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[ChangeKind]bool{}
	for _, c := range truth.Changes {
		kinds[c.Kind] = true
	}
	for _, k := range []ChangeKind{ChangeRelease, ChangeExpansion, ChangeDiagShift} {
		if !kinds[k] {
			t.Errorf("missing true change kind %v", k)
		}
	}
	rel := truth.ChangesFor(MedicineNewOsteo)
	if len(rel) != 1 || rel[0].Month != NewOsteoReleaseMonth || rel[0].Kind != ChangeRelease {
		t.Fatalf("ChangesFor(new osteo) = %+v", rel)
	}
}

func TestTruthRelevance(t *testing.T) {
	_, truth, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !truth.Relevant(DiseaseHypertension, MedicineDepressor) {
		t.Fatal("depressor should be relevant to hypertension")
	}
	if truth.Relevant(DiseaseHypertension, MedicineAnalgesic) {
		t.Fatal("analgesic should NOT be relevant to hypertension")
	}
	// Expanded indication counts as relevant.
	if !truth.Relevant(DiseaseAsthma, MedicineExpBronch) {
		t.Fatal("expanded indication should be relevant")
	}
	// Misuse is not relevance: antibiotic not indicated for viral colds.
	if truth.Relevant(DiseaseCommonCold, MedicineAntibiotic) {
		t.Fatal("antibiotic should not be relevant to the viral cold")
	}
}

func TestAntibioticMisuseSkewsByClass(t *testing.T) {
	cfg := Config{Seed: 11, Months: 12, RecordsPerMonth: 3000, BulkDiseases: 5, BulkMedicines: 5}
	ds, truth, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = truth
	abxID, _ := ds.Medicines.Lookup(MedicineAntibiotic)
	coldID, _ := ds.Diseases.Lookup(DiseaseCommonCold)
	fluID, _ := ds.Diseases.Lookup(DiseaseInfluenza)
	// Count, per hospital class, records where the antibiotic cooccurs with
	// a viral disease.
	viralCooc := map[mic.HospitalClass]int{}
	totalAbx := map[mic.HospitalClass]int{}
	for _, m := range ds.Months {
		for i := range m.Records {
			r := &m.Records[i]
			hasAbx := false
			for _, med := range r.Medicines {
				if med == mic.MedicineID(abxID) {
					hasAbx = true
					break
				}
			}
			if !hasAbx {
				continue
			}
			class := ds.Hospitals[r.Hospital].Class()
			totalAbx[class]++
			if r.HasDisease(mic.DiseaseID(coldID)) || r.HasDisease(mic.DiseaseID(fluID)) {
				viralCooc[class]++
			}
		}
	}
	if totalAbx[mic.SmallHospital] == 0 || totalAbx[mic.LargeHospital] == 0 {
		t.Skip("not enough antibiotic prescriptions to compare classes")
	}
	smallRate := float64(viralCooc[mic.SmallHospital]) / float64(totalAbx[mic.SmallHospital])
	largeRate := float64(viralCooc[mic.LargeHospital]) / float64(totalAbx[mic.LargeHospital])
	if smallRate <= largeRate {
		t.Fatalf("misuse rate small=%v should exceed large=%v", smallRate, largeRate)
	}
}

func TestDiagShiftOppositeTrends(t *testing.T) {
	cfg := Config{Seed: 13, Months: 40, RecordsPerMonth: 1500, BulkDiseases: 5, BulkMedicines: 5}
	ds, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oralID, _ := ds.Diseases.Lookup(DiseaseOralFeeding)
	dehyID, _ := ds.Diseases.Lookup(DiseaseDehydration)
	countIn := func(d int32, from, to int) float64 {
		var sum float64
		for tm := from; tm < to; tm++ {
			for i := range ds.Months[tm].Records {
				for _, dc := range ds.Months[tm].Records[i].Diseases {
					if dc.Disease == mic.DiseaseID(d) {
						sum += float64(dc.Count)
					}
				}
			}
		}
		return sum
	}
	dehyEarly := countIn(dehyID, 8, DiagShiftMonth)
	dehyLate := countIn(dehyID, 30, 40)
	oralEarly := countIn(oralID, 8, DiagShiftMonth)
	oralLate := countIn(oralID, 30, 40)
	// Normalize per month.
	dehyEarly /= float64(DiagShiftMonth - 8)
	dehyLate /= 10
	oralEarly /= float64(DiagShiftMonth - 8)
	oralLate /= 10
	if dehyLate >= dehyEarly {
		t.Fatalf("dehydration should decline: early=%v late=%v", dehyEarly, dehyLate)
	}
	if oralLate <= oralEarly {
		t.Fatalf("oral feeding difficulty should rise: early=%v late=%v", oralEarly, oralLate)
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += float64(poisson(rng, 1.4))
	}
	mean := sum / float64(n)
	if math.Abs(mean-1.4) > 0.05 {
		t.Fatalf("poisson mean = %v, want ≈1.4", mean)
	}
}

func TestSampleWeightedNeverPicksZero(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 20))
	weights := []float64{0, 3, 0, 1, 0}
	for i := 0; i < 1000; i++ {
		got := sampleWeighted(rng, weights, 4)
		if got != 1 && got != 3 {
			t.Fatalf("picked zero-weight index %d", got)
		}
	}
}

func TestSummaryResemblesPaperShape(t *testing.T) {
	ds, _, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := ds.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's corpus averages ~7.4 diseases and ~4.8 medicines per
	// record; ours must at least exhibit the same multi-disease,
	// multi-medicine pathology that makes link prediction necessary.
	if s.AvgDiseasesPerRec < 1.5 {
		t.Fatalf("diseases per record = %v, want > 1.5", s.AvgDiseasesPerRec)
	}
	if s.AvgMedsPerRec < 1.2 {
		t.Fatalf("medicines per record = %v, want > 1.2", s.AvgMedsPerRec)
	}
}
